lib/core/store.mli: Rdf Sparql
