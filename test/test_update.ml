(** Tests for update support (the paper's future-work item on insertion
    and update performance): deletion across every store, with the
    reference graph as oracle. *)

open Db2rdf

let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i)

let triple (s, p, o) = Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o)

let test_graph_remove () =
  let g = Rdf.Graph.create () in
  let t1 = triple (1, 1, 1) and t2 = triple (1, 1, 2) in
  Rdf.Graph.add g t1;
  Rdf.Graph.add g t2;
  Rdf.Graph.remove g t1;
  Alcotest.(check int) "size" 1 (Rdf.Graph.size g);
  Alcotest.(check bool) "t1 gone" false (Rdf.Graph.mem g t1);
  Alcotest.(check bool) "t2 kept" true (Rdf.Graph.mem g t2);
  Rdf.Graph.remove g t1;
  Alcotest.(check int) "remove idempotent" 1 (Rdf.Graph.size g)

let test_table_delete_row () =
  let t = Relsql.Table.create "t" (Relsql.Schema.make [ "k" ]) in
  Relsql.Table.create_index_on t "k";
  let r0 = Relsql.Table.insert t [| Relsql.Value.Int 1 |] in
  let _r1 = Relsql.Table.insert t [| Relsql.Value.Int 1 |] in
  Relsql.Table.delete_row t r0;
  Alcotest.(check int) "live count" 1 (Relsql.Table.row_count t);
  Alcotest.(check int) "index updated" 1
    (Array.length (Relsql.Table.lookup t 0 (Relsql.Value.Int 1)));
  (* scans skip tombstones *)
  let seen = ref 0 in
  Relsql.Table.iter (fun _ _ -> incr seen) t;
  Alcotest.(check int) "iter skips dead" 1 !seen

let test_loader_delete_single_valued () =
  let store = Loader.create ~layout:(Layout.make ~dph_cols:4 ~rph_cols:4) () in
  let t1 = triple (1, 1, 1) and t2 = triple (1, 2, 2) in
  Loader.load store [ t1; t2 ];
  Loader.delete store t1;
  Alcotest.(check int) "loaded count" 1 (Loader.triples_loaded store);
  (* Re-inserting after delete works. *)
  Loader.insert store t1;
  Alcotest.(check int) "re-insert" 2 (Loader.triples_loaded store)

let test_loader_delete_multivalued () =
  let store = Loader.create ~layout:(Layout.make ~dph_cols:4 ~rph_cols:4) () in
  (* three values for the same (s, p) *)
  let ts = List.map (fun o -> triple (1, 1, o)) [ 1; 2; 3 ] in
  Loader.load store ts;
  Loader.delete store (triple (1, 1, 2));
  let db = Loader.database store in
  let ds = Relsql.Database.find_exn db "DS" in
  Alcotest.(check int) "one DS element removed" 2 (Relsql.Table.row_count ds);
  (* delete the rest; the primary cell must clear *)
  Loader.delete store (triple (1, 1, 1));
  Loader.delete store (triple (1, 1, 3));
  Alcotest.(check int) "DS empty" 0 (Relsql.Table.row_count ds);
  Alcotest.(check int) "nothing loaded" 0 (Loader.triples_loaded store)

(** End-to-end: load, delete a random subset, compare every store
    against the oracle graph on a probe query. *)
let delete_equivalence =
  QCheck.Test.make ~name:"stores ≡ oracle after random deletions" ~count:40
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_range 5 60)
               (triple (int_range 0 8) (int_range 0 3) (int_range 0 8)))
            (list_size (int_range 0 30)
               (triple (int_range 0 8) (int_range 0 3) (int_range 0 8)))))
    (fun (to_load, to_delete) ->
      let load_triples = List.map triple to_load in
      let delete_triples = List.map triple to_delete in
      let g = Rdf.Graph.create () in
      List.iter (Rdf.Graph.add g) load_triples;
      List.iter (Rdf.Graph.remove g) delete_triples;
      let q =
        Sparql.Parser.parse
          "SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s <p0> ?x }"
      in
      let oracle = Sparql.Ref_eval.eval g q in
      let stores =
        let e = Engine.create ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) () in
        let ts = Triple_store.create () in
        let vs = Vertical_store.create () in
        let ns = Native_store.create () in
        [ Engine.to_store e; Triple_store.to_store ts; Vertical_store.to_store vs;
          Native_store.to_store ns ]
      in
      List.for_all
        (fun (store : Store.t) ->
          store.Store.load load_triples;
          store.Store.delete delete_triples;
          Sparql.Ref_eval.equal_results oracle (store.Store.query q))
        stores)

(* ------------------------------------------------------------------ *)
(* Engine-level UPDATE                                                 *)
(* ------------------------------------------------------------------ *)

let dump_q = Sparql.Parser.parse "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"

let check_engine_matches_graph msg e g =
  let oracle = Sparql.Ref_eval.eval g dump_q in
  Alcotest.(check bool) msg true
    (Sparql.Ref_eval.equal_results oracle (Engine.query e dump_q))

(** DELETE on spilled / multi-valued predicates through the engine's
    UPDATE path: a narrow layout forces spills, repeated (s, p) pairs
    force DS/RS lids, and deletions must keep both in sync. *)
let test_engine_delete_spilled_multivalued () =
  let g = Rdf.Graph.create () in
  let e = Engine.create ~layout:(Layout.make ~dph_cols:2 ~rph_cols:2) () in
  (* 6 distinct predicates on one subject with 2 columns: spills are
     guaranteed; p1 is multi-valued on s1. *)
  let initial =
    List.map triple
      [ (1, 1, 1); (1, 1, 2); (1, 1, 3); (1, 2, 1); (1, 3, 1); (1, 4, 1);
        (1, 5, 1); (1, 6, 1); (2, 1, 1) ]
  in
  List.iter (Rdf.Graph.add g) initial;
  Engine.load e initial;
  check_engine_matches_graph "after load" e g;
  (* delete one value of the multi-valued (s1, p1) cell *)
  let u1 = Sparql.Parser.parse_update "DELETE DATA { <s1> <p1> <o2> }" in
  Engine.update e u1;
  Sparql.Ref_eval.apply_update g u1;
  check_engine_matches_graph "multi-valued element deleted" e g;
  (* delete a predicate that lives in a spill row *)
  let u2 = Sparql.Parser.parse_update "DELETE DATA { <s1> <p6> <o1> }" in
  Engine.update e u2;
  Sparql.Ref_eval.apply_update g u2;
  check_engine_matches_graph "spilled slot deleted" e g;
  (* DELETE WHERE wipes the remaining multi-valued cell *)
  let u3 = Sparql.Parser.parse_update "DELETE WHERE { <s1> <p1> ?o }" in
  Engine.update e u3;
  Sparql.Ref_eval.apply_update g u3;
  check_engine_matches_graph "DELETE WHERE on multi-valued cell" e g

(** INSERT DATA forcing dictionary growth and a fresh predicate slot
    (new coloring/lid on an already-full row). *)
let test_engine_insert_new_slot () =
  let g = Rdf.Graph.create () in
  let e = Engine.create ~layout:(Layout.make ~dph_cols:2 ~rph_cols:2) () in
  let initial = List.map triple [ (1, 1, 1); (1, 2, 1) ] in
  List.iter (Rdf.Graph.add g) initial;
  Engine.load e initial;
  (* both columns of s1's row are occupied; the fresh predicate must be
     placed in a spill row, and the fresh IRIs must grow the dictionary *)
  Engine.update_string e
    "INSERT DATA { <s1> <brand-new-pred> <brand-new-obj> . \
                   <brand-new-subj> <p1> \"42\" }";
  Sparql.Ref_eval.apply_update g
    (Sparql.Parser.parse_update
       "INSERT DATA { <s1> <brand-new-pred> <brand-new-obj> . \
                      <brand-new-subj> <p1> \"42\" }");
  check_engine_matches_graph "fresh predicate and subject inserted" e g;
  (* the same (s, p) again: multi-value path on the freshly made slot *)
  Engine.update_string e "INSERT DATA { <s1> <brand-new-pred> <o9> }";
  Sparql.Ref_eval.apply_update g
    (Sparql.Parser.parse_update "INSERT DATA { <s1> <brand-new-pred> <o9> }");
  check_engine_matches_graph "fresh slot turned multi-valued" e g

(** Boxed ≡ compressed equality over the full update matrix:
    insert / delete / DELETE WHERE on spilled and multi-valued slots,
    across (boxed | compressed) × (domains 1 | 4) × (wide | narrow
    layout), with compressed engines checked both {e pre-merge} (writes
    still resident in the boxed delta side of the frozen tables) and
    {e post-merge} (after [Engine.merge] folds every delta back into a
    fresh packed main). *)
let test_engine_update_matrix () =
  let initial =
    List.map triple
      [ (1, 1, 1); (1, 1, 2); (1, 2, 1); (1, 3, 1); (1, 4, 1); (2, 2, 1);
        (3, 1, 2); (4, 3, 4) ]
  in
  (* s1 carries four distinct predicates: under the narrow layout the
     row spills, p1 is multi-valued, and the script below inserts a
     fresh predicate on s1 (forced into a spill row) that immediately
     turns multi-valued, then deletes from both. *)
  let script =
    "INSERT DATA { <s5> <p9> <o1> . <s5> <p10> \"x\" } ;\n\
     DELETE DATA { <s1> <p1> <o2> } ;\n\
     INSERT DATA { <s1> <p1> <o9> . <s1> <p1> <o10> } ;\n\
     INSERT DATA { <s1> <p6> <o1> . <s1> <p6> <o2> } ;\n\
     DELETE DATA { <s1> <p6> <o1> . <s1> <p4> <o1> } ;\n\
     DELETE WHERE { <s2> ?p ?o } ;\n\
     DELETE WHERE { ?s <p1> <o2> }"
  in
  let updates =
    List.filter_map
      (function Sparql.Ast.S_update u -> Some u | Sparql.Ast.S_query _ -> None)
      (Sparql.Parser.parse_script script)
  in
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) initial;
  List.iter (Sparql.Ref_eval.apply_update g) updates;
  List.iter
    (fun ((compress, parallelism), cols) ->
      let options = { Engine.default_options with compress; parallelism } in
      let e =
        Engine.create ~options
          ~layout:(Layout.make ~dph_cols:cols ~rph_cols:cols) ()
      in
      Engine.load e initial;
      List.iter (Engine.update e) updates;
      let tag =
        Printf.sprintf "compress=%b domains=%d cols=%d" compress parallelism
          cols
      in
      if compress then begin
        let db = Loader.database (Engine.loader e) in
        let pending =
          List.fold_left
            (fun acc n ->
              let t = Relsql.Database.find_exn db n in
              acc + Relsql.Table.delta_rows t + Relsql.Table.main_tombstones t)
            0
            (Relsql.Database.table_names db)
        in
        Alcotest.(check bool) (tag ^ ": writes are delta-resident") true
          (pending > 0);
        check_engine_matches_graph (tag ^ " pre-merge") e g;
        ignore (Engine.merge e);
        check_engine_matches_graph (tag ^ " post-merge") e g
      end
      else check_engine_matches_graph tag e g)
    (List.concat_map
       (fun cfg -> [ (cfg, 3); (cfg, 2) ])
       [ (false, 1); (false, 4); (true, 1); (true, 4) ])

(** Regression: a compressed update must NOT thaw or re-encode the
    frozen table — the delete punches a tombstone (or lands delta-side)
    while the packed main stays resident, and the eager [Engine.merge]
    folds the pending writes back in. *)
let test_engine_compressed_update_refreezes () =
  let options = { Engine.default_options with compress = true } in
  let e =
    Engine.create ~options ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) ()
  in
  Engine.load e (List.map triple [ (1, 1, 1); (1, 2, 2); (2, 1, 3) ]);
  let db = Loader.database (Engine.loader e) in
  let dph = Relsql.Database.find_exn db "DPH" in
  Alcotest.(check bool) "DPH frozen after load" true (Relsql.Table.frozen dph);
  Engine.update_string e "DELETE DATA { <s1> <p1> <o1> }";
  Alcotest.(check bool) "DPH still frozen after update" true
    (Relsql.Table.frozen dph);
  Alcotest.(check int) "no thaw: the write stayed delta-resident" 0
    (Relsql.Table.thaw_count dph);
  Alcotest.(check bool) "write is visible in the delta accounting" true
    (Relsql.Table.delta_rows dph + Relsql.Table.main_tombstones dph > 0);
  let r = Engine.query e dump_q in
  Alcotest.(check int) "two triples left" 2
    (List.length r.Sparql.Ref_eval.rows);
  (* Eager compaction folds the delta back in without changing rows. *)
  Alcotest.(check bool) "merge compacts at least one table" true
    (Engine.merge e > 0);
  Alcotest.(check int) "DPH delta empty after merge" 0
    (Relsql.Table.delta_rows dph + Relsql.Table.main_tombstones dph);
  Alcotest.(check bool) "merge counted" true
    (Relsql.Table.merge_count dph > 0);
  let r = Engine.query e dump_q in
  Alcotest.(check int) "still two triples after merge" 2
    (List.length r.Sparql.Ref_eval.rows)

let test_stats_unrecord () =
  let stats = Dataset_stats.create () in
  Dataset_stats.record stats ~s:1 ~p:2 ~o:3;
  Dataset_stats.record stats ~s:1 ~p:2 ~o:4;
  Dataset_stats.unrecord stats ~s:1 ~p:2 ~o:3;
  Alcotest.(check int) "total" 1 (Dataset_stats.total stats);
  Alcotest.(check (option int)) "subject count" (Some 1)
    (Dataset_stats.subject_frequency stats 1);
  Alcotest.(check (option int)) "object gone" None
    (Dataset_stats.object_frequency stats 3)

let suite =
  [ Alcotest.test_case "graph remove" `Quick test_graph_remove;
    Alcotest.test_case "table delete_row" `Quick test_table_delete_row;
    Alcotest.test_case "loader delete (single-valued)" `Quick
      test_loader_delete_single_valued;
    Alcotest.test_case "loader delete (multi-valued)" `Quick
      test_loader_delete_multivalued;
    Alcotest.test_case "stats unrecord" `Quick test_stats_unrecord;
    Alcotest.test_case "engine: delete spilled/multi-valued" `Quick
      test_engine_delete_spilled_multivalued;
    Alcotest.test_case "engine: insert forces new slot" `Quick
      test_engine_insert_new_slot;
    Alcotest.test_case
      "engine: update matrix (boxed/compressed × domains × pre/post-merge)"
      `Quick test_engine_update_matrix;
    Alcotest.test_case "engine: compressed update stays delta-resident" `Quick
      test_engine_compressed_update_refreezes;
    QCheck_alcotest.to_alcotest delete_equivalence ]
