lib/relsql/sql_parser.mli: Sql_ast
