lib/relsql/sql_lexer.ml: Buffer List Printf String
