test/test_sqlgen.ml: Alcotest Db2rdf Engine Helpers Layout List Loader Pred_map Relsql Sparql String
