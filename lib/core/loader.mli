(** Insertion into the DB2RDF schema: predicate-to-column placement,
    spill rows, and multi-value (lid) indirection (Sections 2.1–2.2).

    A store owns the four relations, the direct and reverse predicate
    mappings, the dictionary, the statistics, and the bookkeeping the
    query translator needs: which predicates are multi-valued (need a
    DS/RS join) and which are involved in spills (veto star merging —
    Section 3.2.1). *)

type side = Direct | Reverse

(** Per-phase wall-clock breakdown of the last bulk {!load} call.
    [parse_s] is the caller-measured input-parsing time (0 for in-memory
    triple lists); the other phases are the loader's own: worker-local
    dictionary encoding, the deterministic merge/remap/dedup pass, and
    DPH/RPH/DS/RS row assembly. On the sequential path everything lands
    in [assemble_s]. *)
type load_stats = {
  domains_used : int;  (** 1 = the untouched sequential path ran *)
  morsels : int;  (** encode-phase chunks (1 when sequential) *)
  triples_in : int;  (** input triples, duplicates included *)
  triples_new : int;  (** triples actually inserted after dedup *)
  parse_s : float;
  encode_s : float;
  merge_s : float;
  assemble_s : float;
  total_s : float;  (** parse + encode + merge + assemble *)
}

type t

(** Create an empty store. The predicate mappings default to the 2-hash
    composition over the layout's widths. *)
val create :
  ?layout:Layout.t ->
  ?direct_map:Pred_map.t ->
  ?reverse_map:Pred_map.t ->
  ?dict:Rdf.Dictionary.t ->
  unit ->
  t

val database : t -> Relsql.Database.t
val dictionary : t -> Rdf.Dictionary.t
val stats : t -> Dataset_stats.t
val triples_loaded : t -> int

(** Insert one triple into both sides of the store; duplicates are
    ignored (RDF graphs are sets). *)
val insert : t -> Rdf.Triple.t -> unit

(** Bulk load. [domains > 1] (default 1) runs the morsel-parallel
    pipeline — per-chunk dictionary deltas merged deterministically,
    then entity-partitioned row assembly — on a fresh store; the result
    is bit-identical to the sequential path (same ids, row order,
    coloring, lids, spill sets). A non-empty store or [domains <= 1]
    takes the unchanged sequential route. [parse_s] folds the caller's
    input-parsing time into the reported {!load_stats}. *)
val load : ?domains:int -> ?parse_s:float -> t -> Rdf.Triple.t list -> unit

(** Phase timings of the most recent {!load} (None before any load). *)
val last_load_stats : t -> load_stats option

(** Delete one triple (no-op when absent). Spill rows and registry
    entries are left in place — they only make the translator more
    conservative. *)
val delete : t -> Rdf.Triple.t -> unit

(** Candidate columns the translator must probe for a predicate on a
    side (never empty). *)
val candidate_columns : t -> side -> pred_term:Rdf.Term.t -> int list

(** Columns that actually hold data for a predicate on a side — the
    subset of its candidate columns a value was really written into
    (conservative after deletes: once used, a column stays listed).
    Empty when the predicate has never been stored on the side. When
    this is a single column, every row of the predicate is reachable
    through one [pred_i = id] conjunct — the eligibility test for the
    flat worst-case-optimal join form. *)
val storage_columns : t -> side -> pred_id:int -> int list

(** Has the predicate ever gone multi-valued on this side (so reads
    must join the secondary relation)? *)
val is_multivalued : t -> side -> pred_id:int -> bool

(** Is the predicate stored on any spill row (vetoes star merging)? *)
val is_spill_involved : t -> side -> pred_id:int -> bool

(** Pred/val pairs per row on a side. *)
val column_count : t -> side -> int

(** Predicate ids with any lid value on a side, sorted. *)
val multivalued_predicates : t -> side -> int list

(** Predicate ids stored on spill rows on a side, sorted. *)
val spill_predicates : t -> side -> int list

(** Canonical textual rendering of the whole store — dictionary in id
    order, every relation's rows in insertion order with row ids, both
    sides' registries and bookkeeping, the lid counter. Equal dumps ⇔
    bit-identical stores; the seq≡par equality tests and
    [rdfstore load --verify] compare these. *)
val dump_store : t -> string

(** Section 2.3 reporting. *)
type side_report = {
  rows : int;
  spills : int;
  distinct_entities : int;
  null_fraction : float;
  storage_bytes : int;
}

val report : t -> side -> side_report
