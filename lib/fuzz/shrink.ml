(** Greedy shrinking of failing (graph, query) cases to minimal
    reproducers.

    Candidates come from two directions — dropping triples from the
    dataset (halves first, then chunks, then singles) and pruning the
    query AST one step at a time ({!Sparql.Ast.pattern_shrinks} plus
    solution-modifier removal). A candidate is accepted when the
    caller's predicate says the divergence still reproduces; shrinking
    restarts from the smaller case until a fixpoint or the evaluation
    budget runs out. *)

open Sparql.Ast

type case = { triples : Rdf.Triple.t list; query : query }

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

let halves xs =
  let n = List.length xs in
  if n < 2 then []
  else begin
    let mid = n / 2 in
    [ List.filteri (fun i _ -> i < mid) xs;
      List.filteri (fun i _ -> i >= mid) xs ]
  end

let drop_chunks ~chunk xs =
  let n = List.length xs in
  if n <= chunk then []
  else
    List.init
      ((n + chunk - 1) / chunk)
      (fun k -> List.filteri (fun i _ -> i / chunk <> k) xs)

let triple_shrinks (triples : Rdf.Triple.t list) : Rdf.Triple.t list list =
  let n = List.length triples in
  halves triples
  @ (if n > 8 then drop_chunks ~chunk:(max 2 (n / 8)) triples else [])
  @ (if n <= 32 then remove_each triples else [])

let query_shrinks (q : query) : query list =
  (if q.distinct then [ { q with distinct = false } ] else [])
  @ (match q.limit with Some _ -> [ { q with limit = None } ] | None -> [])
  @ (match q.offset with Some _ -> [ { q with offset = None } ] | None -> [])
  @ (match q.order_by with
     | [] -> []
     | [ _ ] -> [ { q with order_by = [] } ]
     | conds ->
       { q with order_by = [] }
       :: List.map (fun l -> { q with order_by = l }) (remove_each conds))
  @ (if q.aggregates <> [] then
       { q with aggregates = []; group_by = []; projection = Select_star }
       :: (if List.length q.aggregates > 1 then
             List.map
               (fun l -> { q with aggregates = l })
               (remove_each q.aggregates)
           else [])
     else [])
  @ List.map (fun w -> { q with where = w }) (pattern_shrinks q.where)

let case_shrinks (c : case) : case list =
  List.map (fun ts -> { c with triples = ts }) (triple_shrinks c.triples)
  @ List.map (fun q -> { c with query = q }) (query_shrinks c.query)

(* ------------------------------------------------------------------ *)
(* Greedy minimization                                                 *)
(* ------------------------------------------------------------------ *)

let case_size (c : case) = List.length c.triples + query_size c.query

(** [minimize ~budget still_fails c] greedily applies the first
    accepted candidate until no candidate reproduces the failure or
    [budget] predicate evaluations are spent. [still_fails] must be
    false-safe: candidates may be degenerate (empty data, single triple
    patterns). *)
(* Shared greedy loop: apply the first strictly-smaller candidate that
   still fails, restart from it, stop at a fixpoint or when [budget]
   predicate evaluations are spent. *)
let minimize_by ~(size : 'a -> int) ~(candidates : 'a -> 'a list)
    ~(budget : int) (still_fails : 'a -> bool) (c : 'a) : 'a =
  let evals = ref 0 in
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest ->
        if !evals >= budget then current
        else if size cand < size current then begin
          incr evals;
          if still_fails cand then go cand else try_candidates rest
        end
        else try_candidates rest
    in
    try_candidates (candidates current)
  in
  go c

let minimize ?(budget = 600) (still_fails : case -> bool) (c : case) : case =
  minimize_by ~size:case_size ~candidates:case_shrinks ~budget still_fails c

(* ------------------------------------------------------------------ *)
(* Update-script cases                                                 *)
(* ------------------------------------------------------------------ *)

(** A failing update-script case: the initial dataset plus the
    [;]-separated statement sequence replayed over it. *)
type script_case = { s_triples : Rdf.Triple.t list; script : statement list }

let update_shrinks (u : update) : update list =
  match u with
  | Insert_data ts when List.length ts > 1 ->
    List.map (fun l -> Insert_data l) (remove_each ts)
  | Delete_data ts when List.length ts > 1 ->
    List.map (fun l -> Delete_data l) (remove_each ts)
  | Delete_where tps when List.length tps > 1 ->
    List.map (fun l -> Delete_where l) (remove_each tps)
  | Insert_data _ | Delete_data _ | Delete_where _ -> []

let statement_shrinks = function
  | S_query q -> List.map (fun q' -> S_query q') (query_shrinks q)
  | S_update u -> List.map (fun u' -> S_update u') (update_shrinks u)

(* Candidates, smaller-first by family: drop statements (halves, then
   singles), shrink one statement in place, then drop dataset
   triples. *)
let script_case_shrinks (c : script_case) : script_case list =
  (if List.length c.script > 1 then
     List.map
       (fun s -> { c with script = s })
       (halves c.script @ remove_each c.script)
   else [])
  @ List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> { c with script = replace_nth c.script i s' })
             (statement_shrinks s))
         c.script)
  @ List.map (fun ts -> { c with s_triples = ts }) (triple_shrinks c.s_triples)

let script_case_size (c : script_case) =
  List.length c.s_triples
  + List.fold_left (fun a s -> a + statement_size s) 0 c.script

(** {!minimize} for update-script cases. *)
let minimize_script ?(budget = 600) (still_fails : script_case -> bool)
    (c : script_case) : script_case =
  minimize_by ~size:script_case_size ~candidates:script_case_shrinks ~budget
    still_fails c
