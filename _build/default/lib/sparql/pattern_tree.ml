(** The query parse tree of the paper (Figure 7) and its ancestor
    machinery (Definitions 3.4–3.7, 3.9–3.11).

    The tree has AND, OR and OPTIONAL interior nodes and triple-pattern
    leaves. FILTER expressions are not nodes; each is attached to its
    enclosing AND node together with that node's scope. Basic graph
    patterns are spliced into their enclosing AND so that, as in the
    paper's example, [t1] is a direct child of the top-level AND. *)

type tp = { id : int; pat : Ast.triple_pat }

type kind =
  | K_and
  | K_or
  | K_opt
  | K_leaf of tp

type t = {
  kinds : kind array;  (** node id -> kind *)
  parents : int array;  (** node id -> parent node id; root's is -1 *)
  children : int list array;
  root : int;
  triples : tp array;  (** triple id -> leaf tp *)
  leaf_node : int array;  (** triple id -> node id of its leaf *)
  filters : (int * Ast.expr) list;  (** (enclosing AND node, expression) *)
}

let n_triples t = Array.length t.triples
let triple t id = t.triples.(id)
let kind t n = t.kinds.(n)
let parent t n = t.parents.(n)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable b_kinds : kind list;  (* reversed *)
  mutable b_parents : int list;  (* reversed *)
  mutable b_children : (int * int) list;  (* child, parent *)
  mutable b_count : int;
  mutable b_tps : tp list;  (* reversed *)
  mutable b_filters : (int * Ast.expr) list;
}

let new_node b kind parent =
  let id = b.b_count in
  b.b_kinds <- kind :: b.b_kinds;
  b.b_parents <- parent :: b.b_parents;
  if parent >= 0 then b.b_children <- (id, parent) :: b.b_children;
  b.b_count <- id + 1;
  id

let rec build b parent (p : Ast.pattern) : int =
  match p with
  | Ast.Bgp tps ->
    (* A lone BGP: one leaf, or an AND over its leaves. *)
    (match tps with
     | [ single ] -> build_leaf b parent single
     | _ ->
       let n = new_node b K_and parent in
       List.iter (fun tp -> ignore (build_leaf b n tp)) tps;
       n)
  | Ast.Group elements ->
    let n = new_node b K_and parent in
    List.iter
      (fun (e : Ast.pattern) ->
        match e with
        | Ast.Bgp tps -> List.iter (fun tp -> ignore (build_leaf b n tp)) tps
        | Ast.Filter expr -> b.b_filters <- (n, expr) :: b.b_filters
        | other -> ignore (build b n other))
      elements;
    n
  | Ast.Union parts ->
    let n = new_node b K_or parent in
    List.iter (fun p -> ignore (build b n p)) parts;
    n
  | Ast.Optional inner ->
    let n = new_node b K_opt parent in
    ignore (build b n inner);
    n
  | Ast.Filter expr ->
    (* A filter with no enclosing group: attach to parent (or to a
       synthetic AND when it is the whole query). *)
    if parent >= 0 then begin
      b.b_filters <- (parent, expr) :: b.b_filters;
      parent
    end
    else begin
      let n = new_node b K_and parent in
      b.b_filters <- (n, expr) :: b.b_filters;
      n
    end

and build_leaf b parent (pat : Ast.triple_pat) : int =
  let tp = { id = List.length b.b_tps; pat } in
  b.b_tps <- tp :: b.b_tps;
  new_node b (K_leaf tp) parent

(** Build the parse tree of a query's WHERE pattern. *)
let of_pattern (p : Ast.pattern) : t =
  let b =
    { b_kinds = []; b_parents = []; b_children = []; b_count = 0; b_tps = [];
      b_filters = [] }
  in
  (* Ensure the root is an interior node so leaf predicates have a
     well-defined enclosing pattern. *)
  let root =
    match p with
    | Ast.Group _ | Ast.Union _ -> build b (-1) p
    | _ ->
      let n = new_node b K_and (-1) in
      ignore (build b n p);
      n
  in
  let kinds = Array.of_list (List.rev b.b_kinds) in
  let parents = Array.of_list (List.rev b.b_parents) in
  (* [b_children] is in reverse creation order; prepending restores
     creation order per parent. *)
  let children = Array.make (Array.length kinds) [] in
  List.iter
    (fun (c, p) -> children.(p) <- c :: children.(p))
    b.b_children;
  let triples = Array.of_list (List.rev b.b_tps) in
  let leaf_node = Array.make (Array.length triples) (-1) in
  Array.iteri
    (fun n k -> match k with K_leaf tp -> leaf_node.(tp.id) <- n | _ -> ())
    kinds;
  { kinds; parents; children; root; triples; leaf_node;
    filters = List.rev b.b_filters }

let of_query (q : Ast.query) : t = of_pattern q.where

(* ------------------------------------------------------------------ *)
(* Ancestor machinery                                                  *)
(* ------------------------------------------------------------------ *)

(** [↑*]: ancestors of a node, nearest first, excluding the node itself. *)
let ancestors t n =
  let rec go n acc =
    let p = t.parents.(n) in
    if p < 0 then List.rev acc else go p (p :: acc)
  in
  go n []

(** Depth of a node (root has depth 0). *)
let depth t n = List.length (ancestors t n)

(** Least common ancestor of two nodes (Definition 3.4). *)
let lca t a b =
  let rec lift n d target = if d > target then lift t.parents.(n) (d - 1) target else n in
  let da = depth t a and db = depth t b in
  let a = lift a da (min da db) and b = lift b db (min da db) in
  let rec meet a b = if a = b then a else meet t.parents.(a) t.parents.(b) in
  meet a b

(** [↑↑ (p, p')]: ancestors of [p] strictly below [LCA (p, p')],
    including [p] itself when [p] is an interior node on that path —
    per Definition 3.5 this is the set of nodes from [p] (exclusive)
    up to but excluding the LCA. *)
let up_to_lca t p p' =
  let stop = lca t p p' in
  let rec go n acc = if n = stop then acc else go t.parents.(n) (n :: acc) in
  go t.parents.(p) []

(** [∪ (t, t')] (Definition 3.6): the two triples' LCA is an OR. *)
let or_connected t ta tb =
  let na = t.leaf_node.(ta) and nb = t.leaf_node.(tb) in
  t.kinds.(lca t na nb) = K_or

(** [∩ (t, t')] (Definition 3.7): [t'] is guarded by an OPTIONAL with
    respect to [t]. *)
let opt_connected t ta tb =
  let na = t.leaf_node.(ta) and nb = t.leaf_node.(tb) in
  List.exists (fun n -> t.kinds.(n) = K_opt) (up_to_lca t nb na)

(** Definition 3.9: the LCA and all intermediate ancestors of both
    triples are AND nodes. *)
let and_mergeable t ta tb =
  let na = t.leaf_node.(ta) and nb = t.leaf_node.(tb) in
  let l = lca t na nb in
  t.kinds.(l) = K_and
  && List.for_all
       (fun n -> t.kinds.(n) = K_and)
       (up_to_lca t na nb @ up_to_lca t nb na)

(** Definition 3.10: the LCA and all intermediate ancestors are OR
    nodes. *)
let or_mergeable t ta tb =
  let na = t.leaf_node.(ta) and nb = t.leaf_node.(tb) in
  let l = lca t na nb in
  t.kinds.(l) = K_or
  && List.for_all
       (fun n -> t.kinds.(n) = K_or)
       (up_to_lca t na nb @ up_to_lca t nb na)

(** Definition 3.11: as {!and_mergeable}, except the parent of the
    later (optional) triple [tb] is an OPTIONAL node. *)
let opt_mergeable t ta tb =
  let na = t.leaf_node.(ta) and nb = t.leaf_node.(tb) in
  let l = lca t na nb in
  t.kinds.(l) = K_and
  && List.for_all (fun n -> t.kinds.(n) = K_and) (up_to_lca t na nb)
  && (match up_to_lca t nb na with
      | [] -> false
      | path ->
        (* path is ordered root-side first; the node adjacent to tb is
           last. It must be the OPTIONAL guard; everything above, AND. *)
        let rec split = function
          | [ last ] -> ([], last)
          | x :: rest ->
            let above, last = split rest in
            (x :: above, last)
          | [] -> assert false
        in
        let above, last = split path in
        t.kinds.(last) = K_opt
        && List.for_all (fun n -> t.kinds.(n) = K_and) above)

(** The triple ids inside the subtree rooted at node [n]. *)
let triples_under t n =
  let acc = ref [] in
  let rec go n =
    match t.kinds.(n) with
    | K_leaf tp -> acc := tp.id :: !acc
    | K_and | K_or | K_opt -> List.iter go t.children.(n)
  in
  go n;
  List.rev !acc

(** Is triple [tid] inside (the scope of) any OPTIONAL node? *)
let in_optional t tid =
  List.exists (fun n -> t.kinds.(n) = K_opt) (ancestors t t.leaf_node.(tid))

(* ------------------------------------------------------------------ *)
(* Debug printing                                                      *)
(* ------------------------------------------------------------------ *)

let rec pp_node t buf indent n =
  let pad = String.make indent ' ' in
  match t.kinds.(n) with
  | K_leaf tp ->
    Buffer.add_string buf
      (Printf.sprintf "%st%d: %s\n" pad tp.id (Pp.triple_pat_to_string tp.pat))
  | K_and ->
    Buffer.add_string buf (pad ^ "AND\n");
    List.iter (pp_node t buf (indent + 2)) t.children.(n)
  | K_or ->
    Buffer.add_string buf (pad ^ "OR\n");
    List.iter (pp_node t buf (indent + 2)) t.children.(n)
  | K_opt ->
    Buffer.add_string buf (pad ^ "OPTIONAL\n");
    List.iter (pp_node t buf (indent + 2)) t.children.(n)

let to_string t =
  let buf = Buffer.create 256 in
  pp_node t buf 0 t.root;
  Buffer.contents buf
