lib/core/vertical_store.ml: Bottom_up Dataset_stats Dict_table Hashtbl List Merge Printf Rdf Relsql Results Sparql Sqlgen Store
