(** Benchmark harness shared by every experiment: store construction,
    warm-cache timing (the paper's protocol: discard the first run,
    average the rest), outcome classification against an oracle count,
    and fixed-width table printing. *)

type config = {
  scale : int;  (** approximate triples per dataset *)
  runs : int;  (** timed runs after the warm-up run *)
  timeout : float;  (** per-query timeout in seconds (paper: 10 min) *)
  experiments : string list;  (** empty = all *)
  json_dir : string option;  (** write BENCH_*.json result files here *)
  json_tag : string option;
      (** suffix spliced into result file names ([BENCH_x.json] ->
          [BENCH_x_TAG.json]) so e.g. a small-scale smoke run can sit
          next to a committed full-scale result without clobbering it *)
  domains : int;  (** largest executor-domain count in the parallel
                      scaling experiment (the curve doubles up to it) *)
  compare : (string * string) option;
      (** [--compare OLD NEW]: diff two BENCH_*.json files instead of
          running experiments; exits non-zero on a >10% regression *)
}

let default_config =
  { scale = 30_000; runs = 3; timeout = 10.0; experiments = [];
    json_dir = None; json_tag = None; domains = 4; compare = None }

let parse_args () =
  let cfg = ref default_config in
  let cmp_old = ref "" in
  let specs =
    [ ("--scale", Arg.Int (fun s -> cfg := { !cfg with scale = s }),
       "N  approximate dataset size in triples (default 30000)");
      ("--compare",
       Arg.Tuple
         [ Arg.String (fun a -> cmp_old := a);
           Arg.String
             (fun b -> cfg := { !cfg with compare = Some (!cmp_old, b) }) ],
       "OLD NEW  compare two BENCH_*.json result files (per-experiment and \
        overall geomean deltas; exit 1 when NEW is >10% slower overall)");
      ("--runs", Arg.Int (fun r -> cfg := { !cfg with runs = r }),
       "N  timed runs per query after warm-up (default 3)");
      ("--timeout", Arg.Float (fun t -> cfg := { !cfg with timeout = t }),
       "S  per-query timeout in seconds (default 10)");
      ("-e", Arg.String (fun e -> cfg := { !cfg with experiments = e :: !cfg.experiments }),
       "NAME  run only this experiment (repeatable)");
      ("--json-dir", Arg.String (fun d -> cfg := { !cfg with json_dir = Some d }),
       "DIR  also write machine-readable BENCH_*.json result files into DIR");
      ("--json-tag", Arg.String (fun t -> cfg := { !cfg with json_tag = Some t }),
       "TAG  write result files as BENCH_*_TAG.json instead of BENCH_*.json");
      ("--domains", Arg.Int (fun n -> cfg := { !cfg with domains = n }),
       "N  largest executor-domain count in the parallel scaling curve \
        (default 4)") ]
  in
  Arg.parse specs
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench [--scale N] [--runs N] [--timeout S] [--json-dir DIR] \
     [--json-tag TAG] [--domains N] \
     [-e experiment]... | bench --compare OLD.json NEW.json";
  !cfg

let enabled cfg name = cfg.experiments = [] || List.mem name cfg.experiments

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n%!" title

(* ------------------------------------------------------------------ *)
(* Store construction                                                  *)
(* ------------------------------------------------------------------ *)

type system = { sys_name : string; store : Db2rdf.Store.t; load_seconds : float }

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let build_db2rdf ?(name = "DB2RDF") ?(options = Db2rdf.Engine.default_options)
    triples =
  let (engine_store, _, _), load_seconds =
    timed (fun () ->
        Db2rdf.Engine.create_colored ~options
          ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples)
  in
  { sys_name = name; store = Db2rdf.Engine.to_store ~name engine_store; load_seconds }

let build_db2rdf_naive triples =
  build_db2rdf ~name:"DB2RDF-naive"
    ~options:
      { Db2rdf.Engine.default_options with
        optimize = false; merge = false; late_fuse = false }
    triples

let build_triple_store triples =
  let ts, load_seconds =
    timed (fun () ->
        let ts = Db2rdf.Triple_store.create () in
        Db2rdf.Triple_store.load ts triples;
        ts)
  in
  { sys_name = "TripleStore"; store = Db2rdf.Triple_store.to_store ts; load_seconds }

let build_vertical_store triples =
  let vs, load_seconds =
    timed (fun () ->
        let vs = Db2rdf.Vertical_store.create () in
        Db2rdf.Vertical_store.load vs triples;
        vs)
  in
  { sys_name = "VertStore"; store = Db2rdf.Vertical_store.to_store vs; load_seconds }

let build_native triples =
  let ns, load_seconds =
    timed (fun () ->
        let ns = Db2rdf.Native_store.create () in
        Db2rdf.Native_store.load ns triples;
        ns)
  in
  { sys_name = "NativeRef"; store = Db2rdf.Native_store.to_store ns; load_seconds }

(* ------------------------------------------------------------------ *)
(* Query measurement                                                   *)
(* ------------------------------------------------------------------ *)

type measurement = {
  m_query : string;
  m_system : string;
  m_outcome : [ `Complete of int | `Timeout | `Error of string | `Unsupported ];
  m_seconds : float;  (** mean wall-clock over timed runs; timeout value
                          when timed out *)
}

(** Measure one query on one system: one warm-up run, then [runs] timed
    runs, mean reported (the paper's warm-cache protocol). [expected]
    is the oracle row count; a differing count classifies as error. *)
let measure cfg ?expected (sys : system) qname (q : Sparql.Ast.query) : measurement =
  let run1 () = Db2rdf.Store.run ~timeout:cfg.timeout sys.store q in
  match run1 () with
  | Db2rdf.Store.Timed_out, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
      m_seconds = cfg.timeout }
  | Db2rdf.Store.Unsupported _, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Unsupported;
      m_seconds = 0.0 }
  | Db2rdf.Store.Failed msg, _ ->
    { m_query = qname; m_system = sys.sys_name; m_outcome = `Error msg;
      m_seconds = 0.0 }
  | Db2rdf.Store.Complete first, _ ->
    let count = List.length first.Sparql.Ref_eval.rows in
    (match expected with
     | Some n when n <> count ->
       { m_query = qname; m_system = sys.sys_name;
         m_outcome = `Error (Printf.sprintf "expected %d rows, got %d" n count);
         m_seconds = 0.0 }
     | _ ->
       let total = ref 0.0 in
       let timed_out = ref false in
       for _ = 1 to cfg.runs do
         match run1 () with
         | Db2rdf.Store.Complete _, dt -> total := !total +. dt
         | _ -> timed_out := true
       done;
       if !timed_out then
         { m_query = qname; m_system = sys.sys_name; m_outcome = `Timeout;
           m_seconds = cfg.timeout }
       else
         { m_query = qname; m_system = sys.sys_name;
           m_outcome = `Complete count;
           m_seconds = !total /. float_of_int cfg.runs })

(** Measure one query and additionally collect one per-operator metrics
    tree via the store's EXPLAIN ANALYZE path (a single extra execution;
    [None] when the store has no relational executor or the analyzed run
    fails). *)
let measure_analyzed cfg ?expected (sys : system) qname q :
  measurement * Relsql.Opstats.t option =
  let m = measure cfg ?expected sys qname q in
  let stats =
    match m.m_outcome with
    | `Complete _ ->
      (try snd (sys.store.Db2rdf.Store.analyze ~timeout:cfg.timeout q)
       with _ -> None)
    | _ -> None
  in
  (m, stats)

let outcome_cell (m : measurement) =
  match m.m_outcome with
  | `Complete _ -> Printf.sprintf "%8.1f" (m.m_seconds *. 1000.0)
  | `Timeout -> " timeout"
  | `Error _ -> "   error"
  | `Unsupported -> "  unsup."

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let print_row widths cells =
  List.iter2 (fun w c -> Printf.printf "%-*s" (w + 2) c) widths cells;
  print_newline ()

let print_table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  print_row widths header;
  print_row widths (List.map (fun w -> String.make w '-') widths);
  List.iter (print_row widths) rows;
  flush stdout

(* ------------------------------------------------------------------ *)
(* JSON result files                                                   *)
(* ------------------------------------------------------------------ *)

(** Just enough JSON to serialize benchmark results — no external
    dependency. *)
type json =
  | J_int of int
  | J_float of float
  | J_bool of bool
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_write buf indent j =
  let pad n = String.make n ' ' in
  match j with
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_bool b -> Buffer.add_string buf (string_of_bool b)
  | J_float x ->
    (* JSON has no NaN/Infinity; clamp to null-ish zero. *)
    if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.6g" x)
    else Buffer.add_string buf "0"
  | J_str s -> Buffer.add_string buf ("\"" ^ json_escape s ^ "\"")
  | J_list [] -> Buffer.add_string buf "[]"
  | J_list items ->
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        json_write buf (indent + 2) item)
      items;
    Buffer.add_string buf ("\n" ^ pad indent ^ "]")
  | J_obj [] -> Buffer.add_string buf "{}"
  | J_obj fields ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2) ^ "\"" ^ json_escape k ^ "\": ");
        json_write buf (indent + 2) v)
      fields;
    Buffer.add_string buf ("\n" ^ pad indent ^ "}")

let json_to_string j =
  let buf = Buffer.create 4096 in
  json_write buf 0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** Write a result file into [cfg.json_dir] (no-op when unset). A
    top-level object gets a host header — core count and compiler
    version — prepended, so result files carry the machine context they
    were measured on. *)
let write_json cfg ~file j =
  match cfg.json_dir with
  | None -> ()
  | Some dir ->
    let j =
      match j with
      | J_obj fields ->
        J_obj
          (("host_cores", J_int (Domain.recommended_domain_count ()))
           :: ("ocaml_version", J_str Sys.ocaml_version)
           :: fields)
      | j -> j
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let file =
      match cfg.json_tag with
      | None -> file
      | Some tag ->
        Filename.remove_extension file ^ "_" ^ tag
        ^ Filename.extension file
    in
    let path = Filename.concat dir file in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (json_to_string j));
    Printf.printf "wrote %s\n%!" path

(** Serialize a per-operator metrics tree. *)
let rec opstats_json (s : Relsql.Opstats.t) : json =
  J_obj
    ([ ("op", J_str s.Relsql.Opstats.label);
       ("rows_in", J_int s.Relsql.Opstats.rows_in);
       ("rows_out", J_int s.Relsql.Opstats.rows_out) ]
     @ (if s.Relsql.Opstats.index_probes > 0 then
          [ ("index_probes", J_int s.Relsql.Opstats.index_probes) ]
        else [])
     @ (if s.Relsql.Opstats.build_rows > 0 then
          [ ("build_rows", J_int s.Relsql.Opstats.build_rows) ]
        else [])
     @ (if s.Relsql.Opstats.workers > 1 then
          [ ("workers", J_int s.Relsql.Opstats.workers);
            ("par_ms", J_float s.Relsql.Opstats.par_ms) ]
        else [])
     @ (if s.Relsql.Opstats.partitions > 0 then
          [ ("partitions", J_int s.Relsql.Opstats.partitions);
            ("build_workers", J_int s.Relsql.Opstats.build_workers);
            ("build_ms", J_float s.Relsql.Opstats.build_ms) ]
        else [])
     @ (if s.Relsql.Opstats.cache_hits + s.Relsql.Opstats.cache_misses > 0 then
          [ ("scan_cache_hits", J_int s.Relsql.Opstats.cache_hits);
            ("scan_cache_misses", J_int s.Relsql.Opstats.cache_misses) ]
        else [])
     @ [ ("ms", J_float (1000.0 *. s.Relsql.Opstats.seconds));
         ("self_ms", J_float (1000.0 *. Relsql.Opstats.self_seconds s)) ]
     @
     match s.Relsql.Opstats.children with
     | [] -> []
     | cs -> [ ("children", J_list (List.map opstats_json cs)) ])

let measurement_json (m : measurement) : json =
  let outcome, extra =
    match m.m_outcome with
    | `Complete n -> ("complete", [ ("results", J_int n) ])
    | `Timeout -> ("timeout", [])
    | `Error msg -> ("error", [ ("message", J_str msg) ])
    | `Unsupported -> ("unsupported", [])
  in
  J_obj
    ([ ("system", J_str m.m_system); ("outcome", J_str outcome) ]
     @ extra
     @ [ ("ms", J_float (1000.0 *. m.m_seconds)) ])

(* ------------------------------------------------------------------ *)
(* JSON reading + result comparison (--compare)                        *)
(* ------------------------------------------------------------------ *)

exception Json_error of string

(** Minimal JSON parser, the dual of {!json_write} — enough to read the
    BENCH_*.json files this harness produces. *)
let json_parse (s : string) : json =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then s.[!i] else '\000' in
  let advance () = incr i in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !i)) in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
         | '"' -> Buffer.add_char buf '"'; advance ()
         | '\\' -> Buffer.add_char buf '\\'; advance ()
         | '/' -> Buffer.add_char buf '/'; advance ()
         | 'n' -> Buffer.add_char buf '\n'; advance ()
         | 't' -> Buffer.add_char buf '\t'; advance ()
         | 'r' -> Buffer.add_char buf '\r'; advance ()
         | 'b' -> Buffer.add_char buf '\b'; advance ()
         | 'f' -> Buffer.add_char buf '\012'; advance ()
         | 'u' ->
           advance ();
           if !i + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !i 4) in
           i := !i + 4;
           (* BENCH files only escape control chars; keep it simple *)
           if code < 128 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !i in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while num_char (peek ()) do advance () done;
    let tok = String.sub s start (!i - start) in
    match int_of_string_opt tok with
    | Some x -> J_int x
    | None ->
      (match float_of_string_opt tok with
       | Some x -> J_float x
       | None -> fail ("bad number " ^ tok))
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail ("bad literal, expected " ^ word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); J_obj [] end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ()
          | '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        J_obj (List.rev !fields)
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); J_list [] end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | ',' -> advance (); elements ()
          | ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        J_list (List.rev !items)
      end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_str "true")
    | 'f' -> literal "false" (J_str "false")
    | 'n' -> literal "null" (J_str "null")
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then fail "trailing garbage";
  v

let json_read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  json_parse s

(** Flatten a BENCH json tree to [(key, milliseconds)] pairs. A key is
    the '/'-joined chain of identifying fields (experiment, workload,
    query, system, grid coordinates) from the root down to a timing
    field ("ms", "boxed_ms", "packed_ms"). Non-complete measurements
    and per-operator metric trees are skipped. *)
let collect_timings (j : json) : (string * float) list =
  let ms_of = function J_int x -> float_of_int x | J_float x -> x | _ -> 0.0 in
  let rec walk path j acc =
    match j with
    | J_list items -> List.fold_left (fun acc it -> walk path it acc) acc items
    | J_obj fields ->
      if List.mem_assoc "op" fields then acc (* opstats subtree *)
      else begin
        let skip =
          match List.assoc_opt "outcome" fields with
          | Some (J_str o) -> o <> "complete"
          | _ -> false
        in
        if skip then acc
        else begin
          let tag k =
            match List.assoc_opt k fields with
            | Some (J_str s) -> Some s
            | Some (J_int i) -> Some (Printf.sprintf "%s=%d" k i)
            | _ -> None
          in
          let path =
            path
            @ List.filter_map tag
                [ "experiment"; "workload"; "query"; "system"; "domains";
                  "partitions" ]
          in
          List.fold_left
            (fun acc (k, v) ->
              match (k, v) with
              | ("ms" | "boxed_ms" | "packed_ms"), (J_int _ | J_float _) ->
                let key =
                  String.concat "/" (path @ if k = "ms" then [] else [ k ])
                in
                (key, ms_of v) :: acc
              | _, (J_obj _ | J_list _) -> walk path v acc
              | _ -> acc)
            acc fields
        end
      end
    | _ -> acc
  in
  List.rev (walk [] j [])

(** The pure core of [--compare]: shared keys with both timings, keys
    present on only one side (added in [new], removed from [old]), and
    the overall geometric-mean ratio over the shared keys only — so a
    run that gained or lost whole experiments is diffed on the
    intersection instead of failing or skewing the mean. *)
type comparison = {
  c_shared : (string * float * float) list;  (** key, old ms, new ms *)
  c_removed : string list;  (** keys only the old file has *)
  c_added : string list;  (** keys only the new file has *)
  c_overall : float option;  (** geomean of new/old over shared keys *)
}

let geomean = function
  | [] -> None
  | xs ->
    Some
      (exp
         (List.fold_left (fun s x -> s +. log x) 0.0 xs
          /. float_of_int (List.length xs)))

let compare_timings (a : (string * float) list) (b : (string * float) list) :
    comparison =
  let shared =
    List.filter_map
      (fun (k, va) ->
        match List.assoc_opt k b with
        | Some vb when va > 0.0 && vb > 0.0 -> Some (k, va, vb)
        | _ -> None)
      a
  in
  let only xs ys = List.filter_map
      (fun (k, _) -> if List.mem_assoc k ys then None else Some k) xs
  in
  { c_shared = shared;
    c_removed = only a b;
    c_added = only b a;
    c_overall = geomean (List.map (fun (_, va, vb) -> vb /. va) shared) }

(** Compare two benchmark result files. Prints per-key and
    per-experiment deltas, lists experiments present on only one side
    (excluded from every mean), and returns [false] (a regression) only
    when the geometric mean over the {e shared} timings shows [new]
    more than 10% slower than [old]. *)
let compare_results old_file new_file =
  let a = collect_timings (json_read_file old_file) in
  let b = collect_timings (json_read_file new_file) in
  let c = compare_timings a b in
  let list_extra label keys =
    if keys <> [] then begin
      Printf.printf "%s (%d keys, excluded from the comparison):\n" label
        (List.length keys);
      List.iter (fun k -> Printf.printf "  %s\n" k) keys
    end
  in
  list_extra "only in old" c.c_removed;
  list_extra "only in new" c.c_added;
  match c.c_overall with
  | None ->
    Printf.printf "no shared completed timings between %s and %s\n" old_file
      new_file;
    (* Disjoint experiment sets leave nothing to judge — that is not a
       regression; two files with no timings at all are. *)
    c.c_removed <> [] || c.c_added <> []
  | Some overall ->
    Printf.printf "%-64s %10s %10s %8s\n" "key" "old ms" "new ms" "ratio";
    Printf.printf "%s\n" (String.make 94 '-');
    List.iter
      (fun (k, va, vb) ->
        Printf.printf "%-64s %10.2f %10.2f %7.2fx%s\n" k va vb (vb /. va)
          (if vb > va *. 1.10 then "  <-- slower" else ""))
      c.c_shared;
    (* group by leading path component (the experiment) *)
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (k, va, vb) ->
        let exp_name =
          match String.index_opt k '/' with
          | Some p -> String.sub k 0 p
          | None -> k
        in
        Hashtbl.replace groups exp_name
          ((vb /. va)
           :: (try Hashtbl.find groups exp_name with Not_found -> [])))
      c.c_shared;
    Printf.printf "\nper-experiment geomean (new/old; < 1 is faster):\n";
    Hashtbl.iter
      (fun name ratios ->
        match geomean ratios with
        | Some g ->
          Printf.printf "  %-32s %6.3fx over %d timings\n" name g
            (List.length ratios)
        | None -> ())
      groups;
    Printf.printf "\noverall geomean: %.3fx over %d shared timings\n" overall
      (List.length c.c_shared);
    if overall > 1.10 then begin
      Printf.printf "REGRESSION: new results are >10%% slower overall\n";
      false
    end
    else begin
      Printf.printf "OK: within the 10%% regression budget\n";
      true
    end
