(** Growable row batches: the executor's intermediate representation.

    A batch is a column layout plus a single flat [Value.t array] holding
    rows contiguously (row-major). Operators fill batches by blitting
    whole rows, so the per-row cost of an operator is a handful of array
    writes instead of a list cons and a fresh array allocation per
    candidate row. Ownership is linear: a batch produced by one operator
    is consumed by exactly one parent, which may mutate it in place
    (see {!retain} and {!permute}). *)

type t = {
  layout : Expr_eval.layout;
  width : int;
  mutable data : Value.t array;  (* row-major; capacity = length / width *)
  mutable nrows : int;
}

let create ?(capacity = 16) (layout : Expr_eval.layout) =
  let width = Array.length layout in
  let capacity = max 1 capacity in
  { layout; width; data = Array.make (capacity * width) Value.Null; nrows = 0 }

let layout b = b.layout
let width b = b.width
let length b = b.nrows

let column_names b = Array.to_list (Array.map snd b.layout)

(** Same rows, re-qualified columns (used for subquery aliasing). The
    data array is shared: the original batch must not be used again. *)
let with_layout b (layout : Expr_eval.layout) =
  if Array.length layout <> b.width then
    invalid_arg "Batch.with_layout: width mismatch";
  { b with layout }

(* Geometric growth from a sane floor: doubling alone is amortized
   linear, but a batch created with a tiny capacity hint (the executor
   caps hints at 1024, and selective operators hint 1) used to crawl
   through the 1→2→4→… ladder, paying log2(n) reallocations before
   reaching useful sizes. Growing to at least [min_grow_cells] on the
   first overflow skips the small rungs for one extra array's worth of
   slack. *)
let min_grow_cells = 256

let grow b needed =
  let cap = max needed (max min_grow_cells (2 * Array.length b.data)) in
  let bigger = Array.make cap Value.Null in
  Array.blit b.data 0 bigger 0 (b.nrows * b.width);
  b.data <- bigger

let ensure_room b =
  let needed = (b.nrows + 1) * b.width in
  if needed > Array.length b.data then grow b needed

(* Room for [extra] more rows in one reallocation (bulk appends). *)
let ensure_room_for b extra =
  let needed = (b.nrows + extra) * b.width in
  if needed > Array.length b.data then grow b needed

(** Append a row by copying [width] cells from [src] (which may be a
    shared scratch array — the batch never retains it). *)
let push_row b (src : Value.t array) =
  ensure_room b;
  Array.blit src 0 b.data (b.nrows * b.width) b.width;
  b.nrows <- b.nrows + 1

let get b i j = b.data.((i * b.width) + j)

let set b i j v = b.data.((i * b.width) + j) <- v

(** Copy row [i] into [dst] starting at [dstoff]. *)
let blit_row b i (dst : Value.t array) dstoff =
  Array.blit b.data (i * b.width) dst dstoff b.width

let row_copy b i = Array.sub b.data (i * b.width) b.width

(** In-place retain: [f] is called with a scratch array holding each row
    in turn; rows for which it returns [false] are dropped, the rest are
    compacted to the front. *)
let retain b (f : Value.t array -> bool) =
  let scratch = Array.make b.width Value.Null in
  let kept = ref 0 in
  for i = 0 to b.nrows - 1 do
    blit_row b i scratch 0;
    if f scratch then begin
      if !kept <> i then
        Array.blit b.data (i * b.width) b.data (!kept * b.width) b.width;
      incr kept
    end
  done;
  b.nrows <- !kept

(** A new batch holding rows [idx.(0); idx.(1); ...] of [b], in that
    order (indices may repeat or be dropped). *)
let permute b (idx : int array) =
  let out = create ~capacity:(Array.length idx) b.layout in
  Array.iter
    (fun i ->
      ensure_room out;
      Array.blit b.data (i * b.width) out.data (out.nrows * out.width) out.width;
      out.nrows <- out.nrows + 1)
    idx;
  out

(** An independent copy (fresh data array, exact capacity). *)
let copy b = { b with data = Array.sub b.data 0 (b.nrows * b.width) }

(** [project b layout cols] is a new batch holding, for every row of
    [b], the cells at positions [cols] (in that order) under the given
    layout — the tight loop behind column-only projections. *)
let project b (layout : Expr_eval.layout) (cols : int array) =
  let w = Array.length cols in
  if Array.length layout <> w then invalid_arg "Batch.project: width mismatch";
  let out = create ~capacity:(max 1 b.nrows) layout in
  let data = out.data in
  for i = 0 to b.nrows - 1 do
    let base = i * b.width and obase = i * w in
    for j = 0 to w - 1 do
      data.(obase + j) <- b.data.(base + cols.(j))
    done
  done;
  out.nrows <- b.nrows;
  out

(** [push_join b ~src i extra iw] appends row [i] of [src] followed by
    the first [iw] cells of [extra] — an index-join output row written
    straight into the batch, with no intermediate scratch row. *)
let push_join b ~(src : t) i (extra : Value.t array) iw =
  ensure_room b;
  let base = b.nrows * b.width in
  Array.blit src.data (i * src.width) b.data base src.width;
  Array.blit extra 0 b.data (base + src.width) iw;
  b.nrows <- b.nrows + 1

(** [push_join_sel b ~src i extra sel] is {!push_join} with the extra
    cells picked by position: cell [j] comes from [extra.(sel.(j))]
    (column-pruned index-join output). *)
let push_join_sel b ~(src : t) i (extra : Value.t array) (sel : int array) =
  ensure_room b;
  let base = b.nrows * b.width in
  Array.blit src.data (i * src.width) b.data base src.width;
  let off = base + src.width in
  for j = 0 to Array.length sel - 1 do
    b.data.(off + j) <- extra.(sel.(j))
  done;
  b.nrows <- b.nrows + 1

(** Append row [i] of [src], right-padded with NULLs to this batch's
    width (the unmatched side of a left outer join). *)
let push_padded b ~(src : t) i =
  ensure_room b;
  let base = b.nrows * b.width in
  Array.blit src.data (i * src.width) b.data base src.width;
  Array.fill b.data (base + src.width) (b.width - src.width) Value.Null;
  b.nrows <- b.nrows + 1

(** Append every row of [src] to [dst] (widths must match). Rows are
    contiguous in both batches, so this is one capacity check and one
    blit, not a per-row loop. *)
let append dst src =
  if src.width <> dst.width then invalid_arg "Batch.append: width mismatch";
  if src.nrows > 0 then begin
    ensure_room_for dst src.nrows;
    Array.blit src.data 0 dst.data (dst.nrows * dst.width)
      (src.nrows * src.width);
    dst.nrows <- dst.nrows + src.nrows
  end

(** One batch holding the rows of [parts] in order — how parallel
    operators reassemble per-morsel outputs deterministically. *)
let concat (layout : Expr_eval.layout) (parts : t array) =
  let total = Array.fold_left (fun a p -> a + p.nrows) 0 parts in
  let out = create ~capacity:(max 1 total) layout in
  Array.iter (fun p -> append out p) parts;
  out

let iter (f : Value.t array -> unit) b =
  let scratch = Array.make b.width Value.Null in
  for i = 0 to b.nrows - 1 do
    blit_row b i scratch 0;
    f scratch
  done

let to_rows b = List.init b.nrows (fun i -> row_copy b i)

let of_rows (layout : Expr_eval.layout) (rows : Value.t array list) =
  let b = create ~capacity:(List.length rows) layout in
  List.iter (fun r -> push_row b r) rows;
  b
