(** The differential fuzz loop: generate (graph, query) cases, run each
    on the reference evaluator (oracle) and every relational backend,
    compare, shrink divergences, and write `.repro` reproducer files.

    Equivalence is stricter than the property tests in [test/helpers.ml]:

    - no LIMIT/OFFSET: multiset equality of rows ({!Sparql.Ref_eval.canonical});
    - ORDER BY on projected variables: additionally the backend's rows
      must be sorted under the oracle's ordering key (ties may permute);
    - LIMIT/OFFSET: the oracle runs {e without} the modifiers; the
      backend must return exactly [slice] rows, every returned row must
      belong to the full oracle answer, and — when the ordering is
      checkable — the sequence of sort keys must equal the sliced
      oracle's key sequence.

    A backend raising an unexpected exception counts as a divergence
    ([Crash]); [Timeout] and [Unsupported] do not. *)

open Sparql.Ast

type results = Sparql.Ref_eval.results

(* ------------------------------------------------------------------ *)
(* Backends                                                            *)
(* ------------------------------------------------------------------ *)

(** Fresh stores loaded with [triples]. The hash-mapped engine gets a
    deliberately narrow layout (3 columns) so predicate conflicts and
    spill rows occur even on small fuzz graphs.

    [domains > 1] is the parallel-differential mode: every backend
    executes its SQL over that many domains while the oracle stays
    sequential, so any morsel-parallelism bug (ordering, partial-merge,
    races) surfaces as a divergence. Fuzz graphs are tiny, so the
    parallel-dispatch threshold is dropped to 2 rows — otherwise the
    parallel operators would never actually run.

    [load_domains > 1] additionally builds every engine store through
    the parallel bulk loader, so a load bug (ids, row order, lids,
    spill flags) surfaces as a query divergence against the oracle.

    [join_partitions] sets the radix partition count for parallel
    hash-join builds on every backend (0 = auto), so a partitioned-
    build bug (routing, partition order, NULL keys) surfaces as a
    divergence too.

    [compressed] freezes every backend's tables into bit-packed
    columnar storage after load while the oracle keeps evaluating the
    graph directly — so any compressed-path bug (packing, zone-map
    pruning, word-at-a-time equality, posting run-length encoding)
    surfaces as a divergence against the uncompressed semantics.

    [wcoj] turns on the worst-case-optimal join on every DB2RDF engine
    AND forces the planner's selector to always choose the leapfrog
    operator for recognized statements (the statistics-informed chooser
    would rarely fire on tiny fuzz graphs), so any leapfrog bug —
    iterator seeks, multiplicity, NULL handling, emission order —
    surfaces as a divergence against the sequential oracle.

    [extvp] turns on ExtVP semi-join reductions on every DB2RDF engine
    AND forces the registry to advise and retain every candidate
    reduction regardless of selectivity (tiny fuzz graphs would rarely
    pass the threshold), so any reduction bug — membership, stale
    tables after writes, packed reductions, scan-cache collisions —
    surfaces as a divergence against the sequential oracle. *)
let force_wcoj_selector (e : Db2rdf.Engine.t) =
  Relsql.Database.set_wcoj_selector
    (Db2rdf.Loader.database (Db2rdf.Engine.loader e))
    (Some (fun _ -> { Relsql.Wcoj.use_wcoj = true; est_rows = 0 }))

let force_extvp (e : Db2rdf.Engine.t) =
  Option.iter
    (fun r -> Relsql.Extvp.set_force r true)
    (Db2rdf.Engine.extvp_registry e)

let make_backends ?only ?(domains = 1) ?(load_domains = 1)
    ?(join_partitions = 0) ?(compressed = false) ?(wcoj = false)
    ?(extvp = false) (triples : Rdf.Triple.t list) : Db2rdf.Store.t list =
  if domains > 1 || join_partitions > 1 then
    Relsql.Executor.par_min_rows := 2;
  let options =
    { Db2rdf.Engine.default_options with parallelism = domains; load_domains;
      join_partitions; compress = compressed; wcoj; extvp }
  in
  let forced e =
    if wcoj then force_wcoj_selector e;
    if extvp then force_extvp e
  in
  (* Triple/vertical stores build their catalogs internally; they pick
     the parallelism, partition count and compression up from the
     process-wide defaults at creation. *)
  let saved = !Relsql.Database.default_parallelism in
  let saved_parts = !Relsql.Database.default_join_partitions in
  let saved_compress = !Relsql.Database.default_compress in
  Relsql.Database.default_parallelism := domains;
  Relsql.Database.default_join_partitions := join_partitions;
  Relsql.Database.default_compress := compressed;
  let restore () =
    Relsql.Database.default_parallelism := saved;
    Relsql.Database.default_join_partitions := saved_parts;
    Relsql.Database.default_compress := saved_compress
  in
  let thunks =
    [ ( "DB2RDF-hash",
        fun () ->
          let e =
            Db2rdf.Engine.create
              ~layout:(Db2rdf.Layout.make ~dph_cols:3 ~rph_cols:3) ~options ()
          in
          Db2rdf.Engine.load e triples;
          forced e;
          Db2rdf.Engine.to_store ~name:"DB2RDF-hash" e );
      ( "DB2RDF-colored",
        fun () ->
          let e, _, _ =
            Db2rdf.Engine.create_colored
              ~layout:(Db2rdf.Layout.make ~dph_cols:4 ~rph_cols:4) ~options
              triples
          in
          forced e;
          Db2rdf.Engine.to_store ~name:"DB2RDF-colored" e );
      ( "DB2RDF-unopt",
        fun () ->
          let options =
            { Db2rdf.Engine.default_options with
              optimize = false; merge = false; late_fuse = false;
              parallelism = domains; load_domains; join_partitions;
              compress = compressed; wcoj; extvp }
          in
          let e =
            Db2rdf.Engine.create
              ~layout:(Db2rdf.Layout.make ~dph_cols:3 ~rph_cols:3) ~options ()
          in
          Db2rdf.Engine.load e triples;
          forced e;
          Db2rdf.Engine.to_store ~name:"DB2RDF-unopt" e );
      ( "TripleStore",
        fun () ->
          let ts = Db2rdf.Triple_store.create () in
          Db2rdf.Triple_store.load ts triples;
          Db2rdf.Triple_store.to_store ts );
      ( "VertStore",
        fun () ->
          let vs = Db2rdf.Vertical_store.create () in
          Db2rdf.Vertical_store.load vs triples;
          Db2rdf.Vertical_store.to_store vs ) ]
  in
  let thunks =
    match only with
    | None -> thunks
    | Some name ->
      (match List.filter (fun (n, _) -> n = name) thunks with
       | [] ->
         invalid_arg
           (Printf.sprintf "unknown backend %S (expected one of: %s)" name
              (String.concat ", " (List.map fst thunks)))
       | fs -> fs)
  in
  let stores =
    match List.map (fun (_, f) -> f ()) thunks with
    | stores -> restore (); stores
    | exception e -> restore (); raise e
  in
  stores

let backend_names = [ "DB2RDF-hash"; "DB2RDF-colored"; "DB2RDF-unopt"; "TripleStore"; "VertStore" ]

type outcome =
  | Complete of results
  | Timeout
  | Unsupported of string
  | Crash of string

let run_backend ~timeout (store : Db2rdf.Store.t) (q : query) : outcome =
  match Db2rdf.Store.run ~timeout store q with
  | Db2rdf.Store.Complete r, _ -> Complete r
  | Db2rdf.Store.Timed_out, _ -> Timeout
  | Db2rdf.Store.Unsupported m, _ -> Unsupported m
  | Db2rdf.Store.Failed m, _ -> Crash m
  | exception e -> Crash (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Equivalence                                                         *)
(* ------------------------------------------------------------------ *)

(* Replicates Ref_eval.order_key for materialized rows: unbound sorts
   first, then numerics by value, then everything else by lexical
   form. *)
let term_key : Rdf.Term.t option -> int * float * string = function
  | None -> (-1, 0.0, "")
  | Some t ->
    (match Rdf.Term.as_number t with
     | Some n -> (0, n, "")
     | None -> (1, 0.0, Rdf.Term.to_string t))

(* ORDER BY is checkable when every condition is a plain variable that
   the query projects (the only form sqlgen supports anyway). Returns
   per-row key extractors paired with the sort direction. *)
let order_spec (q : query) (r : results) :
  ((Rdf.Term.t option list -> int * float * string) * bool) list option =
  if q.order_by = [] then None
  else begin
    let find_var v =
      let rec idx i = function
        | [] -> None
        | x :: _ when x = v -> Some i
        | _ :: rest -> idx (i + 1) rest
      in
      idx 0 r.Sparql.Ref_eval.vars
    in
    let specs =
      List.map
        (fun { ord_expr; ord_asc } ->
          match ord_expr with
          | E_var v ->
            (match find_var v with
             | Some i -> Some ((fun row -> term_key (List.nth row i)), ord_asc)
             | None -> None)
          | _ -> None)
        q.order_by
    in
    if List.for_all Option.is_some specs then
      Some (List.map Option.get specs)
    else None
  end

let compare_rows specs a b =
  let rec go = function
    | [] -> 0
    | (key, asc) :: rest ->
      let c = Stdlib.compare (key a) (key b) in
      if c <> 0 then if asc then c else -c else go rest
  in
  go specs

let rec is_sorted specs = function
  | a :: (b :: _ as rest) ->
    compare_rows specs a b <= 0 && is_sorted specs rest
  | _ -> true

let slice ?offset ?limit rows =
  let rows =
    match offset with
    | None -> rows
    | Some k ->
      let rec drop n = function
        | xs when n <= 0 -> xs
        | [] -> []
        | _ :: rest -> drop (n - 1) rest
      in
      drop k rows
  in
  match limit with
  | None -> rows
  | Some n ->
    let rec take n = function
      | _ when n <= 0 -> []
      | [] -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take n rows

(* Multiset difference a \ b over canonical row strings; empty when a
   is a sub-multiset of b. *)
let multiset_extra a b =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    b;
  List.filter
    (fun k ->
      match Hashtbl.find_opt tbl k with
      | Some n when n > 0 -> Hashtbl.replace tbl k (n - 1); false
      | _ -> true)
    a

let row_strings (r : results) =
  List.map
    (fun row ->
      String.concat "\t"
        (List.map (function Some t -> Rdf.Term.to_string t | None -> "") row))
    r.Sparql.Ref_eval.rows

(** [check_equiv q ~oracle_full got]: [oracle_full] is the reference
    answer with LIMIT/OFFSET stripped. Returns [Error detail] on
    divergence. *)
let check_equiv (q : query) ~(oracle_full : results) (got : results) :
  (unit, string) result =
  let expected_rows =
    slice ?offset:q.offset ?limit:q.limit oracle_full.Sparql.Ref_eval.rows
  in
  let n_expected = List.length expected_rows in
  let n_got = List.length got.Sparql.Ref_eval.rows in
  if n_got <> n_expected then
    Error (Printf.sprintf "row count: oracle %d, backend %d" n_expected n_got)
  else if q.limit = None && q.offset = None then begin
    if Sparql.Ref_eval.canonical oracle_full <> Sparql.Ref_eval.canonical got
    then Error "row multisets differ"
    else
      match order_spec q got with
      | Some specs when not (is_sorted specs got.Sparql.Ref_eval.rows) ->
        Error "backend rows not sorted per ORDER BY"
      | _ -> Ok ()
  end
  else begin
    (* Under LIMIT/OFFSET the backend may pick any correctly-ordered
       slice; its rows must all come from the full oracle answer. *)
    let extra = multiset_extra (row_strings got) (row_strings oracle_full) in
    if extra <> [] then
      Error
        (Printf.sprintf "backend returned row outside oracle answer: %s"
           (List.hd extra))
    else
      match order_spec q got with
      | None -> Ok ()
      | Some specs ->
        if not (is_sorted specs got.Sparql.Ref_eval.rows) then
          Error "backend rows not sorted per ORDER BY"
        else begin
          (* Sort keys of any valid ordered slice are determined by the
             multiset, so they must match the oracle's slice exactly. *)
          let keys rows =
            List.map (fun row -> List.map (fun (key, _) -> key row) specs) rows
          in
          if keys got.Sparql.Ref_eval.rows <> keys expected_rows then
            Error "ORDER BY + LIMIT/OFFSET selected wrong slice"
          else Ok ()
        end
  end

(* ------------------------------------------------------------------ *)
(* Case execution                                                      *)
(* ------------------------------------------------------------------ *)

type divergence = { backend : string; detail : string }

type case_result =
  | Agree
  | Diverged of divergence list
  | Skipped of string  (** oracle timeout / nothing ran *)

let strip_modifiers q = { q with limit = None; offset = None }

(** Run [q] on the oracle and every backend over [triples]. [domains]
    runs the backends in parallel-execution mode, [load_domains] builds
    them through the parallel bulk loader, [join_partitions] partitions
    their hash-join builds, [compressed] freezes their tables into
    bit-packed columnar storage (the oracle is always sequential and
    uncompressed). *)
let run_case ?only ?domains ?load_domains ?join_partitions ?compressed ?wcoj
    ?extvp ?(timeout = 5.0) (triples : Rdf.Triple.t list) (q : query) :
  case_result =
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) triples;
  match Sparql.Ref_eval.eval ~timeout g (strip_modifiers q) with
  | exception Sparql.Ref_eval.Timeout -> Skipped "oracle timeout"
  | exception e -> Skipped ("oracle failed: " ^ Printexc.to_string e)
  | oracle_full ->
    let stores =
      make_backends ?only ?domains ?load_domains ?join_partitions ?compressed
        ?wcoj ?extvp triples
    in
    let divergences =
      List.filter_map
        (fun (store : Db2rdf.Store.t) ->
          match run_backend ~timeout store q with
          | Timeout | Unsupported _ -> None
          | Crash msg ->
            Some { backend = store.Db2rdf.Store.name; detail = "crash: " ^ msg }
          | Complete got ->
            (match check_equiv q ~oracle_full got with
             | Ok () -> None
             | Error detail ->
               Some { backend = store.Db2rdf.Store.name; detail }))
        stores
    in
    if divergences = [] then Agree else Diverged divergences

(* ------------------------------------------------------------------ *)
(* Update scripts                                                      *)
(* ------------------------------------------------------------------ *)

let dump_query : query =
  select
    (Select_vars [ "s"; "p"; "o" ])
    (Bgp [ { tp_s = Var "s"; tp_p = Var "p"; tp_o = Var "o" } ])

let graph_dump (g : Rdf.Graph.t) : string list =
  List.sort Stdlib.compare
    (List.map
       (fun (tr : Rdf.Triple.t) ->
         String.concat "\t"
           [ Rdf.Term.to_string tr.Rdf.Triple.s;
             Rdf.Term.to_string tr.Rdf.Triple.p;
             Rdf.Term.to_string tr.Rdf.Triple.o ])
       (Rdf.Graph.to_list g))

(** Replay an update script statement by statement. The reference graph
    applies {!Sparql.Ref_eval.apply_update}; every backend applies its
    own [update] (so [DELETE WHERE] runs through the backend's own
    query pipeline). After each update statement, each backend's full
    dump ([SELECT ?s ?p ?o]) — again through its own query path — is
    diffed against the reference graph; each SELECT statement is
    checked with the same equivalence as plain query fuzzing. Stops at
    the first divergent statement. *)
let run_script_case ?only ?domains ?load_domains ?join_partitions ?compressed
    ?wcoj ?extvp ?(timeout = 5.0) (triples : Rdf.Triple.t list)
    (script : statement list) : case_result =
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) triples;
  let stores =
    make_backends ?only ?domains ?load_domains ?join_partitions ?compressed
      ?wcoj ?extvp triples
  in
  let divergences = ref [] and skipped = ref None in
  let push d = divergences := !divergences @ [ d ] in
  let check_dump i (store : Db2rdf.Store.t) =
    match run_backend ~timeout store dump_query with
    | Timeout | Unsupported _ -> ()
    | Crash msg ->
      push
        { backend = store.Db2rdf.Store.name;
          detail = Printf.sprintf "stmt %d: dump crash: %s" i msg }
    | Complete got ->
      let got_rows = List.sort Stdlib.compare (row_strings got) in
      let want_rows = graph_dump g in
      if got_rows <> want_rows then
        push
          { backend = store.Db2rdf.Store.name;
            detail =
              Printf.sprintf
                "stmt %d: store contents diverge from reference graph \
                 (%d vs %d triples)"
                i (List.length got_rows) (List.length want_rows) }
  in
  List.iteri
    (fun i stmt ->
      if !divergences = [] && !skipped = None then
        match stmt with
        | S_update u ->
          Sparql.Ref_eval.apply_update g u;
          List.iter
            (fun (store : Db2rdf.Store.t) ->
              (match store.Db2rdf.Store.update u with
               | () -> ()
               | exception e ->
                 push
                   { backend = store.Db2rdf.Store.name;
                     detail =
                       Printf.sprintf "stmt %d: update crash: %s" i
                         (Printexc.to_string e) });
              if !divergences = [] then check_dump i store)
            stores
        | S_query q ->
          (match Sparql.Ref_eval.eval ~timeout g (strip_modifiers q) with
           | exception Sparql.Ref_eval.Timeout ->
             skipped := Some (Printf.sprintf "stmt %d: oracle timeout" i)
           | exception e ->
             skipped :=
               Some
                 (Printf.sprintf "stmt %d: oracle failed: %s" i
                    (Printexc.to_string e))
           | oracle_full ->
             List.iter
               (fun (store : Db2rdf.Store.t) ->
                 match run_backend ~timeout store q with
                 | Timeout | Unsupported _ -> ()
                 | Crash msg ->
                   push
                     { backend = store.Db2rdf.Store.name;
                       detail = Printf.sprintf "stmt %d: crash: %s" i msg }
                 | Complete got ->
                   (match check_equiv q ~oracle_full got with
                    | Ok () -> ()
                    | Error detail ->
                      push
                        { backend = store.Db2rdf.Store.name;
                          detail = Printf.sprintf "stmt %d: %s" i detail }))
               stores))
    script;
  match (!divergences, !skipped) with
  | [], None -> Agree
  | [], Some why -> Skipped why
  | divs, _ -> Diverged divs

(* ------------------------------------------------------------------ *)
(* Fuzz loop                                                           *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  cases : int;
  timeout : float;  (** per-backend wall-clock seconds *)
  corpus_dir : string option;  (** write shrunk [.repro] files here *)
  only : string option;  (** restrict to one backend by name *)
  domains : int;  (** backend execution parallelism (1 = sequential) *)
  load_domains : int;  (** bulk-load parallelism (1 = sequential) *)
  join_partitions : int;  (** hash-join build partitions (0 = auto) *)
  compressed : bool;  (** freeze backend tables after load *)
  wcoj : bool;  (** force the leapfrog join on DB2RDF backends *)
  extvp : bool;  (** force semi-join reductions on DB2RDF backends *)
  updates : bool;
      (** fuzz update scripts instead of single queries: random
          interleavings of INSERT DATA / DELETE DATA / DELETE WHERE and
          SELECT, diffing every backend's contents against the
          reference graph after each statement *)
  log : string -> unit;
}

let default_config =
  { seed = 42;
    cases = 200;
    timeout = 5.0;
    corpus_dir = None;
    only = None;
    domains = 1;
    load_domains = 1;
    join_partitions = 0;
    compressed = false;
    wcoj = false;
    extvp = false;
    updates = false;
    log = ignore }

type summary = {
  cases_run : int;
  skipped : int;  (** oracle timeouts / pp round-trip failures *)
  divergent : int;  (** distinct shrunk divergences *)
  repro_files : string list;
}

(* The tested query is the pretty-printed + re-parsed form, so the case
   the backends see is byte-identical to what the repro file replays. *)
let roundtrip (q : query) : query option =
  match Sparql.Parser.parse (Sparql.Pp.to_string q) with
  | q' -> Some q'
  | exception _ -> None

let divergence_lines divs =
  List.map (fun d -> Printf.sprintf "%s: %s" d.backend d.detail) divs

let case_fails ?only ?domains ?load_domains ?join_partitions ?compressed ?wcoj
    ?extvp ~timeout (c : Shrink.case) : bool =
  match roundtrip c.Shrink.query with
  | None -> false
  | Some q ->
    (match
       run_case ?only ?domains ?load_domains ?join_partitions ?compressed
         ?wcoj ?extvp ~timeout c.Shrink.triples q
     with
     | Diverged _ -> true
     | Agree | Skipped _ -> false)

let shrink_case ?only ?domains ?load_domains ?join_partitions ?compressed ?wcoj
    ?extvp ~timeout (c : Shrink.case) : Shrink.case =
  Shrink.minimize
    (case_fails ?only ?domains ?load_domains ?join_partitions ?compressed ?wcoj
       ?extvp ~timeout)
    c

(* Like [roundtrip], for whole scripts: the tested script is the
   pretty-printed + re-parsed form, byte-identical to the repro file. *)
let roundtrip_script (s : statement list) : statement list option =
  match Sparql.Parser.parse_script (Sparql.Pp.script_to_string s) with
  | s' -> Some s'
  | exception _ -> None

let script_fails ?only ?domains ?load_domains ?join_partitions ?compressed
    ?wcoj ?extvp ~timeout (c : Shrink.script_case) : bool =
  match roundtrip_script c.Shrink.script with
  | None -> false
  | Some script ->
    (match
       run_script_case ?only ?domains ?load_domains ?join_partitions
         ?compressed ?wcoj ?extvp ~timeout c.Shrink.s_triples script
     with
     | Diverged _ -> true
     | Agree | Skipped _ -> false)

(** Run the fuzzer. Deterministic in [config.seed]. With
    [config.updates] each case is an update script replayed over the
    generated graph instead of a single query. *)
let fuzz (config : config) : summary =
  let st = Random.State.make [| config.seed |] in
  let skipped = ref 0 and divergent = ref 0 and repro_files = ref [] in
  let write_repro i description ~query_src ~script_src triples =
    match config.corpus_dir with
    | None -> ()
    | Some dir ->
      let path =
        Filename.concat dir
          (Printf.sprintf "seed%d_case%04d.repro" config.seed i)
      in
      Repro.write ~path { Repro.description; query_src; script_src; triples };
      repro_files := path :: !repro_files;
      config.log ("wrote " ^ path)
  in
  let fuzz_query_case i triples vocab =
    let q0 = Gen_query.generate st vocab in
    match roundtrip q0 with
    | None ->
      incr skipped;
      config.log
        (Printf.sprintf "case %d: query does not pp/parse round-trip:\n%s" i
           (Sparql.Pp.to_string q0))
    | Some q ->
      (match
         run_case ?only:config.only ~domains:config.domains
           ~load_domains:config.load_domains
           ~join_partitions:config.join_partitions
           ~compressed:config.compressed ~wcoj:config.wcoj
           ~extvp:config.extvp ~timeout:config.timeout triples q
       with
       | Agree -> ()
       | Skipped why ->
         incr skipped;
         config.log (Printf.sprintf "case %d skipped: %s" i why)
       | Diverged divs ->
         incr divergent;
         config.log
           (Printf.sprintf "case %d DIVERGED:\n  %s" i
              (String.concat "\n  " (divergence_lines divs)));
         let small =
           shrink_case ?only:config.only ~domains:config.domains
             ~load_domains:config.load_domains
             ~join_partitions:config.join_partitions
             ~compressed:config.compressed ~wcoj:config.wcoj
             ~extvp:config.extvp ~timeout:config.timeout
             { Shrink.triples; query = q }
         in
         let small_q =
           match roundtrip small.Shrink.query with
           | Some q -> q
           | None -> small.Shrink.query
         in
         let final_divs =
           match
             run_case ?only:config.only ~domains:config.domains
               ~load_domains:config.load_domains
               ~join_partitions:config.join_partitions
               ~compressed:config.compressed ~wcoj:config.wcoj
               ~extvp:config.extvp ~timeout:config.timeout
               small.Shrink.triples small_q
           with
           | Diverged ds -> ds
           | Agree | Skipped _ -> divs
         in
         let query_src = Sparql.Pp.to_string small.Shrink.query in
         config.log
           (Printf.sprintf "shrunk to %d triples, query:\n%s"
              (List.length small.Shrink.triples) query_src);
         write_repro i
           (Printf.sprintf "seed %d case %d" config.seed i
            :: divergence_lines final_divs)
           ~query_src ~script_src:None small.Shrink.triples)
  in
  let fuzz_script_case i triples vocab =
    let script0 = Gen_query.generate_script st vocab ~existing:triples in
    match roundtrip_script script0 with
    | None ->
      incr skipped;
      config.log
        (Printf.sprintf "case %d: script does not pp/parse round-trip:\n%s" i
           (Sparql.Pp.script_to_string script0))
    | Some script ->
      (match
         run_script_case ?only:config.only ~domains:config.domains
           ~load_domains:config.load_domains
           ~join_partitions:config.join_partitions
           ~compressed:config.compressed ~wcoj:config.wcoj
           ~extvp:config.extvp ~timeout:config.timeout triples script
       with
       | Agree -> ()
       | Skipped why ->
         incr skipped;
         config.log (Printf.sprintf "case %d skipped: %s" i why)
       | Diverged divs ->
         incr divergent;
         config.log
           (Printf.sprintf "case %d DIVERGED:\n  %s" i
              (String.concat "\n  " (divergence_lines divs)));
         let small =
           Shrink.minimize_script
             (script_fails ?only:config.only ~domains:config.domains
                ~load_domains:config.load_domains
                ~join_partitions:config.join_partitions
                ~compressed:config.compressed ~wcoj:config.wcoj
                ~extvp:config.extvp ~timeout:config.timeout)
             { Shrink.s_triples = triples; script }
         in
         let small_script =
           match roundtrip_script small.Shrink.script with
           | Some s -> s
           | None -> small.Shrink.script
         in
         let final_divs =
           match
             run_script_case ?only:config.only ~domains:config.domains
               ~load_domains:config.load_domains
               ~join_partitions:config.join_partitions
               ~compressed:config.compressed ~wcoj:config.wcoj
               ~extvp:config.extvp ~timeout:config.timeout
               small.Shrink.s_triples small_script
           with
           | Diverged ds -> ds
           | Agree | Skipped _ -> divs
         in
         let script_src = Sparql.Pp.script_to_string small.Shrink.script in
         config.log
           (Printf.sprintf "shrunk to %d triples, script:\n%s"
              (List.length small.Shrink.s_triples) script_src);
         write_repro i
           (Printf.sprintf "seed %d case %d (updates)" config.seed i
            :: divergence_lines final_divs)
           ~query_src:"" ~script_src:(Some script_src) small.Shrink.s_triples)
  in
  for i = 1 to config.cases do
    let triples, vocab = Gen_graph.generate st in
    if config.updates then fuzz_script_case i triples vocab
    else fuzz_query_case i triples vocab
  done;
  { cases_run = config.cases;
    skipped = !skipped;
    divergent = !divergent;
    repro_files = List.rev !repro_files }

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

(** Replay one reproducer (query or update script); [Error lines] on
    any divergence. *)
let check_repro ?only ?domains ?load_domains ?join_partitions ?compressed ?wcoj
    ?extvp ?(timeout = 5.0) (r : Repro.t) : (unit, string) result =
  match r.Repro.script_src with
  | Some src ->
    (match Sparql.Parser.parse_script src with
     | exception Sparql.Parser.Parse_error msg ->
       Error ("repro script does not parse: " ^ msg)
     | script ->
       (match
          run_script_case ?only ?domains ?load_domains ?join_partitions
            ?compressed ?wcoj ?extvp ~timeout r.Repro.triples script
        with
        | Agree -> Ok ()
        | Skipped why -> Error ("repro skipped: " ^ why)
        | Diverged divs -> Error (String.concat "; " (divergence_lines divs))))
  | None ->
    (match Sparql.Parser.parse r.Repro.query_src with
     | exception Sparql.Parser.Parse_error msg ->
       Error ("repro query does not parse: " ^ msg)
     | q ->
       (match
          run_case ?only ?domains ?load_domains ?join_partitions ?compressed
            ?wcoj ?extvp ~timeout r.Repro.triples q
        with
        | Agree -> Ok ()
        | Skipped why -> Error ("repro skipped: " ^ why)
        | Diverged divs -> Error (String.concat "; " (divergence_lines divs))))
