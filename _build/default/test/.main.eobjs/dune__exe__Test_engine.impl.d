test/test_engine.ml: Alcotest Db2rdf Engine Filter_sql Helpers Layout List Printf QCheck QCheck_alcotest Rdf Sparql Store String Triple_store Vertical_store Workloads
