(** E16 — multiway (worst-case-optimal) leapfrog join against the
    binary join pipeline on the snowflake workload (orders → customers
    → regions plus noise; every predicate single-valued).

    Two engines are built over identical triples: one default, one with
    the [wcoj] option, whose characteristic-set chooser flattens the
    eligible queries into the single-CTE multiway form and runs the
    leapfrog operator. SF1–SF3 couple two or three star regions — the
    default pipeline pays one merged DPH scan for the first star and an
    index-nested-loop probe chain per further star, while the leapfrog
    shares one scan across all atoms. SF4 is the lone-star control the
    chooser declines, so both engines run the identical merged-scan
    plan there.

    Every query's rows are asserted multiset-equal across the two
    engines before anything is timed (the leapfrog emits in global
    variable order, the binary tree in pipeline order, so rows are
    compared sorted). The scan cache is cleared before every timed run
    and the heap compacted between interleaved runs, exactly as in E15.

    With [--json-dir] the experiment writes BENCH_wcoj.json: per-query
    times, speedups, whether the planner picked the leapfrog, the
    operator's cardinality q-error, and the geomean speedup over the
    picked queries. *)

let batch_sorted_strings b =
  List.sort compare
    (List.map
       (fun row ->
         String.concat "\t"
           (List.map Relsql.Value.to_string (Array.to_list row)))
       (Relsql.Batch.to_rows b))

(** Interleaved mean wall-clock per engine (binary run, wcoj run, ...),
    scan cache cleared before and heap compacted between every timed
    run — see {!Exp_compress.time_pair} for why interleaving matters. *)
let time_pair (cfg : Harness.config) bdb bstmt wdb wstmt =
  let once db stmt =
    Relsql.Scan_cache.clear (Relsql.Database.scan_cache db);
    let b, dt = Harness.timed (fun () -> Relsql.Executor.run db stmt) in
    (Relsql.Batch.length b, dt)
  in
  let rows, _ = once bdb bstmt in
  ignore (once wdb wstmt);
  let tb = ref 0.0 and tw = ref 0.0 in
  for _ = 1 to cfg.Harness.runs do
    Gc.compact ();
    tb := !tb +. snd (once bdb bstmt);
    Gc.compact ();
    tw := !tw +. snd (once wdb wstmt)
  done;
  let mean t = t /. float_of_int (max 1 cfg.Harness.runs) in
  (rows, mean !tb, mean !tw)

type qresult = {
  q_name : string;
  q_rows : int;
  q_binary_ms : float;
  q_wcoj_ms : float;
  q_picked : bool;  (** physical plan contains the leapfrog operator *)
  q_qerror : float option;  (** leapfrog cardinality estimate quality *)
}

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E16. Multiway leapfrog join — %d triples"
       cfg.Harness.scale);
  let triples = Workloads.Snowflake.generate ~scale:cfg.Harness.scale in
  let layout = Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24 in
  let build wcoj =
    let e, _, _ =
      Db2rdf.Engine.create_colored ~layout
        ~options:{ Db2rdf.Engine.default_options with wcoj }
        triples
    in
    e
  in
  let base = build false and wc = build true in
  let bdb = Db2rdf.Loader.database (Db2rdf.Engine.loader base) in
  let wdb = Db2rdf.Loader.database (Db2rdf.Engine.loader wc) in
  let results =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        let bstmt = Db2rdf.Engine.translate base q in
        let wstmt = Db2rdf.Engine.translate wc q in
        let picked =
          let explained = Db2rdf.Engine.explain wc q in
          let needle = "LeapfrogJoin" in
          let n = String.length explained and m = String.length needle in
          let rec at i =
            i + m <= n && (String.sub explained i m = needle || at (i + 1))
          in
          at 0
        in
        (* Equality gate: multiset equality before anything is timed. *)
        let want = batch_sorted_strings (Relsql.Executor.run bdb bstmt) in
        let got = batch_sorted_strings (Relsql.Executor.run wdb wstmt) in
        if want <> got then
          failwith
            (Printf.sprintf
               "E16 equality violation: %s diverges between the binary and \
                leapfrog pipelines"
               qname);
        let rows, bs, ws = time_pair cfg bdb bstmt wdb wstmt in
        let qerror =
          if not picked then None
          else begin
            Relsql.Scan_cache.clear (Relsql.Database.scan_cache wdb);
            let _, stats = Relsql.Executor.run_analyzed wdb wstmt in
            match Relsql.Opstats.find_all stats ~prefix:"LeapfrogJoin" with
            | nd :: _ -> Relsql.Opstats.q_error nd
            | [] -> None
          end
        in
        { q_name = qname;
          q_rows = rows;
          q_binary_ms = 1000.0 *. bs;
          q_wcoj_ms = 1000.0 *. ws;
          q_picked = picked;
          q_qerror = qerror })
      Workloads.Snowflake.queries
  in
  Printf.printf "every query matches across the two pipelines\n%!";
  Harness.subsection
    (Printf.sprintf "snowflake (%d triples; ms per query, scan cache cold)"
       (List.length triples));
  Harness.print_table
    [ "Query"; "rows"; "binary"; "wcoj"; "speedup"; "plan"; "q-error" ]
    (List.map
       (fun r ->
         [ r.q_name;
           string_of_int r.q_rows;
           Printf.sprintf "%8.2f" r.q_binary_ms;
           Printf.sprintf "%8.2f" r.q_wcoj_ms;
           (if r.q_wcoj_ms > 0.0 then
              Printf.sprintf "%.2fx" (r.q_binary_ms /. r.q_wcoj_ms)
            else "-");
           (if r.q_picked then "leapfrog" else "binary");
           (match r.q_qerror with
            | Some q -> Printf.sprintf "%.2f" q
            | None -> "-") ])
       results);
  let picked_speedups =
    List.filter_map
      (fun r ->
        if r.q_picked && r.q_wcoj_ms > 0.0 then
          Some (r.q_binary_ms /. r.q_wcoj_ms)
        else None)
      results
  in
  (match Harness.geomean picked_speedups with
   | Some g ->
     Printf.printf
       "\ngeomean speedup (leapfrog vs binary, planner-picked queries): \
        %.2fx\n%!"
       g
   | None -> Printf.printf "\nno query was picked for the leapfrog\n%!");
  Harness.write_json cfg ~file:"BENCH_wcoj.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "wcoj");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("triples", Harness.J_int (List.length triples));
         ( "measurements",
           Harness.J_list
             (List.map
                (fun r ->
                  Harness.J_obj
                    [ ("query", Harness.J_str r.q_name);
                      ("results", Harness.J_int r.q_rows);
                      ("binary_ms", Harness.J_float r.q_binary_ms);
                      ("wcoj_ms", Harness.J_float r.q_wcoj_ms);
                      ("picked", Harness.J_bool r.q_picked);
                      ( "q_error",
                        match r.q_qerror with
                        | Some q -> Harness.J_float q
                        | None -> Harness.J_str "n/a" ) ])
                results) );
         ( "speedup_vs_binary",
           Harness.J_obj
             (List.filter_map
                (fun r ->
                  if r.q_wcoj_ms > 0.0 then
                    Some
                      ( r.q_name,
                        Harness.J_float (r.q_binary_ms /. r.q_wcoj_ms) )
                  else None)
                results) );
         ( "geomean_speedup_picked",
           match Harness.geomean picked_speedups with
           | Some g -> Harness.J_float g
           | None -> Harness.J_str "n/a" ) ])
