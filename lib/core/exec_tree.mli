(** The Query Plan Builder's ExecTree algorithm (Section 3.1.2,
    Figure 10): weave the triple patterns into a storage-independent
    execution tree, guided by the optimal flow tree, with *late
    fusing* — producers whose bindings later accesses need come early,
    pure filters attach as soon as their variables exist, fresh-variable
    sub-trees and OPTIONALs attach last. *)

type t =
  | Leaf of int * Cost.access  (** triple id, access method *)
  | And of t * t
  | Or of t list
  | Opt of t * t  (** main, optional *)
  | Unit
      (** the empty group's single empty solution — the required side of
          a pattern that consists only of OPTIONALs *)

val triples_of : t -> int list
val to_string : Sparql.Pattern_tree.t -> t -> string

(** Build the execution tree for a whole query. *)
val build : Sparql.Pattern_tree.t -> Dataflow.flow -> t

(** The no-late-fusing ablation: attach triples in syntactic (parse)
    order, keeping the flow's access methods but none of its ordering. *)
val build_syntactic : Sparql.Pattern_tree.t -> Dataflow.flow -> t
