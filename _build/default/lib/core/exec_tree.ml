(** The Query Plan Builder's ExecTree algorithm (Section 3.1.2,
    Figure 10): weave the triple patterns into a storage-independent
    execution tree, guided by the optimal flow tree, with *late fusing*.

    Late fusing defers sub-trees whose variables nothing else consumes
    to the latest possible point (minimizing intermediate result width
    and size), while pulling forward (a) producers whose bindings later
    accesses require and (b) pure filters — triples that bind no new
    variable and can only shrink the intermediate result (the [t1] case
    in the paper's running example). OPTIONAL sub-trees attach last;
    UNION and OPTIONAL sub-patterns are fused recursively as units,
    which preserves the associativity of the query's operators. *)

module VarSet = Sparql.Ast.VarSet

type t =
  | Leaf of int * Cost.access  (** triple id, access method *)
  | And of t * t
  | Or of t list
  | Opt of t * t  (** main, optional *)

let rec triples_of = function
  | Leaf (t, _) -> [ t ]
  | And (a, b) | Opt (a, b) -> triples_of a @ triples_of b
  | Or parts -> List.concat_map triples_of parts

let rec to_string pt = function
  | Leaf (t, m) ->
    ignore pt;
    Printf.sprintf "(t%d, %s)" t (Cost.access_to_string m)
  | And (a, b) -> Printf.sprintf "AND(%s, %s)" (to_string pt a) (to_string pt b)
  | Or parts ->
    Printf.sprintf "OR(%s)" (String.concat ", " (List.map (to_string pt) parts))
  | Opt (a, b) -> Printf.sprintf "OPT(%s, %s)" (to_string pt a) (to_string pt b)

(* ------------------------------------------------------------------ *)
(* Items: candidate sub-trees during fusing                            *)
(* ------------------------------------------------------------------ *)

type item = {
  tree : t;
  item_triples : int list;
  min_pos : int;  (** earliest flow position among the item's triples *)
  vars : VarSet.t;  (** all variables the item can bind *)
  req : VarSet.t;  (** variables required from outside the item *)
  is_opt : bool;
}

let item_of_tree pt (flow : Dataflow.flow) ~is_opt tree =
  let triples = triples_of tree in
  let vars =
    List.fold_left
      (fun acc tid ->
        VarSet.union acc
          (VarSet.of_list
             (Sparql.Ast.triple_pat_vars
                (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat)))
      VarSet.empty triples
  in
  (* External requirements: variables some triple's chosen method needs
     that no triple inside the item produces. *)
  let internal_prod =
    List.fold_left
      (fun acc tid ->
        let pat = (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat in
        VarSet.union acc (Dataflow.produced pat flow.Dataflow.method_of.(tid)))
      VarSet.empty triples
  in
  let req =
    List.fold_left
      (fun acc tid ->
        let pat = (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat in
        VarSet.union acc (Dataflow.required pat flow.Dataflow.method_of.(tid)))
      VarSet.empty triples
  in
  {
    tree;
    item_triples = triples;
    min_pos =
      List.fold_left (fun acc tid -> min acc flow.Dataflow.pos_of.(tid)) max_int
        triples;
    vars;
    req = VarSet.diff req internal_prod;
    is_opt;
  }

(* ------------------------------------------------------------------ *)
(* Fusing                                                              *)
(* ------------------------------------------------------------------ *)

(** Fuse a pool of items into a single execution tree, implementing the
    late-fusing policy described in the module comment. *)
let fuse_all pt (flow : Dataflow.flow) (items : item list) : t =
  ignore pt;
  ignore flow;
  match items with
  | [] -> invalid_arg "Exec_tree.fuse_all: empty pattern"
  | _ ->
    let items = List.sort (fun a b -> compare a.min_pos b.min_pos) items in
    let opts, non_opts = List.partition (fun i -> i.is_opt) items in
    (* needed i: some other item requires a variable i produces. *)
    let needed i others =
      List.exists
        (fun j -> not (VarSet.is_empty (VarSet.inter j.req i.vars)))
        others
    in
    let tree = ref None in
    let tvars = ref VarSet.empty in
    let remaining = ref non_opts in
    let attach i =
      (match !tree with
       | None -> tree := Some i.tree
       | Some t -> tree := Some (And (t, i.tree)));
      tvars := VarSet.union !tvars i.vars;
      remaining := List.filter (fun j -> j != i) !remaining
    in
    while !remaining <> [] do
      let eligible i =
        VarSet.subset i.req !tvars
        &&
        (* first item, a needed producer, or a pure filter *)
        (!tree = None
        || needed i (List.filter (fun j -> j != i) !remaining)
        || VarSet.subset i.vars !tvars)
      in
      match List.find_opt eligible !remaining with
      | Some i -> attach i
      | None ->
        (* Remaining items all carry fresh, unconsumed variables: late
           fusing ends and they attach in flow order. Prefer one whose
           requirements are already met to keep the pipeline feeding
           forward. *)
        (match List.find_opt (fun i -> VarSet.subset i.req !tvars) !remaining with
         | Some i -> attach i
         | None -> attach (List.hd !remaining))
    done;
    let base = Option.get !tree in
    (* OPTIONAL sub-trees attach last, in flow order. *)
    List.fold_left (fun acc o -> Opt (acc, o.tree)) base
      (List.sort (fun a b -> compare a.min_pos b.min_pos) opts)

(* ------------------------------------------------------------------ *)
(* Tree construction (the ExecTree recursion of Figure 10)             *)
(* ------------------------------------------------------------------ *)

let rec items_of_node pt flow (n : int) : item list =
  match Sparql.Pattern_tree.kind pt n with
  | Sparql.Pattern_tree.K_leaf tp ->
    let tid = tp.Sparql.Pattern_tree.id in
    [ item_of_tree pt flow ~is_opt:false
        (Leaf (tid, flow.Dataflow.method_of.(tid))) ]
  | Sparql.Pattern_tree.K_and ->
    (* Children contribute their items to the shared pool; fusing is
       deferred to the nearest structural boundary (OR/OPTIONAL/root),
       which is what lets the plan weave across group boundaries. *)
    List.concat_map (items_of_node pt flow) pt.Sparql.Pattern_tree.children.(n)
  | Sparql.Pattern_tree.K_or ->
    let branches =
      List.map
        (fun c -> fuse_all pt flow (items_of_node pt flow c))
        pt.Sparql.Pattern_tree.children.(n)
    in
    [ item_of_tree pt flow ~is_opt:false (Or branches) ]
  | Sparql.Pattern_tree.K_opt ->
    let inner_tree =
      fuse_all pt flow
        (List.concat_map (items_of_node pt flow)
           pt.Sparql.Pattern_tree.children.(n))
    in
    [ item_of_tree pt flow ~is_opt:true inner_tree ]

(** Build the execution tree for a whole query. *)
let build (pt : Sparql.Pattern_tree.t) (flow : Dataflow.flow) : t =
  fuse_all pt flow (items_of_node pt flow pt.Sparql.Pattern_tree.root)

(** The no-late-fusing ablation: attach triples in syntactic (parse)
    order, keeping the flow's access methods but none of its ordering.
    This is what a translator without the QPB stage would emit. *)
let build_syntactic (pt : Sparql.Pattern_tree.t) (flow : Dataflow.flow) : t =
  let rec go n : [ `Plain of t | `Optional of t ] option =
    match Sparql.Pattern_tree.kind pt n with
    | Sparql.Pattern_tree.K_leaf tp ->
      let tid = tp.Sparql.Pattern_tree.id in
      Some (`Plain (Leaf (tid, flow.Dataflow.method_of.(tid))))
    | Sparql.Pattern_tree.K_and ->
      let acc =
        List.fold_left
          (fun acc child ->
            match go child with
            | None -> acc
            | Some (`Plain c) ->
              (match acc with None -> Some c | Some a -> Some (And (a, c)))
            | Some (`Optional c) ->
              (match acc with
               | None -> Some c (* OPTIONAL against the unit solution *)
               | Some a -> Some (Opt (a, c))))
          None
          pt.Sparql.Pattern_tree.children.(n)
      in
      Option.map (fun t -> `Plain t) acc
    | Sparql.Pattern_tree.K_or ->
      let parts =
        List.filter_map
          (fun c ->
            match go c with
            | Some (`Plain t) | Some (`Optional t) -> Some t
            | None -> None)
          pt.Sparql.Pattern_tree.children.(n)
      in
      if parts = [] then None else Some (`Plain (Or parts))
    | Sparql.Pattern_tree.K_opt ->
      let inner =
        List.fold_left
          (fun acc child ->
            match go child with
            | None -> acc
            | Some (`Plain c) | Some (`Optional c) ->
              (match acc with None -> Some c | Some a -> Some (And (a, c))))
          None
          pt.Sparql.Pattern_tree.children.(n)
      in
      Option.map (fun t -> `Optional t) inner
  in
  match go pt.Sparql.Pattern_tree.root with
  | Some (`Plain t) | Some (`Optional t) -> t
  | None -> invalid_arg "Exec_tree.build_syntactic: empty pattern"
