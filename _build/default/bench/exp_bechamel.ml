(** Statistically robust micro-measurements with Bechamel: one
    [Test.make] per paper table/figure, each timing the core operation
    that drives that experiment. These complement the wall-clock
    harness: bechamel runs each staged closure until its estimator
    converges, reporting monotonic-clock time per run. *)

open Bechamel
open Toolkit

let prepare ~scale =
  let micro = Workloads.Micro.generate ~scale in
  let lubm = Workloads.Lubm.generate ~scale in
  let entity = Harness.build_db2rdf ~name:"entity" micro in
  let triple = Harness.build_triple_store micro in
  let vertical = Harness.build_vertical_store micro in
  let lubm_sys = Harness.build_db2rdf ~name:"lubm" lubm in
  let flow_data = Workloads.Micro.flow_experiment_data ~scale in
  let flow_opt = Harness.build_db2rdf ~name:"opt" flow_data in
  let flow_naive = Harness.build_db2rdf_naive flow_data in
  (micro, lubm, entity, triple, vertical, lubm_sys, flow_opt, flow_naive)

let query_runner (sys : Harness.system) src =
  let q = Sparql.Parser.parse src in
  Staged.stage (fun () -> ignore (sys.Harness.store.Db2rdf.Store.query q))

let tests ~scale =
  let micro, lubm, entity, triple, vertical, lubm_sys, flow_opt, flow_naive =
    prepare ~scale
  in
  let q1 = List.assoc "Q1" Workloads.Micro.queries in
  let q6 = List.assoc "Q6" Workloads.Micro.queries in
  let lq4 = List.assoc "LQ4" Workloads.Lubm.queries in
  [ (* Figure 3 / Tables 1-2: the single-valued star on each layout. *)
    Test.make ~name:"fig3_Q1_entity" (query_runner entity q1);
    Test.make ~name:"fig3_Q1_triple" (query_runner triple q1);
    Test.make ~name:"fig3_Q1_vertical" (query_runner vertical q1);
    (* Figure 3 mixed star. *)
    Test.make ~name:"fig3_Q6_entity" (query_runner entity q6);
    (* Table 3: the composed-hash insertion path. *)
    Test.make ~name:"table3_insert"
      (Staged.stage (fun () ->
           let store =
             Db2rdf.Loader.create
               ~layout:(Db2rdf.Layout.make ~dph_cols:5 ~rph_cols:5)
               ~direct_map:(Db2rdf.Pred_map.paper_table3 ~k:5) ()
           in
           List.iter
             (fun (p, o) ->
               Db2rdf.Loader.insert store
                 (Rdf.Triple.make (Rdf.Term.iri "Android") (Rdf.Term.iri p)
                    (Rdf.Term.lit o)))
             [ ("developer", "G"); ("version", "4.1"); ("kernel", "L");
               ("preceded", "4.0"); ("graphics", "O") ]));
    (* Table 4: interference-graph construction + greedy coloring. *)
    Test.make ~name:"table4_coloring"
      (Staged.stage (fun () ->
           ignore
             (Db2rdf.Coloring.color ~max_colors:24
                (Db2rdf.Coloring.direct_graph lubm))));
    (* Figure 14: optimized vs alternative flow. *)
    Test.make ~name:"fig14_optimized_flow"
      (query_runner flow_opt Workloads.Micro.flow_query);
    Test.make ~name:"fig14_alternative_flow"
      (query_runner flow_naive Workloads.Micro.flow_query);
    (* Figures 15/16: a representative LUBM star query end to end. *)
    Test.make ~name:"fig16_LQ4_db2rdf" (query_runner lubm_sys lq4);
    (* Section 2.1 load path per layout (Figure 3's load columns). *)
    Test.make ~name:"fig3_load_entity_1k"
      (Staged.stage (fun () ->
           let e = Db2rdf.Engine.create () in
           Db2rdf.Engine.load e (List.filteri (fun i _ -> i < 1000) micro))) ]

let run (cfg : Harness.config) =
  Harness.section "Bechamel micro-suite (one Test.make per table/figure)";
  let suite =
    Test.make_grouped ~name:"paper" (tests ~scale:(min cfg.Harness.scale 10_000))
  in
  let instances = Instance.[ monotonic_clock ] in
  let bench_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
  in
  let raw = Benchmark.all bench_cfg instances suite in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  let lines = ref [] in
  Hashtbl.iter
    (fun name result ->
      let cell =
        match Analyze.OLS.estimates result with
        | Some (est :: _) ->
          if est > 1e6 then Printf.sprintf "%10.3f ms/run" (est /. 1e6)
          else Printf.sprintf "%10.0f ns/run" est
        | _ -> "(no estimate)"
      in
      lines := (name, cell) :: !lines)
    analyzed;
  List.iter
    (fun (name, cell) -> Printf.printf "%-36s %s\n%!" name cell)
    (List.sort compare !lines)
