lib/workloads/lubm.mli: Rdf Sparql
