(** Physical plan interpreter.

    Each plan node materializes into a {!result}: an ordered column
    layout plus rows. Execution is bottom-up and fully materializing. A
    soft per-query timeout is enforced by a row-operation counter, which
    is how the benchmark harness reproduces the paper's timeout
    classification (Figure 15). *)

exception Timeout

type result = {
  layout : Expr_eval.layout;
  rows : Value.t array list;  (** in output order *)
}

val column_names : result -> string list

(** Materialize a result as a named table (used for CTEs; the result's
    column names become the schema and must be unique). *)
val materialize : string -> result -> Table.t

(** Run a full statement: materialize each CTE in order into an overlay
    database, then evaluate the body. [timeout] is wall-clock seconds
    for the whole statement; raises {!Timeout} on expiry. *)
val run : ?timeout:float -> Database.t -> Sql_ast.stmt -> result

(** The physical plans of each CTE and the body, as text. *)
val explain : Database.t -> Sql_ast.stmt -> string
