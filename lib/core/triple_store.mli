(** The triple-store baseline (Section 2, first alternative): a single
    3-column relation [TRIPLES(subj, pred, obj)] with subject and object
    indexes, and a bottom-up selectivity-ordered SPARQL-to-SQL
    translation where every triple pattern costs one self-join
    (Figure 2(c)). Record fields are exposed for the benchmark harness
    and tests. *)

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  table : Relsql.Table.t;
  stats : Dataset_stats.t;
  dict_state : Dict_table.state;
  seen : (int * int * int, unit) Hashtbl.t;
}

val table_name : string
val create : ?dict:Rdf.Dictionary.t -> unit -> t
val insert : t -> Rdf.Triple.t -> unit
val load : t -> Rdf.Triple.t list -> unit

(** Delete one triple (no-op when absent). *)
val delete : t -> Rdf.Triple.t -> unit

val translate : t -> Sparql.Ast.query -> Relsql.Sql_ast.stmt
val query : ?timeout:float -> t -> Sparql.Ast.query -> Sparql.Ref_eval.results

(** Like {!query}, plus the executor's per-operator metrics tree. *)
val query_analyzed :
  ?timeout:float -> t -> Sparql.Ast.query ->
  Sparql.Ref_eval.results * Relsql.Opstats.t

val explain : t -> Sparql.Ast.query -> string
val to_store : ?name:string -> t -> Store.t
