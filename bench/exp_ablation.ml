(** E11 — ablation of the design choices DESIGN.md calls out: the hybrid
    flow optimizer, star merging, and late fusing, toggled independently
    on the LUBM workload; plus predicate-mapping strategy (coloring vs
    1-hash vs 2-hash composition) measured by spills and micro-bench
    star-query time. *)

let variant name options = (name, options)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E11. Ablations (optimizer / merging / fusing / mapping) — %d triples"
       cfg.Harness.scale);
  let triples = Workloads.Lubm.generate ~scale:cfg.Harness.scale in
  let variants =
    [ variant "full" Db2rdf.Engine.default_options;
      variant "no-merge" { Db2rdf.Engine.default_options with merge = false };
      variant "no-late-fuse" { Db2rdf.Engine.default_options with late_fuse = false };
      variant "worst-flow" { Db2rdf.Engine.default_options with optimize = false };
      variant "none"
        { Db2rdf.Engine.default_options with
          optimize = false; merge = false; late_fuse = false } ]
  in
  let systems =
    List.map (fun (name, options) -> Harness.build_db2rdf ~name ~options triples) variants
  in
  let rows =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        qname
        :: List.map
             (fun sys -> Harness.outcome_cell (Harness.measure cfg sys qname q))
             systems)
      Workloads.Lubm.queries
  in
  Harness.subsection "query pipeline ablation on LUBM (ms)";
  Harness.print_table ("Query" :: List.map (fun (n, _) -> n) variants) rows;

  Harness.subsection "predicate mapping ablation (spills; micro star query)";
  let micro = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  let q1 = Sparql.Parser.parse (List.assoc "Q6" Workloads.Micro.queries) in
  let layout = Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8 in
  let mk_engine name direct_map reverse_map =
    let e = Db2rdf.Engine.create ~layout ?direct_map ?reverse_map () in
    Db2rdf.Engine.load e micro;
    (name, e)
  in
  let colored, _, _ = Db2rdf.Engine.create_colored ~layout micro in
  let engines =
    [ ("coloring", colored);
      (let n, e =
         mk_engine "hash-1"
           (Some (Db2rdf.Pred_map.hashed ~m:8 ~seed:1))
           (Some (Db2rdf.Pred_map.hashed ~m:8 ~seed:2))
       in
       (n, e));
      (let n, e =
         mk_engine "hash-2 (composed)"
           (Some (Db2rdf.Pred_map.hashed_family ~m:8 ~n:2))
           (Some (Db2rdf.Pred_map.hashed_family ~m:8 ~n:2))
       in
       (n, e)) ]
  in
  let rows =
    List.map
      (fun (name, e) ->
        let d = Db2rdf.Loader.report (Db2rdf.Engine.loader e) Db2rdf.Loader.Direct in
        let sys =
          { Harness.sys_name = name; store = Db2rdf.Engine.to_store e;
            load_seconds = 0.0 }
        in
        let m = Harness.measure cfg sys "Q6" q1 in
        [ name; string_of_int d.Db2rdf.Loader.rows;
          string_of_int d.Db2rdf.Loader.spills; Harness.outcome_cell m ])
      engines
  in
  Harness.print_table [ "mapping"; "DPH rows"; "DPH spills"; "Q6 star (ms)" ] rows
