(** Mutable row-store tables with hash indexes and tombstone deletion.

    Rows are value arrays of the schema's arity. Hash indexes map a
    column value to a posting of row ids and are maintained
    incrementally through {!insert}, {!set_cell} and {!delete_row} — the
    DB2RDF loader updates cells in place when it assigns a predicate to
    a column of an existing entity row.

    Postings are append-only growable int arrays that tolerate stale
    entries: removals are O(1) counter bumps, lookups validate each
    candidate against the live bitmap and current cell value, and a
    posting is compacted in place once more than half of it is stale.
    Delete-heavy workloads are therefore linear instead of the quadratic
    [List.filter]-per-removal of the previous representation. *)

type t

val create : string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

(** Number of live (non-deleted) rows. *)
val row_count : t -> int

val is_live : t -> int -> bool

(** [insert t row] appends [row] and returns its row id. The row array
    is owned by the table afterwards; callers must not mutate it
    directly (use {!set_cell}). Raises [Invalid_argument] on arity
    mismatch. *)
val insert : t -> Value.t array -> int

(** [get t rid] is the row array (including tombstoned rows); raises
    [Invalid_argument] on an out-of-range id. *)
val get : t -> int -> Value.t array

val cell : t -> int -> int -> Value.t

(** Update one cell, keeping any index on that column consistent. *)
val set_cell : t -> int -> int -> Value.t -> unit

(** Delete a row: it disappears from scans, lookups and {!row_count}.
    The slot is tombstoned (ids of other rows are stable). Idempotent. *)
val delete_row : t -> int -> unit

(** Build (or rebuild) a hash index on the column at position [pos]. *)
val create_index : t -> int -> unit

val create_index_on : t -> string -> unit
val has_index : t -> int -> bool
val indexed_columns : t -> int list

(** [lookup t pos v] is the ids of live rows whose column [pos] equals
    [v], in insertion order. Requires an index on [pos]. The returned
    array is fresh — callers may keep it. *)
val lookup : t -> int -> Value.t -> int array

(** [lookup_iter t pos v f] calls [f] on each matching live row id in
    insertion order without allocating. The callback must not modify
    the table. Requires an index on [pos]. *)
val lookup_iter : t -> int -> Value.t -> (int -> unit) -> unit

(** [prober t pos] is {!lookup_iter} partially applied, with the
    column-to-index resolution hoisted out of the per-probe path —
    for index nested-loop joins that probe once per outer row. *)
val prober : t -> int -> Value.t -> (int -> unit) -> unit

(** Iterate live rows in insertion order. *)
val iter : (int -> Value.t array -> unit) -> t -> unit

(** Row slots ever allocated, including tombstoned ones — the iteration
    space of {!iter} and {!iter_range} (parallel scans morselize over
    it). *)
val slot_count : t -> int

(** [iter_range f t lo hi] is {!iter} restricted to slots
    [lo <= rid < hi]. *)
val iter_range : (int -> Value.t array -> unit) -> t -> int -> int -> unit

val fold : ('a -> int -> Value.t array -> 'a) -> 'a -> t -> 'a

(** Simulated on-disk footprint in bytes under the value-compressed
    storage model: per-row header, a null bitmap of one bit per column,
    and per-value sizes (see {!Value.storage_size}). Used by the
    Section 2.3 NULL experiment. *)
val storage_size : t -> int

(** Fraction of cells that are NULL across the given column positions
    (live rows only). *)
val null_fraction : t -> int list -> float
