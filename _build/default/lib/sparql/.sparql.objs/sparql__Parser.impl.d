lib/sparql/parser.ml: Ast Hashtbl Lexer List Printf Rdf
