(** SP²Bench-like DBLP workload (Schmidt et al.): bibliographic data
    with the benchmark's characteristically deep joins, ORDER BY,
    OPTIONALs and one deliberately unanswerable cross-product query
    (SQ4 — every system in the paper times out on it at 100M triples).
    Predicates include a genuinely multi-valued one
    ([dcterms:references]) to exercise the DS/RS indirection. *)

let ns = "http://sp2b.org/dblp#"
let u name = ns ^ name
let iri name = Rdf.Term.iri (u name)

let journal i = Rdf.Term.iri (Printf.sprintf "%sJournal%d" ns i)
let proceedings i = Rdf.Term.iri (Printf.sprintf "%sProceedings%d" ns i)
let article i = Rdf.Term.iri (Printf.sprintf "%sArticle%d" ns i)
let inproc i = Rdf.Term.iri (Printf.sprintf "%sInproceedings%d" ns i)
let author i = Rdf.Term.iri (Printf.sprintf "%sPerson%d" ns i)

type counters = { mutable triples : int; mutable acc : Rdf.Triple.t list }

let add c s p o =
  c.acc <- Rdf.Triple.make s (Rdf.Term.iri (u p)) o :: c.acc;
  c.triples <- c.triples + 1

let year y = Rdf.Term.typed_lit (string_of_int y) Rdf.Term.xsd_integer

(** Generate roughly [scale] triples. Authors per paper follow a skewed
    distribution; papers reference earlier papers (multi-valued). *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 11 in
  let c = { triples = 0; acc = [] } in
  let n_authors = max 10 (scale / 40) in
  let author_zipf = Dist.zipf ~n:n_authors ~s:1.1 in
  (* People *)
  for a = 0 to n_authors - 1 do
    add c (author a) "type" (iri "Person");
    add c (author a) "name" (Rdf.Term.lit (Printf.sprintf "Author %d" a))
  done;
  (* Journals / proceedings per "year". *)
  let ji = ref 0 and pi = ref 0 and ai = ref 0 and ii = ref 0 in
  let yr = ref 1940 in
  while c.triples < scale do
    let y = !yr in
    incr yr;
    (* One journal and one proceedings per year. *)
    let j = !ji in
    incr ji;
    add c (journal j) "type" (iri "Journal");
    add c (journal j) "title" (Rdf.Term.lit (Printf.sprintf "Journal %d (%d)" j y));
    add c (journal j) "issued" (year y);
    let p = !pi in
    incr pi;
    add c (proceedings p) "type" (iri "Proceedings");
    add c (proceedings p) "title" (Rdf.Term.lit (Printf.sprintf "Proceedings %d (%d)" p y));
    add c (proceedings p) "issued" (year y);
    (* Articles in the journal. *)
    let n_art = 8 + Dist.int rng 8 in
    for _ = 1 to n_art do
      let a = !ai in
      incr ai;
      let art = article a in
      add c art "type" (iri "Article");
      add c art "title" (Rdf.Term.lit (Printf.sprintf "Article %d" a));
      add c art "journal" (journal j);
      add c art "issued" (year y);
      add c art "pages" (Rdf.Term.int_lit (1 + Dist.int rng 300));
      let n_auth = 1 + Dist.int rng 3 in
      for _ = 1 to n_auth do
        add c art "creator" (author (Dist.zipf_sample rng author_zipf))
      done;
      (* Multi-valued references to earlier articles. *)
      if a > 5 then
        for _ = 1 to 1 + Dist.int rng 3 do
          add c art "references" (article (Dist.int rng a))
        done;
      if Dist.bool rng 0.4 then
        add c art "abstract" (Rdf.Term.lit (Printf.sprintf "Abstract of article %d" a))
    done;
    (* Inproceedings. *)
    let n_inp = 6 + Dist.int rng 8 in
    for _ = 1 to n_inp do
      let a = !ii in
      incr ii;
      let inp = inproc a in
      add c inp "type" (iri "Inproceedings");
      add c inp "title" (Rdf.Term.lit (Printf.sprintf "Inproceedings %d" a));
      add c inp "partOf" (proceedings p);
      add c inp "issued" (year y);
      let n_auth = 1 + Dist.int rng 3 in
      for _ = 1 to n_auth do
        add c inp "creator" (author (Dist.zipf_sample rng author_zipf))
      done;
      if Dist.bool rng 0.3 then
        add c inp "seeAlso" (Rdf.Term.lit (Printf.sprintf "http://ext.example.org/%d" a))
    done
  done;
  List.rev c.acc

(* ------------------------------------------------------------------ *)
(* Queries SQ1–SQ17                                                    *)
(* ------------------------------------------------------------------ *)

let queries : (string * string) list =
  let t = u "type" in
  [ (* SQ1: year of publication of Journal 0. *)
    ( "SQ1",
      Printf.sprintf
        "SELECT ?yr WHERE { ?j <%s> <%s> . ?j <%s> ?t . ?j <%s> ?yr }" t
        (u "Journal") (u "title") (u "issued") );
    (* SQ2: article star with OPTIONAL abstract, ordered by year. *)
    ( "SQ2",
      Printf.sprintf
        "SELECT ?inproc ?title ?yr ?abs WHERE { ?inproc <%s> <%s> . ?inproc <%s> ?title . ?inproc <%s> ?yr OPTIONAL { ?inproc <%s> ?abs } } ORDER BY ?yr"
        t (u "Article") (u "title") (u "issued") (u "abstract") );
    (* SQ3a/b/c: articles with a given property (selectivity ladder). *)
    ( "SQ3",
      Printf.sprintf "SELECT ?a WHERE { ?a <%s> <%s> . ?a <%s> ?v }" t
        (u "Article") (u "pages") );
    (* SQ4: the cross product — pairs of distinct creators publishing in
       the same journal. Times out by design at scale. *)
    ( "SQ4",
      Printf.sprintf
        "SELECT DISTINCT ?n1 ?n2 WHERE { ?a1 <%s> <%s> . ?a2 <%s> <%s> . ?a1 <%s> ?j . ?a2 <%s> ?j . ?a1 <%s> ?p1 . ?a2 <%s> ?p2 . ?p1 <%s> ?n1 . ?p2 <%s> ?n2 FILTER (?n1 < ?n2) }"
        t (u "Article") t (u "Article") (u "journal") (u "journal")
        (u "creator") (u "creator") (u "name") (u "name") );
    (* SQ5: authors of articles and inproceedings (join through
       creator). *)
    ( "SQ5",
      Printf.sprintf
        "SELECT DISTINCT ?person ?name WHERE { ?a <%s> <%s> . ?a <%s> ?person . ?person <%s> ?name }"
        t (u "Article") (u "creator") (u "name") );
    (* SQ6: publications without an abstract (OPTIONAL + !BOUND). *)
    ( "SQ6",
      Printf.sprintf
        "SELECT ?a ?title WHERE { ?a <%s> <%s> . ?a <%s> ?title OPTIONAL { ?a <%s> ?abs } FILTER (!BOUND(?abs)) }"
        t (u "Article") (u "title") (u "abstract") );
    (* SQ7: doubly-referenced articles (nested multi-valued joins). *)
    ( "SQ7",
      Printf.sprintf
        "SELECT DISTINCT ?title WHERE { ?x <%s> ?title . ?y <%s> ?x . ?z <%s> ?y }"
        (u "title") (u "references") (u "references") );
    (* SQ8: works of a specific author via UNION of both kinds. *)
    ( "SQ8",
      Printf.sprintf
        "SELECT ?x WHERE { { ?x <%s> <%s> . ?x <%s> <%sPerson0> } UNION { ?x <%s> <%s> . ?x <%s> <%sPerson0> } }"
        t (u "Article") (u "creator") ns t (u "Inproceedings") (u "creator") ns );
    (* SQ9: incoming/outgoing predicates of persons (variable
       predicate). *)
    ( "SQ9",
      Printf.sprintf
        "SELECT DISTINCT ?pred WHERE { ?person <%s> <%s> . ?person ?pred ?o }" t
        (u "Person") );
    (* SQ10: all subjects related to a person (reverse lookup, variable
       predicate). *)
    ("SQ10", Printf.sprintf "SELECT ?s ?p WHERE { ?s ?p <%sPerson0> }" ns);
    (* SQ11: seeAlso with ORDER/LIMIT/OFFSET. *)
    ( "SQ11",
      Printf.sprintf
        "SELECT ?ee WHERE { ?pub <%s> ?ee } ORDER BY ?ee LIMIT 10 OFFSET 5"
        (u "seeAlso") );
    (* SQ12: boolean-style check — articles of Person0 issued after
       1945. *)
    ( "SQ12",
      Printf.sprintf
        "SELECT ?a WHERE { ?a <%s> <%sPerson0> . ?a <%s> ?yr FILTER (?yr > 1945) } LIMIT 1"
        (u "creator") ns (u "issued") );
    (* SQ13: proceedings star. *)
    ( "SQ13",
      Printf.sprintf
        "SELECT ?p ?title ?yr WHERE { ?p <%s> <%s> . ?p <%s> ?title . ?p <%s> ?yr FILTER (?yr >= 1950) }"
        t (u "Proceedings") (u "title") (u "issued") );
    (* SQ14: inproceedings of a year with authors. *)
    ( "SQ14",
      Printf.sprintf
        "SELECT ?inp ?author WHERE { ?inp <%s> <%s> . ?inp <%s> 1960 . ?inp <%s> ?author }"
        t (u "Inproceedings") (u "issued") (u "creator") );
    (* SQ15: reference chains with year filter (3-hop). *)
    ( "SQ15",
      Printf.sprintf
        "SELECT ?a ?b WHERE { ?a <%s> ?b . ?b <%s> ?c . ?a <%s> ?yr FILTER (?yr < 1950) }"
        (u "references") (u "references") (u "issued") );
    (* SQ16: prolific authors' titles (zipf head). *)
    ( "SQ16",
      Printf.sprintf
        "SELECT ?t WHERE { ?a <%s> <%sPerson1> . ?a <%s> ?t }" (u "creator") ns
        (u "title") );
    (* SQ17: everything about one article (variable predicate star). *)
    ("SQ17", Printf.sprintf "SELECT ?p ?o WHERE { <%sArticle10> ?p ?o }" ns) ]
