(** SQL generation (Section 3.2.2, Figures 12/13): the merged query plan
    becomes a chain of common table expressions instantiating the
    paper's templates — DPH/RPH access with entry restriction, candidate
    predicate-column checks, DS/RS outer joins for multi-valued
    predicates, CASE projections for multi-column predicates, a lateral
    VALUES "flip" for OR-merged stars, CASE projections for OPT-merged
    stars, UNION ALL for unmerged unions, LEFT OUTER JOIN for unmerged
    OPTIONALs, filter CTEs with DICT decodes, and a final (possibly
    grouped-aggregate) select. *)

exception Unsupported of string

(** Storage backend the generated SQL targets. DB2RDF is the paper's
    schema; the other two are the comparison layouts of Figure 2. *)
type backend =
  | B_db2rdf of Loader.t
  | B_triple of { table : string }
      (** 3-column triple table, Figure 2(c) style *)
  | B_vertical of { tables : (int, string) Hashtbl.t }
      (** one [entry, val] table per predicate id, Figure 2(d) style *)

(** Generate the full SQL statement for a merged plan against any
    backend. May raise {!Unsupported}. [wcoj] (default false) requests
    the flat multiway-join form — one CTE joining a DPH alias per triple
    with only [col = const] / [col = col] conjuncts — when the plan is
    purely conjunctive over known single-valued constant predicates with
    one candidate column each; the relational planner then decides per
    statement whether it runs as a leapfrog join. [extvp] permits
    substituting an advisable ExtVP semi-join reduction
    ({!Relsql.Extvp}) for a conjunctive star's base relation when a
    mandatory join partner matches its (predicate pair, correlation)
    signature — the reduction is a row subset under DPH's own schema,
    so the star template is otherwise unchanged. Multiset-equivalent to
    the plain star-merged pipeline either way. *)
val generate_with :
  ?wcoj:bool ->
  ?extvp:Relsql.Extvp.t ->
  backend ->
  Rdf.Dictionary.t ->
  Sparql.Pattern_tree.t ->
  Merge.t ->
  Sparql.Ast.query ->
  Relsql.Sql_ast.stmt

(** Generate against the DB2RDF schema. *)
val generate :
  ?wcoj:bool ->
  ?extvp:Relsql.Extvp.t ->
  Loader.t ->
  Sparql.Pattern_tree.t ->
  Merge.t ->
  Sparql.Ast.query ->
  Relsql.Sql_ast.stmt
