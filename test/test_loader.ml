(** Tests for the DB2RDF loader: placement, spills, multi-value
    indirection, and full round-trip of the stored data. *)

open Db2rdf

let small_layout = Layout.make ~dph_cols:4 ~rph_cols:4

(** Reconstruct the triple set from the DPH/DS relations by scanning. *)
let triples_from_dph store : (int * int * int) list =
  let db = Loader.database store in
  let dph = Relsql.Database.find_exn db "DPH" in
  let ds = Relsql.Database.find_exn db "DS" in
  let k = Loader.column_count store Loader.Direct in
  let schema = Relsql.Table.schema dph in
  let pos = Layout.positions schema k in
  let ds_values lid =
    List.filter_map
      (fun rid ->
        match Relsql.Table.get ds rid with
        | [| _; Relsql.Value.Int o |] -> Some o
        | _ -> None)
      (Array.to_list (Relsql.Table.lookup ds 0 (Relsql.Value.Lid lid)))
  in
  Relsql.Table.fold
    (fun acc _ row ->
      let s =
        match row.(pos.Layout.entry_pos) with
        | Relsql.Value.Int s -> s
        | _ -> failwith "bad entry"
      in
      let acc = ref acc in
      for c = 0 to k - 1 do
        match row.(pos.Layout.pred_pos.(c)) with
        | Relsql.Value.Int p ->
          (match row.(pos.Layout.val_pos.(c)) with
           | Relsql.Value.Int o -> acc := (s, p, o) :: !acc
           | Relsql.Value.Lid lid ->
             List.iter (fun o -> acc := (s, p, o) :: !acc) (ds_values lid)
           | _ -> failwith "bad val")
        | Relsql.Value.Null -> ()
        | _ -> failwith "bad pred"
      done;
      !acc)
    [] dph

let ids_of_triples store triples =
  let dict = Loader.dictionary store in
  List.map
    (fun (tr : Rdf.Triple.t) ->
      ( Option.get (Rdf.Dictionary.find dict tr.s),
        Option.get (Rdf.Dictionary.find dict tr.p),
        Option.get (Rdf.Dictionary.find dict tr.o) ))
    triples

let test_roundtrip_fig1 () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:small_layout () in
  Loader.load store triples;
  let stored = List.sort_uniq compare (triples_from_dph store) in
  let expected = List.sort_uniq compare (ids_of_triples store triples) in
  Alcotest.(check int) "same count" (List.length expected) (List.length stored);
  Alcotest.(check bool) "same set" true (stored = expected)

let test_multivalued_registry () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:small_layout () in
  Loader.load store triples;
  let dict = Loader.dictionary store in
  let pid name = Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri name)) in
  Alcotest.(check bool) "industry is multi-valued (direct)" true
    (Loader.is_multivalued store Loader.Direct ~pred_id:(pid "industry"));
  Alcotest.(check bool) "born is single-valued (direct)" false
    (Loader.is_multivalued store Loader.Direct ~pred_id:(pid "born"));
  (* reverse side: founder into Google from two subjects? no — one each;
     but industry "Software" has two incoming industry edges. *)
  Alcotest.(check bool) "industry multi-valued (reverse)" true
    (Loader.is_multivalued store Loader.Reverse ~pred_id:(pid "industry"))

let test_dedup () =
  let store = Loader.create ~layout:small_layout () in
  let t = Rdf.Triple.spo "s" "p" (Rdf.Term.lit "o") in
  Loader.insert store t;
  Loader.insert store t;
  Alcotest.(check int) "loaded once" 1 (Loader.triples_loaded store);
  Alcotest.(check int) "one DPH tuple" 1 (Loader.report store Loader.Direct).Loader.rows

let test_spill_rows_marked () =
  (* Force spills: 1-column layout, subject with 3 distinct predicates. *)
  let layout = Layout.make ~dph_cols:1 ~rph_cols:4 in
  let store =
    Loader.create ~layout ~direct_map:(Pred_map.hashed ~m:1 ~seed:1) ()
  in
  let s = Rdf.Term.iri "s" in
  List.iter
    (fun p -> Loader.insert store (Rdf.Triple.make s (Rdf.Term.iri p) (Rdf.Term.lit p)))
    [ "p1"; "p2"; "p3" ];
  let report = Loader.report store Loader.Direct in
  Alcotest.(check int) "3 rows" 3 report.Loader.rows;
  Alcotest.(check int) "2 spills" 2 report.Loader.spills;
  (* All rows of a spilled entity carry spill = 1. *)
  let dph = Relsql.Database.find_exn (Loader.database store) "DPH" in
  Relsql.Table.iter
    (fun _ row ->
      Alcotest.(check bool) "spill flag" true
        (Relsql.Value.equal row.(1) (Relsql.Value.Int 1)))
    dph;
  (* Spilled predicates are registered; queries still answer. *)
  let dict = Loader.dictionary store in
  let spilled =
    List.filter
      (fun p ->
        Loader.is_spill_involved store Loader.Direct
          ~pred_id:(Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri p))))
      [ "p1"; "p2"; "p3" ]
  in
  Alcotest.(check int) "two spill-involved predicates" 2 (List.length spilled)

let test_null_fraction_and_storage () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:(Layout.make ~dph_cols:8 ~rph_cols:8) () in
  Loader.load store triples;
  let r = Loader.report store Loader.Direct in
  Alcotest.(check bool) "nulls present" true (r.Loader.null_fraction > 0.0);
  Alcotest.(check bool) "storage accounted" true (r.Loader.storage_bytes > 0)

let test_candidate_columns_respect_map () =
  let store = Loader.create ~layout:small_layout () in
  let cands = Loader.candidate_columns store Loader.Direct ~pred_term:(Rdf.Term.iri "p") in
  Alcotest.(check bool) "within layout" true
    (List.for_all (fun c -> c >= 0 && c < 4) cands)

(* Property: round-trip holds for random data under tight layouts
   (heavy spilling) and wide layouts alike, on both sides. *)
let roundtrip_random =
  QCheck.Test.make ~name:"loader round-trip under random data/layout" ~count:40
    QCheck.(
      make
        Gen.(
          pair (int_range 1 6)
            (list_size (int_range 1 150)
               (triple (int_range 0 25) (int_range 0 12) (int_range 0 25)))))
    (fun (k, specs) ->
      let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i) in
      let triples =
        List.map
          (fun (s, p, o) -> Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o))
          specs
      in
      let store = Loader.create ~layout:(Layout.make ~dph_cols:k ~rph_cols:k) () in
      Loader.load store triples;
      let stored = List.sort_uniq compare (triples_from_dph store) in
      let expected = List.sort_uniq compare (ids_of_triples store triples) in
      stored = expected)

(* ------------------------------------------------------------------ *)
(* seq ≡ par store equality                                            *)
(* ------------------------------------------------------------------ *)

(* Colored engine built at [load_domains] over [triples], with a narrow
   layout so even small graphs hit hash conflicts, spill rows and lid
   indirection. Returns the engine and its canonical store dump. *)
let engine_dump ?(k = 4) ~load_domains triples =
  let e, _, _ =
    Engine.create_colored
      ~options:{ Engine.default_options with load_domains }
      ~layout:(Layout.make ~dph_cols:k ~rph_cols:k) triples
  in
  (e, Loader.dump_store (Engine.loader e))

(* Load [triples] at domains 1, 2 and 4 and assert every observable of
   the store matches: dictionary, table contents and row order (all via
   the canonical dump), registries, counts, and the per-load stats. *)
let check_seq_par ?k name triples =
  let seq, seq_dump = engine_dump ?k ~load_domains:1 triples in
  let lseq = Engine.loader seq in
  List.iter
    (fun d ->
      let par, par_dump = engine_dump ?k ~load_domains:d triples in
      let lpar = Engine.loader par in
      let tag fmt = Printf.sprintf "%s @%dd: %s" name d fmt in
      Alcotest.(check int) (tag "dictionary size")
        (Rdf.Dictionary.size (Loader.dictionary lseq))
        (Rdf.Dictionary.size (Loader.dictionary lpar));
      Alcotest.(check int) (tag "triples loaded")
        (Loader.triples_loaded lseq) (Loader.triples_loaded lpar);
      List.iter
        (fun (side_name, side) ->
          Alcotest.(check (list int))
            (tag (side_name ^ " multivalued set"))
            (Loader.multivalued_predicates lseq side)
            (Loader.multivalued_predicates lpar side);
          Alcotest.(check (list int))
            (tag (side_name ^ " spill set"))
            (Loader.spill_predicates lseq side)
            (Loader.spill_predicates lpar side);
          let rs = Loader.report lseq side and rp = Loader.report lpar side in
          Alcotest.(check int) (tag (side_name ^ " rows")) rs.Loader.rows
            rp.Loader.rows;
          Alcotest.(check int) (tag (side_name ^ " spills")) rs.Loader.spills
            rp.Loader.spills;
          Alcotest.(check int)
            (tag (side_name ^ " entities"))
            rs.Loader.distinct_entities rp.Loader.distinct_entities)
        [ ("direct", Loader.Direct); ("reverse", Loader.Reverse) ];
      (match Engine.load_stats par with
       | Some s ->
         Alcotest.(check int) (tag "parallel path ran") d
           s.Loader.domains_used
       | None -> Alcotest.fail (tag "no load stats"));
      Alcotest.(check bool) (tag "canonical dumps byte-identical") true
        (seq_dump = par_dump))
    [ 2; 4 ]

(* The examples/ dataset: the paper's Figure 1(a) graph, multi-valued
   [industry] included. *)
let test_seq_par_fig1 () = check_seq_par "fig1" (Helpers.fig1_triples ())

(* Three Gen_graph graphs (the fuzzer's generator: hash conflicts,
   multi-valued bursts, unicode literals) at three sizes. *)
let test_seq_par_generated () =
  List.iter
    (fun (seed, size) ->
      let st = Random.State.make [| seed |] in
      let triples, _ = Fuzz.Gen_graph.generate ~size st in
      check_seq_par (Printf.sprintf "gen(seed=%d,n=%d)" seed size) triples)
    [ (11, 60); (22, 150); (33, 400) ]

(* A generated workload through the narrowest layout that still colors:
   heavy spilling on both sides. *)
let test_seq_par_workload_spilly () =
  check_seq_par ~k:2 "micro-k2" (Workloads.Micro.generate ~scale:600)

(* ------------------------------------------------------------------ *)
(* Dictionary-delta merge edge cases                                   *)
(* ------------------------------------------------------------------ *)

(* Two plain Loader stores (identical default hashed maps), one loaded
   sequentially and one at [domains]; returns both dumps. *)
let loader_dumps ?(layout = small_layout) ~domains triples =
  let seq = Loader.create ~layout () in
  Loader.load seq triples;
  let par = Loader.create ~layout () in
  Loader.load ~domains par triples;
  (Loader.dump_store seq, Loader.dump_store par)

(* Every morsel sees the same terms: the per-chunk deltas all intern
   duplicates of one small vocabulary, so the merge pass must dedup
   them into one global id each — and drop the duplicate triples. *)
let test_merge_duplicate_terms_across_morsels () =
  let block =
    List.map
      (fun (s, p, o) -> Rdf.Triple.spo s p (Rdf.Term.iri o))
      [ ("s1", "p1", "o1"); ("s2", "p1", "o2"); ("s1", "p2", "o1");
        ("s2", "p2", "o2"); ("s3", "p3", "o3") ]
  in
  let triples = List.concat (List.init 40 (fun _ -> block)) in
  let ds, dp = loader_dumps ~domains:4 triples in
  Alcotest.(check bool) "dumps identical" true (ds = dp);
  let par = Loader.create ~layout:small_layout () in
  Loader.load ~domains:4 par triples;
  Alcotest.(check int) "only distinct triples loaded" 5
    (Loader.triples_loaded par);
  Alcotest.(check int) "dictionary holds each term once" 9
    (Rdf.Dictionary.size (Loader.dictionary par))

(* Empty input and inputs smaller than the requested parallelism: the
   morsel split must cope with more workers than triples (single-triple
   morsels, idle workers, empty entity partitions). *)
let test_merge_empty_and_tiny_inputs () =
  let store = Loader.create ~layout:small_layout () in
  Loader.load ~domains:4 store [];
  Alcotest.(check int) "empty load loads nothing" 0
    (Loader.triples_loaded store);
  (match Loader.last_load_stats store with
   | Some s ->
     Alcotest.(check int) "empty load takes the sequential path" 1
       s.Loader.domains_used
   | None -> Alcotest.fail "no stats after empty load");
  List.iter
    (fun n ->
      let triples =
        List.init n (fun i ->
            Rdf.Triple.spo "s" (Printf.sprintf "p%d" i) (Rdf.Term.int_lit i))
      in
      let ds, dp = loader_dumps ~domains:8 triples in
      Alcotest.(check bool)
        (Printf.sprintf "%d-triple load identical at 8 domains" n)
        true (ds = dp))
    [ 1; 2; 3; 7 ]

(* Unicode terms (raw UTF-8 and \uXXXX escapes through the N-Triples
   parser — the PR 2 fix) must intern to the same ids either way. *)
let test_merge_unicode_terms () =
  let escaped = ref [] in
  Rdf.Ntriples.parse_string
    (fun t -> escaped := t :: !escaped)
    "<s1> <p1> \"caf\\u00e9\" .\n\
     <s2> <p1> \"\\u2603 snowman\" .\n\
     <s1> <p2> \"caf\\u00E9\"@fr .\n";
  let raw =
    [ Rdf.Triple.spo "s3" "p1" (Rdf.Term.lit "caf\xc3\xa9");
      Rdf.Triple.spo "s3" "p2" (Rdf.Term.lang_lit "caf\xc3\xa9" "fr");
      Rdf.Triple.spo "s4" "p1" (Rdf.Term.lit "\xe2\x98\x83 snowman") ]
  in
  (* Duplicate the mix so several morsels each see the unicode terms. *)
  let triples = List.concat (List.init 12 (fun _ -> List.rev !escaped @ raw)) in
  let ds, dp = loader_dumps ~domains:4 triples in
  Alcotest.(check bool) "unicode dumps identical" true (ds = dp);
  (* The \uXXXX literal and the raw-UTF-8 literal are the same term. *)
  let store = Loader.create ~layout:small_layout () in
  Loader.load ~domains:4 store triples;
  let dict = Loader.dictionary store in
  Alcotest.(check bool) "escaped and raw café unify" true
    (Rdf.Dictionary.mem dict (Rdf.Term.lit "caf\xc3\xa9"))

(* Multi-valued predicates spread across morsels on both sides: lids
   must come out in the sequential allocation order (direct before
   reverse at each triple, second occurrence per (entity, pred)). *)
let test_merge_lid_allocation_determinism () =
  let direct_mv =
    List.init 10 (fun i ->
        Rdf.Triple.spo "hub" "likes" (Rdf.Term.iri (Printf.sprintf "t%d" i)))
  in
  let reverse_mv =
    List.init 10 (fun i ->
        Rdf.Triple.spo (Printf.sprintf "f%d" i) "member" (Rdf.Term.iri "group"))
  in
  (* Interleave so lid allocations alternate between sides. *)
  let rec interleave = function
    | x :: xs, y :: ys -> x :: y :: interleave (xs, ys)
    | [], rest | rest, [] -> rest
  in
  let triples = interleave (direct_mv, reverse_mv) in
  let ds, dp = loader_dumps ~domains:4 triples in
  Alcotest.(check bool) "lid schedules identical" true (ds = dp);
  let par = Loader.create ~layout:small_layout () in
  Loader.load ~domains:4 par triples;
  let dict = Loader.dictionary par in
  let pid name = Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri name)) in
  Alcotest.(check (list int)) "likes multi-valued on direct side"
    [ pid "likes" ]
    (Loader.multivalued_predicates par Loader.Direct);
  Alcotest.(check (list int)) "member multi-valued on reverse side"
    [ pid "member" ]
    (Loader.multivalued_predicates par Loader.Reverse)

(* Property: the parallel loader is indistinguishable from the
   sequential one on random graphs and layouts (the same generator as
   the round-trip property, so heavy spilling is covered). *)
let seq_par_random =
  QCheck.Test.make ~name:"parallel load ≡ sequential load" ~count:40
    QCheck.(
      make
        Gen.(
          pair (int_range 1 6)
            (list_size (int_range 1 150)
               (triple (int_range 0 25) (int_range 0 12) (int_range 0 25)))))
    (fun (k, specs) ->
      let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i) in
      let triples =
        List.map
          (fun (s, p, o) -> Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o))
          specs
      in
      let layout = Layout.make ~dph_cols:k ~rph_cols:k in
      let ds, dp = loader_dumps ~layout ~domains:4 triples in
      ds = dp)

(* ------------------------------------------------------------------ *)
(* Differential fuzz over parallel-loaded stores                       *)
(* ------------------------------------------------------------------ *)

(** Fixed-seed differential sweep where every engine backend is built
    by the parallel bulk loader AND queried with parallel executors:
    200 random (graph, query) cases against the reference evaluator, so
    a load bug surfaces as a query mismatch. *)
let test_fuzz_sweep_parallel_load () =
  let config =
    { Fuzz.Runner.default_config with
      seed = 2024; cases = 200; domains = 4; load_domains = 4 }
  in
  let s = Fuzz.Runner.fuzz config in
  Alcotest.(check int) "no divergences with load_domains=4" 0
    s.Fuzz.Runner.divergent;
  Alcotest.(check int) "all cases ran" 200 s.Fuzz.Runner.cases_run

(** Replay the committed reproducer corpus over parallel-loaded
    stores. *)
let test_corpus_replay_parallel_load () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Fuzz.Repro.read (Filename.concat "corpus" f) in
      match Fuzz.Runner.check_repro ~load_domains:4 r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s (load_domains=4): %s" f msg)
    files

let suite =
  [ Alcotest.test_case "round-trip fig1" `Quick test_roundtrip_fig1;
    Alcotest.test_case "multi-valued registry" `Quick test_multivalued_registry;
    Alcotest.test_case "duplicate triples ignored" `Quick test_dedup;
    Alcotest.test_case "spill rows marked" `Quick test_spill_rows_marked;
    Alcotest.test_case "null fraction / storage" `Quick test_null_fraction_and_storage;
    Alcotest.test_case "candidate columns" `Quick test_candidate_columns_respect_map;
    QCheck_alcotest.to_alcotest roundtrip_random;
    Alcotest.test_case "seq≡par: fig1" `Quick test_seq_par_fig1;
    Alcotest.test_case "seq≡par: generated graphs" `Quick
      test_seq_par_generated;
    Alcotest.test_case "seq≡par: spilly workload" `Quick
      test_seq_par_workload_spilly;
    Alcotest.test_case "merge: duplicate terms across morsels" `Quick
      test_merge_duplicate_terms_across_morsels;
    Alcotest.test_case "merge: empty and tiny inputs" `Quick
      test_merge_empty_and_tiny_inputs;
    Alcotest.test_case "merge: unicode terms" `Quick test_merge_unicode_terms;
    Alcotest.test_case "merge: lid allocation determinism" `Quick
      test_merge_lid_allocation_determinism;
    QCheck_alcotest.to_alcotest seq_par_random;
    Alcotest.test_case "fuzz sweep over parallel-loaded stores" `Slow
      test_fuzz_sweep_parallel_load;
    Alcotest.test_case "corpus replay with parallel load" `Quick
      test_corpus_replay_parallel_load ]
