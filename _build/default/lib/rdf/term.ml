(** RDF terms: IRIs, literals (plain, language-tagged or datatyped) and
    blank nodes, per the RDF abstract syntax. *)

type literal = {
  lex : string;  (** lexical form *)
  lang : string option;  (** language tag, mutually exclusive with datatype *)
  datatype : string option;  (** datatype IRI *)
}

type t =
  | Iri of string
  | Lit of literal
  | Bnode of string

let iri s = Iri s
let bnode s = Bnode s
let lit s = Lit { lex = s; lang = None; datatype = None }
let lang_lit s lang = Lit { lex = s; lang = Some lang; datatype = None }
let typed_lit s datatype = Lit { lex = s; lang = None; datatype = Some datatype }

let xsd_integer = "http://www.w3.org/2001/XMLSchema#integer"
let xsd_decimal = "http://www.w3.org/2001/XMLSchema#decimal"
let xsd_string = "http://www.w3.org/2001/XMLSchema#string"
let rdf_type = Iri "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

let int_lit i = typed_lit (string_of_int i) xsd_integer

(** Canonical numeric term for computed values (aggregates): integral
    numbers become xsd:integer literals, others xsd:decimal. Every store
    uses this, so aggregate answers compare equal across systems. *)
let of_number f =
  if Float.is_integer f && Float.abs f < 1e15 then int_lit (int_of_float f)
  else typed_lit (Printf.sprintf "%g" f) xsd_decimal

let is_iri = function Iri _ -> true | Lit _ | Bnode _ -> false
let is_literal = function Lit _ -> true | Iri _ | Bnode _ -> false
let is_bnode = function Bnode _ -> true | Iri _ | Lit _ -> false

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b
let hash (a : t) = Hashtbl.hash a

(** Numeric value of a literal, when its lexical form parses as a number.
    Used by FILTER arithmetic in the reference evaluator. *)
let as_number = function
  | Lit { lex; _ } -> float_of_string_opt lex
  | Iri _ | Bnode _ -> None

let escape_literal s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** N-Triples surface form. *)
let to_string = function
  | Iri s -> "<" ^ s ^ ">"
  | Bnode s -> "_:" ^ s
  | Lit { lex; lang = Some l; _ } -> "\"" ^ escape_literal lex ^ "\"@" ^ l
  | Lit { lex; datatype = Some d; _ } -> "\"" ^ escape_literal lex ^ "\"^^<" ^ d ^ ">"
  | Lit { lex; _ } -> "\"" ^ escape_literal lex ^ "\""

let pp fmt t = Format.pp_print_string fmt (to_string t)
