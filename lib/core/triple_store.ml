(** The triple-store baseline (Section 2, first alternative): a single
    3-column relation [TRIPLES(subj, pred, obj)] with subject and object
    indexes, and a bottom-up selectivity-ordered SPARQL-to-SQL
    translation where every triple pattern costs one self-join
    (Figure 2(c)). *)

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  table : Relsql.Table.t;
  stats : Dataset_stats.t;
  dict_state : Dict_table.state;
  seen : (int * int * int, unit) Hashtbl.t;
}

let table_name = "TRIPLES"

let create ?dict () =
  let db = Relsql.Database.create "triple-store" in
  let dict = match dict with Some d -> d | None -> Rdf.Dictionary.create () in
  let table =
    Relsql.Database.create_table db table_name
      (Relsql.Schema.make [ "subj"; "pred"; "obj" ])
  in
  Relsql.Table.create_index_on table "subj";
  Relsql.Table.create_index_on table "pred";
  Relsql.Table.create_index_on table "obj";
  {
    db;
    dict;
    table;
    stats = Dataset_stats.create ();
    dict_state = Dict_table.create db;
    seen = Hashtbl.create 4096;
  }

let insert t (tr : Rdf.Triple.t) =
  let s = Rdf.Dictionary.id_of t.dict tr.s in
  let p = Rdf.Dictionary.id_of t.dict tr.p in
  let o = Rdf.Dictionary.id_of t.dict tr.o in
  if not (Hashtbl.mem t.seen (s, p, o)) then begin
    Hashtbl.add t.seen (s, p, o) ();
    ignore
      (Relsql.Table.insert t.table
         [| Relsql.Value.Int s; Relsql.Value.Int p; Relsql.Value.Int o |]);
    Dataset_stats.record t.stats ~s ~p ~o
  end

let load t triples =
  List.iter (insert t) triples;
  Dict_table.sync t.dict_state t.dict;
  if !Relsql.Database.default_compress then Relsql.Database.freeze_all t.db

(** Delete one triple (no-op when absent). *)
let delete t (tr : Rdf.Triple.t) =
  match
    ( Rdf.Dictionary.find t.dict tr.s,
      Rdf.Dictionary.find t.dict tr.p,
      Rdf.Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o when Hashtbl.mem t.seen (s, p, o) ->
    Hashtbl.remove t.seen (s, p, o);
    let subj_pos = 0 and pred_pos = 1 and obj_pos = 2 in
    (match
       Array.find_opt
         (fun rid ->
           Relsql.Table.cell t.table rid pred_pos = Relsql.Value.Int p
           && Relsql.Table.cell t.table rid obj_pos = Relsql.Value.Int o)
         (Relsql.Table.lookup t.table subj_pos (Relsql.Value.Int s))
     with
     | Some rid -> Relsql.Table.delete_row t.table rid
     | None -> ());
    Dataset_stats.unrecord t.stats ~s ~p ~o
  | _ -> ()

(* Keep the DICT table and (under [--compress]) the packed encoding in
   step after an update statement, mirroring [load]'s epilogue. *)
let after_write t =
  Dict_table.sync t.dict_state t.dict;
  if !Relsql.Database.default_compress then Relsql.Database.freeze_all t.db

let translate t (q : Sparql.Ast.query) : Relsql.Sql_ast.stmt =
  let pt = Sparql.Pattern_tree.of_query q in
  let etree = Bottom_up.exec_tree pt t.stats t.dict in
  let plan = Merge.of_exec (Bottom_up.no_merge_ctx pt) etree in
  Sqlgen.generate_with (Sqlgen.B_triple { table = table_name }) t.dict pt plan q

let query ?timeout t (q : Sparql.Ast.query) : Sparql.Ref_eval.results =
  let stmt = translate t q in
  let r = Relsql.Executor.run ?timeout t.db stmt in
  Results.decode t.dict q r

let query_analyzed ?timeout t (q : Sparql.Ast.query) :
  Sparql.Ref_eval.results * Relsql.Opstats.t =
  let stmt = translate t q in
  let r, stats = Relsql.Executor.run_analyzed ?timeout t.db stmt in
  (Results.decode t.dict q r, stats)

let explain t q =
  let stmt = translate t q in
  Relsql.Sql_pp.to_pretty_string stmt
  ^ "\n"
  ^ Relsql.Executor.explain t.db stmt

let to_store ?(name = "TripleStore") t : Store.t =
  {
    Store.name;
    load = (fun triples -> load t triples);
    delete = (fun triples -> List.iter (delete t) triples);
    query = (fun ?timeout q -> query ?timeout t q);
    analyze =
      (fun ?timeout q ->
        let r, stats = query_analyzed ?timeout t q in
        (r, Some stats));
    explain = (fun q -> explain t q);
    update =
      Store.update_via
        ~query:(fun ?timeout q -> query ?timeout t q)
        ~insert:(fun ts ->
          List.iter (insert t) ts;
          after_write t)
        ~delete:(fun ts ->
          List.iter (delete t) ts;
          after_write t);
  }
