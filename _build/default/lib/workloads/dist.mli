(** Deterministic random distributions for the dataset generators: a
    splitmix-style PRNG seeded explicitly, so every workload is
    reproducible run to run (the benchmarks depend on that: result
    counts are compared across stores). *)

type rng

val create : int -> rng

(** Uniform integer in [0, bound); raises on non-positive bound. *)
val int : rng -> int -> int

(** Uniform float in [0, 1). *)
val float : rng -> float

val bool : rng -> float -> bool

(** Pick uniformly from a non-empty list. *)
val choose : rng -> 'a list -> 'a

(** Zipf sampler over ranks [0, n): probability of rank k proportional
    to 1/(k+1)^s. *)
type zipf

val zipf : n:int -> s:float -> zipf
val zipf_sample : rng -> zipf -> int

(** Sample [k] distinct integers in [0, bound). *)
val distinct_ints : rng -> k:int -> bound:int -> int list
