(** The DB2RDF relational schema (Section 2.1, Figure 1).

    Four relations:
    - [DPH] (Direct Primary Hash): one or more rows per *subject*; columns
      [entry, spill, pred0, val0, ..., pred(k-1), val(k-1)].
    - [DS] (Direct Secondary Hash): [(l_id, elm)] rows holding the values
      of multi-valued predicates, linked from DPH [val] cells via
      {!Relsql.Value.Lid} identifiers.
    - [RPH] / [RS]: the same structure keyed by *object*, encoding the
      incoming edges of an entity.

    Only the [entry] columns of DPH/RPH and the [l_id] columns of DS/RS
    are indexed, exactly as in the paper's experimental setup ("we only
    added indexes on the entry columns"). *)

type t = {
  dph_cols : int;  (** k: pred/val column pairs in DPH *)
  rph_cols : int;  (** k': pred/val column pairs in RPH *)
}

let default = { dph_cols = 16; rph_cols = 16 }

let make ~dph_cols ~rph_cols =
  if dph_cols < 1 || rph_cols < 1 then invalid_arg "Layout.make";
  { dph_cols; rph_cols }

let pred_col i = Printf.sprintf "pred%d" i
let val_col i = Printf.sprintf "val%d" i

let primary_schema k =
  let cols = ref [] in
  for i = k - 1 downto 0 do
    cols := pred_col i :: val_col i :: !cols
  done;
  Relsql.Schema.make ("entry" :: "spill" :: !cols)

let secondary_schema () = Relsql.Schema.make [ "l_id"; "elm" ]

(** Column positions, precomputed for the loader's inner loop. *)
type positions = {
  entry_pos : int;
  spill_pos : int;
  pred_pos : int array;  (** pair index -> position of pred column *)
  val_pos : int array;
}

let positions schema k =
  {
    entry_pos = Relsql.Schema.position_exn schema "entry";
    spill_pos = Relsql.Schema.position_exn schema "spill";
    pred_pos = Array.init k (fun i -> Relsql.Schema.position_exn schema (pred_col i));
    val_pos = Array.init k (fun i -> Relsql.Schema.position_exn schema (val_col i));
  }

(** Create the four relations in [db] and index their lookup columns.
    Table names are the paper's. *)
let create_tables db t =
  let dph = Relsql.Database.create_table db "DPH" (primary_schema t.dph_cols) in
  let rph = Relsql.Database.create_table db "RPH" (primary_schema t.rph_cols) in
  let ds = Relsql.Database.create_table db "DS" (secondary_schema ()) in
  let rs = Relsql.Database.create_table db "RS" (secondary_schema ()) in
  Relsql.Table.create_index_on dph "entry";
  Relsql.Table.create_index_on rph "entry";
  Relsql.Table.create_index_on ds "l_id";
  Relsql.Table.create_index_on rs "l_id";
  (dph, ds, rph, rs)
