lib/workloads/sp2b.ml: Dist List Printf Rdf
