bench/main.ml: Exp_ablation Exp_bechamel Exp_coloring Exp_flow Exp_load Exp_micro Exp_nulls Exp_summary Harness Printf
