lib/sparql/inference.ml: Ast Hashtbl List Rdf
