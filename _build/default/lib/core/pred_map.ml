(** Predicate-to-column mappings (Definitions 2.1 and 2.2).

    A predicate mapping assigns each predicate URI a column number in
    [0, m). A *composition* [f1 ⊕ f2 ⊕ ... ⊕ fn] yields the ordered
    candidate-column sequence the loader probes at insertion time and
    the translator checks at query time: data for predicate [p] may live
    in any of [candidates t p]. *)

type t = {
  arity : int;  (** m: number of columns in the target relation *)
  describe : string;
  candidates : string -> int list;
      (** candidate columns for a predicate URI, in priority order;
          duplicates removed, all < arity *)
}

let arity t = t.arity
let describe t = t.describe

let candidates t p =
  let seen = Hashtbl.create 4 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c then false
      else begin
        Hashtbl.add seen c ();
        true
      end)
    (t.candidates p)

(** FNV-1a over the URI string, seeded — the independent hash family of
    Section 2.2. *)
let hash_string ~seed s =
  let h = ref (0x811c9dc5 lxor (seed * 0x01000193)) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193;
      h := !h land 0x3FFFFFFF)
    s;
  !h

(** A single hash mapping [h_m] restricted to [0, m). *)
let hashed ~m ~seed =
  {
    arity = m;
    describe = Printf.sprintf "hash(seed=%d,m=%d)" seed m;
    candidates = (fun p -> [ hash_string ~seed p mod m ]);
  }

(** [h_m^n]: composition of [n] independent hash functions
    (Section 2.2, "Hashing"). *)
let hashed_family ~m ~n =
  {
    arity = m;
    describe = Printf.sprintf "hash^%d(m=%d)" n m;
    candidates =
      (fun p -> List.init n (fun i -> hash_string ~seed:(i + 1) p mod m));
  }

(** Composition [a ⊕ b] (Definition 2.2): try [a]'s columns first, then
    [b]'s. Both must target the same relation width. *)
let compose a b =
  if a.arity <> b.arity then invalid_arg "Pred_map.compose: arity mismatch";
  {
    arity = a.arity;
    describe = a.describe ^ " ⊕ " ^ b.describe;
    candidates = (fun p -> a.candidates p @ b.candidates p);
  }

(** An explicit table mapping (e.g. from graph coloring); predicates
    absent from the table fall through to nothing — compose with a hash
    mapping to handle them (the [c(D⊗P) ⊕ h_m] construction of
    Section 2.2). *)
let of_table ~m ~describe tbl =
  {
    arity = m;
    describe;
    candidates =
      (fun p -> match Hashtbl.find_opt tbl p with Some c -> [ c ] | None -> []);
  }

(** The fixed two-function example of Table 3 in the paper, for tests
    and the walkthrough bench: explicit assignments for the Android
    predicates. *)
let paper_table3 ~k =
  let h1 = Hashtbl.create 8 and h2 = Hashtbl.create 8 in
  List.iter
    (fun (p, c1, c2) ->
      Hashtbl.replace h1 p c1;
      Hashtbl.replace h2 p c2)
    [ ("developer", 1, 3); ("version", 2, 1); ("kernel", 1, 3);
      ("preceded", k, 1); ("graphics", 3, 2) ];
  let get tbl p = match Hashtbl.find_opt tbl p with Some c -> [ c - 1 ] | None -> [] in
  compose
    { arity = k; describe = "table3-h1"; candidates = get h1 }
    { arity = k; describe = "table3-h2"; candidates = get h2 }
