(** Tests for predicate mappings (Defs 2.1/2.2, Table 3) and graph
    coloring (Def 2.3, Figure 4, Table 4 machinery). *)

open Db2rdf

(* ------------------------------------------------------------------ *)
(* Predicate mappings                                                  *)
(* ------------------------------------------------------------------ *)

let test_hash_mapping_range () =
  let m = Pred_map.hashed ~m:7 ~seed:1 in
  List.iter
    (fun p ->
      match Pred_map.candidates m p with
      | [ c ] -> Alcotest.(check bool) "in range" true (c >= 0 && c < 7)
      | _ -> Alcotest.fail "single hash yields one candidate")
    [ "a"; "b"; "http://long/predicate/name"; "" ]

let test_hash_family_composition () =
  let m = Pred_map.hashed_family ~m:16 ~n:3 in
  let cands = Pred_map.candidates m "http://x.org/p" in
  Alcotest.(check bool) "at most 3 candidates" true (List.length cands <= 3);
  Alcotest.(check bool) "at least 1" true (List.length cands >= 1);
  (* deterministic *)
  Alcotest.(check (list int)) "stable" cands (Pred_map.candidates m "http://x.org/p")

let test_compose_order () =
  let a = Pred_map.of_table ~m:4 ~describe:"a" (Hashtbl.create 1) in
  let h = Hashtbl.create 1 in
  Hashtbl.add h "p" 2;
  let b = Pred_map.of_table ~m:4 ~describe:"b" h in
  let c = Pred_map.compose a b in
  Alcotest.(check (list int)) "fallthrough" [ 2 ] (Pred_map.candidates c "p");
  Alcotest.(check (list int)) "missing everywhere" [] (Pred_map.candidates c "q");
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Pred_map.compose: arity mismatch") (fun () ->
      ignore (Pred_map.compose a (Pred_map.hashed ~m:5 ~seed:0)))

(** The Table 3 walkthrough: inserting the Android triples one by one
    with the paper's two hash functions reproduces the Figure 1(b)
    layout — developer in pred1, version in pred2, kernel in pred3 (via
    h2), preceded in predk, and graphics spilling to a second row. *)
let test_table3_walkthrough () =
  let k = 5 in
  let layout = Layout.make ~dph_cols:k ~rph_cols:k in
  let store =
    Loader.create ~layout ~direct_map:(Pred_map.paper_table3 ~k)
      ~reverse_map:(Pred_map.hashed_family ~m:k ~n:2) ()
  in
  let android = Rdf.Term.iri "Android" in
  List.iter
    (fun (p, o) -> Loader.insert store (Rdf.Triple.make android (Rdf.Term.iri p) o))
    [ ("developer", Rdf.Term.iri "Google"); ("version", Rdf.Term.lit "4.1");
      ("kernel", Rdf.Term.iri "Linux"); ("preceded", Rdf.Term.lit "4.0");
      ("graphics", Rdf.Term.iri "OpenGL") ];
  let report = Loader.report store Loader.Direct in
  Alcotest.(check int) "one entity" 1 report.Loader.distinct_entities;
  Alcotest.(check int) "two rows (one spill)" 2 report.Loader.rows;
  Alcotest.(check int) "one spill" 1 report.Loader.spills;
  let graphics_id =
    Option.get (Rdf.Dictionary.find (Loader.dictionary store) (Rdf.Term.iri "graphics"))
  in
  Alcotest.(check bool) "graphics is spill-involved" true
    (Loader.is_spill_involved store Loader.Direct ~pred_id:graphics_id)

(* ------------------------------------------------------------------ *)
(* Interference graph & coloring                                       *)
(* ------------------------------------------------------------------ *)

let test_fig4_interference () =
  let triples = Helpers.fig1_triples () in
  let g = Coloring.direct_graph triples in
  Alcotest.(check int) "13 predicates" 13 (Coloring.n_vertices g);
  let vertex p = Hashtbl.find g.Coloring.vertex p in
  Alcotest.(check bool) "died-born interfere (Charles Flint)" true
    (Coloring.interferes g (vertex "died") (vertex "born"));
  Alcotest.(check bool) "board-home interfere (Larry Page)" true
    (Coloring.interferes g (vertex "board") (vertex "home"));
  (* board and died never co-occur — Figure 4's point. *)
  Alcotest.(check bool) "board-died do not interfere" false
    (Coloring.interferes g (vertex "board") (vertex "died"))

let test_fig4_coloring () =
  let triples = Helpers.fig1_triples () in
  let g = Coloring.direct_graph triples in
  let r = Coloring.color g in
  Alcotest.(check bool) "valid" true (Coloring.valid g r);
  Alcotest.(check int) "full coverage" 13 r.Coloring.covered;
  (* The paper needs 5 colors for these 13 predicates; greedy should be
     close (at most 6). *)
  Alcotest.(check bool)
    (Printf.sprintf "colors %d <= 6" r.Coloring.colors_used)
    true
    (r.Coloring.colors_used <= 6);
  Alcotest.(check bool) "at least max-clique colors" true (r.Coloring.colors_used >= 4);
  Alcotest.(check (float 0.0001)) "coverage 100%" 1.0 (Coloring.coverage r)

let test_color_limit_and_fallback () =
  (* A clique of 6 predicates with a 4-color limit: 2 must be left to
     the hash fallback. *)
  let subj = Rdf.Term.iri "s" in
  let triples =
    List.init 6 (fun i ->
        Rdf.Triple.make subj (Rdf.Term.iri (Printf.sprintf "p%d" i)) (Rdf.Term.lit "v"))
  in
  let g = Coloring.direct_graph triples in
  let r = Coloring.color ~max_colors:4 g in
  Alcotest.(check bool) "valid" true (Coloring.valid g r);
  Alcotest.(check int) "4 covered" 4 r.Coloring.covered;
  Alcotest.(check int) "6 total" 6 r.Coloring.total_predicates;
  let pm = Coloring.to_pred_map ~m:4 r in
  List.iter
    (fun i ->
      let cands = Pred_map.candidates pm (Printf.sprintf "p%d" i) in
      Alcotest.(check bool) "has candidates" true (cands <> []);
      List.iter (fun c -> Alcotest.(check bool) "in range" true (c >= 0 && c < 4)) cands)
    [ 0; 1; 2; 3; 4; 5 ]

let test_sampling () =
  let triples = Workloads.Lubm.generate ~scale:3000 in
  let sample = Coloring.sample_triples ~fraction:0.1 triples in
  let n = List.length sample and total = List.length triples in
  Alcotest.(check bool) "about 10%" true
    (n > total / 20 && n < total / 5)

(* Property: greedy coloring is always valid and never uses more colors
   than max degree + 1. *)
let coloring_validity =
  QCheck.Test.make ~name:"greedy coloring valid, <= maxdeg+1 colors" ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 60)
            (list_size (int_range 1 6) (int_range 0 15))))
    (fun entities ->
      let subj i = Rdf.Term.iri (Printf.sprintf "e%d" i) in
      let triples =
        List.concat
          (List.mapi
             (fun i preds ->
               List.map
                 (fun p ->
                   Rdf.Triple.make (subj i)
                     (Rdf.Term.iri (Printf.sprintf "p%d" p))
                     (Rdf.Term.lit "v"))
                 preds)
             entities)
      in
      let g = Coloring.direct_graph triples in
      let r = Coloring.color g in
      let maxdeg =
        let d = ref 0 in
        for v = 0 to Coloring.n_vertices g - 1 do
          d := max !d (Coloring.degree g v)
        done;
        !d
      in
      Coloring.valid g r
      && r.Coloring.covered = r.Coloring.total_predicates
      && r.Coloring.colors_used <= maxdeg + 1)

(* Property: loading under a colored mapping never spills when the
   coloring covered everything. *)
let colored_load_no_spills =
  QCheck.Test.make ~name:"full coloring => zero spills" ~count:20
    QCheck.(make Gen.(int_range 500 2500))
    (fun scale ->
      let triples = Workloads.Lubm.generate ~scale in
      let layout = Layout.make ~dph_cols:24 ~rph_cols:24 in
      let e, dcol, rcol = Engine.create_colored ~layout triples in
      let dreport = Loader.report (Engine.loader e) Loader.Direct in
      let rreport = Loader.report (Engine.loader e) Loader.Reverse in
      (* LUBM's 18 predicates must color fully within 24 columns. *)
      Coloring.coverage dcol = 1.0
      && Coloring.coverage rcol = 1.0
      && dreport.Loader.spills = 0
      && rreport.Loader.spills = 0)

let suite =
  [ Alcotest.test_case "hash mapping range" `Quick test_hash_mapping_range;
    Alcotest.test_case "hash family composition" `Quick test_hash_family_composition;
    Alcotest.test_case "composition order" `Quick test_compose_order;
    Alcotest.test_case "Table 3 walkthrough (spill)" `Quick test_table3_walkthrough;
    Alcotest.test_case "Fig 4: interference graph" `Quick test_fig4_interference;
    Alcotest.test_case "Fig 4: coloring" `Quick test_fig4_coloring;
    Alcotest.test_case "subset coloring + hash fallback" `Quick test_color_limit_and_fallback;
    Alcotest.test_case "10% sampling" `Quick test_sampling;
    QCheck_alcotest.to_alcotest coloring_validity;
    QCheck_alcotest.to_alcotest colored_load_no_spills ]
