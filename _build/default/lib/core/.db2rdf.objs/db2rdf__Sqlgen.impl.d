lib/core/sqlgen.ml: Cost Dict_table Filter_sql Hashtbl Layout List Loader Merge Option Printf Rdf Relsql Sparql String
