lib/relsql/table.ml: Array Bytes Hashtbl List Printf Schema Value
