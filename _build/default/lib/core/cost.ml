(** Access methods and the triple-method cost function TMC
    (Definition 3.1, Section 3.1.1).

    DB2RDF has subject and object indexes only (the [entry] columns), so
    the methods are access-by-subject [Acs], access-by-object [Aco] and
    full scan [Sc] — exactly the method set M of the paper's example. *)

type access = Sc | Acs | Aco

let access_to_string = function Sc -> "sc" | Acs -> "acs" | Aco -> "aco"

(** [tmc stats dict tp m] estimates the rows touched when evaluating
    triple pattern [tp] with method [m]:
    - a constant-entry lookup costs the constant's known frequency
      (e.g. TMC(t4, aco) = 2 for ["Software"] in the running example);
    - a variable-entry lookup costs the average triples per subject
      (resp. object), assuming the variable is bound by a prior access;
    - a scan costs the total number of triples. *)
let tmc (stats : Dataset_stats.t) (dict : Rdf.Dictionary.t)
    (tp : Sparql.Ast.triple_pat) (m : access) : float =
  (* Per-predicate fan-out when the predicate is a known constant: the
     expected rows from probing by the variable entity. This is the
     "precision left to implementations" hook of Section 3.1 — it is
     what steers triangle-closing triples toward the low-fan-out side
     (probe a person's few degree edges, not a university's thousands
     of incoming ones). *)
  let pred_avg per_pred fallback =
    match tp.tp_p with
    | Sparql.Ast.Term t ->
      (match Rdf.Dictionary.find dict t with
       | Some pid -> per_pred stats pid
       | None -> 1.0 (* unknown predicate: empty *))
    | Sparql.Ast.Var _ -> fallback stats
  in
  match m with
  | Sc -> float_of_int (Dataset_stats.total stats)
  | Acs ->
    (match tp.tp_s with
     | Sparql.Ast.Term t ->
       (match Rdf.Dictionary.find dict t with
        | Some id ->
          (match Dataset_stats.subject_frequency stats id with
           | Some n -> float_of_int n
           | None -> Dataset_stats.avg_triples_per_subject stats)
        | None -> 1.0 (* unknown constant: empty result *))
     | Sparql.Ast.Var _ ->
       pred_avg Dataset_stats.avg_per_subject_of_pred
         Dataset_stats.avg_triples_per_subject)
  | Aco ->
    (match tp.tp_o with
     | Sparql.Ast.Term t ->
       (match Rdf.Dictionary.find dict t with
        | Some id ->
          (match Dataset_stats.object_frequency stats id with
           | Some n -> float_of_int n
           | None -> Dataset_stats.avg_triples_per_object stats)
        | None -> 1.0)
     | Sparql.Ast.Var _ ->
       pred_avg Dataset_stats.avg_per_object_of_pred
         Dataset_stats.avg_triples_per_object)

(** Estimated matches of a triple pattern regardless of access path —
    the selectivity estimate the bottom-up baseline translators order
    BGPs by (Stocker et al.-style). *)
let triple_selectivity (stats : Dataset_stats.t) (dict : Rdf.Dictionary.t)
    (tp : Sparql.Ast.triple_pat) : float =
  let const_freq lookup = function
    | Sparql.Ast.Term t ->
      (match Rdf.Dictionary.find dict t with
       | Some id ->
         (match lookup id with
          | Some n -> Some (float_of_int n)
          | None -> Some 1.0)
       | None -> Some 0.0)
    | Sparql.Ast.Var _ -> None
  in
  let total = float_of_int (max 1 (Dataset_stats.total stats)) in
  let s = const_freq (Dataset_stats.subject_frequency stats) tp.tp_s in
  let o = const_freq (Dataset_stats.object_frequency stats) tp.tp_o in
  let p = const_freq (Dataset_stats.predicate_frequency stats) tp.tp_p in
  let min_opt a b =
    match a, b with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  match min_opt (min_opt s o) p with Some x -> x | None -> total
