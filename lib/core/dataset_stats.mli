(** Dataset statistics [S] (Section 3.1), the input to {!Cost.tmc}:
    totals, per-constant frequencies, and per-predicate fan-outs.
    The paper keeps "top-k URIs or literals"; we keep exact counts up to
    a configurable number of distinct constants — the precision is
    explicitly left to implementations. *)

module IntTbl : Hashtbl.S with type key = int

type t

val create : ?top_k:int -> unit -> t

(** Record one triple (by dictionary ids). *)
val record : t -> s:int -> p:int -> o:int -> unit

(** Undo one {!record} (used by deletion). Distinct-entity sets behind
    the fan-out averages are not shrunk — they remain safe
    over-approximations. *)
val unrecord : t -> s:int -> p:int -> o:int -> unit

val total : t -> int
val distinct_subjects : t -> int
val distinct_objects : t -> int
val distinct_predicates : t -> int
val avg_triples_per_subject : t -> float
val avg_triples_per_object : t -> float

(** Exact frequency of a constant as subject, when tracked. *)
val subject_frequency : t -> int -> int option

val object_frequency : t -> int -> int option
val predicate_frequency : t -> int -> int option

(** Has the id ever been recorded as a subject (resp. object) of the
    predicate? Membership is never shrunk by {!unrecord}, so after
    deletes these are safe over-approximations — semi-join reductions
    built from them keep supersets of the contributing rows. *)
val subject_has_pred : t -> p:int -> s:int -> bool

val object_of_pred : t -> p:int -> o:int -> bool

(** Distinct subjects (resp. objects) ever seen under a predicate. *)
val predicate_subjects : t -> int -> int option

val predicate_objects : t -> int -> int option

(** Every predicate id with a live triple count, sorted. *)
val predicates : t -> int list

(** Average triples per subject among subjects carrying the predicate —
    the expected fan-out of an access-by-subject probe. *)
val avg_per_subject_of_pred : t -> int -> float

val avg_per_object_of_pred : t -> int -> float

(** Characteristic sets: the partition of subjects by their exact
    predicate set, as [(sorted predicate ids, subject count)] sorted by
    predicate set. Above [budget] distinct sets (default 256) the
    partition is condensed hierarchically — rarest set folded into its
    cheapest superset, or widened into its closest neighbour — which
    keeps superset-counting estimates over-approximations.
    Deterministic; memoized until the next {!record}/{!unrecord}. *)
val characteristic_sets : ?budget:int -> t -> (int array * int) array

(** Number of subjects whose characteristic set covers all of [preds] —
    the candidate-subject cardinality of a star over those predicates. *)
val cs_subject_count : ?budget:int -> t -> int list -> int
