(** E13 — morsel-driven parallel scaling: the Micro workload's
    join-heavy stars (Q1–Q6) plus three operator-targeted queries (full
    scan, global sort, grouped aggregation) measured at executor-domain
    counts doubling from 1 up to [--domains] (default 4), on one shared
    store so only the parallelism knob varies.

    With [--json-dir] the experiment writes BENCH_parallel.json: the
    full per-domain-count measurement curve, per-query speedups against
    the 1-domain run, their geometric mean, and the host's available
    core count — scaling is physically bounded by the latter, so the
    JSON records it next to every speedup it reports. *)

let join_heavy = [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5"; "Q6" ]

(** Operator-targeted queries: the star queries stress the (sequential)
    index-nested-loop side of the executor, these three hit the morsel
    paths — fused scan, parallel sort + merge, partial-aggregate
    merge. *)
let operator_queries =
  [ ("SCAN", "SELECT ?s ?o WHERE { ?s ?p ?o }");
    ("SORT", "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s");
    ("AGG",
     "SELECT ?p (COUNT(?o) AS ?n) (MIN(?o) AS ?lo) WHERE { ?s ?p ?o } \
      GROUP BY ?p") ]

let queries () =
  List.filter (fun (n, _) -> List.mem n join_heavy) Workloads.Micro.queries
  @ operator_queries

(** Domain counts doubling from 1 up to [top] (always including 1). *)
let curve top =
  let rec up d = if d >= top then [ top ] else d :: up (2 * d) in
  List.sort_uniq compare (up 1)

let geomean = function
  | [] -> None
  | xs ->
    Some
      (exp
         (List.fold_left (fun a x -> a +. log x) 0.0 xs
          /. float_of_int (List.length xs)))

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E13. Parallel scaling (morsel-driven executor) — %d triples"
       cfg.Harness.scale);
  let cores = Domain.recommended_domain_count () in
  let top = max 1 cfg.Harness.domains in
  let counts = curve top in
  Printf.printf "host reports %d available core(s); domain curve: %s\n%!" cores
    (String.concat " " (List.map string_of_int counts));
  let triples = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  (* One shared engine; only the database's parallelism knob changes
     between sweeps, so every domain count sees identical data, plans
     and caches. *)
  let (engine, _, _), load_seconds =
    Harness.timed (fun () ->
        Db2rdf.Engine.create_colored
          ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples)
  in
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader engine) in
  let qs =
    List.map (fun (n, src) -> (n, Sparql.Parser.parse src)) (queries ())
  in
  let sweep d : (string * Harness.measurement) list =
    Relsql.Database.set_parallelism db d;
    let sys =
      { Harness.sys_name = Printf.sprintf "%d-domain" d;
        store = Db2rdf.Engine.to_store engine; load_seconds }
    in
    List.map (fun (qname, q) -> (qname, Harness.measure cfg sys qname q)) qs
  in
  let results = List.map (fun d -> (d, sweep d)) counts in
  Relsql.Database.set_parallelism db 1;
  let base =
    match results with
    | (1, ms) :: _ -> ms
    | _ -> assert false
  in
  let speedup_at d qname =
    match (List.assoc_opt qname base, List.assoc_opt d results) with
    | Some b, Some ms ->
      (match (b.Harness.m_outcome, List.assoc_opt qname ms) with
       | `Complete _, Some m when m.Harness.m_outcome <> `Timeout
                                  && m.Harness.m_seconds > 0.0 ->
         Some (b.Harness.m_seconds /. m.Harness.m_seconds)
       | _ -> None)
    | _ -> None
  in
  let rows =
    List.map
      (fun (qname, _) ->
        qname
        :: List.map
             (fun (_, ms) ->
               Harness.outcome_cell (List.assoc qname ms))
             results
        @ [ (match speedup_at top qname with
             | Some s -> Printf.sprintf "%.2fx" s
             | None -> "-") ])
      qs
  in
  Harness.subsection
    (Printf.sprintf "Micro queries by executor domains (ms; speedup at %d)" top);
  Harness.print_table
    ("Query"
     :: List.map (fun (d, _) -> Printf.sprintf "%dd" d) results
     @ [ Printf.sprintf "x@%d" top ])
    rows;
  let gm =
    geomean (List.filter_map (fun (qname, _) -> speedup_at top qname) qs)
  in
  (match gm with
   | Some g ->
     Printf.printf
       "\ngeomean speedup at %d domains: %.2fx (host has %d core(s) — \
        speedup > 1 requires real cores)\n%!"
       top g cores
   | None -> Printf.printf "\ngeomean speedup: n/a\n%!");
  Harness.write_json cfg ~file:"BENCH_parallel.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "parallel-scaling");
         ("workload", Harness.J_str "micro");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("runs", Harness.J_int cfg.Harness.runs);
         ("host_cores", Harness.J_int cores);
         ( "note",
           Harness.J_str
             (Printf.sprintf
                "domain counts share one store; speedups are bounded by \
                 the %d core(s) of this host — on a single-core host the \
                 curve measures parallel overhead, not speedup" cores) );
         ( "curve",
           Harness.J_list
             (List.map
                (fun (d, ms) ->
                  Harness.J_obj
                    [ ("domains", Harness.J_int d);
                      ( "measurements",
                        Harness.J_list
                          (List.map
                             (fun (qname, m) ->
                               Harness.J_obj
                                 [ ("query", Harness.J_str qname);
                                   ( "m",
                                     Harness.measurement_json m ) ])
                             ms) ) ])
                results) );
         ( "speedup_vs_1_domain",
           Harness.J_obj
             (List.filter_map
                (fun (qname, _) ->
                  Option.map
                    (fun s -> (qname, Harness.J_float s))
                    (speedup_at top qname))
                qs) );
         ( "geomean_speedup",
           match gm with
           | Some g -> Harness.J_float g
           | None -> Harness.J_str "n/a" ) ])
