(** The Section 2.1 micro-benchmark: predicate sets of Table 1, star
    queries Q1–Q10 of Table 2.

    Subjects fall into six groups; each group instantiates a fixed
    predicate set. [SV1..SV8] are single-valued, [MV1..MV4] multi-valued
    (each MV predicate holds [mv_values] objects per subject). Group
    triple-shares follow Table 1: the {SV1–SV4, MV1–MV4} group and the
    {SV5–SV8} group each hold 1% of the triples, so a star over all four
    SVs (or any SV5–SV8 star) is highly selective while each predicate
    alone is not. *)

let sv i = "http://microbench.org/SV" ^ string_of_int i
let mv i = "http://microbench.org/MV" ^ string_of_int i
let subj g i = Rdf.Term.iri (Printf.sprintf "http://microbench.org/s/g%d/e%d" g i)

(** Shared low-cardinality object domain: single predicates are
    unselective. *)
let obj r rng = Rdf.Term.lit (Printf.sprintf "o%d" (Dist.int rng r))

let mv_values = 2

(** (single-valued predicates, multi-valued predicates, triple share) —
    Table 1 rows. *)
let groups =
  [ ([ 1; 2; 3; 4 ], [ 1; 2; 3; 4 ], 0.01);
    ([ 1; 2; 3 ], [ 1; 2; 3 ], 0.24);
    ([ 1; 3; 4 ], [ 1; 3; 4 ], 0.25);
    ([ 2; 3; 4 ], [ 2; 3; 4 ], 0.25);
    ([ 1; 2; 4 ], [ 1; 2; 4 ], 0.24);
    ([ 5; 6; 7; 8 ], [], 0.01) ]

(** Generate roughly [scale] triples. *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 42 in
  let triples = ref [] in
  List.iteri
    (fun gi (svs, mvs, share) ->
      let per_subject = List.length svs + (List.length mvs * mv_values) in
      let n_subjects =
        max 1 (int_of_float (share *. float_of_int scale) / per_subject)
      in
      for i = 0 to n_subjects - 1 do
        let s = subj gi i in
        List.iter
          (fun p ->
            triples :=
              Rdf.Triple.make s (Rdf.Term.iri (sv p)) (obj 50 rng) :: !triples)
          svs;
        List.iter
          (fun p ->
            for v = 0 to mv_values - 1 do
              ignore v;
              triples :=
                Rdf.Triple.make s (Rdf.Term.iri (mv p)) (obj 200 rng) :: !triples
            done)
          mvs
      done)
    groups;
  List.rev !triples

(** The star queries of Table 2. *)
let star_query preds =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ?s WHERE { ";
  List.iteri
    (fun i p -> Buffer.add_string buf (Printf.sprintf "?s <%s> ?o%d . " p i))
    preds;
  Buffer.add_string buf "}";
  Buffer.contents buf

let queries : (string * string) list =
  [ ("Q1", star_query [ sv 1; sv 2; sv 3; sv 4 ]);
    ("Q2", star_query [ mv 1; mv 2; mv 3; mv 4 ]);
    ("Q3", star_query [ sv 1; mv 1; mv 2; mv 3; mv 4 ]);
    ("Q4", star_query [ sv 1; sv 2; mv 1; mv 2; mv 3; mv 4 ]);
    ("Q5", star_query [ sv 1; sv 2; sv 3; mv 1; mv 2; mv 3; mv 4 ]);
    ("Q6", star_query [ sv 1; sv 2; sv 3; sv 4; mv 1; mv 2; mv 3; mv 4 ]);
    ("Q7", star_query [ sv 5 ]);
    ("Q8", star_query [ sv 5; sv 6 ]);
    ("Q9", star_query [ sv 5; sv 6; sv 7 ]);
    ("Q10", star_query [ sv 5; sv 6; sv 7; sv 8 ]) ]

(** The Section 3.3 flow experiment: two constants with frequencies
    roughly .75 and .01, and the two-triple query of Figure 14(a). The
    extra triples are attached to group-1 subjects (which have SV1 and
    SV2). *)
let flow_experiment_data ~scale : Rdf.Triple.t list =
  let rng = Dist.create 43 in
  let triples = ref [] in
  let p1 = "http://microbench.org/FP1" and p2 = "http://microbench.org/FP2" in
  let o1 = Rdf.Term.lit "O1" and o2 = Rdf.Term.lit "O2" in
  let n = max 1 (scale / 2) in
  for i = 0 to n - 1 do
    let s = Rdf.Term.iri (Printf.sprintf "http://microbench.org/f/e%d" i) in
    (* ~75% of subjects carry (p1, O1); ~1% carry (p2, O2). *)
    if Dist.bool rng 0.75 then
      triples := Rdf.Triple.make s (Rdf.Term.iri p1) o1 :: !triples
    else triples := Rdf.Triple.make s (Rdf.Term.iri p1) (obj 100 rng) :: !triples;
    if Dist.bool rng 0.01 then
      triples := Rdf.Triple.make s (Rdf.Term.iri p2) o2 :: !triples
    else triples := Rdf.Triple.make s (Rdf.Term.iri p2) (obj 100 rng) :: !triples
  done;
  List.rev !triples

let flow_query =
  {|SELECT ?s WHERE { ?s <http://microbench.org/FP1> "O1" . ?s <http://microbench.org/FP2> "O2" }|}
