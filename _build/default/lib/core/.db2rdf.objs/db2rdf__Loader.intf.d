lib/core/loader.mli: Dataset_stats Layout Pred_map Rdf Relsql
