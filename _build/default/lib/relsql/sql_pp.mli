(** SQL pretty-printer. Produces text that {!Sql_parser.parse}
    round-trips (property-tested), and the human-readable SQL shown by
    [explain] (compare Figure 13 of the paper). *)

val expr_to_string : Sql_ast.expr -> string
val query_to_string : Sql_ast.query -> string

(** One-line rendering of a full statement. *)
val to_string : Sql_ast.stmt -> string

(** Multi-line rendering for explain output: each CTE on its own line. *)
val to_pretty_string : Sql_ast.stmt -> string
