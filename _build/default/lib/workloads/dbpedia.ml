(** DBpedia-like workload: encyclopedic data with a very large predicate
    vocabulary and power-law in/out-degree distributions (Duan et al.'s
    observation, quoted in Section 2.3). This is the dataset that is
    *not* fully colorable — it exercises subset coloring composed with
    hashing, and spills.

    Entities belong to zipf-popular "types"; each type has a core
    predicate set plus a long tail of rare infobox predicates sampled
    from a vocabulary that scales with the dataset. The query set DQ1 –
    DQ20 mirrors the DBpedia SPARQL benchmark's template classes:
    entity lookups, type+property selections, stars with FILTER,
    UNION templates and OPTIONAL enrichment. *)

let ns = "http://dbpedia.org/"
let prop i = Printf.sprintf "%sproperty/p%d" ns i
let core_prop name = ns ^ "ontology/" ^ name
let entity i = Rdf.Term.iri (Printf.sprintf "%sresource/E%d" ns i)
let type_iri i = Rdf.Term.iri (Printf.sprintf "%sontology/Type%d" ns i)

type counters = { mutable triples : int; mutable acc : Rdf.Triple.t list }

let add c s p o =
  c.acc <- Rdf.Triple.make s (Rdf.Term.iri p) o :: c.acc;
  c.triples <- c.triples + 1

let n_types = 40

(** Generate roughly [scale] triples with a predicate vocabulary of
    about [scale/200] rare predicates (so a 100k-triple dataset has
    ~500 predicates — far more than fit in one relation row). *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 23 in
  let c = { triples = 0; acc = [] } in
  let n_props = max 60 (scale / 200) in
  let prop_zipf = Dist.zipf ~n:n_props ~s:1.05 in
  let type_zipf = Dist.zipf ~n:n_types ~s:1.2 in
  let ei = ref 0 in
  while c.triples < scale do
    let i = !ei in
    incr ei;
    let e = entity i in
    let ty = Dist.zipf_sample rng type_zipf in
    add c e (core_prop "type") (type_iri ty);
    add c e (core_prop "label") (Rdf.Term.lit (Printf.sprintf "Entity %d" i));
    if Dist.bool rng 0.6 then
      add c e (core_prop "abstract")
        (Rdf.Term.lit (Printf.sprintf "Abstract text for entity %d" i));
    (* Links to other entities: power-law out-degree. *)
    let n_links = 1 + Dist.int rng 6 in
    for _ = 1 to n_links do
      let target = Dist.int rng (max 1 !ei) in
      add c e (core_prop "related") (entity target)
    done;
    if Dist.bool rng 0.3 then
      add c e (core_prop "birthPlace") (entity (Dist.int rng (max 1 !ei)));
    if Dist.bool rng 0.3 then
      add c e (core_prop "location") (entity (Dist.int rng (max 1 !ei)));
    (* Long-tail infobox properties: type-correlated (offset by type so
       different types use different tail slices — this is what makes
       the interference graph huge but colorable in its frequent
       core). *)
    let n_tail = Dist.int rng 8 in
    for _ = 1 to n_tail do
      let p = (Dist.zipf_sample rng prop_zipf + (ty * 7)) mod n_props in
      add c e (prop p) (Rdf.Term.lit (Printf.sprintf "v%d" (Dist.int rng 1000)))
    done;
    (* A sprinkle of numeric facts for FILTER queries. *)
    if Dist.bool rng 0.5 then
      add c e (core_prop "populationTotal") (Rdf.Term.int_lit (Dist.int rng 1_000_000))
  done;
  List.rev c.acc

(* ------------------------------------------------------------------ *)
(* Queries DQ1–DQ20 (template style)                                   *)
(* ------------------------------------------------------------------ *)

let queries : (string * string) list =
  let t = core_prop "type" in
  let label = core_prop "label" in
  let abstract = core_prop "abstract" in
  let related = core_prop "related" in
  let birth = core_prop "birthPlace" in
  let loc = core_prop "location" in
  let popn = core_prop "populationTotal" in
  let ty0 = Printf.sprintf "%sontology/Type0" ns in
  let ty1 = Printf.sprintf "%sontology/Type1" ns in
  let e n = Printf.sprintf "%sresource/E%d" ns n in
  [ ("DQ1", Printf.sprintf "SELECT ?p ?o WHERE { <%s> ?p ?o }" (e 5));
    ("DQ2", Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%s> }" t ty0);
    ( "DQ3",
      Printf.sprintf "SELECT ?x ?l WHERE { ?x <%s> <%s> . ?x <%s> ?l }" t ty0 label );
    ( "DQ4",
      Printf.sprintf
        "SELECT ?x ?a WHERE { ?x <%s> <%s> . ?x <%s> ?a . ?x <%s> ?n FILTER (?n > 500000) }"
        t ty0 abstract popn );
    ("DQ5", Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%s> }" related (e 3));
    ( "DQ6",
      Printf.sprintf "SELECT ?x ?y WHERE { ?x <%s> ?y . ?y <%s> <%s> }" related t ty1 );
    ( "DQ7",
      Printf.sprintf
        "SELECT ?x ?l WHERE { { ?x <%s> <%s> } UNION { ?x <%s> <%s> } . ?x <%s> ?l }"
        t ty0 t ty1 label );
    ( "DQ8",
      Printf.sprintf
        "SELECT ?x ?b WHERE { ?x <%s> <%s> OPTIONAL { ?x <%s> ?b } }" t ty1 birth );
    ( "DQ9",
      Printf.sprintf
        "SELECT ?x WHERE { ?x <%s> ?l FILTER REGEX(?l, \"Entity 12\") }" label );
    ("DQ10", Printf.sprintf "SELECT ?s ?p WHERE { ?s ?p <%s> }" (e 7));
    ( "DQ11",
      Printf.sprintf
        "SELECT ?x ?y ?z WHERE { ?x <%s> ?y . ?y <%s> ?z . ?z <%s> <%s> }" related
        related t ty0 );
    ( "DQ12",
      Printf.sprintf
        "SELECT ?x ?n WHERE { ?x <%s> ?n FILTER (?n >= 100000) FILTER (?n <= 200000) }"
        popn );
    ( "DQ13",
      Printf.sprintf
        "SELECT ?x ?l ?a WHERE { ?x <%s> <%s> . ?x <%s> ?l OPTIONAL { ?x <%s> ?a } } LIMIT 50"
        t ty0 label abstract );
    ( "DQ14",
      Printf.sprintf
        "SELECT DISTINCT ?ty WHERE { ?x <%s> <%s> . ?x <%s> ?ty }" related (e 11) t );
    ( "DQ15",
      Printf.sprintf
        "SELECT ?x WHERE { ?x <%s> ?b . ?b <%s> <%s> }" birth t ty0 );
    ( "DQ16",
      Printf.sprintf
        "SELECT ?x ?y WHERE { ?x <%s> ?y . ?x <%s> <%s> . ?y <%s> <%s> }" related t
        ty0 t ty0 );
    ( "DQ17",
      Printf.sprintf
        "SELECT ?x ?l WHERE { { ?x <%s> ?l } UNION { ?x <%s> ?l } }" label abstract );
    ( "DQ18",
      Printf.sprintf
        "SELECT ?x WHERE { ?x <%s> <%s> . ?x <%s> ?y . ?y <%s> ?z . ?z <%s> <%s> }"
        t ty1 loc related t ty0 );
    ( "DQ19",
      Printf.sprintf
        "SELECT ?x ?n WHERE { ?x <%s> <%s> . ?x <%s> ?n } ORDER BY ?n LIMIT 20" t
        ty0 popn );
    ( "DQ20",
      Printf.sprintf
        "SELECT ?p ?o WHERE { { <%s> ?p ?o } UNION { <%s> ?p ?o } }" (e 20) (e 21) ) ]
