(** A fixed pool of OCaml 5 worker domains running morsel jobs.

    The executor's parallel operators split their input into row-range
    morsels and hand the pool one job per operator invocation: a morsel
    count and a body closure. Workers (plus the submitting domain, which
    participates rather than blocking) claim morsel indices off a shared
    atomic counter until the job is drained — the work-stealing-free
    heart of morsel-driven parallelism (Leis et al., SIGMOD 2014): load
    balance comes from morsels being small relative to the input, not
    from a scheduler.

    Guarantees:
    - {b Exception propagation}: the first exception raised by any
      participant aborts the job (remaining morsels are skipped) and is
      re-raised, with its backtrace, in the submitting domain.
    - {b Nested / concurrent use}: a [run] issued from inside a worker,
      or while another job is in flight on the same pool, degrades to
      inline sequential execution instead of deadlocking.
    - {b Reuse}: pools are long-lived and shared across queries via
      {!get}; worker domains are spawned once, not per query.

    A pool of size [n] owns [n - 1] domains; size 1 spawns nothing and
    [run] is a plain sequential loop. *)

type job = {
  fn : worker:int -> int -> unit;  (** body, called once per morsel *)
  morsels : int;
  next : int Atomic.t;  (** next unclaimed morsel index *)
  abort : bool Atomic.t;  (** set by the first failing participant *)
  enter : int Atomic.t;  (** participant-id dispenser *)
  jmu : Mutex.t;  (** guards [active] / [exn] *)
  jcv : Condition.t;  (** signalled when [active] drops to 0 *)
  mutable active : int;  (** participants currently inside the job *)
  mutable exn : (exn * Printexc.raw_backtrace) option;
}

type t = {
  size : int;  (** parallelism, including the submitting domain *)
  mutable domains : unit Domain.t array;
  mu : Mutex.t;
  cv : Condition.t;  (** job arrival / shutdown *)
  mutable current : (int * job) option;  (** (job id, job) being offered *)
  mutable job_ids : int;
  mutable stop : bool;
  run_lock : Mutex.t;  (** one job at a time; contention → inline *)
}

(* Set in every worker domain so nested [run] calls fall back to inline
   execution instead of waiting on a pool they are part of. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Claim morsels until the job is drained or aborted. Each participant
   draws a unique worker id in [0, size) for the job, letting operator
   code keep per-worker partial state (e.g. aggregation tables). *)
let participate (j : job) =
  let w = Atomic.fetch_and_add j.enter 1 in
  Mutex.lock j.jmu;
  j.active <- j.active + 1;
  Mutex.unlock j.jmu;
  (try
     let continue = ref true in
     while !continue && not (Atomic.get j.abort) do
       let i = Atomic.fetch_and_add j.next 1 in
       if i >= j.morsels then continue := false else j.fn ~worker:w i
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     Atomic.set j.abort true;
     Mutex.lock j.jmu;
     if j.exn = None then j.exn <- Some (e, bt);
     Mutex.unlock j.jmu);
  Mutex.lock j.jmu;
  j.active <- j.active - 1;
  if j.active = 0 then Condition.broadcast j.jcv;
  Mutex.unlock j.jmu

let worker_loop t () =
  Domain.DLS.set in_worker true;
  let last_seen = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    let rec await () =
      if t.stop then None
      else
        match t.current with
        | Some (id, j) when id <> !last_seen ->
          last_seen := id;
          Some j
        | _ ->
          Condition.wait t.cv t.mu;
          await ()
    in
    let j = await () in
    Mutex.unlock t.mu;
    match j with
    | None -> ()
    | Some j ->
      participate j;
      loop ()
  in
  loop ()

let create size =
  let size = max 1 size in
  let t =
    { size; domains = [||]; mu = Mutex.create (); cv = Condition.create ();
      current = None; job_ids = 0; stop = false; run_lock = Mutex.create () }
  in
  if size > 1 then
    t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

let size t = t.size

(** Stop and join the worker domains. The pool must not be used again. *)
let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let seq_run morsels fn =
  for i = 0 to morsels - 1 do
    fn ~worker:0 i
  done;
  1

(** [run t ~morsels fn] executes [fn ~worker i] once for every
    [i < morsels], spread over the pool's domains, and returns the
    number of participants (1 when it ran inline). Blocks until every
    claimed morsel has finished; the first exception any morsel raised
    is then re-raised here. Morsel bodies run concurrently: they must
    only share read-only state (or state partitioned by [worker], which
    is unique per participant within one job). *)
let run t ~morsels (fn : worker:int -> int -> unit) : int =
  if morsels <= 0 then 0
  else if
    t.size <= 1 || morsels = 1
    || Domain.DLS.get in_worker
    || not (Mutex.try_lock t.run_lock)
  then seq_run morsels fn
  else begin
    let j =
      { fn; morsels; next = Atomic.make 0; abort = Atomic.make false;
        enter = Atomic.make 0; jmu = Mutex.create ();
        jcv = Condition.create (); active = 0; exn = None }
    in
    Mutex.lock t.mu;
    t.job_ids <- t.job_ids + 1;
    t.current <- Some (t.job_ids, j);
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    participate j;
    (* Wait for workers that joined the job and are still draining it.
       A worker waking after this point finds the counter exhausted and
       exits without touching anything. *)
    Mutex.lock j.jmu;
    while j.active > 0 do
      Condition.wait j.jcv j.jmu
    done;
    Mutex.unlock j.jmu;
    Mutex.lock t.mu;
    t.current <- None;
    Mutex.unlock t.mu;
    let participants = min (Atomic.get j.enter) t.size in
    Mutex.unlock t.run_lock;
    match j.exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> participants
  end

(* ------------------------------------------------------------------ *)
(* Range morsels                                                       *)
(* ------------------------------------------------------------------ *)

(** Split [0, n) into contiguous [(lo, hi)] ranges sized for the pool:
    at most [8 * size t] morsels (a few per domain, so atomic claiming
    balances load) of at least [min_per_morsel] items each — except
    that tiny inputs still split down to single-item morsels, which the
    bulk loader's tests lean on to exercise many-delta merges. *)
let ranges t ~n ?(min_per_morsel = 1) () =
  if n <= 0 then [||]
  else begin
    let cap = 8 * t.size in
    let morsels = max 1 (min cap (n / max 1 min_per_morsel)) in
    let per = (n + morsels - 1) / morsels in
    let morsels = (n + per - 1) / per in
    Array.init morsels (fun i -> (i * per, min n ((i + 1) * per)))
  end

(** [run_ranges t ~n fn] covers [0, n) with {!ranges} and calls
    [fn ~worker ~lo ~hi] once per range on the pool. Returns the number
    of participants. *)
let run_ranges t ~n ?min_per_morsel (fn : worker:int -> lo:int -> hi:int -> unit) =
  let rs = ranges t ~n ?min_per_morsel () in
  run t ~morsels:(Array.length rs) (fun ~worker i ->
      let lo, hi = rs.(i) in
      fn ~worker ~lo ~hi)

(* ------------------------------------------------------------------ *)
(* Two-phase radix partitioning (histogram / scatter)                  *)
(* ------------------------------------------------------------------ *)

(** [partition t ~n ~parts ~part_of] splits the items [0, n) into
    [parts] buckets by [part_of] (a pure, domain-safe function; a
    negative result drops the item) and returns [(starts, perm)]:
    [perm] lists the kept item indices bucket by bucket, and bucket [p]
    occupies [perm.(starts.(p)) .. perm.(starts.(p + 1) - 1)].

    The classic two-phase radix shape (Balkesen et al., ICDE 2013),
    morselized: phase one has each participant histogram the contiguous
    ranges it claims into a per-range count matrix; a sequential prefix
    sum then assigns every (range, bucket) pair its exact destination
    slice; phase two scatters items into [perm] with no atomics and no
    overlap. Because ranges are contiguous and the prefix sum walks
    them in order, items within a bucket appear in ascending index
    order — the output is deterministic and independent of how workers
    claimed the morsels. *)
let partition t ~n ~parts ~(part_of : int -> int) : int array * int array =
  let rs = ranges t ~n ~min_per_morsel:256 () in
  let m = Array.length rs in
  (* counts.(r) is range r's histogram over the buckets. *)
  let counts = Array.init m (fun _ -> Array.make parts 0) in
  ignore
    (run t ~morsels:m (fun ~worker:_ r ->
         let lo, hi = rs.(r) in
         let c = counts.(r) in
         for i = lo to hi - 1 do
           let p = part_of i in
           if p >= 0 then c.(p) <- c.(p) + 1
         done));
  (* Prefix sums: bucket starts, then per-(range, bucket) cursors laid
     out so range r's slice of bucket p precedes range r+1's. *)
  let starts = Array.make (parts + 1) 0 in
  for p = 0 to parts - 1 do
    let total = ref 0 in
    for r = 0 to m - 1 do
      total := !total + counts.(r).(p)
    done;
    starts.(p + 1) <- starts.(p) + !total
  done;
  let offsets = Array.init m (fun _ -> Array.make parts 0) in
  for p = 0 to parts - 1 do
    let cursor = ref starts.(p) in
    for r = 0 to m - 1 do
      offsets.(r).(p) <- !cursor;
      cursor := !cursor + counts.(r).(p)
    done
  done;
  let perm = Array.make starts.(parts) 0 in
  ignore
    (run t ~morsels:m (fun ~worker:_ r ->
         let lo, hi = rs.(r) in
         let cursors = offsets.(r) in
         for i = lo to hi - 1 do
           let p = part_of i in
           if p >= 0 then begin
             perm.(cursors.(p)) <- i;
             cursors.(p) <- cursors.(p) + 1
           end
         done));
  (starts, perm)

(* ------------------------------------------------------------------ *)
(* Shared pools                                                        *)
(* ------------------------------------------------------------------ *)

(* One pool per requested size, created lazily and kept for the life of
   the process: queries come and go, domains are expensive to spawn. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mu = Mutex.create ()

(** The shared pool of the given size (total parallelism including the
    caller), creating it on first request. *)
let get n =
  let n = max 1 n in
  Mutex.lock pools_mu;
  let p =
    match Hashtbl.find_opt pools n with
    | Some p -> p
    | None ->
      let p = create n in
      Hashtbl.add pools n p;
      p
  in
  Mutex.unlock pools_mu;
  p
