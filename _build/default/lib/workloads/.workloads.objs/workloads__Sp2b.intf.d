lib/workloads/sp2b.mli: Rdf
