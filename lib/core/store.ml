(** The store interface every system in the benchmark implements:
    DB2RDF, the triple-store and predicate-oriented baselines, and the
    native reference engine. Query answers use the reference evaluator's
    result type so cross-store comparison is direct. *)

type t = {
  name : string;
  load : Rdf.Triple.t list -> unit;
  delete : Rdf.Triple.t list -> unit;
  query : ?timeout:float -> Sparql.Ast.query -> Sparql.Ref_eval.results;
      (** May raise {!Relsql.Executor.Timeout} or
          {!Filter_sql.Unsupported}. *)
  analyze :
    ?timeout:float ->
    Sparql.Ast.query ->
    Sparql.Ref_eval.results * Relsql.Opstats.t option;
      (** Like [query], but also returns the per-operator execution
          metrics tree ([None] for stores that do not execute through
          the relational engine). *)
  explain : Sparql.Ast.query -> string;
  update : Sparql.Ast.update -> unit;
      (** Apply a SPARQL UPDATE. [DELETE WHERE] matches against the
          pre-update state. *)
}

(** Build a store's [update] from its own query/insert/delete
    primitives. The DATA forms go straight through; [DELETE WHERE]
    evaluates a SELECT over the template's variables {e through the
    store's own query path} — so the differential fuzzer exercises each
    backend's translation pipeline on the WHERE side too — then
    instantiates the template under every solution and deletes the
    resulting ground triples. A ground template (no variables) becomes
    a count-star existence probe, since a zero-variable SELECT has no
    relational projection. *)
let update_via
    ~(query : ?timeout:float -> Sparql.Ast.query -> Sparql.Ref_eval.results)
    ~insert ~delete (u : Sparql.Ast.update) : unit =
  match u with
  | Sparql.Ast.Insert_data ts -> insert ts
  | Sparql.Ast.Delete_data ts -> delete ts
  | Sparql.Ast.Delete_where tps ->
    let vars =
      List.sort_uniq compare
        (List.concat_map Sparql.Ast.triple_pat_vars tps)
    in
    if vars = [] then begin
      let probe =
        Sparql.Ast.select
          ~aggregates:
            [ { Sparql.Ast.agg_fn = Ag_count; agg_arg = None;
                agg_distinct = false; agg_alias = "n" } ]
          (Sparql.Ast.Select_vars []) (Sparql.Ast.Bgp tps)
      in
      let r : Sparql.Ref_eval.results = query probe in
      let present =
        match r.Sparql.Ref_eval.rows with
        | [ [ Some term ] ] ->
          (match Rdf.Term.as_number term with
           | Some n -> n > 0.0
           | None -> false)
        | _ -> false
      in
      if present then
        delete
          (List.filter_map
             (fun (tp : Sparql.Ast.triple_pat) ->
               match (tp.tp_s, tp.tp_p, tp.tp_o) with
               | Term s, Term p, Term o -> Some (Rdf.Triple.make s p o)
               | _ -> None)
             tps)
    end
    else begin
      let q =
        Sparql.Ast.select (Sparql.Ast.Select_vars vars) (Sparql.Ast.Bgp tps)
      in
      let r : Sparql.Ref_eval.results = query q in
      let doomed =
        List.concat_map
          (fun row ->
            let env = List.combine r.Sparql.Ref_eval.vars row in
            let resolve = function
              | Sparql.Ast.Term t -> Some t
              | Sparql.Ast.Var v -> Option.join (List.assoc_opt v env)
            in
            List.filter_map
              (fun (tp : Sparql.Ast.triple_pat) ->
                match (resolve tp.tp_s, resolve tp.tp_p, resolve tp.tp_o) with
                | Some s, Some p, Some o -> Some (Rdf.Triple.make s p o)
                | _ -> None)
              tps)
          r.Sparql.Ref_eval.rows
      in
      delete doomed
    end

(** Outcome classification, mirroring Figure 15's categories. [Error]
    means the store answered with the wrong number of results (detected
    against an oracle count by the harness); here it covers runtime
    failures. *)
type outcome =
  | Complete of Sparql.Ref_eval.results
  | Timed_out
  | Unsupported of string
  | Failed of string

(** Run a query, classifying the outcome and measuring wall-clock
    seconds. *)
let run ?timeout (store : t) (q : Sparql.Ast.query) : outcome * float =
  let t0 = Unix.gettimeofday () in
  let outcome =
    try Complete (store.query ?timeout q) with
    | Relsql.Executor.Timeout | Sparql.Ref_eval.Timeout -> Timed_out
    | Filter_sql.Unsupported msg -> Unsupported msg
    | Sparql.Parser.Parse_error msg -> Unsupported msg
    | Failure msg -> Failed msg
    | Invalid_argument msg -> Failed msg
  in
  (outcome, Unix.gettimeofday () -. t0)

let outcome_to_string = function
  | Complete r -> Printf.sprintf "complete (%d rows)" (List.length r.Sparql.Ref_eval.rows)
  | Timed_out -> "timeout"
  | Unsupported m -> "unsupported: " ^ m
  | Failed m -> "error: " ^ m
