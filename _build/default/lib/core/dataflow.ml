(** The Data Flow Builder (Section 3.1.1): produced/required variables
    (Definitions 3.2/3.3), the data flow graph (Definition 3.8) and the
    greedy optimal flow tree (Figure 9).

    Nodes are (triple, access-method) pairs plus a distinguished root.
    An edge [(t,m) -> (t',m')] means evaluating [t] with [m] binds every
    variable [t'] requires under [m'], and is suppressed when the two
    triples are OR-connected or when the source is OPTIONAL-guarded with
    respect to the target (bindings may not flow out of an OPTIONAL into
    its mandatory context). *)

module VarSet = Sparql.Ast.VarSet

type node = { triple : int; meth : Cost.access }

type edge = {
  src : node option;  (** [None] is the root *)
  dst : node;
  weight : float;
}

type graph = {
  nodes : node list;
  edges : edge list;  (** sorted by ascending weight *)
}

(** Variables required to be bound before a (triple, method) access
    (Definition 3.3). *)
let required (tp : Sparql.Ast.triple_pat) (m : Cost.access) : VarSet.t =
  match m with
  | Cost.Sc -> VarSet.empty
  | Cost.Acs ->
    (match tp.tp_s with
     | Sparql.Ast.Var v -> VarSet.singleton v
     | Sparql.Ast.Term _ -> VarSet.empty)
  | Cost.Aco ->
    (match tp.tp_o with
     | Sparql.Ast.Var v -> VarSet.singleton v
     | Sparql.Ast.Term _ -> VarSet.empty)

(** Variables bound after the access (Definition 3.2): the pattern's
    variables minus the ones the access consumed. *)
let produced (tp : Sparql.Ast.triple_pat) (m : Cost.access) : VarSet.t =
  VarSet.diff
    (VarSet.of_list (Sparql.Ast.triple_pat_vars tp))
    (required tp m)

let all_methods = [ Cost.Sc; Cost.Acs; Cost.Aco ]

(** Build the weighted data flow graph for a parse tree. The edge weight
    is the cost of the target node (the simple weight function the paper
    describes). *)
let build (pt : Sparql.Pattern_tree.t) (stats : Dataset_stats.t)
    (dict : Rdf.Dictionary.t) : graph =
  let n = Sparql.Pattern_tree.n_triples pt in
  let pat i = (Sparql.Pattern_tree.triple pt i).Sparql.Pattern_tree.pat in
  let nodes =
    List.concat_map
      (fun i -> List.map (fun m -> { triple = i; meth = m }) all_methods)
      (List.init n (fun i -> i))
  in
  let cost nd = Cost.tmc stats dict (pat nd.triple) nd.meth in
  let edges = ref [] in
  List.iter
    (fun dst ->
      let r = required (pat dst.triple) dst.meth in
      if VarSet.is_empty r then
        edges := { src = None; dst; weight = cost dst } :: !edges
      else
        List.iter
          (fun src ->
            if src.triple <> dst.triple then begin
              let p = produced (pat src.triple) src.meth in
              if
                VarSet.subset r p
                && (not (Sparql.Pattern_tree.or_connected pt src.triple dst.triple))
                && not (Sparql.Pattern_tree.opt_connected pt dst.triple src.triple)
              then edges := { src = Some src; dst; weight = cost dst } :: !edges
            end)
          nodes)
    nodes;
  let edges =
    List.sort
      (fun a b ->
        let c = compare a.weight b.weight in
        if c <> 0 then c
        else
          compare
            (a.dst.triple, a.dst.meth, Option.map (fun n -> (n.triple, n.meth)) a.src)
            (b.dst.triple, b.dst.meth, Option.map (fun n -> (n.triple, n.meth)) b.src))
      !edges
  in
  { nodes; edges }

(* ------------------------------------------------------------------ *)
(* Optimal flow tree                                                   *)
(* ------------------------------------------------------------------ *)

type flow = {
  order : node list;  (** nodes in insertion order, one per triple *)
  method_of : Cost.access array;  (** triple -> chosen method *)
  pos_of : int array;  (** triple -> insertion position *)
  parent_of : node option array;  (** triple -> flow parent node *)
}

type objective = Best | Worst

(** The greedy algorithm of Figure 9: repeatedly add the cheapest edge
    from a node already in the tree (or the root) to a triple not yet
    covered. [Worst] inverts the choice — it produces the deliberately
    sub-optimal flow used by the naive-translation baseline and the
    Figure 14 experiment. Every triple has a root scan edge, so the
    greedy step never gets stuck. *)
let optimal_flow ?(objective = Best) (pt : Sparql.Pattern_tree.t) (g : graph) :
  flow =
  let n = Sparql.Pattern_tree.n_triples pt in
  let edges =
    match objective with
    | Best -> g.edges
    | Worst ->
      (* Most expensive *indexed* access first: the realistic bad plan a
         naive translator would produce (it still uses indexes, it just
         starts from the wrong end — compare Figure 14(c)). Scans stay
         last so the flow remains connected without degenerating into
         all-scans. *)
      let sc, indexed =
        List.partition (fun e -> e.dst.meth = Cost.Sc) g.edges
      in
      List.rev indexed @ sc
  in
  let in_tree : (int * Cost.access, unit) Hashtbl.t = Hashtbl.create 16 in
  let covered = Array.make n false in
  let method_of = Array.make n Cost.Sc in
  let pos_of = Array.make n (-1) in
  let parent_of = Array.make n None in
  let order = ref [] in
  let n_covered = ref 0 in
  while !n_covered < n do
    let chosen =
      List.find_opt
        (fun e ->
          (not covered.(e.dst.triple))
          &&
          match e.src with
          | None -> true
          | Some src -> Hashtbl.mem in_tree (src.triple, src.meth))
        edges
    in
    match chosen with
    | None ->
      (* Unreachable: root scan edges always exist. *)
      assert false
    | Some e ->
      let t = e.dst.triple in
      covered.(t) <- true;
      method_of.(t) <- e.dst.meth;
      pos_of.(t) <- !n_covered;
      parent_of.(t) <- e.src;
      Hashtbl.replace in_tree (t, e.dst.meth) ();
      order := e.dst :: !order;
      incr n_covered
  done;
  { order = List.rev !order; method_of; pos_of; parent_of }

(** Convenience: graph + flow in one step. *)
let compute ?objective pt stats dict =
  let g = build pt stats dict in
  (g, optimal_flow ?objective pt g)

let node_to_string pt nd =
  Printf.sprintf "(t%d:%s, %s)" nd.triple
    (Sparql.Pp.triple_pat_to_string
       (Sparql.Pattern_tree.triple pt nd.triple).Sparql.Pattern_tree.pat)
    (Cost.access_to_string nd.meth)

let flow_to_string pt flow =
  String.concat " -> " (List.map (node_to_string pt) flow.order)
