test/test_loader.ml: Alcotest Array Db2rdf Gen Helpers Layout List Loader Option Pred_map Printf QCheck QCheck_alcotest Rdf Relsql
