bench/harness.ml: Arg Db2rdf List Printf Sparql String Unix
