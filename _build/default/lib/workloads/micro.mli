(** The Section 2.1 micro-benchmark: predicate sets of Table 1, star
    queries Q1–Q10 of Table 2, and the Section 3.3 flow-experiment
    data/query (Figure 14). *)

(** Single-valued predicate IRI [SV<i>]. *)
val sv : int -> string

(** Multi-valued predicate IRI [MV<i>] (each holds {!mv_values} objects
    per subject). *)
val mv : int -> string

val mv_values : int

(** (single-valued ids, multi-valued ids, triple share) — Table 1 rows. *)
val groups : (int list * int list * float) list

(** Generate roughly [scale] triples. Deterministic. *)
val generate : scale:int -> Rdf.Triple.t list

(** A [SELECT ?s] star over the given predicate IRIs. *)
val star_query : string list -> string

(** Q1–Q10 of Table 2. *)
val queries : (string * string) list

(** Two-predicate data whose constants have ~0.75 and ~0.01 frequency
    (the Figure 14 experiment), and its query. *)
val flow_experiment_data : scale:int -> Rdf.Triple.t list

val flow_query : string
