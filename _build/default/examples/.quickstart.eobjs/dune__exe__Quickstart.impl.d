examples/quickstart.ml: Db2rdf List Printf Rdf Sparql String
