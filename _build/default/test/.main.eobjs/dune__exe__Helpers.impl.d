test/helpers.ml: Alcotest Db2rdf List Printf Rdf Sparql String
