lib/core/dict_table.ml: Rdf Relsql
