(** SQL pretty-printer. Produces text the {!Sql_parser} round-trips, and
    the human-readable SQL shown by [explain] (compare Figure 13 of the
    paper). *)

open Sql_ast

let agg_name = function
  | Sql_ast.A_count -> "COUNT"
  | Sql_ast.A_sum -> "SUM"
  | Sql_ast.A_avg -> "AVG"
  | Sql_ast.A_min -> "MIN"
  | Sql_ast.A_max -> "MAX"

let binop_name = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Leq -> "<=" | Gt -> ">"
  | Geq -> ">=" | And -> "AND" | Or -> "OR" | Add -> "+" | Sub -> "-"
  | Mul -> "*" | Div -> "/" | Concat -> "||"

let precedence = function
  | Or -> 1 | And -> 2
  | Eq | Neq | Lt | Leq | Gt | Geq -> 3
  | Add | Sub | Concat -> 4
  | Mul | Div -> 5

let rec pp_expr ?(prec = 0) buf e =
  let paren p body =
    if p < prec then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match e with
  | Const v -> Buffer.add_string buf (Value.to_string v)
  | Col (None, n) -> Buffer.add_string buf n
  | Col (Some q, n) ->
    Buffer.add_string buf q;
    Buffer.add_char buf '.';
    Buffer.add_string buf n
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), a, b) ->
    (* Comparisons are non-associative: both operands exclude
       comparison-level constructs unless parenthesized. *)
    let p = precedence op in
    paren p (fun () ->
        pp_expr ~prec:(p + 1) buf a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (binop_name op);
        Buffer.add_char buf ' ';
        pp_expr ~prec:(p + 1) buf b)
  | Binop (op, a, b) ->
    let p = precedence op in
    paren p (fun () ->
        pp_expr ~prec:p buf a;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (binop_name op);
        Buffer.add_char buf ' ';
        pp_expr ~prec:(p + 1) buf b)
  | Not e ->
    (* NOT binds between AND and comparison. *)
    paren 2 (fun () ->
        Buffer.add_string buf "NOT ";
        pp_expr ~prec:3 buf e)
  | Is_null e ->
    paren 3 (fun () ->
        pp_expr ~prec:6 buf e;
        Buffer.add_string buf " IS NULL")
  | Is_not_null e ->
    paren 3 (fun () ->
        pp_expr ~prec:6 buf e;
        Buffer.add_string buf " IS NOT NULL")
  | Case (whens, els) ->
    Buffer.add_string buf "CASE";
    List.iter
      (fun (c, v) ->
        Buffer.add_string buf " WHEN ";
        pp_expr buf c;
        Buffer.add_string buf " THEN ";
        pp_expr buf v)
      whens;
    (match els with
     | Some e ->
       Buffer.add_string buf " ELSE ";
       pp_expr buf e
     | None -> ());
    Buffer.add_string buf " END"
  | Coalesce es ->
    Buffer.add_string buf "COALESCE(";
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ", ";
        pp_expr buf e)
      es;
    Buffer.add_char buf ')'
  | In_list (e, vs) ->
    paren 3 (fun () ->
        pp_expr ~prec:6 buf e;
        Buffer.add_string buf " IN (";
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Value.to_string v))
          vs;
        Buffer.add_char buf ')')
  | Like (e, pat) ->
    paren 3 (fun () ->
        pp_expr ~prec:6 buf e;
        Buffer.add_string buf " LIKE ";
        Buffer.add_string buf (Value.to_string (Value.Str pat)))
  | Agg (fn, arg, distinct) ->
    Buffer.add_string buf (agg_name fn);
    Buffer.add_char buf '(';
    if distinct then Buffer.add_string buf "DISTINCT ";
    (match arg with
     | None -> Buffer.add_char buf '*'
     | Some e -> pp_expr buf e);
    Buffer.add_char buf ')'

let rec pp_from buf = function
  | From_table { table; alias } ->
    Buffer.add_string buf table;
    if alias <> table then begin
      Buffer.add_string buf " AS ";
      Buffer.add_string buf alias
    end
  | From_subquery { query; alias } ->
    Buffer.add_char buf '(';
    pp_query buf query;
    Buffer.add_string buf ") AS ";
    Buffer.add_string buf alias
  | From_values { rows; alias; cols } ->
    Buffer.add_string buf "LATERAL (VALUES ";
    List.iteri
      (fun i row ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '(';
        List.iteri
          (fun j e ->
            if j > 0 then Buffer.add_string buf ", ";
            pp_expr buf e)
          row;
        Buffer.add_char buf ')')
      rows;
    Buffer.add_string buf ") AS ";
    Buffer.add_string buf alias;
    Buffer.add_char buf '(';
    Buffer.add_string buf (String.concat ", " cols);
    Buffer.add_char buf ')'

and pp_select buf s =
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  if s.items = [] then Buffer.add_char buf '*'
  else
    List.iteri
      (fun i { expr; alias } ->
        if i > 0 then Buffer.add_string buf ", ";
        pp_expr buf expr;
        match alias with
        | Some a ->
          Buffer.add_string buf " AS ";
          Buffer.add_string buf a
        | None -> ())
      s.items;
  (match s.from with
   | Some f ->
     Buffer.add_string buf " FROM ";
     pp_from buf f
   | None -> ());
  List.iter
    (fun { kind; item; on } ->
      (match kind with
       | Inner -> Buffer.add_string buf " JOIN "
       | Left_outer -> Buffer.add_string buf " LEFT OUTER JOIN ");
      pp_from buf item;
      match on with
      | Some e ->
        Buffer.add_string buf " ON ";
        pp_expr buf e
      | None -> Buffer.add_string buf " ON TRUE")
    s.joins;
  (match s.where with
   | Some e ->
     Buffer.add_string buf " WHERE ";
     pp_expr buf e
   | None -> ());
  (match s.group_by with
   | [] -> ()
   | keys ->
     Buffer.add_string buf " GROUP BY ";
     List.iteri
       (fun i e ->
         if i > 0 then Buffer.add_string buf ", ";
         pp_expr buf e)
       keys);
  (match s.order_by with
   | [] -> ()
   | items ->
     Buffer.add_string buf " ORDER BY ";
     List.iteri
       (fun i { sort_expr; asc } ->
         if i > 0 then Buffer.add_string buf ", ";
         pp_expr buf sort_expr;
         if not asc then Buffer.add_string buf " DESC")
       items);
  (match s.limit with
   | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
   | None -> ());
  (match s.offset with
   | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n)
   | None -> ())

and pp_query buf = function
  | Select s -> pp_select buf s
  | Union { all; parts } ->
    List.iteri
      (fun i q ->
        if i > 0 then
          Buffer.add_string buf (if all then " UNION ALL " else " UNION ");
        (match q with
         | Select _ ->
           Buffer.add_char buf '(';
           pp_query buf q;
           Buffer.add_char buf ')'
         | Union _ ->
           Buffer.add_char buf '(';
           pp_query buf q;
           Buffer.add_char buf ')'))
      parts

let pp_stmt buf { ctes; body } =
  (match ctes with
   | [] -> ()
   | _ ->
     Buffer.add_string buf "WITH ";
     List.iteri
       (fun i (name, q) ->
         if i > 0 then Buffer.add_string buf ", ";
         Buffer.add_string buf name;
         Buffer.add_string buf " AS (";
         pp_query buf q;
         Buffer.add_char buf ')')
       ctes;
     Buffer.add_char buf ' ');
  pp_query buf body

let expr_to_string e =
  let buf = Buffer.create 64 in
  pp_expr buf e;
  Buffer.contents buf

let query_to_string q =
  let buf = Buffer.create 256 in
  pp_query buf q;
  Buffer.contents buf

let to_string stmt =
  let buf = Buffer.create 512 in
  pp_stmt buf stmt;
  Buffer.contents buf

(** Multi-line rendering for explain output: each CTE on its own line. *)
let to_pretty_string { ctes; body } =
  let buf = Buffer.create 512 in
  (match ctes with
   | [] -> ()
   | _ ->
     Buffer.add_string buf "WITH\n";
     List.iteri
       (fun i (name, q) ->
         if i > 0 then Buffer.add_string buf ",\n";
         Buffer.add_string buf ("  " ^ name ^ " AS (");
         pp_query buf q;
         Buffer.add_char buf ')')
       ctes;
     Buffer.add_char buf '\n');
  pp_query buf body;
  Buffer.contents buf
