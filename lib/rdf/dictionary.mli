(** Two-way dictionary encoding of RDF terms to dense integer ids.

    Every store in this repository (DB2RDF, the triple-store and
    vertical baselines, the native reference store) shares one
    dictionary per dataset so that query answers can be compared
    id-for-id. Ids start at 0 and are dense. *)

type t

val create : unit -> t
val size : t -> int

(** Intern a term, returning its id (allocating one if new). *)
val id_of : t -> Term.t -> int

(** Lookup without interning. *)
val find : t -> Term.t -> int option

(** [term_of t id] raises [Invalid_argument] on an unallocated id. *)
val term_of : t -> int -> Term.t

val mem : t -> Term.t -> bool

(** [remap_into ~global delta] interns every term of [delta] into
    [global] in [delta]'s id order and returns the local-to-global id
    remap array. Merging the per-chunk dictionaries of a contiguous
    input partition in chunk order reproduces the ids of a sequential
    pass exactly (the parallel bulk loader's determinism lever). *)
val remap_into : global:t -> t -> int array

(** Iterate all (id, term) pairs in id order. *)
val iter : (int -> Term.t -> unit) -> t -> unit
