(** RDFS-style inference by query expansion.

    The paper evaluates LUBM by rewriting each query so that inference
    is not required of the store: "if the LUBM ontology stated that
    GraduateStudent ⊑ Student, and the query asks for [?x rdf:type
    Student], the query was expanded into [?x rdf:type Student UNION ?x
    rdf:type GraduateStudent]" (Section 4.1); supporting inferencing is
    listed as future work. This module implements that expansion
    automatically from an ontology: subclass axioms expand type triples,
    subproperty axioms expand predicate constants — each into a UNION
    over the transitive closure. *)

module StrTbl = Hashtbl

type ontology = {
  subclasses : (string, string list ref) StrTbl.t;
      (** class IRI -> direct subclasses *)
  subproperties : (string, string list ref) StrTbl.t;
      (** property IRI -> direct subproperties *)
  type_predicates : (string, unit) StrTbl.t;
      (** predicates acting as rdf:type (rdf:type plus any the caller
          registers, e.g. a workload's own [type] predicate) *)
}

let rdf_type_iri = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
let rdfs_subclass = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
let rdfs_subproperty = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"

let create () =
  let o =
    {
      subclasses = StrTbl.create 32;
      subproperties = StrTbl.create 16;
      type_predicates = StrTbl.create 4;
    }
  in
  StrTbl.replace o.type_predicates rdf_type_iri ();
  o

let add_to tbl key v =
  match StrTbl.find_opt tbl key with
  | Some l -> if not (List.mem v !l) then l := v :: !l
  | None -> StrTbl.add tbl key (ref [ v ])

(** Declare [sub] ⊑ [super]. *)
let add_subclass o ~sub ~super = add_to o.subclasses super sub

(** Declare property [sub] ⊑ [super]. *)
let add_subproperty o ~sub ~super = add_to o.subproperties super sub

(** Register an additional predicate with rdf:type semantics. *)
let add_type_predicate o iri = StrTbl.replace o.type_predicates iri ()

(** Build an ontology from the rdfs:subClassOf / rdfs:subPropertyOf
    triples of a graph (the usual way an ontology ships with a
    dataset). *)
let of_graph g =
  let o = create () in
  Rdf.Graph.iter_triples
    (fun (tr : Rdf.Triple.t) ->
      match tr.p, tr.s, tr.o with
      | Rdf.Term.Iri p, Rdf.Term.Iri sub, Rdf.Term.Iri super
        when p = rdfs_subclass ->
        add_subclass o ~sub ~super
      | Rdf.Term.Iri p, Rdf.Term.Iri sub, Rdf.Term.Iri super
        when p = rdfs_subproperty ->
        add_subproperty o ~sub ~super
      | _ -> ())
    g;
  o

(* Transitive closure with cycle protection; includes the root. *)
let closure tbl root =
  let seen = StrTbl.create 8 in
  let order = ref [] in
  let rec go x =
    if not (StrTbl.mem seen x) then begin
      StrTbl.add seen x ();
      order := x :: !order;
      match StrTbl.find_opt tbl x with
      | Some subs -> List.iter go !subs
      | None -> ()
    end
  in
  go root;
  List.rev !order

(** All classes entailed to be subclasses of [c] (including [c]). *)
let subclasses_of o c = closure o.subclasses c

(** All properties entailed to be subproperties of [p] (including
    [p]). *)
let subproperties_of o p = closure o.subproperties p

(* ------------------------------------------------------------------ *)
(* Query expansion                                                     *)
(* ------------------------------------------------------------------ *)

(** The UNION alternatives a single triple pattern expands to
    ([[tp]] itself when no axiom applies). *)
let expand_triple o (tp : Ast.triple_pat) : Ast.triple_pat list =
  match tp.Ast.tp_p with
  | Ast.Var _ -> [ tp ]
  | Ast.Term (Rdf.Term.Iri p) ->
    let is_type = StrTbl.mem o.type_predicates p in
    let class_alternatives =
      if is_type then
        match tp.Ast.tp_o with
        | Ast.Term (Rdf.Term.Iri c) ->
          List.map
            (fun c' -> { tp with Ast.tp_o = Ast.Term (Rdf.Term.iri c') })
            (subclasses_of o c)
        | _ -> [ tp ]
      else [ tp ]
    in
    (* Subproperty expansion applies to every alternative. *)
    List.concat_map
      (fun tp ->
        match tp.Ast.tp_p with
        | Ast.Term (Rdf.Term.Iri p) ->
          List.map
            (fun p' -> { tp with Ast.tp_p = Ast.Term (Rdf.Term.iri p') })
            (subproperties_of o p)
        | _ -> [ tp ])
      class_alternatives
  | Ast.Term _ -> [ tp ]

let rec expand_pattern o (p : Ast.pattern) : Ast.pattern =
  match p with
  | Ast.Bgp tps ->
    let parts =
      List.map
        (fun tp ->
          match expand_triple o tp with
          | [ single ] -> Ast.Bgp [ single ]
          | many -> Ast.Union (List.map (fun t -> Ast.Bgp [ t ]) many))
        tps
    in
    (match parts with [ single ] -> single | parts -> Ast.Group parts)
  | Ast.Group ps -> Ast.Group (List.map (expand_pattern o) ps)
  | Ast.Union ps -> Ast.Union (List.map (expand_pattern o) ps)
  | Ast.Optional p -> Ast.Optional (expand_pattern o p)
  | Ast.Filter _ as f -> f

(** Rewrite a query so that evaluating it without inference returns the
    RDFS-entailed answers: every type triple whose class has subclasses
    and every triple whose predicate has subproperties becomes a UNION
    over the closure. *)
let expand_query o (q : Ast.query) : Ast.query =
  { q with Ast.where = expand_pattern o q.Ast.where }
