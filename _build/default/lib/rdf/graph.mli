(** In-memory indexed RDF graph.

    Triples are dictionary-encoded and held in three nested hash indexes
    (SPO, POS, OSP), so any triple pattern with at least one bound
    position is answered by index lookups. This is the storage of the
    "native" reference store and the oracle the relational stores are
    tested against. *)

type t

type id_triple = { s : int; p : int; o : int }

(** [create ?dict ()] builds an empty graph, optionally sharing an
    existing dictionary. *)
val create : ?dict:Dictionary.t -> unit -> t

val dictionary : t -> Dictionary.t
val size : t -> int

(** Add a triple; interns its terms. Duplicates are ignored (RDF graphs
    are sets). *)
val add : t -> Triple.t -> unit

val add_ids : t -> int -> int -> int -> unit

(** Remove a triple (no-op when absent). Dictionary entries are kept —
    ids stay stable. *)
val remove : t -> Triple.t -> unit

val remove_ids : t -> int -> int -> int -> unit
val mem : t -> Triple.t -> bool
val mem_ids : t -> int -> int -> int -> bool

(** [find_ids t ?s ?p ?o f] calls [f] on every id-triple matching the
    given bound positions, choosing the best index for the pattern. *)
val find_ids :
  t -> ?s:int -> ?p:int -> ?o:int -> (id_triple -> unit) -> unit

(** Term-level pattern query; omitted positions are wildcards. *)
val find : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> Triple.t list

val iter_triples : (Triple.t -> unit) -> t -> unit
val to_list : t -> Triple.t list

(** Distinct subject / predicate / object ids. *)
val subjects : t -> int list

val predicates : t -> int list
val objects : t -> int list
