test/test_sparql.ml: Alcotest Ast Gen Helpers Lexer List Parser Pattern_tree Pp Printf QCheck QCheck_alcotest Rdf Ref_eval Sparql
