(** Unit and property tests for the relational engine substrate. *)

open Relsql

let v_int i = Value.Int i
let v_str s = Value.Str s

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_order () =
  Alcotest.(check bool) "null sorts first" true (Value.compare Value.Null (v_int 0) < 0);
  Alcotest.(check bool) "int order" true (Value.compare (v_int 1) (v_int 2) < 0);
  Alcotest.(check bool) "str order" true (Value.compare (v_str "a") (v_str "b") < 0);
  Alcotest.(check bool) "lid distinct from int" false
    (Value.equal (Value.Lid 5) (v_int 5));
  Alcotest.(check int) "null storage is free (bitmap-carried)" 0
    (Value.storage_size Value.Null);
  Alcotest.(check bool) "string storage grows" true
    (Value.storage_size (v_str "hello") > Value.storage_size (v_str "h"))

let test_value_roundtrip () =
  Alcotest.(check string) "escaping" "'it''s'" (Value.to_string (v_str "it's"));
  Alcotest.(check string) "lid form" "lid:7" (Value.to_string (Value.Lid 7))

(* ------------------------------------------------------------------ *)
(* Schema / Table                                                      *)
(* ------------------------------------------------------------------ *)

let test_schema () =
  let s = Schema.make [ "a"; "b"; "c" ] in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check (option int)) "position" (Some 1) (Schema.position s "b");
  Alcotest.(check (option int)) "missing" None (Schema.position s "z");
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Schema.make: duplicate column a") (fun () ->
      ignore (Schema.make [ "a"; "a" ]))

let mk_table () =
  let t = Table.create "t" (Schema.make [ "k"; "v" ]) in
  for i = 0 to 99 do
    ignore (Table.insert t [| v_int (i mod 10); v_str (string_of_int i) |])
  done;
  t

let test_table_index () =
  let t = mk_table () in
  Table.create_index_on t "k";
  Alcotest.(check int) "row count" 100 (Table.row_count t);
  Alcotest.(check int) "index lookup" 10 (Array.length (Table.lookup t 0 (v_int 3)));
  Alcotest.(check int) "miss" 0 (Array.length (Table.lookup t 0 (v_int 42)));
  (* set_cell keeps the index consistent *)
  let rid = (Table.lookup t 0 (v_int 3)).(0) in
  ignore (Table.set_cell t rid 0 (v_int 42));
  Alcotest.(check int) "after update: old key" 9 (Array.length (Table.lookup t 0 (v_int 3)));
  Alcotest.(check int) "after update: new key" 1 (Array.length (Table.lookup t 0 (v_int 42)))

let test_table_growth () =
  let t = Table.create "g" (Schema.make [ "x" ]) in
  for i = 0 to 9999 do
    ignore (Table.insert t [| v_int i |])
  done;
  Alcotest.(check int) "grew" 10000 (Table.row_count t);
  Alcotest.(check bool) "cell" true (Value.equal (Table.cell t 9999 0) (v_int 9999))

let test_null_fraction () =
  let t = Table.create "n" (Schema.make [ "a"; "b" ]) in
  ignore (Table.insert t [| v_int 1; Value.Null |]);
  ignore (Table.insert t [| Value.Null; Value.Null |]);
  Alcotest.(check (float 0.001)) "3 of 4 null" 0.75 (Table.null_fraction t [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let people_db () =
  let db = Database.create "test" in
  let t = Database.create_table db "people" (Schema.make [ "name"; "age"; "city" ]) in
  let ins n a c = ignore (Table.insert t [| v_str n; v_int a; v_str c |]) in
  ins "alice" 30 "nyc";
  ins "bob" 40 "sfo";
  ins "carol" 35 "nyc";
  ins "dave" 25 "nyc";
  Table.create_index_on t "name";
  let pets = Database.create_table db "pets" (Schema.make [ "owner"; "pet" ]) in
  let insp o p = ignore (Table.insert pets [| v_str o; v_str p |]) in
  insp "alice" "cat";
  insp "alice" "dog";
  insp "carol" "fish";
  Table.create_index_on pets "owner";
  db

let run db sql = Executor.run db (Sql_parser.parse sql)

let rows db sql = Batch.to_rows (run db sql)

let test_scan_filter () =
  let db = people_db () in
  Alcotest.(check int) "where" 3
    (List.length (rows db "SELECT p.name FROM people AS p WHERE p.city = 'nyc'"));
  Alcotest.(check int) "and" 2
    (List.length
       (rows db "SELECT p.name FROM people AS p WHERE p.city = 'nyc' AND p.age > 28"))

let test_index_lookup () =
  let db = people_db () in
  let r = rows db "SELECT p.age FROM people AS p WHERE p.name = 'bob'" in
  Alcotest.(check int) "one row" 1 (List.length r);
  Alcotest.(check bool) "value" true (Value.equal (List.hd r).(0) (v_int 40))

let test_inner_join () =
  let db = people_db () in
  let r =
    rows db
      "SELECT p.name AS n, q.pet AS pet FROM people AS p JOIN pets AS q ON q.owner = p.name"
  in
  Alcotest.(check int) "3 pet rows" 3 (List.length r)

let test_left_join () =
  let db = people_db () in
  let r =
    rows db
      "SELECT p.name AS n, q.pet AS pet FROM people AS p LEFT OUTER JOIN pets AS q ON q.owner = p.name"
  in
  (* alice x2, carol x1, bob+dave null-extended *)
  Alcotest.(check int) "5 rows" 5 (List.length r);
  let nulls = List.filter (fun row -> Value.is_null row.(1)) r in
  Alcotest.(check int) "2 null-extended" 2 (List.length nulls)

let test_union_distinct_order () =
  let db = people_db () in
  let r =
    rows db
      "(SELECT p.city AS c FROM people AS p) UNION (SELECT p.city AS c FROM people AS p)"
  in
  Alcotest.(check int) "union dedupes" 2 (List.length r);
  let r =
    rows db
      "(SELECT p.city AS c FROM people AS p) UNION ALL (SELECT p.city AS c FROM people AS p)"
  in
  Alcotest.(check int) "union all keeps" 8 (List.length r);
  let r = rows db "SELECT DISTINCT p.city AS c FROM people AS p ORDER BY c" in
  Alcotest.(check int) "distinct" 2 (List.length r);
  Alcotest.(check bool) "ordered" true (Value.equal (List.hd r).(0) (v_str "nyc"))

let test_limit_offset () =
  let db = people_db () in
  let r = rows db "SELECT p.name AS n FROM people AS p ORDER BY n LIMIT 2 OFFSET 1" in
  Alcotest.(check int) "2 rows" 2 (List.length r);
  Alcotest.(check bool) "second name" true (Value.equal (List.hd r).(0) (v_str "bob"))

let test_cte_chain () =
  let db = people_db () in
  let r =
    rows db
      "WITH ny AS (SELECT p.name AS n, p.age AS a FROM people AS p WHERE p.city = 'nyc'), old AS (SELECT y.n AS n FROM ny AS y WHERE y.a >= 30) SELECT o.n FROM old AS o ORDER BY o.n"
  in
  Alcotest.(check int) "2 rows" 2 (List.length r)

let test_case_coalesce () =
  let db = people_db () in
  let r =
    rows db
      "SELECT CASE WHEN p.age > 32 THEN 'old' ELSE 'young' END AS bucket FROM people AS p WHERE p.name = 'bob'"
  in
  Alcotest.(check bool) "case" true (Value.equal (List.hd r).(0) (v_str "old"));
  let r = rows db "SELECT COALESCE(NULL, p.city) AS c FROM people AS p WHERE p.name = 'bob'" in
  Alcotest.(check bool) "coalesce" true (Value.equal (List.hd r).(0) (v_str "sfo"))

let test_lateral_values () =
  let db = people_db () in
  let r =
    rows db
      "SELECT p.name AS n, L.x AS x FROM people AS p JOIN LATERAL (VALUES (p.age), (p.age + 1)) AS L(x) ON TRUE WHERE p.name = 'alice'"
  in
  Alcotest.(check int) "2 lateral rows" 2 (List.length r)

let test_in_like_isnull () =
  let db = people_db () in
  Alcotest.(check int) "in list" 2
    (List.length (rows db "SELECT p.name FROM people AS p WHERE p.name IN ('alice', 'bob')"));
  Alcotest.(check int) "like" 1
    (List.length (rows db "SELECT p.name FROM people AS p WHERE p.name LIKE '%ob'"));
  Alcotest.(check int) "is null on left join" 2
    (List.length
       (rows db
          "SELECT p.name FROM people AS p LEFT OUTER JOIN pets AS q ON q.owner = p.name WHERE q.pet IS NULL"))

let test_three_valued_logic () =
  let db = people_db () in
  (* NULL comparisons are unknown, so the filter drops them. *)
  let r =
    rows db
      "SELECT p.name FROM people AS p LEFT OUTER JOIN pets AS q ON q.owner = p.name WHERE q.pet <> 'cat'"
  in
  Alcotest.(check int) "unknown filtered" 2 (List.length r)

let test_timeout () =
  let db = Database.create "t" in
  let t = Database.create_table db "big" (Schema.make [ "x" ]) in
  for i = 0 to 400 do
    ignore (Table.insert t [| v_int i |])
  done;
  Alcotest.check_raises "timeout fires" Executor.Timeout (fun () ->
      ignore
        (Executor.run ~timeout:0.0 db
           (Sql_parser.parse
              "SELECT a.x FROM big AS a JOIN big AS b ON TRUE JOIN big AS c ON TRUE WHERE a.x + b.x + c.x = 0")))

let test_hash_join_fallback () =
  let db = people_db () in
  (* join on a non-indexed column pair -> hash join; result correctness *)
  let r =
    rows db
      "SELECT p.name, q.name FROM people AS p JOIN people AS q ON q.city = p.city WHERE p.name = 'alice'"
  in
  Alcotest.(check int) "city self-join" 3 (List.length r)

(* ------------------------------------------------------------------ *)
(* SQL pretty-printer / parser round trip                              *)
(* ------------------------------------------------------------------ *)

let test_pp_parse_cases () =
  let cases =
    [ "SELECT a.x FROM t AS a";
      "SELECT a.x AS y FROM t AS a WHERE a.x = 3 AND a.y <> 'q''uote'";
      "SELECT DISTINCT a.x FROM t AS a ORDER BY a.x DESC LIMIT 5 OFFSET 2";
      "WITH c AS (SELECT a.x FROM t AS a) SELECT c0.x FROM c AS c0";
      "SELECT a.x FROM t AS a LEFT OUTER JOIN u AS b ON b.k = a.x OR b.k IS NULL";
      "SELECT CASE WHEN a.x = 1 THEN 'one' ELSE 'many' END AS w FROM t AS a";
      "SELECT COALESCE(a.x, a.y, 0) FROM t AS a WHERE a.z IN (1, 2, 3)";
      "SELECT a.x FROM t AS a JOIN LATERAL (VALUES (a.p, a.q), (a.r, a.s)) AS L(m, n) ON TRUE WHERE L.m IS NOT NULL";
      "(SELECT a.x FROM t AS a) UNION ALL (SELECT b.x FROM u AS b)";
      "SELECT a.x FROM t AS a WHERE a.s LIKE '%foo%' AND NOT a.b OR a.x <= lid:3" ]
  in
  List.iter
    (fun src ->
      let s1 = Sql_pp.to_string (Sql_parser.parse src) in
      let s2 = Sql_pp.to_string (Sql_parser.parse s1) in
      Alcotest.(check string) ("roundtrip: " ^ src) s1 s2)
    cases

(* Random expression generator for the pp/parse property. *)
let gen_expr : Sql_ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_value =
    oneof
      [ return Value.Null;
        map (fun i -> Value.Int i) (int_range (-100) 100);
        map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 6));
        map (fun b -> Value.Bool b) bool;
        map (fun i -> Value.Lid i) (int_range 0 50) ]
  in
  let gen_col =
    map2
      (fun q n -> Sql_ast.Col (Some ("t" ^ string_of_int q), "c" ^ string_of_int n))
      (int_range 0 3) (int_range 0 5)
  in
  fix
    (fun self depth ->
      if depth = 0 then oneof [ map (fun v -> Sql_ast.Const v) gen_value; gen_col ]
      else
        frequency
          [ (2, map (fun v -> Sql_ast.Const v) gen_value);
            (2, gen_col);
            ( 3,
              map3
                (fun op a b -> Sql_ast.Binop (op, a, b))
                (oneofl
                   Sql_ast.
                     [ Eq; Neq; Lt; Leq; Gt; Geq; And; Or; Add; Sub; Mul; Div;
                       Concat ])
                (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun e -> Sql_ast.Not e) (self (depth - 1)));
            (1, map (fun e -> Sql_ast.Is_null e) (self (depth - 1)));
            (1, map (fun e -> Sql_ast.Is_not_null e) (self (depth - 1)));
            ( 1,
              map2
                (fun c e -> Sql_ast.Case ([ (c, e) ], Some e))
                (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun es -> Sql_ast.Coalesce es) (list_size (int_range 1 3) (self (depth - 1))));
            ( 1,
              map2
                (fun e vs -> Sql_ast.In_list (e, vs))
                (self (depth - 1))
                (list_size (int_range 1 3) gen_value) ) ])
    3

let expr_roundtrip =
  QCheck.Test.make ~name:"sql expr pp/parse roundtrip" ~count:300
    (QCheck.make gen_expr ~print:Sql_pp.expr_to_string)
    (fun e ->
      let sql =
        Sql_pp.to_string
          (Sql_ast.stmt
             (Sql_ast.Select
                { Sql_ast.empty_select with
                  items = [ { Sql_ast.expr = e; alias = Some "e" } ];
                  from = Some (Sql_ast.From_table { table = "t"; alias = "t0" }) }))
      in
      let reparsed = Sql_parser.parse sql in
      Sql_pp.to_string reparsed = sql)

(* Expression evaluation: compare against a tiny interpreter of 3VL for
   specific identities. *)
let expr_eval_identities =
  QCheck.Test.make ~name:"3VL: NOT (a AND b) = NOT a OR NOT b" ~count:200
    QCheck.(
      make
        Gen.(pair (oneofl [ Some true; Some false; None ]) (oneofl [ Some true; Some false; None ])))
    (fun (a, b) ->
      let v = function
        | Some x -> Value.Bool x
        | None -> Value.Null
      in
      let to_expr x = Sql_ast.Const (v x) in
      let eval e = Expr_eval.eval_const e in
      let lhs = eval (Sql_ast.Not (Sql_ast.Binop (Sql_ast.And, to_expr a, to_expr b))) in
      let rhs =
        eval
          (Sql_ast.Binop (Sql_ast.Or, Sql_ast.Not (to_expr a), Sql_ast.Not (to_expr b)))
      in
      Value.equal lhs rhs)

let suite =
  [ Alcotest.test_case "value ordering" `Quick test_value_order;
    Alcotest.test_case "value printing" `Quick test_value_roundtrip;
    Alcotest.test_case "schema" `Quick test_schema;
    Alcotest.test_case "table index maintenance" `Quick test_table_index;
    Alcotest.test_case "table growth" `Quick test_table_growth;
    Alcotest.test_case "null fraction" `Quick test_null_fraction;
    Alcotest.test_case "scan + filter" `Quick test_scan_filter;
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "inner join" `Quick test_inner_join;
    Alcotest.test_case "left outer join" `Quick test_left_join;
    Alcotest.test_case "union / distinct / order" `Quick test_union_distinct_order;
    Alcotest.test_case "limit / offset" `Quick test_limit_offset;
    Alcotest.test_case "CTE chain" `Quick test_cte_chain;
    Alcotest.test_case "case / coalesce" `Quick test_case_coalesce;
    Alcotest.test_case "lateral values" `Quick test_lateral_values;
    Alcotest.test_case "in / like / is-null" `Quick test_in_like_isnull;
    Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
    Alcotest.test_case "query timeout" `Quick test_timeout;
    Alcotest.test_case "hash join fallback" `Quick test_hash_join_fallback;
    Alcotest.test_case "pp/parse cases" `Quick test_pp_parse_cases;
    QCheck_alcotest.to_alcotest expr_roundtrip;
    QCheck_alcotest.to_alcotest expr_eval_identities ]
