(** E7–E10 — the cross-system evaluation of Section 4:
    - E7 (Figure 15): summary matrix — per dataset and system, how many
      queries complete / time out / error / are unsupported, and the
      mean time over completed+timeout queries.
    - E8 (Figure 16): per-query times on LUBM.
    - E9 (Figure 17): the long-running PRBench cluster (PQ10, PQ26–28).
    - E10 (Figure 18): the medium PRBench cluster (PQ14–17, PQ24, PQ29).

    "Error" classification follows the paper: a system that returns the
    wrong number of answers (checked against the reference evaluator's
    count) is counted as error and its time is discarded. *)

let systems_for triples =
  [ Harness.build_db2rdf triples;
    Harness.build_db2rdf_naive triples;
    Harness.build_triple_store triples;
    Harness.build_vertical_store triples;
    Harness.build_native triples ]

(** Oracle row counts per query (reference evaluator with a generous
    timeout); [None] when even the oracle times out (then completion is
    judged without a count check, as for SQ4). *)
let oracle_counts cfg graph queries =
  List.map
    (fun (qname, src) ->
      let q = Sparql.Parser.parse src in
      let expected =
        match
          Sparql.Ref_eval.eval ~timeout:(2.0 *. cfg.Harness.timeout) graph q
        with
        | r -> Some (List.length r.Sparql.Ref_eval.rows)
        | exception Sparql.Ref_eval.Timeout -> None
      in
      (qname, q, expected))
    queries

let run_dataset cfg name triples queries =
  let graph = Helpers_graph.of_triples triples in
  let prepared = oracle_counts cfg graph queries in
  let systems = systems_for triples in
  let measurements =
    List.map
      (fun (sys : Harness.system) ->
        ( sys,
          List.map
            (fun (qname, q, expected) -> Harness.measure cfg ?expected sys qname q)
            prepared ))
      systems
  in
  (name, prepared, measurements)

let print_summary_row name n_queries ((sys : Harness.system), ms) =
  let complete = ref 0 and timeout = ref 0 and error = ref 0 and unsup = ref 0 in
  let time_sum = ref 0.0 in
  let log_sum = ref 0.0 in
  List.iter
    (fun (m : Harness.measurement) ->
      match m.Harness.m_outcome with
      | `Complete _ ->
        incr complete;
        time_sum := !time_sum +. m.Harness.m_seconds;
        log_sum := !log_sum +. log (max 1e-6 m.Harness.m_seconds)
      | `Timeout ->
        incr timeout;
        time_sum := !time_sum +. m.Harness.m_seconds;
        log_sum := !log_sum +. log m.Harness.m_seconds
      | `Error _ -> incr error
      | `Unsupported -> incr unsup)
    ms;
  let timed = !complete + !timeout in
  [ name; sys.Harness.sys_name; string_of_int n_queries;
    string_of_int !complete; string_of_int !timeout; string_of_int !error;
    string_of_int !unsup;
    (if timed = 0 then "-"
     else Printf.sprintf "%.3f" (!time_sum /. float_of_int timed));
    (* The paper also contrasts geometric means (they weight short
       queries more fairly). *)
    (if timed = 0 then "-"
     else Printf.sprintf "%.4f" (exp (!log_sum /. float_of_int timed)));
    Printf.sprintf "%.1f" sys.Harness.load_seconds ]

let all_datasets cfg =
  [ ("LUBM", Workloads.Lubm.generate ~scale:cfg.Harness.scale, Workloads.Lubm.queries);
    ("SP2Bench", Workloads.Sp2b.generate ~scale:cfg.Harness.scale, Workloads.Sp2b.queries);
    ("DBpedia", Workloads.Dbpedia.generate ~scale:cfg.Harness.scale, Workloads.Dbpedia.queries);
    ("PRBench", Workloads.Prbench.generate ~scale:cfg.Harness.scale, Workloads.Prbench.queries) ]

let run_summary (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E7. Cross-system summary (Figure 15) — ~%d triples per dataset, timeout %.0fs"
       cfg.Harness.scale cfg.Harness.timeout);
  let rows = ref [] in
  let per_query : (string * (Harness.system * Harness.measurement list) list) list ref =
    ref []
  in
  List.iter
    (fun (name, triples, queries) ->
      Printf.printf "running %s (%d triples, %d queries)...\n%!" name
        (List.length triples) (List.length queries);
      let _, prepared, measurements = run_dataset cfg name triples queries in
      per_query := (name, measurements) :: !per_query;
      rows :=
        !rows
        @ List.map (print_summary_row name (List.length prepared)) measurements)
    (all_datasets cfg);
  Harness.print_table
    [ "Dataset"; "System"; "Queries"; "Complete"; "Timeout"; "Error";
      "Unsupported"; "Mean (s)"; "Geomean (s)"; "Load (s)" ]
    !rows;
  let per_query = List.rev !per_query in
  if cfg.Harness.json_dir <> None then
    Harness.write_json cfg ~file:"BENCH_summary.json"
      (Harness.J_obj
         [ ("experiment", Harness.J_str "summary");
           ("scale", Harness.J_int cfg.Harness.scale);
           ("timeout_s", Harness.J_float cfg.Harness.timeout);
           ( "datasets",
             Harness.J_list
               (List.map
                  (fun (name, measurements) ->
                    Harness.J_obj
                      [ ("dataset", Harness.J_str name);
                        ( "systems",
                          Harness.J_list
                            (List.map
                               (fun ((sys : Harness.system), ms) ->
                                 Harness.J_obj
                                   [ ("system", Harness.J_str sys.Harness.sys_name);
                                     ( "load_s",
                                       Harness.J_float sys.Harness.load_seconds );
                                     ( "queries",
                                       Harness.J_list
                                         (List.map
                                            (fun (m : Harness.measurement) ->
                                              match Harness.measurement_json m with
                                              | Harness.J_obj fields ->
                                                Harness.J_obj
                                                  (("query",
                                                    Harness.J_str m.Harness.m_query)
                                                   :: fields)
                                              | j -> j)
                                            ms) ) ])
                               measurements) ) ])
                  per_query) ) ]);
  per_query

(** Per-query detail tables for a measurement set. *)
let print_per_query ?(only = fun _ -> true) measurements =
  match measurements with
  | [] -> ()
  | (_, first_ms) :: _ ->
    let qnames =
      List.filter only
        (List.map (fun (m : Harness.measurement) -> m.Harness.m_query) first_ms)
    in
    let rows =
      List.map
        (fun qname ->
          qname
          :: List.map
               (fun ((_ : Harness.system), ms) ->
                 let m =
                   List.find
                     (fun (m : Harness.measurement) -> m.Harness.m_query = qname)
                     ms
                 in
                 Harness.outcome_cell m)
               measurements)
        qnames
    in
    Harness.print_table
      ("Query"
       :: List.map
            (fun ((sys : Harness.system), _) -> sys.Harness.sys_name ^ " (ms)")
            measurements)
      rows

let run_figures _cfg (per_query : (string * (Harness.system * Harness.measurement list) list) list) =
  (match List.assoc_opt "LUBM" per_query with
   | Some ms ->
     Harness.section "E8. LUBM per-query times (Figure 16)";
     print_per_query ms
   | None -> ());
  (match List.assoc_opt "PRBench" per_query with
   | Some ms ->
     Harness.section "E9. PRBench long-running queries (Figure 17)";
     print_per_query ~only:(fun q -> List.mem q [ "PQ10"; "PQ26"; "PQ27"; "PQ28" ]) ms;
     Harness.section "E10. PRBench medium queries (Figure 18)";
     print_per_query
       ~only:(fun q -> List.mem q [ "PQ14"; "PQ15"; "PQ16"; "PQ17"; "PQ24"; "PQ29" ])
       ms
   | None -> ());
  (match List.assoc_opt "SP2Bench" per_query with
   | Some ms ->
     Harness.section "SP2Bench per-query times (supplement to Figure 15)";
     print_per_query ms
   | None -> ());
  (match List.assoc_opt "DBpedia" per_query with
   | Some ms ->
     Harness.section "DBpedia per-query times (supplement to Figure 15)";
     print_per_query ms
   | None -> ())
