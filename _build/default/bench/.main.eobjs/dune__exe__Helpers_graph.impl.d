bench/helpers_graph.ml: List Rdf
