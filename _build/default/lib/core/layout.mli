(** The DB2RDF relational schema (Section 2.1, Figure 1): the Direct and
    Reverse Primary Hash relations ([DPH]/[RPH], one or more rows per
    subject resp. object with [k] pred/val column pairs) and the Direct
    and Reverse Secondary Hash relations ([DS]/[RS]) holding multi-value
    lists behind {!Relsql.Value.Lid} indirection. Only the [entry] and
    [l_id] columns are indexed, as in the paper's setup. *)

type t = {
  dph_cols : int;  (** k: pred/val column pairs in DPH *)
  rph_cols : int;  (** k': pred/val column pairs in RPH *)
}

(** 16 + 16 columns. *)
val default : t

(** Raises [Invalid_argument] on non-positive widths. *)
val make : dph_cols:int -> rph_cols:int -> t

val pred_col : int -> string
val val_col : int -> string
val primary_schema : int -> Relsql.Schema.t
val secondary_schema : unit -> Relsql.Schema.t

(** Column positions, precomputed for the loader's inner loop. *)
type positions = {
  entry_pos : int;
  spill_pos : int;
  pred_pos : int array;
  val_pos : int array;
}

val positions : Relsql.Schema.t -> int -> positions

(** Create the four relations in the database and index their lookup
    columns; returns [(dph, ds, rph, rs)]. *)
val create_tables :
  Relsql.Database.t -> t -> Relsql.Table.t * Relsql.Table.t * Relsql.Table.t * Relsql.Table.t
