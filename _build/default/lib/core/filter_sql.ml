(** Translation of SPARQL FILTER expressions into SQL over a CTE of
    dictionary-id variable columns, shared by every relational store.

    Joins between triple patterns are id-equality, but value comparisons
    need the terms themselves, so the generated SELECT LEFT-JOINs the
    [DICT] relation once per variable that appears in a value position.
    The translation mirrors {!Sparql.Ref_eval} exactly — numeric
    comparison when both operands are numeric, term-string comparison
    otherwise, SQL three-valued logic standing in for SPARQL's
    error-as-unknown — so oracle equivalence holds row for row. *)

open Sparql.Ast

exception Unsupported of string

(* A decoded value operand: its numeric view, its canonical term string
   view, and its regex-text view. Any may be NULL. *)
type operand = {
  o_num : Relsql.Sql_ast.expr;
  o_term : Relsql.Sql_ast.expr;
  o_txt : Relsql.Sql_ast.expr;
}

let null = Relsql.Sql_ast.Const Relsql.Value.Null

let cmp_to_binop = function
  | Ceq -> Relsql.Sql_ast.Eq
  | Cneq -> Relsql.Sql_ast.Neq
  | Clt -> Relsql.Sql_ast.Lt
  | Cleq -> Relsql.Sql_ast.Leq
  | Cgt -> Relsql.Sql_ast.Gt
  | Cgeq -> Relsql.Sql_ast.Geq

let arith_to_binop = function
  | Aadd -> Relsql.Sql_ast.Add
  | Asub -> Relsql.Sql_ast.Sub
  | Amul -> Relsql.Sql_ast.Mul
  | Adiv -> Relsql.Sql_ast.Div

(** Variables of [e] needing a DICT decode (value positions). *)
let rec decode_vars (e : expr) : string list =
  match e with
  | E_var _ | E_const _ | E_bound _ -> []
  | E_not e -> decode_vars e
  | E_and (a, b) | E_or (a, b) -> decode_vars a @ decode_vars b
  | E_cmp (_, a, b) | E_arith (_, a, b) -> operand_vars a @ operand_vars b
  | E_regex (e, _) -> operand_vars e

and operand_vars = function
  | E_var v -> [ v ]
  | E_const _ -> []
  | E_arith (_, a, b) -> operand_vars a @ operand_vars b
  | E_cmp _ | E_and _ | E_or _ | E_not _ | E_bound _ | E_regex _ ->
    raise (Unsupported "nested boolean expression in value position")

(** Translation environment: how to reach a variable's id column and its
    DICT decode alias. *)
type env = {
  var_col : string -> Relsql.Sql_ast.expr option;  (** id column of a var *)
  dict_alias : string -> string option;  (** DICT join alias for a var *)
}

let rec operand env (e : expr) : operand =
  match e with
  | E_var v ->
    (match env.dict_alias v with
     | Some d ->
       {
         o_num = Relsql.Sql_ast.col ~table:d "num";
         o_term = Relsql.Sql_ast.col ~table:d "term";
         o_txt = Relsql.Sql_ast.col ~table:d "txt";
       }
     | None -> { o_num = null; o_term = null; o_txt = null })
  | E_const t ->
    let num =
      match Rdf.Term.as_number t with
      | Some n -> Relsql.Sql_ast.Const (Relsql.Value.Real n)
      | None -> null
    in
    let txt =
      match t with
      | Rdf.Term.Lit { lex; _ } -> lex
      | Rdf.Term.Iri s -> s
      | Rdf.Term.Bnode b -> b
    in
    {
      o_num = num;
      o_term = Relsql.Sql_ast.str (Rdf.Term.to_string t);
      o_txt = Relsql.Sql_ast.str txt;
    }
  | E_arith (op, a, b) ->
    let a = operand env a and b = operand env b in
    {
      o_num = Relsql.Sql_ast.Binop (arith_to_binop op, a.o_num, b.o_num);
      o_term = null;
      o_txt = null;
    }
  | E_cmp _ | E_and _ | E_or _ | E_not _ | E_bound _ | E_regex _ ->
    raise (Unsupported "boolean expression in value position")

(** Boolean-position translation. *)
let rec boolean env (e : expr) : Relsql.Sql_ast.expr =
  match e with
  | E_and (a, b) -> Relsql.Sql_ast.Binop (Relsql.Sql_ast.And, boolean env a, boolean env b)
  | E_or (a, b) -> Relsql.Sql_ast.Binop (Relsql.Sql_ast.Or, boolean env a, boolean env b)
  | E_not e -> Relsql.Sql_ast.Not (boolean env e)
  | E_bound v ->
    (match env.var_col v with
     | Some c -> Relsql.Sql_ast.Is_not_null c
     | None -> Relsql.Sql_ast.Const (Relsql.Value.Bool false))
  | E_cmp (op, a, b) ->
    let a = operand env a and b = operand env b in
    let bop = cmp_to_binop op in
    Relsql.Sql_ast.Case
      ( [ ( Relsql.Sql_ast.Binop
              ( Relsql.Sql_ast.And,
                Relsql.Sql_ast.Is_not_null a.o_num,
                Relsql.Sql_ast.Is_not_null b.o_num ),
            Relsql.Sql_ast.Binop (bop, a.o_num, b.o_num) ) ],
        Some (Relsql.Sql_ast.Binop (bop, a.o_term, b.o_term)) )
  | E_regex (e, pattern) ->
    if String.exists (fun c -> c = '%' || c = '_') pattern then
      raise (Unsupported "REGEX pattern with LIKE metacharacters");
    let o = operand env e in
    Relsql.Sql_ast.Like (o.o_txt, "%" ^ pattern ^ "%")
  | E_const (Rdf.Term.Lit { lex; datatype = Some dt; _ })
    when dt = "http://www.w3.org/2001/XMLSchema#boolean" ->
    Relsql.Sql_ast.Const (Relsql.Value.Bool (lex = "true" || lex = "1"))
  | E_var _ | E_const _ | E_arith _ ->
    raise (Unsupported "non-boolean expression as filter")

(** Build the filter SELECT: projects [out_cols] (column name ->
    source expression over alias [prev_alias]) from CTE [prev], LEFT
    JOINs DICT for each decoded variable, and applies the translated
    predicate. [var_cols] maps each in-scope variable to its column
    name in [prev]. *)
let filter_select ~prev ~(var_cols : (string * string) list) (e : expr) :
  Relsql.Sql_ast.select =
  let alias = "F" in
  let dict_aliases = Hashtbl.create 8 in
  let joins = ref [] in
  List.iteri
    (fun i v ->
      if not (Hashtbl.mem dict_aliases v) then
        match List.assoc_opt v var_cols with
        | Some colname ->
          let d = Printf.sprintf "FD%d" i in
          Hashtbl.add dict_aliases v d;
          joins :=
            {
              Relsql.Sql_ast.kind = Relsql.Sql_ast.Left_outer;
              item =
                Relsql.Sql_ast.From_table
                  { table = Dict_table.table_name; alias = d };
              on =
                Some
                  (Relsql.Sql_ast.eq
                     (Relsql.Sql_ast.col ~table:d "id")
                     (Relsql.Sql_ast.col ~table:alias colname));
            }
            :: !joins
        | None -> ())
    (decode_vars e);
  let env =
    {
      var_col =
        (fun v ->
          Option.map
            (fun c -> Relsql.Sql_ast.col ~table:alias c)
            (List.assoc_opt v var_cols));
      dict_alias = (fun v -> Hashtbl.find_opt dict_aliases v);
    }
  in
  let where = boolean env e in
  {
    Relsql.Sql_ast.empty_select with
    items =
      List.map
        (fun (_, c) ->
          { Relsql.Sql_ast.expr = Relsql.Sql_ast.col ~table:alias c;
            alias = Some c })
        var_cols;
    from = Some (Relsql.Sql_ast.From_table { table = prev; alias });
    joins = List.rev !joins;
    where = Some where;
  }
