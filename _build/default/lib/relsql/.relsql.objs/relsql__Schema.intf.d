lib/relsql/schema.mli: Format
