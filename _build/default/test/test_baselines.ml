(** Tests specific to the baseline stores: schema shape, selectivity
    ordering, and the structural costs the paper attributes to each
    layout. *)

open Db2rdf

let test_triple_store_shape () =
  let ts = Triple_store.create () in
  Triple_store.load ts (Helpers.fig1_triples ());
  (* A 4-predicate star becomes 4 accesses to TRIPLES: the generated
     statement must reference the triple table once per pattern. *)
  let q =
    Sparql.Parser.parse
      "SELECT ?s WHERE { ?s <industry> ?a . ?s <employees> ?b . ?s <HQ> ?c }"
  in
  let stmt = Triple_store.translate ts q in
  Alcotest.(check int) "one CTE per triple pattern" 3
    (List.length stmt.Relsql.Sql_ast.ctes);
  let sql = Relsql.Sql_pp.to_string stmt in
  Alcotest.(check bool) "references TRIPLES" true (Helpers.contains sql "TRIPLES")

let test_vertical_store_shape () =
  let vs = Vertical_store.create () in
  Vertical_store.load vs (Helpers.fig1_triples ());
  (* One relation per predicate: 13 predicates in Figure 1(a). *)
  Alcotest.(check int) "13 predicate relations" 13 (Vertical_store.relation_count vs);
  let q = Sparql.Parser.parse "SELECT ?s WHERE { ?s <industry> ?a . ?s <HQ> ?c }" in
  let stmt = Vertical_store.translate vs q in
  let sql = Relsql.Sql_pp.to_string stmt in
  Alcotest.(check bool) "references COL_ tables" true (Helpers.contains sql "COL_")

let test_vertical_var_predicate_unions_all () =
  let vs = Vertical_store.create () in
  Vertical_store.load vs (Helpers.fig1_triples ());
  let q = Sparql.Parser.parse "SELECT ?p ?o WHERE { <Android> ?p ?o }" in
  let stmt = Vertical_store.translate vs q in
  let sql = Relsql.Sql_pp.to_string stmt in
  (* The variable-predicate access must union every predicate table. *)
  let count_occurrences s sub =
    let n = ref 0 in
    let ls = String.length sub in
    for i = 0 to String.length s - ls do
      if String.sub s i ls = sub then incr n
    done;
    !n
  in
  Alcotest.(check bool) "unions all 13 tables" true
    (count_occurrences sql "COL_" >= 13)

let test_vertical_unknown_predicate_empty () =
  let vs = Vertical_store.create () in
  Vertical_store.load vs (Helpers.fig1_triples ());
  let q = Sparql.Parser.parse "SELECT ?s WHERE { ?s <nothere> ?o }" in
  let r = Vertical_store.query vs q in
  Alcotest.(check int) "no rows" 0 (List.length r.Sparql.Ref_eval.rows)

let test_bottom_up_ordering () =
  (* Selectivity ordering: the constant-object triple must be placed
     before the unselective scan-ish triple. *)
  let ts = Triple_store.create () in
  Triple_store.load ts (Helpers.fig1_triples ());
  let q =
    Sparql.Parser.parse
      "SELECT ?s ?o WHERE { ?s <industry> ?o . ?s <HQ> \"Armonk\" }"
  in
  let pt = Sparql.Pattern_tree.of_query q in
  let etree = Bottom_up.exec_tree pt (ts.Triple_store.stats) ts.Triple_store.dict in
  match etree with
  | Exec_tree.And (Exec_tree.Leaf (first, _), _) ->
    Alcotest.(check int) "selective triple first (t1: HQ=Armonk)" 1 first
  | _ -> Alcotest.fail "expected And(Leaf, _)"

let test_dict_table_sync () =
  let ts = Triple_store.create () in
  Triple_store.load ts (Helpers.fig1_triples ());
  let dict_tbl = Relsql.Database.find_exn ts.Triple_store.db "DICT" in
  Alcotest.(check int) "DICT covers the dictionary"
    (Rdf.Dictionary.size ts.Triple_store.dict)
    (Relsql.Table.row_count dict_tbl)

let test_native_store_is_oracle () =
  let triples = Helpers.fig1_triples () in
  let ns = Native_store.create () in
  Native_store.load ns triples;
  let g = Helpers.oracle_of triples in
  List.iter
    (fun (_, src) ->
      Helpers.check_store_vs_oracle g (Native_store.to_store ns) src)
    [ ("q", Helpers.fig6_query_src) ]

let suite =
  [ Alcotest.test_case "triple store translation shape" `Quick test_triple_store_shape;
    Alcotest.test_case "vertical store schema explosion" `Quick test_vertical_store_shape;
    Alcotest.test_case "vertical var-predicate union" `Quick test_vertical_var_predicate_unions_all;
    Alcotest.test_case "vertical unknown predicate" `Quick test_vertical_unknown_predicate_empty;
    Alcotest.test_case "bottom-up selectivity ordering" `Quick test_bottom_up_ordering;
    Alcotest.test_case "DICT table sync" `Quick test_dict_table_sync;
    Alcotest.test_case "native store vs oracle" `Quick test_native_store_is_oracle ]
