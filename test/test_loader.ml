(** Tests for the DB2RDF loader: placement, spills, multi-value
    indirection, and full round-trip of the stored data. *)

open Db2rdf

let small_layout = Layout.make ~dph_cols:4 ~rph_cols:4

(** Reconstruct the triple set from the DPH/DS relations by scanning. *)
let triples_from_dph store : (int * int * int) list =
  let db = Loader.database store in
  let dph = Relsql.Database.find_exn db "DPH" in
  let ds = Relsql.Database.find_exn db "DS" in
  let k = Loader.column_count store Loader.Direct in
  let schema = Relsql.Table.schema dph in
  let pos = Layout.positions schema k in
  let ds_values lid =
    List.filter_map
      (fun rid ->
        match Relsql.Table.get ds rid with
        | [| _; Relsql.Value.Int o |] -> Some o
        | _ -> None)
      (Array.to_list (Relsql.Table.lookup ds 0 (Relsql.Value.Lid lid)))
  in
  Relsql.Table.fold
    (fun acc _ row ->
      let s =
        match row.(pos.Layout.entry_pos) with
        | Relsql.Value.Int s -> s
        | _ -> failwith "bad entry"
      in
      let acc = ref acc in
      for c = 0 to k - 1 do
        match row.(pos.Layout.pred_pos.(c)) with
        | Relsql.Value.Int p ->
          (match row.(pos.Layout.val_pos.(c)) with
           | Relsql.Value.Int o -> acc := (s, p, o) :: !acc
           | Relsql.Value.Lid lid ->
             List.iter (fun o -> acc := (s, p, o) :: !acc) (ds_values lid)
           | _ -> failwith "bad val")
        | Relsql.Value.Null -> ()
        | _ -> failwith "bad pred"
      done;
      !acc)
    [] dph

let ids_of_triples store triples =
  let dict = Loader.dictionary store in
  List.map
    (fun (tr : Rdf.Triple.t) ->
      ( Option.get (Rdf.Dictionary.find dict tr.s),
        Option.get (Rdf.Dictionary.find dict tr.p),
        Option.get (Rdf.Dictionary.find dict tr.o) ))
    triples

let test_roundtrip_fig1 () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:small_layout () in
  Loader.load store triples;
  let stored = List.sort_uniq compare (triples_from_dph store) in
  let expected = List.sort_uniq compare (ids_of_triples store triples) in
  Alcotest.(check int) "same count" (List.length expected) (List.length stored);
  Alcotest.(check bool) "same set" true (stored = expected)

let test_multivalued_registry () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:small_layout () in
  Loader.load store triples;
  let dict = Loader.dictionary store in
  let pid name = Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri name)) in
  Alcotest.(check bool) "industry is multi-valued (direct)" true
    (Loader.is_multivalued store Loader.Direct ~pred_id:(pid "industry"));
  Alcotest.(check bool) "born is single-valued (direct)" false
    (Loader.is_multivalued store Loader.Direct ~pred_id:(pid "born"));
  (* reverse side: founder into Google from two subjects? no — one each;
     but industry "Software" has two incoming industry edges. *)
  Alcotest.(check bool) "industry multi-valued (reverse)" true
    (Loader.is_multivalued store Loader.Reverse ~pred_id:(pid "industry"))

let test_dedup () =
  let store = Loader.create ~layout:small_layout () in
  let t = Rdf.Triple.spo "s" "p" (Rdf.Term.lit "o") in
  Loader.insert store t;
  Loader.insert store t;
  Alcotest.(check int) "loaded once" 1 (Loader.triples_loaded store);
  Alcotest.(check int) "one DPH tuple" 1 (Loader.report store Loader.Direct).Loader.rows

let test_spill_rows_marked () =
  (* Force spills: 1-column layout, subject with 3 distinct predicates. *)
  let layout = Layout.make ~dph_cols:1 ~rph_cols:4 in
  let store =
    Loader.create ~layout ~direct_map:(Pred_map.hashed ~m:1 ~seed:1) ()
  in
  let s = Rdf.Term.iri "s" in
  List.iter
    (fun p -> Loader.insert store (Rdf.Triple.make s (Rdf.Term.iri p) (Rdf.Term.lit p)))
    [ "p1"; "p2"; "p3" ];
  let report = Loader.report store Loader.Direct in
  Alcotest.(check int) "3 rows" 3 report.Loader.rows;
  Alcotest.(check int) "2 spills" 2 report.Loader.spills;
  (* All rows of a spilled entity carry spill = 1. *)
  let dph = Relsql.Database.find_exn (Loader.database store) "DPH" in
  Relsql.Table.iter
    (fun _ row ->
      Alcotest.(check bool) "spill flag" true
        (Relsql.Value.equal row.(1) (Relsql.Value.Int 1)))
    dph;
  (* Spilled predicates are registered; queries still answer. *)
  let dict = Loader.dictionary store in
  let spilled =
    List.filter
      (fun p ->
        Loader.is_spill_involved store Loader.Direct
          ~pred_id:(Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri p))))
      [ "p1"; "p2"; "p3" ]
  in
  Alcotest.(check int) "two spill-involved predicates" 2 (List.length spilled)

let test_null_fraction_and_storage () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:(Layout.make ~dph_cols:8 ~rph_cols:8) () in
  Loader.load store triples;
  let r = Loader.report store Loader.Direct in
  Alcotest.(check bool) "nulls present" true (r.Loader.null_fraction > 0.0);
  Alcotest.(check bool) "storage accounted" true (r.Loader.storage_bytes > 0)

let test_candidate_columns_respect_map () =
  let store = Loader.create ~layout:small_layout () in
  let cands = Loader.candidate_columns store Loader.Direct ~pred_term:(Rdf.Term.iri "p") in
  Alcotest.(check bool) "within layout" true
    (List.for_all (fun c -> c >= 0 && c < 4) cands)

(* Property: round-trip holds for random data under tight layouts
   (heavy spilling) and wide layouts alike, on both sides. *)
let roundtrip_random =
  QCheck.Test.make ~name:"loader round-trip under random data/layout" ~count:40
    QCheck.(
      make
        Gen.(
          pair (int_range 1 6)
            (list_size (int_range 1 150)
               (triple (int_range 0 25) (int_range 0 12) (int_range 0 25)))))
    (fun (k, specs) ->
      let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i) in
      let triples =
        List.map
          (fun (s, p, o) -> Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o))
          specs
      in
      let store = Loader.create ~layout:(Layout.make ~dph_cols:k ~rph_cols:k) () in
      Loader.load store triples;
      let stored = List.sort_uniq compare (triples_from_dph store) in
      let expected = List.sort_uniq compare (ids_of_triples store triples) in
      stored = expected)

let suite =
  [ Alcotest.test_case "round-trip fig1" `Quick test_roundtrip_fig1;
    Alcotest.test_case "multi-valued registry" `Quick test_multivalued_registry;
    Alcotest.test_case "duplicate triples ignored" `Quick test_dedup;
    Alcotest.test_case "spill rows marked" `Quick test_spill_rows_marked;
    Alcotest.test_case "null fraction / storage" `Quick test_null_fraction_and_storage;
    Alcotest.test_case "candidate columns" `Quick test_candidate_columns_respect_map;
    QCheck_alcotest.to_alcotest roundtrip_random ]
