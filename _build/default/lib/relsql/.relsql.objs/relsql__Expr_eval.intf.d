lib/relsql/expr_eval.mli: Sql_ast Value
