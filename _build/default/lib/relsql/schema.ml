(** Relation schemas: an ordered list of column names with O(1) position
    lookup. The engine is dynamically typed, so a schema carries no type
    information — columns acquire the type of the values stored in them,
    exactly as the DB2RDF layout requires (the same physical [val_i]
    column stores objects of many predicates). *)

type t = {
  cols : string array;
  positions : (string, int) Hashtbl.t;
}

let make names =
  let cols = Array.of_list names in
  let positions = Hashtbl.create (Array.length cols * 2) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem positions name then
        invalid_arg ("Schema.make: duplicate column " ^ name);
      Hashtbl.add positions name i)
    cols;
  { cols; positions }

let arity t = Array.length t.cols

let columns t = Array.to_list t.cols

let column t i = t.cols.(i)

(** [position t name] is the index of column [name], if present. *)
let position t name = Hashtbl.find_opt t.positions name

let position_exn t name =
  match position t name with
  | Some i -> i
  | None -> invalid_arg ("Schema: no such column " ^ name)

let mem t name = Hashtbl.mem t.positions name

let pp fmt t =
  Format.fprintf fmt "(%s)" (String.concat ", " (columns t))
