examples/lubm_university.ml: Db2rdf List Printf Rdf Sparql String Workloads
