lib/core/native_store.mli: Rdf Sparql Store
