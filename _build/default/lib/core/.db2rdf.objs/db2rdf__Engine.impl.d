lib/core/engine.ml: Coloring Cost Dataflow Dict_table Exec_tree Hashtbl Layout List Loader Merge Option Rdf Relsql Results Sparql Sqlgen Store String
