(** Access methods and the triple-method cost function TMC
    (Definition 3.1, Section 3.1.1).

    DB2RDF has subject and object indexes only (the [entry] columns), so
    the methods are access-by-subject [Acs], access-by-object [Aco] and
    full scan [Sc] — exactly the method set M of the paper's example. *)

type access = Sc | Acs | Aco

let access_to_string = function Sc -> "sc" | Acs -> "acs" | Aco -> "aco"

(** [tmc stats dict tp m] estimates the rows touched when evaluating
    triple pattern [tp] with method [m]:
    - a constant-entry lookup costs the constant's known frequency
      (e.g. TMC(t4, aco) = 2 for ["Software"] in the running example);
    - a variable-entry lookup costs the average triples per subject
      (resp. object), assuming the variable is bound by a prior access;
    - a scan costs the total number of triples. *)
let tmc (stats : Dataset_stats.t) (dict : Rdf.Dictionary.t)
    (tp : Sparql.Ast.triple_pat) (m : access) : float =
  (* Per-predicate fan-out when the predicate is a known constant: the
     expected rows from probing by the variable entity. This is the
     "precision left to implementations" hook of Section 3.1 — it is
     what steers triangle-closing triples toward the low-fan-out side
     (probe a person's few degree edges, not a university's thousands
     of incoming ones). *)
  let pred_avg per_pred fallback =
    match tp.tp_p with
    | Sparql.Ast.Term t ->
      (match Rdf.Dictionary.find dict t with
       | Some pid -> per_pred stats pid
       | None -> 1.0 (* unknown predicate: empty *))
    | Sparql.Ast.Var _ -> fallback stats
  in
  match m with
  | Sc -> float_of_int (Dataset_stats.total stats)
  | Acs ->
    (match tp.tp_s with
     | Sparql.Ast.Term t ->
       (match Rdf.Dictionary.find dict t with
        | Some id ->
          (match Dataset_stats.subject_frequency stats id with
           | Some n -> float_of_int n
           | None -> Dataset_stats.avg_triples_per_subject stats)
        | None -> 1.0 (* unknown constant: empty result *))
     | Sparql.Ast.Var _ ->
       pred_avg Dataset_stats.avg_per_subject_of_pred
         Dataset_stats.avg_triples_per_subject)
  | Aco ->
    (match tp.tp_o with
     | Sparql.Ast.Term t ->
       (match Rdf.Dictionary.find dict t with
        | Some id ->
          (match Dataset_stats.object_frequency stats id with
           | Some n -> float_of_int n
           | None -> Dataset_stats.avg_triples_per_object stats)
        | None -> 1.0)
     | Sparql.Ast.Var _ ->
       pred_avg Dataset_stats.avg_per_object_of_pred
         Dataset_stats.avg_triples_per_object)

(** Estimated matches of a triple pattern regardless of access path —
    the selectivity estimate the bottom-up baseline translators order
    BGPs by (Stocker et al.-style). *)
let triple_selectivity (stats : Dataset_stats.t) (dict : Rdf.Dictionary.t)
    (tp : Sparql.Ast.triple_pat) : float =
  let const_freq lookup = function
    | Sparql.Ast.Term t ->
      (match Rdf.Dictionary.find dict t with
       | Some id ->
         (match lookup id with
          | Some n -> Some (float_of_int n)
          | None -> Some 1.0)
       | None -> Some 0.0)
    | Sparql.Ast.Var _ -> None
  in
  let total = float_of_int (max 1 (Dataset_stats.total stats)) in
  let s = const_freq (Dataset_stats.subject_frequency stats) tp.tp_s in
  let o = const_freq (Dataset_stats.object_frequency stats) tp.tp_o in
  let p = const_freq (Dataset_stats.predicate_frequency stats) tp.tp_p in
  let min_opt a b =
    match a, b with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  match min_opt (min_opt s o) p with Some x -> x | None -> total

(* ------------------------------------------------------------------ *)
(* Semi-join reduction selectivity                                     *)
(* ------------------------------------------------------------------ *)

(** Estimated fraction of DPH rows surviving the semi-join reduction
    for [(p1, p2, corr)] — the {!Relsql.Extvp} registry's estimator,
    consulted {e before} a reduction is built to decide whether
    building is worth it at all (S2RDF's ScaleUB gate). A DPH row
    stands for one entity (spill rows are rare), so row fractions are
    estimated over distinct subjects:
    - SS keeps rows whose entity carries both predicates — the
      characteristic-set covering count over all subjects;
    - SO keeps rows whose entity carries [p1] and appears as an object
      of [p2] — independence across the two memberships;
    - OS keeps rows that carry [p1] with a value that is a subject of
      [p2] — the row must hold [p1] at all, scaled by the chance its
      object is a [p2]-subject. *)
let extvp_selectivity (stats : Dataset_stats.t)
    (key : Relsql.Extvp.key) : float =
  let n = float_of_int (max 1 (Dataset_stats.distinct_subjects stats)) in
  let frac count = Float.min 1.0 (float_of_int count /. n) in
  let pred_subjects p =
    Option.value ~default:0 (Dataset_stats.predicate_subjects stats p)
  in
  let pred_objects p =
    Option.value ~default:0 (Dataset_stats.predicate_objects stats p)
  in
  match key.Relsql.Extvp.corr with
  | Relsql.Extvp.SS ->
    frac
      (Dataset_stats.cs_subject_count stats
         [ key.Relsql.Extvp.p1; key.Relsql.Extvp.p2 ])
  | Relsql.Extvp.SO ->
    frac (pred_subjects key.Relsql.Extvp.p1)
    *. frac (pred_objects key.Relsql.Extvp.p2)
  | Relsql.Extvp.OS ->
    frac (pred_subjects key.Relsql.Extvp.p1)
    *. frac (pred_subjects key.Relsql.Extvp.p2)

(* ------------------------------------------------------------------ *)
(* WCOJ selection from characteristic sets                             *)
(* ------------------------------------------------------------------ *)

(** One parsed WCOJ atom in DB2RDF terms: the [entry] column (subject on
    DPH, object on RPH), the predicate id pinned on some [pred*] column,
    and the paired [val*] column. *)
type star_atom = {
  sa_entry : Relsql.Wcoj.term option;
  sa_pred : int option;
  sa_val : Relsql.Wcoj.term option;
}

let parse_atom (a : Relsql.Wcoj.atom) : star_atom =
  let starts_with pre c =
    String.length c >= String.length pre
    && String.sub c 0 (String.length pre) = pre
  in
  let entry = List.assoc_opt "entry" a.Relsql.Wcoj.w_cols in
  let pred =
    List.find_map
      (function
        | c, Relsql.Wcoj.W_const (Relsql.Value.Int pid)
          when starts_with "pred" c ->
          Some pid
        | _ -> None)
      a.Relsql.Wcoj.w_cols
  in
  let v =
    List.find_map
      (fun (c, t) -> if starts_with "val" c then Some t else None)
      a.Relsql.Wcoj.w_cols
  in
  { sa_entry = entry; sa_pred = pred; sa_val = v }

(** Statistics-informed choice between the binary join tree and the
    leapfrog operator (installed as the {!Relsql.Wcoj.selector} by
    {!Engine}).

    Cyclic join graphs — more column-class incidences than a spanning
    tree of atoms and variables can carry, e.g. triangles — always take
    the WCOJ path: that is where binary joins build intermediate results
    the worst-case-optimal bound avoids. Acyclic (star/path) regions use
    characteristic sets: each star's candidate-subject count is the
    number of subjects whose predicate set covers the star
    ({!Dataset_stats.cs_subject_count}), scaled down by constant-object
    selectivities.

    A {e single} star never takes the WCOJ path: under the
    entity-oriented DPH/RPH layout one star is one merged relation scan,
    so the multiway join can at best tie while paying trie-build cost.
    Leapfrog wins where the default pipeline pays one scan per star
    region — queries coupling two or more stars (snowflakes, entity
    chains) whose CS estimate undercuts the binary plan's estimate with
    margin, and cyclic shapes always. Two further vetoes on acyclic
    regions: a selective constant object hands the binary tree an index
    entry point (an object-index probe chain) that the leapfrog's full
    shared scan cannot match, and below {!wcoj_scan_floor} triples the
    trie build's constant factors never amortize. *)

(** Minimum store size (triples) for the acyclic chooser to pick the
    multiway join. Mutable so tests and experiments can exercise the
    chooser on small fixtures. *)
let wcoj_scan_floor = ref 100_000
let wcoj_decision (stats : Dataset_stats.t) (req : Relsql.Wcoj.request) :
    Relsql.Wcoj.decision =
  let atoms = req.Relsql.Wcoj.atoms in
  let n_atoms = List.length atoms in
  (* Join-graph cyclicity: atoms and variable classes as the two sides
     of an incidence graph; a connected acyclic graph has at most
     (#atoms + #vars - 1) edges. *)
  let incidences =
    List.fold_left
      (fun acc a -> acc + List.length (Relsql.Wcoj.atom_vars a))
      0 atoms
  in
  let cyclic = incidences > n_atoms + req.Relsql.Wcoj.n_vars - 1 in
  let parsed = List.map parse_atom atoms in
  (* Group star atoms by their entry variable class. *)
  let star_tbl : (int, star_atom list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun sa ->
      match sa.sa_entry with
      | Some (Relsql.Wcoj.W_var v) ->
        Hashtbl.replace star_tbl v
          (sa :: Option.value ~default:[] (Hashtbl.find_opt star_tbl v))
      | _ -> ())
    parsed;
  let stars =
    Hashtbl.fold (fun v atoms acc -> (v, atoms) :: acc) star_tbl []
    |> List.sort compare
  in
  let hub_width =
    List.fold_left (fun m (_, l) -> max m (List.length l)) 0 stars
  in
  let n_stars = List.length stars in
  (* CS estimate: per star, subjects covering the predicate set, scaled
     by each constant object's selectivity within its predicate. *)
  let star_est (_, sats) =
    match List.filter_map (fun sa -> sa.sa_pred) sats with
    | [] -> float_of_int (max 1 (Dataset_stats.total stats))
    | preds ->
      let base = float_of_int (Dataset_stats.cs_subject_count stats preds) in
      List.fold_left
        (fun acc sa ->
          match sa.sa_pred, sa.sa_val with
          | Some p, Some (Relsql.Wcoj.W_const (Relsql.Value.Int oid)) ->
            let ptotal =
              float_of_int
                (max 1
                   (Option.value ~default:1
                      (Dataset_stats.predicate_frequency stats p)))
            in
            let ofreq =
              float_of_int
                (Option.value ~default:1
                   (Dataset_stats.object_frequency stats oid))
            in
            acc *. Float.min 1.0 (ofreq /. ptotal)
          | _ -> acc)
        base sats
  in
  let cs_est =
    match stars with
    | [] -> float_of_int req.Relsql.Wcoj.binary_est
    | _ ->
      (* Variable classes produced by some value column. A star whose
         hub is such a variable is reached by following an edge out of
         another star (snowflake/chain), so it filters rather than
         multiplies: its covering count over the dataset's subject
         count is the probability the referenced entity carries the
         star's predicate set. Free-standing hubs contribute their
         counts absolutely — multiplying every star absolutely would be
         a Cartesian bound that vetoes exactly the chained shapes the
         leapfrog is for. *)
      let referenced : (int, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun sa ->
          match sa.sa_val with
          | Some (Relsql.Wcoj.W_var v) -> Hashtbl.replace referenced v ()
          | _ -> ())
        parsed;
      let n_subjects =
        float_of_int (max 1 (Dataset_stats.distinct_subjects stats))
      in
      List.fold_left
        (fun acc ((v, _) as s) ->
          let e = star_est s in
          if Hashtbl.mem referenced v then
            acc *. Float.min 1.0 (e /. n_subjects)
          else acc *. e)
        1.0 stars
  in
  let est_rows =
    int_of_float (Float.min cs_est 1e15) |> max 0
  in
  let total = Dataset_stats.total stats in
  (* Cheapest object-index entry point the binary plan could probe
     from. Constant subjects don't count: the entry column is indexed,
     so the leapfrog's trie build probes those postings too. *)
  let min_obj_freq =
    List.fold_left
      (fun acc sa ->
        match sa.sa_val with
        | Some (Relsql.Wcoj.W_const (Relsql.Value.Int oid)) ->
          (match Dataset_stats.object_frequency stats oid with
           | Some f -> min acc f
           | None -> acc)
        | _ -> acc)
      max_int parsed
  in
  let index_shortcut =
    min_obj_freq < max_int / 8 && min_obj_freq * 8 <= total
  in
  let use_wcoj =
    cyclic
    || (n_stars >= 2
        && hub_width >= 3
        && total >= !wcoj_scan_floor
        && (not index_shortcut)
        && est_rows * 4 < max 1 req.Relsql.Wcoj.binary_est)
  in
  { Relsql.Wcoj.use_wcoj; est_rows }
