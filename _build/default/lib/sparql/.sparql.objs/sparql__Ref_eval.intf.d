lib/sparql/ref_eval.mli: Ast Map Rdf
