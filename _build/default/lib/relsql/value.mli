(** SQL values.

    The engine is dynamically typed: every cell holds a {!t}. [Null] is
    the SQL NULL and participates in three-valued logic (see
    {!Expr_eval}). [Lid] is a distinct identifier space used by the
    DB2RDF layer for the multi-value indirection between the primary
    (DPH/RPH) and secondary (DS/RS) hash relations; keeping it distinct
    from [Int] prevents an RDF-term id from ever colliding with a list
    id. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Real of float
  | Str of string
  | Lid of int

(** Total order over values, used by indexes, DISTINCT and ORDER BY.
    NULLs sort first; values of different runtime types are ordered by a
    fixed type rank. This ordering is only for data structures — SQL
    comparison semantics (where NULL is incomparable) live in
    {!Expr_eval}. *)
val compare : t -> t -> int

val equal : t -> t -> bool
val hash : t -> int
val is_null : t -> bool

(** Render a value as a SQL literal. Strings are single-quoted with
    quote doubling; [Lid] ids render as [lid:<n>]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Approximate on-disk size in bytes under the value-compression
    storage model of the Section 2.3 NULL experiment. NULLs are free
    (the per-row null bitmap in {!Table.storage_size} carries them). *)
val storage_size : t -> int

(** Numeric view used by arithmetic and ordered comparisons. *)
val as_float : t -> float option
