examples/enterprise_catalog.mli:
