(** SP²Bench-like DBLP workload (Schmidt et al.): bibliographic data
    with the benchmark's deep joins, ORDER BY, OPTIONALs, a genuinely
    multi-valued predicate (dcterms:references-style) and the deliberate
    cross-product query SQ4 that times out on every system at scale. *)

val ns : string
val u : string -> string

(** Generate roughly [scale] triples. Deterministic. *)
val generate : scale:int -> Rdf.Triple.t list

(** SQ1–SQ17. *)
val queries : (string * string) list
