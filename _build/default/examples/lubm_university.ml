(** University-benchmark scenario: generate a LUBM-like dataset, load it
    into all four stores, and compare them on a few analytically
    interesting questions (with inference pre-expanded into UNIONs, as
    the paper does for its LUBM runs).

    Run with: [dune exec examples/lubm_university.exe] *)

let ns = "http://lubm.org/univ#"

let queries =
  [ ( "Students advised by someone teaching a course they take",
      Printf.sprintf
        "SELECT ?student ?prof ?course WHERE { ?student <%sadvisor> ?prof . ?prof <%steacherOf> ?course . ?student <%stakesCourse> ?course }"
        ns ns ns );
    ( "Faculty of Department0 with contact details",
      Printf.sprintf
        "SELECT ?p ?name ?mail WHERE { { ?p <%stype> <%sFullProfessor> } UNION { ?p <%stype> <%sAssociateProfessor> } UNION { ?p <%stype> <%sAssistantProfessor> } . ?p <%sworksFor> <%sUniversity0/Department0> . ?p <%sname> ?name . ?p <%semailAddress> ?mail }"
        ns ns ns ns ns ns ns ns ns ns );
    ( "Graduate students and, when they have one, their TA course",
      Printf.sprintf
        "SELECT ?s ?c WHERE { ?s <%stype> <%sGraduateStudent> OPTIONAL { ?s <%steachingAssistantOf> ?c } } LIMIT 10"
        ns ns ns ) ]

(* RDFS inference by query expansion: ask for ?x type Person and let the
   ontology expand it over the whole class hierarchy (the paper did this
   rewriting by hand for its LUBM runs; Sparql.Inference automates it). *)
let inference_demo engine =
  let ontology = Workloads.Lubm.ontology () in
  let plain =
    Sparql.Parser.parse
      (Printf.sprintf "SELECT ?x WHERE { ?x <%stype> <%sPerson> }" ns ns)
  in
  let expanded = Sparql.Inference.expand_query ontology plain in
  let count q = List.length (Db2rdf.Engine.query engine q).Sparql.Ref_eval.rows in
  Printf.printf
    "\n== RDFS inference ==\nno Person is asserted directly: %d rows without \
     expansion;\nthe ontology-expanded query (%d type alternatives) finds %d \
     people.\n"
    (count plain)
    (List.length (Sparql.Inference.subclasses_of ontology (ns ^ "Person")))
    (count expanded)

let () =
  let triples = Workloads.Lubm.generate ~scale:30_000 in
  Printf.printf "generated %d LUBM-like triples\n%!" (List.length triples);
  let e, _, _ =
    Db2rdf.Engine.create_colored
      ~layout:(Db2rdf.Layout.make ~dph_cols:16 ~rph_cols:16) triples
  in
  let ts = Db2rdf.Triple_store.create () in
  Db2rdf.Triple_store.load ts triples;
  let ns_store = Db2rdf.Native_store.create () in
  Db2rdf.Native_store.load ns_store triples;
  let stores =
    [ Db2rdf.Engine.to_store e; Db2rdf.Triple_store.to_store ts;
      Db2rdf.Native_store.to_store ns_store ]
  in
  List.iter
    (fun (title, src) ->
      Printf.printf "\n== %s ==\n" title;
      let q = Sparql.Parser.parse src in
      List.iter
        (fun (store : Db2rdf.Store.t) ->
          match Db2rdf.Store.run ~timeout:30.0 store q with
          | Db2rdf.Store.Complete r, dt ->
            Printf.printf "%-12s %5d rows in %7.1f ms\n" store.Db2rdf.Store.name
              (List.length r.Sparql.Ref_eval.rows)
              (dt *. 1000.0)
          | outcome, _ ->
            Printf.printf "%-12s %s\n" store.Db2rdf.Store.name
              (Db2rdf.Store.outcome_to_string outcome))
        stores;
      (* Show a couple of answers from the DB2RDF store. *)
      let r = (List.hd stores).Db2rdf.Store.query q in
      List.iteri
        (fun i row ->
          if i < 3 then
            print_endline
              ("  e.g. "
              ^ String.concat ", "
                  (List.map
                     (function
                       | Some t -> Rdf.Term.to_string t
                       | None -> "-")
                     row)))
        r.Sparql.Ref_eval.rows)
    queries;
  inference_demo e
