(** A database is a named catalog of {!Table.t}. The executor materializes
    common table expressions into an overlay database so that CTE names
    resolve like ordinary tables without polluting the base catalog. *)

type t = {
  name : string;
  tables : (string, Table.t) Hashtbl.t;
  parent : t option; (* overlay chain used for CTE scopes *)
  mutable parallelism : int;
      (* domains the executor may use for statements against this
         database when the caller does not say otherwise *)
  mutable join_partitions : int;
      (* radix partitions for parallel hash-join builds; 0 = auto
         (sized from the domain count at execution time) *)
  mutable wcoj : bool;
      (* when set, the planner may replace eligible flat multiway joins
         with the leapfrog (worst-case-optimal) operator *)
  mutable wcoj_selector : Wcoj.selector option;
      (* statistics-informed chooser between the binary join tree and
         the leapfrog operator, installed by the layer that owns
         cardinality statistics; [None] disables WCOJ planning *)
  scan_cache : Scan_cache.t;
      (* shared scan-result cache; overlays alias their parent's so CTE
         scopes see (and warm) the same entries *)
  mutable extvp : Extvp.t option;
      (* semi-join-reduction registry; reduction tables resolve through
         {!find} without ever entering the catalog (so {!data_version}
         and statement stamps never see them), installed by the layer
         that owns the DPH layout *)
}

(** Parallelism adopted by databases at creation — the process-wide
    default behind the CLI's [--domains] flag, so every store backend
    (each creating its own catalog) picks it up without per-store
    plumbing. 1 = sequential execution. *)
let default_parallelism = ref 1

(** Radix partition count adopted at creation (the CLI's
    [--join-partitions] flag); 0 = auto. *)
let default_join_partitions = ref 0

(** When set (the CLI's [--compress] flag), store backends freeze their
    tables into bit-packed columnar form after bulk load. Purely
    physical — results are identical either way. *)
let default_compress = ref false

(** When set (the CLI's [--wcoj] flag), databases adopt WCOJ planning at
    creation: eligible multiway joins may run as a leapfrog join. *)
let default_wcoj = ref false

let create name =
  { name; tables = Hashtbl.create 16; parent = None;
    parallelism = max 1 !default_parallelism;
    join_partitions = max 0 !default_join_partitions;
    wcoj = !default_wcoj; wcoj_selector = None;
    scan_cache = Scan_cache.create (); extvp = None }

(** [overlay db] is a scratch database whose lookups fall back to [db].
    Tables created in the overlay shadow same-named tables beneath. *)
let overlay parent =
  { name = parent.name ^ "+"; tables = Hashtbl.create 8; parent = Some parent;
    parallelism = parent.parallelism;
    join_partitions = parent.join_partitions;
    wcoj = parent.wcoj; wcoj_selector = parent.wcoj_selector;
    scan_cache = parent.scan_cache; extvp = parent.extvp }

(** Set how many domains statements against this database may use. *)
let set_parallelism t n = t.parallelism <- max 1 n

let parallelism t = t.parallelism

(** Set the radix partition count for parallel hash-join builds
    (rounded up to a power of two by the executor); 0 = auto. *)
let set_join_partitions t n = t.join_partitions <- max 0 n

let join_partitions t = t.join_partitions

(** Enable or disable WCOJ planning for statements against this
    database. Purely a plan-shape knob — results are identical. *)
let set_wcoj t b = t.wcoj <- b

let wcoj t = t.wcoj

(** Install (or clear) the statistics-informed WCOJ selector. The
    planner only considers the leapfrog operator when both {!wcoj} is
    set and a selector is present. *)
let set_wcoj_selector t sel = t.wcoj_selector <- sel

let wcoj_selector t = t.wcoj_selector

let scan_cache t = t.scan_cache

(** Install (or clear) the semi-join-reduction registry. Reduction
    tables resolve through {!find} on demand but never join the
    catalog: {!data_version}, {!table_names} and {!freeze_all} do not
    see them. *)
let set_extvp t r = t.extvp <- r

let extvp t = t.extvp

let create_table t name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg ("Database.create_table: duplicate table " ^ name);
  let table = Table.create name schema in
  Hashtbl.add t.tables name table;
  table

(** Register an already-built table (e.g. a materialized CTE). Replaces
    any same-named table in this scope. *)
let add_table t table = Hashtbl.replace t.tables (Table.name table) table

let rec find t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> Some table
  | None ->
    (match t.parent with
     | Some p -> find p name
     | None ->
       (* Root scope: semi-join reductions materialize lazily on first
          resolve — this is the "first planner request" trigger. *)
       (match t.extvp with
        | Some r when Extvp.is_extvp_name name -> Extvp.resolve r name
        | _ -> None))

let find_exn t name =
  match find t name with
  | Some table -> table
  | None -> invalid_arg ("Database: no such table " ^ name)

let mem t name = find t name <> None

(** Whether [name] resolves to a table registered in an overlay scope —
    i.e. a materialized CTE whose rows live in the executor's batch
    stash, not in the table store. The leapfrog join reads table rows
    directly, so its planner eligibility check must exclude these. *)
let rec is_materialized t name =
  match t.parent with
  | None -> false (* root catalog: real row data *)
  | Some p -> Hashtbl.mem t.tables name || is_materialized p name

let drop_table t name = Hashtbl.remove t.tables name

(** Freeze every table in this scope (not the overlay parents) into
    compressed columnar form — the bulk-load epilogue of [--compress]
    runs. Subsequent writes thaw the touched table transparently. *)
let freeze_all t = Hashtbl.iter (fun _ tbl -> Table.freeze tbl) t.tables

(** Per-table {!Table.compression_report}s for this scope, sorted by
    table name ([rdfstore stats]). *)
let compression_reports t =
  Hashtbl.fold (fun _ tbl acc -> Table.compression_report tbl :: acc) t.tables []
  |> List.sort (fun a b ->
         String.compare a.Table.r_table b.Table.r_table)

(** [snapshot t] is an immutable copy-on-write view of the root
    catalog: every table is captured with {!Table.snapshot} (sharing
    the packed main, deep-copying delta rows and tombstones), so
    readers can keep scanning the snapshot while the writer mutates —
    later writes land in the live table's private delta side (or a
    freshly packed image on merge) without disturbing the view. The
    snapshot gets its own scan cache (caches are per-snapshot-valid;
    sharing one hash table across reader domains would race) and no
    reduction registry — reductions are recomputed from live state, a
    snapshot answers from its frozen base tables. The WCOJ selector is
    dropped too: it is a closure over the owner's live statistics, and
    a snapshot reader must not chase them while the writer mutates
    (WCOJ is a plan-shape knob, so results are unchanged). *)
let snapshot t =
  let s =
    { name = t.name ^ "@snap"; tables = Hashtbl.create 16; parent = None;
      parallelism = t.parallelism; join_partitions = t.join_partitions;
      wcoj = t.wcoj; wcoj_selector = None;
      scan_cache = Scan_cache.create (); extvp = None }
  in
  Hashtbl.iter
    (fun name tbl -> Hashtbl.add s.tables name (Table.snapshot tbl))
    t.tables;
  s

let table_names t =
  let rec collect t acc =
    let acc = Hashtbl.fold (fun name _ a -> name :: a) t.tables acc in
    match t.parent with Some p -> collect p acc | None -> acc
  in
  List.sort_uniq String.compare (collect t [])

(** A stamp over the catalog's data: folds every table's name and
    {!Table.version} (sorted, so hash iteration order is irrelevant).
    Any insert/update/delete — and any table created or dropped —
    changes the stamp, giving the engine's statement cache and the scan
    cache one shared invalidation signal instead of ad-hoc clears. *)
let data_version t =
  let items = ref [] in
  let rec collect t =
    Hashtbl.iter
      (fun name tbl -> items := (name, Table.version tbl) :: !items)
      t.tables;
    match t.parent with Some p -> collect p | None -> ()
  in
  collect t;
  List.fold_left
    (fun acc (name, v) -> (acc * 31) + Hashtbl.hash name + (v * 7))
    (17 + List.length !items)
    (List.sort compare !items)

(** Companion stamp over the catalog's physical encodings: folds every
    table's {!Table.enc_epoch}. Freezing or thawing changes it while
    {!data_version} stays put — the reduction registry stamps on both,
    so [--compress] stores rebuild packed reductions after a freeze. *)
let enc_version t =
  let items = ref [] in
  let rec collect t =
    Hashtbl.iter
      (fun name tbl -> items := (name, Table.enc_epoch tbl) :: !items)
      t.tables;
    match t.parent with Some p -> collect p | None -> ()
  in
  collect t;
  List.fold_left
    (fun acc (name, v) -> (acc * 31) + Hashtbl.hash name + (v * 7))
    (19 + List.length !items)
    (List.sort compare !items)

(** Third stamp over the catalog: folds every table's
    {!Table.delta_epoch}. Delta-side writes of frozen tables and
    delta-into-main merges change it without the cost of a re-encode —
    caches stamp on the [(data, enc, delta)] triple. *)
let delta_version t =
  let items = ref [] in
  let rec collect t =
    Hashtbl.iter
      (fun name tbl -> items := (name, Table.delta_epoch tbl) :: !items)
      t.tables;
    match t.parent with Some p -> collect p | None -> ()
  in
  collect t;
  List.fold_left
    (fun acc (name, v) -> (acc * 31) + Hashtbl.hash name + (v * 7))
    (23 + List.length !items)
    (List.sort compare !items)

(** Fold the delta side of every frozen table in this scope back into
    its packed main ({!Table.merge}); returns how many tables actually
    merged. The eager [rdfstore merge] / [Engine.merge] entry point. *)
let merge_all t =
  Hashtbl.fold
    (fun _ tbl n ->
      let before = Table.merge_count tbl in
      Table.merge tbl;
      n + (Table.merge_count tbl - before))
    t.tables 0
