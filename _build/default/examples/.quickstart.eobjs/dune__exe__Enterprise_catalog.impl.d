examples/enterprise_catalog.ml: Db2rdf List Printf Rdf Sparql String
