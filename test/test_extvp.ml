(** ExtVP-style semi-join reductions: the name codec, the registry's
    lazy build / threshold / budget / stamp lifecycle, planner
    substitution (an ExtvpScan in the physical plan), insert/delete and
    freeze/thaw invalidation, the options fingerprint, bit-identical
    results across the (domains × join-partitions × storage) matrix —
    and the packed range-predicate leaves that ride along in this PR. *)

let extvp_on = { Db2rdf.Engine.default_options with extvp = true }

(** Reductions are advisable only under the ScaleUB threshold, which
    no uniform toy dataset clears — force the registry so substitution
    exercises the full path regardless of measured selectivity. *)
let force_extvp e =
  match Db2rdf.Engine.extvp_registry e with
  | Some r -> Relsql.Extvp.set_force r true
  | None -> Alcotest.fail "engine has no reduction registry"

let registry e = Option.get (Db2rdf.Engine.extvp_registry e)
let micro_triples = lazy (Workloads.Micro.generate ~scale:600)

let load_engine ?(options = Db2rdf.Engine.default_options) () =
  let e = Db2rdf.Engine.create ~options () in
  Db2rdf.Engine.load e (Lazy.force micro_triples);
  e

let star3 =
  Printf.sprintf
    "SELECT ?s ?a ?b ?c WHERE { ?s <%s> ?a . ?s <%s> ?b . ?s <%s> ?c . }"
    (Workloads.Micro.sv 1) (Workloads.Micro.sv 2) (Workloads.Micro.sv 3)

let parse = Sparql.Parser.parse

(* ------------------------------------------------------------------ *)
(* Name codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_name_codec () =
  List.iter
    (fun corr ->
      let key = { Relsql.Extvp.p1 = 12; p2 = 345; corr } in
      let name = Relsql.Extvp.name_of_key key in
      Alcotest.(check bool) "reduction names are recognizable" true
        (Relsql.Extvp.is_extvp_name name);
      match Relsql.Extvp.key_of_name name with
      | Some k -> Alcotest.(check bool) "codec round-trips" true (k = key)
      | None -> Alcotest.failf "name %s does not parse back" name)
    [ Relsql.Extvp.SS; Relsql.Extvp.SO; Relsql.Extvp.OS ];
  Alcotest.(check bool) "base tables are not reduction names" false
    (Relsql.Extvp.is_extvp_name "DPH");
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "garbage name %S rejected" bad)
        true
        (Relsql.Extvp.key_of_name bad = None))
    [ "extvp$"; "extvp$xx$1$2"; "extvp$ss$one$2"; "extvp$ss$1"; "DPH" ]

(* ------------------------------------------------------------------ *)
(* Registry lifecycle on synthetic hooks                               *)
(* ------------------------------------------------------------------ *)

let toy_schema = Relsql.Schema.make [ "entry"; "v" ]

let mk_table name n =
  let t = Relsql.Table.create name toy_schema in
  for i = 0 to n - 1 do
    ignore
      (Relsql.Table.insert t [| Relsql.Value.Int i; Relsql.Value.Int (2 * i) |])
  done;
  t

(** A registry over synthetic hooks: predicate 1 reductions keep 10 of
    100 source rows (selective), predicate 2 reductions keep 90
    (rejected by the default 0.25 threshold); the stamp is a settable
    cell standing in for the database version counters. *)
let toy_registry () =
  let reg = Relsql.Extvp.create () in
  let version = ref 0 in
  let built = ref 0 in
  Relsql.Extvp.set_hooks reg
    ~builder:(fun key ->
      incr built;
      let kept = if key.Relsql.Extvp.p1 = 1 then 10 else 90 in
      (mk_table (Relsql.Extvp.name_of_key key) kept, 100, kept))
    ~stamp:(fun () -> (!version, 0, 0))
    ~estimator:(fun key -> if key.Relsql.Extvp.p1 = 1 then 0.1 else 0.9);
  (reg, version, built)

let k_good = { Relsql.Extvp.p1 = 1; p2 = 2; corr = Relsql.Extvp.SS }
let k_bad = { Relsql.Extvp.p1 = 2; p2 = 1; corr = Relsql.Extvp.SO }

let test_registry_lazy_build () =
  let reg, _, built = toy_registry () in
  Alcotest.(check bool) "selective key advisable from the estimate" true
    (Relsql.Extvp.advisable reg k_good);
  Alcotest.(check int) "advisable never builds" 0 !built;
  let name = Relsql.Extvp.name_of_key k_good in
  (match Relsql.Extvp.resolve reg name with
   | Some t -> Alcotest.(check int) "reduction has the kept rows" 10
                 (Relsql.Table.row_count t)
   | None -> Alcotest.fail "resolve failed");
  Alcotest.(check int) "first resolve builds" 1 !built;
  ignore (Relsql.Extvp.resolve reg name);
  Alcotest.(check int) "second resolve is a cache hit" 1 !built;
  let c = Relsql.Extvp.counters reg in
  Alcotest.(check int) "one hit counted" 1 c.Relsql.Extvp.hits;
  Alcotest.(check int) "one miss counted" 1 c.Relsql.Extvp.misses;
  Alcotest.(check bool) "non-reduction names resolve to nothing" true
    (Relsql.Extvp.resolve reg "DPH" = None)

let test_registry_threshold_rejection () =
  let reg, _, built = toy_registry () in
  Alcotest.(check bool) "unselective key not advisable" false
    (Relsql.Extvp.advisable reg k_bad);
  (* An executor may still demand the table (a cached statement built
     when it was advisable): the build must succeed, but the measured
     selectivity lands it in the rejected memo, not the cache. *)
  let name = Relsql.Extvp.name_of_key k_bad in
  Alcotest.(check bool) "rejected reduction still resolves" true
    (Relsql.Extvp.resolve reg name <> None);
  Alcotest.(check int) "rejection counted" 1
    (Relsql.Extvp.counters reg).Relsql.Extvp.rejections;
  Alcotest.(check int) "rejected build not cached" 0
    (Relsql.Extvp.cached_count reg);
  Alcotest.(check bool) "measured-over-threshold key stays unadvisable"
    false
    (Relsql.Extvp.advisable reg k_bad);
  (* The one-slot scratch serves repeated resolves without rebuilding. *)
  ignore (Relsql.Extvp.resolve reg name);
  Alcotest.(check int) "re-resolve reuses the scratch slot" 1 !built;
  (* Forcing flips both decisions without touching the counters' past. *)
  Relsql.Extvp.set_force reg true;
  Alcotest.(check bool) "forced mode makes everything advisable" true
    (Relsql.Extvp.advisable reg k_bad)

let test_registry_budget_lru () =
  let reg, _, _ = toy_registry () in
  let resolve k = ignore (Relsql.Extvp.resolve reg (Relsql.Extvp.name_of_key k)) in
  resolve k_good;
  let one =
    match Relsql.Extvp.cached reg with
    | [ (_, _, bytes) ] -> bytes
    | _ -> Alcotest.fail "expected exactly one cached reduction"
  in
  (* Budget for one and a half reductions: caching a second evicts the
     least recently used first one. *)
  Relsql.Extvp.set_budget_bytes reg (one * 3 / 2);
  resolve { k_good with p2 = 3 };
  Alcotest.(check int) "LRU eviction keeps one entry" 1
    (Relsql.Extvp.cached_count reg);
  Alcotest.(check int) "eviction counted" 1
    (Relsql.Extvp.counters reg).Relsql.Extvp.evictions;
  (* The evicted reduction rebuilds on demand — deterministically, so
     no invalidation is involved. *)
  resolve k_good;
  Alcotest.(check int) "no invalidation on eviction rebuild" 0
    (Relsql.Extvp.counters reg).Relsql.Extvp.invalidations

let test_registry_stamp_invalidation () =
  let reg, version, built = toy_registry () in
  let name = Relsql.Extvp.name_of_key k_good in
  ignore (Relsql.Extvp.resolve reg name);
  incr version;
  (match Relsql.Extvp.resolve reg name with
   | Some t -> Alcotest.(check int) "rebuilt at the new stamp" 10
                 (Relsql.Table.row_count t)
   | None -> Alcotest.fail "resolve failed after stamp change");
  Alcotest.(check int) "stale entry rebuilt" 2 !built;
  Alcotest.(check int) "invalidation counted" 1
    (Relsql.Extvp.counters reg).Relsql.Extvp.invalidations

(* ------------------------------------------------------------------ *)
(* Planner substitution                                                *)
(* ------------------------------------------------------------------ *)

let test_substitution_in_plan () =
  let base = load_engine () in
  let e = load_engine ~options:extvp_on () in
  force_extvp e;
  let q = parse star3 in
  Alcotest.(check bool) "physical plan substitutes a reduction" true
    (Helpers.contains (Db2rdf.Engine.explain e q) "ExtvpScan");
  Alcotest.(check bool) "default plan does not" false
    (Helpers.contains (Db2rdf.Engine.explain base q) "ExtvpScan");
  Alcotest.(check bool) "reduced answers match the base pipeline" true
    (Sparql.Ref_eval.equal_results
       (Db2rdf.Engine.query base q)
       (Db2rdf.Engine.query e q));
  Alcotest.(check bool) "queries populated the registry" true
    (Relsql.Extvp.cached_count (registry e) > 0)

let test_options_fingerprint_distinct () =
  let fp = Db2rdf.Engine.options_fingerprint in
  let d = Db2rdf.Engine.default_options in
  Alcotest.(check bool) "extvp flips the fingerprint" true
    (fp d <> fp { d with extvp = true });
  Alcotest.(check bool) "threshold flips the fingerprint" true
    (fp extvp_on <> fp { extvp_on with extvp_threshold = 0.5 });
  Alcotest.(check bool) "budget flips the fingerprint" true
    (fp extvp_on <> fp { extvp_on with extvp_budget_mb = 8 })

(* ------------------------------------------------------------------ *)
(* Insert / delete invalidation                                        *)
(* ------------------------------------------------------------------ *)

let test_insert_delete_invalidation () =
  let base = load_engine () in
  let e = load_engine ~options:extvp_on () in
  force_extvp e;
  let q = parse star3 in
  let check msg =
    Alcotest.(check bool) msg true
      (Sparql.Ref_eval.equal_results
         (Db2rdf.Engine.query base q)
         (Db2rdf.Engine.query e q))
  in
  check "reduced answers match before the update";
  let tr =
    Rdf.Triple.make
      (Rdf.Term.iri "http://example.org/new-subject")
      (Rdf.Term.iri (Workloads.Micro.sv 1))
      (Rdf.Term.lit "fresh")
  in
  Db2rdf.Engine.insert base tr;
  Db2rdf.Engine.insert e tr;
  check "reduced answers match after an insert";
  Alcotest.(check bool) "stale reductions were invalidated" true
    ((Relsql.Extvp.counters (registry e)).Relsql.Extvp.invalidations > 0);
  Db2rdf.Engine.delete base tr;
  Db2rdf.Engine.delete e tr;
  check "reduced answers match after a delete"

(* ------------------------------------------------------------------ *)
(* Freeze / thaw invalidation                                          *)
(* ------------------------------------------------------------------ *)

let test_freeze_thaw_invalidation () =
  let base = load_engine () in
  let e = load_engine ~options:extvp_on () in
  force_extvp e;
  let reg = registry e in
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  let q = parse star3 in
  let want = Db2rdf.Engine.query base q in
  let eq = Sparql.Ref_eval.equal_results want in
  Alcotest.(check bool) "boxed reduced answers match" true
    (eq (Db2rdf.Engine.query e q));
  let resolved_frozen () =
    match Relsql.Extvp.cached reg with
    | (name, _, _) :: _ ->
      Relsql.Table.frozen (Option.get (Relsql.Extvp.resolve reg name))
    | [] -> Alcotest.fail "no cached reduction"
  in
  Alcotest.(check bool) "boxed store yields boxed reductions" false
    (resolved_frozen ());
  (* Freezing bumps every table's encoding epoch: the stamp folds it,
     so the cached boxed reductions are stale and the rebuilds inherit
     the packed representation. *)
  Relsql.Database.freeze_all db;
  Alcotest.(check bool) "frozen reduced answers match" true
    (eq (Db2rdf.Engine.query e q));
  Alcotest.(check bool) "freeze invalidated the boxed reductions" true
    ((Relsql.Extvp.counters reg).Relsql.Extvp.invalidations > 0);
  Alcotest.(check bool) "frozen store yields packed reductions" true
    (resolved_frozen ());
  List.iter
    (fun name -> Relsql.Table.thaw (Relsql.Database.find_exn db name))
    (Relsql.Database.table_names db);
  Alcotest.(check bool) "thawed reduced answers match" true
    (eq (Db2rdf.Engine.query e q));
  Alcotest.(check bool) "thawed store yields boxed reductions again" false
    (resolved_frozen ())

(* ------------------------------------------------------------------ *)
(* Equality matrix                                                     *)
(* ------------------------------------------------------------------ *)

let chain2 =
  (* Two stars coupled through ?a — exercises the cross-star SO/OS
     candidates, not just the intra-star SS prefilter. Micro objects
     are literals, so the second star matches nothing; the empty result
     must be empty on every path. *)
  Printf.sprintf
    "SELECT ?s ?a ?b WHERE { ?s <%s> ?a . ?s <%s> ?b . ?a <%s> ?c . }"
    (Workloads.Micro.sv 1) (Workloads.Micro.sv 2) (Workloads.Micro.sv 3)

let test_equality_matrix () =
  let queries = [ parse star3; parse chain2 ] in
  let base = load_engine () in
  let want = List.map (Db2rdf.Engine.query base) queries in
  List.iter
    (fun domains ->
      List.iter
        (fun join_partitions ->
          List.iter
            (fun compress ->
              let e =
                load_engine
                  ~options:
                    { extvp_on with
                      parallelism = domains; join_partitions; compress }
                  ()
              in
              force_extvp e;
              List.iter2
                (fun q w ->
                  Alcotest.(check bool)
                    (Printf.sprintf
                       "reduced ≡ base (domains=%d partitions=%d %s)" domains
                       join_partitions
                       (if compress then "packed" else "boxed"))
                    true
                    (Sparql.Ref_eval.equal_results w (Db2rdf.Engine.query e q)))
                queries want)
            [ false; true ])
        [ 1; 16 ])
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Packed range predicates (satellite)                                 *)
(* ------------------------------------------------------------------ *)

let test_packed_range_codes () =
  let nrows = 3000 in
  let cell rid _ =
    if rid mod 7 = 0 then Relsql.Value.Null else Relsql.Value.Int (rid mod 50)
  in
  let pk = Relsql.Packed.pack ~ncols:1 ~nrows cell ~live:(fun _ -> true) in
  let layout = [| (Some "T", "v") |] in
  let col = Relsql.Sql_ast.Col (Some "T", "v") in
  let exprs =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun v ->
            [ Relsql.Sql_ast.Binop (op, col, Relsql.Sql_ast.Const v);
              Relsql.Sql_ast.Binop (op, Relsql.Sql_ast.Const v, col) ])
          [ Relsql.Value.Int 25; Relsql.Value.Int 0; Relsql.Value.Int 49;
            Relsql.Value.Real 24.5; Relsql.Value.Real 3.0 ])
      [ Relsql.Sql_ast.Lt; Relsql.Sql_ast.Leq; Relsql.Sql_ast.Gt;
        Relsql.Sql_ast.Geq ]
  in
  List.iter
    (fun e ->
      match Relsql.Packed.compile_code_pred pk layout e with
      | None -> Alcotest.fail "range over a Direct column must compile"
      | Some f ->
        let want = Relsql.Expr_eval.compile_pred layout e in
        for rid = 0 to nrows - 1 do
          let row = [| cell rid 0 |] in
          if f rid <> want row then
            Alcotest.failf "row %d disagrees on %s" rid
              (Relsql.Sql_pp.expr_to_string e)
        done)
    exprs;
  (* Non-numeric constants stay on the decoded path. *)
  Alcotest.(check bool) "string range falls back to decoded evaluation" true
    (Relsql.Packed.compile_code_pred pk layout
       (Relsql.Sql_ast.Binop
          (Relsql.Sql_ast.Lt, col, Relsql.Sql_ast.Const (Relsql.Value.Str "x")))
     = None)

let suite =
  [ Alcotest.test_case "name codec" `Quick test_name_codec;
    Alcotest.test_case "registry lazy build" `Quick test_registry_lazy_build;
    Alcotest.test_case "registry threshold rejection" `Quick
      test_registry_threshold_rejection;
    Alcotest.test_case "registry budget LRU" `Quick test_registry_budget_lru;
    Alcotest.test_case "registry stamp invalidation" `Quick
      test_registry_stamp_invalidation;
    Alcotest.test_case "substitution in plan" `Quick test_substitution_in_plan;
    Alcotest.test_case "options fingerprint distinct" `Quick
      test_options_fingerprint_distinct;
    Alcotest.test_case "insert/delete invalidation" `Quick
      test_insert_delete_invalidation;
    Alcotest.test_case "freeze/thaw invalidation" `Quick
      test_freeze_thaw_invalidation;
    Alcotest.test_case "equality matrix" `Slow test_equality_matrix;
    Alcotest.test_case "packed range codes" `Quick test_packed_range_codes ]
