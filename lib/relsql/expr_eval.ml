(** Scalar expression evaluation with SQL three-valued logic.

    Expressions are compiled once against a column layout (the ordered
    visible columns of the operator's input) into closures over the row
    array, so per-row evaluation does no name resolution. *)

open Sql_ast

(** Visible columns of an intermediate row: position [i] of a row array
    holds the column described by [layout.(i)]. *)
type layout = (string option * string) array

exception Unknown_column of string

let pp_colref (q, n) =
  match q with Some q -> q ^ "." ^ n | None -> n

(** Resolve a column reference against a layout. A qualified reference
    must match qualifier and name; an unqualified one matches by name and
    must be unambiguous. *)
let resolve (layout : layout) (q, n) =
  match q with
  | Some _ ->
    let rec find i =
      if i >= Array.length layout then raise (Unknown_column (pp_colref (q, n)))
      else if layout.(i) = (q, n) then i
      else find (i + 1)
    in
    find 0
  | None ->
    let matches = ref [] in
    Array.iteri (fun i (_, name) -> if name = n then matches := i :: !matches) layout;
    (match !matches with
     | [ i ] -> i
     | [] -> raise (Unknown_column n)
     | _ -> raise (Unknown_column (n ^ " (ambiguous)")))

(* Three-valued logic: SQL booleans are True / False / Unknown, where
   Unknown is represented by Value.Null. *)

let sql_not = function
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null
  | _ -> Value.Null

let sql_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, x -> x
  | x, Value.Bool true -> x
  | _ -> Value.Null

let sql_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, x -> x
  | x, Value.Bool false -> x
  | _ -> Value.Null

(* Ordering for (non-null) comparisons. Numeric comparisons coerce
   Int/Real; everything else uses the structural order, which agrees
   with SQL on same-typed operands. Int/Int — dictionary ids, the
   engine's dominant case — short-circuits past the float coercion. *)
let cmp_values a b =
  match a, b with
  | Value.Int x, Value.Int y -> Stdlib.compare (x : int) y
  | _ ->
    (match Value.as_float a, Value.as_float b with
     | Some x, Some y -> Stdlib.compare x y
     | _ -> Value.compare a b)

let cmp_holds op c =
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Leq -> c <= 0
  | Gt -> c > 0
  | Geq -> c >= 0
  | And | Or | Add | Sub | Mul | Div | Concat -> assert false

let compare_values op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ -> Value.Bool (cmp_holds op (cmp_values a b))

let arith op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
    (match Value.as_float a, Value.as_float b with
     | Some x, Some y ->
       let both_int =
         match a, b with Value.Int _, Value.Int _ -> true | _ -> false
       in
       let r =
         match op with
         | Add -> x +. y
         | Sub -> x -. y
         | Mul -> x *. y
         | Div -> if y = 0.0 then nan else x /. y
         | Eq | Neq | Lt | Leq | Gt | Geq | And | Or | Concat -> assert false
       in
       if Float.is_nan r then Value.Null
       else if both_int && op <> Div then Value.Int (int_of_float r)
       else Value.Real r
     | _ -> Value.Null)

let concat a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | _ ->
    let s = function
      | Value.Str s -> s
      | v -> Value.to_string v
    in
    Value.Str (s a ^ s b)

(* LIKE: % matches any sequence, _ any single char. *)
let like_match pattern text =
  let np = String.length pattern and nt = String.length text in
  let rec go p t =
    if p = np then t = nt
    else
      match pattern.[p] with
      | '%' ->
        let rec try_at t' = t' <= nt && (go (p + 1) t' || try_at (t' + 1)) in
        try_at t
      | '_' -> t < nt && go (p + 1) (t + 1)
      | c -> t < nt && text.[t] = c && go (p + 1) (t + 1)
  in
  go 0 0

let sql_like v pattern =
  match v with
  | Value.Null -> Value.Null
  | Value.Str s -> Value.Bool (like_match pattern s)
  | v -> Value.Bool (like_match pattern (Value.to_string v))

(** SQL booleans as an unboxed domain (the constructors are immediates,
    so predicate evaluation never allocates per row). *)
type tv = T_true | T_false | T_unknown

(** Compile an expression into a closure over rows shaped by [layout].
    Raises {!Unknown_column} at compile time for unresolvable columns. *)
let rec compile (layout : layout) (e : expr) : Value.t array -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Col (q, n) ->
    let i = resolve layout (q, n) in
    fun row -> row.(i)
  | Binop (And, a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row -> sql_and (fa row) (fb row)
  | Binop (Or, a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row -> sql_or (fa row) (fb row)
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row -> compare_values op (fa row) (fb row)
  | Binop (Concat, a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row -> concat (fa row) (fb row)
  | Binop (((Add | Sub | Mul | Div) as op), a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row -> arith op (fa row) (fb row)
  | Not e ->
    let f = compile layout e in
    fun row -> sql_not (f row)
  | Is_null e ->
    let f = compile layout e in
    fun row -> Value.Bool (Value.is_null (f row))
  | Is_not_null e ->
    let f = compile layout e in
    fun row -> Value.Bool (not (Value.is_null (f row)))
  | Case (whens, els) ->
    let whens =
      List.map (fun (c, v) -> (compile_tv layout c, compile layout v)) whens
    in
    let els = Option.map (compile layout) els in
    fun row ->
      let rec go = function
        | (c, v) :: rest ->
          (match c row with T_true -> v row | _ -> go rest)
        | [] -> (match els with Some f -> f row | None -> Value.Null)
      in
      go whens
  | Coalesce es ->
    let fs = List.map (compile layout) es in
    fun row ->
      let rec go = function
        | [] -> Value.Null
        | f :: rest ->
          let v = f row in
          if Value.is_null v then go rest else v
      in
      go fs
  | In_list (e, vs) ->
    let f = compile layout e in
    let set = Hashtbl.create (List.length vs) in
    List.iter (fun v -> Hashtbl.replace set v ()) vs;
    fun row ->
      let v = f row in
      if Value.is_null v then Value.Null
      else Value.Bool (Hashtbl.mem set v)
  | Like (e, pattern) ->
    let f = compile layout e in
    fun row -> sql_like (f row) pattern
  | Agg _ ->
    invalid_arg
      "Expr_eval.compile: aggregate outside an aggregate select list"

(* Predicates compile through an unboxed three-valued domain: the
   connectives and comparisons below never build a [Value.Bool] per row,
   which matters in scan and join inner loops where the filter runs once
   per candidate row. The constructors are immediates — no allocation. *)
and compile_tv (layout : layout) (e : expr) : Value.t array -> tv =
  match e with
  | Binop (And, a, b) ->
    let fa = compile_tv layout a and fb = compile_tv layout b in
    fun row ->
      (match fa row with
       | T_false -> T_false
       | T_true -> fb row
       | T_unknown -> (match fb row with T_false -> T_false | _ -> T_unknown))
  | Binop (Or, a, b) ->
    let fa = compile_tv layout a and fb = compile_tv layout b in
    fun row ->
      (match fa row with
       | T_true -> T_true
       | T_false -> fb row
       | T_unknown -> (match fb row with T_true -> T_true | _ -> T_unknown))
  | Not e ->
    let f = compile_tv layout e in
    fun row ->
      (match f row with
       | T_true -> T_false
       | T_false -> T_true
       | T_unknown -> T_unknown)
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), Col (q, n), Const c)
    when not (Value.is_null c) ->
    (* Column-vs-literal — the shape of every generated pred/obj filter;
       skipping the operand closures halves the cost of OR-chains over
       wide DPH rows. *)
    let i = resolve layout (q, n) in
    fun row ->
      let x = row.(i) in
      if Value.is_null x then T_unknown
      else if cmp_holds op (cmp_values x c) then T_true
      else T_false
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), Col (qa, na), Col (qb, nb)) ->
    let i = resolve layout (qa, na) and j = resolve layout (qb, nb) in
    fun row ->
      let x = row.(i) in
      if Value.is_null x then T_unknown
      else
        let y = row.(j) in
        if Value.is_null y then T_unknown
        else if cmp_holds op (cmp_values x y) then T_true
        else T_false
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row ->
      let x = fa row in
      if Value.is_null x then T_unknown
      else
        let y = fb row in
        if Value.is_null y then T_unknown
        else if cmp_holds op (cmp_values x y) then T_true
        else T_false
  | Is_null e ->
    let f = compile layout e in
    fun row -> if Value.is_null (f row) then T_true else T_false
  | Is_not_null e ->
    let f = compile layout e in
    fun row -> if Value.is_null (f row) then T_false else T_true
  | In_list (e, vs) ->
    let f = compile layout e in
    let set = Hashtbl.create (List.length vs) in
    List.iter (fun v -> Hashtbl.replace set v ()) vs;
    fun row ->
      let v = f row in
      if Value.is_null v then T_unknown
      else if Hashtbl.mem set v then T_true
      else T_false
  | e ->
    let f = compile layout e in
    fun row ->
      (match f row with
       | Value.Bool true -> T_true
       | Value.Bool false -> T_false
       | _ -> T_unknown)

(* Two-valued predicate compilation: [compile_true e] holds exactly when
   the three-valued evaluation of [e] is TRUE, [compile_false e] exactly
   when it is FALSE; the pair is mutually recursive through NOT. A filter
   only keeps TRUE rows, so Unknown can collapse to "no" at every level
   — which restores boolean short-circuiting that Kleene logic forbids.
   On a sparse wide row (DPH: most cells NULL) an OR-chain conjunct
   evaluates to Unknown under Kleene, forcing every later conjunct to
   run; here the first all-NULL conjunct is simply false and the AND
   stops. *)
let rec compile_true (layout : layout) (e : expr) : Value.t array -> bool =
  match e with
  | Binop (And, a, b) ->
    let fa = compile_true layout a and fb = compile_true layout b in
    fun row -> fa row && fb row
  | Binop (Or, a, b) ->
    let fa = compile_true layout a and fb = compile_true layout b in
    fun row -> fa row || fb row
  | Not e -> compile_false layout e
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), Col (q, n), Const c)
    when not (Value.is_null c) ->
    let i = resolve layout (q, n) in
    fun row ->
      let x = row.(i) in
      (not (Value.is_null x)) && cmp_holds op (cmp_values x c)
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), Col (qa, na), Col (qb, nb)) ->
    let i = resolve layout (qa, na) and j = resolve layout (qb, nb) in
    fun row ->
      let x = row.(i) in
      (not (Value.is_null x))
      &&
      let y = row.(j) in
      (not (Value.is_null y)) && cmp_holds op (cmp_values x y)
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row ->
      let x = fa row in
      (not (Value.is_null x))
      &&
      let y = fb row in
      (not (Value.is_null y)) && cmp_holds op (cmp_values x y)
  | Is_null e ->
    let f = compile layout e in
    fun row -> Value.is_null (f row)
  | Is_not_null e ->
    let f = compile layout e in
    fun row -> not (Value.is_null (f row))
  | In_list (e, vs) ->
    let f = compile layout e in
    let set = Hashtbl.create (List.length vs) in
    List.iter (fun v -> Hashtbl.replace set v ()) vs;
    fun row ->
      let v = f row in
      (not (Value.is_null v)) && Hashtbl.mem set v
  | e ->
    let f = compile_tv layout e in
    fun row -> f row = T_true

and compile_false (layout : layout) (e : expr) : Value.t array -> bool =
  match e with
  | Binop (And, a, b) ->
    let fa = compile_false layout a and fb = compile_false layout b in
    fun row -> fa row || fb row
  | Binop (Or, a, b) ->
    let fa = compile_false layout a and fb = compile_false layout b in
    fun row -> fa row && fb row
  | Not e -> compile_true layout e
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), Col (q, n), Const c)
    when not (Value.is_null c) ->
    let i = resolve layout (q, n) in
    fun row ->
      let x = row.(i) in
      (not (Value.is_null x)) && not (cmp_holds op (cmp_values x c))
  | Binop (((Eq | Neq | Lt | Leq | Gt | Geq) as op), a, b) ->
    let fa = compile layout a and fb = compile layout b in
    fun row ->
      let x = fa row in
      (not (Value.is_null x))
      &&
      let y = fb row in
      (not (Value.is_null y)) && not (cmp_holds op (cmp_values x y))
  | Is_null e ->
    let f = compile layout e in
    fun row -> not (Value.is_null (f row))
  | Is_not_null e ->
    let f = compile layout e in
    fun row -> Value.is_null (f row)
  | In_list (e, vs) ->
    let f = compile layout e in
    let set = Hashtbl.create (List.length vs) in
    List.iter (fun v -> Hashtbl.replace set v ()) vs;
    fun row ->
      let v = f row in
      (not (Value.is_null v)) && not (Hashtbl.mem set v)
  | e ->
    let f = compile_tv layout e in
    fun row -> f row = T_false

(** A compiled predicate: true only when the expression evaluates to SQL
    TRUE (Unknown filters the row out, per SQL semantics). *)
let compile_pred = compile_true

(** Evaluate a closed expression (no column references). *)
let eval_const e = compile [||] e [||]

(** The distinct layout positions [e] reads, sorted ascending.
    References that do not resolve against [layout] are skipped (the
    caller uses this to know which columns must be decoded before a
    compiled predicate may run on a row). *)
let referenced_cols (layout : layout) (e : expr) : int list =
  let acc = ref [] in
  let add q n =
    match resolve layout (q, n) with
    | i -> acc := i :: !acc
    | exception Unknown_column _ -> ()
  in
  let rec go = function
    | Const _ -> ()
    | Col (q, n) -> add q n
    | Binop (_, a, b) -> go a; go b
    | Not e | Is_null e | Is_not_null e | Like (e, _) | In_list (e, _) -> go e
    | Case (whens, els) ->
      List.iter (fun (c, v) -> go c; go v) whens;
      Option.iter go els
    | Coalesce es -> List.iter go es
    | Agg (_, arg, _) -> Option.iter go arg
  in
  go e;
  List.sort_uniq compare !acc
