lib/sparql/ast.ml: Hashtbl List Rdf Set String
