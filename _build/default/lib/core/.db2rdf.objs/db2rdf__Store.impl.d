lib/core/store.ml: Filter_sql List Printf Rdf Relsql Sparql Unix
