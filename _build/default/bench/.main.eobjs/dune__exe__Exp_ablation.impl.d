bench/exp_ablation.ml: Db2rdf Harness List Printf Sparql Workloads
