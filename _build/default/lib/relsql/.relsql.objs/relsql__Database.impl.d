lib/relsql/database.ml: Hashtbl List String Table
