(** Two-way dictionary encoding of RDF terms to dense integer ids.

    Every store in this repository (DB2RDF, the triple-store and vertical
    baselines, the native reference store) shares one dictionary per
    dataset so that query answers can be compared id-for-id. Ids start at
    0 and are dense, which also makes them usable as array indexes in the
    coloring and statistics code. *)

type t = {
  ids : (Term.t, int) Hashtbl.t;
  mutable terms : Term.t array;
  mutable next : int;
}

let create () = { ids = Hashtbl.create 1024; terms = Array.make 1024 (Term.iri ""); next = 0 }

let size t = t.next

(** Intern a term, returning its id (allocating one if new). *)
let id_of t term =
  match Hashtbl.find_opt t.ids term with
  | Some id -> id
  | None ->
    let id = t.next in
    if id = Array.length t.terms then begin
      let bigger = Array.make (2 * id) (Term.iri "") in
      Array.blit t.terms 0 bigger 0 id;
      t.terms <- bigger
    end;
    t.terms.(id) <- term;
    Hashtbl.add t.ids term id;
    t.next <- id + 1;
    id

(** Lookup without interning. *)
let find t term = Hashtbl.find_opt t.ids term

let term_of t id =
  if id < 0 || id >= t.next then invalid_arg "Dictionary.term_of: bad id";
  t.terms.(id)

let mem t term = Hashtbl.mem t.ids term

(** Merge a worker-local dictionary [delta] into [global], interning
    unseen terms in [delta]'s id order, and return the remap array
    (local id -> global id).

    Determinism: a local dictionary records the first-occurrence order
    of the terms of one contiguous input chunk. Merging per-chunk deltas
    in chunk order therefore interns exactly the terms a sequential pass
    over the concatenated chunks would intern, in the same order — the
    parallel bulk loader relies on this to assign bit-identical ids. *)
let remap_into ~global delta =
  Array.init delta.next (fun lid -> id_of global delta.terms.(lid))

let iter f t =
  for id = 0 to t.next - 1 do
    f id t.terms.(id)
  done
