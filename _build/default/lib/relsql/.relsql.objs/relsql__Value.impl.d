lib/relsql/value.ml: Buffer Format Hashtbl Printf Stdlib String
