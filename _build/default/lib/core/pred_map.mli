(** Predicate-to-column mappings (Definitions 2.1 and 2.2).

    A predicate mapping assigns each predicate URI a column number in
    [0, m). A *composition* [f1 ⊕ f2 ⊕ ... ⊕ fn] yields the ordered
    candidate-column sequence the loader probes at insertion time and
    the translator checks at query time. *)

type t

val arity : t -> int
val describe : t -> string

(** Candidate columns for a predicate URI, in priority order; duplicates
    removed, all within [0, arity). May be empty for partial mappings
    (compose with a hash mapping to make them total). *)
val candidates : t -> string -> int list

(** Seeded FNV-1a over the URI string — the independent hash family of
    Section 2.2. *)
val hash_string : seed:int -> string -> int

(** A single hash mapping restricted to [0, m). *)
val hashed : m:int -> seed:int -> t

(** [h_m^n]: composition of [n] independent hash functions. *)
val hashed_family : m:int -> n:int -> t

(** Composition [a ⊕ b] (Definition 2.2): try [a]'s columns first, then
    [b]'s. Raises [Invalid_argument] on arity mismatch. *)
val compose : t -> t -> t

(** An explicit table mapping (e.g. from graph coloring). *)
val of_table : m:int -> describe:string -> (string, int) Hashtbl.t -> t

(** The fixed two-function example of Table 3 in the paper (for tests
    and the walkthrough bench). *)
val paper_table3 : k:int -> t
