lib/relsql/sql_pp.ml: Buffer List Printf Sql_ast String Value
