lib/rdf/triple.ml: Format Printf Stdlib Term
