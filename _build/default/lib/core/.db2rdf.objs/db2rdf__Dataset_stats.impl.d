lib/core/dataset_stats.ml: Hashtbl Int
