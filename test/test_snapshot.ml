(** Copy-on-write snapshot isolation: a reader's snapshot is
    bit-stable while a writer commits, snapshots carry their own
    scan-cache and no reduction registry, and the versioned caches
    serve each snapshot at its own stamp. *)

open Db2rdf

let term pfx i = Rdf.Term.iri (Printf.sprintf "%s%d" pfx i)

let triple (s, p, o) = Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o)

let dump_src = "SELECT ?s ?p ?o WHERE { ?s ?p ?o }"

(* Canonical, order-insensitive rendering of a result set. *)
let canon (r : Sparql.Ref_eval.results) : string list =
  List.sort String.compare
    (List.map
       (fun row ->
         String.concat "\t"
           (List.map
              (function Some t -> Rdf.Term.to_string t | None -> "")
              row))
       r.Sparql.Ref_eval.rows)

let initial =
  List.map triple
    [ (1, 1, 1); (1, 1, 2); (1, 2, 1); (2, 2, 1); (3, 1, 2); (4, 3, 4) ]

let make_engine ?(options = Engine.default_options) () =
  let e =
    Engine.create ~options ~layout:(Layout.make ~dph_cols:3 ~rph_cols:3) ()
  in
  Engine.load e initial;
  e

(* ------------------------------------------------------------------ *)
(* Sequential isolation                                                *)
(* ------------------------------------------------------------------ *)

(** A snapshot pins the committed state at capture: later commits are
    invisible to it, visible to fresh snapshots and the live engine. *)
let test_snapshot_pins_state () =
  let e = make_engine () in
  let s0 = Engine.snapshot e in
  let before = canon (Engine.snapshot_query_string s0 dump_src) in
  Alcotest.(check int) "baseline size" (List.length initial)
    (List.length before);
  Engine.update_string e "INSERT DATA { <w1> <p9> <o1> }";
  Engine.update_string e "DELETE WHERE { <s1> <p1> ?o }";
  let s1 = Engine.snapshot e in
  Alcotest.(check (list string)) "old snapshot unchanged" before
    (canon (Engine.snapshot_query_string s0 dump_src));
  let after = canon (Engine.snapshot_query_string s1 dump_src) in
  Alcotest.(check bool) "new snapshot sees commits" true (after <> before);
  Alcotest.(check (list string)) "live engine agrees with new snapshot" after
    (canon (Engine.query_string e dump_src));
  Alcotest.(check bool) "stamps differ across commits" true
    (Engine.snapshot_stamp s0 <> Engine.snapshot_stamp s1)

(** Same pinning property when the store is compressed: capture freezes
    the catalog, the writer's auto-thaw must not leak into the
    snapshot's shared packed columns. *)
let test_snapshot_pins_compressed () =
  let e =
    make_engine ~options:{ Engine.default_options with compress = true } ()
  in
  let s0 = Engine.snapshot e in
  let before = canon (Engine.snapshot_query_string s0 dump_src) in
  Engine.update_string e "DELETE DATA { <s1> <p1> <o1> }";
  Engine.update_string e "INSERT DATA { <s9> <p9> <o9> . <s9> <p1> <o1> }";
  Alcotest.(check (list string)) "compressed snapshot unchanged" before
    (canon (Engine.snapshot_query_string s0 dump_src));
  Alcotest.(check int) "live engine moved on"
    (List.length initial + 1)
    (List.length (canon (Engine.query_string e dump_src)))

(* ------------------------------------------------------------------ *)
(* Concurrent writer / reader stress                                   *)
(* ------------------------------------------------------------------ *)

(** Readers each capture a private snapshot, then re-run the dump while
    the main domain commits a stream of updates. Every reader must see
    its own baseline, bit-identical, on every round. *)
let stress ~parallelism ~readers:n_readers () =
  let e =
    make_engine ~options:{ Engine.default_options with parallelism } ()
  in
  let stop = Atomic.make false in
  let readers =
    List.init n_readers (fun _ ->
        Domain.spawn (fun () ->
            let s = Engine.snapshot e in
            let baseline = canon (Engine.snapshot_query_string s dump_src) in
            let ok = ref true in
            let rounds = ref 0 in
            while (not (Atomic.get stop)) && !rounds < 100 do
              incr rounds;
              if canon (Engine.snapshot_query_string s dump_src) <> baseline
              then ok := false
            done;
            (!ok, !rounds)))
  in
  (* writer: a stream of inserts and deletes on the main domain *)
  for i = 0 to 39 do
    Engine.update_string e
      (Printf.sprintf "INSERT DATA { <w%d> <p1> <o%d> . <w%d> <p9> \"v\" }" i
         (i mod 5) i);
    if i mod 4 = 3 then
      Engine.update_string e (Printf.sprintf "DELETE WHERE { <w%d> ?p ?o }" (i - 2))
  done;
  Atomic.set stop true;
  let results = List.map Domain.join readers in
  List.iteri
    (fun i (ok, rounds) ->
      Alcotest.(check bool)
        (Printf.sprintf "reader %d bit-stable over %d rounds" i rounds)
        true ok)
    results;
  (* the writer's commits are all visible to a fresh snapshot *)
  let final = canon (Engine.query_string e dump_src) in
  let snap = canon (Engine.snapshot_query_string (Engine.snapshot e) dump_src) in
  Alcotest.(check (list string)) "fresh snapshot = live state" final snap

let test_stress_seq () = stress ~parallelism:1 ~readers:2 ()
let test_stress_par2 () = stress ~parallelism:2 ~readers:2 ()
let test_stress_par4 () = stress ~parallelism:4 ~readers:3 ()

(* ------------------------------------------------------------------ *)
(* Versioned caches                                                    *)
(* ------------------------------------------------------------------ *)

(** The statement cache serves entries per snapshot stamp: an old
    snapshot keeps answering from its own data version after a commit
    re-translates for the live one, and both answers are right. *)
let test_statement_cache_per_snapshot () =
  let e = make_engine () in
  let q = "SELECT ?o WHERE { <s1> <p1> ?o }" in
  (* populate the cache on the live path *)
  ignore (Engine.query_string e q);
  let s0 = Engine.snapshot e in
  let before = canon (Engine.snapshot_query_string s0 q) in
  Alcotest.(check int) "two objects before" 2 (List.length before);
  Engine.update_string e "INSERT DATA { <s1> <p1> <o7> }";
  let s1 = Engine.snapshot e in
  (* stale-stamped entry must not leak fresh data into s0, nor pin s1
     to the old answer *)
  Alcotest.(check (list string)) "old snapshot's answer stable" before
    (canon (Engine.snapshot_query_string s0 q));
  Alcotest.(check int) "new snapshot sees the insert" 3
    (List.length (canon (Engine.snapshot_query_string s1 q)));
  Alcotest.(check int) "live path agrees" 3
    (List.length (canon (Engine.query_string e q)));
  let st = Engine.plan_cache_stats e in
  Alcotest.(check bool) "statement cache in use" true
    (st.Relsql.Plan_cache.entries > 0
     && st.Relsql.Plan_cache.hits + st.Relsql.Plan_cache.misses > 0)

(** [Database.snapshot] gives the snapshot its own scan cache (no
    sharing with the live writer) and no reduction registry. *)
let test_database_snapshot_caches () =
  let e = make_engine () in
  let db = Loader.database (Engine.loader e) in
  let snap = Relsql.Database.snapshot db in
  Alcotest.(check bool) "own scan cache" true
    (Relsql.Database.scan_cache snap != Relsql.Database.scan_cache db);
  let dph = Relsql.Database.find_exn db "DPH"
  and sdph = Relsql.Database.find_exn snap "DPH" in
  Alcotest.(check bool) "snapshot tables frozen" true
    (Relsql.Table.frozen sdph);
  let n0 = Relsql.Table.row_count sdph in
  (* mutate the live table; the snapshot view must not move *)
  Relsql.Table.delete_row dph 0;
  Alcotest.(check int) "snapshot row_count pinned" n0
    (Relsql.Table.row_count sdph);
  Alcotest.(check int) "live row_count moved" (n0 - 1)
    (Relsql.Table.row_count dph)

(** A snapshot captured while the compressed store carries a {e live
    delta} (writes resident in the frozen tables' boxed delta side, not
    yet merged) is bit-stable: the packed main is shared, the delta
    rows and tombstone bitmap are deep-copied, so neither further live
    writes nor the live side's merge — which rebuilds its packed main —
    can leak into the capture. *)
let test_snapshot_with_live_delta () =
  let e =
    make_engine ~options:{ Engine.default_options with compress = true } ()
  in
  let db = Loader.database (Engine.loader e) in
  let pending () =
    List.fold_left
      (fun acc n ->
        let t = Relsql.Database.find_exn db n in
        acc + Relsql.Table.delta_rows t + Relsql.Table.main_tombstones t)
      0
      (Relsql.Database.table_names db)
  in
  (* put the store into a delta-resident state *)
  Engine.update_string e "DELETE DATA { <s1> <p1> <o1> }";
  Engine.update_string e "INSERT DATA { <s8> <p8> <o8> }";
  Alcotest.(check bool) "live store carries a delta" true (pending () > 0);
  let s0 = Engine.snapshot e in
  let before = canon (Engine.snapshot_query_string s0 dump_src) in
  Alcotest.(check int) "capture sees the delta-resident writes"
    (List.length initial)
    (List.length before);
  (* keep writing, then fold the live delta back into a fresh main *)
  Engine.update_string e "INSERT DATA { <s9> <p9> <o9> }";
  Alcotest.(check bool) "merge folds at least one table" true
    (Engine.merge e > 0);
  Alcotest.(check int) "live delta folded" 0 (pending ());
  Alcotest.(check (list string)) "snapshot with live delta bit-stable" before
    (canon (Engine.snapshot_query_string s0 dump_src));
  Engine.update_string e "DELETE WHERE { <s8> ?p ?o }";
  Alcotest.(check (list string)) "stable across post-merge writes too" before
    (canon (Engine.snapshot_query_string s0 dump_src));
  let final = canon (Engine.query_string e dump_src) in
  Alcotest.(check (list string)) "fresh snapshot = live state" final
    (canon (Engine.snapshot_query_string (Engine.snapshot e) dump_src))

(** ExtVP reductions revalidate by stamp: a commit invalidates resident
    entries, later queries rebuild and still agree with the reference
    answer; snapshot reads (which carry no registry) agree too. *)
let test_extvp_stamps_across_commit () =
  let options =
    { Engine.default_options with extvp = true; extvp_threshold = 1.0 }
  in
  let e = make_engine ~options () in
  (match Engine.extvp_registry e with
   | Some reg -> Relsql.Extvp.set_force reg true
   | None -> Alcotest.fail "extvp registry missing");
  let q = "SELECT ?x WHERE { ?x <p1> ?a . ?x <p2> ?b }" in
  let before = canon (Engine.query_string e q) in
  (* s1 matches, with its multi-valued p1 contributing two bindings *)
  Alcotest.(check int) "star matches s1 initially" 2 (List.length before);
  let s0 = Engine.snapshot e in
  Engine.update_string e "INSERT DATA { <s7> <p1> <o1> . <s7> <p2> <o2> }";
  let after = canon (Engine.query_string e q) in
  Alcotest.(check int) "rebuilt reduction sees new star" 3
    (List.length after);
  Alcotest.(check (list string)) "old snapshot still pre-commit" before
    (canon (Engine.snapshot_query_string s0 q));
  (match Engine.extvp_registry e with
   | Some reg ->
     let c = Relsql.Extvp.counters reg in
     Alcotest.(check bool) "reductions were built" true
       (c.Relsql.Extvp.builds > 0)
   | None -> ())

let suite =
  [ Alcotest.test_case "snapshot pins state" `Quick test_snapshot_pins_state;
    Alcotest.test_case "snapshot pins compressed state" `Quick
      test_snapshot_pins_compressed;
    Alcotest.test_case "writer/reader stress (seq)" `Quick test_stress_seq;
    Alcotest.test_case "writer/reader stress (2 domains)" `Quick
      test_stress_par2;
    Alcotest.test_case "writer/reader stress (4 domains)" `Quick
      test_stress_par4;
    Alcotest.test_case "statement cache per snapshot" `Quick
      test_statement_cache_per_snapshot;
    Alcotest.test_case "database snapshot caches" `Quick
      test_database_snapshot_caches;
    Alcotest.test_case "snapshot with live delta bit-stable" `Quick
      test_snapshot_with_live_delta;
    Alcotest.test_case "extvp stamps across commit" `Quick
      test_extvp_stamps_across_commit ]
