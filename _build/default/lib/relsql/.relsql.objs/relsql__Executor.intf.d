lib/relsql/executor.mli: Database Expr_eval Sql_ast Table Value
