(** Recursive-descent parser for the SPARQL subset of {!Ast}: PREFIX
    declarations, SELECT [DISTINCT|REDUCED] with variable lists, [*] or
    aggregate items (with GROUP BY), groups, predicate-object and object
    lists, [a] for rdf:type, property paths (alternative [|], sequence
    [/], inverse [^] — rewritten into plain patterns at parse time),
    UNION, OPTIONAL, FILTER, ORDER BY, LIMIT and OFFSET. *)

exception Parse_error of string

(** Parse a SPARQL SELECT query (prefixes [rdf:], [rdfs:], [xsd:] are
    predeclared). Raises {!Parse_error} or {!Lexer.Lex_error}. *)
val parse : string -> Ast.query

(** Parse a single SPARQL UPDATE request ([INSERT DATA], [DELETE DATA]
    or [DELETE WHERE]). Raises {!Parse_error} or {!Lexer.Lex_error}. *)
val parse_update : string -> Ast.update

(** Parse one statement — a SELECT query or an UPDATE request. *)
val parse_statement : string -> Ast.statement

(** Parse a script of [;]-separated query/update statements. *)
val parse_script : string -> Ast.statement list
