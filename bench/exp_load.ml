(** E12 — insertion, bulk load and update performance: the study the
    paper defers to future work ("we are preparing a study on insertion,
    bulk load and update performance"). Measures, per store:
    - bulk load throughput (triples/second, including any coloring pass);
    - incremental single-triple insertion rate into a warm store;
    - deletion rate.

    A second part sweeps the morsel-parallel bulk loader over
    load-domain counts doubling from 1 up to [--domains], checking each
    parallel store is bit-identical to the sequential one, and writes
    the per-phase timing curve to BENCH_load.json. *)

(** Load-domain counts doubling from 1 up to [top] (always including 1). *)
let curve top =
  let rec up d = if d >= top then [ top ] else d :: up (2 * d) in
  List.sort_uniq compare (up 1)

let phase_json (s : Db2rdf.Loader.load_stats) =
  Harness.J_obj
    [ ("domains", Harness.J_int s.Db2rdf.Loader.domains_used);
      ("morsels", Harness.J_int s.Db2rdf.Loader.morsels);
      ("triples_in", Harness.J_int s.Db2rdf.Loader.triples_in);
      ("triples_new", Harness.J_int s.Db2rdf.Loader.triples_new);
      ("encode_s", Harness.J_float s.Db2rdf.Loader.encode_s);
      ("merge_s", Harness.J_float s.Db2rdf.Loader.merge_s);
      ("assemble_s", Harness.J_float s.Db2rdf.Loader.assemble_s);
      ("total_s", Harness.J_float s.Db2rdf.Loader.total_s) ]

(** One colored bulk load at [load_domains] over [triples]; returns the
    loader's phase stats and the canonical store dump. *)
let load_once ~load_domains triples =
  let e, _, _ =
    Db2rdf.Engine.create_colored
      ~options:{ Db2rdf.Engine.default_options with load_domains }
      ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples
  in
  let stats =
    match Db2rdf.Engine.load_stats e with
    | Some s -> s
    | None -> failwith "exp_load: no load stats recorded"
  in
  (stats, Db2rdf.Loader.dump_store (Db2rdf.Engine.loader e))

let run_parallel_load (cfg : Harness.config) triples =
  let cores = Domain.recommended_domain_count () in
  let counts = curve (max 1 cfg.Harness.domains) in
  Harness.subsection
    (Printf.sprintf "parallel bulk load, domain curve %s (host: %d core(s))"
       (String.concat " " (List.map string_of_int counts))
       cores);
  let results =
    List.map (fun d -> (d, load_once ~load_domains:d triples)) counts
  in
  let _, (base_stats, base_dump) = List.hd results in
  let identical =
    List.for_all (fun (_, (_, dump)) -> dump = base_dump) results
  in
  Printf.printf "stores bit-identical across domain counts: %s\n%!"
    (if identical then "yes" else "NO — PARALLEL LOAD BUG");
  let ms f = Printf.sprintf "%.1f" (1000.0 *. f) in
  Harness.print_table
    [ "load-domains"; "morsels"; "encode (ms)"; "merge (ms)"; "assemble (ms)";
      "total (ms)"; "speedup" ]
    (List.map
       (fun (d, ((s : Db2rdf.Loader.load_stats), _)) ->
         [ string_of_int d;
           string_of_int s.Db2rdf.Loader.morsels;
           ms s.Db2rdf.Loader.encode_s;
           ms s.Db2rdf.Loader.merge_s;
           ms s.Db2rdf.Loader.assemble_s;
           ms s.Db2rdf.Loader.total_s;
           (if s.Db2rdf.Loader.total_s > 0.0 then
              Printf.sprintf "%.2fx"
                (base_stats.Db2rdf.Loader.total_s /. s.Db2rdf.Loader.total_s)
            else "-") ])
       results);
  Harness.write_json cfg ~file:"BENCH_load.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "parallel-bulk-load");
         ("workload", Harness.J_str "lubm");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("host_cores", Harness.J_int cores);
         ( "note",
           Harness.J_str
             (Printf.sprintf
                "every domain count rebuilds the same colored store; \
                 bit_identical asserts the parallel loader's output \
                 equals the sequential one. Speedups are bounded by the \
                 %d core(s) of this host — on a single-core host the \
                 curve measures parallel overhead, not speedup" cores) );
         ("bit_identical", Harness.J_str (if identical then "yes" else "no"));
         ( "curve",
           Harness.J_list (List.map (fun (_, (s, _)) -> phase_json s) results)
         ) ])

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E12. Insertion / bulk load / update performance — %d triples (LUBM)"
       cfg.Harness.scale);
  let triples = Workloads.Lubm.generate ~scale:cfg.Harness.scale in
  let n = List.length triples in
  (* A later slice of the dataset arrives incrementally; an earlier
     slice is subsequently deleted. *)
  let incr_n = max 1 (n / 10) in
  let bulk = List.filteri (fun i _ -> i < n - incr_n) triples in
  let incremental = List.filteri (fun i _ -> i >= n - incr_n) triples in
  let to_delete = List.filteri (fun i _ -> i < incr_n) triples in
  let builders =
    [ ("DB2RDF (colored)",
       fun () ->
         let e, _, _ =
           Db2rdf.Engine.create_colored
             ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) bulk
         in
         Db2rdf.Engine.to_store e);
      ("DB2RDF (hashed)",
       fun () ->
         let e =
           Db2rdf.Engine.create
             ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) ()
         in
         Db2rdf.Engine.load e bulk;
         Db2rdf.Engine.to_store e);
      ("TripleStore",
       fun () ->
         let ts = Db2rdf.Triple_store.create () in
         Db2rdf.Triple_store.load ts bulk;
         Db2rdf.Triple_store.to_store ts);
      ("VertStore",
       fun () ->
         let vs = Db2rdf.Vertical_store.create () in
         Db2rdf.Vertical_store.load vs bulk;
         Db2rdf.Vertical_store.to_store vs);
      ("NativeRef",
       fun () ->
         let ns = Db2rdf.Native_store.create () in
         Db2rdf.Native_store.load ns bulk;
         Db2rdf.Native_store.to_store ns) ]
  in
  let ktps count seconds =
    if seconds <= 0.0 then "-"
    else Printf.sprintf "%.0f" (float_of_int count /. seconds /. 1000.0)
  in
  let rows =
    List.map
      (fun (name, build) ->
        let store, t_bulk = Harness.timed build in
        let (), t_incr =
          Harness.timed (fun () -> store.Db2rdf.Store.load incremental)
        in
        let (), t_del =
          Harness.timed (fun () -> store.Db2rdf.Store.delete to_delete)
        in
        [ name;
          ktps (List.length bulk) t_bulk;
          ktps (List.length incremental) t_incr;
          ktps (List.length to_delete) t_del ])
      builders
  in
  Harness.print_table
    [ "Store"; "bulk load (kt/s)"; "incr. insert (kt/s)"; "delete (kt/s)" ]
    rows;
  run_parallel_load cfg triples
