test/test_relsql.ml: Alcotest Array Database Executor Expr_eval Gen List QCheck QCheck_alcotest Relsql Schema Sql_ast Sql_parser Sql_pp Table Value
