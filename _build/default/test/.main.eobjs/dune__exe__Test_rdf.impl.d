test/test_rdf.ml: Alcotest Filename Fun Gen Helpers List Printf QCheck QCheck_alcotest Rdf Sys
