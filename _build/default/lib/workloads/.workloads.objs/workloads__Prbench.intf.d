lib/workloads/prbench.mli: Rdf
