bench/exp_coloring.ml: Array Db2rdf Harness List Printf Rdf Relsql Workloads
