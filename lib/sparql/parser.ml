(** Recursive-descent parser for the SPARQL subset of {!Ast}.

    Supports PREFIX declarations, SELECT [DISTINCT|REDUCED] with
    variable lists, [*] or aggregate items ([(COUNT(?x) AS ?n)] etc.
    with GROUP BY), group graph patterns with [.]-separated triples,
    predicate-object lists ([;]) and object lists ([,]), [a] for
    rdf:type, property paths (alternative [|], sequence [/], inverse
    [^] — rewritten into 1.0 patterns at parse time), UNION, OPTIONAL,
    FILTER, nested groups, ORDER BY, LIMIT and OFFSET. *)

open Ast
open Lexer

exception Parse_error of string

type state = {
  mutable toks : (token * int) list;
  prefixes : (string, string) Hashtbl.t;
}

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg (token_to_string (peek st))))

let expect st t =
  if peek st = t then advance st
  else fail st (Printf.sprintf "expected %s" (token_to_string t))

let expect_kw st kw =
  match peek st with
  | KW k when k = kw -> advance st
  | _ -> fail st ("expected " ^ kw)

let accept_kw st kw =
  match peek st with
  | KW k when k = kw ->
    advance st;
    true
  | _ -> false

let resolve_pname st prefix local =
  match Hashtbl.find_opt st.prefixes prefix with
  | Some base -> base ^ local
  | None -> raise (Parse_error ("undeclared prefix: " ^ prefix ^ ":"))

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let parse_literal_tail st lex =
  match peek st with
  | LANGTAG l ->
    advance st;
    Rdf.Term.lang_lit lex l
  | DTMARK ->
    advance st;
    (match peek st with
     | IRIREF dt ->
       advance st;
       Rdf.Term.typed_lit lex dt
     | PNAME (p, l) ->
       advance st;
       Rdf.Term.typed_lit lex (resolve_pname st p l)
     | _ -> fail st "expected datatype IRI")
  | _ -> Rdf.Term.lit lex

(** A term or variable in a triple-pattern position. *)
let parse_term_pat st : term_pat =
  match peek st with
  | VAR v ->
    advance st;
    Var v
  | IRIREF s ->
    advance st;
    Term (Rdf.Term.iri s)
  | PNAME (p, l) ->
    advance st;
    Term (Rdf.Term.iri (resolve_pname st p l))
  | BNODE b ->
    advance st;
    Term (Rdf.Term.bnode b)
  | STRINGLIT lex ->
    advance st;
    Term (parse_literal_tail st lex)
  | INTLIT i ->
    advance st;
    Term (Rdf.Term.int_lit i)
  | DECLIT f ->
    advance st;
    Term (Rdf.Term.typed_lit (Printf.sprintf "%g" f) Rdf.Term.xsd_decimal)
  | KW "TRUE" ->
    advance st;
    Term (Rdf.Term.typed_lit "true" "http://www.w3.org/2001/XMLSchema#boolean")
  | KW "FALSE" ->
    advance st;
    Term (Rdf.Term.typed_lit "false" "http://www.w3.org/2001/XMLSchema#boolean")
  | _ -> fail st "expected term or variable"

(* ------------------------------------------------------------------ *)
(* Property paths: the SPARQL 1.1 subset that rewrites into 1.0 —
   alternatives "p|q", sequences "p/q" and inverses "^p". They are
   eliminated at parse time: alternatives become UNIONs, sequences
   introduce fresh intermediate variables, inverses swap subject and
   object — so every store evaluates them unchanged. Transitive
   closures ("+" and "*" suffixes) are not expressible in the 1.0
   algebra and are rejected with a clear error. *)

type path =
  | P_pred of term_pat
  | P_inv of path
  | P_seq of path * path
  | P_alt of path * path

let fresh_path_var =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Printf.sprintf "__path%d" !counter

let rec parse_path st : path =
  let lhs = ref (parse_path_seq st) in
  let rec loop () =
    match peek st with
    | Lexer.PIPE ->
      advance st;
      lhs := P_alt (!lhs, parse_path_seq st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_path_seq st =
  let lhs = ref (parse_path_elt st) in
  let rec loop () =
    match peek st with
    | Lexer.SLASH ->
      advance st;
      lhs := P_seq (!lhs, parse_path_elt st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_path_elt st =
  match peek st with
  | Lexer.BANG -> fail st "negated property sets are not supported"
  | Lexer.CARET ->
    advance st;
    P_inv (parse_path_elt st)
  | Lexer.LPAREN ->
    advance st;
    let p = parse_path st in
    expect st RPAREN;
    check_no_closure st;
    p
  | Lexer.KW "A" ->
    advance st;
    check_no_closure st;
    P_pred (Term Rdf.Term.rdf_type)
  | _ ->
    let t = parse_term_pat st in
    check_no_closure st;
    P_pred t

and check_no_closure st =
  match peek st with
  | Lexer.PLUS | Lexer.STAR ->
    fail st "transitive property paths (+, *) are not supported"
  | _ -> ()

(** Rewrite a subject–path–object statement into plain patterns. *)
let rec path_to_patterns s path o : Ast.pattern =
  match path with
  | P_pred p -> Bgp [ { tp_s = s; tp_p = p; tp_o = o } ]
  | P_inv p -> path_to_patterns o p s
  | P_seq (a, b) ->
    let mid = Var (fresh_path_var ()) in
    Group [ path_to_patterns s a mid; path_to_patterns mid b o ]
  | P_alt (a, b) -> Union [ path_to_patterns s a o; path_to_patterns s b o ]

(* ------------------------------------------------------------------ *)
(* Filter expressions                                                  *)
(* ------------------------------------------------------------------ *)

let rec parse_expr st = parse_or_expr st

and parse_or_expr st =
  let lhs = ref (parse_and_expr st) in
  while peek st = OROR do
    advance st;
    lhs := E_or (!lhs, parse_and_expr st)
  done;
  !lhs

and parse_and_expr st =
  let lhs = ref (parse_rel_expr st) in
  while peek st = ANDAND do
    advance st;
    lhs := E_and (!lhs, parse_rel_expr st)
  done;
  !lhs

and parse_rel_expr st =
  let lhs = parse_add_expr st in
  let cmp c =
    advance st;
    E_cmp (c, lhs, parse_add_expr st)
  in
  match peek st with
  | EQ -> cmp Ceq
  | NEQ -> cmp Cneq
  | LT -> cmp Clt
  | LEQ -> cmp Cleq
  | GT -> cmp Cgt
  | GEQ -> cmp Cgeq
  | _ -> lhs

and parse_add_expr st =
  let lhs = ref (parse_mul_expr st) in
  let rec loop () =
    match peek st with
    | PLUS ->
      advance st;
      lhs := E_arith (Aadd, !lhs, parse_mul_expr st);
      loop ()
    | MINUS ->
      advance st;
      lhs := E_arith (Asub, !lhs, parse_mul_expr st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_mul_expr st =
  let lhs = ref (parse_unary_expr st) in
  let rec loop () =
    match peek st with
    | STAR ->
      advance st;
      lhs := E_arith (Amul, !lhs, parse_unary_expr st);
      loop ()
    | SLASH ->
      advance st;
      lhs := E_arith (Adiv, !lhs, parse_unary_expr st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_unary_expr st =
  match peek st with
  | BANG ->
    advance st;
    E_not (parse_unary_expr st)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | KW "BOUND" ->
    advance st;
    expect st LPAREN;
    (match peek st with
     | VAR v ->
       advance st;
       expect st RPAREN;
       E_bound v
     | _ -> fail st "expected variable in BOUND()")
  | KW "REGEX" ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st COMMA;
    (match peek st with
     | STRINGLIT pat ->
       advance st;
       (* optional flags argument is accepted and ignored *)
       (if peek st = COMMA then begin
          advance st;
          match peek st with
          | STRINGLIT _ -> advance st
          | _ -> fail st "expected flags string"
        end);
       expect st RPAREN;
       E_regex (e, pat)
     | _ -> fail st "expected pattern string in REGEX()")
  | VAR v ->
    advance st;
    E_var v
  | IRIREF s ->
    advance st;
    E_const (Rdf.Term.iri s)
  | PNAME (p, l) ->
    advance st;
    E_const (Rdf.Term.iri (resolve_pname st p l))
  | STRINGLIT lex ->
    advance st;
    E_const (parse_literal_tail st lex)
  | INTLIT i ->
    advance st;
    E_const (Rdf.Term.int_lit i)
  | DECLIT f ->
    advance st;
    E_const (Rdf.Term.typed_lit (Printf.sprintf "%g" f) Rdf.Term.xsd_decimal)
  | _ -> fail st "expected filter expression"

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)
(* ------------------------------------------------------------------ *)

(* triples-same-subject: s path o {, o} {; path o {, o}}. Plain
   predicates stay triples; complex paths rewrite to patterns. *)
let rec parse_triples_block st acc =
  let s = parse_term_pat st in
  let rec verb_list acc =
    let p = parse_path st in
    let rec obj_list acc =
      let o = parse_term_pat st in
      let acc =
        match p with
        | P_pred tp_p -> `T { tp_s = s; tp_p; tp_o = o } :: acc
        | path -> `P (path_to_patterns s path o) :: acc
      in
      if peek st = COMMA then begin
        advance st;
        obj_list acc
      end
      else acc
    in
    let acc = obj_list acc in
    if peek st = SEMI then begin
      advance st;
      (* allow trailing ';' before '.' or '}' *)
      match peek st with
      | VAR _ | IRIREF _ | PNAME _ | KW "A" | CARET | LPAREN -> verb_list acc
      | _ -> acc
    end
    else acc
  in
  verb_list acc

and parse_group st : pattern =
  expect st LBRACE;
  let elements = ref [] in
  let triples = ref [] in
  let flush_triples () =
    if !triples <> [] then begin
      elements := Bgp (List.rev !triples) :: !elements;
      triples := []
    end
  in
  let rec loop () =
    match peek st with
    | RBRACE ->
      advance st;
      flush_triples ()
    | DOT ->
      advance st;
      loop ()
    | KW "OPTIONAL" ->
      advance st;
      flush_triples ();
      let p = parse_group_or_union st in
      elements := Optional p :: !elements;
      loop ()
    | KW "FILTER" ->
      advance st;
      flush_triples ();
      let e =
        match peek st with
        | LPAREN ->
          advance st;
          let e = parse_expr st in
          expect st RPAREN;
          e
        | KW ("BOUND" | "REGEX") -> parse_unary_expr st
        | _ -> fail st "expected ( or built-in call after FILTER"
      in
      elements := Filter e :: !elements;
      loop ()
    | LBRACE ->
      flush_triples ();
      let p = parse_group_or_union st in
      elements := p :: !elements;
      loop ()
    | _ ->
      List.iter
        (function
          | `T tp -> triples := tp :: !triples
          | `P p ->
            flush_triples ();
            elements := p :: !elements)
        (List.rev (parse_triples_block st []));
      loop ()
  in
  loop ();
  match List.rev !elements with
  | [ single ] -> single
  | elements -> Group elements

(* group (UNION group)* *)
and parse_group_or_union st : pattern =
  let first = parse_group st in
  if accept_kw st "UNION" then begin
    let parts = ref [ first ] in
    let rec loop () =
      parts := parse_group st :: !parts;
      if accept_kw st "UNION" then loop ()
    in
    loop ();
    Union (List.rev !parts)
  end
  else first

(* ------------------------------------------------------------------ *)
(* Query                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_prologue st =
  if accept_kw st "PREFIX" then begin
    (match peek st with
     | PNAME (p, "") ->
       advance st;
       (match peek st with
        | IRIREF iri ->
          advance st;
          Hashtbl.replace st.prefixes p iri
        | _ -> fail st "expected IRI in PREFIX")
     | _ -> fail st "expected prefix name in PREFIX");
    parse_prologue st
  end
  else if accept_kw st "BASE" then begin
    (match peek st with
     | IRIREF _ -> advance st
     | _ -> fail st "expected IRI in BASE");
    parse_prologue st
  end

let parse_query_state st : query =
  parse_prologue st;
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let reduced = (not distinct) && accept_kw st "REDUCED" in
  let aggregates = ref [] in
  let parse_agg_item () =
    (* '(' AGG '(' [DISTINCT] (?v | '*') ')' AS ?alias ')' *)
    expect st LPAREN;
    let agg_fn =
      match peek st with
      | KW "COUNT" -> advance st; Ag_count
      | KW "SUM" -> advance st; Ag_sum
      | KW "AVG" -> advance st; Ag_avg
      | KW "MIN" -> advance st; Ag_min
      | KW "MAX" -> advance st; Ag_max
      | _ -> fail st "expected aggregate function"
    in
    expect st LPAREN;
    let agg_distinct = accept_kw st "DISTINCT" in
    let agg_arg =
      match peek st with
      | STAR ->
        advance st;
        None
      | VAR v ->
        advance st;
        Some v
      | _ -> fail st "expected variable or * in aggregate"
    in
    expect st RPAREN;
    expect_kw st "AS";
    let agg_alias =
      match peek st with
      | VAR v ->
        advance st;
        v
      | _ -> fail st "expected alias variable after AS"
    in
    expect st RPAREN;
    aggregates := { agg_fn; agg_arg; agg_distinct; agg_alias } :: !aggregates
  in
  let projection =
    if peek st = STAR then begin
      advance st;
      Select_star
    end
    else begin
      let vars = ref [] in
      let rec loop () =
        match peek st with
        | VAR v ->
          advance st;
          vars := v :: !vars;
          loop ()
        | LPAREN ->
          parse_agg_item ();
          loop ()
        | _ -> ()
      in
      loop ();
      if !vars = [] && !aggregates = [] then Select_star
      else Select_vars (List.rev !vars)
    end
  in
  let aggregates = List.rev !aggregates in
  ignore (accept_kw st "WHERE");
  let where = parse_group_or_union st in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let vars = ref [] in
      let rec loop () =
        match peek st with
        | VAR v ->
          advance st;
          vars := v :: !vars;
          loop ()
        | _ -> ()
      in
      loop ();
      if !vars = [] then fail st "expected variables after GROUP BY";
      List.rev !vars
    end
    else []
  in
  if accept_kw st "HAVING" then fail st "HAVING is not supported";
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let conds = ref [] in
      let rec loop () =
        match peek st with
        | KW "ASC" ->
          advance st;
          expect st LPAREN;
          let e = parse_expr st in
          expect st RPAREN;
          conds := { ord_expr = e; ord_asc = true } :: !conds;
          loop ()
        | KW "DESC" ->
          advance st;
          expect st LPAREN;
          let e = parse_expr st in
          expect st RPAREN;
          conds := { ord_expr = e; ord_asc = false } :: !conds;
          loop ()
        | VAR v ->
          advance st;
          conds := { ord_expr = E_var v; ord_asc = true } :: !conds;
          loop ()
        | _ -> ()
      in
      loop ();
      List.rev !conds
    end
    else []
  in
  let limit = ref None and offset = ref None in
  let rec modifiers () =
    if accept_kw st "LIMIT" then begin
      (match peek st with
       | INTLIT n ->
         advance st;
         limit := Some n
       | _ -> fail st "expected integer after LIMIT");
      modifiers ()
    end
    else if accept_kw st "OFFSET" then begin
      (match peek st with
       | INTLIT n ->
         advance st;
         offset := Some n
       | _ -> fail st "expected integer after OFFSET");
      modifiers ()
    end
  in
  modifiers ();
  if (aggregates <> [] || group_by <> []) && order_by <> [] then
    fail st "ORDER BY is not supported together with aggregates";
  (* Plain selected variables of an aggregate query must be grouped. *)
  (match projection with
   | Select_vars vs when aggregates <> [] ->
     List.iter
       (fun v ->
         if not (List.mem v group_by) then
           fail st ("selected variable ?" ^ v ^ " must appear in GROUP BY"))
       vs
   | _ -> ());
  { projection; distinct; reduced; where; group_by; aggregates;
    order_by; limit = !limit; offset = !offset }

(* ------------------------------------------------------------------ *)
(* Updates (SPARQL 1.1 UPDATE subset)                                  *)
(* ------------------------------------------------------------------ *)

(* A brace-delimited block of triple patterns: DOT-separated
   triples-same-subject groups, predicate-object and object lists
   allowed, property paths rejected (the UPDATE grammar has no paths). *)
let parse_triple_pat_block st : triple_pat list =
  expect st LBRACE;
  let triples = ref [] in
  let rec loop () =
    match peek st with
    | RBRACE -> advance st
    | DOT ->
      advance st;
      loop ()
    | _ ->
      List.iter
        (function
          | `T tp -> triples := tp :: !triples
          | `P _ -> fail st "property paths are not allowed here")
        (List.rev (parse_triples_block st []));
      loop ()
  in
  loop ();
  List.rev !triples

(* The same block with every position ground — the QuadData production
   of INSERT DATA / DELETE DATA. *)
let parse_ground_data_block st : Rdf.Triple.t list =
  let ground = function
    | Term t -> t
    | Var v -> fail st ("variable ?" ^ v ^ " is not allowed in DATA blocks")
  in
  List.map
    (fun { tp_s; tp_p; tp_o } ->
      Rdf.Triple.make (ground tp_s) (ground tp_p) (ground tp_o))
    (parse_triple_pat_block st)

let parse_update_state st : update =
  if accept_kw st "INSERT" then begin
    expect_kw st "DATA";
    Insert_data (parse_ground_data_block st)
  end
  else begin
    expect_kw st "DELETE";
    if accept_kw st "DATA" then Delete_data (parse_ground_data_block st)
    else begin
      expect_kw st "WHERE";
      Delete_where (parse_triple_pat_block st)
    end
  end

let parse_statement_state st : statement =
  parse_prologue st;
  match peek st with
  | KW "SELECT" -> S_query (parse_query_state st)
  | KW ("INSERT" | "DELETE") -> S_update (parse_update_state st)
  | _ -> fail st "expected SELECT, INSERT or DELETE"

(* statement (';' statement)* ';'? *)
let parse_script_state st : statement list =
  let stmts = ref [] in
  let rec loop () =
    stmts := parse_statement_state st :: !stmts;
    if peek st = SEMI then begin
      advance st;
      if peek st <> EOF then loop ()
    end
  in
  if peek st <> EOF then loop ();
  List.rev !stmts

let make_state src =
  let st = { toks = tokenize src; prefixes = Hashtbl.create 8 } in
  Hashtbl.replace st.prefixes "rdf" "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
  Hashtbl.replace st.prefixes "rdfs" "http://www.w3.org/2000/01/rdf-schema#";
  Hashtbl.replace st.prefixes "xsd" "http://www.w3.org/2001/XMLSchema#";
  st

let finish st v =
  if peek st <> EOF then fail st "trailing input";
  v

(** Parse a SPARQL SELECT query. *)
let parse (src : string) : query =
  let st = make_state src in
  finish st (parse_query_state st)

(** Parse a single SPARQL UPDATE request. *)
let parse_update (src : string) : update =
  let st = make_state src in
  parse_prologue st;
  finish st (parse_update_state st)

(** Parse one statement — a query or an update request. *)
let parse_statement (src : string) : statement =
  let st = make_state src in
  finish st (parse_statement_state st)

(** Parse a script of [;]-separated query/update statements. *)
let parse_script (src : string) : statement list =
  let st = make_state src in
  finish st (parse_script_state st)
