lib/core/dataflow.mli: Cost Dataset_stats Rdf Sparql
