lib/core/exec_tree.mli: Cost Dataflow Sparql
