(** E14 — radix-partitioned hash-join builds: join-heavy queries over
    the Micro workload measured on a (domains × partitions) grid, on one
    shared store so only the two knobs vary.

    The hash-join shapes come from OPTIONAL group joins (the planner
    hash-joins a subquery against a subquery; star BGPs fuse into
    scans or index nested-loop joins instead), plus two stars whose
    index-probe loop exercises the parallel probe side. Every grid
    point is asserted row-for-row, order-included equal to the
    sequential run before it is timed.

    With [--json-dir] the experiment writes BENCH_join.json: the full
    grid, per-query speedups of the largest grid point against the
    sequential baseline, their geometric mean, which operators actually
    partitioned, and the host's core count — on a single-core host the
    grid measures partitioning overhead, not speedup, and the JSON says
    so next to the numbers. *)

let ns = "http://microbench.org/"

(** OPTIONAL group joins produce HashJoin(left) operators whose build
    side is a real subquery — the partitioned build's target. The three
    variants scale the build side from one predicate to a chain. *)
let hash_join_queries =
  [ ("HJ1",
     Printf.sprintf
       "SELECT ?a ?b ?c WHERE { ?a <%sSV1> ?b . \
        OPTIONAL { ?c <%sSV2> ?b . ?c <%sSV3> ?d } }"
       ns ns ns);
    ("HJ2",
     Printf.sprintf
       "SELECT ?a ?b ?c WHERE { ?a <%sSV2> ?b . \
        OPTIONAL { ?c <%sSV3> ?b . ?c <%sSV4> ?d . ?c <%sSV5> ?e } }"
       ns ns ns ns);
    ("HJ3",
     Printf.sprintf
       "SELECT ?a ?b ?c ?x WHERE { ?a <%sSV1> ?b . ?a <%sSV4> ?x . \
        OPTIONAL { ?c <%sMV1> ?b } }"
       ns ns ns) ]

let star_queries =
  List.filter (fun (n, _) -> List.mem n [ "Q2"; "Q5" ]) Workloads.Micro.queries

let queries () = hash_join_queries @ star_queries

let curve top =
  let rec up d = if d >= top then [ top ] else d :: up (2 * d) in
  List.sort_uniq compare (up 1)

let partition_counts = [ 1; 4; 16 ]

let geomean = function
  | [] -> None
  | xs ->
    Some
      (exp
         (List.fold_left (fun a x -> a +. log x) 0.0 xs
          /. float_of_int (List.length xs)))

let batch_strings b =
  List.map
    (fun row ->
      String.concat "\t"
        (List.map Relsql.Value.to_string (Array.to_list row)))
    (Relsql.Batch.to_rows b)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E14. Partitioned hash-join build (domains × partitions) — %d triples"
       cfg.Harness.scale);
  let cores = Domain.recommended_domain_count () in
  let top = max 1 cfg.Harness.domains in
  let counts = curve top in
  Printf.printf
    "host reports %d available core(s); grid: domains {%s} × partitions {%s}\n%!"
    cores
    (String.concat " " (List.map string_of_int counts))
    (String.concat " " (List.map string_of_int partition_counts));
  let triples = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  let (engine, _, _), load_seconds =
    Harness.timed (fun () ->
        Db2rdf.Engine.create_colored
          ~layout:(Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24) triples)
  in
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader engine) in
  let qs =
    List.map (fun (n, src) -> (n, Sparql.Parser.parse src)) (queries ())
  in
  (* Equality gate: every grid point must reproduce the sequential rows
     exactly (same rows, same order) before anything is timed. *)
  let stmts =
    List.map (fun (n, q) -> (n, Db2rdf.Engine.translate engine q)) qs
  in
  List.iter
    (fun (qname, stmt) ->
      let expect =
        batch_strings
          (Relsql.Executor.run ~domains:1 ~join_partitions:1 db stmt)
      in
      List.iter
        (fun d ->
          List.iter
            (fun p ->
              let got =
                batch_strings
                  (Relsql.Executor.run ~domains:d ~join_partitions:p db stmt)
              in
              if got <> expect then
                failwith
                  (Printf.sprintf
                     "E14 equality violation: %s at domains=%d partitions=%d \
                      diverges from the sequential executor"
                     qname d p))
            partition_counts)
        counts)
    stmts;
  Printf.printf
    "equality: every (domains, partitions) point matches the sequential rows\n%!";
  (* Which operators actually partition at the top grid point — stars
     fuse into scans, so only the HJ queries are expected to. *)
  let partitioned_ops =
    List.map
      (fun (qname, stmt) ->
        let _, stats =
          Relsql.Executor.run_analyzed ~domains:top
            ~join_partitions:(List.fold_left max 1 partition_counts) db stmt
        in
        let parts =
          Relsql.Opstats.fold
            (fun acc n -> max acc n.Relsql.Opstats.partitions)
            0 stats
        in
        (qname, parts))
      stmts
  in
  let sweep d p : (string * Harness.measurement) list =
    Relsql.Database.set_parallelism db d;
    Relsql.Database.set_join_partitions db p;
    let sys =
      { Harness.sys_name = Printf.sprintf "%dd/%dp" d p;
        store = Db2rdf.Engine.to_store engine; load_seconds }
    in
    List.map (fun (qname, q) -> (qname, Harness.measure cfg sys qname q)) qs
  in
  let grid =
    List.concat_map
      (fun d -> List.map (fun p -> ((d, p), sweep d p)) partition_counts)
      counts
  in
  Relsql.Database.set_parallelism db 1;
  Relsql.Database.set_join_partitions db 0;
  let base = List.assoc (1, 1) grid in
  let top_p = List.fold_left max 1 partition_counts in
  let speedup_at key qname =
    match (List.assoc_opt qname base, List.assoc_opt key grid) with
    | Some b, Some ms ->
      (match (b.Harness.m_outcome, List.assoc_opt qname ms) with
       | `Complete _, Some m when m.Harness.m_outcome <> `Timeout
                                  && m.Harness.m_seconds > 0.0 ->
         Some (b.Harness.m_seconds /. m.Harness.m_seconds)
       | _ -> None)
    | _ -> None
  in
  Harness.subsection
    (Printf.sprintf
       "Join queries over (domains, partitions) (ms; speedup at %dd/%dp)" top
       top_p);
  Harness.print_table
    ("Query"
     :: List.map (fun ((d, p), _) -> Printf.sprintf "%dd/%dp" d p) grid
     @ [ "x@top" ])
    (List.map
       (fun (qname, _) ->
         qname
         :: List.map
              (fun (_, ms) -> Harness.outcome_cell (List.assoc qname ms))
              grid
         @ [ (match speedup_at (top, top_p) qname with
              | Some s -> Printf.sprintf "%.2fx" s
              | None -> "-") ])
       qs);
  let gm =
    geomean
      (List.filter_map (fun (qname, _) -> speedup_at (top, top_p) qname) qs)
  in
  (match gm with
   | Some g ->
     Printf.printf
       "\ngeomean speedup at %d domains / %d partitions: %.2fx (host has %d \
        core(s) — speedup > 1 requires real cores)\n%!"
       top top_p g cores
   | None -> Printf.printf "\ngeomean speedup: n/a\n%!");
  Harness.write_json cfg ~file:"BENCH_join.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "partitioned-hash-join");
         ("workload", Harness.J_str "micro");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("runs", Harness.J_int cfg.Harness.runs);
         ("host_cores", Harness.J_int cores);
         ( "note",
           Harness.J_str
             (Printf.sprintf
                "grid points share one store; speedups are bounded by the %d \
                 core(s) of this host — on a single-core host the grid \
                 measures partitioning overhead, not speedup. Every point \
                 was asserted row-identical to the sequential executor \
                 before timing." cores) );
         ("equality_checked", Harness.J_str "all grid points vs sequential");
         ( "partitioned_operators",
           Harness.J_obj
             (List.map
                (fun (qname, parts) -> (qname, Harness.J_int parts))
                partitioned_ops) );
         ( "grid",
           Harness.J_list
             (List.map
                (fun ((d, p), ms) ->
                  Harness.J_obj
                    [ ("domains", Harness.J_int d);
                      ("partitions", Harness.J_int p);
                      ( "measurements",
                        Harness.J_list
                          (List.map
                             (fun (qname, m) ->
                               Harness.J_obj
                                 [ ("query", Harness.J_str qname);
                                   ("m", Harness.measurement_json m) ])
                             ms) ) ])
                grid) );
         ( "speedup_vs_sequential",
           Harness.J_obj
             (List.filter_map
                (fun (qname, _) ->
                  Option.map
                    (fun s -> (qname, Harness.J_float s))
                    (speedup_at (top, top_p) qname))
                qs) );
         ( "geomean_speedup",
           match gm with
           | Some g -> Harness.J_float g
           | None -> Harness.J_str "n/a" ) ])
