(** RDF triples. *)

type t = { s : Term.t; p : Term.t; o : Term.t }

val make : Term.t -> Term.t -> Term.t -> t

(** [spo s p o] builds a triple whose subject and predicate are IRIs
    given as raw strings. *)
val spo : string -> string -> Term.t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

(** N-Triples line (terminated with [" ."], no newline). *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
