lib/relsql/planner.mli: Database Sql_ast Value
