(** [rdfstore] — command-line front end to the DB2RDF engine.

    Subcommands:
    - [query]: load an N-Triples file (or a generated workload) and run a
      SPARQL query against a chosen store backend.
    - [update]: load data and apply a SPARQL 1.1 update script
      (INSERT DATA / DELETE DATA / DELETE WHERE) to the live store.
    - [explain]: show the full translation pipeline for a query (flow,
      execution tree, merged plan, SQL, physical plan).
    - [generate]: emit a workload dataset as N-Triples.
    - [stats]: load data and print storage/coloring statistics.
    - [sql]: run a raw SQL statement against the DB2RDF relations. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let data_arg =
  let doc = "N-Triples file to load, or workload:NAME[:SCALE] for a generated \
             dataset (names: micro, lubm, sp2b, dbpedia, prbench)." in
  Arg.(required & opt (some string) None & info [ "d"; "data" ] ~docv:"DATA" ~doc)

let backend_arg =
  let doc = "Store backend: db2rdf, triple, vertical or native." in
  Arg.(value & opt string "db2rdf" & info [ "b"; "backend" ] ~docv:"BACKEND" ~doc)

let columns_arg =
  let doc = "Pred/val column pairs in the DPH and RPH relations." in
  Arg.(value & opt int 24 & info [ "k"; "columns" ] ~docv:"K" ~doc)

let no_color_arg =
  let doc = "Disable graph coloring (use pure 2-hash predicate mapping)." in
  Arg.(value & flag & info [ "no-coloring" ] ~doc)

let timeout_arg =
  let doc = "Per-query timeout in seconds." in
  Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"S" ~doc)

let domains_arg =
  let doc = "OCaml domains the executor may spread hot operators over \
             (1 = sequential; parallel runs return identical results)." in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let load_domains_arg =
  let doc = "OCaml domains for the bulk loader's morsel pipeline \
             (1 = sequential; the parallel load builds a bit-identical \
             store)." in
  Arg.(value & opt int 1 & info [ "load-domains" ] ~docv:"N" ~doc)

let join_partitions_arg =
  let doc = "Radix partitions for parallel hash-join builds (rounded up \
             to a power of two; 0 = auto, sized from the domain count; \
             results are bit-identical for every setting)." in
  Arg.(value & opt int 0 & info [ "join-partitions" ] ~docv:"P" ~doc)

let compress_arg =
  let doc = "Freeze tables into bit-packed columnar storage after load \
             (dictionary-coded columns, zone maps, run-length-encoded \
             postings). Purely physical: query results are identical." in
  Arg.(value & flag & info [ "compress" ] ~doc)

let merge_threshold_arg =
  let doc = "With --compress: fold a frozen table's boxed delta side \
             back into its packed main after a write statement only \
             once the pending rows and tombstones exceed this fraction \
             of the main (0 = re-pack after every statement). Results \
             are identical at any setting." in
  Arg.(value & opt float 0.25 & info [ "merge-threshold" ] ~docv:"F" ~doc)

let wcoj_arg =
  let doc = "Allow the worst-case-optimal (leapfrog) multiway join: \
             eligible conjunctive queries translate to a flat join and \
             the planner picks between the binary join tree and the \
             leapfrog operator from characteristic-set statistics. \
             Purely a plan-shape knob: results are identical." in
  Arg.(value & flag & info [ "wcoj" ] ~doc)

let extvp_arg =
  let doc = "Allow ExtVP-style semi-join reductions: the planner may \
             substitute a lazily materialized subset of DPH for a \
             star's base scan when a join edge matches a selective \
             (predicate pair, correlation) signature. Purely a \
             plan-shape knob: results are identical." in
  Arg.(value & flag & info [ "extvp" ] ~doc)

let extvp_build_arg =
  let doc = "With --extvp: eagerly materialize every advisable \
             reduction at load time instead of on first planner \
             request." in
  Arg.(value & flag & info [ "extvp-build" ] ~doc)

let extvp_threshold_arg =
  let doc = "Keep a reduction only when its selectivity (kept rows / \
             DPH rows) is below this threshold (S2RDF's ScaleUB)." in
  Arg.(value & opt float 0.25 & info [ "extvp-threshold" ] ~docv:"F" ~doc)

let extvp_budget_arg =
  let doc = "Memory budget in MB for cached reductions; least recently \
             used are evicted beyond it." in
  Arg.(value & opt int 64 & info [ "extvp-budget" ] ~docv:"MB" ~doc)

let load_triples spec =
  match String.split_on_char ':' spec with
  | [ "workload"; name ] | [ "workload"; name; _ ] ->
    let scale =
      match String.split_on_char ':' spec with
      | [ _; _; s ] -> int_of_string s
      | _ -> 10_000
    in
    (match name with
     | "micro" -> Workloads.Micro.generate ~scale
     | "lubm" -> Workloads.Lubm.generate ~scale
     | "sp2b" -> Workloads.Sp2b.generate ~scale
     | "dbpedia" -> Workloads.Dbpedia.generate ~scale
     | "prbench" -> Workloads.Prbench.generate ~scale
     | "snowflake" -> Workloads.Snowflake.generate ~scale
     | other -> failwith ("unknown workload: " ^ other))
  | _ ->
    let acc = ref [] in
    Rdf.Ntriples.parse_file (fun t -> acc := t :: !acc) spec;
    List.rev !acc

let build_store ?(load_domains = 1) ?(join_partitions = 0) ?(compress = false)
    ?(merge_threshold = 0.25) ?(wcoj = false) ?(extvp = false)
    ?(extvp_build = false)
    ?(extvp_threshold = Relsql.Extvp.default_threshold)
    ?(extvp_budget_mb = 64) backend k no_coloring domains triples :
  Db2rdf.Store.t =
  (* Triple/vertical stores freeze via the process-wide default; the
     engine takes it as an explicit option. *)
  let saved_compress = !Relsql.Database.default_compress in
  Relsql.Database.default_compress := compress;
  Fun.protect
    ~finally:(fun () -> Relsql.Database.default_compress := saved_compress)
  @@ fun () ->
  match backend with
  | "db2rdf" ->
    let options =
      { Db2rdf.Engine.default_options with parallelism = domains; load_domains;
        join_partitions; compress; merge_threshold; wcoj; extvp; extvp_build;
        extvp_threshold; extvp_budget_mb }
    in
    if no_coloring then begin
      let e =
        Db2rdf.Engine.create ~options
          ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) ()
      in
      Db2rdf.Engine.load e triples;
      Db2rdf.Engine.to_store e
    end
    else begin
      let e, _, _ =
        Db2rdf.Engine.create_colored ~options
          ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) triples
      in
      Db2rdf.Engine.to_store e
    end
  | "triple" ->
    let ts = Db2rdf.Triple_store.create () in
    Db2rdf.Triple_store.load ts triples;
    Db2rdf.Triple_store.to_store ts
  | "vertical" ->
    let vs = Db2rdf.Vertical_store.create () in
    Db2rdf.Vertical_store.load vs triples;
    Db2rdf.Vertical_store.to_store vs
  | "native" ->
    let ns = Db2rdf.Native_store.create () in
    Db2rdf.Native_store.load ns triples;
    Db2rdf.Native_store.to_store ns
  | other -> failwith ("unknown backend: " ^ other)

let read_query = function
  | Some q when Sys.file_exists q ->
    let ic = open_in q in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  | Some q -> q
  | None -> failwith "a SPARQL query (string or file) is required"

let query_arg =
  let doc = "SPARQL query text, or a path to a file containing it." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)

(* ------------------------------------------------------------------ *)
(* query                                                               *)
(* ------------------------------------------------------------------ *)

let run_query data backend k no_coloring domains load_domains join_partitions
    compress wcoj extvp extvp_build extvp_threshold extvp_budget_mb timeout
    query =
  let triples = load_triples data in
  Printf.printf "loaded %d triples into %s\n%!" (List.length triples) backend;
  let store =
    build_store ~load_domains ~join_partitions ~compress ~wcoj ~extvp
      ~extvp_build ~extvp_threshold ~extvp_budget_mb backend k no_coloring
      domains triples
  in
  let q = Sparql.Parser.parse (read_query query) in
  let t0 = Unix.gettimeofday () in
  match Db2rdf.Store.run ~timeout store q with
  | Db2rdf.Store.Complete r, dt ->
    Printf.printf "%s\n" (String.concat "\t" ("?" :: r.Sparql.Ref_eval.vars));
    List.iter
      (fun row ->
        print_endline
          (String.concat "\t"
             ("" :: List.map
                      (function
                        | Some t -> Rdf.Term.to_string t
                        | None -> "")
                      row)))
      r.Sparql.Ref_eval.rows;
    Printf.printf "%d rows in %.1f ms\n" (List.length r.Sparql.Ref_eval.rows)
      (dt *. 1000.0)
  | outcome, dt ->
    Printf.printf "%s after %.1f ms\n"
      (Db2rdf.Store.outcome_to_string outcome)
      (dt *. 1000.0);
    ignore t0

let query_cmd =
  let info = Cmd.info "query" ~doc:"Load data and evaluate a SPARQL query." in
  Cmd.v info
    Term.(
      const run_query $ data_arg $ backend_arg $ columns_arg $ no_color_arg
      $ domains_arg $ load_domains_arg $ join_partitions_arg $ compress_arg
      $ wcoj_arg $ extvp_arg $ extvp_build_arg $ extvp_threshold_arg
      $ extvp_budget_arg $ timeout_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* update                                                              *)
(* ------------------------------------------------------------------ *)

let update_summary = function
  | Sparql.Ast.Insert_data ts ->
    Printf.sprintf "INSERT DATA (%d triples)" (List.length ts)
  | Sparql.Ast.Delete_data ts ->
    Printf.sprintf "DELETE DATA (%d triples)" (List.length ts)
  | Sparql.Ast.Delete_where tps ->
    Printf.sprintf "DELETE WHERE (%d patterns)" (List.length tps)

let run_update data backend k no_coloring domains load_domains join_partitions
    compress merge_threshold wcoj extvp extvp_build extvp_threshold
    extvp_budget_mb timeout script =
  let triples = load_triples data in
  Printf.printf "loaded %d triples into %s\n%!" (List.length triples) backend;
  let store =
    build_store ~load_domains ~join_partitions ~compress ~merge_threshold ~wcoj
      ~extvp ~extvp_build ~extvp_threshold ~extvp_budget_mb backend k
      no_coloring domains triples
  in
  let statements = Sparql.Parser.parse_script (read_query script) in
  List.iteri
    (fun i stmt ->
      match stmt with
      | Sparql.Ast.S_update u ->
        let t0 = Unix.gettimeofday () in
        store.Db2rdf.Store.update u;
        Printf.printf "stmt %d: %s in %.1f ms\n%!" (i + 1) (update_summary u)
          ((Unix.gettimeofday () -. t0) *. 1000.0)
      | Sparql.Ast.S_query q ->
        (match Db2rdf.Store.run ~timeout store q with
         | Db2rdf.Store.Complete r, dt ->
           Printf.printf "stmt %d: SELECT -> %d rows in %.1f ms\n%!" (i + 1)
             (List.length r.Sparql.Ref_eval.rows) (dt *. 1000.0)
         | outcome, dt ->
           Printf.printf "stmt %d: SELECT -> %s after %.1f ms\n%!" (i + 1)
             (Db2rdf.Store.outcome_to_string outcome) (dt *. 1000.0)))
    statements;
  let dump =
    Sparql.Ast.select
      (Sparql.Ast.Select_vars [ "s"; "p"; "o" ])
      (Sparql.Ast.Bgp
         [ { Sparql.Ast.tp_s = Var "s"; tp_p = Var "p"; tp_o = Var "o" } ])
  in
  match Db2rdf.Store.run ~timeout store dump with
  | Db2rdf.Store.Complete r, _ ->
    Printf.printf "store now holds %d triples\n"
      (List.length r.Sparql.Ref_eval.rows)
  | outcome, _ ->
    Printf.printf "final count unavailable (%s)\n"
      (Db2rdf.Store.outcome_to_string outcome)

let update_cmd =
  let script_arg =
    let doc = "SPARQL update script text (INSERT DATA / DELETE DATA / \
               DELETE WHERE statements and SELECT probes separated by \
               semicolons), or a path to a file containing it." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let info =
    Cmd.info "update"
      ~doc:"Load data and apply a SPARQL 1.1 update script. Statements \
            run in order against the chosen backend's live store; SELECT \
            statements in the script are evaluated and their row counts \
            printed. Under --compress, writes land in each frozen \
            table's boxed delta side (no re-encode per statement) and \
            fold back into the packed main per --merge-threshold."
  in
  Cmd.v info
    Term.(
      const run_update $ data_arg $ backend_arg $ columns_arg $ no_color_arg
      $ domains_arg $ load_domains_arg $ join_partitions_arg $ compress_arg
      $ merge_threshold_arg $ wcoj_arg $ extvp_arg $ extvp_build_arg
      $ extvp_threshold_arg $ extvp_budget_arg $ timeout_arg $ script_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let run_explain data backend k no_coloring domains load_domains
    join_partitions compress wcoj extvp extvp_build extvp_threshold
    extvp_budget_mb analyze timeout query =
  let triples = load_triples data in
  let store =
    build_store ~load_domains ~join_partitions ~compress ~wcoj ~extvp
      ~extvp_build ~extvp_threshold ~extvp_budget_mb backend k no_coloring
      domains triples
  in
  let q = Sparql.Parser.parse (read_query query) in
  print_endline (store.Db2rdf.Store.explain q);
  if analyze then begin
    match store.Db2rdf.Store.analyze ~timeout q with
    | r, Some tree ->
      print_endline "== analyze ==";
      print_string (Relsql.Opstats.to_string tree);
      Printf.printf "(%d result rows)\n" (List.length r.Sparql.Ref_eval.rows)
    | r, None ->
      Printf.printf "(no operator metrics for this backend; %d result rows)\n"
        (List.length r.Sparql.Ref_eval.rows)
    | exception Relsql.Executor.Timeout ->
      Printf.printf "== analyze ==\ntimeout after %.1fs\n" timeout
  end

let analyze_arg =
  let doc = "Also execute the query and print per-operator metrics \
             (rows in/out, index probes, hash-build sizes, timings)." in
  Arg.(value & flag & info [ "analyze" ] ~doc)

let explain_cmd =
  let info =
    Cmd.info "explain"
      ~doc:"Show the translation pipeline (flow, plan, SQL) for a query."
  in
  Cmd.v info
    Term.(
      const run_explain $ data_arg $ backend_arg $ columns_arg $ no_color_arg
      $ domains_arg $ load_domains_arg $ join_partitions_arg $ compress_arg
      $ wcoj_arg $ extvp_arg $ extvp_build_arg $ extvp_threshold_arg
      $ extvp_budget_arg $ analyze_arg $ timeout_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let run_generate data output =
  let triples = load_triples data in
  (match output with
   | Some path ->
     Rdf.Ntriples.write_file path triples;
     Printf.printf "wrote %d triples to %s\n" (List.length triples) path
   | None -> List.iter (fun t -> print_endline (Rdf.Triple.to_string t)) triples)

let generate_cmd =
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to FILE instead of stdout.")
  in
  let info = Cmd.info "generate" ~doc:"Emit a dataset as N-Triples." in
  Cmd.v info Term.(const run_generate $ data_arg $ output)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let print_compression_reports db =
  let reports = Relsql.Database.compression_reports db in
  Printf.printf "\nper-table memory (packed vs boxed-equivalent):\n";
  Printf.printf "  %-14s %9s %12s %12s %7s %s\n" "table" "rows" "boxed" "packed"
    "ratio" "bits/column";
  List.iter
    (fun (r : Relsql.Table.compression_report) ->
      let ratio =
        if r.Relsql.Table.r_packed_bytes > 0 then
          Printf.sprintf "%.2fx"
            (float_of_int r.Relsql.Table.r_boxed_bytes
            /. float_of_int r.Relsql.Table.r_packed_bytes)
        else "-"
      in
      Printf.printf "  %-14s %9d %11dB %11dB %7s %s%s\n" r.Relsql.Table.r_table
        r.Relsql.Table.r_live_rows r.Relsql.Table.r_boxed_bytes
        r.Relsql.Table.r_packed_bytes ratio
        (String.concat ","
           (List.map
              (fun (c, b) -> Printf.sprintf "%s:%d" c b)
              r.Relsql.Table.r_col_bits))
        (if r.Relsql.Table.r_thaws > 0 then
           Printf.sprintf " (thawed by writes %dx)" r.Relsql.Table.r_thaws
         else "");
      if
        r.Relsql.Table.r_delta_rows > 0 || r.Relsql.Table.r_tombstones > 0
        || r.Relsql.Table.r_merges > 0
      then
        Printf.printf
          "  %-14s delta: %d rows (%dB), %d tombstones, %d merges, %dB \
           re-encode deferred\n"
          "" r.Relsql.Table.r_delta_rows r.Relsql.Table.r_delta_bytes
          r.Relsql.Table.r_tombstones r.Relsql.Table.r_merges
          r.Relsql.Table.r_deferred_bytes;
      if r.Relsql.Table.r_posting_entries > 0 then
        Printf.printf "  %-14s postings: %d entries in %d words (%.2fx)\n" ""
          r.Relsql.Table.r_posting_entries r.Relsql.Table.r_posting_words
          (float_of_int r.Relsql.Table.r_posting_entries
          /. float_of_int (max 1 r.Relsql.Table.r_posting_words)))
    reports

let print_extvp_report e =
  match Db2rdf.Engine.extvp_registry e with
  | None -> ()
  | Some reg ->
    let c = Relsql.Extvp.counters reg in
    Printf.printf
      "\nsemi-join reductions: %d cached (%.2f MB), %d built in %.1f ms, %d \
       rejected, %d evicted\n"
      (Relsql.Extvp.cached_count reg)
      (float_of_int c.Relsql.Extvp.bytes /. 1_048_576.0)
      c.Relsql.Extvp.builds
      (1000.0 *. c.Relsql.Extvp.build_s)
      c.Relsql.Extvp.rejections c.Relsql.Extvp.evictions;
    List.iter
      (fun (name, sel, bytes) ->
        Printf.printf "  %-24s sel %.4f  %9dB\n" name sel bytes)
      (Relsql.Extvp.cached reg)

let run_stats data k compress extvp extvp_threshold extvp_budget_mb =
  let triples = load_triples data in
  let options =
    { Db2rdf.Engine.default_options with compress; extvp;
      extvp_build = extvp; extvp_threshold; extvp_budget_mb }
  in
  let e, dcol, rcol =
    Db2rdf.Engine.create_colored ~options
      ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) triples
  in
  let loader = Db2rdf.Engine.loader e in
  let d = Db2rdf.Loader.report loader Db2rdf.Loader.Direct in
  let r = Db2rdf.Loader.report loader Db2rdf.Loader.Reverse in
  Printf.printf "triples loaded:     %d\n" (Db2rdf.Loader.triples_loaded loader);
  Printf.printf "dictionary size:    %d terms\n"
    (Rdf.Dictionary.size (Db2rdf.Engine.dictionary e));
  Printf.printf "predicates:         %d (DPH colors %d, coverage %.1f%%)\n"
    dcol.Db2rdf.Coloring.total_predicates dcol.Db2rdf.Coloring.colors_used
    (100.0 *. Db2rdf.Coloring.coverage dcol);
  Printf.printf "                    (RPH colors %d, coverage %.1f%%)\n"
    rcol.Db2rdf.Coloring.colors_used (100.0 *. Db2rdf.Coloring.coverage rcol);
  Printf.printf "DPH: %d rows, %d spills, %.1f%% null cells, %.2f MB\n"
    d.Db2rdf.Loader.rows d.Db2rdf.Loader.spills
    (100.0 *. d.Db2rdf.Loader.null_fraction)
    (float_of_int d.Db2rdf.Loader.storage_bytes /. 1_048_576.0);
  Printf.printf "RPH: %d rows, %d spills, %.1f%% null cells, %.2f MB\n"
    r.Db2rdf.Loader.rows r.Db2rdf.Loader.spills
    (100.0 *. r.Db2rdf.Loader.null_fraction)
    (float_of_int r.Db2rdf.Loader.storage_bytes /. 1_048_576.0);
  print_compression_reports (Db2rdf.Loader.database loader);
  if extvp then print_extvp_report e

let stats_cmd =
  let info = Cmd.info "stats" ~doc:"Load data and print storage statistics." in
  Cmd.v info
    Term.(
      const run_stats $ data_arg $ columns_arg $ compress_arg $ extvp_arg
      $ extvp_threshold_arg $ extvp_budget_arg)

(* ------------------------------------------------------------------ *)
(* merge                                                               *)
(* ------------------------------------------------------------------ *)

(* Demonstrate the delta-main write path end to end: load compressed,
   apply an update script (writes stay delta-resident under a high
   threshold), then eagerly compact with [Engine.merge] and report the
   per-table storage state before and after. *)
let run_merge data k merge_threshold script =
  let triples = load_triples data in
  let options =
    { Db2rdf.Engine.default_options with compress = true; merge_threshold }
  in
  let e, _, _ =
    Db2rdf.Engine.create_colored ~options
      ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) triples
  in
  Printf.printf "loaded %d triples (compressed)\n%!" (List.length triples);
  (match script with
   | None -> ()
   | Some src ->
     List.iteri
       (fun i stmt ->
         match stmt with
         | Sparql.Ast.S_update u ->
           let t0 = Unix.gettimeofday () in
           Db2rdf.Engine.update e u;
           Printf.printf "stmt %d: %s in %.1f ms\n%!" (i + 1)
             (update_summary u)
             ((Unix.gettimeofday () -. t0) *. 1000.0)
         | Sparql.Ast.S_query _ -> ())
       (Sparql.Parser.parse_script (read_query (Some src))));
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  print_compression_reports db;
  let t0 = Unix.gettimeofday () in
  let merged = Db2rdf.Engine.merge e in
  Printf.printf "\nmerged %d table(s) in %.1f ms\n" merged
    ((Unix.gettimeofday () -. t0) *. 1000.0);
  print_compression_reports db

let merge_cmd =
  let script_arg =
    let doc = "Optional SPARQL update script applied (delta-resident) \
               before the merge." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let info =
    Cmd.info "merge"
      ~doc:"Load data compressed, optionally apply an update script \
            whose writes stay on the boxed delta side, then eagerly \
            fold every table's delta back into its packed main \
            (fresh zone maps and postings) and report per-table \
            storage before and after."
  in
  Cmd.v info
    Term.(
      const run_merge $ data_arg $ columns_arg
      $ Arg.(value & opt float infinity
             & info [ "merge-threshold" ] ~docv:"F"
                 ~doc:"Automatic per-statement merge threshold while the \
                       script runs (default: never, so the final eager \
                       merge does all the folding).")
      $ script_arg)

(* ------------------------------------------------------------------ *)
(* sql                                                                 *)
(* ------------------------------------------------------------------ *)

let run_sql data k no_coloring domains join_partitions stmt =
  let triples = load_triples data in
  let e =
    if no_coloring then begin
      let e = Db2rdf.Engine.create ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) () in
      Db2rdf.Engine.load e triples;
      e
    end
    else begin
      let e, _, _ =
        Db2rdf.Engine.create_colored
          ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k) triples
      in
      e
    end
  in
  let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
  Relsql.Database.set_parallelism db domains;
  Relsql.Database.set_join_partitions db join_partitions;
  let parsed = Relsql.Sql_parser.parse (read_query stmt) in
  let r = Relsql.Executor.run db parsed in
  print_endline (String.concat "\t" (Relsql.Executor.column_names r));
  Relsql.Batch.iter
    (fun row ->
      print_endline
        (String.concat "\t"
           (Array.to_list (Array.map Relsql.Value.to_string row))))
    r;
  Printf.printf "%d rows\n" (Relsql.Batch.length r)

let sql_cmd =
  let info =
    Cmd.info "sql" ~doc:"Run raw SQL against the DB2RDF relations (DPH/DS/RPH/RS/DICT)."
  in
  Cmd.v info
    Term.(
      const run_sql $ data_arg $ columns_arg $ no_color_arg $ domains_arg
      $ join_partitions_arg $ query_arg)

(* ------------------------------------------------------------------ *)
(* load                                                                *)
(* ------------------------------------------------------------------ *)

let build_engine k no_coloring load_domains triples =
  let options = { Db2rdf.Engine.default_options with load_domains } in
  let layout = Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k in
  if no_coloring then begin
    let e = Db2rdf.Engine.create ~options ~layout () in
    Db2rdf.Engine.load e triples;
    e
  end
  else begin
    let e, _, _ = Db2rdf.Engine.create_colored ~options ~layout triples in
    e
  end

let print_load_stats ~parse_s (s : Db2rdf.Loader.load_stats) =
  Printf.printf "domains:  %d (%d morsels)\n" s.Db2rdf.Loader.domains_used
    s.Db2rdf.Loader.morsels;
  Printf.printf "triples:  %d in, %d new\n" s.Db2rdf.Loader.triples_in
    s.Db2rdf.Loader.triples_new;
  Printf.printf "parse:    %8.1f ms\n" (1000.0 *. parse_s);
  Printf.printf "encode:   %8.1f ms\n" (1000.0 *. s.Db2rdf.Loader.encode_s);
  Printf.printf "merge:    %8.1f ms\n" (1000.0 *. s.Db2rdf.Loader.merge_s);
  Printf.printf "assemble: %8.1f ms\n" (1000.0 *. s.Db2rdf.Loader.assemble_s);
  Printf.printf "total:    %8.1f ms\n"
    (1000.0
    *. (parse_s +. s.Db2rdf.Loader.encode_s +. s.Db2rdf.Loader.merge_s
       +. s.Db2rdf.Loader.assemble_s))

let run_load data k no_coloring load_domains verify =
  let t0 = Unix.gettimeofday () in
  let triples = load_triples data in
  let parse_s = Unix.gettimeofday () -. t0 in
  let e = build_engine k no_coloring load_domains triples in
  (match Db2rdf.Engine.load_stats e with
   | Some s -> print_load_stats ~parse_s s
   | None -> print_endline "no load ran");
  if verify then begin
    let seq = build_engine k no_coloring 1 triples in
    let d_par = Db2rdf.Loader.dump_store (Db2rdf.Engine.loader e) in
    let d_seq = Db2rdf.Loader.dump_store (Db2rdf.Engine.loader seq) in
    if d_par = d_seq then
      Printf.printf "verify:   OK (store identical to sequential load)\n"
    else begin
      Printf.printf "verify:   MISMATCH against sequential load\n";
      (* Show the first differing dump line of each store. *)
      let ls = String.split_on_char '\n' d_seq
      and lp = String.split_on_char '\n' d_par in
      let rec first_diff = function
        | a :: ra, b :: rb ->
          if a = b then first_diff (ra, rb) else Some (a, b)
        | a :: _, [] -> Some (a, "<missing>")
        | [], b :: _ -> Some ("<missing>", b)
        | [], [] -> None
      in
      (match first_diff (ls, lp) with
       | Some (a, b) ->
         Printf.printf "  seq: %s\n  par: %s\n" a b
       | None -> ());
      exit 1
    end
  end

let load_cmd =
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Also run a sequential load of the same data and fail \
                 unless the two stores are bit-identical (dictionary, \
                 rows, row order, lids, spill flags, registries).")
  in
  let info =
    Cmd.info "load"
      ~doc:"Bulk-load data and print per-phase timings (parse, encode, \
            merge, assemble) of the morsel-parallel loader."
  in
  Cmd.v info
    Term.(
      const run_load $ data_arg $ columns_arg $ no_color_arg $ load_domains_arg
      $ verify)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)
(* ------------------------------------------------------------------ *)

let run_fuzz seed cases timeout fuzz_backend domains load_domains
    join_partitions compressed wcoj extvp updates corpus replay verbose =
  (match fuzz_backend with
   | Some b when not (List.mem b Fuzz.Runner.backend_names) ->
     Printf.eprintf "unknown backend %S; available: %s\n" b
       (String.concat ", " Fuzz.Runner.backend_names);
     exit 2
   | _ -> ());
  match replay with
  | Some path ->
    (* Replay one .repro file (or every .repro in a directory). *)
    let files =
      if Sys.is_directory path then
        Sys.readdir path |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".repro")
        |> List.sort String.compare
        |> List.map (Filename.concat path)
      else [ path ]
    in
    let failures = ref 0 in
    List.iter
      (fun file ->
        let r = Fuzz.Repro.read file in
        match
          Fuzz.Runner.check_repro ?only:fuzz_backend ~domains ~load_domains
            ~join_partitions ~compressed ~wcoj ~extvp ~timeout r
        with
        | Ok () -> Printf.printf "PASS %s\n%!" file
        | Error detail ->
          incr failures;
          Printf.printf "FAIL %s\n  %s\n%!" file detail)
      files;
    Printf.printf "%d/%d repro files pass\n" (List.length files - !failures)
      (List.length files);
    if !failures > 0 then exit 1
  | None ->
    (match corpus with
     | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
     | _ -> ());
    let config =
      { Fuzz.Runner.seed;
        cases;
        timeout;
        corpus_dir = corpus;
        only = fuzz_backend;
        domains;
        load_domains;
        join_partitions;
        compressed;
        wcoj;
        extvp;
        updates;
        log = (if verbose then prerr_endline else ignore) }
    in
    let s = Fuzz.Runner.fuzz config in
    Printf.printf
      "fuzz: seed %d, %d cases, %d skipped, %d divergent\n" seed
      s.Fuzz.Runner.cases_run s.Fuzz.Runner.skipped s.Fuzz.Runner.divergent;
    List.iter (fun p -> Printf.printf "  repro: %s\n" p) s.Fuzz.Runner.repro_files;
    if s.Fuzz.Runner.divergent > 0 then exit 1

let fuzz_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Random seed; the whole run is deterministic in it.")
  in
  let cases =
    Arg.(value & opt int 2000 & info [ "cases" ] ~docv:"N"
           ~doc:"Number of (graph, query) cases to generate.")
  in
  let timeout =
    Arg.(value & opt float 5.0 & info [ "timeout" ] ~docv:"S"
           ~doc:"Per-backend, per-case timeout in seconds.")
  in
  let backend =
    Arg.(value & opt (some string) None & info [ "b"; "backend" ] ~docv:"NAME"
           ~doc:(Printf.sprintf
                   "Fuzz a single backend instead of all of them (one of: %s)."
                   (String.concat ", " Fuzz.Runner.backend_names)))
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Run the relational backends with N executor domains \
                 (and a lowered parallelism threshold) so parallel \
                 execution is differentially checked against the \
                 reference evaluator.")
  in
  let load_domains =
    Arg.(value & opt int 1 & info [ "load-domains" ] ~docv:"N"
           ~doc:"Build the engine backends through the morsel-parallel \
                 bulk loader with N domains, so load bugs surface as \
                 query divergences.")
  in
  let join_partitions =
    Arg.(value & opt int 0 & info [ "join-partitions" ] ~docv:"P"
           ~doc:"Run the relational backends with P radix partitions in \
                 their parallel hash-join builds (0 = auto), so \
                 partitioned-build bugs surface as divergences.")
  in
  let compressed =
    Arg.(value & flag & info [ "compressed" ]
           ~doc:"Freeze every backend's tables into bit-packed columnar \
                 storage after load, so compressed-path bugs (packing, \
                 zone-map pruning, word-at-a-time equality) surface as \
                 divergences against the uncompressed oracle.")
  in
  let wcoj =
    Arg.(value & flag & info [ "wcoj" ]
           ~doc:"Run the DB2RDF backends with the leapfrog \
                 (worst-case-optimal) multiway join forced on for every \
                 recognized statement, so leapfrog bugs surface as \
                 divergences against the sequential oracle.")
  in
  let extvp =
    Arg.(value & flag & info [ "extvp" ]
           ~doc:"Run the DB2RDF backends with ExtVP semi-join reductions \
                 forced on for every matching join edge (regardless of \
                 selectivity), so reduction bugs surface as divergences \
                 against the sequential oracle.")
  in
  let updates =
    Arg.(value & flag & info [ "updates" ]
           ~doc:"Fuzz update scripts instead of single queries: random \
                 INSERT DATA / DELETE DATA / DELETE WHERE statements \
                 interleaved with SELECT probes, each backend's store \
                 contents diffed against the reference graph after every \
                 statement.")
  in
  let corpus =
    Arg.(value & opt (some string) (Some "test/corpus")
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Directory for shrunk .repro reproducers (created if \
                   missing); pass an empty string to disable writing.")
  in
  let corpus =
    Term.(const (function Some "" -> None | c -> c) $ corpus)
  in
  let replay =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"PATH"
           ~doc:"Replay a .repro file (or every .repro in a directory) \
                 instead of generating new cases.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Log each divergence and shrink result to stderr.")
  in
  let info =
    Cmd.info "fuzz"
      ~doc:"Differential fuzzing: random (graph, query) cases run on the \
            reference evaluator and every relational backend; divergences \
            are shrunk to minimal .repro reproducers. Exits non-zero if any \
            divergence is found."
  in
  Cmd.v info
    Term.(
      const run_fuzz $ seed $ cases $ timeout $ backend $ domains
      $ load_domains $ join_partitions $ compressed $ wcoj $ extvp $ updates
      $ corpus $ replay $ verbose)

(* ------------------------------------------------------------------ *)

let () =
  let info =
    Cmd.info "rdfstore" ~version:"1.0.0"
      ~doc:"An RDF store over a relational engine (DB2RDF reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ query_cmd; update_cmd; explain_cmd; generate_cmd; stats_cmd;
            merge_cmd; load_cmd; sql_cmd; fuzz_cmd ]))
