test/main.mli:
