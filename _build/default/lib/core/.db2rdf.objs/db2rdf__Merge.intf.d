lib/core/merge.mli: Cost Exec_tree Rdf Sparql
