(** RDFS-style inference by query expansion.

    The paper evaluates LUBM by rewriting each query so that inference
    is not required of the store (Section 4.1); supporting inferencing
    is listed as future work. This module implements that expansion
    automatically from an ontology: subclass axioms expand type triples,
    subproperty axioms expand predicate constants — each into a UNION
    over the transitive closure. *)

type ontology

val rdf_type_iri : string
val rdfs_subclass : string
val rdfs_subproperty : string

(** An empty ontology that recognizes [rdf:type]. *)
val create : unit -> ontology

(** Declare [sub] ⊑ [super]. *)
val add_subclass : ontology -> sub:string -> super:string -> unit

(** Declare property [sub] ⊑ [super]. *)
val add_subproperty : ontology -> sub:string -> super:string -> unit

(** Register an additional predicate with rdf:type semantics (e.g. a
    workload's own [type] predicate). *)
val add_type_predicate : ontology -> string -> unit

(** Build an ontology from the rdfs:subClassOf / rdfs:subPropertyOf
    triples of a graph. *)
val of_graph : Rdf.Graph.t -> ontology

(** All classes entailed to be subclasses of the argument (including
    itself); cycle-safe. *)
val subclasses_of : ontology -> string -> string list

val subproperties_of : ontology -> string -> string list

(** The UNION alternatives a single triple pattern expands to (the
    pattern itself when no axiom applies). *)
val expand_triple : ontology -> Ast.triple_pat -> Ast.triple_pat list

val expand_pattern : ontology -> Ast.pattern -> Ast.pattern

(** Rewrite a query so that evaluating it without inference returns the
    RDFS-entailed answers. *)
val expand_query : ontology -> Ast.query -> Ast.query
