(** EXPLAIN ANALYZE instrumentation: the {!Relsql.Opstats} tree that
    {!Relsql.Executor.run_analyzed} returns alongside each result. *)

open Relsql

let v_int i = Value.Int i
let v_str s = Value.Str s

let fixture_db () =
  let db = Database.create "stats" in
  let t = Database.create_table db "people" (Schema.make [ "name"; "age"; "city" ]) in
  let ins n a c = ignore (Table.insert t [| v_str n; v_int a; v_str c |]) in
  ins "alice" 30 "nyc";
  ins "bob" 40 "sfo";
  ins "carol" 35 "nyc";
  ins "dave" 25 "nyc";
  Table.create_index_on t "name";
  let pets = Database.create_table db "pets" (Schema.make [ "owner"; "pet" ]) in
  let insp o p = ignore (Table.insert pets [| v_str o; v_str p |]) in
  insp "alice" "cat";
  insp "alice" "dog";
  insp "carol" "fish";
  Table.create_index_on pets "owner";
  db

let analyzed db sql = Executor.run_analyzed db (Sql_parser.parse sql)

(* Structural invariants that must hold for every operator in every
   tree: counters are non-negative, a node consumes at least what its
   inputs produced, and inclusive wall time covers the children's. *)
let check_invariants (stats : Opstats.t) =
  Opstats.iter
    (fun n ->
      Alcotest.(check bool)
        (n.Opstats.label ^ ": rows_out >= 0")
        true (n.Opstats.rows_out >= 0);
      let child_out =
        List.fold_left
          (fun acc c -> acc + c.Opstats.rows_out)
          0 n.Opstats.children
      in
      Alcotest.(check bool)
        (n.Opstats.label ^ ": rows_in >= children's rows_out")
        true (n.Opstats.rows_in >= child_out);
      Alcotest.(check bool)
        (n.Opstats.label ^ ": self time >= 0")
        true (Opstats.self_seconds n >= -1e-9))
    stats

let test_invariants () =
  let db = fixture_db () in
  let _, stats =
    analyzed db
      "SELECT p.name AS n, q.pet AS pet FROM people AS p JOIN pets AS q ON q.owner = p.name WHERE p.city = 'nyc'"
  in
  check_invariants stats;
  (* Statement root: the body wrapper reports the final cardinality
     (alice x2 + carol x1). *)
  Alcotest.(check int) "root rows_out" 3 stats.Opstats.rows_out

let test_scan_counts () =
  let db = fixture_db () in
  let b, stats = analyzed db "SELECT p.name FROM people AS p WHERE p.city = 'nyc'" in
  Alcotest.(check int) "result rows" 3 (Batch.length b);
  let scans = Opstats.find_all stats ~prefix:"SeqScan people" in
  Alcotest.(check int) "one scan node" 1 (List.length scans);
  let scan = List.hd scans in
  (* The fused scan consumed the whole table and emitted the survivors. *)
  Alcotest.(check int) "scan rows_in = table size" 4 scan.Opstats.rows_in;
  Alcotest.(check int) "scan rows_out = survivors" 3 scan.Opstats.rows_out

let test_index_probes () =
  let db = fixture_db () in
  let _, stats =
    analyzed db
      "SELECT p.name AS n, q.pet AS pet FROM people AS p JOIN pets AS q ON q.owner = p.name"
  in
  check_invariants stats;
  match Opstats.find_all stats ~prefix:"IndexNLJoin" with
  | [ j ] ->
    (* One probe per outer row (no NULL keys in the fixture), three
       matching pet rows blitted through. *)
    Alcotest.(check int) "probes = outer rows" 4 j.Opstats.index_probes;
    Alcotest.(check int) "join rows_out" 3 j.Opstats.rows_out
  | l -> Alcotest.failf "expected one IndexNLJoin node, got %d" (List.length l)

let test_hash_build () =
  let db = fixture_db () in
  let _, stats =
    analyzed db
      "SELECT p.name AS n FROM people AS p JOIN pets AS q ON q.pet = p.city"
  in
  check_invariants stats;
  match Opstats.find_all stats ~prefix:"HashJoin" with
  | [ j ] ->
    (* The build side is the pets batch: every row has a non-null key. *)
    Alcotest.(check int) "build rows" 3 j.Opstats.build_rows
  | l -> Alcotest.failf "expected one HashJoin node, got %d" (List.length l)

let test_analyzed_matches_run () =
  let db = fixture_db () in
  let sql =
    "SELECT p.city AS c, q.pet AS pet FROM people AS p LEFT OUTER JOIN pets AS q ON q.owner = p.name ORDER BY c"
  in
  let plain = Executor.run db (Sql_parser.parse sql) in
  let b, stats = analyzed db sql in
  check_invariants stats;
  Alcotest.(check int) "same cardinality" (Batch.length plain) (Batch.length b);
  Alcotest.(check bool) "same rows" true
    (List.for_all2
       (fun a b -> Array.for_all2 Value.equal a b)
       (Batch.to_rows plain) (Batch.to_rows b))

(* The soft timeout must still fire under the batch executor: its row
   ticker is the mechanism behind the paper's timeout classification. *)
let test_timeout_still_fires () =
  let db = Database.create "t" in
  let t = Database.create_table db "big" (Schema.make [ "x" ]) in
  for i = 0 to 400 do
    ignore (Table.insert t [| v_int i |])
  done;
  Alcotest.check_raises "timeout fires" Executor.Timeout (fun () ->
      ignore
        (Executor.run_analyzed ~timeout:0.0 db
           (Sql_parser.parse
              "SELECT a.x FROM big AS a JOIN big AS b ON TRUE JOIN big AS c ON TRUE WHERE a.x + b.x + c.x = 0")))

let test_explain_analyze_text () =
  let db = fixture_db () in
  let s =
    Executor.explain ~analyze:true db
      (Sql_parser.parse "SELECT p.name FROM people AS p WHERE p.city = 'nyc'")
  in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true (contains needle))
    [ "body:"; "SeqScan people"; "analyze:"; "out="; "time=" ]

let suite =
  [ Alcotest.test_case "opstats invariants" `Quick test_invariants;
    Alcotest.test_case "scan rows in/out" `Quick test_scan_counts;
    Alcotest.test_case "index probes counted" `Quick test_index_probes;
    Alcotest.test_case "hash build size" `Quick test_hash_build;
    Alcotest.test_case "analyzed run matches run" `Quick test_analyzed_matches_run;
    Alcotest.test_case "timeout under analyze" `Quick test_timeout_still_fires;
    Alcotest.test_case "explain analyze text" `Quick test_explain_analyze_text ]
