(** Entity-chain ("snowflake") workload: orders → customers → regions
    plus background noise, all predicates single-valued — the regime
    where the flat leapfrog join shares one scan across the star
    regions the default pipeline scans separately. *)

val a : int -> string
(** Order-attribute predicate IRI [A<i>]. *)

val b : int -> string
(** Customer-attribute predicate IRI [B<i>]. *)

val c : int -> string
(** Region-attribute predicate IRI [C<i>]. *)

val ref1 : string
(** order → customer link predicate. *)

val ref2 : string
(** customer → region link predicate. *)

val generate : scale:int -> Rdf.Triple.t list
(** Generate roughly [scale] triples. Deterministic. *)

val queries : (string * string) list
(** [SF1]–[SF4]: two coupled stars, a three-hop chain, a snowflake with
    a constant, and a lone-star control. *)
