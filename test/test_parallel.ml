(** Morsel-driven parallel execution: domain-pool unit tests, the
    statement cache, batch growth, and — the load-bearing property —
    exact (row-for-row, order-included) equality between sequential and
    parallel execution of the same statements. *)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let with_pool n f =
  let pool = Relsql.Dpool.create n in
  Fun.protect ~finally:(fun () -> Relsql.Dpool.shutdown pool) (fun () -> f pool)

let test_dpool_empty () =
  with_pool 4 (fun pool ->
      let called = ref false in
      let participants =
        Relsql.Dpool.run pool ~morsels:0 (fun ~worker:_ _ -> called := true)
      in
      Alcotest.(check int) "no participants on empty job" 0 participants;
      Alcotest.(check bool) "body never called" false !called)

let test_dpool_each_morsel_once () =
  with_pool 4 (fun pool ->
      let m = 200 in
      let hits = Array.init m (fun _ -> Atomic.make 0) in
      let participants =
        Relsql.Dpool.run pool ~morsels:m (fun ~worker:_ i ->
            ignore (Atomic.fetch_and_add hits.(i) 1))
      in
      Alcotest.(check bool) "at least the submitter participated" true
        (participants >= 1 && participants <= 4);
      Array.iteri
        (fun i c ->
          Alcotest.(check int)
            (Printf.sprintf "morsel %d ran exactly once" i)
            1 (Atomic.get c))
        hits)

let test_dpool_worker_ids_in_bounds () =
  with_pool 4 (fun pool ->
      let used = Array.init 8 (fun _ -> Atomic.make false) in
      let oob = Atomic.make false in
      ignore
        (Relsql.Dpool.run pool ~morsels:64 (fun ~worker i ->
             if worker < 0 || worker >= 4 then Atomic.set oob true
             else Atomic.set used.(worker) true;
             (* a little work so other domains get a chance to join *)
             if i land 7 = 0 then Domain.cpu_relax ()));
      Alcotest.(check bool) "worker ids within [0, size)" false
        (Atomic.get oob);
      Alcotest.(check bool) "worker 0 (a participant) ran" true
        (Array.exists Atomic.get used))

exception Boom of int

let test_dpool_exception_propagates () =
  with_pool 4 (fun pool ->
      let raised =
        match
          Relsql.Dpool.run pool ~morsels:100 (fun ~worker:_ i ->
              if i = 37 then raise (Boom i))
        with
        | _ -> None
        | exception Boom i -> Some i
      in
      Alcotest.(check (option int)) "Boom re-raised in submitter" (Some 37)
        raised;
      (* The pool survives a failed job and runs the next one. *)
      let n = Atomic.make 0 in
      ignore
        (Relsql.Dpool.run pool ~morsels:50 (fun ~worker:_ _ ->
             ignore (Atomic.fetch_and_add n 1)));
      Alcotest.(check int) "pool usable after exception" 50 (Atomic.get n))

let test_dpool_nested_runs_inline () =
  with_pool 4 (fun pool ->
      let inner_participants = ref (-1) in
      ignore
        (Relsql.Dpool.run pool ~morsels:4 (fun ~worker:_ i ->
             if i = 0 then
               inner_participants :=
                 Relsql.Dpool.run pool ~morsels:4 (fun ~worker:_ _ -> ())));
      (* The nested job must complete (no deadlock) and degrade to the
         inline sequential path: exactly one participant. *)
      Alcotest.(check int) "nested run degrades to inline" 1
        !inner_participants)

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_lru () =
  let c = Relsql.Plan_cache.create ~capacity:2 () in
  Relsql.Plan_cache.add c "a" 1;
  Relsql.Plan_cache.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Relsql.Plan_cache.find c "a");
  (* "b" is now least recently used; adding "c" evicts it. *)
  Relsql.Plan_cache.add c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Relsql.Plan_cache.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1)
    (Relsql.Plan_cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3)
    (Relsql.Plan_cache.find c "c");
  let s = Relsql.Plan_cache.stats c in
  Alcotest.(check int) "hits" 3 s.Relsql.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Relsql.Plan_cache.misses;
  Alcotest.(check int) "entries" 2 s.Relsql.Plan_cache.entries

let test_plan_cache_clear_keeps_counters () =
  let c = Relsql.Plan_cache.create ~capacity:4 () in
  Relsql.Plan_cache.add c "a" 1;
  ignore (Relsql.Plan_cache.find c "a");
  ignore (Relsql.Plan_cache.find c "zz");
  Relsql.Plan_cache.clear c;
  let s = Relsql.Plan_cache.stats c in
  Alcotest.(check int) "entries dropped" 0 s.Relsql.Plan_cache.entries;
  Alcotest.(check int) "hit counter survives clear" 1 s.Relsql.Plan_cache.hits;
  Alcotest.(check int) "miss counter survives clear" 1
    s.Relsql.Plan_cache.misses;
  Alcotest.(check (option int)) "entry gone" None
    (Relsql.Plan_cache.find c "a")

let count_query = "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"

let first_int (r : Sparql.Ref_eval.results) =
  match r.Sparql.Ref_eval.rows with
  | [ [ Some (Rdf.Term.Lit { Rdf.Term.lex; _ }) ] ] -> int_of_string lex
  | _ -> Alcotest.fail "expected one single-column integer row"

let test_engine_cache_hits_and_invalidation () =
  let e = Db2rdf.Engine.create () in
  Db2rdf.Engine.load e (Helpers.fig1_triples ());
  let n0 = first_int (Db2rdf.Engine.query_string e count_query) in
  let n1 = first_int (Db2rdf.Engine.query_string e count_query) in
  Alcotest.(check int) "repeat gives same count" n0 n1;
  let s = Db2rdf.Engine.plan_cache_stats e in
  Alcotest.(check int) "second run was a cache hit" 1
    s.Relsql.Plan_cache.hits;
  Alcotest.(check int) "one entry cached" 1 s.Relsql.Plan_cache.entries;
  (* A data change must invalidate the cached statement: translation
     depends on dataset statistics, so a stale plan could be wrong. The
     entry stays resident but its data_version stamp no longer matches,
     so the next lookup is a miss and the statement re-translates. *)
  Db2rdf.Engine.insert e
    (Rdf.Triple.spo "fresh-s" "fresh-p" (Rdf.Term.iri "fresh-o"));
  let misses_before = (Db2rdf.Engine.plan_cache_stats e).Relsql.Plan_cache.misses in
  let n2 = first_int (Db2rdf.Engine.query_string e count_query) in
  Alcotest.(check int) "post-insert count sees the new triple" (n0 + 1) n2;
  let s = Db2rdf.Engine.plan_cache_stats e in
  Alcotest.(check bool) "stale stamp registered as a miss" true
    (s.Relsql.Plan_cache.misses > misses_before);
  (* The re-translated entry is stamped with the new version, so the
     query hits again without further data changes. *)
  let hits_before = s.Relsql.Plan_cache.hits in
  let n3 = first_int (Db2rdf.Engine.query_string e count_query) in
  Alcotest.(check int) "re-stamped entry gives the same count" n2 n3;
  Alcotest.(check int) "re-stamped entry hits" (hits_before + 1)
    (Db2rdf.Engine.plan_cache_stats e).Relsql.Plan_cache.hits

(* ------------------------------------------------------------------ *)
(* Batch growth                                                        *)
(* ------------------------------------------------------------------ *)

let test_batch_growth () =
  (* Start from a 0-capacity hint and push enough rows to force many
     doublings; contents must survive every reallocation. *)
  let layout = [| (Some "t", "a"); (Some "t", "b") |] in
  let b = Relsql.Batch.create ~capacity:0 layout in
  let scratch = Array.make 2 Relsql.Value.Null in
  for i = 0 to 9_999 do
    scratch.(0) <- Relsql.Value.Int i;
    scratch.(1) <- (if i land 1 = 0 then Relsql.Value.Str (string_of_int i)
                    else Relsql.Value.Null);
    Relsql.Batch.push_row b scratch
  done;
  Alcotest.(check int) "length" 10_000 (Relsql.Batch.length b);
  for i = 0 to 9_999 do
    (match Relsql.Batch.get b i 0 with
     | Relsql.Value.Int j when j = i -> ()
     | v -> Alcotest.failf "row %d col 0: %s" i (Relsql.Value.to_string v));
    match Relsql.Batch.get b i 1 with
    | Relsql.Value.Str s when i land 1 = 0 && s = string_of_int i -> ()
    | Relsql.Value.Null when i land 1 = 1 -> ()
    | v -> Alcotest.failf "row %d col 1: %s" i (Relsql.Value.to_string v)
  done

(* ------------------------------------------------------------------ *)
(* Sequential ≡ parallel                                               *)
(* ------------------------------------------------------------------ *)

(** Lower the parallel threshold so even tiny inputs take the morsel
    paths, run [f], and restore. *)
let with_tiny_morsels f =
  let saved = !Relsql.Executor.par_min_rows in
  Relsql.Executor.par_min_rows := 2;
  Fun.protect
    ~finally:(fun () -> Relsql.Executor.par_min_rows := saved)
    f

let batch_strings b =
  List.map
    (fun row ->
      String.concat "\t"
        (List.map Relsql.Value.to_string (Array.to_list row)))
    (Relsql.Batch.to_rows b)

(** Queries stressing every parallel operator: fused scan, hash-join
    probe, grouped/global aggregation (with DISTINCT), and the parallel
    sort — plus LIMIT/OFFSET so the k-way merge's tie-breaking shows. *)
let par_queries =
  [ ("scan", "SELECT ?s ?o WHERE { ?s ?p ?o }");
    ("sort", "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s");
    ("sort-window",
     "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY DESC(?o) LIMIT 37 OFFSET 11");
    ("distinct", "SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
    ("join",
     "SELECT ?a ?b ?v WHERE { ?a <http://microbench.org/SV1> ?b . \
      ?a <http://microbench.org/SV2> ?v }");
    ("group-count",
     "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p");
    ("group-distinct",
     "SELECT ?p (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p");
    ("group-minmax",
     "SELECT ?p (MIN(?o) AS ?lo) (MAX(?o) AS ?hi) WHERE { ?s ?p ?o } \
      GROUP BY ?p");
    ("global-count", "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }") ]

let test_seq_equals_par () =
  with_tiny_morsels (fun () ->
      let triples = Workloads.Micro.generate ~scale:3_000 in
      let e, _, _ =
        Db2rdf.Engine.create_colored
          ~layout:(Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8) triples
      in
      let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
      let check (name, src) =
        let stmt = Db2rdf.Engine.translate e (Sparql.Parser.parse src) in
        let seq = Relsql.Executor.run ~domains:1 db stmt in
        let par = Relsql.Executor.run ~domains:4 db stmt in
        Alcotest.(check (list string))
          (name ^ ": parallel rows and order match sequential")
          (batch_strings seq) (batch_strings par)
      in
      List.iter check par_queries;
      List.iter
        (fun (name, src) ->
          check ("micro " ^ name, src))
        Workloads.Micro.queries)

(** Numeric aggregation (SUM/AVG over ints and decimals) under merged
    per-worker partial states, checked against the reference evaluator
    through the fuzzer's own differential comparison. *)
let test_par_numeric_aggregates_vs_oracle () =
  let buf = Buffer.create 4096 in
  for i = 0 to 199 do
    Buffer.add_string buf
      (Printf.sprintf
         "<s%d> <v> \"%d\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
         i (i mod 17));
    Buffer.add_string buf
      (Printf.sprintf
         "<s%d> <w> \"%s\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n"
         i (if i land 1 = 0 then "2.5" else "-1.5"));
    Buffer.add_string buf (Printf.sprintf "<s%d> <g> <k%d> .\n" i (i mod 5))
  done;
  let r =
    Fuzz.Repro.of_string
      ("-- query\nSELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }\n-- data\n"
       ^ Buffer.contents buf)
  in
  let queries =
    [ "SELECT (SUM(?o) AS ?t) (AVG(?o) AS ?a) WHERE { ?s <v> ?o }";
      "SELECT (SUM(?o) AS ?t) WHERE { ?s <w> ?o }";
      "SELECT ?k (SUM(?o) AS ?t) (COUNT(DISTINCT ?o) AS ?d) \
       WHERE { ?s <g> ?k . ?s <v> ?o } GROUP BY ?k";
      "SELECT ?k (AVG(?o) AS ?a) (MIN(?o) AS ?lo) \
       WHERE { ?s <g> ?k . ?s <w> ?o } GROUP BY ?k" ]
  in
  List.iter
    (fun src ->
      let q = Sparql.Parser.parse src in
      match Fuzz.Runner.run_case ~domains:4 r.Fuzz.Repro.triples q with
      | Fuzz.Runner.Agree -> ()
      | Fuzz.Runner.Skipped why -> Alcotest.failf "%s skipped: %s" src why
      | Fuzz.Runner.Diverged ds ->
        Alcotest.failf "%s diverged on %s" src
          (String.concat ", "
             (List.map (fun d -> d.Fuzz.Runner.backend) ds)))
    queries

(** Replay the committed reproducer corpus with 4 executor domains. *)
let test_corpus_replay_parallel () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Fuzz.Repro.read (Filename.concat "corpus" f) in
      match Fuzz.Runner.check_repro ~domains:4 r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s (domains=4): %s" f msg)
    files

(** Fixed-seed differential sweep with parallel executors: 200 random
    (graph, query) cases, every backend vs the reference evaluator. *)
let test_fuzz_sweep_parallel () =
  let config =
    { Fuzz.Runner.default_config with seed = 1337; cases = 200; domains = 4 }
  in
  let s = Fuzz.Runner.fuzz config in
  Alcotest.(check int) "no divergences with domains=4" 0
    s.Fuzz.Runner.divergent;
  Alcotest.(check int) "all cases ran" 200 s.Fuzz.Runner.cases_run

let suite =
  [ Alcotest.test_case "dpool: empty job" `Quick test_dpool_empty;
    Alcotest.test_case "dpool: each morsel exactly once" `Quick
      test_dpool_each_morsel_once;
    Alcotest.test_case "dpool: worker ids in bounds" `Quick
      test_dpool_worker_ids_in_bounds;
    Alcotest.test_case "dpool: exception propagates, pool survives" `Quick
      test_dpool_exception_propagates;
    Alcotest.test_case "dpool: nested run degrades inline" `Quick
      test_dpool_nested_runs_inline;
    Alcotest.test_case "plan cache: LRU eviction + stats" `Quick
      test_plan_cache_lru;
    Alcotest.test_case "plan cache: clear keeps counters" `Quick
      test_plan_cache_clear_keeps_counters;
    Alcotest.test_case "engine cache: hits + invalidation" `Quick
      test_engine_cache_hits_and_invalidation;
    Alcotest.test_case "batch: growth preserves contents" `Quick
      test_batch_growth;
    Alcotest.test_case "sequential ≡ parallel (rows and order)" `Slow
      test_seq_equals_par;
    Alcotest.test_case "parallel numeric aggregates vs oracle" `Quick
      test_par_numeric_aggregates_vs_oracle;
    Alcotest.test_case "corpus replay with domains=4" `Quick
      test_corpus_replay_parallel;
    Alcotest.test_case "fuzz sweep with domains=4 (200 cases)" `Slow
      test_fuzz_sweep_parallel ]
