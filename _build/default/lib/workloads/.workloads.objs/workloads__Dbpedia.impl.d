lib/workloads/dbpedia.ml: Dist List Printf Rdf
