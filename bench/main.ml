(** Benchmark entry point: regenerates every table and figure of the
    paper's evaluation (see DESIGN.md's experiment index). Run with
    [dune exec bench/main.exe], optionally restricting via
    [-e <experiment>] and scaling via [--scale N].

    Experiments: micro (E1/Fig 3), hashing (E2/Table 3), coloring
    (E3/Table 4), spills (E4), nulls (E5), flow (E6/Fig 14), summary
    (E7/Fig 15, includes E8/Fig 16, E9/Fig 17, E10/Fig 18), ablation
    (E11), load (E12 — the future-work insertion/update study), parallel
    (E13 — morsel-driven executor scaling over OCaml domains), join
    (E14 — radix-partitioned hash-join builds over a domains×partitions
    grid), compress (E15 — boxed rows vs bit-packed columnar storage on
    identical data), wcoj (E16 — multiway leapfrog join vs the binary
    pipeline on the snowflake workload), extvp (E17 — ExtVP semi-join
    reductions vs the plain merged pipeline on snowflake plus the
    selective LUBM joins), update (E18 — SPARQL UPDATE throughput and
    snapshot reads over a mixed read/write stream, boxed vs
    compressed), bechamel.

    [--compare old.json new.json] diffs two benchmark JSON files
    (per-experiment measurement deltas plus geomeans) and exits
    non-zero if any shared experiment regressed by more than 10%. *)

let () =
  let cfg = Harness.parse_args () in
  match cfg.Harness.compare with
  | Some (old_file, new_file) ->
    if not (Harness.compare_results old_file new_file) then exit 1
  | None ->
  Printf.printf
    "DB2RDF reproduction benchmarks — scale=%d runs=%d timeout=%.0fs\n%!"
    cfg.Harness.scale cfg.Harness.runs cfg.Harness.timeout;
  if Harness.enabled cfg "micro" then Exp_micro.run cfg;
  if Harness.enabled cfg "hashing" then Exp_coloring.run_hashing cfg;
  if Harness.enabled cfg "coloring" then Exp_coloring.run_coloring cfg;
  if Harness.enabled cfg "spills" then Exp_coloring.run_spills cfg;
  if Harness.enabled cfg "nulls" then Exp_nulls.run cfg;
  if Harness.enabled cfg "flow" then Exp_flow.run cfg;
  if Harness.enabled cfg "summary" then begin
    let per_query = Exp_summary.run_summary cfg in
    Exp_summary.run_figures cfg per_query
  end;
  if Harness.enabled cfg "ablation" then Exp_ablation.run cfg;
  if Harness.enabled cfg "load" then Exp_load.run cfg;
  if Harness.enabled cfg "parallel" then Exp_parallel.run cfg;
  if Harness.enabled cfg "join" then Exp_join.run cfg;
  if Harness.enabled cfg "compress" then Exp_compress.run cfg;
  if Harness.enabled cfg "wcoj" then Exp_wcoj.run cfg;
  if Harness.enabled cfg "extvp" then Exp_extvp.run cfg;
  if Harness.enabled cfg "update" then Exp_update.run cfg;
  if Harness.enabled cfg "bechamel" then Exp_bechamel.run cfg;
  Printf.printf "\nAll requested experiments complete.\n"
