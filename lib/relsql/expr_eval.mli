(** Scalar expression evaluation with SQL three-valued logic.

    Expressions are compiled once against a column layout (the ordered
    visible columns of the operator's input) into closures over the row
    array, so per-row evaluation does no name resolution. *)

(** Visible columns of an intermediate row: position [i] of a row array
    holds the column described by [layout.(i)] (qualifier, name). *)
type layout = (string option * string) array

exception Unknown_column of string

(** Resolve a column reference against a layout. A qualified reference
    must match qualifier and name; an unqualified one matches by name
    and must be unambiguous. Raises {!Unknown_column}. *)
val resolve : layout -> string option * string -> int

(** Kleene connectives over SQL booleans (Unknown = [Value.Null]). *)
val sql_not : Value.t -> Value.t

val sql_and : Value.t -> Value.t -> Value.t
val sql_or : Value.t -> Value.t -> Value.t

(** Compile an expression into a closure over rows shaped by [layout].
    Raises {!Unknown_column} at compile time for unresolvable columns
    and [Invalid_argument] on aggregate expressions (those only live in
    aggregate select lists, handled by the executor). *)
val compile : layout -> Sql_ast.expr -> Value.t array -> Value.t

(** A compiled predicate: true only when the expression evaluates to SQL
    TRUE (Unknown filters the row out). *)
val compile_pred : layout -> Sql_ast.expr -> Value.t array -> bool

(** Evaluate a closed expression (no column references). *)
val eval_const : Sql_ast.expr -> Value.t

(** The distinct layout positions the expression reads, sorted
    ascending; unresolvable references are skipped. Used by the packed
    scan to decode only the columns a compiled predicate touches. *)
val referenced_cols : layout -> Sql_ast.expr -> int list
