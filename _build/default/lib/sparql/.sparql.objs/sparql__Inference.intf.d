lib/sparql/inference.mli: Ast Rdf
