(** The "typical bottom-up" execution-order builder used by the baseline
    stores (Stocker et al. style): within each group, triple patterns
    are greedily ordered by estimated selectivity, preferring patterns
    that join an already-bound variable; UNION and OPTIONAL sub-patterns
    stay opaque units in syntactic order. No cross-group weaving, no
    data-flow analysis — exactly the optimizer class the hybrid DFB/QPB
    pipeline is compared against. *)

(** Greedy ordering of one BGP's triple ids. *)
val order_triples :
  Dataset_stats.t -> Rdf.Dictionary.t -> Sparql.Pattern_tree.t -> int list ->
  int list

val exec_tree :
  Sparql.Pattern_tree.t -> Dataset_stats.t -> Rdf.Dictionary.t -> Exec_tree.t

(** A merge context that never merges — baseline layouts have no star
    templates. *)
val no_merge_ctx : Sparql.Pattern_tree.t -> Merge.ctx
