(** E17 — ExtVP-style semi-join reductions against the plain merged
    pipeline on the snowflake workload plus the selective-join LUBM
    queries.

    Two engines are built over identical triples: one default, one with
    the [extvp] option (plus [extvp_build], so reductions materialize
    during load rather than polluting the first timed translation).
    The reduction-enabled planner substitutes a semi-join-reduced DPH
    row-subset for a star's base scan whenever a mandatory join partner
    matches its (predicate pair, correlation) signature and the
    estimated selectivity clears the ScaleUB threshold — the coupled
    star chains (SF1–SF3, the LUBM join queries) then scan a small
    fraction of DPH per star, while lone stars and unions run the
    unchanged plan on both engines.

    Every query's rows are asserted multiset-equal across the two
    engines before anything is timed. The scan cache is cleared before
    every timed run and the heap compacted between interleaved runs,
    exactly as in E15/E16.

    With [--json-dir] the experiment writes BENCH_extvp.json: per-query
    times, speedups, whether the planner substituted a reduction, the
    one-time reduction build cost (ms and bytes, from the registry
    counters), the registry hit rate over the whole run, and the
    geomean speedup over the substituted queries. *)

(** Selective-join subset of the LUBM mix: conjunctive chains over
    known-selective predicates — the shape reductions help. The big
    scans (LQ6/LQ14) and pure unions (LQ5/LQ13) are control noise here
    and stay in E7. *)
let lubm_subset = [ "LQ1"; "LQ2"; "LQ8"; "LQ9" ]

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec at i = i + m <= n && (String.sub hay i m = needle || at (i + 1)) in
  at 0

type qresult = {
  q_workload : string;
  q_name : string;
  q_rows : int;
  q_base_ms : float;
  q_extvp_ms : float;
  q_picked : bool;  (** physical plan contains an ExtvpScan node *)
}

let run_workload (cfg : Harness.config) (wname, triples, queries) =
  let layout = Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24 in
  let build options =
    let e, _, _ = Db2rdf.Engine.create_colored ~layout ~options triples in
    e
  in
  let base, base_dt =
    Harness.timed (fun () -> build Db2rdf.Engine.default_options)
  in
  let ev, build_dt =
    Harness.timed (fun () ->
        build
          { Db2rdf.Engine.default_options with
            extvp = true; extvp_build = true })
  in
  let reg =
    match Db2rdf.Engine.extvp_registry ev with
    | Some r -> r
    | None -> failwith "E17: engine without a reduction registry"
  in
  let c = Relsql.Extvp.counters reg in
  let build_ms = 1000.0 *. c.Relsql.Extvp.build_s in
  let build_bytes = c.Relsql.Extvp.bytes in
  let cached = Relsql.Extvp.cached_count reg in
  Printf.printf
    "%s: %d reductions cached (%.1f MB) in %.1f ms (load %.2fs -> %.2fs)\n%!"
    wname cached
    (float_of_int build_bytes /. 1048576.0)
    build_ms base_dt build_dt;
  let bdb = Db2rdf.Loader.database (Db2rdf.Engine.loader base) in
  let edb = Db2rdf.Loader.database (Db2rdf.Engine.loader ev) in
  let results =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        let bstmt = Db2rdf.Engine.translate base q in
        let estmt = Db2rdf.Engine.translate ev q in
        let picked = contains (Db2rdf.Engine.explain ev q) "ExtvpScan" in
        (* Equality gate: multiset equality before anything is timed. *)
        let want =
          Exp_wcoj.batch_sorted_strings (Relsql.Executor.run bdb bstmt)
        in
        let got =
          Exp_wcoj.batch_sorted_strings (Relsql.Executor.run edb estmt)
        in
        if want <> got then
          failwith
            (Printf.sprintf
               "E17 equality violation: %s/%s diverges between the base and \
                reduced pipelines"
               wname qname);
        let rows, bs, es = Exp_wcoj.time_pair cfg bdb bstmt edb estmt in
        { q_workload = wname;
          q_name = qname;
          q_rows = rows;
          q_base_ms = 1000.0 *. bs;
          q_extvp_ms = 1000.0 *. es;
          q_picked = picked })
      queries
  in
  Printf.printf "every query matches across the two pipelines\n%!";
  Harness.subsection
    (Printf.sprintf "%s (%d triples; ms per query, scan cache cold)" wname
       (List.length triples));
  Harness.print_table
    [ "Query"; "rows"; "base"; "extvp"; "speedup"; "plan" ]
    (List.map
       (fun r ->
         [ r.q_name;
           string_of_int r.q_rows;
           Printf.sprintf "%8.2f" r.q_base_ms;
           Printf.sprintf "%8.2f" r.q_extvp_ms;
           (if r.q_extvp_ms > 0.0 then
              Printf.sprintf "%.2fx" (r.q_base_ms /. r.q_extvp_ms)
            else "-");
           (if r.q_picked then "reduced" else "base") ])
       results);
  let hits = c.Relsql.Extvp.hits and misses = c.Relsql.Extvp.misses in
  let hit_rate =
    if hits + misses > 0 then
      float_of_int hits /. float_of_int (hits + misses)
    else 0.0
  in
  let wjson =
    Harness.J_obj
      [ ("workload", Harness.J_str wname);
        ("triples", Harness.J_int (List.length triples));
        ("reductions_cached", Harness.J_int cached);
        ("reduction_build_ms", Harness.J_float build_ms);
        ("reduction_bytes", Harness.J_int build_bytes);
        ("registry_hit_rate", Harness.J_float hit_rate);
        ( "measurements",
          Harness.J_list
            (List.map
               (fun r ->
                 Harness.J_obj
                   [ ("query", Harness.J_str r.q_name);
                     ("results", Harness.J_int r.q_rows);
                     ("base_ms", Harness.J_float r.q_base_ms);
                     ("extvp_ms", Harness.J_float r.q_extvp_ms);
                     ("ms", Harness.J_float r.q_extvp_ms);
                     ("picked", Harness.J_bool r.q_picked) ])
               results) ) ]
  in
  (results, wjson)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E17. ExtVP semi-join reductions — %d triples"
       cfg.Harness.scale);
  let workloads =
    [ ( "snowflake",
        Workloads.Snowflake.generate ~scale:cfg.Harness.scale,
        Workloads.Snowflake.queries );
      ( "lubm",
        Workloads.Lubm.generate ~scale:cfg.Harness.scale,
        List.filter
          (fun (n, _) -> List.mem n lubm_subset)
          Workloads.Lubm.queries ) ]
  in
  let per = List.map (run_workload cfg) workloads in
  let results = List.concat_map fst per in
  let picked_speedups =
    List.filter_map
      (fun r ->
        if r.q_picked && r.q_extvp_ms > 0.0 then
          Some (r.q_base_ms /. r.q_extvp_ms)
        else None)
      results
  in
  (match Harness.geomean picked_speedups with
   | Some g ->
     Printf.printf
       "\ngeomean speedup (reduced vs base, substituted queries): %.2fx\n%!" g
   | None -> Printf.printf "\nno query substituted a reduction\n%!");
  Harness.write_json cfg ~file:"BENCH_extvp.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "extvp");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("workloads", Harness.J_list (List.map snd per));
         ( "speedup_vs_base",
           Harness.J_obj
             (List.filter_map
                (fun r ->
                  if r.q_extvp_ms > 0.0 then
                    Some
                      ( r.q_workload ^ "/" ^ r.q_name,
                        Harness.J_float (r.q_base_ms /. r.q_extvp_ms) )
                  else None)
                results) );
         ( "geomean_speedup_picked",
           match Harness.geomean picked_speedups with
           | Some g -> Harness.J_float g
           | None -> Harness.J_str "n/a" ) ])
