lib/core/sqlgen.mli: Hashtbl Loader Merge Rdf Relsql Sparql
