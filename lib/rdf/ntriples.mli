(** N-Triples parsing and serialization (the line-oriented RDF exchange
    syntax). Supports IRIs, blank nodes, plain / language-tagged /
    datatyped literals, the standard string escapes, and [#] comments. *)

exception Syntax_error of { line : int; message : string }

(** Parse one N-Triples line; [None] for blank and comment lines. *)
val parse_line : ?line:int -> string -> Triple.t option

(** Parse a whole document, calling the function on each triple. *)
val parse_string : (Triple.t -> unit) -> string -> unit

val parse_file : (Triple.t -> unit) -> string -> unit

(** N-Triples rendering of one term / triple. Literal codepoints outside
    printable ASCII are re-encoded as [\uXXXX]/[\UXXXXXXXX] escapes, so
    serialized output is pure ASCII and parses back to an equal term
    whether the source literal was written raw or escaped. *)
val term_to_string : Term.t -> string

val triple_to_string : Triple.t -> string
val to_buffer : Buffer.t -> Triple.t list -> unit
val to_string : Triple.t list -> string
val write_file : string -> Triple.t list -> unit
