(** Tests for RDFS inference by query expansion (the paper's Section 4.1
    rewriting, automated; listed as future work in the conclusions). *)

open Sparql

let ns = "http://lubm.org/univ#"
let u n = ns ^ n

let lubm_ontology () = Workloads.Lubm.ontology ()

let test_closures () =
  let o = lubm_ontology () in
  let subs = Inference.subclasses_of o (u "Person") in
  (* Person + Student(2 children) + Faculty(Professor chain + Lecturer) *)
  Alcotest.(check bool) "Person closure includes GraduateStudent" true
    (List.mem (u "GraduateStudent") subs);
  Alcotest.(check bool) "Person closure includes FullProfessor" true
    (List.mem (u "FullProfessor") subs);
  Alcotest.(check bool) "closure includes the root" true (List.mem (u "Person") subs);
  Alcotest.(check int) "Person closure size" 10 (List.length subs);
  let props = Inference.subproperties_of o (u "memberOf") in
  Alcotest.(check (list string)) "memberOf closure"
    [ u "memberOf"; u "worksFor"; u "headOf" ]
    props

let test_cycle_safety () =
  let o = Inference.create () in
  Inference.add_subclass o ~sub:"B" ~super:"A";
  Inference.add_subclass o ~sub:"A" ~super:"B";
  Alcotest.(check int) "cyclic hierarchy terminates" 2
    (List.length (Inference.subclasses_of o "A"))

let test_of_graph () =
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) (Workloads.Lubm.ontology_triples ());
  let o = Inference.of_graph g in
  Alcotest.(check bool) "subclass read from graph" true
    (List.mem (u "GraduateStudent") (Inference.subclasses_of o (u "Student")));
  Alcotest.(check bool) "subproperty read from graph" true
    (List.mem (u "headOf") (Inference.subproperties_of o (u "worksFor")))

let test_expand_type_triple () =
  let o = lubm_ontology () in
  let q =
    Parser.parse
      (Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%s> }" (u "type") (u "Student"))
  in
  let q' = Inference.expand_query o q in
  (* Student has two subclasses: the pattern becomes a 3-way union. *)
  (match q'.Ast.where with
   | Ast.Union parts -> Alcotest.(check int) "3 alternatives" 3 (List.length parts)
   | _ -> Alcotest.fail "expected a union");
  Alcotest.(check int) "still 3 triple patterns" 3 (Ast.pattern_size q'.Ast.where)

let test_expand_leaves_unrelated () =
  let o = lubm_ontology () in
  let q =
    Parser.parse
      (Printf.sprintf "SELECT ?x WHERE { ?x <%s> ?y . ?x <%s> <%s> }" (u "advisor")
         (u "type") (u "Publication"))
  in
  let q' = Inference.expand_query o q in
  Alcotest.(check int) "no expansion for axiom-free patterns" 2
    (Ast.pattern_size q'.Ast.where)

(** The headline equivalence: the automatically expanded query matches
    the paper's hand-expanded UNION on every store. *)
let test_expansion_equals_manual () =
  let triples = Workloads.Lubm.generate ~scale:4000 in
  let o = lubm_ontology () in
  let g = Helpers.oracle_of triples in
  let auto =
    Inference.expand_query o
      (Parser.parse
         (Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%s> }" (u "type") (u "Student")))
  in
  let manual =
    Parser.parse (List.assoc "LQ6" Workloads.Lubm.queries)
  in
  let r_auto = Ref_eval.eval g auto and r_manual = Ref_eval.eval g manual in
  Alcotest.(check bool) "auto expansion ≡ manual expansion (oracle)" true
    (Ref_eval.equal_results r_auto r_manual);
  (* And the stores answer the expanded query correctly. *)
  let e = Db2rdf.Engine.create () in
  Db2rdf.Engine.load e triples;
  let got = Db2rdf.Engine.query e auto in
  Alcotest.(check bool) "db2rdf answers expanded query" true
    (Ref_eval.equal_results r_auto got)

let test_subproperty_semantics () =
  (* memberOf expansion finds the department head through headOf. *)
  let triples = Workloads.Lubm.generate ~scale:3000 in
  let g = Helpers.oracle_of triples in
  let o = lubm_ontology () in
  let plain =
    Parser.parse
      (Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%sUniversity0/Department0> }"
         (u "memberOf") ns)
  in
  let expanded = Inference.expand_query o plain in
  let n_plain = List.length (Ref_eval.eval g plain).Ref_eval.rows in
  let n_expanded = List.length (Ref_eval.eval g expanded).Ref_eval.rows in
  Alcotest.(check bool)
    (Printf.sprintf "expansion adds faculty (%d > %d)" n_expanded n_plain)
    true
    (n_expanded > n_plain)

let suite =
  [ Alcotest.test_case "transitive closures" `Quick test_closures;
    Alcotest.test_case "cycle safety" `Quick test_cycle_safety;
    Alcotest.test_case "ontology from graph" `Quick test_of_graph;
    Alcotest.test_case "expand type triple" `Quick test_expand_type_triple;
    Alcotest.test_case "no spurious expansion" `Quick test_expand_leaves_unrelated;
    Alcotest.test_case "auto ≡ manual expansion" `Quick test_expansion_equals_manual;
    Alcotest.test_case "subproperty semantics" `Quick test_subproperty_semantics ]
