(** Per-operator execution metrics (the EXPLAIN ANALYZE tree).

    Every physical plan node run by {!Executor} fills one of these:
    rows consumed from its inputs, rows produced, index probes issued,
    hash-build size and inclusive wall time. The tree mirrors the plan
    shape, with synthetic [CTE <name>] / [body] wrappers at statement
    level. *)

type t = {
  label : string;  (** one-line operator description *)
  mutable rows_in : int;  (** rows consumed across all inputs *)
  mutable rows_out : int;  (** rows produced *)
  mutable index_probes : int;  (** hash-index lookups issued *)
  mutable build_rows : int;  (** rows entered into a hash-join build *)
  mutable seconds : float;  (** inclusive wall time *)
  mutable workers : int;
      (** domains that participated in this operator's parallel section
          (1 = sequential execution) *)
  mutable par_ms : float;
      (** wall milliseconds spent inside the parallel section — under
          parallelism the per-worker CPU time exceeds wall time, so
          EXPLAIN ANALYZE reports the section's elapsed span alongside
          the worker count instead of a misleading per-row figure *)
  mutable partitions : int;
      (** radix partitions of a partitioned hash-join build
          (0 = build was not partitioned) *)
  mutable build_workers : int;
      (** domains that participated in the partitioned build *)
  mutable build_ms : float;
      (** wall milliseconds spent building the join hash table
          (partition + scatter + sub-table build) *)
  mutable cache_hits : int;
      (** shared-scan-cache hits serving this operator *)
  mutable cache_misses : int;
      (** shared-scan-cache misses (result computed, then cached) *)
  mutable blocks_skipped : int;
      (** packed-scan blocks pruned by zone maps without unpacking *)
  mutable rows_unpacked : int;
      (** live rows decompressed by the packed scan (post-skip) *)
  mutable delta_rows : int;
      (** boxed delta-side rows a frozen-table scan/probe visited *)
  mutable tombstones_skipped : int;
      (** rows a frozen-table scan skipped via the tombstone bitmap *)
  mutable est_rows : int;
      (** planner's output-cardinality estimate (-1 = not recorded);
          EXPLAIN ANALYZE reports it against [rows_out] as a q-error *)
  mutable children : t list;  (** inputs, in plan order *)
}

let make label =
  { label; rows_in = 0; rows_out = 0; index_probes = 0; build_rows = 0;
    seconds = 0.0; workers = 1; par_ms = 0.0; partitions = 0;
    build_workers = 1; build_ms = 0.0; cache_hits = 0; cache_misses = 0;
    blocks_skipped = 0; rows_unpacked = 0; delta_rows = 0;
    tombstones_skipped = 0; est_rows = -1; children = [] }

(** Append a child (keeps plan order). *)
let add_child parent child = parent.children <- parent.children @ [ child ]

let rec fold f acc node = List.fold_left (fold f) (f acc node) node.children

let iter f node = fold (fun () n -> f n) () node

(** Wall time spent in the node itself, excluding its inputs. *)
let self_seconds node =
  let below = List.fold_left (fun a c -> a +. c.seconds) 0.0 node.children in
  Float.max 0.0 (node.seconds -. below)

(** Every node whose label starts with [prefix], in preorder. *)
let find_all node ~prefix =
  let starts s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.rev
    (fold (fun acc n -> if starts n.label then n :: acc else acc) [] node)

(** Estimated-vs-actual ratio, always >= 1.0 (add-one smoothed so zero
    rows on either side stays finite). [None] until an estimate was
    recorded. *)
let q_error node =
  if node.est_rows < 0 then None
  else
    let est = float_of_int (node.est_rows + 1)
    and act = float_of_int (node.rows_out + 1) in
    Some (Float.max (est /. act) (act /. est))

let to_string root =
  let buf = Buffer.create 256 in
  let rec go indent node =
    Buffer.add_string buf (String.make indent ' ');
    Buffer.add_string buf node.label;
    Buffer.add_string buf
      (Printf.sprintf "  (in=%d out=%d" node.rows_in node.rows_out);
    if node.index_probes > 0 then
      Buffer.add_string buf (Printf.sprintf " probes=%d" node.index_probes);
    if node.build_rows > 0 then
      Buffer.add_string buf (Printf.sprintf " build=%d" node.build_rows);
    if node.partitions > 0 then
      Buffer.add_string buf
        (Printf.sprintf " parts=%d bworkers=%d build_ms=%.3f" node.partitions
           node.build_workers node.build_ms);
    if node.cache_hits + node.cache_misses > 0 then
      Buffer.add_string buf
        (Printf.sprintf " scan_cache=%s"
           (if node.cache_hits > 0 then "hit" else "miss"));
    if node.blocks_skipped > 0 || node.rows_unpacked > 0 then
      Buffer.add_string buf
        (Printf.sprintf " skipped=%d unpacked=%d" node.blocks_skipped
           node.rows_unpacked);
    if node.delta_rows > 0 || node.tombstones_skipped > 0 then
      Buffer.add_string buf
        (Printf.sprintf " delta=%d tombs=%d" node.delta_rows
           node.tombstones_skipped);
    if node.workers > 1 then
      Buffer.add_string buf
        (Printf.sprintf " workers=%d par=%.3fms" node.workers node.par_ms);
    (match q_error node with
     | Some q ->
       Buffer.add_string buf
         (Printf.sprintf " est=%d q=%.2f" node.est_rows q)
     | None -> ());
    Buffer.add_string buf
      (Printf.sprintf " time=%.3fms self=%.3fms)\n" (node.seconds *. 1000.0)
         (self_seconds node *. 1000.0));
    List.iter (go (indent + 2)) node.children
  in
  go 0 root;
  Buffer.contents buf
