(** In-memory indexed RDF graph.

    Triples are dictionary-encoded and held in three nested hash indexes
    (SPO, POS, OSP), so any triple pattern with at least one bound
    position is answered by index lookups. This is the storage of the
    "native" reference store (standing in for a Jena-class system) and
    the oracle the relational stores are tested against. *)

type id_triple = { s : int; p : int; o : int }

module IntTbl = Hashtbl.Make (struct
  type t = int
  let equal = Int.equal
  let hash = Hashtbl.hash
end)

(* first -> second -> third list *)
type index2 = int list IntTbl.t IntTbl.t

type t = {
  dict : Dictionary.t;
  spo : index2;
  pos : index2;
  osp : index2;
  mutable size : int;
}

let create ?dict () =
  let dict = match dict with Some d -> d | None -> Dictionary.create () in
  { dict; spo = IntTbl.create 1024; pos = IntTbl.create 256;
    osp = IntTbl.create 1024; size = 0 }

let dictionary t = t.dict
let size t = t.size

let index2_add idx a b c =
  let inner =
    match IntTbl.find_opt idx a with
    | Some i -> i
    | None ->
      let i = IntTbl.create 4 in
      IntTbl.add idx a i;
      i
  in
  match IntTbl.find_opt inner b with
  | Some l -> IntTbl.replace inner b (c :: l)
  | None -> IntTbl.add inner b [ c ]

let mem_ids t s p o =
  match IntTbl.find_opt t.spo s with
  | None -> false
  | Some inner ->
    (match IntTbl.find_opt inner p with
     | None -> false
     | Some os -> List.mem o os)

(** Add a triple by term; interns the terms. Duplicate triples are
    ignored (RDF graphs are sets). *)
let add t (tr : Triple.t) =
  let s = Dictionary.id_of t.dict tr.s
  and p = Dictionary.id_of t.dict tr.p
  and o = Dictionary.id_of t.dict tr.o in
  if not (mem_ids t s p o) then begin
    index2_add t.spo s p o;
    index2_add t.pos p o s;
    index2_add t.osp o s p;
    t.size <- t.size + 1
  end

let add_ids t s p o =
  if not (mem_ids t s p o) then begin
    index2_add t.spo s p o;
    index2_add t.pos p o s;
    index2_add t.osp o s p;
    t.size <- t.size + 1
  end

let index2_remove idx a b c =
  match IntTbl.find_opt idx a with
  | None -> ()
  | Some inner ->
    (match IntTbl.find_opt inner b with
     | None -> ()
     | Some cs ->
       let cs' = List.filter (fun x -> x <> c) cs in
       if cs' = [] then IntTbl.remove inner b else IntTbl.replace inner b cs';
       if IntTbl.length inner = 0 then IntTbl.remove idx a)

let remove_ids t s p o =
  if mem_ids t s p o then begin
    index2_remove t.spo s p o;
    index2_remove t.pos p o s;
    index2_remove t.osp o s p;
    t.size <- t.size - 1
  end

(** Remove a triple (no-op when absent). Dictionary entries are kept —
    ids stay stable. *)
let remove t (tr : Triple.t) =
  match
    ( Dictionary.find t.dict tr.s,
      Dictionary.find t.dict tr.p,
      Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o -> remove_ids t s p o
  | _ -> ()

let mem t (tr : Triple.t) =
  match
    ( Dictionary.find t.dict tr.s,
      Dictionary.find t.dict tr.p,
      Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o -> mem_ids t s p o
  | _ -> false

(* Iterate all (a, b, c) of a two-level index. *)
let iter_index2 f idx =
  IntTbl.iter (fun a inner -> IntTbl.iter (fun b cs -> List.iter (f a b) cs) inner) idx

(** [find_ids t ?s ?p ?o f] calls [f] on every id-triple matching the
    given bound positions, choosing the best index for the pattern. *)
let find_ids t ?s ?p ?o f =
  let emit_checked s' p' o' =
    let ok =
      (match s with Some v -> v = s' | None -> true)
      && (match p with Some v -> v = p' | None -> true)
      && match o with Some v -> v = o' | None -> true
    in
    if ok then f { s = s'; p = p'; o = o' }
  in
  match s, p, o with
  | Some s, Some p, Some o -> if mem_ids t s p o then f { s; p; o }
  | Some sv, _, _ ->
    (match IntTbl.find_opt t.spo sv with
     | None -> ()
     | Some inner ->
       (match p with
        | Some pv ->
          (match IntTbl.find_opt inner pv with
           | Some os -> List.iter (fun ov -> emit_checked sv pv ov) os
           | None -> ())
        | None -> IntTbl.iter (fun pv os -> List.iter (fun ov -> emit_checked sv pv ov) os) inner))
  | None, _, Some ov ->
    (match IntTbl.find_opt t.osp ov with
     | None -> ()
     | Some inner ->
       IntTbl.iter (fun sv ps -> List.iter (fun pv -> emit_checked sv pv ov) ps) inner)
  | None, Some pv, None ->
    (match IntTbl.find_opt t.pos pv with
     | None -> ()
     | Some inner ->
       IntTbl.iter (fun ov ss -> List.iter (fun sv -> emit_checked sv pv ov) ss) inner)
  | None, None, None -> iter_index2 (fun s p o -> f { s; p; o }) t.spo

(** Term-level pattern query; [None] positions are wildcards. *)
let find t ?s ?p ?o () : Triple.t list =
  let resolve = function
    | None -> Some None
    | Some term ->
      (match Dictionary.find t.dict term with
       | Some id -> Some (Some id)
       | None -> None (* unknown term: no matches *))
  in
  match resolve s, resolve p, resolve o with
  | Some s, Some p, Some o ->
    let acc = ref [] in
    find_ids t ?s ?p ?o (fun { s; p; o } ->
        acc :=
          Triple.make (Dictionary.term_of t.dict s) (Dictionary.term_of t.dict p)
            (Dictionary.term_of t.dict o)
          :: !acc);
    !acc
  | _ -> []

let iter_triples f t =
  iter_index2
    (fun s p o ->
      f
        (Triple.make (Dictionary.term_of t.dict s) (Dictionary.term_of t.dict p)
           (Dictionary.term_of t.dict o)))
    t.spo

let to_list t =
  let acc = ref [] in
  iter_triples (fun tr -> acc := tr :: !acc) t;
  !acc

(** Distinct subject ids / predicate ids / object ids. *)
let subjects t = IntTbl.fold (fun s _ acc -> s :: acc) t.spo []
let predicates t = IntTbl.fold (fun p _ acc -> p :: acc) t.pos []
let objects t = IntTbl.fold (fun o _ acc -> o :: acc) t.osp []
