lib/core/pred_map.ml: Char Hashtbl List Printf String
