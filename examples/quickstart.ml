(** Quickstart: create a store, add triples, run SPARQL.

    Run with: [dune exec examples/quickstart.exe] *)

let () =
  (* 1. Create an engine. The layout fixes how many pred/val column
     pairs the DPH and RPH relations carry; predicates are assigned to
     columns dynamically (2-hash composition by default). *)
  let engine =
    Db2rdf.Engine.create ~layout:(Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8) ()
  in

  (* 2. Load some triples. Terms are IRIs, literals or blank nodes. *)
  let t s p o = Rdf.Triple.spo s p o in
  let iri = Rdf.Term.iri and lit = Rdf.Term.lit and int = Rdf.Term.int_lit in
  Db2rdf.Engine.load engine
    [ t "alice" "knows" (iri "bob");
      t "alice" "knows" (iri "carol");
      t "alice" "age" (int 42);
      t "bob" "knows" (iri "carol");
      t "bob" "age" (int 35);
      t "carol" "name" (lit "Carol");
      t "carol" "age" (int 28) ];

  (* 3. Query with SPARQL. *)
  let show title src =
    Printf.printf "== %s ==\n%s\n" title src;
    let results = Db2rdf.Engine.query_string engine src in
    List.iter
      (fun row ->
        print_endline
          (String.concat "\t"
             (List.map
                (function Some term -> Rdf.Term.to_string term | None -> "-")
                row)))
      results.Sparql.Ref_eval.rows;
    print_newline ()
  in
  show "friends of alice" "SELECT ?who WHERE { <alice> <knows> ?who }";
  show "friends-of-friends"
    "SELECT ?a ?c WHERE { ?a <knows> ?b . ?b <knows> ?c }";
  show "adults that know someone, with optional name"
    {|SELECT ?p ?n ?name WHERE {
        ?p <knows> ?x . ?p <age> ?n FILTER (?n >= 30)
        OPTIONAL { ?p <name> ?name }
      } ORDER BY ?n|};

  (* 4. Inspect the translation: the optimal flow, the merged query
     plan, the generated SQL over DPH/RPH, and the physical plan. *)
  print_endline "== explain: friends-of-friends ==";
  print_endline
    (Db2rdf.Engine.explain engine
       (Sparql.Parser.parse "SELECT ?a ?c WHERE { ?a <knows> ?b . ?b <knows> ?c }"));

  (* 5. EXPLAIN ANALYZE: run the query and append the per-operator
     metrics tree — rows in/out, index probes, hash-build sizes, and
     wall time for every node of the physical plan. *)
  print_endline "== explain analyze: friends-of-friends ==";
  print_endline
    (Db2rdf.Engine.explain ~analyze:true engine
       (Sparql.Parser.parse "SELECT ?a ?c WHERE { ?a <knows> ?b . ?b <knows> ?c }"))
