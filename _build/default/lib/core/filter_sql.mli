(** Translation of SPARQL FILTER expressions into SQL over a CTE of
    dictionary-id variable columns, shared by every relational store.
    Value comparisons LEFT-JOIN the [DICT] relation per variable; the
    semantics mirror {!Sparql.Ref_eval} exactly (numeric comparison when
    both operands are numeric, term-string comparison otherwise, SQL
    three-valued logic for SPARQL's error-as-unknown). *)

exception Unsupported of string

(** Build the filter SELECT over CTE [prev]: projects the columns of
    [var_cols] (variable -> column name), joins DICT for each decoded
    variable, and applies the translated predicate. Raises
    {!Unsupported} for constructs outside the supported fragment. *)
val filter_select :
  prev:string ->
  var_cols:(string * string) list ->
  Sparql.Ast.expr ->
  Relsql.Sql_ast.select
