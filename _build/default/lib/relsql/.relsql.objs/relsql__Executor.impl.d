lib/relsql/executor.ml: Array Buffer Database Expr_eval Hashtbl List Option Planner Schema Sql_ast Table Unix Value
