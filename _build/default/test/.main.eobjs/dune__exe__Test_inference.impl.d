test/test_inference.ml: Alcotest Ast Db2rdf Helpers Inference List Parser Printf Rdf Ref_eval Sparql Workloads
