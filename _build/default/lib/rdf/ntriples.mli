(** N-Triples parsing and serialization (the line-oriented RDF exchange
    syntax). Supports IRIs, blank nodes, plain / language-tagged /
    datatyped literals, the standard string escapes, and [#] comments. *)

exception Syntax_error of { line : int; message : string }

(** Parse one N-Triples line; [None] for blank and comment lines. *)
val parse_line : ?line:int -> string -> Triple.t option

(** Parse a whole document, calling the function on each triple. *)
val parse_string : (Triple.t -> unit) -> string -> unit

val parse_file : (Triple.t -> unit) -> string -> unit
val to_buffer : Buffer.t -> Triple.t list -> unit
val to_string : Triple.t list -> string
val write_file : string -> Triple.t list -> unit
