(** Test entry point: one alcotest run over every suite. *)

let () =
  Alcotest.run "db2rdf"
    [ ("relsql", Test_relsql.suite);
      ("rdf", Test_rdf.suite);
      ("sparql", Test_sparql.suite);
      ("coloring", Test_coloring.suite);
      ("loader", Test_loader.suite);
      ("optimizer", Test_optimizer.suite);
      ("baselines", Test_baselines.suite);
      ("engine", Test_engine.suite);
      ("workloads", Test_workloads.suite);
      ("inference", Test_inference.suite);
      ("update", Test_update.suite);
      ("snapshot", Test_snapshot.suite);
      ("paths", Test_paths.suite);
      ("executor-stats", Test_executor_stats.suite);
      ("sqlgen", Test_sqlgen.suite);
      ("aggregates", Test_aggregates.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("join", Test_join.suite);
      ("compress", Test_compress.suite);
      ("wcoj", Test_wcoj.suite);
      ("extvp", Test_extvp.suite);
      ("bench", Test_bench.suite) ]
