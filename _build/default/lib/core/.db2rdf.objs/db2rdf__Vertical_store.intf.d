lib/core/vertical_store.mli: Dataset_stats Dict_table Hashtbl Rdf Relsql Sparql Store
