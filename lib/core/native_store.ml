(** The native in-memory store: {!Rdf.Graph} plus the reference
    evaluator. It stands in for a Jena-class native system in the
    cross-system benchmarks and doubles as the correctness oracle. *)

type t = { graph : Rdf.Graph.t }

let create ?dict () = { graph = Rdf.Graph.create ?dict () }

let of_graph graph = { graph }

let graph t = t.graph

let load t triples = List.iter (Rdf.Graph.add t.graph) triples

let delete t triples = List.iter (Rdf.Graph.remove t.graph) triples

let query ?timeout t (q : Sparql.Ast.query) : Sparql.Ref_eval.results =
  try Sparql.Ref_eval.eval ?timeout t.graph q
  with Sparql.Ref_eval.Timeout -> raise Relsql.Executor.Timeout

let to_store ?(name = "NativeRef") t : Store.t =
  {
    Store.name;
    load = (fun triples -> load t triples);
    delete = (fun triples -> delete t triples);
    query = (fun ?timeout q -> query ?timeout t q);
    analyze = (fun ?timeout q -> (query ?timeout t q, None));
    explain = (fun _ -> "native in-memory evaluation (no SQL)");
    update = (fun u -> Sparql.Ref_eval.apply_update t.graph u);
  }
