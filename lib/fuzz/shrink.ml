(** Greedy shrinking of failing (graph, query) cases to minimal
    reproducers.

    Candidates come from two directions — dropping triples from the
    dataset (halves first, then chunks, then singles) and pruning the
    query AST one step at a time ({!Sparql.Ast.pattern_shrinks} plus
    solution-modifier removal). A candidate is accepted when the
    caller's predicate says the divergence still reproduces; shrinking
    restarts from the smaller case until a fixpoint or the evaluation
    budget runs out. *)

open Sparql.Ast

type case = { triples : Rdf.Triple.t list; query : query }

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

let halves xs =
  let n = List.length xs in
  if n < 2 then []
  else begin
    let mid = n / 2 in
    [ List.filteri (fun i _ -> i < mid) xs;
      List.filteri (fun i _ -> i >= mid) xs ]
  end

let drop_chunks ~chunk xs =
  let n = List.length xs in
  if n <= chunk then []
  else
    List.init
      ((n + chunk - 1) / chunk)
      (fun k -> List.filteri (fun i _ -> i / chunk <> k) xs)

let triple_shrinks (triples : Rdf.Triple.t list) : Rdf.Triple.t list list =
  let n = List.length triples in
  halves triples
  @ (if n > 8 then drop_chunks ~chunk:(max 2 (n / 8)) triples else [])
  @ (if n <= 32 then remove_each triples else [])

let query_shrinks (q : query) : query list =
  (if q.distinct then [ { q with distinct = false } ] else [])
  @ (match q.limit with Some _ -> [ { q with limit = None } ] | None -> [])
  @ (match q.offset with Some _ -> [ { q with offset = None } ] | None -> [])
  @ (match q.order_by with
     | [] -> []
     | [ _ ] -> [ { q with order_by = [] } ]
     | conds ->
       { q with order_by = [] }
       :: List.map (fun l -> { q with order_by = l }) (remove_each conds))
  @ (if q.aggregates <> [] then
       { q with aggregates = []; group_by = []; projection = Select_star }
       :: (if List.length q.aggregates > 1 then
             List.map
               (fun l -> { q with aggregates = l })
               (remove_each q.aggregates)
           else [])
     else [])
  @ List.map (fun w -> { q with where = w }) (pattern_shrinks q.where)

let case_shrinks (c : case) : case list =
  List.map (fun ts -> { c with triples = ts }) (triple_shrinks c.triples)
  @ List.map (fun q -> { c with query = q }) (query_shrinks c.query)

(* ------------------------------------------------------------------ *)
(* Greedy minimization                                                 *)
(* ------------------------------------------------------------------ *)

let case_size (c : case) = List.length c.triples + query_size c.query

(** [minimize ~budget still_fails c] greedily applies the first
    accepted candidate until no candidate reproduces the failure or
    [budget] predicate evaluations are spent. [still_fails] must be
    false-safe: candidates may be degenerate (empty data, single triple
    patterns). *)
let minimize ?(budget = 600) (still_fails : case -> bool) (c : case) : case =
  let evals = ref 0 in
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest ->
        if !evals >= budget then current
        else if case_size cand < case_size current then begin
          incr evals;
          if still_fails cand then go cand else try_candidates rest
        end
        else try_candidates rest
    in
    try_candidates (case_shrinks current)
  in
  go c
