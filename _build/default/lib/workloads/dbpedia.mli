(** DBpedia-like workload: encyclopedic data with a very large predicate
    vocabulary (scaling with the dataset) and power-law in/out-degree
    distributions — the dataset that is not fully colorable, exercising
    subset coloring composed with hashing, and spills (Table 4 row 4,
    Section 2.3). *)

val ns : string

(** Generate roughly [scale] triples with a vocabulary of about
    [scale/200] rare predicates. Deterministic. *)
val generate : scale:int -> Rdf.Triple.t list

(** DQ1–DQ20 (DBpedia SPARQL benchmark template style). *)
val queries : (string * string) list
