(** Radix-partitioned hash-join build and the shared scan cache:
    partitioning/permutation units, [Table.Join_hash] and
    [Table.version] units, scan-cache semantics, and the load-bearing
    property — bit-identical join results at every
    (domains, partitions) combination. *)

open Relsql

let with_pool n f =
  let pool = Dpool.create n in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) (fun () -> f pool)

(** Lower the parallel threshold so even tiny inputs take the morsel
    and partitioned-build paths, run [f], and restore. *)
let with_tiny_morsels f =
  let saved = !Executor.par_min_rows in
  Executor.par_min_rows := 2;
  Fun.protect ~finally:(fun () -> Executor.par_min_rows := saved) f

let batch_strings b =
  List.map
    (fun row ->
      String.concat "\t" (List.map Value.to_string (Array.to_list row)))
    (Batch.to_rows b)

(* ------------------------------------------------------------------ *)
(* Dpool.partition                                                     *)
(* ------------------------------------------------------------------ *)

let test_partition_histogram_scatter () =
  with_pool 4 (fun pool ->
      let n = 1_000 and parts = 8 in
      let part_of i = i * 7 mod parts in
      let starts, perm = Dpool.partition pool ~n ~parts ~part_of in
      Alcotest.(check int) "starts has parts+1 entries" (parts + 1)
        (Array.length starts);
      Alcotest.(check int) "first boundary is 0" 0 starts.(0);
      Alcotest.(check int) "last boundary covers all items" n starts.(parts);
      Alcotest.(check int) "perm covers all items" n (Array.length perm);
      let seen = Array.make n false in
      for p = 0 to parts - 1 do
        for s = starts.(p) to starts.(p + 1) - 1 do
          let i = perm.(s) in
          Alcotest.(check bool)
            (Printf.sprintf "item %d appears once" i)
            false seen.(i);
          seen.(i) <- true;
          Alcotest.(check int)
            (Printf.sprintf "item %d landed in its partition" i)
            p (part_of i);
          (* Items must ascend within each bucket: this is what makes
             the partitioned build replay global build order. *)
          if s > starts.(p) then
            Alcotest.(check bool) "ascending within bucket" true
              (perm.(s - 1) < i)
        done
      done;
      Alcotest.(check bool) "every item scattered" true
        (Array.for_all Fun.id seen))

let test_partition_drops_negative () =
  with_pool 4 (fun pool ->
      let n = 500 in
      (* Drop every third item, as the join build drops NULL keys. *)
      let part_of i = if i mod 3 = 0 then -1 else i land 3 in
      let starts, perm = Dpool.partition pool ~n ~parts:4 ~part_of in
      let kept = ref 0 in
      for i = 0 to n - 1 do
        if part_of i >= 0 then incr kept
      done;
      Alcotest.(check int) "dropped items excluded" !kept starts.(4);
      Array.iter
        (fun i ->
          Alcotest.(check bool) "no dropped item in perm" true
            (part_of i >= 0))
        perm)

let test_partition_single_bucket () =
  with_pool 4 (fun pool ->
      let n = 64 in
      let starts, perm = Dpool.partition pool ~n ~parts:1 ~part_of:(fun _ -> 0) in
      Alcotest.(check (array int)) "single bucket is the identity"
        (Array.init n Fun.id) perm;
      Alcotest.(check int) "all in bucket 0" n starts.(1))

(* ------------------------------------------------------------------ *)
(* Table.Join_hash                                                     *)
(* ------------------------------------------------------------------ *)

let test_join_hash_build_order () =
  let jh = Table.Join_hash.create ~parts:4 in
  Alcotest.(check int) "parts" 4 (Table.Join_hash.parts jh);
  (* Route each key to its partition and add rows in ascending order —
     the contract the partitioned build maintains. *)
  let keys = Array.init 40 (fun i -> Value.Int (i mod 5)) in
  Array.iteri
    (fun rid k -> Table.Join_hash.add jh (Table.Join_hash.part_of jh k) k rid)
    keys;
  for v = 0 to 4 do
    let got = ref [] in
    Table.Join_hash.iter_matches jh (Value.Int v) (fun rid ->
        got := rid :: !got);
    let got = List.rev !got in
    let expect =
      List.filter (fun rid -> rid mod 5 = v) (List.init 40 Fun.id)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "key %d matches in build order" v)
      expect got
  done;
  let none = ref 0 in
  Table.Join_hash.iter_matches jh (Value.Int 99) (fun _ -> incr none);
  Alcotest.(check int) "absent key matches nothing" 0 !none;
  Alcotest.check_raises "parts must be a power of two"
    (Invalid_argument "Join_hash.create: parts must be a positive power of two")
    (fun () -> ignore (Table.Join_hash.create ~parts:3))

(* ------------------------------------------------------------------ *)
(* Table.version                                                       *)
(* ------------------------------------------------------------------ *)

let test_table_version_bumps () =
  let t = Table.create "v" (Schema.make [ "a"; "b" ]) in
  let v0 = Table.version t in
  let rid = Table.insert t [| Value.Int 1; Value.Str "x" |] in
  let v1 = Table.version t in
  Alcotest.(check bool) "insert bumps version" true (v1 > v0);
  ignore (Table.set_cell t rid 1 (Value.Str "y"));
  let v2 = Table.version t in
  Alcotest.(check bool) "set_cell bumps version" true (v2 > v1);
  Table.delete_row t rid;
  let v3 = Table.version t in
  Alcotest.(check bool) "delete_row bumps version" true (v3 > v2)

(* ------------------------------------------------------------------ *)
(* Scan cache                                                          *)
(* ------------------------------------------------------------------ *)

let some_filter =
  (* Any expression works: the key only fingerprints its structure. *)
  Some
    (Sql_ast.Binop
       (Sql_ast.Eq, Sql_ast.Col (Some "t", "a"), Sql_ast.Const (Value.Int 1)))

let test_scan_cache_key_versioning () =
  let key ?(version = 1) ?(enc = 0) ?(delta = 0) ?(filter = some_filter)
      ?(cols = None) () =
    Scan_cache.key ~table:"t" ~version ~enc ~delta ~filter ~cols
  in
  let k1 = key () in
  Alcotest.(check bool) "version is part of the key" true
    (k1 <> key ~version:2 ());
  Alcotest.(check bool) "encoding epoch is part of the key" true
    (k1 <> key ~enc:1 ());
  Alcotest.(check bool) "delta epoch is part of the key" true
    (k1 <> key ~delta:1 ());
  Alcotest.(check bool) "filter is part of the key" true
    (k1 <> key ~filter:None ());
  Alcotest.(check bool) "columns are part of the key" true
    (k1 <> key ~cols:(Some [ "a" ]) ());
  Alcotest.(check string) "key is deterministic" k1 (key ())

let test_scan_cache_copies () =
  let c = Scan_cache.create () in
  let layout = [| (Some "t", "a") |] in
  let b = Batch.create ~capacity:4 layout in
  Batch.push_row b [| Value.Int 7 |];
  Scan_cache.add c "k" b;
  (* Mutating the original after caching must not reach the cache. *)
  Batch.push_row b [| Value.Int 8 |];
  (match Scan_cache.find c "k" with
   | None -> Alcotest.fail "expected a hit"
   | Some got ->
     Alcotest.(check int) "stored a frozen copy" 1 (Batch.length got);
     (* And mutating a served copy must not poison later hits. *)
     Batch.push_row got [| Value.Int 9 |]);
  (match Scan_cache.find c "k" with
   | None -> Alcotest.fail "expected a second hit"
   | Some got -> Alcotest.(check int) "served copies are private" 1
       (Batch.length got));
  Alcotest.(check bool) "miss on unknown key" true
    (Scan_cache.find c "zz" = None);
  let s = Scan_cache.stats c in
  Alcotest.(check int) "hits" 2 s.Plan_cache.hits;
  Alcotest.(check int) "misses" 1 s.Plan_cache.misses;
  Alcotest.(check int) "entries" 1 s.Plan_cache.entries

let test_scan_cache_size_bound () =
  let c = Scan_cache.create () in
  let layout = [| (Some "t", "a") |] in
  let n = Scan_cache.max_cells + 1 in
  (* Over the boxed budget but highly compressible: kept bit-packed and
     decompressed on hit. *)
  let big = Batch.create ~capacity:n layout in
  let row = [| Value.Int 0 |] in
  for _ = 1 to n do
    Batch.push_row big row
  done;
  Scan_cache.add c "big" big;
  (match Scan_cache.find c "big" with
   | None -> Alcotest.fail "compressible oversized result should be cached"
   | Some got ->
     Alcotest.(check int) "round-trips every row" n (Batch.length got);
     Alcotest.(check bool) "round-trips the values" true
       (Value.equal (Batch.get got 0 0) (Value.Int 0)
        && Value.equal (Batch.get got (n - 1) 0) (Value.Int 0)));
  (* All-distinct reals defeat the dictionary: the packed image itself
     busts the budget, so the entry is dropped. *)
  let wide = Batch.create ~capacity:n layout in
  for i = 1 to n do
    Batch.push_row wide [| Value.Real (float_of_int i) |]
  done;
  Scan_cache.add c "wide" wide;
  Alcotest.(check bool) "incompressible oversized result not cached" true
    (Scan_cache.find c "wide" = None)

(** The executor consults the cache for fused filter/projection scans:
    same statement twice → second run hits; a write in between →
    version changes, miss again. *)
let test_scan_cache_in_executor () =
  let db = Database.create "scantest" in
  let t = Database.create_table db "t" (Schema.make [ "k"; "v" ]) in
  for i = 0 to 99 do
    ignore (Table.insert t [| Value.Int (i mod 10); Value.Int i |])
  done;
  let stmt = Sql_parser.parse "SELECT a.v FROM t AS a WHERE a.k = 3" in
  let sum_stats f stats =
    Opstats.fold (fun acc n -> acc + f n) 0 stats
  in
  let r1, s1 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "first run misses" 1
    (sum_stats (fun n -> n.Opstats.cache_misses) s1);
  let r2, s2 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "second run hits" 1
    (sum_stats (fun n -> n.Opstats.cache_hits) s2);
  Alcotest.(check (list string)) "hit serves identical rows"
    (batch_strings r1) (batch_strings r2);
  Alcotest.(check bool) "ANALYZE surfaces the hit" true
    (Helpers.contains (Opstats.to_string s2) "scan_cache=hit");
  (* A write bumps Table.version: the old entry's key is dead. *)
  ignore (Table.insert t [| Value.Int 3; Value.Int 1_000 |]);
  let r3, s3 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "post-write run misses again" 1
    (sum_stats (fun n -> n.Opstats.cache_misses) s3);
  Alcotest.(check int) "post-write run sees the new row"
    (List.length (batch_strings r1) + 1)
    (List.length (batch_strings r3))

(** Delta-main regression: a cached packed scan must be invalidated by
    a delta-side insert (the packed image is untouched — the write only
    moves the row version and delta epoch), and invalidated again by
    the merge that folds the delta back in (same rows, fresh packed
    main), with identical rows served across both boundaries. *)
let test_scan_cache_delta_invalidation () =
  let db = Database.create "deltascan" in
  let t = Database.create_table db "t" (Schema.make [ "k"; "v" ]) in
  for i = 0 to 99 do
    ignore (Table.insert t [| Value.Int (i mod 10); Value.Int i |])
  done;
  Table.freeze t;
  let stmt = Sql_parser.parse "SELECT a.v FROM t AS a WHERE a.k = 3" in
  let sum_stats f stats = Opstats.fold (fun acc n -> acc + f n) 0 stats in
  let r1, s1 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "first packed run misses" 1
    (sum_stats (fun n -> n.Opstats.cache_misses) s1);
  let _, s2 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "second packed run hits" 1
    (sum_stats (fun n -> n.Opstats.cache_hits) s2);
  ignore (Table.insert t [| Value.Int 3; Value.Int 1_000 |]);
  Alcotest.(check bool) "insert stayed delta-side" true
    (Table.frozen t && Table.delta_rows t = 1);
  let r3, s3 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "delta insert invalidates the cached scan" 1
    (sum_stats (fun n -> n.Opstats.cache_misses) s3);
  Alcotest.(check (list string)) "delta row served after the packed rows"
    (batch_strings r1 @ [ "1000" ])
    (batch_strings r3);
  let _, s4 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "delta-resident scan re-cached" 1
    (sum_stats (fun n -> n.Opstats.cache_hits) s4);
  Table.merge t;
  let r5, s5 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "merge invalidates the cached scan" 1
    (sum_stats (fun n -> n.Opstats.cache_misses) s5);
  Alcotest.(check (list string)) "merge preserves the rows"
    (batch_strings r3) (batch_strings r5);
  let _, s6 = Executor.run_analyzed db stmt in
  Alcotest.(check int) "post-merge scan re-cached" 1
    (sum_stats (fun n -> n.Opstats.cache_hits) s6)

(* ------------------------------------------------------------------ *)
(* Partitioned build: metrics and edge cases                           *)
(* ------------------------------------------------------------------ *)

(** Two index-free tables joined on one key — the planner has no choice
    but a single-key hash join, which is the partitioned build's
    territory. *)
let join_db ~left ~right =
  let db = Database.create "joindb" in
  let lt = Database.create_table db "lt" (Schema.make [ "k"; "v" ]) in
  let rt = Database.create_table db "rt" (Schema.make [ "k"; "w" ]) in
  List.iter (fun (k, v) -> ignore (Table.insert lt [| k; Value.Int v |])) left;
  List.iter (fun (k, w) -> ignore (Table.insert rt [| k; Value.Int w |])) right;
  db

let join_sql =
  "SELECT a.v, b.w FROM lt AS a JOIN rt AS b ON b.k = a.k"

let left_join_sql =
  "SELECT a.v, b.w FROM lt AS a LEFT JOIN rt AS b ON b.k = a.k"

let test_partitioned_build_metrics () =
  with_tiny_morsels (fun () ->
      let rows n = List.init n (fun i -> (Value.Int (i mod 7), i)) in
      let db = join_db ~left:(rows 200) ~right:(rows 100) in
      let stmt = Sql_parser.parse join_sql in
      let seq = Executor.run ~domains:1 ~join_partitions:1 db stmt in
      let par, stats =
        Executor.run_analyzed ~domains:4 ~join_partitions:8 db stmt
      in
      Alcotest.(check (list string)) "partitioned join ≡ sequential"
        (batch_strings seq) (batch_strings par);
      let node =
        List.find_opt
          (fun n -> n.Opstats.partitions > 0)
          (Opstats.fold (fun acc n -> n :: acc) [] stats)
      in
      match node with
      | None -> Alcotest.fail "no operator reported a partitioned build"
      | Some n ->
        Alcotest.(check int) "partitions as requested" 8 n.Opstats.partitions;
        Alcotest.(check bool) "build workers reported" true
          (n.Opstats.build_workers >= 1);
        Alcotest.(check bool) "build time reported" true
          (n.Opstats.build_ms >= 0.0);
        Alcotest.(check int) "build rows counted (NULL-free input)" 100
          n.Opstats.build_rows;
        Alcotest.(check bool) "rendering shows parts=" true
          (Helpers.contains (Opstats.to_string n) "parts=8"))

let test_partitioned_all_null_and_skew () =
  with_tiny_morsels (fun () ->
      let checks =
        [ (* All-NULL keys on both sides: inner join empty, left join
             pads every left row. *)
          ( "all-null",
            List.init 50 (fun i -> (Value.Null, i)),
            List.init 50 (fun i -> (Value.Null, i)) );
          (* Every build row under one key: one partition gets all the
             data, the others stay empty. *)
          ( "single-key skew",
            List.init 40 (fun i -> (Value.Int 1, i)),
            List.init 60 (fun i -> (Value.Int 1, i)) );
          (* NULLs mixed into both sides. *)
          ( "null-mixed",
            List.init 60 (fun i ->
                ((if i mod 3 = 0 then Value.Null else Value.Int (i mod 5)), i)),
            List.init 60 (fun i ->
                ((if i mod 4 = 0 then Value.Null else Value.Int (i mod 5)), i))
          ) ]
      in
      List.iter
        (fun (name, left, right) ->
          let db = join_db ~left ~right in
          List.iter
            (fun sql ->
              let stmt = Sql_parser.parse sql in
              let seq = Executor.run ~domains:1 ~join_partitions:1 db stmt in
              List.iter
                (fun (d, p) ->
                  let par =
                    Executor.run ~domains:d ~join_partitions:p db stmt
                  in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s (domains=%d parts=%d)" name d p)
                    (batch_strings seq) (batch_strings par))
                [ (1, 4); (2, 4); (4, 16) ])
            [ join_sql; left_join_sql ])
        checks)

(* ------------------------------------------------------------------ *)
(* Sequential ≡ partitioned, full matrix                               *)
(* ------------------------------------------------------------------ *)

let matrix_queries =
  [ ("join-star",
     "SELECT ?a ?b ?v WHERE { ?a <http://microbench.org/SV1> ?b . \
      ?a <http://microbench.org/SV2> ?v }");
    ("join-sorted",
     "SELECT ?a ?b ?v WHERE { ?a <http://microbench.org/SV1> ?b . \
      ?a <http://microbench.org/SV3> ?v } ORDER BY ?v ?a");
    ("join-optional",
     "SELECT ?a ?b ?v WHERE { ?a <http://microbench.org/SV1> ?b . \
      OPTIONAL { ?a <http://microbench.org/MV1> ?v } }");
    ("join-agg",
     "SELECT ?b (COUNT(?a) AS ?n) WHERE { ?a <http://microbench.org/SV1> ?b . \
      ?a <http://microbench.org/SV2> ?v } GROUP BY ?b") ]

(** The tentpole property: for every dataset (fig1, generated micro,
    spill-heavy micro under a starved layout) and every
    (domains, partitions) combination, results are row-for-row,
    order-included identical to the sequential executor. *)
let test_seq_equals_partitioned_matrix () =
  with_tiny_morsels (fun () ->
      let datasets =
        [ ("fig1", Helpers.fig1_triples (), Db2rdf.Layout.default,
           [ ("fig1-star",
              "SELECT ?f ?i WHERE { ?p <founder> ?f . ?f <industry> ?i }") ]);
          ("micro",
           Workloads.Micro.generate ~scale:2_000,
           Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8,
           matrix_queries);
          (* 2-column layout: most predicates spill, so the executor
             joins spill tables back in — a join-heavy plan shape. *)
          ("micro-spill",
           Workloads.Micro.generate ~scale:1_000,
           Db2rdf.Layout.make ~dph_cols:2 ~rph_cols:2,
           matrix_queries)
        ]
      in
      List.iter
        (fun (dname, triples, layout, queries) ->
          let e, _, _ = Db2rdf.Engine.create_colored ~layout triples in
          let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
          List.iter
            (fun (qname, src) ->
              let stmt = Db2rdf.Engine.translate e (Sparql.Parser.parse src) in
              let seq = Executor.run ~domains:1 ~join_partitions:1 db stmt in
              let expect = batch_strings seq in
              List.iter
                (fun domains ->
                  List.iter
                    (fun parts ->
                      let got =
                        Executor.run ~domains ~join_partitions:parts db stmt
                      in
                      Alcotest.(check (list string))
                        (Printf.sprintf "%s/%s domains=%d partitions=%d"
                           dname qname domains parts)
                        expect (batch_strings got))
                    [ 1; 4; 16 ])
                [ 1; 2; 4 ])
            queries)
        datasets)

(* ------------------------------------------------------------------ *)
(* Property: random relations, partitioned ≡ sequential                *)
(* ------------------------------------------------------------------ *)

let gen_relation : (Value.t * int) list QCheck.Gen.t =
  let open QCheck.Gen in
  (* Keys from a small domain with NULLs and heavy skew mixed in, so
     partitions collide, stay empty, or take all the rows. *)
  let key =
    frequency
      [ (2, return Value.Null);
        (5, return (Value.Int 0));
        (3, map (fun i -> Value.Int i) (int_range 0 4));
        (1, map (fun i -> Value.Int i) (int_range 0 1000));
        (1, map (fun s -> Value.Str s) (string_size ~gen:(char_range 'a' 'c')
                                          (int_range 0 3))) ]
  in
  list_size (int_range 0 60) (pair key (int_range 0 1_000_000))

let print_relation rel =
  String.concat "; "
    (List.map
       (fun (k, v) -> Printf.sprintf "(%s,%d)" (Value.to_string k) v)
       rel)

let partitioned_join_matches_sequential =
  QCheck.Test.make
    ~name:"partitioned hash join ≡ sequential on random relations"
    ~count:120
    (QCheck.make
       QCheck.Gen.(pair gen_relation gen_relation)
       ~print:(fun (l, r) ->
         Printf.sprintf "left=[%s] right=[%s]" (print_relation l)
           (print_relation r)))
    (fun (left, right) ->
      with_tiny_morsels (fun () ->
          let db = join_db ~left ~right in
          List.for_all
            (fun sql ->
              let stmt = Sql_parser.parse sql in
              let seq = Executor.run ~domains:1 ~join_partitions:1 db stmt in
              let expect = batch_strings seq in
              List.for_all
                (fun (d, p) ->
                  expect
                  = batch_strings
                      (Executor.run ~domains:d ~join_partitions:p db stmt))
                [ (1, 2); (2, 4); (4, 8); (4, 16) ])
            [ join_sql; left_join_sql ]))

(* ------------------------------------------------------------------ *)
(* Differential fuzz with partitioned joins                            *)
(* ------------------------------------------------------------------ *)

(** Fixed-seed differential sweep with parallel execution AND
    partitioned join builds: every backend vs the reference evaluator. *)
let test_fuzz_sweep_partitioned () =
  let config =
    { Fuzz.Runner.default_config with
      seed = 4242; cases = 200; domains = 4; join_partitions = 8 }
  in
  let s = Fuzz.Runner.fuzz config in
  Alcotest.(check int) "no divergences with domains=4 partitions=8" 0
    s.Fuzz.Runner.divergent;
  Alcotest.(check int) "all cases ran" 200 s.Fuzz.Runner.cases_run

let suite =
  [ Alcotest.test_case "dpool.partition: histogram/scatter" `Quick
      test_partition_histogram_scatter;
    Alcotest.test_case "dpool.partition: drops negatives" `Quick
      test_partition_drops_negative;
    Alcotest.test_case "dpool.partition: single bucket" `Quick
      test_partition_single_bucket;
    Alcotest.test_case "join_hash: build order + validation" `Quick
      test_join_hash_build_order;
    Alcotest.test_case "table: version bumps on every write" `Quick
      test_table_version_bumps;
    Alcotest.test_case "scan cache: key versioning" `Quick
      test_scan_cache_key_versioning;
    Alcotest.test_case "scan cache: private copies + counters" `Quick
      test_scan_cache_copies;
    Alcotest.test_case "scan cache: size bound" `Quick
      test_scan_cache_size_bound;
    Alcotest.test_case "scan cache: executor hit/miss/invalidate" `Quick
      test_scan_cache_in_executor;
    Alcotest.test_case "scan cache: delta insert + merge invalidate" `Quick
      test_scan_cache_delta_invalidation;
    Alcotest.test_case "partitioned build: metrics in ANALYZE" `Quick
      test_partitioned_build_metrics;
    Alcotest.test_case "partitioned build: all-NULL and skew keys" `Quick
      test_partitioned_all_null_and_skew;
    Alcotest.test_case "sequential ≡ partitioned (full matrix)" `Slow
      test_seq_equals_partitioned_matrix;
    QCheck_alcotest.to_alcotest partitioned_join_matches_sequential;
    Alcotest.test_case "fuzz sweep with domains=4 partitions=8" `Slow
      test_fuzz_sweep_partitioned ]
