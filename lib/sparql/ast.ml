(** Abstract syntax for the SPARQL 1.0 subset the stores evaluate:
    SELECT queries over graph patterns built from basic graph patterns,
    groups, UNION, OPTIONAL and FILTER, with DISTINCT/REDUCED, ORDER BY,
    LIMIT and OFFSET solution modifiers.

    The pattern representation is deliberately *syntactic* — groups keep
    their element order and OPTIONAL/FILTER stay where they were written —
    because the paper's optimizer (Section 3.1) operates on the query
    parse tree (Figure 7), not on a normalized algebra. *)

type var = string

(** A position in a triple pattern: a variable or a constant RDF term. *)
type term_pat =
  | Var of var
  | Term of Rdf.Term.t

type triple_pat = { tp_s : term_pat; tp_p : term_pat; tp_o : term_pat }

type cmp = Ceq | Cneq | Clt | Cleq | Cgt | Cgeq

type arith = Aadd | Asub | Amul | Adiv

(** FILTER expressions. *)
type expr =
  | E_var of var
  | E_const of Rdf.Term.t
  | E_cmp of cmp * expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_bound of var
  | E_regex of expr * string  (** [REGEX(e, "pattern")]; substring match *)
  | E_arith of arith * expr * expr

(** Graph patterns, syntax-shaped (see module comment). An [Optional]
    or [Filter] element scopes over the group that contains it. *)
type pattern =
  | Bgp of triple_pat list  (** a run of triple patterns joined by [.] *)
  | Group of pattern list  (** [{ e1 e2 ... }] *)
  | Union of pattern list  (** [{A} UNION {B} UNION ...] *)
  | Optional of pattern  (** [OPTIONAL {P}] *)
  | Filter of expr  (** [FILTER (e)] *)

type projection =
  | Select_vars of var list
  | Select_star

(** Aggregate functions (SPARQL 1.1 subset). SUM/AVG/MIN/MAX operate on
    the numeric values of bound terms (non-numeric bindings are
    skipped); COUNT counts bound terms ([agg_arg = None] counts
    solutions). *)
type agg_fun = Ag_count | Ag_sum | Ag_avg | Ag_min | Ag_max

type aggregate = {
  agg_fn : agg_fun;
  agg_arg : var option;  (** [None] is count-star *)
  agg_distinct : bool;
  agg_alias : var;  (** the [(... AS ?alias)] name *)
}

type order_cond = { ord_expr : expr; ord_asc : bool }

type query = {
  projection : projection;
  distinct : bool;
  reduced : bool;
  where : pattern;
  group_by : var list;  (** GROUP BY variables (aggregate queries) *)
  aggregates : aggregate list;  (** aggregate select items, in order *)
  order_by : order_cond list;
  limit : int option;
  offset : int option;
}

let select ?(distinct = false) ?(reduced = false) ?(group_by = [])
    ?(aggregates = []) ?(order_by = []) ?limit ?offset projection where =
  { projection; distinct; reduced; where; group_by; aggregates; order_by;
    limit; offset }

let is_aggregate q = q.aggregates <> [] || q.group_by <> []

(** The SPARQL 1.1 UPDATE subset. [INSERT DATA] and [DELETE DATA] carry
    ground triples. [DELETE WHERE] uses its basic graph pattern both as
    the WHERE clause and as the deletion template: the pattern is
    matched against the pre-update state, instantiated under every
    solution, and the resulting ground triples are removed. *)
type update =
  | Insert_data of Rdf.Triple.t list
  | Delete_data of Rdf.Triple.t list
  | Delete_where of triple_pat list

(** One statement of an update script: a query or an update request
    (scripts separate statements with [;], as in SPARQL update
    requests). *)
type statement =
  | S_query of query
  | S_update of update

(* ------------------------------------------------------------------ *)
(* Variable utilities                                                  *)
(* ------------------------------------------------------------------ *)

module VarSet = Set.Make (String)

let term_pat_vars = function Var v -> [ v ] | Term _ -> []

let triple_pat_vars { tp_s; tp_p; tp_o } =
  term_pat_vars tp_s @ term_pat_vars tp_p @ term_pat_vars tp_o

let rec expr_vars = function
  | E_var v | E_bound v -> [ v ]
  | E_const _ -> []
  | E_cmp (_, a, b) | E_and (a, b) | E_or (a, b) | E_arith (_, a, b) ->
    expr_vars a @ expr_vars b
  | E_not e | E_regex (e, _) -> expr_vars e

(** All variables syntactically occurring in a pattern (including inside
    OPTIONAL and FILTER). *)
let rec pattern_vars = function
  | Bgp tps -> List.concat_map triple_pat_vars tps
  | Group ps | Union ps -> List.concat_map pattern_vars ps
  | Optional p -> pattern_vars p
  | Filter e -> expr_vars e

(** Variables a pattern is guaranteed to bind in every solution
    (excludes OPTIONAL-only and FILTER-only variables; UNION keeps the
    intersection of its branches). *)
let rec certain_vars = function
  | Bgp tps -> VarSet.of_list (List.concat_map triple_pat_vars tps)
  | Group ps ->
    List.fold_left (fun acc p -> VarSet.union acc (certain_vars p)) VarSet.empty ps
  | Union [] -> VarSet.empty
  | Union (p :: ps) ->
    List.fold_left (fun acc p -> VarSet.inter acc (certain_vars p)) (certain_vars p) ps
  | Optional _ | Filter _ -> VarSet.empty

(** Variables the query projects (resolving [SELECT *]). Synthetic
    variables introduced by property-path rewriting (prefixed [__]) are
    never projected. For aggregate queries the projection is the plain
    (grouped) variables followed by the aggregate aliases. *)
let projected_vars q =
  if is_aggregate q then
    (match q.projection with
     | Select_vars vs -> vs
     | Select_star -> q.group_by)
    @ List.map (fun a -> a.agg_alias) q.aggregates
  else
  match q.projection with
  | Select_vars vs -> vs
  | Select_star ->
    let seen = Hashtbl.create 16 in
    List.filter
      (fun v ->
        if Hashtbl.mem seen v || String.length v >= 2 && String.sub v 0 2 = "__"
        then false
        else begin
          Hashtbl.add seen v ();
          true
        end)
      (pattern_vars q.where)

(** Number of triple patterns in a query. *)
let rec pattern_size = function
  | Bgp tps -> List.length tps
  | Group ps | Union ps -> List.fold_left (fun a p -> a + pattern_size p) 0 ps
  | Optional p -> pattern_size p
  | Filter _ -> 0

(* ------------------------------------------------------------------ *)
(* Size and shrinking utilities (used by the differential fuzzer to     *)
(* reduce failing cases to minimal reproducers)                         *)
(* ------------------------------------------------------------------ *)

(** AST node count of an expression. *)
let rec expr_size = function
  | E_var _ | E_const _ | E_bound _ -> 1
  | E_not e | E_regex (e, _) -> 1 + expr_size e
  | E_cmp (_, a, b) | E_and (a, b) | E_or (a, b) | E_arith (_, a, b) ->
    1 + expr_size a + expr_size b

(** Total node count of a pattern: triple patterns, group/union/optional
    structure and filter expression nodes all count. *)
let rec pattern_nodes = function
  | Bgp tps -> List.length tps
  | Group ps | Union ps ->
    1 + List.fold_left (fun a p -> a + pattern_nodes p) 0 ps
  | Optional p -> 1 + pattern_nodes p
  | Filter e -> expr_size e

(** Size of a whole query: pattern nodes plus solution-modifier weight.
    Shrinking drives this number down monotonically. *)
let query_size q =
  pattern_nodes q.where
  + List.length q.aggregates
  + List.length q.order_by
  + (if q.distinct then 1 else 0)
  + (match q.limit with Some _ -> 1 | None -> 0)
  + (match q.offset with Some _ -> 1 | None -> 0)

(** Size of an update / script statement, for shrink monotonicity. *)
let update_size = function
  | Insert_data ts | Delete_data ts -> 1 + List.length ts
  | Delete_where tps -> 1 + List.length tps

let statement_size = function
  | S_query q -> query_size q
  | S_update u -> update_size u

(* [remove_each xs] = all lists obtained by dropping one element. *)
let remove_each xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* [replace_nth xs i x] substitutes position [i]. *)
let replace_nth xs i x = List.mapi (fun j y -> if j = i then x else y) xs

(** One-step shrink candidates of a value-position operand: an
    arithmetic node collapses to either side. *)
let rec operand_shrinks = function
  | E_arith (op, a, b) ->
    [ a; b ]
    @ List.map (fun a' -> E_arith (op, a', b)) (operand_shrinks a)
    @ List.map (fun b' -> E_arith (op, a, b')) (operand_shrinks b)
  | E_var _ | E_const _ | E_cmp _ | E_and _ | E_or _ | E_not _ | E_bound _
  | E_regex _ -> []

(** One-step shrink candidates of a boolean expression: connectives
    collapse to a side, NOT unwraps, operands shrink structurally. *)
let rec expr_shrinks = function
  | E_and (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> E_and (a', b)) (expr_shrinks a)
    @ List.map (fun b' -> E_and (a, b')) (expr_shrinks b)
  | E_or (a, b) ->
    [ a; b ]
    @ List.map (fun a' -> E_or (a', b)) (expr_shrinks a)
    @ List.map (fun b' -> E_or (a, b')) (expr_shrinks b)
  | E_not e -> e :: List.map (fun e' -> E_not e') (expr_shrinks e)
  | E_cmp (op, a, b) ->
    List.map (fun a' -> E_cmp (op, a', b)) (operand_shrinks a)
    @ List.map (fun b' -> E_cmp (op, a, b')) (operand_shrinks b)
  | E_regex _ | E_var _ | E_const _ | E_bound _ | E_arith _ -> []

(** One-step shrink candidates of a pattern, smaller-first by
    construction: drop a triple pattern, promote a subtree over its
    wrapper (group member, UNION branch, OPTIONAL body), drop a group
    member or UNION branch, or shrink a FILTER expression in place. *)
let rec pattern_shrinks (p : pattern) : pattern list =
  match p with
  | Bgp tps ->
    if List.length tps > 1 then List.map (fun l -> Bgp l) (remove_each tps)
    else []
  | Group ps ->
    ps
    @ (if List.length ps > 1 then List.map (fun l -> Group l) (remove_each ps)
       else [])
    @ List.concat
        (List.mapi
           (fun i pi ->
             List.map (fun pi' -> Group (replace_nth ps i pi')) (pattern_shrinks pi))
           ps)
  | Union ps ->
    ps
    @ (if List.length ps > 2 then List.map (fun l -> Union l) (remove_each ps)
       else [])
    @ List.concat
        (List.mapi
           (fun i pi ->
             List.map (fun pi' -> Union (replace_nth ps i pi')) (pattern_shrinks pi))
           ps)
  | Optional inner ->
    inner :: List.map (fun p' -> Optional p') (pattern_shrinks inner)
  | Filter e -> List.map (fun e' -> Filter e') (expr_shrinks e)
