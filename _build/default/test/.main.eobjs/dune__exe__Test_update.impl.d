test/test_update.ml: Alcotest Dataset_stats Db2rdf Engine Gen Layout List Loader Native_store Printf QCheck QCheck_alcotest Rdf Relsql Sparql Store Triple_store Vertical_store
