lib/core/triple_store.ml: Bottom_up Dataset_stats Dict_table Hashtbl List Merge Rdf Relsql Results Sparql Sqlgen Store
