(** Recursive-descent parser for the SQL dialect printed by {!Sql_pp}.
    [parse (Sql_pp.to_string stmt)] round-trips for every statement the
    translators emit (property-tested). *)

exception Parse_error of string

(** Parse a full statement (with optional WITH clause). Raises
    {!Parse_error} or {!Sql_lexer.Lex_error}. *)
val parse : string -> Sql_ast.stmt
