(** Mutable row-store tables with hash indexes and tombstone deletion.

    Rows are value arrays of the schema's arity. Hash indexes map a
    column value to a posting of row ids and are maintained
    incrementally through {!insert}, {!set_cell} and {!delete_row} — the
    DB2RDF loader updates cells in place when it assigns a predicate to
    a column of an existing entity row.

    Postings are append-only growable int arrays that tolerate stale
    entries: removals are O(1) counter bumps, lookups validate each
    candidate against the live bitmap and current cell value, and a
    posting is compacted in place once more than half of it is stale.
    Delete-heavy workloads are therefore linear instead of the quadratic
    [List.filter]-per-removal of the previous representation. *)

type t

val create : string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

(** Number of live (non-deleted) rows. *)
val row_count : t -> int

(** Monotonic data-change counter: bumped by {!insert}, {!set_cell} and
    {!delete_row}, never reset. Anything a scan could observe changing
    changes the version, so caches (the shared scan cache, the engine's
    statement cache) key or stamp their entries by it instead of being
    cleared ad hoc. *)
val version : t -> int

val is_live : t -> int -> bool

(** [insert t row] appends [row] and returns its row id. The row array
    is owned by the table afterwards; callers must not mutate it
    directly (use {!set_cell}). Raises [Invalid_argument] on arity
    mismatch. *)
val insert : t -> Value.t array -> int

(** [get t rid] is the row array (including tombstoned rows); raises
    [Invalid_argument] on an out-of-range id. *)
val get : t -> int -> Value.t array

val cell : t -> int -> int -> Value.t

(** Update one cell, keeping any index on that column consistent, and
    return the row's id after the write. On a boxed table (or a delta
    row of a frozen one) the update is in place and the id is [rid];
    writing a {e different} value into a row of the frozen main
    relocates the row — the packed slot is tombstoned and the updated
    copy appended to the delta side, and the {e new} id is returned.
    Equal-value writes are no-ops. Callers that track row ids must
    adopt the result. *)
val set_cell : t -> int -> int -> Value.t -> int

(** Delete a row: it disappears from scans, lookups and {!row_count}.
    The slot is tombstoned (ids of other rows are stable) whichever
    side it lives on — on a frozen table the tombstone lands in the
    bitmap over the packed main (or on the delta row) with no thaw and
    no re-encode. Idempotent. *)
val delete_row : t -> int -> unit

(** Build (or rebuild) a hash index on the column at position [pos]. *)
val create_index : t -> int -> unit

val create_index_on : t -> string -> unit
val has_index : t -> int -> bool
val indexed_columns : t -> int list

(** [lookup t pos v] is the ids of live rows whose column [pos] equals
    [v], in insertion order. Requires an index on [pos]. The returned
    array is fresh — callers may keep it. *)
val lookup : t -> int -> Value.t -> int array

(** [lookup_iter t pos v f] calls [f] on each matching live row id in
    insertion order without allocating. The callback must not modify
    the table. Requires an index on [pos]. *)
val lookup_iter : t -> int -> Value.t -> (int -> unit) -> unit

(** [prober t pos] is {!lookup_iter} partially applied, with the
    column-to-index resolution hoisted out of the per-probe path —
    for index nested-loop joins that probe once per outer row. *)
val prober : t -> int -> Value.t -> (int -> unit) -> unit

(** [prober_ro t pos] is a {!prober} that never compacts postings: the
    returned closure only reads the table, so it may be shared by
    concurrently probing worker domains (the table must not be mutated
    while they run). Stale entries are validated on every probe instead
    of being amortized away. *)
val prober_ro : t -> int -> Value.t -> (int -> unit) -> unit

(** Iterate live rows in insertion order. *)
val iter : (int -> Value.t array -> unit) -> t -> unit

(** Row slots ever allocated, including tombstoned ones — the iteration
    space of {!iter} and {!iter_range} (parallel scans morselize over
    it). *)
val slot_count : t -> int

(** [iter_range f t lo hi] is {!iter} restricted to slots
    [lo <= rid < hi]. *)
val iter_range : (int -> Value.t array -> unit) -> t -> int -> int -> unit

val fold : ('a -> int -> Value.t array -> 'a) -> 'a -> t -> 'a

(** Simulated on-disk footprint in bytes under the value-compressed
    storage model: per-row header, a null bitmap of one bit per column,
    and per-value sizes (see {!Value.storage_size}). Used by the
    Section 2.3 NULL experiment. *)
val storage_size : t -> int

(** {2 Compressed columnar mode (delta-main storage)}

    {!freeze} switches the table to bit-packed columnar storage with
    zone maps ({!Packed}); postings are compacted and dense ones
    run-length encoded. All reads keep working on the frozen form. A
    frozen table is a {e main/delta} split: the immutable packed image
    covers slots [0 .. main_slots-1] (the read-optimized main) and
    later writes land in a small boxed delta at the slots above it —
    {!insert} appends a delta row, {!delete_row} punches a tombstone
    into the shared bitmap, {!set_cell} relocates a main row into the
    delta — none of them thaw or re-encode anything. {!merge} folds the
    delta back into a fresh packed main. Freezing, thawing and merging
    never change the data — {!version} is untouched — only the physical
    encoding, which {!enc_epoch} fingerprints for the scan cache;
    {!delta_epoch} is the cheap companion stamp bumped by delta writes
    and merges. *)

val freeze : t -> unit

(** Restore boxed row storage (no-op when not frozen). Delta rows keep
    their ids. *)
val thaw : t -> unit

(** Fold the delta side back into the packed main: re-pack the unified
    slots (fresh zone maps, compacted postings) and start an empty
    delta. Row ids are stable. A no-op unless the table is frozen and
    has delta rows or fresh main tombstones. Bumps {!enc_epoch} (the
    image is rebuilt) and {!delta_epoch}, not {!version} or
    {!thaw_count}. *)
val merge : t -> unit

(** [Some _] while the table is frozen: the packed image of the
    {e main} — slots below {!main_slots} — that the executor's
    compressed scan path reads directly. Slots at or above
    {!main_slots} are boxed delta rows ({!get}/{!cell}/{!iter} unify
    the two sides). *)
val packed_view : t -> Packed.t option

val frozen : t -> bool

(** Slots covered by the frozen main image; 0 on a boxed table. *)
val main_slots : t -> int

(** Boxed rows on the delta side of a frozen table; 0 on a boxed one. *)
val delta_rows : t -> int

(** Tombstones punched into the frozen main since the last freeze or
    merge. *)
val main_tombstones : t -> int

(** Delta-into-main merges performed ({!merge}). *)
val merge_count : t -> int

(** Cumulative re-encoding bytes the delta write path avoided paying
    (each non-merging write of a frozen table defers one packed-image
    rewrite). *)
val deferred_bytes : t -> int

(** Bumped by every freeze/thaw. *)
val enc_epoch : t -> int

(** Bumped by every delta-side write of a frozen table and by every
    {!merge}: the third stamp — after {!version} and {!enc_epoch} —
    that scan/statement/reduction caches key on. *)
val delta_epoch : t -> int

(** Per-table memory accounting for [rdfstore stats]: packed bytes vs
    boxed-equivalent bytes, bits per column, posting compression. *)
type compression_report = {
  r_table : string;
  r_frozen : bool;
  r_live_rows : int;
  r_slots : int;
  r_boxed_bytes : int;
  r_packed_bytes : int;  (** 0 when not frozen *)
  r_col_bits : (string * int) list;  (** frozen only *)
  r_posting_entries : int;
  r_posting_words : int;  (** stored words after run encoding *)
  r_thaws : int;  (** mutations that transparently thawed a frozen table *)
  r_delta_rows : int;  (** boxed rows on the delta side (frozen only) *)
  r_delta_bytes : int;  (** boxed footprint of those delta rows *)
  r_tombstones : int;  (** tombstones punched into the frozen main *)
  r_merges : int;  (** delta-into-main merges performed *)
  r_deferred_bytes : int;  (** re-encode bytes the delta path avoided *)
}

val compression_report : t -> compression_report

(** How many times a mutation transparently thawed this table (see
    {!delete_row}) — surfaced by [rdfstore stats] so update-heavy
    workloads can tell when they are churning the packed encoding. *)
val thaw_count : t -> int

(** [snapshot t] is an immutable copy-on-write view of [t]'s current
    contents: a boxed source is frozen first, a frozen one is captured
    as-is (live delta included, no merge). The snapshot shares the
    packed main image while deep-copying the delta rows, the live
    bitmap and the postings (the writer mutates delta rows in place and
    postings compact during lookups, so none may be shared). No write
    path ever mutates a packed image in place — later writes land in
    the source's delta or build a new image on merge — so the snapshot
    stays bit-stable forever. It carries [t]'s {!version},
    {!enc_epoch} and {!delta_epoch} at capture time. *)
val snapshot : t -> t

(** Fraction of cells that are NULL across the given column positions
    (live rows only). *)
val null_fraction : t -> int list -> float

(** The partition-indexed prober of the radix-partitioned parallel
    hash-join build: a power-of-two number of disjoint per-partition
    sub-tables mapping a key value ({!Value.equal} / {!Value.hash}
    semantics, matching the executor's sequential build) to a posting
    of build-row ids. Workers build partitions independently — the
    sub-table array is the merged structure ("merged by pointer") and
    probes route straight to one sub-table, so builders and probers
    never contend. Adding rows in ascending build order per partition
    makes probe results replay in global build order, keeping the
    partitioned join bit-identical to the sequential one. *)
module Join_hash : sig
  type t

  (** [create ~parts] with [parts] a positive power of two; raises
      [Invalid_argument] otherwise. *)
  val create : parts:int -> t

  val parts : t -> int

  (** Which partition a (non-NULL) key routes to. *)
  val part_of : t -> Value.t -> int

  (** [add h p k rid] appends [rid] under [k] in sub-table [p]; the
      caller routes [p = part_of h k] and must own partition [p]
      exclusively while adding. *)
  val add : t -> int -> Value.t -> int -> unit

  (** Iterate the build rows matching [k], in build order. *)
  val iter_matches : t -> Value.t -> (int -> unit) -> unit
end
