lib/core/layout.mli: Relsql
