lib/rdf/graph.ml: Dictionary Hashtbl Int List Triple
