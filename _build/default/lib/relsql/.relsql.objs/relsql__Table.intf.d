lib/relsql/table.mli: Schema Value
