(** RDF triples. *)

type t = { s : Term.t; p : Term.t; o : Term.t }

let make s p o = { s; p; o }

(** Convenience constructor from raw IRIs and an object term. *)
let spo s p o = { s = Term.iri s; p = Term.iri p; o }

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

let to_string { s; p; o } =
  Printf.sprintf "%s %s %s ." (Term.to_string s) (Term.to_string p)
    (Term.to_string o)

let pp fmt t = Format.pp_print_string fmt (to_string t)
