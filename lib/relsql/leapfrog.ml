(** Leapfrog triejoin — the execution of {!Planner.Wcoj}.

    Each atom becomes a sorted in-memory trie: its matching rows,
    filtered by the atom's constant columns, projected to its
    join-variable columns and sorted lexicographically in the global
    variable order. Matching rows come from the table's existing
    hash-index postings when a constant column is indexed (the int-array
    posting is the "sorted iterator" seed — DPH/RPH entry lookups), and
    from a full row iteration otherwise; frozen tables decode cells
    lazily from the bit-packed image ({!Table.iter} / {!Table.cell}
    route through {!Packed}), so building a trie never thaws a table.

    The join then intersects one variable at a time in [var_order]:
    all participating atoms leapfrog (seek to the maximum current key,
    galloping via binary search) until their keys agree, the variable
    binds, and the search descends with each atom constrained to its
    matching run. Bindings are enumerated in ascending {!Value.compare}
    order at every level, and ties (duplicate source rows) multiply out
    as run lengths, so the emitted multiset equals the binary join
    tree's and the emission order is a pure function of the statement
    and the data — sequential and deterministic, hence bit-identical
    across executor domain counts and storage encodings.

    SQL equality semantics: a NULL cell never joins (rows with NULL in
    any equality-constrained column are dropped while building the
    trie), but a projection-only column — a variable class with a
    single member column, which no equality conjunct can mention —
    passes NULLs through like the binary plan's projection would. *)

type trie = {
  data : Value.t array array;  (** sorted tuples, one per matching row *)
  ndepth : int;  (** trie depth = distinct join variables of the atom *)
  vars : int array;  (** local depth -> global variable id *)
  lo : int array;  (** active range starts, indexed by depth (0..ndepth) *)
  hi : int array;  (** active range ends *)
  cur : int array;  (** per-depth search cursor while intersecting *)
  count0 : int;  (** matching-row count (multiplicity of 0-depth atoms) *)
}

(* First index in [cur.(d), hi.(d)) whose depth-[d] value is >= [target]
   (the range holds a fixed prefix, so only column [d] is compared). *)
let seek_ge tr d target =
  let lo = ref tr.cur.(d) and hi = ref tr.hi.(d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare tr.data.(mid).(d) target < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* First index in [from, hi.(d)) whose depth-[d] value is > [target]. *)
let seek_gt tr d from target =
  let lo = ref from and hi = ref tr.hi.(d) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare tr.data.(mid).(d) target <= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* A trie build in progress: the atom's prepared column positions and
   filters, its accumulating matches, and its access path. Atoms that
   must scan (no usable indexed constant) are grouped per table so every
   table is iterated once for ALL its scanning atoms, not once per
   atom — the dominant cost of the operator. *)
type builder = {
  b_table : Table.t;
  b_name : string;
  b_indexed : (int * Value.t) option;  (** usable indexed constant *)
  b_dead : bool;  (** a constant is NULL: the atom matches nothing *)
  b_consider : int -> (int -> int -> Value.t) -> unit;
  b_finish : unit -> trie;
}

(* Generic lexicographic sort of matched tuples — the fallback when the
   packed int accumulator below could not hold a row. *)
let sort_tuples ndepth (data : Value.t array array) =
  if ndepth > 0 then
    Array.sort
      (fun (x : Value.t array) (y : Value.t array) ->
        let rec go d =
          if d = ndepth then 0
          else
            match Value.compare x.(d) y.(d) with 0 -> go (d + 1) | c -> c
        in
        go 0)
      data;
  data

let pack_max = 1 lsl 30

(** Prepare one atom's trie build. [rank.(v)] is the variable's position
    in the global order; [members.(v)] its member-column count across
    all atoms (1 = projection-only, NULLs pass through). *)
let prepare_trie ~tick (stats : Opstats.t) db (rank : int array)
    (members : int array) (a : Wcoj.atom) : builder =
  let t = Database.find_exn db a.Wcoj.w_table in
  let sch = Table.schema t in
  let pos c = Schema.position_exn sch c in
  let consts =
    Array.of_list
      (List.filter_map
         (function
           | c, Wcoj.W_const v -> Some (pos c, v) | _, Wcoj.W_var _ -> None)
         a.Wcoj.w_cols)
  in
  let var_cols =
    List.sort_uniq compare
      (List.filter_map
         (function c, Wcoj.W_var v -> Some (pos c, v) | _, Wcoj.W_const _ -> None)
         a.Wcoj.w_cols)
  in
  (* One trie column per distinct variable, in global order; further
     columns of the same variable become intra-row equality checks. *)
  let vars =
    List.sort_uniq compare (List.map snd var_cols)
    |> List.sort (fun x y -> compare rank.(x) rank.(y))
    |> Array.of_list
  in
  let ndepth = Array.length vars in
  let primary = Array.make ndepth 0 in
  let intra = ref [] in
  Array.iteri
    (fun d v ->
      let cols = List.filter_map
          (fun (p, v') -> if v' = v then Some p else None) var_cols in
      match cols with
      | [] -> assert false
      | p0 :: rest ->
        primary.(d) <- p0;
        List.iter (fun p -> intra := (p0, p) :: !intra) rest)
    vars;
  let intra = Array.of_list !intra in
  let nullable =
    Array.init ndepth (fun d -> members.(vars.(d)) <= 1)
  in
  (* Matched tuples accumulate PACKED when possible: at depth 1–2 with
     every cell a small non-negative Int (dictionary ids — the common
     case) a whole tuple folds losslessly into one native int, so the
     scan pushes plain ints into a growable buffer and the finish is a
     single monomorphic [Array.sort Int.compare] — no per-row
     allocation, no polymorphic comparator. The first row that does not
     fit (a NULL passing through a projection-only column, a string, an
     oversized id) demotes the accumulated keys back into tuples and
     the build continues generically; the sorted order is identical
     either way. *)
  let packed = ref (ndepth >= 1 && ndepth <= 2) in
  let keys = ref (Array.make 64 0) and nkeys = ref 0 in
  let rows = ref [] and nmatch = ref 0 and scanned = ref 0 in
  let push_key k =
    if !nkeys = Array.length !keys then begin
      let bigger = Array.make (2 * !nkeys) 0 in
      Array.blit !keys 0 bigger 0 !nkeys;
      keys := bigger
    end;
    !keys.(!nkeys) <- k;
    incr nkeys
  in
  let unpack k =
    if ndepth = 1 then [| Value.Int k |]
    else [| Value.Int (k lsr 30); Value.Int (k land (pack_max - 1)) |]
  in
  let demote () =
    for i = 0 to !nkeys - 1 do
      rows := unpack !keys.(i) :: !rows
    done;
    nkeys := 0;
    packed := false
  in
  let nconsts = Array.length consts and nintra = Array.length intra in
  let scratch = Array.make (max 1 ndepth) Value.Null in
  let consider rid cell =
    incr scanned;
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < nconsts do
      let p, v = consts.(!i) in
      let c = cell rid p in
      if Value.is_null c || not (Value.equal c v) then ok := false;
      incr i
    done;
    i := 0;
    while !ok && !i < nintra do
      let p0, p1 = intra.(!i) in
      let a = cell rid p0 and b = cell rid p1 in
      if Value.is_null a || Value.is_null b || not (Value.equal a b) then
        ok := false;
      incr i
    done;
    if !ok then begin
      let d = ref 0 in
      while !ok && !d < ndepth do
        let c = cell rid primary.(!d) in
        if Value.is_null c && not nullable.(!d) then ok := false
        else scratch.(!d) <- c;
        incr d
      done;
      if !ok then begin
        incr nmatch;
        let key =
          if not !packed then -1
          else
            match scratch.(0) with
            | Value.Int x when x >= 0 && x < pack_max ->
              if ndepth = 1 then x
              else (
                match scratch.(1) with
                | Value.Int y when y >= 0 && y < pack_max ->
                  (x lsl 30) lor y
                | _ -> -1)
            | _ -> -1
        in
        if key >= 0 then push_key key
        else begin
          if !packed then demote ();
          rows := Array.copy scratch :: !rows
        end
      end
    end
  in
  let finish () =
    tick !scanned;
    stats.Opstats.rows_in <- stats.Opstats.rows_in + !nmatch;
    let data =
      if !packed then begin
        let ks = Array.sub !keys 0 !nkeys in
        Array.sort Int.compare ks;
        Array.map unpack ks
      end
      else sort_tuples ndepth (Array.of_list !rows)
    in
    let n = Array.length data in
    { data; ndepth; vars;
      lo = (let a = Array.make (ndepth + 1) 0 in a);
      hi = (let a = Array.make (ndepth + 1) n in a);
      cur = Array.make (max 1 ndepth) 0;
      count0 = !nmatch }
  in
  let dead =
    Array.exists (fun (_, v) -> Value.is_null v) consts
  in
  let indexed_const =
    if dead then None
    else
      Array.to_list consts
      |> List.find_opt (fun (p, _) -> Table.has_index t p)
  in
  { b_table = t; b_name = a.Wcoj.w_table; b_indexed = indexed_const;
    b_dead = dead; b_consider = consider; b_finish = finish }

(** Build every atom's trie: index-driven atoms probe their postings;
    the rest are grouped so each table is scanned once for all of its
    atoms. *)
let build_tries ~tick stats db rank members (atoms : Wcoj.atom list) :
    trie array =
  let builders = List.map (prepare_trie ~tick stats db rank members) atoms in
  let scan_groups : (string, builder list ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun b ->
      if b.b_dead then ()
      else
        match b.b_indexed with
        | Some (p, v) ->
          stats.Opstats.index_probes <- stats.Opstats.index_probes + 1;
          let cell rid q = Table.cell b.b_table rid q in
          Table.lookup_iter b.b_table p v (fun rid -> b.b_consider rid cell)
        | None ->
          (match Hashtbl.find_opt scan_groups b.b_name with
           | Some l -> l := b :: !l
           | None -> Hashtbl.add scan_groups b.b_name (ref [ b ])))
    builders;
  Hashtbl.iter
    (fun _ group ->
      let bs = Array.of_list !group in
      let t = bs.(0).b_table in
      Table.iter
        (fun rid row ->
          let cell _ q = row.(q) in
          Array.iter (fun b -> b.b_consider rid cell) bs)
        t)
    scan_groups;
  Array.of_list (List.map (fun b -> b.b_finish ()) builders)

let run ~(tick : int -> unit) ~(stats : Opstats.t) db
    (atoms : Wcoj.atom list) ~(var_order : int array) ~(n_vars : int)
    ~(outputs : (string * string * int) list) : Batch.t =
  let rank = Array.make n_vars 0 in
  Array.iteri (fun i v -> rank.(v) <- i) var_order;
  let members = Array.make (max 1 n_vars) 0 in
  List.iter
    (fun a ->
      List.iter
        (function
          | _, Wcoj.W_var v -> members.(v) <- members.(v) + 1
          | _, Wcoj.W_const _ -> ())
        a.Wcoj.w_cols)
    atoms;
  let tries = build_tries ~tick stats db rank members atoms in
  let out_layout =
    Array.of_list (List.map (fun (a, c, _) -> (Some a, c)) outputs)
  in
  let out_vars = Array.of_list (List.map (fun (_, _, v) -> v) outputs) in
  let out = Batch.create ~capacity:64 out_layout in
  let empty =
    Array.exists
      (fun tr -> if tr.ndepth = 0 then tr.count0 = 0 else tr.hi.(0) = 0)
      tries
  in
  if not empty then begin
    (* Atoms participating at each global depth, with their local depth. *)
    let parts_at =
      Array.init n_vars (fun g ->
          let v = var_order.(g) in
          Array.of_list
            (List.concat_map
               (fun tr ->
                 let d = ref (-1) in
                 Array.iteri (fun i v' -> if v' = v then d := i) tr.vars;
                 if !d >= 0 then [ (tr, !d) ] else [])
               (Array.to_list tries)))
    in
    let binding = Array.make (max 1 n_vars) Value.Null in
    let scratch = Array.make (Array.length out_vars) Value.Null in
    let rec solve g =
      if g = n_vars then begin
        let mult = ref 1 in
        Array.iter
          (fun tr ->
            mult :=
              !mult
              * (if tr.ndepth = 0 then tr.count0
                 else tr.hi.(tr.ndepth) - tr.lo.(tr.ndepth)))
          tries;
        if !mult > 0 then begin
          for j = 0 to Array.length out_vars - 1 do
            scratch.(j) <- binding.(out_vars.(j))
          done;
          tick !mult;
          for _ = 1 to !mult do
            Batch.push_row out scratch
          done
        end
      end
      else begin
        let parts = parts_at.(g) in
        let k = Array.length parts in
        let key (tr, d) = tr.data.(tr.cur.(d)).(d) in
        let alive = ref true in
        Array.iter
          (fun (tr, d) ->
            tr.cur.(d) <- tr.lo.(d);
            if tr.cur.(d) >= tr.hi.(d) then alive := false)
          parts;
        if !alive then begin
          let cand = ref (key parts.(0)) in
          for i = 1 to k - 1 do
            let kk = key parts.(i) in
            if Value.compare kk !cand > 0 then cand := kk
          done;
          while !alive do
            tick k;
            (* Leapfrog: seek every atom to >= candidate; any overshoot
               raises the candidate and the pass restarts. *)
            let aligned = ref true in
            Array.iter
              (fun ((tr, d) as p) ->
                if !alive then begin
                  tr.cur.(d) <- seek_ge tr d !cand;
                  if tr.cur.(d) >= tr.hi.(d) then alive := false
                  else
                    let kk = key p in
                    if Value.compare kk !cand > 0 then begin
                      cand := kk;
                      aligned := false
                    end
                end)
              parts;
            if !alive && !aligned then begin
              binding.(var_order.(g)) <- !cand;
              Array.iter
                (fun (tr, d) ->
                  tr.lo.(d + 1) <- tr.cur.(d);
                  tr.hi.(d + 1) <- seek_gt tr d tr.cur.(d) !cand)
                parts;
              solve (g + 1);
              (* Next binding: advance the first atom past the run. *)
              let tr0, d0 = parts.(0) in
              tr0.cur.(d0) <- tr0.hi.(d0 + 1);
              if tr0.cur.(d0) >= tr0.hi.(d0) then alive := false
              else cand := key parts.(0)
            end
          done
        end
      end
    in
    solve 0
  end;
  out
