(** N-Triples parsing and serialization (the line-oriented RDF exchange
    syntax). Supports IRIs, blank nodes, plain / language-tagged /
    datatyped literals, the standard string escapes, and [#] comments. *)

exception Syntax_error of { line : int; message : string }

let error line message = raise (Syntax_error { line; message })

type cursor = { src : string; mutable pos : int; line : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c.line (Printf.sprintf "expected %C" ch)

let parse_iri c =
  expect c '<';
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some '>' ->
      let s = String.sub c.src start (c.pos - start) in
      advance c;
      s
    | Some _ ->
      advance c;
      go ()
    | None -> error c.line "unterminated IRI"
  in
  go ()

let parse_bnode c =
  expect c '_';
  expect c ':';
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ch
      when (ch >= 'a' && ch <= 'z')
           || (ch >= 'A' && ch <= 'Z')
           || (ch >= '0' && ch <= '9')
           || ch = '_' || ch = '-' ->
      advance c;
      go ()
    | _ -> String.sub c.src start (c.pos - start)
  in
  go ()

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c.line "unterminated literal"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some 'u' | Some 'U' ->
         (* Keep \u escapes verbatim: terms round-trip without a full
            unicode decoder. *)
         Buffer.add_char buf '\\';
         Buffer.add_char buf (Option.get (peek c));
         advance c
       | _ -> error c.line "bad escape")
      ;
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ()

let parse_literal c =
  let lex = parse_string_body c in
  match peek c with
  | Some '@' ->
    advance c;
    let start = c.pos in
    let rec go () =
      match peek c with
      | Some ch
        when (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
             || (ch >= '0' && ch <= '9') || ch = '-' ->
        advance c;
        go ()
      | _ -> ()
    in
    go ();
    Term.lang_lit lex (String.sub c.src start (c.pos - start))
  | Some '^' ->
    advance c;
    expect c '^';
    let dt = parse_iri c in
    Term.typed_lit lex dt
  | _ -> Term.lit lex

let parse_term c =
  skip_ws c;
  match peek c with
  | Some '<' -> Term.Iri (parse_iri c)
  | Some '_' -> Term.Bnode (parse_bnode c)
  | Some '"' -> parse_literal c
  | Some ch -> error c.line (Printf.sprintf "unexpected %C" ch)
  | None -> error c.line "unexpected end of line"

(** Parse one N-Triples line; [None] for blank and comment lines. *)
let parse_line ?(line = 0) (text : string) : Triple.t option =
  let c = { src = text; pos = 0; line } in
  skip_ws c;
  match peek c with
  | None -> None
  | Some '#' -> None
  | _ ->
    let s = parse_term c in
    let p = parse_term c in
    let o = parse_term c in
    skip_ws c;
    expect c '.';
    skip_ws c;
    (match peek c with
     | None -> ()
     | Some '#' -> ()
     | Some _ -> error c.line "trailing characters after '.'");
    Some (Triple.make s p o)

(** Parse a whole document, calling [f] on each triple. *)
let parse_string f (doc : string) =
  let lines = String.split_on_char '\n' doc in
  List.iteri
    (fun i text ->
      match parse_line ~line:(i + 1) text with
      | Some t -> f t
      | None -> ())
    lines

let parse_file f path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line = ref 0 in
      try
        while true do
          incr line;
          let text = input_line ic in
          match parse_line ~line:!line text with
          | Some t -> f t
          | None -> ()
        done
      with End_of_file -> ())

let to_buffer buf triples =
  List.iter
    (fun t ->
      Buffer.add_string buf (Triple.to_string t);
      Buffer.add_char buf '\n')
    triples

let to_string triples =
  let buf = Buffer.create 1024 in
  to_buffer buf triples;
  Buffer.contents buf

let write_file path triples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun t ->
          output_string oc (Triple.to_string t);
          output_char oc '\n')
        triples)
