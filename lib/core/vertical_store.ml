(** The predicate-oriented (vertically partitioned) baseline
    (Section 2, third alternative; Abadi et al.): one binary
    [entry, val] relation per predicate, both columns indexed, and the
    Figure 2(d) translation where each triple pattern reads its
    predicate's table. New predicates require new relations — the schema
    dynamicity problem the paper calls out — which this implementation
    reproduces by creating tables on first sight of a predicate. *)

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  tables : (int, string) Hashtbl.t;  (** predicate id -> table name *)
  stats : Dataset_stats.t;
  dict_state : Dict_table.state;
  seen : (int * int * int, unit) Hashtbl.t;
  mutable table_count : int;
}

let create ?dict () =
  let db = Relsql.Database.create "vertical-store" in
  let dict = match dict with Some d -> d | None -> Rdf.Dictionary.create () in
  {
    db;
    dict;
    tables = Hashtbl.create 64;
    stats = Dataset_stats.create ();
    dict_state = Dict_table.create db;
    seen = Hashtbl.create 4096;
    table_count = 0;
  }

let table_for t pid =
  match Hashtbl.find_opt t.tables pid with
  | Some name -> name
  | None ->
    let name = Printf.sprintf "COL_%d" pid in
    let table =
      Relsql.Database.create_table t.db name (Relsql.Schema.make [ "entry"; "val" ])
    in
    Relsql.Table.create_index_on table "entry";
    Relsql.Table.create_index_on table "val";
    Hashtbl.add t.tables pid name;
    t.table_count <- t.table_count + 1;
    name

let insert t (tr : Rdf.Triple.t) =
  let s = Rdf.Dictionary.id_of t.dict tr.s in
  let p = Rdf.Dictionary.id_of t.dict tr.p in
  let o = Rdf.Dictionary.id_of t.dict tr.o in
  if not (Hashtbl.mem t.seen (s, p, o)) then begin
    Hashtbl.add t.seen (s, p, o) ();
    let name = table_for t p in
    ignore
      (Relsql.Table.insert
         (Relsql.Database.find_exn t.db name)
         [| Relsql.Value.Int s; Relsql.Value.Int o |]);
    Dataset_stats.record t.stats ~s ~p ~o
  end

let load t triples =
  List.iter (insert t) triples;
  Dict_table.sync t.dict_state t.dict;
  if !Relsql.Database.default_compress then Relsql.Database.freeze_all t.db

(** Delete one triple (no-op when absent). *)
let delete t (tr : Rdf.Triple.t) =
  match
    ( Rdf.Dictionary.find t.dict tr.s,
      Rdf.Dictionary.find t.dict tr.p,
      Rdf.Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o when Hashtbl.mem t.seen (s, p, o) ->
    Hashtbl.remove t.seen (s, p, o);
    (match Hashtbl.find_opt t.tables p with
     | None -> ()
     | Some name ->
       let table = Relsql.Database.find_exn t.db name in
       (match
          Array.find_opt
            (fun rid -> Relsql.Table.cell table rid 1 = Relsql.Value.Int o)
            (Relsql.Table.lookup table 0 (Relsql.Value.Int s))
        with
        | Some rid -> Relsql.Table.delete_row table rid
        | None -> ()));
    Dataset_stats.unrecord t.stats ~s ~p ~o
  | _ -> ()

(** Number of predicate relations — the schema-explosion metric. *)
let relation_count t = t.table_count

(* Keep the DICT table and (under [--compress]) the packed encoding in
   step after an update statement, mirroring [load]'s epilogue. *)
let after_write t =
  Dict_table.sync t.dict_state t.dict;
  if !Relsql.Database.default_compress then Relsql.Database.freeze_all t.db

let translate t (q : Sparql.Ast.query) : Relsql.Sql_ast.stmt =
  let pt = Sparql.Pattern_tree.of_query q in
  let etree = Bottom_up.exec_tree pt t.stats t.dict in
  let plan = Merge.of_exec (Bottom_up.no_merge_ctx pt) etree in
  Sqlgen.generate_with (Sqlgen.B_vertical { tables = t.tables }) t.dict pt plan q

let query ?timeout t (q : Sparql.Ast.query) : Sparql.Ref_eval.results =
  let stmt = translate t q in
  let r = Relsql.Executor.run ?timeout t.db stmt in
  Results.decode t.dict q r

let query_analyzed ?timeout t (q : Sparql.Ast.query) :
  Sparql.Ref_eval.results * Relsql.Opstats.t =
  let stmt = translate t q in
  let r, stats = Relsql.Executor.run_analyzed ?timeout t.db stmt in
  (Results.decode t.dict q r, stats)

let explain t q =
  let stmt = translate t q in
  Relsql.Sql_pp.to_pretty_string stmt
  ^ "\n"
  ^ Relsql.Executor.explain t.db stmt

let to_store ?(name = "VertStore") t : Store.t =
  {
    Store.name;
    load = (fun triples -> load t triples);
    delete = (fun triples -> List.iter (delete t) triples);
    query = (fun ?timeout q -> query ?timeout t q);
    analyze =
      (fun ?timeout q ->
        let r, stats = query_analyzed ?timeout t q in
        (r, Some stats));
    explain = (fun q -> explain t q);
    update =
      Store.update_via
        ~query:(fun ?timeout q -> query ?timeout t q)
        ~insert:(fun ts ->
          List.iter (insert t) ts;
          after_write t)
        ~delete:(fun ts ->
          List.iter (delete t) ts;
          after_write t);
  }
