(** Hand-written lexer for the SQL dialect of {!Sql_ast}. Keywords are
    case-insensitive; identifiers keep their case. *)

type token =
  | IDENT of string
  | KW of string (* uppercased keyword *)
  | INT of int
  | REALLIT of float
  | STRING of string
  | LIDLIT of int
  | LPAREN | RPAREN | COMMA | DOT | STAR
  | EQ | NEQ | LT | LEQ | GT | GEQ
  | PLUS | MINUS | SLASH | CONCAT
  | EOF

exception Lex_error of string * int (* message, position *)

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AS"; "AND"; "OR"; "NOT"; "NULL";
    "IS"; "IN"; "LIKE"; "CASE"; "WHEN"; "THEN"; "ELSE"; "END"; "COALESCE";
    "JOIN"; "LEFT"; "OUTER"; "INNER"; "ON"; "UNION"; "ALL"; "WITH"; "ORDER";
    "BY"; "ASC"; "DESC"; "LIMIT"; "OFFSET"; "TRUE"; "FALSE"; "VALUES";
    "LATERAL"; "GROUP"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      let word = String.sub src !i (!j - !i) in
      (* lid:NNN literals *)
      if String.lowercase_ascii word = "lid" && !j < n && src.[!j] = ':' then begin
        let k = ref (!j + 1) in
        while !k < n && src.[!k] >= '0' && src.[!k] <= '9' do incr k done;
        if !k = !j + 1 then raise (Lex_error ("bad lid literal", pos));
        emit (LIDLIT (int_of_string (String.sub src (!j + 1) (!k - !j - 1)))) pos;
        i := !k
      end
      else begin
        if is_keyword word then emit (KW (String.uppercase_ascii word)) pos
        else emit (IDENT word) pos;
        i := !j
      end
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      let is_real = ref false in
      while
        !j < n
        && ((src.[!j] >= '0' && src.[!j] <= '9')
            || src.[!j] = '.'
            || src.[!j] = 'e' || src.[!j] = 'E'
            || ((src.[!j] = '+' || src.[!j] = '-')
                && !j > !i
                && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E')))
      do
        (* A '.' followed by a non-digit terminates the number (e.g.
           "1.x" never occurs; "T.col" is handled by ident path). *)
        if src.[!j] = '.' then
          if !j + 1 < n && src.[!j + 1] >= '0' && src.[!j + 1] <= '9' then
            is_real := true
          else raise (Lex_error ("bad number", pos));
        if src.[!j] = 'e' || src.[!j] = 'E' then is_real := true;
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      if !is_real then emit (REALLIT (float_of_string text)) pos
      else emit (INT (int_of_string text)) pos;
      i := !j
    end
    else begin
      match c with
      | '\'' ->
        let buf = Buffer.create 16 in
        let j = ref (!i + 1) in
        let closed = ref false in
        while not !closed do
          if !j >= n then raise (Lex_error ("unterminated string", pos));
          if src.[!j] = '\'' then
            if !j + 1 < n && src.[!j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              j := !j + 2
            end
            else begin
              closed := true;
              incr j
            end
          else begin
            Buffer.add_char buf src.[!j];
            incr j
          end
        done;
        emit (STRING (Buffer.contents buf)) pos;
        i := !j
      | '(' -> emit LPAREN pos; incr i
      | ')' -> emit RPAREN pos; incr i
      | ',' -> emit COMMA pos; incr i
      | '.' -> emit DOT pos; incr i
      | '*' -> emit STAR pos; incr i
      | '+' -> emit PLUS pos; incr i
      | '-' -> emit MINUS pos; incr i
      | '/' -> emit SLASH pos; incr i
      | '=' -> emit EQ pos; incr i
      | '<' ->
        if !i + 1 < n && src.[!i + 1] = '>' then begin emit NEQ pos; i := !i + 2 end
        else if !i + 1 < n && src.[!i + 1] = '=' then begin emit LEQ pos; i := !i + 2 end
        else begin emit LT pos; incr i end
      | '>' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin emit GEQ pos; i := !i + 2 end
        else begin emit GT pos; incr i end
      | '|' ->
        if !i + 1 < n && src.[!i + 1] = '|' then begin emit CONCAT pos; i := !i + 2 end
        else raise (Lex_error ("unexpected '|'", pos))
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
    end
  done;
  List.rev ((EOF, n) :: !toks)

let token_to_string = function
  | IDENT s -> s
  | KW s -> s
  | INT i -> string_of_int i
  | REALLIT r -> string_of_float r
  | STRING s -> "'" ^ s ^ "'"
  | LIDLIT i -> Printf.sprintf "lid:%d" i
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "." | STAR -> "*"
  | EQ -> "=" | NEQ -> "<>" | LT -> "<" | LEQ -> "<=" | GT -> ">" | GEQ -> ">="
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/" | CONCAT -> "||"
  | EOF -> "<eof>"
