lib/relsql/planner.ml: Buffer Database List Printf Schema Sql_ast Sql_pp String Table Value
