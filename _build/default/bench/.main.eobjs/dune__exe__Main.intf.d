bench/main.mli:
