(** E1 — the Section 2.1 schema micro-benchmark: Tables 1/2 and
    Figure 3. Ten star queries over the predicate-set mix, evaluated on
    the entity-oriented (DB2RDF), triple-store and predicate-oriented
    layouts. The paper's shape: DB2RDF stable and fastest on mixed and
    unselective stars (Q1–Q6); the predicate-oriented store wins only
    when every star member is individually selective (Q7–Q10 tail);
    the triple store pays a self-join per conjunct.

    With [--json-dir] the experiment also writes BENCH_micro.json:
    per-query wall times, the EXPLAIN ANALYZE operator tree of each
    completed query, and (at the reference scale) the speedup against
    the recorded list-executor baseline. *)

(** Reference times (ms) of the pre-batch, list-based executor at
    scale 30000 / runs 3, recorded before the executor rewrite so the
    JSON report always carries a before/after comparison. Q1–Q6 are the
    join-heavy stars; Q7–Q10 are the selective tail. *)
let seed_baseline_ms =
  [ ("Entity-oriented",
     [ ("Q1", 1.0); ("Q2", 1.0); ("Q3", 2.0); ("Q4", 1.6); ("Q5", 2.0);
       ("Q6", 2.3); ("Q7", 0.4); ("Q8", 0.5); ("Q9", 0.6); ("Q10", 0.7) ]);
    ("TripleStore",
     [ ("Q1", 9.1); ("Q2", 28.1); ("Q3", 30.8); ("Q4", 43.1); ("Q5", 23.4);
       ("Q6", 7.9); ("Q7", 0.7); ("Q8", 0.7); ("Q9", 0.8); ("Q10", 0.9) ]);
    ("VertStore",
     [ ("Q1", 2.4); ("Q2", 27.3); ("Q3", 24.0); ("Q4", 13.9); ("Q5", 7.1);
       ("Q6", 4.6); ("Q7", 0.0); ("Q8", 0.0); ("Q9", 0.1); ("Q10", 0.1) ]) ]

let baseline_scale = 30_000
let join_heavy = [ "Q1"; "Q2"; "Q3"; "Q4"; "Q5"; "Q6" ]

(** Geometric-mean speedup of the measured times against the recorded
    baseline over the join-heavy queries (baseline cells under 0.5 ms
    are below timer resolution and skipped). *)
let joinheavy_speedup (measured : (string * Harness.measurement list) list) =
  let log_sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (sys_name, ms) ->
      match List.assoc_opt sys_name seed_baseline_ms with
      | None -> ()
      | Some base ->
        List.iter
          (fun (m : Harness.measurement) ->
            if List.mem m.Harness.m_query join_heavy then
              match
                (List.assoc_opt m.Harness.m_query base, m.Harness.m_outcome)
              with
              | Some b_ms, `Complete _ when b_ms >= 0.5 ->
                let after_ms = max 0.01 (1000.0 *. m.Harness.m_seconds) in
                log_sum := !log_sum +. log (b_ms /. after_ms);
                incr n
              | _ -> ())
          ms)
    measured;
  if !n = 0 then None else Some (exp (!log_sum /. float_of_int !n))

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E1. Schema micro-benchmark (Tables 1-2, Figure 3) — %d triples"
       cfg.Harness.scale);
  let triples = Workloads.Micro.generate ~scale:cfg.Harness.scale in
  Printf.printf "generated %d triples\n%!" (List.length triples);
  let systems =
    [ Harness.build_db2rdf ~name:"Entity-oriented" triples;
      Harness.build_triple_store triples;
      Harness.build_vertical_store triples ]
  in
  List.iter
    (fun (s : Harness.system) ->
      Printf.printf "loaded %-16s in %6.2fs\n%!" s.Harness.sys_name
        s.Harness.load_seconds)
    systems;
  (* (query, per-system measurement+opstats) in workload order *)
  let results =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        ( qname,
          List.map
            (fun sys -> Harness.measure_analyzed cfg sys qname q)
            systems ))
      Workloads.Micro.queries
  in
  let rows =
    List.map
      (fun (qname, per_sys) ->
        let ms = List.map fst per_sys in
        let nres =
          match (List.hd ms).Harness.m_outcome with
          | `Complete n -> string_of_int n
          | _ -> "-"
        in
        qname :: nres :: List.map Harness.outcome_cell ms)
      results
  in
  Harness.print_table
    ([ "Query"; "Results" ]
     @ List.map (fun (s : Harness.system) -> s.Harness.sys_name ^ " (ms)") systems)
    rows;
  let by_system =
    List.mapi
      (fun i (sys : Harness.system) ->
        ( sys.Harness.sys_name,
          List.map (fun (_, per_sys) -> fst (List.nth per_sys i)) results ))
      systems
  in
  (match
     (if cfg.Harness.scale = baseline_scale then joinheavy_speedup by_system
      else None)
   with
   | Some s ->
     Printf.printf
       "\njoin-heavy (Q1-Q6) geomean speedup vs list-executor baseline: %.2fx\n%!" s
   | None -> ());
  if cfg.Harness.json_dir <> None then begin
    let query_json (qname, per_sys) =
      Harness.J_obj
        [ ("query", Harness.J_str qname);
          ( "systems",
            Harness.J_list
              (List.map
                 (fun ((m : Harness.measurement), stats) ->
                   match (Harness.measurement_json m, stats) with
                   | Harness.J_obj fields, Some tree ->
                     Harness.J_obj
                       (fields @ [ ("operators", Harness.opstats_json tree) ])
                   | j, _ -> j)
                 per_sys) ) ]
    in
    let baseline_json =
      Harness.J_obj
        (List.map
           (fun (sys, per_q) ->
             ( sys,
               Harness.J_obj
                 (List.map (fun (q, ms) -> (q, Harness.J_float ms)) per_q) ))
           seed_baseline_ms)
    in
    Harness.write_json cfg ~file:"BENCH_micro.json"
      (Harness.J_obj
         ([ ("experiment", Harness.J_str "micro");
            ("scale", Harness.J_int cfg.Harness.scale);
            ("runs", Harness.J_int cfg.Harness.runs);
            ("queries", Harness.J_list (List.map query_json results));
            ( "baseline",
              Harness.J_obj
                [ ( "note",
                    Harness.J_str
                      "pre-batch list-executor times (ms), scale 30000, runs 3" );
                  ("scale", Harness.J_int baseline_scale);
                  ("ms", baseline_json) ] ) ]
          @
          match
            (if cfg.Harness.scale = baseline_scale then
               joinheavy_speedup by_system
             else None)
          with
          | Some s ->
            [ ("joinheavy_geomean_speedup_vs_baseline", Harness.J_float s) ]
          | None -> []))
  end
