(** E15 — compressed columnar storage: the Micro and LUBM workloads
    measured twice on identical data, once over boxed row storage and
    once with every table frozen into bit-packed columns (zone maps +
    word-at-a-time equality scans + RLE postings).

    Every query is asserted row-for-row, order-included equal across
    the two physical layouts before anything is timed, and the shared
    scan cache is cleared before every timed run in both modes, so the
    numbers measure actual scan work rather than cache hits.

    With [--json-dir] the experiment writes BENCH_compress.json: per-
    query times and speedups, their geometric mean, the per-workload
    storage footprint (packed vs boxed bytes from the tables' own
    compression reports, plus end-to-end reachable words), and the
    zone-map skip counters observed at the top of each query plan. *)

let geomean = function
  | [] -> None
  | xs ->
    Some
      (exp
         (List.fold_left (fun a x -> a +. log x) 0.0 xs
          /. float_of_int (List.length xs)))

let batch_strings b =
  List.map
    (fun row ->
      String.concat "\t"
        (List.map Relsql.Value.to_string (Array.to_list row)))
    (Relsql.Batch.to_rows b)

(** Mean wall-clock over [cfg.runs] timed runs per layout, with the two
    layouts interleaved (boxed run, packed run, boxed run, ...), the
    scan cache cleared before every run, and the heap compacted before
    every timed run. Repeated CTE materializations leave enough floating
    garbage that major-GC slices otherwise grow monotonically over the
    process lifetime; timing all boxed runs first and all packed runs
    second would hand the packed configuration the longer slices, an
    effect larger than the difference being measured. Interleaving
    cancels what compaction doesn't. *)
let time_pair (cfg : Harness.config) bdb bstmt pdb pstmt =
  let once db stmt =
    Relsql.Scan_cache.clear (Relsql.Database.scan_cache db);
    let b, dt = Harness.timed (fun () -> Relsql.Executor.run db stmt) in
    (Relsql.Batch.length b, dt)
  in
  let rows, _ = once bdb bstmt in
  ignore (once pdb pstmt);
  let tb = ref 0.0 and tp = ref 0.0 in
  for _ = 1 to cfg.Harness.runs do
    Gc.compact ();
    tb := !tb +. snd (once bdb bstmt);
    Gc.compact ();
    tp := !tp +. snd (once pdb pstmt)
  done;
  let mean t = t /. float_of_int (max 1 cfg.Harness.runs) in
  (rows, mean !tb, mean !tp)

type workload_result = {
  w_name : string;
  w_triples : int;
  w_rows : (string * int) list;
  w_boxed_ms : (string * float) list;
  w_packed_ms : (string * float) list;
  w_speedups : (string * float) list;
  w_skip : (string * (int * int)) list;  (** blocks skipped, rows unpacked *)
  w_boxed_bytes : int;
  w_packed_bytes : int;
  w_boxed_reachable : int;
  w_packed_reachable : int;
  w_load_boxed_s : float;
  w_load_packed_s : float;
}

let run_workload (cfg : Harness.config) name triples queries : workload_result
    =
  let layout = Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24 in
  let build compress =
    Harness.timed (fun () ->
        let e, _, _ =
          Db2rdf.Engine.create_colored ~layout
            ~options:{ Db2rdf.Engine.default_options with compress }
            triples
        in
        e)
  in
  let boxed, load_boxed_s = build false in
  let packed, load_packed_s = build true in
  let bdb = Db2rdf.Loader.database (Db2rdf.Engine.loader boxed) in
  let pdb = Db2rdf.Loader.database (Db2rdf.Engine.loader packed) in
  (* Both engines loaded the same triples in the same order, so their
     dictionaries and row ids coincide and SQL output is comparable
     verbatim. Equality gate before timing. *)
  let stmts =
    List.map
      (fun (qname, src) ->
        let q = Sparql.Parser.parse src in
        ( qname,
          Db2rdf.Engine.translate boxed q,
          Db2rdf.Engine.translate packed q ))
      queries
  in
  List.iter
    (fun (qname, bstmt, pstmt) ->
      let want = batch_strings (Relsql.Executor.run bdb bstmt) in
      let got = batch_strings (Relsql.Executor.run pdb pstmt) in
      if want <> got then
        failwith
          (Printf.sprintf
             "E15 equality violation: %s/%s diverges between boxed and \
              compressed storage"
             name qname))
    stmts;
  Printf.printf "%s: every query matches across the two layouts\n%!" name;
  let boxed_ms = ref [] and packed_ms = ref [] and rows = ref [] in
  let skip = ref [] in
  List.iter
    (fun (qname, bstmt, pstmt) ->
      let n, bs, ps = time_pair cfg bdb bstmt pdb pstmt in
      rows := (qname, n) :: !rows;
      boxed_ms := (qname, 1000.0 *. bs) :: !boxed_ms;
      packed_ms := (qname, 1000.0 *. ps) :: !packed_ms;
      Relsql.Scan_cache.clear (Relsql.Database.scan_cache pdb);
      let _, stats = Relsql.Executor.run_analyzed pdb pstmt in
      let sk, un =
        Relsql.Opstats.fold
          (fun (sk, un) nd ->
            ( sk + nd.Relsql.Opstats.blocks_skipped,
              un + nd.Relsql.Opstats.rows_unpacked ))
          (0, 0) stats
      in
      skip := (qname, (sk, un)) :: !skip)
    stmts;
  let assoc_rev l = List.rev l in
  let boxed_ms = assoc_rev !boxed_ms and packed_ms = assoc_rev !packed_ms in
  let speedups =
    List.filter_map
      (fun (qname, b) ->
        match List.assoc_opt qname packed_ms with
        | Some p when p > 0.0 -> Some (qname, b /. p)
        | _ -> None)
      boxed_ms
  in
  let reports = Relsql.Database.compression_reports pdb in
  let packed_bytes =
    List.fold_left (fun a r -> a + r.Relsql.Table.r_packed_bytes) 0 reports
  in
  let boxed_bytes =
    List.fold_left (fun a r -> a + r.Relsql.Table.r_boxed_bytes) 0 reports
  in
  {
    w_name = name;
    w_triples = List.length triples;
    w_rows = assoc_rev !rows;
    w_boxed_ms = boxed_ms;
    w_packed_ms = packed_ms;
    w_speedups = speedups;
    w_skip = assoc_rev !skip;
    w_boxed_bytes = boxed_bytes;
    w_packed_bytes = packed_bytes;
    w_boxed_reachable = Obj.reachable_words (Obj.repr bdb);
    w_packed_reachable = Obj.reachable_words (Obj.repr pdb);
    w_load_boxed_s = load_boxed_s;
    w_load_packed_s = load_packed_s;
  }

let print_workload (w : workload_result) =
  Harness.subsection
    (Printf.sprintf "%s (%d triples; ms per query, scan cache cold)" w.w_name
       w.w_triples);
  Harness.print_table
    [ "Query"; "rows"; "boxed"; "packed"; "speedup"; "blocks skipped";
      "rows unpacked" ]
    (List.map
       (fun (qname, _) ->
         let f l = List.assoc qname l in
         let sk, un = f w.w_skip in
         [ qname;
           string_of_int (f w.w_rows);
           Printf.sprintf "%8.2f" (f w.w_boxed_ms);
           Printf.sprintf "%8.2f" (f w.w_packed_ms);
           (match List.assoc_opt qname w.w_speedups with
            | Some s -> Printf.sprintf "%.2fx" s
            | None -> "-");
           string_of_int sk;
           string_of_int un ])
       w.w_rows);
  Printf.printf
    "storage: %d boxed bytes -> %d packed bytes (%.2fx smaller); reachable \
     words %d -> %d (%.2fx); load %.2fs -> %.2fs\n%!"
    w.w_boxed_bytes w.w_packed_bytes
    (float_of_int w.w_boxed_bytes /. float_of_int (max 1 w.w_packed_bytes))
    w.w_boxed_reachable w.w_packed_reachable
    (float_of_int w.w_boxed_reachable
     /. float_of_int (max 1 w.w_packed_reachable))
    w.w_load_boxed_s w.w_load_packed_s

let workload_json (w : workload_result) : Harness.json =
  Harness.J_obj
    [ ("workload", Harness.J_str w.w_name);
      ("triples", Harness.J_int w.w_triples);
      ( "measurements",
        Harness.J_list
          (List.map
             (fun (qname, _) ->
               let sk, un = List.assoc qname w.w_skip in
               Harness.J_obj
                 [ ("query", Harness.J_str qname);
                   ("results", Harness.J_int (List.assoc qname w.w_rows));
                   ("boxed_ms", Harness.J_float (List.assoc qname w.w_boxed_ms));
                   ( "packed_ms",
                     Harness.J_float (List.assoc qname w.w_packed_ms) );
                   ("blocks_skipped", Harness.J_int sk);
                   ("rows_unpacked", Harness.J_int un) ])
             w.w_rows) );
      ( "speedup_vs_boxed",
        Harness.J_obj
          (List.map (fun (q, s) -> (q, Harness.J_float s)) w.w_speedups) );
      ( "geomean_speedup",
        match geomean (List.map snd w.w_speedups) with
        | Some g -> Harness.J_float g
        | None -> Harness.J_str "n/a" );
      ( "footprint",
        Harness.J_obj
          [ ("boxed_bytes", Harness.J_int w.w_boxed_bytes);
            ("packed_bytes", Harness.J_int w.w_packed_bytes);
            ( "bytes_ratio",
              Harness.J_float
                (float_of_int w.w_boxed_bytes
                 /. float_of_int (max 1 w.w_packed_bytes)) );
            ("boxed_reachable_words", Harness.J_int w.w_boxed_reachable);
            ("packed_reachable_words", Harness.J_int w.w_packed_reachable) ] );
      ("load_boxed_s", Harness.J_float w.w_load_boxed_s);
      ("load_packed_s", Harness.J_float w.w_load_packed_s) ]

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E15. Compressed columnar storage — %d triples"
       cfg.Harness.scale);
  let workloads =
    [ ( "micro",
        Workloads.Micro.generate ~scale:cfg.Harness.scale,
        Workloads.Micro.queries );
      ( "LUBM",
        Workloads.Lubm.generate ~scale:cfg.Harness.scale,
        Workloads.Lubm.queries ) ]
  in
  let results =
    List.map
      (fun (name, triples, queries) ->
        let w = run_workload cfg name triples queries in
        print_workload w;
        w)
      workloads
  in
  let all_speedups = List.concat_map (fun w -> List.map snd w.w_speedups) results in
  (match geomean all_speedups with
   | Some g ->
     Printf.printf "\ngeomean speedup (packed vs boxed, all queries): %.2fx\n%!"
       g
   | None -> Printf.printf "\ngeomean speedup: n/a\n%!");
  Harness.write_json cfg ~file:"BENCH_compress.json"
    (Harness.J_obj
       [ ("experiment", Harness.J_str "compressed-columnar-storage");
         ("scale", Harness.J_int cfg.Harness.scale);
         ("runs", Harness.J_int cfg.Harness.runs);
         ( "note",
           Harness.J_str
             "identical data measured over boxed rows and bit-packed \
              columns; every query asserted row-identical across the two \
              layouts before timing; scan cache cleared before every timed \
              run in both modes" );
         ("workloads", Harness.J_list (List.map workload_json results));
         ( "geomean_speedup",
           match geomean all_speedups with
           | Some g -> Harness.J_float g
           | None -> Harness.J_str "n/a" ) ])
