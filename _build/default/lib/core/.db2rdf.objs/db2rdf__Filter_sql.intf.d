lib/core/filter_sql.mli: Relsql Sparql
