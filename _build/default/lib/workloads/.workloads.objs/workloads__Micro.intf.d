lib/workloads/micro.mli: Rdf
