lib/core/results.mli: Rdf Relsql Sparql
