test/test_optimizer.ml: Alcotest Array Cost Dataflow Dataset_stats Db2rdf Engine Exec_tree Helpers Int Layout List Loader Merge Option Pred_map Rdf Sparql
