(** Unit and property tests for the RDF substrate. *)

let iri = Rdf.Term.iri
let lit = Rdf.Term.lit

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let test_term_printing () =
  Alcotest.(check string) "iri" "<http://x.org/a>" (Rdf.Term.to_string (iri "http://x.org/a"));
  Alcotest.(check string) "plain literal" "\"hi\"" (Rdf.Term.to_string (lit "hi"));
  Alcotest.(check string) "lang literal" "\"hi\"@en"
    (Rdf.Term.to_string (Rdf.Term.lang_lit "hi" "en"));
  Alcotest.(check string) "typed literal"
    "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (Rdf.Term.to_string (Rdf.Term.int_lit 5));
  Alcotest.(check string) "bnode" "_:b0" (Rdf.Term.to_string (Rdf.Term.bnode "b0"));
  Alcotest.(check string) "escapes" "\"a\\\"b\\nc\"" (Rdf.Term.to_string (lit "a\"b\nc"))

let test_term_numeric () =
  Alcotest.(check (option (float 0.001))) "int lit" (Some 5.0)
    (Rdf.Term.as_number (Rdf.Term.int_lit 5));
  Alcotest.(check (option (float 0.001))) "plain numeric" (Some 2.5)
    (Rdf.Term.as_number (lit "2.5"));
  Alcotest.(check (option (float 0.001))) "non numeric" None
    (Rdf.Term.as_number (lit "five"))

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let test_dictionary () =
  let d = Rdf.Dictionary.create () in
  let a = Rdf.Dictionary.id_of d (iri "a") in
  let b = Rdf.Dictionary.id_of d (iri "b") in
  Alcotest.(check bool) "distinct ids" true (a <> b);
  Alcotest.(check int) "idempotent" a (Rdf.Dictionary.id_of d (iri "a"));
  Alcotest.(check int) "size" 2 (Rdf.Dictionary.size d);
  Alcotest.(check bool) "roundtrip" true
    (Rdf.Term.equal (Rdf.Dictionary.term_of d a) (iri "a"));
  Alcotest.(check (option int)) "find without intern" None
    (Rdf.Dictionary.find d (iri "zzz"))

let dictionary_growth =
  QCheck.Test.make ~name:"dictionary roundtrips many terms" ~count:50
    QCheck.(make Gen.(list_size (int_range 0 2000) (int_range 0 5000)))
    (fun labels ->
      let d = Rdf.Dictionary.create () in
      let ids = List.map (fun i -> Rdf.Dictionary.id_of d (iri (string_of_int i))) labels in
      List.for_all2
        (fun id label ->
          Rdf.Term.equal (Rdf.Dictionary.term_of d id) (iri (string_of_int label)))
        ids labels)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_basics () =
  let g = Rdf.Graph.create () in
  let t1 = Rdf.Triple.spo "a" "p" (iri "b") in
  Rdf.Graph.add g t1;
  Rdf.Graph.add g t1;
  Alcotest.(check int) "set semantics" 1 (Rdf.Graph.size g);
  Alcotest.(check bool) "mem" true (Rdf.Graph.mem g t1);
  Rdf.Graph.add g (Rdf.Triple.spo "a" "q" (lit "x"));
  Rdf.Graph.add g (Rdf.Triple.spo "c" "p" (iri "b"));
  Alcotest.(check int) "by subject" 2
    (List.length (Rdf.Graph.find g ~s:(iri "a") ()));
  Alcotest.(check int) "by object" 2
    (List.length (Rdf.Graph.find g ~o:(iri "b") ()));
  Alcotest.(check int) "by predicate" 2
    (List.length (Rdf.Graph.find g ~p:(iri "p") ()));
  Alcotest.(check int) "unknown term" 0
    (List.length (Rdf.Graph.find g ~s:(iri "nope") ()));
  Alcotest.(check int) "full scan" 3 (List.length (Rdf.Graph.find g ()))

let graph_find_consistency =
  QCheck.Test.make ~name:"graph: every added triple is findable by all indexes"
    ~count:50
    QCheck.(
      make
        Gen.(
          list_size (int_range 1 200)
            (triple (int_range 0 20) (int_range 0 5) (int_range 0 20))))
    (fun specs ->
      let g = Rdf.Graph.create () in
      let term pfx i = iri (Printf.sprintf "%s%d" pfx i) in
      List.iter
        (fun (s, p, o) ->
          Rdf.Graph.add g (Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o)))
        specs;
      List.for_all
        (fun (s, p, o) ->
          let tr = Rdf.Triple.make (term "s" s) (term "p" p) (term "o" o) in
          Rdf.Graph.mem g tr
          && List.exists (Rdf.Triple.equal tr) (Rdf.Graph.find g ~s:(term "s" s) ())
          && List.exists (Rdf.Triple.equal tr) (Rdf.Graph.find g ~o:(term "o" o) ())
          && List.exists (Rdf.Triple.equal tr) (Rdf.Graph.find g ~p:(term "p" p) ()))
        specs)

(* ------------------------------------------------------------------ *)
(* N-Triples                                                           *)
(* ------------------------------------------------------------------ *)

let test_ntriples_parse () =
  let doc =
    {|# comment line
<http://x.org/a> <http://x.org/p> <http://x.org/b> .
<http://x.org/a> <http://x.org/q> "plain lit" .
<http://x.org/a> <http://x.org/q> "typed"^^<http://www.w3.org/2001/XMLSchema#string> .
<http://x.org/a> <http://x.org/q> "tagged"@en-US .
_:b1 <http://x.org/p> _:b2 .

<http://x.org/a> <http://x.org/r> "esc\"aped\n" .|}
  in
  let acc = ref [] in
  Rdf.Ntriples.parse_string (fun t -> acc := t :: !acc) doc;
  Alcotest.(check int) "6 triples" 6 (List.length !acc)

let test_ntriples_errors () =
  Alcotest.check_raises "missing dot"
    (Rdf.Ntriples.Syntax_error { line = 1; message = "expected '.'" })
    (fun () -> ignore (Rdf.Ntriples.parse_line ~line:1 "<a> <b> <c>"))

let gen_term : Rdf.Term.t QCheck.Gen.t =
  let open QCheck.Gen in
  let name = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let text =
    string_size
      ~gen:(oneof [ char_range 'a' 'z'; oneofl [ ' '; '"'; '\\'; '\n'; '\t' ] ])
      (int_range 0 10)
  in
  oneof
    [ map (fun n -> Rdf.Term.iri ("http://example.org/" ^ n)) name;
      map (fun t -> Rdf.Term.lit t) text;
      map2 (fun t l -> Rdf.Term.lang_lit t l) text name;
      map2 (fun t d -> Rdf.Term.typed_lit t ("http://example.org/dt/" ^ d)) text name;
      map (fun n -> Rdf.Term.bnode n) name ]

let ntriples_roundtrip =
  QCheck.Test.make ~name:"ntriples serialize/parse roundtrip" ~count:300
    (QCheck.make
       QCheck.Gen.(triple gen_term gen_term gen_term)
       ~print:(fun (s, p, o) -> Rdf.Triple.to_string (Rdf.Triple.make s p o)))
    (fun (s, p, o) ->
      let t = Rdf.Triple.make s p o in
      match Rdf.Ntriples.parse_line (Rdf.Triple.to_string t) with
      | Some t' -> Rdf.Triple.equal t t'
      | None -> false)

let test_ntriples_unicode_escapes () =
  let parse1 line =
    match Rdf.Ntriples.parse_line line with
    | Some t -> t
    | None -> Alcotest.fail ("no triple parsed from: " ^ line)
  in
  (* \u escape and the raw character denote the same literal. *)
  Alcotest.(check bool) "\\u0041 = A" true
    (Rdf.Triple.equal
       (parse1 "<s> <p> \"\\u0041\" .")
       (parse1 "<s> <p> \"A\" ."));
  Alcotest.(check bool) "\\u00E9 = raw é" true
    (Rdf.Triple.equal
       (parse1 "<s> <p> \"caf\\u00E9\" .")
       (parse1 "<s> <p> \"caf\xc3\xa9\" ."));
  Alcotest.(check bool) "\\U0001F600 = raw emoji" true
    (Rdf.Triple.equal
       (parse1 "<s> <p> \"\\U0001F600\" .")
       (parse1 "<s> <p> \"\xf0\x9f\x98\x80\" ."));
  (* Serialization is pure ASCII and round-trips to an equal term. *)
  let check_roundtrip name lex =
    let t = Rdf.Triple.spo "s" "p" (Rdf.Term.lit lex) in
    let line = Rdf.Ntriples.triple_to_string t in
    String.iter
      (fun c ->
        Alcotest.(check bool) (name ^ ": serialized ASCII") true (Char.code c < 128))
      line;
    Alcotest.(check bool) (name ^ ": roundtrip") true
      (Rdf.Triple.equal t (parse1 line))
  in
  check_roundtrip "latin1" "caf\xc3\xa9";
  check_roundtrip "cjk" "\xe6\x97\xa5\xe6\x9c\xac";
  check_roundtrip "emoji" "ok \xf0\x9f\x98\x80!";
  check_roundtrip "control" "bell\x07tab\tend";
  (* Escaped and raw spellings serialize identically. *)
  Alcotest.(check string) "canonical serialization"
    (Rdf.Ntriples.triple_to_string (parse1 "<s> <p> \"caf\\u00E9\" ."))
    (Rdf.Ntriples.triple_to_string (parse1 "<s> <p> \"caf\xc3\xa9\" ."));
  (* Bad escapes are syntax errors, not silently kept. *)
  (match Rdf.Ntriples.parse_line "<s> <p> \"\\uZZZZ\" ." with
   | exception Rdf.Ntriples.Syntax_error _ -> ()
   | _ -> Alcotest.fail "expected syntax error for \\uZZZZ")

let test_ntriples_file_io () =
  let triples = Helpers.fig1_triples () in
  let path = Filename.temp_file "db2rdf_test" ".nt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rdf.Ntriples.write_file path triples;
      let acc = ref [] in
      Rdf.Ntriples.parse_file (fun t -> acc := t :: !acc) path;
      Alcotest.(check int) "count" (List.length triples) (List.length !acc);
      List.iter
        (fun t ->
          Alcotest.(check bool) "present" true (List.exists (Rdf.Triple.equal t) !acc))
        triples)

let suite =
  [ Alcotest.test_case "term printing" `Quick test_term_printing;
    Alcotest.test_case "term numerics" `Quick test_term_numeric;
    Alcotest.test_case "dictionary" `Quick test_dictionary;
    QCheck_alcotest.to_alcotest dictionary_growth;
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    QCheck_alcotest.to_alcotest graph_find_consistency;
    Alcotest.test_case "ntriples parsing" `Quick test_ntriples_parse;
    Alcotest.test_case "ntriples errors" `Quick test_ntriples_errors;
    QCheck_alcotest.to_alcotest ntriples_roundtrip;
    Alcotest.test_case "ntriples unicode escapes" `Quick test_ntriples_unicode_escapes;
    Alcotest.test_case "ntriples file io" `Quick test_ntriples_file_io ]
