lib/workloads/prbench.ml: Dist List Printf Rdf String
