(** Seeded random SPARQL query generation over a {!Gen_graph.vocab}.

    The generator is deliberately adversarial: it aims at the corners
    where the relational translation and the bottom-up semantics are
    easiest to get wrong — nested OPTIONAL, UNION under OPTIONAL,
    FILTER over possibly-unbound variables (negation over UNKNOWN),
    comparisons mixing numeric / string / language-tagged literals,
    DISTINCT + ORDER BY + LIMIT/OFFSET stacking, and aggregates over
    empty groups.

    Queries are produced as {!Sparql.Ast} values; the runner
    pretty-prints and re-parses them so every case is tested in exactly
    the surface form its reproducer file will carry. *)

open Sparql.Ast

let var_pool = [ "x"; "y"; "z"; "w" ]

let pick = Gen_graph.pick
let range = Gen_graph.range

let pick_var st vars = if vars = [] then pick st var_pool else pick st vars

(* ------------------------------------------------------------------ *)
(* Triple patterns                                                     *)
(* ------------------------------------------------------------------ *)

let gen_subject_pat st (v : Gen_graph.vocab) =
  match Random.State.int st 10 with
  | 0 | 1 | 2 -> Term (Rdf.Term.iri (pick st v.Gen_graph.subjects))
  | _ -> Var (pick st var_pool)

let gen_pred_pat st (v : Gen_graph.vocab) =
  if Random.State.int st 8 = 0 then Var (pick st var_pool)
  else Term (Rdf.Term.iri (pick st v.Gen_graph.preds))

let gen_object_pat st (v : Gen_graph.vocab) =
  match Random.State.int st 10 with
  | 0 | 1 -> Term (Rdf.Term.iri (pick st v.Gen_graph.subjects))
  | 2 | 3 | 4 -> Term (pick st v.Gen_graph.literals)
  | _ -> Var (pick st var_pool)

let gen_triple_pat st v =
  { tp_s = gen_subject_pat st v;
    tp_p = gen_pred_pat st v;
    tp_o = gen_object_pat st v }

let gen_bgp st v = Bgp (List.init (range st 1 3) (fun _ -> gen_triple_pat st v))

(* ------------------------------------------------------------------ *)
(* Filter expressions                                                  *)
(* ------------------------------------------------------------------ *)

let cmp_ops = [ Ceq; Cneq; Clt; Cleq; Cgt; Cgeq ]

let gen_const st (v : Gen_graph.vocab) =
  if Random.State.int st 4 = 0 then Rdf.Term.iri (pick st v.Gen_graph.subjects)
  else pick st v.Gen_graph.literals

(* [vars] are the variables in scope (syntactically present in the
   pattern the filter attaches to); unbound references are generated on
   purpose — errors-as-false under negation is a prime divergence
   corner. *)
let rec gen_expr st v vars depth : expr =
  match if depth <= 0 then Random.State.int st 6 else Random.State.int st 9 with
  | 0 | 1 ->
    E_cmp (pick st cmp_ops, E_var (pick_var st vars), E_const (gen_const st v))
  | 2 ->
    E_cmp (pick st cmp_ops, E_var (pick_var st vars), E_var (pick_var st vars))
  | 3 -> E_bound (pick_var st vars)
  | 4 -> E_not (E_bound (pick_var st vars))
  | 5 ->
    E_regex (E_var (pick_var st vars), pick st [ "a"; "b"; "caf"; "s1" ])
  | 6 -> E_not (gen_expr st v vars (depth - 1))
  | 7 ->
    let a = gen_expr st v vars (depth - 1) and b = gen_expr st v vars (depth - 1) in
    if Random.State.bool st then E_and (a, b) else E_or (a, b)
  | _ ->
    E_cmp
      ( pick st cmp_ops,
        E_arith
          ( pick st [ Aadd; Asub; Amul ],
            E_var (pick_var st vars),
            E_const (Rdf.Term.int_lit (range st 0 3)) ),
        E_const (Rdf.Term.int_lit (range st 0 20)) )

let gen_filter st v (scope : pattern list) : pattern =
  let vars =
    List.sort_uniq String.compare
      (List.concat_map pattern_vars scope)
  in
  Filter (gen_expr st v vars 1)

(* ------------------------------------------------------------------ *)
(* Graph patterns                                                      *)
(* ------------------------------------------------------------------ *)

let rec gen_pattern st v depth : pattern =
  if depth <= 0 then gen_bgp st v
  else
    match Random.State.int st 14 with
    | 0 | 1 -> gen_bgp st v
    | 2 -> Group [ gen_pattern st v (depth - 1); gen_pattern st v (depth - 1) ]
    | 3 | 4 ->
      let n = if Random.State.int st 8 = 0 then 3 else 2 in
      Union (List.init n (fun _ -> gen_pattern st v (depth - 1)))
    | 5 | 6 ->
      Group [ gen_bgp st v; Optional (gen_pattern st v (depth - 1)) ]
    | 7 ->
      (* nested OPTIONAL *)
      Group
        [ gen_bgp st v;
          Optional (Group [ gen_bgp st v; Optional (gen_bgp st v) ]) ]
    | 8 ->
      (* UNION under OPTIONAL *)
      Group
        [ gen_bgp st v;
          Optional (Union [ gen_bgp st v; gen_bgp st v ]) ]
    | 9 ->
      let sub = gen_pattern st v (depth - 1) in
      Group [ sub; gen_filter st v [ sub ] ]
    | 10 ->
      (* Star: one hub subject variable and ≥3 constant predicates —
         the shape the flat worst-case-optimal join form targets. *)
      let hub = pick st var_pool in
      Bgp
        (List.init (range st 3 4) (fun i ->
             { tp_s = Var hub;
               tp_p = Term (Rdf.Term.iri (pick st v.Gen_graph.preds));
               tp_o =
                 (match Random.State.int st 5 with
                  | 0 -> Term (pick st v.Gen_graph.literals)
                  | 1 -> Term (Rdf.Term.iri (pick st v.Gen_graph.subjects))
                  | _ -> Var (Printf.sprintf "o%d" i)) }))
    | 11 ->
      (* Cycle: x→y→z→x with constant predicates — the cyclic shape
         where a binary join tree is provably suboptimal. *)
      let tri a b =
        { tp_s = Var a;
          tp_p = Term (Rdf.Term.iri (pick st v.Gen_graph.preds));
          tp_o = Var b }
      in
      Bgp [ tri "x" "y"; tri "y" "z"; tri "z" "x" ]
    | _ ->
      (* FILTER over a pattern with an OPTIONAL part: the filter sees
         possibly-unbound variables. *)
      let required = gen_bgp st v in
      let opt = gen_pattern st v (depth - 1) in
      Group [ required; Optional opt; gen_filter st v [ required; opt ] ]

(* ------------------------------------------------------------------ *)
(* Whole queries                                                       *)
(* ------------------------------------------------------------------ *)

let dedup xs = List.sort_uniq String.compare xs

(** Generate a query over [vocab]. Deterministic in [st]. *)
let generate st (v : Gen_graph.vocab) : query =
  let depth = range st 1 2 in
  let where = gen_pattern st v depth in
  let pvars = dedup (pattern_vars where) in
  if Random.State.int st 7 = 0 && pvars <> [] then begin
    (* Aggregate query. Group keys project first; empty groups arise
       naturally when the pattern matches nothing. *)
    let group_by =
      if Random.State.bool st then [ pick st pvars ] else []
    in
    let n_aggs = range st 1 2 in
    let aggregates =
      List.init n_aggs (fun i ->
          let agg_fn =
            pick st [ Ag_count; Ag_count; Ag_sum; Ag_avg; Ag_min; Ag_max ]
          in
          let agg_arg =
            if agg_fn = Ag_count && Random.State.bool st then None
            else Some (pick st pvars)
          in
          { agg_fn;
            agg_arg;
            agg_distinct = Random.State.int st 5 = 0;
            agg_alias = Printf.sprintf "n%d" i })
    in
    select ~group_by ~aggregates
      ?limit:(if Random.State.int st 5 = 0 then Some (range st 0 5) else None)
      (Select_vars group_by) where
  end
  else begin
    let projection =
      if Random.State.int st 5 < 2 || pvars = [] then Select_star
      else begin
        let chosen = List.filter (fun _ -> Random.State.int st 3 > 0) pvars in
        if chosen = [] then Select_vars [ pick st pvars ]
        else Select_vars chosen
      end
    in
    let projected =
      match projection with Select_vars vs -> vs | Select_star -> pvars
    in
    let distinct = Random.State.int st 4 = 0 in
    let order_by =
      if Random.State.int st 10 < 3 && projected <> [] then
        List.init (range st 1 2) (fun _ ->
            { ord_expr = E_var (pick st projected);
              ord_asc = Random.State.bool st })
      else []
    in
    let limit =
      if Random.State.int st 5 = 0 then Some (range st 0 8) else None
    in
    let offset =
      if Random.State.int st 7 = 0 then Some (range st 1 4) else None
    in
    select ~distinct ~order_by ?limit ?offset projection where
  end

(* ------------------------------------------------------------------ *)
(* Update scripts                                                      *)
(* ------------------------------------------------------------------ *)

(* Fresh local names outside the vocabulary: inserts of these force
   dictionary growth, and a fresh predicate needs a new storage slot in
   DPH/RPH (a coloring conflict / spill on the narrow fuzz layouts). *)
let fresh_subjects = [ "t0"; "t1"; "t2" ]
let fresh_preds = [ "q0"; "q1"; "q2" ]

let gen_ground_triple ?(fresh = false) st (v : Gen_graph.vocab) : Rdf.Triple.t =
  let subjects =
    if fresh && Random.State.bool st then fresh_subjects
    else v.Gen_graph.subjects
  in
  let preds =
    if fresh && Random.State.bool st then fresh_preds else v.Gen_graph.preds
  in
  let obj =
    if Random.State.bool st then Rdf.Term.iri (pick st v.Gen_graph.subjects)
    else pick st v.Gen_graph.literals
  in
  Rdf.Triple.spo (pick st subjects) (pick st preds) obj

(** Generate one update statement. Deletions draw from [existing] (the
    initial dataset) so they actually hit rows — spilled and
    multi-valued slots included — while generated ones also exercise
    the delete-absent no-op path; inserts sometimes use fresh
    vocabulary to force dictionary growth and new predicate slots. *)
let gen_update st (v : Gen_graph.vocab) (existing : Rdf.Triple.t list) : update
    =
  match Random.State.int st 8 with
  | 0 | 1 ->
    Insert_data (List.init (range st 1 3) (fun _ -> gen_ground_triple st v))
  | 2 ->
    Insert_data
      (List.init (range st 1 2) (fun _ -> gen_ground_triple ~fresh:true st v))
  | 3 | 4 when existing <> [] ->
    Delete_data (List.init (range st 1 2) (fun _ -> pick st existing))
  | 3 | 4 -> Delete_data [ gen_ground_triple st v ]
  | 5 -> Delete_data [ gen_ground_triple st v ]
  | _ -> Delete_where (List.init (range st 1 2) (fun _ -> gen_triple_pat st v))

(** Generate an update script over [vocab]: 3–8 statements mixing
    INSERT DATA / DELETE DATA / DELETE WHERE with SELECT probes.
    Deterministic in [st]. *)
let generate_script st (v : Gen_graph.vocab)
    ~(existing : Rdf.Triple.t list) : statement list =
  List.init (range st 3 8) (fun _ ->
      if Random.State.int st 3 = 0 then S_query (generate st v)
      else S_update (gen_update st v existing))
