examples/quickstart.mli:
