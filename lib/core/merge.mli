(** Query plan construction with star merging (Section 3.2.1,
    Figure 11): triples sharing an entity and access method collapse
    into star nodes under the AND/OR/OPT mergeability rules
    (Definitions 3.9–3.11); spill-involved predicates veto merging (the
    paper's in-memory spill registry check), cascading their star into
    one access per triple. *)

type entity =
  | E_var of string
  | E_const of Rdf.Term.t

(** [All]: conjunctive star (plus optional extensions); [Any]:
    disjunctive star from an OR merge. *)
type semantics = All | Any

type star = {
  meth : Cost.access;
  entity : entity;
  sem : semantics;
  star_triples : int list;  (** mandatory members, in fuse order *)
  opt_triples : int list;  (** OPTIONAL members (OPTMergeable merges) *)
}

type t =
  | Node of star
  | P_and of t * t
  | P_or of t list
  | P_opt of t * t
  | P_unit  (** the unit (single empty) solution *)

(** Store facts the merger needs, provided by the engine. *)
type ctx = {
  pt : Sparql.Pattern_tree.t;
  pred_spills : Cost.access -> Sparql.Ast.triple_pat -> bool;
  pred_multivalued : Cost.access -> Sparql.Ast.triple_pat -> bool;
  var_count : string -> int;
      (** occurrences of a variable across the query's triples; vetoes
          OPT merges whose value variable participates in joins *)
  merging_enabled : bool;
}

(** The entity a triple is accessed by under a method: subject for
    [Acs]/[Sc] (scans read the direct side), object for [Aco]. *)
val entity_of : ctx -> int -> Cost.access -> entity option

val of_exec : ctx -> Exec_tree.t -> t
val to_string : t -> string
