test/test_workloads.ml: Alcotest Db2rdf Hashtbl Helpers List Option Printexc Printf Rdf Sparql Workloads
