(** A bounded LRU cache of materialized base-table scan results, keyed
    by (table name, table version, filter/column fingerprint).

    Because {!Table.version}, {!Table.enc_epoch} and
    {!Table.delta_epoch} are part of the key, entries are never served
    stale: any data change — a delta-only insert included — physical
    re-encoding or delta-into-main merge makes future scans compute a
    new key and the old entry ages out of the LRU. Small results are stored as frozen private
    batch copies; oversized ones are kept bit-packed when the packed
    image fits the budget. {!find} returns a fresh batch the caller
    owns either way. *)

type t

val create : ?capacity:int -> unit -> t

(** Boxed entries costlier than this many cells are stored bit-packed
    instead; entries whose packed image still exceeds it are dropped. *)
val max_cells : int

(** Cache key for a scan of [table] at [version] (physical encoding
    epoch [enc], delta epoch [delta]) with the given fused filter and
    column pruning (alias-independent — the executor re-qualifies the
    cached layout on hit). *)
val key :
  table:string -> version:int -> enc:int -> delta:int ->
  filter:Sql_ast.expr option -> cols:string list option -> string

(** A fresh, privately-owned copy of the cached result, or [None].
    Counts a hit or miss. *)
val find : t -> string -> Batch.t option

(** Freeze a private copy of the batch under the key (skipped above
    {!max_cells}); the caller keeps ownership of the batch. *)
val add : t -> string -> Batch.t -> unit

val clear : t -> unit
val stats : t -> Plan_cache.stats
val stats_to_string : t -> string
