lib/sparql/lexer.ml: Buffer List Printf String
