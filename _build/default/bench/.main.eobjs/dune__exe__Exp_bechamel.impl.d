bench/exp_bechamel.ml: Analyze Bechamel Benchmark Db2rdf Harness Hashtbl Instance List Measure Printf Rdf Sparql Staged Test Time Toolkit Workloads
