(** The store interface every system in the benchmark implements:
    DB2RDF, the triple-store and predicate-oriented baselines, and the
    native reference engine. Query answers use the reference evaluator's
    result type so cross-store comparison is direct. *)

type t = {
  name : string;
  load : Rdf.Triple.t list -> unit;
  delete : Rdf.Triple.t list -> unit;
  query : ?timeout:float -> Sparql.Ast.query -> Sparql.Ref_eval.results;
      (** May raise {!Relsql.Executor.Timeout} or
          {!Filter_sql.Unsupported}. *)
  analyze :
    ?timeout:float ->
    Sparql.Ast.query ->
    Sparql.Ref_eval.results * Relsql.Opstats.t option;
      (** Like [query], but also returns the per-operator execution
          metrics tree ([None] for stores that do not execute through
          the relational engine). *)
  explain : Sparql.Ast.query -> string;
}

(** Outcome classification, mirroring Figure 15's categories. [Error]
    means the store answered with the wrong number of results (detected
    against an oracle count by the harness); here it covers runtime
    failures. *)
type outcome =
  | Complete of Sparql.Ref_eval.results
  | Timed_out
  | Unsupported of string
  | Failed of string

(** Run a query, classifying the outcome and measuring wall-clock
    seconds. *)
let run ?timeout (store : t) (q : Sparql.Ast.query) : outcome * float =
  let t0 = Unix.gettimeofday () in
  let outcome =
    try Complete (store.query ?timeout q) with
    | Relsql.Executor.Timeout | Sparql.Ref_eval.Timeout -> Timed_out
    | Filter_sql.Unsupported msg -> Unsupported msg
    | Sparql.Parser.Parse_error msg -> Unsupported msg
    | Failure msg -> Failed msg
    | Invalid_argument msg -> Failed msg
  in
  (outcome, Unix.gettimeofday () -. t0)

let outcome_to_string = function
  | Complete r -> Printf.sprintf "complete (%d rows)" (List.length r.Sparql.Ref_eval.rows)
  | Timed_out -> "timeout"
  | Unsupported m -> "unsupported: " ^ m
  | Failed m -> "error: " ^ m
