(** Dataset statistics [S] (Section 3.1), the input to the cost function
    {!Cost.tmc}: total triple count, average triples per subject and per
    object, and per-constant frequencies. The paper keeps "top-k URIs or
    literals"; we keep exact counts up to a configurable number of
    distinct constants and fall back to the averages beyond it, which
    preserves the behaviour that matters (frequent constants get exact
    costs). Per-predicate counts are also kept — the baseline
    translators use them for selectivity ordering. *)

module IntTbl = Hashtbl.Make (struct
  type t = int
  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  mutable total_triples : int;
  subj_count : int IntTbl.t;  (** subject id -> #triples *)
  obj_count : int IntTbl.t;  (** object id -> #triples *)
  pred_count : int IntTbl.t;  (** predicate id -> #triples *)
  pred_subjects : int IntTbl.t;  (** predicate id -> distinct subjects *)
  pred_objects : int IntTbl.t;  (** predicate id -> distinct objects *)
  ps_seen : (int * int, unit) Hashtbl.t;
  po_seen : (int * int, unit) Hashtbl.t;
  top_k : int;
}

let create ?(top_k = 1_000_000) () =
  {
    total_triples = 0;
    subj_count = IntTbl.create 1024;
    obj_count = IntTbl.create 1024;
    pred_count = IntTbl.create 64;
    pred_subjects = IntTbl.create 64;
    pred_objects = IntTbl.create 64;
    ps_seen = Hashtbl.create 1024;
    po_seen = Hashtbl.create 1024;
    top_k;
  }

let bump tbl id =
  match IntTbl.find_opt tbl id with
  | Some n -> IntTbl.replace tbl id (n + 1)
  | None -> IntTbl.add tbl id 1

(** Record one triple (by dictionary ids). *)
let record t ~s ~p ~o =
  t.total_triples <- t.total_triples + 1;
  bump t.subj_count s;
  bump t.pred_count p;
  bump t.obj_count o;
  if not (Hashtbl.mem t.ps_seen (p, s)) then begin
    Hashtbl.add t.ps_seen (p, s) ();
    bump t.pred_subjects p
  end;
  if not (Hashtbl.mem t.po_seen (p, o)) then begin
    Hashtbl.add t.po_seen (p, o) ();
    bump t.pred_objects p
  end

(** Undo one {!record} (used by deletion). The distinct-entity sets
    behind the per-predicate fan-out averages are not shrunk — they
    remain safe over-approximations, which only perturbs cost estimates,
    never correctness. *)
let unrecord t ~s ~p ~o =
  let drop tbl id =
    match IntTbl.find_opt tbl id with
    | Some n when n > 1 -> IntTbl.replace tbl id (n - 1)
    | Some _ -> IntTbl.remove tbl id
    | None -> ()
  in
  if t.total_triples > 0 then t.total_triples <- t.total_triples - 1;
  drop t.subj_count s;
  drop t.pred_count p;
  drop t.obj_count o

let total t = t.total_triples
let distinct_subjects t = IntTbl.length t.subj_count
let distinct_objects t = IntTbl.length t.obj_count
let distinct_predicates t = IntTbl.length t.pred_count

let avg_triples_per_subject t =
  let n = distinct_subjects t in
  if n = 0 then 1.0 else float_of_int t.total_triples /. float_of_int n

let avg_triples_per_object t =
  let n = distinct_objects t in
  if n = 0 then 1.0 else float_of_int t.total_triples /. float_of_int n

(* The top-k limit models the paper's bounded statistics: constants
   beyond the k most frequent are estimated by the average. At bench
   scale we keep everything exact unless the caller lowers [top_k]. *)
let within_top_k t tbl id =
  if IntTbl.length tbl <= t.top_k then IntTbl.find_opt tbl id
  else
    match IntTbl.find_opt tbl id with
    | Some n when n > 1 -> Some n
    | _ -> None

(** Exact frequency of a constant as subject, when tracked. *)
let subject_frequency t id = within_top_k t t.subj_count id

(** Exact frequency of a constant as object, when tracked. *)
let object_frequency t id = within_top_k t t.obj_count id

(** Triples with the given predicate. *)
let predicate_frequency t id = IntTbl.find_opt t.pred_count id

(** Average triples per subject among subjects carrying predicate [id] —
    the expected fan-out of an access-by-subject on that predicate.
    Falls back to the global average for unseen predicates. *)
let avg_per_subject_of_pred t id =
  match IntTbl.find_opt t.pred_count id, IntTbl.find_opt t.pred_subjects id with
  | Some n, Some subjects when subjects > 0 ->
    float_of_int n /. float_of_int subjects
  | _ -> avg_triples_per_subject t

(** Average triples per object among objects of predicate [id]. *)
let avg_per_object_of_pred t id =
  match IntTbl.find_opt t.pred_count id, IntTbl.find_opt t.pred_objects id with
  | Some n, Some objects when objects > 0 ->
    float_of_int n /. float_of_int objects
  | _ -> avg_triples_per_object t
