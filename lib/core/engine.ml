(** The DB2RDF engine facade: create a store (optionally bulk-loading
    with graph coloring), load triples, and evaluate SPARQL through the
    full pipeline of the paper — parse tree → data flow → optimal flow
    tree → execution tree (late fusing) → merged query plan → SQL →
    relational execution. *)

type options = {
  optimize : bool;  (** hybrid optimizer on (Best flow) vs naive (Worst) *)
  merge : bool;  (** star merging in the translator *)
  late_fuse : bool;  (** late fusing in the query plan builder *)
  parallelism : int;
      (** domains the executor may spread hot operators over
          (1 = sequential) *)
  load_domains : int;
      (** domains for the bulk loader's morsel pipeline (1 = the
          untouched sequential path; the result is bit-identical) *)
  join_partitions : int;
      (** radix partitions for parallel hash-join builds
          (0 = auto: sized from the domain count at execution time) *)
  compress : bool;
      (** freeze tables into bit-packed columnar storage after bulk
          load (zone maps + word-at-a-time scans); purely physical,
          results are bit-identical *)
  merge_threshold : float;
      (** under [compress], re-pack a frozen table after a write
          statement only once its boxed delta side (rows + main
          tombstones) exceeds this fraction of the packed main (with a
          small absolute floor); writes between merges stay
          delta-resident. 0.0 merges after every write statement *)
  wcoj : bool;
      (** allow the worst-case-optimal (leapfrog) multiway join:
          eligible conjunctive queries translate to the flat join form
          and the planner picks between the binary join tree and the
          leapfrog operator from characteristic-set statistics; purely
          a plan-shape knob, results are bit-identical *)
  extvp : bool;
      (** allow ExtVP-style semi-join reductions: the SQL generator may
          substitute a lazily materialized DPH row-subset for a star's
          base scan when a join edge matches a (predicate pair,
          correlation) signature with low estimated selectivity; purely
          a plan-shape knob, results are bit-identical *)
  extvp_build : bool;
      (** eagerly materialize every advisable reduction at bulk-load
          time instead of on first planner request *)
  extvp_threshold : float;
      (** keep a reduction only when its measured selectivity (kept
          rows / source rows) is below this (S2RDF's ScaleUB) *)
  extvp_budget_mb : int;
      (** global byte budget for cached reductions; least recently used
          are evicted beyond it *)
}

let default_options =
  { optimize = true; merge = true; late_fuse = true; parallelism = 1;
    load_domains = 1; join_partitions = 0; compress = false;
    merge_threshold = 0.25; wcoj = false;
    extvp = false; extvp_build = false;
    extvp_threshold = Relsql.Extvp.default_threshold; extvp_budget_mb = 64 }

(* Plan-shape fingerprint of an options record: the statement cache key
   must include every knob that changes the translated statement or its
   physical plan, not just the SPARQL text — two engines sharing a cache
   but differing in (say) [wcoj] or [parallelism] must not serve each
   other's plans. *)
let options_fingerprint (o : options) =
  Printf.sprintf "O%b%b%b|p%d|l%d|j%d|c%b|mt%.4f|w%b|e%b|eb%b|et%.4f|em%d"
    o.optimize o.merge o.late_fuse o.parallelism o.load_domains
    o.join_partitions o.compress o.merge_threshold o.wcoj o.extvp
    o.extvp_build o.extvp_threshold o.extvp_budget_mb

type t = {
  loader : Loader.t;
  dict_state : Dict_table.state;
  options : options;
  cache :
    (Sparql.Ast.query * Relsql.Sql_ast.stmt * (int * int * int))
      Relsql.Plan_cache.t;
      (* statement cache keyed by SPARQL source text; each entry is
         stamped with the Database (data, enc, delta)-version triple at
         translation time, because translation consults Loader.stats —
         a stale plan could be wrong, not just slow. A mismatched stamp
         is treated as a miss, the same signal (Table.version /
         enc_epoch / delta_epoch) that retires scan-cache entries,
         instead of an ad-hoc clear on every write path.
         Entries are per-snapshot-valid rather than globally
         invalidated: a snapshot reader accepts an entry whose stamp
         equals its own capture stamp even after later commits. *)
  lock : Mutex.t;
      (* serializes writers and the snapshot/translate/decode critical
         sections against them; snapshot readers execute unlocked on
         their private table copies *)
}

(* Materialize one semi-join reduction: the subset of DPH rows whose
   entity can contribute to a join edge with the key's signature,
   under DPH's own schema so every star template runs against it
   unchanged. Membership comes from the statistics' (pred, id) seen
   sets, which deletes never shrink — the subset is always a safe
   superset of the contributing rows, and the surrounding pred/val
   conditions of the star template restore the exact multiset. All
   rows of a qualifying entity are kept (spill rows included), so
   spill chasing inside a star is unaffected. Deterministic at a
   fixed catalog stamp: rebuilding after an LRU eviction yields a
   bit-identical table. *)
let extvp_builder loader (key : Relsql.Extvp.key) =
  let db = Loader.database loader in
  let dph = Relsql.Database.find_exn db "DPH" in
  let schema = Relsql.Table.schema dph in
  let pos = Layout.positions schema (Loader.column_count loader Loader.Direct) in
  let stats = Loader.stats loader in
  let p1 = key.Relsql.Extvp.p1 and p2 = key.Relsql.Extvp.p2 in
  let entry_keep test row =
    match row.(pos.Layout.entry_pos) with
    | Relsql.Value.Int e ->
      Dataset_stats.subject_has_pred stats ~p:p1 ~s:e && test e
    | _ -> false
  in
  let keep =
    match key.Relsql.Extvp.corr with
    | Relsql.Extvp.SS ->
      entry_keep (fun e -> Dataset_stats.subject_has_pred stats ~p:p2 ~s:e)
    | Relsql.Extvp.SO ->
      entry_keep (fun e -> Dataset_stats.object_of_pred stats ~p:p2 ~o:e)
    | Relsql.Extvp.OS ->
      (* Row-level, not entity-level: the row must itself carry [p1]
         and its value must be a known subject of [p2]. A multi-valued
         cell ([Lid]) is kept outright — resolving the secondary list
         is not worth it for a pruning structure, and supersets are
         always safe. *)
      let cols = Loader.storage_columns loader Loader.Direct ~pred_id:p1 in
      fun row ->
        List.exists
          (fun c ->
            row.(pos.Layout.pred_pos.(c)) = Relsql.Value.Int p1
            && (match row.(pos.Layout.val_pos.(c)) with
                | Relsql.Value.Int v ->
                  Dataset_stats.subject_has_pred stats ~p:p2 ~s:v
                | Relsql.Value.Lid _ -> true
                | _ -> false))
          cols
  in
  let out = Relsql.Table.create (Relsql.Extvp.name_of_key key) schema in
  let total = ref 0 and kept = ref 0 in
  Relsql.Table.iter
    (fun _ row ->
      incr total;
      if keep row then begin
        incr kept;
        (* [insert] takes ownership of the array *)
        ignore (Relsql.Table.insert out (Array.copy row))
      end)
    dph;
  Relsql.Table.create_index_on out "entry";
  if Relsql.Table.frozen dph then Relsql.Table.freeze out;
  (out, !total, !kept)

(** Create an empty engine with hash-composition predicate mappings. *)
let create ?(layout = Layout.default) ?(options = default_options) ?direct_map
    ?reverse_map () =
  let loader = Loader.create ~layout ?direct_map ?reverse_map () in
  Relsql.Database.set_parallelism (Loader.database loader) options.parallelism;
  Relsql.Database.set_join_partitions (Loader.database loader)
    options.join_partitions;
  Relsql.Database.set_wcoj (Loader.database loader) options.wcoj;
  (* The relational planner cannot see RDF statistics; the engine
     bridges the layers by installing the CS-informed chooser as a
     closure over the loader's statistics. *)
  Relsql.Database.set_wcoj_selector (Loader.database loader)
    (Some (fun req -> Cost.wcoj_decision (Loader.stats loader) req));
  (* The reduction registry is installed unconditionally (the hooks are
     cheap closures); whether the planner may substitute reductions is
     the per-call [extvp] option, checked at translation time. The
     stamp pairs the data version with the encoding version so a
     freeze/thaw cycle also retires reductions, and with the delta
     version so delta-resident writes (which move no other stamp cost)
     do too — a packed store must serve packed reductions over current
     rows. *)
  let db = Loader.database loader in
  let reg = Relsql.Extvp.create () in
  Relsql.Extvp.set_hooks reg
    ~builder:(fun key -> extvp_builder loader key)
    ~stamp:(fun () ->
      (Relsql.Database.data_version db, Relsql.Database.enc_version db,
       Relsql.Database.delta_version db))
    ~estimator:(fun key -> Cost.extvp_selectivity (Loader.stats loader) key);
  (* A recycled reduction name restarts its table's version at 0, so a
     stale drop must clear the scan cache — same-name same-version
     entries of the previous generation would otherwise be served. *)
  Relsql.Extvp.set_on_invalidate reg (fun () ->
    Relsql.Scan_cache.clear (Relsql.Database.scan_cache db));
  Relsql.Extvp.set_threshold reg options.extvp_threshold;
  Relsql.Extvp.set_budget_bytes reg (options.extvp_budget_mb * 1024 * 1024);
  Relsql.Database.set_extvp db (Some reg);
  let dict_state = Dict_table.create db in
  { loader; dict_state; options; cache = Relsql.Plan_cache.create ();
    lock = Mutex.create () }

(** A view of the same store under different options: shares the loader
    (data, statistics, dictionary) and the statement cache — cache
    entries are keyed by the options fingerprint, so views never serve
    each other's plans. *)
let with_options t options = { t with options }

(** The store's semi-join reduction registry (always installed). *)
let extvp_registry t = Relsql.Database.extvp (Loader.database t.loader)

(* Views created by [with_options] share the registry; align its
   retention knobs with the effective options of this call before any
   resolve can fire a build. *)
let sync_extvp t (options : options) =
  match extvp_registry t with
  | None -> ()
  | Some reg ->
    Relsql.Extvp.set_threshold reg options.extvp_threshold;
    Relsql.Extvp.set_budget_bytes reg (options.extvp_budget_mb * 1024 * 1024)

(** Eagerly materialize every advisable reduction over the current
    predicates — the [extvp_build] batch mode; a no-op for pairs the
    estimator prices over the threshold. *)
let build_reductions t =
  match extvp_registry t with
  | None -> ()
  | Some reg ->
    sync_extvp t t.options;
    let preds = Dataset_stats.predicates (Loader.stats t.loader) in
    List.iter
      (fun p1 ->
        List.iter
          (fun p2 ->
            if p1 <> p2 then
              List.iter
                (fun corr ->
                  let key = { Relsql.Extvp.p1; p2; corr } in
                  if Relsql.Extvp.advisable reg key then
                    ignore
                      (Relsql.Extvp.resolve reg (Relsql.Extvp.name_of_key key)))
                [ Relsql.Extvp.SS; Relsql.Extvp.SO; Relsql.Extvp.OS ])
          preds)
      preds

(** Create an engine whose predicate mappings come from graph-coloring
    (a sample of) [triples], then bulk-load them (Section 2.2/2.3).
    [sample] < 1.0 colors only that fraction of the data first. *)
let create_colored ?(layout = Layout.default) ?(options = default_options)
    ?(sample = 1.0) (triples : Rdf.Triple.t list) =
  let sampled = Coloring.sample_triples ~fraction:sample triples in
  (* One scan of the sample builds both interference graphs. *)
  let dgraph, rgraph = Coloring.interference_graphs sampled in
  let dcol = Coloring.color ~max_colors:layout.Layout.dph_cols dgraph in
  let rcol = Coloring.color ~max_colors:layout.Layout.rph_cols rgraph in
  let direct_map = Coloring.to_pred_map ~m:layout.Layout.dph_cols dcol in
  let reverse_map = Coloring.to_pred_map ~m:layout.Layout.rph_cols rcol in
  let e = create ~layout ~options ~direct_map ~reverse_map () in
  Loader.load ~domains:options.load_domains e.loader triples;
  Dict_table.sync ~domains:options.load_domains e.dict_state
    (Loader.dictionary e.loader);
  (* Freeze after the DICT sync so the dictionary table compresses
     too; later writes thaw the touched tables transparently. *)
  if options.compress then
    Relsql.Database.freeze_all (Loader.database e.loader);
  (* After the freeze, so eager reductions inherit the packed form. *)
  if options.extvp && options.extvp_build then build_reductions e;
  (e, dcol, rcol)

let loader t = t.loader
let dictionary t = Loader.dictionary t.loader

(* Data changes need no explicit cache hooks: every write path bumps
   Table.version, which shifts Database.data_version, which retires
   cached statements (stamp mismatch on next lookup) and scan-cache
   entries (version is part of their key). A bulk load still clears
   both outright — after a load the dataset shape has typically
   changed wholesale, so keeping capacity's worth of dead entries
   around until the LRU cycles them out is pure memory waste. *)
let load ?parse_s t triples =
  Relsql.Plan_cache.clear t.cache;
  Relsql.Scan_cache.clear (Relsql.Database.scan_cache (Loader.database t.loader));
  Option.iter Relsql.Extvp.clear (extvp_registry t);
  Loader.load ~domains:t.options.load_domains ?parse_s t.loader triples;
  Dict_table.sync ~domains:t.options.load_domains t.dict_state
    (Loader.dictionary t.loader);
  if t.options.compress then
    Relsql.Database.freeze_all (Loader.database t.loader);
  if t.options.extvp && t.options.extvp_build then build_reductions t

(** Phase timings of the most recent bulk load. *)
let load_stats t = Loader.last_load_stats t.loader

let insert t triple =
  Loader.insert t.loader triple;
  Dict_table.sync t.dict_state (Loader.dictionary t.loader)

(** Delete a triple (no-op when absent). *)
let delete t triple = Loader.delete t.loader triple

(* Should this frozen table's delta fold back into its packed main?
   Delta rows and fresh main tombstones both degrade reads (boxed
   re-scan, tombstone tests, dead postings); merge once they exceed
   [threshold] of the packed main, with a small absolute floor so tiny
   write bursts never thrash a re-pack. *)
let table_wants_merge threshold tbl =
  let pending =
    Relsql.Table.delta_rows tbl + Relsql.Table.main_tombstones tbl
  in
  pending > 0
  && float_of_int pending
     > Float.max 16.0 (threshold *. float_of_int (Relsql.Table.main_slots tbl))

(* Write epilogue of a SPARQL UPDATE statement: keep the DICT table in
   step with dictionary growth, and under [--compress] keep the catalog
   packed without paying a re-encode per statement — the write itself
   landed in the touched tables' delta sides, so the epilogue only
   freezes tables that are still boxed (freshly created ones) and
   re-packs a frozen table once its delta outgrows [merge_threshold]. *)
let after_write t =
  Dict_table.sync t.dict_state (Loader.dictionary t.loader);
  if t.options.compress then begin
    let db = Loader.database t.loader in
    List.iter
      (fun name ->
        let tbl = Relsql.Database.find_exn db name in
        if not (Relsql.Table.frozen tbl) then Relsql.Table.freeze tbl
        else if table_wants_merge t.options.merge_threshold tbl then
          Relsql.Table.merge tbl)
      (Relsql.Database.table_names db)
  end

(** Eagerly fold every frozen table's delta back into its packed main
    ([rdfstore merge]); returns how many tables actually merged. Runs
    under the writer lock — a concurrent snapshot sees the store before
    or after, never mid-compaction (and either way reads the same
    rows: merging is purely physical). *)
let merge t =
  Mutex.protect t.lock (fun () ->
    Relsql.Database.merge_all (Loader.database t.loader))

(** Hit/miss/occupancy counters of the statement cache. *)
let plan_cache_stats t = Relsql.Plan_cache.stats t.cache

(** Hit/miss/occupancy counters of the shared scan cache. *)
let scan_cache_stats t =
  Relsql.Scan_cache.stats (Relsql.Database.scan_cache (Loader.database t.loader))

(* ------------------------------------------------------------------ *)
(* Translation pipeline                                                *)
(* ------------------------------------------------------------------ *)

let access_side = function
  | Cost.Aco -> Loader.Reverse
  | Cost.Acs | Cost.Sc -> Loader.Direct

let merge_ctx t (pt : Sparql.Pattern_tree.t) (q : Sparql.Ast.query) : Merge.ctx =
  let dict = Loader.dictionary t.loader in
  let pred_id (pat : Sparql.Ast.triple_pat) =
    match pat.Sparql.Ast.tp_p with
    | Sparql.Ast.Term term -> Rdf.Dictionary.find dict term
    | Sparql.Ast.Var _ -> None
  in
  let counts = Hashtbl.create 16 in
  let count_var v =
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  in
  let rec count_pattern = function
    | Sparql.Ast.Bgp tps ->
      List.iter (fun tp -> List.iter count_var (Sparql.Ast.triple_pat_vars tp)) tps
    | Sparql.Ast.Group ps | Sparql.Ast.Union ps -> List.iter count_pattern ps
    | Sparql.Ast.Optional p -> count_pattern p
    | Sparql.Ast.Filter _ -> ()
  in
  count_pattern q.Sparql.Ast.where;
  {
    Merge.pt;
    pred_spills =
      (fun m pat ->
        match pat.Sparql.Ast.tp_p with
        | Sparql.Ast.Var _ -> true
        | Sparql.Ast.Term _ ->
          (match pred_id pat with
           | Some pid -> Loader.is_spill_involved t.loader (access_side m) ~pred_id:pid
           | None -> false));
    pred_multivalued =
      (fun m pat ->
        match pred_id pat with
        | Some pid -> Loader.is_multivalued t.loader (access_side m) ~pred_id:pid
        | None -> false);
    var_count = (fun v -> Option.value ~default:0 (Hashtbl.find_opt counts v));
    merging_enabled = t.options.merge;
  }

(** Full translation of a parsed query to SQL. *)
let translate ?(options : options option) t (q : Sparql.Ast.query) :
  Relsql.Sql_ast.stmt =
  let options = Option.value ~default:t.options options in
  let pt = Sparql.Pattern_tree.of_query q in
  let stats = Loader.stats t.loader in
  let dict = Loader.dictionary t.loader in
  let objective = if options.optimize then Dataflow.Best else Dataflow.Worst in
  let _, flow = Dataflow.compute ~objective pt stats dict in
  let etree =
    if options.late_fuse then Exec_tree.build pt flow
    else Exec_tree.build_syntactic pt flow
  in
  let plan = Merge.of_exec (merge_ctx { t with options } pt q) etree in
  if options.extvp then sync_extvp t options;
  let extvp = if options.extvp then extvp_registry t else None in
  Sqlgen.generate ~wcoj:options.wcoj ?extvp t.loader pt plan q

(* Align the catalog's WCOJ planning knob with this call's effective
   options before executing: the planner reads it at plan time, and a
   per-call [?options] override must beat the engine default. The
   reduction registry's retention knobs follow too — a cached statement
   can still trigger a lazy (re)build at execution time. *)
let apply_exec_options t (options : options) =
  Relsql.Database.set_wcoj (Loader.database t.loader) options.wcoj;
  if options.extvp then sync_extvp t options

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let decode_results t (q : Sparql.Ast.query) (r : Relsql.Executor.result) :
  Sparql.Ref_eval.results =
  Results.decode (Loader.dictionary t.loader) q r

(** Evaluate a parsed query end to end. *)
let query ?timeout ?options t (q : Sparql.Ast.query) : Sparql.Ref_eval.results =
  let stmt = translate ?options t q in
  apply_exec_options t (Option.value ~default:t.options options);
  let r = Relsql.Executor.run ?timeout (Loader.database t.loader) stmt in
  decode_results t q r

(** Evaluate a parsed query and collect per-operator execution metrics
    (EXPLAIN ANALYZE through the full pipeline). The statement-cache
    counters ride along as a synthetic child of the root so ANALYZE
    output surfaces hit rates without a separate channel. *)
let query_analyzed ?timeout ?options t (q : Sparql.Ast.query) :
  Sparql.Ref_eval.results * Relsql.Opstats.t =
  let stmt = translate ?options t q in
  apply_exec_options t (Option.value ~default:t.options options);
  let r, stats =
    Relsql.Executor.run_analyzed ?timeout (Loader.database t.loader) stmt
  in
  Relsql.Opstats.add_child stats
    (Relsql.Opstats.make
       (Relsql.Plan_cache.stats_to_string (Relsql.Plan_cache.stats t.cache)));
  Relsql.Opstats.add_child stats
    (Relsql.Opstats.make (Relsql.Scan_cache.stats_to_string
       (Relsql.Database.scan_cache (Loader.database t.loader))));
  (decode_results t q r, stats)

(** Parse and evaluate a SPARQL string. Repeated texts skip parsing and
    the whole translation pipeline via the statement cache. Entries are
    keyed by the effective options fingerprint plus the source text —
    every knob that changes plan shape participates, so ablation callers
    (and {!with_options} views sharing this cache) never serve each
    other's statements — and validated against
    {!Relsql.Database.data_version}: a stamp from before any data change
    is a miss, and the statement re-translates against current
    statistics. *)
let query_string ?timeout ?options t (src : string) : Sparql.Ref_eval.results =
  let effective = Option.value ~default:t.options options in
  let db = Loader.database t.loader in
  let now =
    (Relsql.Database.data_version db, Relsql.Database.enc_version db,
     Relsql.Database.delta_version db)
  in
  let key = options_fingerprint effective ^ "\n" ^ src in
  let prepare () =
    let q = Sparql.Parser.parse src in
    let stmt = translate ?options t q in
    Relsql.Plan_cache.add t.cache key (q, stmt, now);
    (q, stmt)
  in
  let q, stmt =
    match Relsql.Plan_cache.find t.cache key with
    | Some (q, stmt, stamp) when stamp = now -> (q, stmt)
    | Some _ ->
      (* Resident but stamped before a data change: count it as a
         miss — no usable result was served — and re-translate. *)
      Relsql.Plan_cache.note_stale t.cache;
      prepare ()
    | None -> prepare ()
  in
  apply_exec_options t effective;
  let r = Relsql.Executor.run ?timeout db stmt in
  decode_results t q r

(* ------------------------------------------------------------------ *)
(* SPARQL UPDATE                                                       *)
(* ------------------------------------------------------------------ *)

(** Apply a SPARQL UPDATE through the DB2RDF layout. The DATA forms
    drive the incremental insert/delete paths (dictionary growth, slot
    placement with spill/lid maintenance, tombstoned rows with index
    and statistics upkeep); [DELETE WHERE] evaluates its pattern
    through the engine's own query pipeline against the pre-update
    state, then deletes the instantiated template triples. The whole
    statement runs under the writer lock, so concurrent {!snapshot}
    readers observe either none or all of it. *)
let update t (u : Sparql.Ast.update) : unit =
  Mutex.protect t.lock (fun () ->
    Store.update_via u
      ~query:(fun ?timeout q -> query ?timeout t q)
      ~insert:(fun ts ->
        List.iter (Loader.insert t.loader) ts;
        after_write t)
      ~delete:(fun ts ->
        List.iter (Loader.delete t.loader) ts;
        after_write t))

(** Parse and apply a SPARQL UPDATE string. *)
let update_string t src = update t (Sparql.Parser.parse_update src)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

(** A consistent read view: private {!Relsql.Database.snapshot} tables
    plus the capture-time catalog stamp. Readers execute against it
    unlocked while the writer commits. *)
type snapshot = {
  snap_engine : t;
  snap_db : Relsql.Database.t;
  snap_data : int;  (** {!Relsql.Database.data_version} at capture *)
  snap_enc : int;  (** {!Relsql.Database.enc_version} at capture *)
  snap_delta : int;  (** {!Relsql.Database.delta_version} at capture *)
}

(** Capture a snapshot. Taken under the writer lock, so it never
    observes a half-applied update statement. Capture freezes the live
    tables (copy-on-write: the next write thaws them into private
    storage), so the stamp is read from the snapshot's own tables,
    whose versions never move again. *)
let snapshot t : snapshot =
  Mutex.protect t.lock (fun () ->
    let sdb = Relsql.Database.snapshot (Loader.database t.loader) in
    { snap_engine = t; snap_db = sdb;
      snap_data = Relsql.Database.data_version sdb;
      snap_enc = Relsql.Database.enc_version sdb;
      snap_delta = Relsql.Database.delta_version sdb })

let snapshot_stamp s = (s.snap_data, s.snap_enc, s.snap_delta)

(* Translate for a snapshot. A cached statement is accepted when its
   stamp equals the snapshot's capture stamp — per-snapshot validity:
   entries are not retired just because the live catalog moved on. On
   a miss the statement is translated against the live statistics,
   which is safe for older snapshots because every statistic the
   generated SQL depends on is monotone: seen-sets only grow, a
   predicate that became spill-involved or multi-valued later makes
   the plan chase spill rows/lid lists that the snapshot simply does
   not have, and storage columns never move once assigned. Runs under
   the writer lock (translation reads the loader's statistics and
   dictionary, which a concurrent writer mutates). *)
let snapshot_prepare s (src : string) =
  let t = s.snap_engine in
  Mutex.protect t.lock (fun () ->
    (* Snapshot databases carry no reduction registry, so statements
       must not reference [extvp$] tables: translate with ExtVP off,
       under a distinct cache key so live (possibly substituted) plans
       and snapshot plans never collide. *)
    let options =
      if t.options.extvp then { t.options with extvp = false } else t.options
    in
    let key = options_fingerprint options ^ "\n" ^ src in
    let db = Loader.database t.loader in
    let now =
      (Relsql.Database.data_version db, Relsql.Database.enc_version db,
       Relsql.Database.delta_version db)
    in
    match Relsql.Plan_cache.find t.cache key with
    | Some (q, stmt, stamp)
      when stamp = (s.snap_data, s.snap_enc, s.snap_delta) -> (q, stmt)
    | (Some _ | None) as hit ->
      if hit <> None then Relsql.Plan_cache.note_stale t.cache;
      let q = Sparql.Parser.parse src in
      let stmt = translate ~options t q in
      (* Stamp with the live version: correct for live callers at the
         same options; a snapshot at this stamp re-accepts it too. *)
      Relsql.Plan_cache.add t.cache key (q, stmt, now);
      (q, stmt))

(** Evaluate a SPARQL string against the snapshot: translation and
    result decoding synchronize with the writer, execution runs
    unlocked on the snapshot's private tables and scan cache. *)
let snapshot_query_string ?timeout s (src : string) : Sparql.Ref_eval.results =
  let t = s.snap_engine in
  let q, stmt = snapshot_prepare s src in
  let r = Relsql.Executor.run ?timeout s.snap_db stmt in
  Mutex.protect t.lock (fun () -> decode_results t q r)

(** Human-readable translation trace: flow, execution tree, merged plan,
    SQL text and physical plan. With [~analyze:true] the statement is
    also executed and the per-operator metrics appended. *)
let explain ?(analyze = false) t (q : Sparql.Ast.query) : string =
  let pt = Sparql.Pattern_tree.of_query q in
  let stats = Loader.stats t.loader in
  let dict = Loader.dictionary t.loader in
  let objective = if t.options.optimize then Dataflow.Best else Dataflow.Worst in
  let _, flow = Dataflow.compute ~objective pt stats dict in
  let etree =
    if t.options.late_fuse then Exec_tree.build pt flow
    else Exec_tree.build_syntactic pt flow
  in
  let plan = Merge.of_exec (merge_ctx t pt q) etree in
  if t.options.extvp then sync_extvp t t.options;
  let extvp = if t.options.extvp then extvp_registry t else None in
  let stmt = Sqlgen.generate ~wcoj:t.options.wcoj ?extvp t.loader pt plan q in
  apply_exec_options t t.options;
  String.concat "\n"
    [ "== parse tree ==";
      Sparql.Pattern_tree.to_string pt;
      "== optimal flow ==";
      Dataflow.flow_to_string pt flow;
      "== execution tree ==";
      Exec_tree.to_string pt etree;
      "== query plan (merged) ==";
      Merge.to_string plan;
      "== SQL ==";
      Relsql.Sql_pp.to_pretty_string stmt;
      "== physical plan ==";
      Relsql.Executor.explain ~analyze (Loader.database t.loader) stmt;
      "== plan cache ==";
      Relsql.Plan_cache.stats_to_string (Relsql.Plan_cache.stats t.cache);
      "== scan cache ==";
      Relsql.Scan_cache.stats_to_string
        (Relsql.Database.scan_cache (Loader.database t.loader)) ]

(** Wrap as a {!Store.t}. *)
let to_store ?(name = "DB2RDF") t : Store.t =
  {
    Store.name;
    load = (fun triples -> load t triples);
    delete = (fun triples -> List.iter (delete t) triples);
    query = (fun ?timeout q -> query ?timeout t q);
    analyze =
      (fun ?timeout q ->
        let r, stats = query_analyzed ?timeout t q in
        (r, Some stats));
    explain = (fun q -> explain t q);
    update = (fun u -> update t u);
  }
