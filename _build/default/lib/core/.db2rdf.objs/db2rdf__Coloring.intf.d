lib/core/coloring.mli: Hashtbl Int Pred_map Rdf Set
