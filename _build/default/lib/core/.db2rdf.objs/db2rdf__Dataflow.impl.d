lib/core/dataflow.ml: Array Cost Dataset_stats Hashtbl List Option Printf Rdf Sparql String
