(** E5 — the Section 2.3 NULL experiment: a dataset where every subject
    has the same 5 predicates, loaded into DPH relations with 5, then
    10, 50 and 100 pred/val column pairs (all extra columns NULL).
    Reports the value-compressed storage footprint and the query time of
    a fast (selective) and a longer-running query per width. The paper's
    shape: a 20x column increase costs ~10% storage and between 10% and
    2x on fast queries. *)

let pred i = Printf.sprintf "http://nulls.org/p%d" i
let subj s = Printf.sprintf "http://nulls.org/s%d" s

let generate ~scale =
  let n_subjects = max 1 (scale / 5) in
  List.concat
    (List.init n_subjects (fun s ->
         List.init 5 (fun p ->
             Rdf.Triple.make (Rdf.Term.iri (subj s)) (Rdf.Term.iri (pred p))
               (Rdf.Term.lit (Printf.sprintf "v%d_%d" p (s mod 97))))))

(* Assign the 5 predicates to the first 5 columns whatever the width. *)
let fixed_map ~m =
  let tbl = Hashtbl.create 5 in
  for i = 0 to 4 do
    Hashtbl.replace tbl (pred i) i
  done;
  Db2rdf.Pred_map.compose
    (Db2rdf.Pred_map.of_table ~m ~describe:"fixed" tbl)
    (Db2rdf.Pred_map.hashed_family ~m ~n:2)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf
       "E5. NULL columns: storage and query impact (Section 2.3) — %d triples"
       cfg.Harness.scale);
  let triples = generate ~scale:cfg.Harness.scale in
  let fast_query =
    Sparql.Parser.parse
      (Printf.sprintf
         "SELECT ?a ?b WHERE { <%s> <%s> ?a . <%s> <%s> ?b }" (subj 0) (pred 0)
         (subj 0) (pred 1))
  in
  let long_query =
    Sparql.Parser.parse
      (Printf.sprintf
         "SELECT ?s ?a WHERE { ?s <%s> ?a . ?s <%s> ?b . ?s <%s> ?c }" (pred 0)
         (pred 1) (pred 2))
  in
  let baseline_storage = ref 0 in
  let baseline_fast = ref 0.0 and baseline_long = ref 0.0 in
  let rows =
    List.map
      (fun width ->
        let layout = Db2rdf.Layout.make ~dph_cols:width ~rph_cols:5 in
        let e =
          Db2rdf.Engine.create ~layout ~direct_map:(fixed_map ~m:width)
            ~reverse_map:(Db2rdf.Pred_map.hashed_family ~m:5 ~n:2) ()
        in
        Db2rdf.Engine.load e triples;
        let report = Db2rdf.Loader.report (Db2rdf.Engine.loader e) Db2rdf.Loader.Direct in
        let sys =
          { Harness.sys_name = Printf.sprintf "%d cols" width;
            store = Db2rdf.Engine.to_store e; load_seconds = 0.0 }
        in
        let fast = Harness.measure cfg sys "fast" fast_query in
        let long = Harness.measure cfg sys "long" long_query in
        if width = 5 then begin
          baseline_storage := report.Db2rdf.Loader.storage_bytes;
          baseline_fast := fast.Harness.m_seconds;
          baseline_long := long.Harness.m_seconds
        end;
        let rel a b = if b = 0.0 then "-" else Printf.sprintf "%.2fx" (a /. b) in
        [ string_of_int width;
          Printf.sprintf "%.2f MB"
            (float_of_int report.Db2rdf.Loader.storage_bytes /. 1_048_576.0);
          Printf.sprintf "%.1f%%"
            (100.0
            *. float_of_int report.Db2rdf.Loader.storage_bytes
            /. float_of_int (max 1 !baseline_storage));
          Printf.sprintf "%.1f%%" (100.0 *. report.Db2rdf.Loader.null_fraction);
          Harness.outcome_cell fast;
          rel fast.Harness.m_seconds !baseline_fast;
          Harness.outcome_cell long;
          rel long.Harness.m_seconds !baseline_long ])
      [ 5; 10; 50; 100 ]
  in
  Harness.print_table
    [ "pred/val cols"; "storage"; "vs 5 cols"; "null cells"; "fast q (ms)";
      "fast rel"; "long q (ms)"; "long rel" ]
    rows
