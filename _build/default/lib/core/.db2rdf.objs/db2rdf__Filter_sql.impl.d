lib/core/filter_sql.ml: Dict_table Hashtbl List Option Printf Rdf Relsql Sparql String
