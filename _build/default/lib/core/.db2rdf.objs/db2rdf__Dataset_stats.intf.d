lib/core/dataset_stats.mli: Hashtbl
