lib/core/results.ml: Array List Rdf Relsql Sparql
