lib/workloads/lubm.ml: Dist List Printf Rdf Sparql String
