(** Graph coloring of the predicate interference graph (Section 2.2,
    Definition 2.3, and the empirical study of Section 2.3).

    Two predicates *interfere* when they co-occur on some entity (same
    subject for the direct relations, same object for the reverse ones);
    interfering predicates must get different columns or they will force
    spill rows. We build the interference graph from (a sample of) the
    dataset and color it greedily in descending degree order (the
    Welsh–Powell strategy — the paper calls its greedy approximation
    "Floyd-Warshall greedy").

    When the graph needs more colors than the relation has columns (the
    DBpedia case), we keep the coloring for the subset of predicates that
    fits — preferring frequent predicates — and let the remaining ones
    fall through to a composed hash mapping ([c(D⊗P) ⊕ h_m]). *)

module IntSet = Set.Make (Int)

type result = {
  assignment : (string, int) Hashtbl.t;  (** predicate URI -> column *)
  colors_used : int;  (** distinct colors among covered predicates *)
  covered : int;  (** predicates that received a color *)
  total_predicates : int;
  covered_occurrences : int;  (** triple occurrences of covered predicates *)
  total_occurrences : int;
}

(** Fraction of triples whose predicate is covered by the coloring —
    the "Percent. Covered" columns of Table 4. *)
let coverage r =
  if r.total_occurrences = 0 then 1.0
  else float_of_int r.covered_occurrences /. float_of_int r.total_occurrences

(* ------------------------------------------------------------------ *)
(* Interference graph                                                  *)
(* ------------------------------------------------------------------ *)

type graph = {
  preds : string array;  (** vertex -> predicate URI *)
  vertex : (string, int) Hashtbl.t;
  adj : IntSet.t array;  (** vertex -> interfering vertices *)
  freq : int array;  (** vertex -> triple occurrences *)
}

let n_vertices g = Array.length g.preds
let degree g v = IntSet.cardinal g.adj.(v)
let interferes g a b = IntSet.mem b g.adj.(a)

(** Build the interference graph from an iterator over entities, where
    each entity yields its list of predicate URIs (one occurrence each;
    repeats within an entity are fine). [iter_entities f] must call
    [f predicates_of_entity] once per entity. *)
let build_graph (iter_entities : (string list -> unit) -> unit) : graph =
  let vertex = Hashtbl.create 256 in
  let preds = ref [] in
  let count = ref 0 in
  let intern p =
    match Hashtbl.find_opt vertex p with
    | Some v -> v
    | None ->
      let v = !count in
      Hashtbl.add vertex p v;
      preds := p :: !preds;
      incr count;
      v
  in
  let edges = ref [] in
  let freqs = ref [] in
  iter_entities (fun plist ->
      let vs_all = List.map intern plist in
      List.iter (fun v -> freqs := (v, 1) :: !freqs) vs_all;
      let vs = List.sort_uniq Int.compare vs_all in
      let rec pairs = function
        | [] -> ()
        | v :: rest ->
          List.iter (fun w -> edges := (v, w) :: !edges) rest;
          pairs rest
      in
      pairs vs);
  let n = !count in
  let adj = Array.make n IntSet.empty in
  List.iter
    (fun (a, b) ->
      adj.(a) <- IntSet.add b adj.(a);
      adj.(b) <- IntSet.add a adj.(b))
    !edges;
  let freq = Array.make n 0 in
  List.iter (fun (v, k) -> freq.(v) <- freq.(v) + k) !freqs;
  let preds_arr = Array.make (max n 1) "" in
  List.iteri (fun i p -> preds_arr.(n - 1 - i) <- p) !preds;
  { preds = (if n = 0 then [||] else Array.sub preds_arr 0 n); vertex; adj; freq }

(** Interference graph of the *direct* relations: predicates co-occurring
    on a subject. *)
let direct_graph (triples : Rdf.Triple.t list) : graph =
  let by_subject : (Rdf.Term.t, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (t : Rdf.Triple.t) ->
      let p = match t.p with Rdf.Term.Iri s -> s | other -> Rdf.Term.to_string other in
      match Hashtbl.find_opt by_subject t.s with
      | Some l -> l := p :: !l
      | None -> Hashtbl.add by_subject t.s (ref [ p ]))
    triples;
  build_graph (fun f -> Hashtbl.iter (fun _ l -> f !l) by_subject)

(** Interference graph of the *reverse* relations: predicates
    co-occurring on an object. *)
let reverse_graph (triples : Rdf.Triple.t list) : graph =
  let by_object : (Rdf.Term.t, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (t : Rdf.Triple.t) ->
      let p = match t.p with Rdf.Term.Iri s -> s | other -> Rdf.Term.to_string other in
      match Hashtbl.find_opt by_object t.o with
      | Some l -> l := p :: !l
      | None -> Hashtbl.add by_object t.o (ref [ p ]))
    triples;
  build_graph (fun f -> Hashtbl.iter (fun _ l -> f !l) by_object)

(** Both interference graphs from one scan of the triples: the
    subject-keyed and object-keyed co-occurrence tables fill together,
    so bulk-load callers that need both sides (every colored store)
    traverse the input once instead of once per side. *)
let interference_graphs (triples : Rdf.Triple.t list) : graph * graph =
  let by_subject : (Rdf.Term.t, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  let by_object : (Rdf.Term.t, string list ref) Hashtbl.t = Hashtbl.create 1024 in
  let push tbl key p =
    match Hashtbl.find_opt tbl key with
    | Some l -> l := p :: !l
    | None -> Hashtbl.add tbl key (ref [ p ])
  in
  List.iter
    (fun (t : Rdf.Triple.t) ->
      let p = match t.p with Rdf.Term.Iri s -> s | other -> Rdf.Term.to_string other in
      push by_subject t.s p;
      push by_object t.o p)
    triples;
  ( build_graph (fun f -> Hashtbl.iter (fun _ l -> f !l) by_subject),
    build_graph (fun f -> Hashtbl.iter (fun _ l -> f !l) by_object) )

(* ------------------------------------------------------------------ *)
(* Greedy coloring                                                     *)
(* ------------------------------------------------------------------ *)

(** Greedy-color [g] with at most [max_colors] colors. Vertices are
    processed in descending (degree, frequency) order so hub predicates
    color first; each takes the smallest color free among its already-
    colored neighbours. Vertices that would need a color beyond the
    limit are left uncovered (to be handled by hash composition). *)
let color ?(max_colors = max_int) (g : graph) : result =
  let n = n_vertices g in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (degree g b) (degree g a) in
      if c <> 0 then c else compare g.freq.(b) g.freq.(a))
    order;
  let color_of = Array.make n (-1) in
  let assignment = Hashtbl.create n in
  let colors_used = ref 0 in
  let covered = ref 0 in
  let covered_occ = ref 0 and total_occ = ref 0 in
  Array.iter
    (fun v ->
      let used =
        IntSet.fold
          (fun w acc -> if color_of.(w) >= 0 then IntSet.add color_of.(w) acc else acc)
          g.adj.(v) IntSet.empty
      in
      let rec smallest c = if IntSet.mem c used then smallest (c + 1) else c in
      let c = smallest 0 in
      total_occ := !total_occ + g.freq.(v);
      if c < max_colors then begin
        color_of.(v) <- c;
        Hashtbl.replace assignment g.preds.(v) c;
        if c + 1 > !colors_used then colors_used := c + 1;
        incr covered;
        covered_occ := !covered_occ + g.freq.(v)
      end)
    order;
  {
    assignment;
    colors_used = !colors_used;
    covered = !covered;
    total_predicates = n;
    covered_occurrences = !covered_occ;
    total_occurrences = !total_occ;
  }

(** Validate a coloring against its interference graph: no two
    interfering covered predicates share a color. Used by the property
    tests. *)
let valid g (r : result) =
  let ok = ref true in
  Array.iteri
    (fun v p ->
      match Hashtbl.find_opt r.assignment p with
      | None -> ()
      | Some c ->
        IntSet.iter
          (fun w ->
            match Hashtbl.find_opt r.assignment g.preds.(w) with
            | Some c' when c' = c && w <> v -> ok := false
            | _ -> ())
          g.adj.(v))
    g.preds;
  !ok

(** Deterministic sample of [fraction] of the triples (every k-th),
    used for the Section 2.3 "color only 10% of the records"
    experiment. *)
let sample_triples ~fraction triples =
  if fraction >= 1.0 then triples
  else begin
    let step = max 1 (int_of_float (1.0 /. fraction)) in
    List.filteri (fun i _ -> i mod step = 0) triples
  end

(** Build the predicate mapping from a coloring result over width-[m]
    relations: colored predicates map to their color, everything else
    falls back to a 2-hash composition (Section 2.2's
    [c(D⊗P)_m ⊕ h_m]). *)
let to_pred_map ~m (r : result) : Pred_map.t =
  Pred_map.compose
    (Pred_map.of_table ~m ~describe:"coloring" r.assignment)
    (Pred_map.hashed_family ~m ~n:2)
