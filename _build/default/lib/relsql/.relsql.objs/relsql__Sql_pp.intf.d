lib/relsql/sql_pp.mli: Sql_ast
