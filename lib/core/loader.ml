(** Insertion into the DB2RDF schema: predicate-to-column placement,
    spill rows, and multi-value (lid) indirection (Sections 2.1–2.2).

    A {!store} owns the four relations, the direct and reverse predicate
    mappings, the dictionary, the statistics, and the bookkeeping the
    query translator needs: which predicates are multi-valued (need a
    DS/RS join) and which are involved in spills (veto star merging —
    Section 3.2.1). *)

module IntTbl = Dataset_stats.IntTbl

type side = Direct | Reverse

(** Per-side state: the primary and secondary tables plus registries. *)
type side_state = {
  primary : Relsql.Table.t;
  secondary : Relsql.Table.t;
  pos : Layout.positions;
  k : int;
  pred_map : Pred_map.t;
  entity_rows : int list ref IntTbl.t;  (** entity id -> primary row ids, oldest first *)
  multivalued : unit IntTbl.t;  (** predicate ids with any lid value *)
  spill_preds : unit IntTbl.t;  (** predicate ids stored on spill rows *)
  placed : unit IntTbl.t IntTbl.t;
      (** predicate id -> columns that ever held it (conservative after
          deletes; always a subset of the candidate columns) *)
  mutable spill_rows : int;  (** rows beyond the first of some entity *)
  mutable entities : int;
}

(** Per-phase wall-clock breakdown of the last bulk {!load} call.
    [parse_s] is the caller-measured input-parsing time (0 for in-memory
    triple lists); the other phases are the loader's own: worker-local
    dictionary encoding, the deterministic merge/remap/dedup pass, and
    DPH/RPH/DS/RS row assembly. *)
type load_stats = {
  domains_used : int;  (** 1 = the untouched sequential path ran *)
  morsels : int;  (** encode-phase chunks (1 when sequential) *)
  triples_in : int;  (** input triples, duplicates included *)
  triples_new : int;  (** triples actually inserted after dedup *)
  parse_s : float;
  encode_s : float;
  merge_s : float;
  assemble_s : float;
  total_s : float;  (** parse + encode + merge + assemble *)
}

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  layout : Layout.t;
  direct : side_state;
  reverse : side_state;
  stats : Dataset_stats.t;
  seen : (int * int * int, unit) Hashtbl.t;
      (* RDF graphs are sets: duplicate triples are ignored *)
  mutable next_lid : int;
  mutable triples_loaded : int;
  mutable last_load : load_stats option;
}

let database t = t.db
let dictionary t = t.dict
let stats t = t.stats
let triples_loaded t = t.triples_loaded
let last_load_stats t = t.last_load

let side t = function Direct -> t.direct | Reverse -> t.reverse

(** Predicate URI string used by the mapping functions (hashing operates
    on the string value of the URI, Definition 2.1). *)
let pred_uri = function
  | Rdf.Term.Iri s -> s
  | other -> Rdf.Term.to_string other

let make_side primary secondary k pred_map =
  if Pred_map.arity pred_map <> k then
    invalid_arg "Loader: predicate map arity does not match layout";
  {
    primary;
    secondary;
    pos = Layout.positions (Relsql.Table.schema primary) k;
    k;
    pred_map;
    entity_rows = IntTbl.create 4096;
    multivalued = IntTbl.create 64;
    spill_preds = IntTbl.create 64;
    placed = IntTbl.create 64;
    spill_rows = 0;
    entities = 0;
  }

(** Create an empty store. [direct_map]/[reverse_map] default to the
    2-hash composition over the layout's widths. *)
let create ?(layout = Layout.default) ?direct_map ?reverse_map ?dict () =
  let db = Relsql.Database.create "db2rdf" in
  let dph, ds, rph, rs = Layout.create_tables db layout in
  let dict = match dict with Some d -> d | None -> Rdf.Dictionary.create () in
  let dmap =
    match direct_map with
    | Some m -> m
    | None -> Pred_map.hashed_family ~m:layout.Layout.dph_cols ~n:2
  in
  let rmap =
    match reverse_map with
    | Some m -> m
    | None -> Pred_map.hashed_family ~m:layout.Layout.rph_cols ~n:2
  in
  {
    db;
    dict;
    layout;
    direct = make_side dph ds layout.Layout.dph_cols dmap;
    reverse = make_side rph rs layout.Layout.rph_cols rmap;
    stats = Dataset_stats.create ();
    seen = Hashtbl.create 4096;
    next_lid = 0;
    triples_loaded = 0;
    last_load = None;
  }

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let record_placed st ~pred_id c =
  let cols =
    match IntTbl.find_opt st.placed pred_id with
    | Some s -> s
    | None ->
      let s = IntTbl.create 4 in
      IntTbl.add st.placed pred_id s;
      s
  in
  IntTbl.replace cols c ()

let fresh_row st entity_id =
  let arity = Relsql.Schema.arity (Relsql.Table.schema st.primary) in
  let row = Array.make arity Relsql.Value.Null in
  row.(st.pos.entry_pos) <- Relsql.Value.Int entity_id;
  row.(st.pos.spill_pos) <- Relsql.Value.Int 0;
  Relsql.Table.insert st.primary row

(* Write one primary cell through {!Relsql.Table.set_cell}, adopting
   any relocation: under delta-main storage a write to a row of the
   frozen main returns a fresh rid (the old slot is tombstoned), and
   the entity's row list must follow it — substituted in place, so the
   head keeps identifying the entity's first (non-spill) row. Returns
   the row's current rid. *)
let set_primary st rows rid pos v =
  let rid' = Relsql.Table.set_cell st.primary rid pos v in
  if rid' <> rid then
    rows := List.map (fun r -> if r = rid then rid' else r) !rows;
  rid'

(** Insert (entity, predicate, value) into one side. Implements the
    insertion procedure of Section 2.2: probe the candidate columns of
    every existing row of the entity; extend multi-values through the
    secondary table; spill into a fresh row when all candidates
    conflict. Returns the lid allocator state through [store]. *)
let insert_side store st ~entity ~pred_id ~pred_str ~value =
  let rows =
    match IntTbl.find_opt st.entity_rows entity with
    | Some r -> r
    | None ->
      st.entities <- st.entities + 1;
      let r = ref [ fresh_row st entity ] in
      IntTbl.add st.entity_rows entity r;
      r
  in
  let cands = Pred_map.candidates st.pred_map pred_str in
  let cands = if cands = [] then [ 0 ] else cands in
  let pred_val = Relsql.Value.Int pred_id in
  (* Pass 1: is the predicate already placed somewhere for this entity? *)
  let existing =
    List.find_map
      (fun rid ->
        List.find_map
          (fun c ->
            if Relsql.Table.cell st.primary rid st.pos.pred_pos.(c) = pred_val
            then Some (rid, c)
            else None)
          cands)
      !rows
  in
  match existing with
  | Some (rid, c) ->
    (* Multi-valued: push the value into the secondary table. *)
    IntTbl.replace st.multivalued pred_id ();
    let vpos = st.pos.val_pos.(c) in
    (match Relsql.Table.cell st.primary rid vpos with
     | Relsql.Value.Lid lid ->
       ignore
         (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; value |])
     | old ->
       let lid = store.next_lid in
       store.next_lid <- lid + 1;
       ignore (set_primary st rows rid vpos (Relsql.Value.Lid lid));
       ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; old |]);
       ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; value |]))
  | None ->
    (* Pass 2: first free candidate column on any existing row. *)
    let free =
      List.find_map
        (fun rid ->
          List.find_map
            (fun c ->
              if
                Relsql.Value.is_null
                  (Relsql.Table.cell st.primary rid st.pos.pred_pos.(c))
              then Some (rid, c)
              else None)
            cands)
        !rows
    in
    (match free with
     | Some (rid, c) ->
       let rid = set_primary st rows rid st.pos.pred_pos.(c) pred_val in
       ignore (set_primary st rows rid st.pos.val_pos.(c) value);
       record_placed st ~pred_id c;
       (* If this cell lives on a spill row, the predicate is spill-
          involved for merging purposes. *)
       if rid <> List.hd !rows then IntTbl.replace st.spill_preds pred_id ()
     | None ->
       (* Spill: new row for the entity; mark every row of the entity. *)
       let rid = fresh_row st entity in
       st.spill_rows <- st.spill_rows + 1;
       List.iter
         (fun r ->
           ignore
             (set_primary st rows r st.pos.spill_pos (Relsql.Value.Int 1)))
         (rid :: !rows);
       rows := !rows @ [ rid ];
       let c = List.hd cands in
       let rid = set_primary st rows rid st.pos.pred_pos.(c) pred_val in
       ignore (set_primary st rows rid st.pos.val_pos.(c) value);
       record_placed st ~pred_id c;
       IntTbl.replace st.spill_preds pred_id ())

(** Insert one triple into both sides of the store. Duplicate triples
    are ignored (RDF graphs are sets). *)
let insert t (tr : Rdf.Triple.t) =
  let s = Rdf.Dictionary.id_of t.dict tr.s in
  let p = Rdf.Dictionary.id_of t.dict tr.p in
  let o = Rdf.Dictionary.id_of t.dict tr.o in
  if Hashtbl.mem t.seen (s, p, o) then ()
  else begin
  Hashtbl.add t.seen (s, p, o) ();
  let pred_str = pred_uri tr.p in
  insert_side t t.direct ~entity:s ~pred_id:p ~pred_str ~value:(Relsql.Value.Int o);
  insert_side t t.reverse ~entity:o ~pred_id:p ~pred_str ~value:(Relsql.Value.Int s);
  Dataset_stats.record t.stats ~s ~p ~o;
  t.triples_loaded <- t.triples_loaded + 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel bulk load                                                  *)
(* ------------------------------------------------------------------ *)

(* Growable int vector for the merge pass's encoded-triple and
   partition-index buffers. *)
module Ivec = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 256 0; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let b = Array.make (2 * v.len) 0 in
      Array.blit v.a 0 b 0 v.len;
      v.a <- b
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1
end

(* Per-entity simulation state of the assemble phase: the rows the
   entity will own, each paired with the global index of the deduped
   triple that created it (its position in the sequential insertion
   order). *)
type esim = {
  mutable srows : (int * Relsql.Value.t array) list;  (* creation order *)
  mutable sspilled : bool;
}

(* Row/secondary fragment built by one (side, entity-partition)
   assemble worker. Sequence keys restore the sequential order later:
   a row's key is its creating triple's index; a secondary tuple's key
   is [2*seq] ([+1] for the second tuple of a lid transition, which
   sequential insertion writes old-then-new at one triple). *)
type frag = {
  mutable frows : (int * int * Relsql.Value.t array) list;  (* seq, entity, row *)
  mutable fds : (int * int * Relsql.Value.t) list;  (* key, lid, elm *)
  fmv : unit IntTbl.t;  (* multi-valued predicate ids *)
  fsp : unit IntTbl.t;  (* spill-involved predicate ids *)
  fpc : (int * int, unit) Hashtbl.t;  (* (pred id, column) placements *)
}

let sim_fresh_row st entity =
  let arity = Relsql.Schema.arity (Relsql.Table.schema st.primary) in
  let row = Array.make arity Relsql.Value.Null in
  row.(st.pos.entry_pos) <- Relsql.Value.Int entity;
  row.(st.pos.spill_pos) <- Relsql.Value.Int 0;
  row

(* Mirror of {!insert_side} over in-memory row fragments: the same row
   scanning order, candidate order and spill choice, with lids drawn
   from the pre-computed schedule instead of the shared counter. Only
   the entity's own rows are consulted, which is what makes insertion
   simulable per entity partition. *)
let sim_insert st ents frag lids ~seq ~entity ~pred_id ~cands ~value =
  let e =
    match IntTbl.find_opt ents entity with
    | Some e -> e
    | None ->
      let e = { srows = [ (seq, sim_fresh_row st entity) ]; sspilled = false } in
      IntTbl.add ents entity e;
      e
  in
  let pred_val = Relsql.Value.Int pred_id in
  let existing =
    List.find_map
      (fun (_, arr) ->
        List.find_map
          (fun c ->
            if arr.(st.pos.pred_pos.(c)) = pred_val then Some (arr, c) else None)
          cands)
      e.srows
  in
  match existing with
  | Some (arr, c) ->
    IntTbl.replace frag.fmv pred_id ();
    let vpos = st.pos.val_pos.(c) in
    (match arr.(vpos) with
     | Relsql.Value.Lid lid -> frag.fds <- (2 * seq, lid, value) :: frag.fds
     | old ->
       let lid = Hashtbl.find lids (entity, pred_id) in
       arr.(vpos) <- Relsql.Value.Lid lid;
       frag.fds <- ((2 * seq) + 1, lid, value) :: (2 * seq, lid, old) :: frag.fds)
  | None ->
    let rec find_free i = function
      | [] -> None
      | (_, arr) :: rest ->
        (match
           List.find_map
             (fun c ->
               if Relsql.Value.is_null arr.(st.pos.pred_pos.(c)) then Some c
               else None)
             cands
         with
         | Some c -> Some (i, arr, c)
         | None -> find_free (i + 1) rest)
    in
    (match find_free 0 e.srows with
     | Some (i, arr, c) ->
       arr.(st.pos.pred_pos.(c)) <- pred_val;
       arr.(st.pos.val_pos.(c)) <- value;
       Hashtbl.replace frag.fpc (pred_id, c) ();
       if i <> 0 then IntTbl.replace frag.fsp pred_id ()
     | None ->
       let arr = sim_fresh_row st entity in
       e.srows <- e.srows @ [ (seq, arr) ];
       e.sspilled <- true;
       let c = List.hd cands in
       arr.(st.pos.pred_pos.(c)) <- pred_val;
       arr.(st.pos.val_pos.(c)) <- value;
       Hashtbl.replace frag.fpc (pred_id, c) ();
       IntTbl.replace frag.fsp pred_id ())

(* The morsel-parallel bulk-load pipeline. Three phases:

   1. {b encode} (parallel): the input splits into contiguous chunks;
      each worker interns its chunk's terms into a private dictionary
      delta and emits the chunk as local-id triples.
   2. {b merge} (sequential): deltas merge into the global dictionary in
      chunk order — which reproduces the sequential interning order
      exactly (see {!Rdf.Dictionary.remap_into}) — while the remapped
      triples are deduplicated, statistics recorded, predicate
      candidate columns memoized, and the lid allocation schedule
      computed (a (side, entity, predicate) pair draws its lid at its
      second occurrence, direct side before reverse, as sequential
      insertion would).
   3. {b assemble} (parallel): per side, entities are hash-partitioned;
      workers replay each entity's insertions into private row
      fragments ({!sim_insert}); a final per-side pass writes rows and
      secondary tuples into the tables in sequence-key order, so row
      ids, index postings, lids and spill flags are all bit-identical
      to a sequential load. *)
let load_parallel t ~domains triples n_in =
  let now = Unix.gettimeofday in
  let t0 = now () in
  let before = t.triples_loaded in
  let pool = Relsql.Dpool.get domains in
  let input : Rdf.Triple.t array = Array.of_list triples in
  (* -------- phase 1: encode -------- *)
  let rs = Relsql.Dpool.ranges pool ~n:n_in () in
  let n_morsels = Array.length rs in
  let deltas =
    Array.map
      (fun (lo, hi) -> (Rdf.Dictionary.create (), Array.make (3 * (hi - lo)) 0))
      rs
  in
  ignore
    (Relsql.Dpool.run pool ~morsels:n_morsels (fun ~worker:_ m ->
         let lo, hi = rs.(m) in
         let ld, enc = deltas.(m) in
         for j = lo to hi - 1 do
           let tr = input.(j) in
           let b = 3 * (j - lo) in
           enc.(b) <- Rdf.Dictionary.id_of ld tr.Rdf.Triple.s;
           enc.(b + 1) <- Rdf.Dictionary.id_of ld tr.Rdf.Triple.p;
           enc.(b + 2) <- Rdf.Dictionary.id_of ld tr.Rdf.Triple.o
         done));
  let t_enc = now () in
  (* -------- phase 2: merge -------- *)
  let vs = Ivec.create () and vp = Ivec.create () and vo = Ivec.create () in
  let cands = IntTbl.create 64 in
  let dcount = Hashtbl.create 1024 and rcount = Hashtbl.create 1024 in
  let dlids = Hashtbl.create 64 and rlids = Hashtbl.create 64 in
  let sched counts lids key =
    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts key) in
    Hashtbl.replace counts key c;
    if c = 2 then begin
      Hashtbl.add lids key t.next_lid;
      t.next_lid <- t.next_lid + 1
    end
  in
  Array.iter
    (fun (ld, enc) ->
      let remap = Rdf.Dictionary.remap_into ~global:t.dict ld in
      for i = 0 to (Array.length enc / 3) - 1 do
        let s = remap.(enc.(3 * i))
        and p = remap.(enc.((3 * i) + 1))
        and o = remap.(enc.((3 * i) + 2)) in
        if not (Hashtbl.mem t.seen (s, p, o)) then begin
          Hashtbl.add t.seen (s, p, o) ();
          Ivec.push vs s;
          Ivec.push vp p;
          Ivec.push vo o;
          if not (IntTbl.mem cands p) then begin
            let str = pred_uri (Rdf.Dictionary.term_of t.dict p) in
            let of_map m =
              match Pred_map.candidates m str with [] -> [ 0 ] | cs -> cs
            in
            IntTbl.add cands p
              (of_map t.direct.pred_map, of_map t.reverse.pred_map)
          end;
          sched dcount dlids (s, p);
          sched rcount rlids (o, p);
          Dataset_stats.record t.stats ~s ~p ~o;
          t.triples_loaded <- t.triples_loaded + 1
        end
      done)
    deltas;
  let nd = vs.Ivec.len in
  (* Partition the deduped triples by entity, per side. *)
  let nparts = max 1 (4 * domains) in
  let dparts = Array.init nparts (fun _ -> Ivec.create ()) in
  let rparts = Array.init nparts (fun _ -> Ivec.create ()) in
  for j = 0 to nd - 1 do
    Ivec.push dparts.(vs.Ivec.a.(j) mod nparts) j;
    Ivec.push rparts.(vo.Ivec.a.(j) mod nparts) j
  done;
  let t_merge = now () in
  (* -------- phase 3: assemble -------- *)
  let frags =
    Array.init (2 * nparts) (fun _ ->
        { frows = []; fds = []; fmv = IntTbl.create 16; fsp = IntTbl.create 16;
          fpc = Hashtbl.create 16 })
  in
  ignore
    (Relsql.Dpool.run pool ~morsels:(2 * nparts) (fun ~worker:_ m ->
         let direct = m < nparts in
         let part = if direct then m else m - nparts in
         let st = if direct then t.direct else t.reverse in
         let lids = if direct then dlids else rlids in
         let idxs = (if direct then dparts else rparts).(part) in
         let frag = frags.(m) in
         let ents = IntTbl.create 256 in
         for i = 0 to idxs.Ivec.len - 1 do
           let j = idxs.Ivec.a.(i) in
           let s = vs.Ivec.a.(j) and p = vp.Ivec.a.(j) and o = vo.Ivec.a.(j) in
           let dc, rc = IntTbl.find cands p in
           let entity, value, cs =
             if direct then (s, Relsql.Value.Int o, dc)
             else (o, Relsql.Value.Int s, rc)
           in
           sim_insert st ents frag lids ~seq:j ~entity ~pred_id:p ~cands:cs
             ~value
         done;
         IntTbl.iter
           (fun entity e ->
             if e.sspilled then
               List.iter
                 (fun (_, arr) -> arr.(st.pos.spill_pos) <- Relsql.Value.Int 1)
                 e.srows;
             List.iter
               (fun (seq, arr) -> frag.frows <- (seq, entity, arr) :: frag.frows)
               e.srows)
           ents));
  (* Write each side's fragments into its tables in sequence-key order
     (the two sides are independent and run as a 2-morsel job). *)
  let finish st side_frags =
    let row_slot = Array.make (max nd 1) None in
    let ds_slot = Array.make (max (2 * nd) 1) None in
    Array.iter
      (fun frag ->
        List.iter
          (fun (seq, e, arr) -> row_slot.(seq) <- Some (e, arr))
          frag.frows;
        List.iter (fun (key, lid, elm) -> ds_slot.(key) <- Some (lid, elm)) frag.fds;
        IntTbl.iter (fun p () -> IntTbl.replace st.multivalued p ()) frag.fmv;
        IntTbl.iter (fun p () -> IntTbl.replace st.spill_preds p ()) frag.fsp;
        Hashtbl.iter (fun (p, c) () -> record_placed st ~pred_id:p c) frag.fpc)
      side_frags;
    for seq = 0 to nd - 1 do
      (match row_slot.(seq) with
       | Some (e, arr) ->
         let rid = Relsql.Table.insert st.primary arr in
         (match IntTbl.find_opt st.entity_rows e with
          | Some r ->
            r := !r @ [ rid ];
            st.spill_rows <- st.spill_rows + 1
          | None ->
            st.entities <- st.entities + 1;
            IntTbl.add st.entity_rows e (ref [ rid ]))
       | None -> ());
      (match ds_slot.(2 * seq) with
       | Some (lid, elm) ->
         ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; elm |])
       | None -> ());
      match ds_slot.((2 * seq) + 1) with
      | Some (lid, elm) ->
        ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; elm |])
      | None -> ()
    done
  in
  ignore
    (Relsql.Dpool.run pool ~morsels:2 (fun ~worker:_ m ->
         if m = 0 then finish t.direct (Array.sub frags 0 nparts)
         else finish t.reverse (Array.sub frags nparts nparts)));
  let t_done = now () in
  (before, n_morsels, t_enc -. t0, t_merge -. t_enc, t_done -. t_merge)

(** Bulk load. [domains > 1] runs the morsel-parallel pipeline above on
    a fresh store (the result is bit-identical to the sequential path);
    [domains = 1], a non-empty store, or an empty input take the
    unchanged sequential route. [parse_s] lets callers fold the time
    they spent parsing the input into the reported {!load_stats}. *)
let load ?(domains = 1) ?(parse_s = 0.0) t triples =
  let t0 = Unix.gettimeofday () in
  let n_in = List.length triples in
  let fresh =
    Relsql.Table.slot_count t.direct.primary = 0
    && Relsql.Table.slot_count t.reverse.primary = 0
  in
  if domains <= 1 || not fresh || n_in = 0 then begin
    let before = t.triples_loaded in
    List.iter (insert t) triples;
    let dt = Unix.gettimeofday () -. t0 in
    t.last_load <-
      Some
        { domains_used = 1; morsels = 1; triples_in = n_in;
          triples_new = t.triples_loaded - before; parse_s; encode_s = 0.0;
          merge_s = 0.0; assemble_s = dt; total_s = parse_s +. dt }
  end
  else begin
    let before, morsels, encode_s, merge_s, assemble_s =
      load_parallel t ~domains triples n_in
    in
    t.last_load <-
      Some
        { domains_used = domains; morsels; triples_in = n_in;
          triples_new = t.triples_loaded - before; parse_s; encode_s;
          merge_s; assemble_s;
          total_s = parse_s +. encode_s +. merge_s +. assemble_s }
  end

(* Locate the (row, candidate column) currently holding [pred_id] for an
   entity; the insertion procedure guarantees at most one. *)
let find_placement st ~entity ~pred_id =
  match IntTbl.find_opt st.entity_rows entity with
  | None -> None
  | Some rows ->
    let cands =
      (* Any candidate list the mapping may have used; we must check all
         columns because the predicate string is not available here —
         scanning the (few) pairs of the entity's rows is exact. *)
      List.init st.k (fun c -> c)
    in
    List.find_map
      (fun rid ->
        List.find_map
          (fun c ->
            if
              Relsql.Table.cell st.primary rid st.pos.pred_pos.(c)
              = Relsql.Value.Int pred_id
            then Some (rid, c)
            else None)
          cands)
      !rows

let delete_side st ~entity ~pred_id ~value =
  match find_placement st ~entity ~pred_id with
  | None -> ()
  | Some (rid, c) ->
    (* [find_placement] only returns rows reached through
       [entity_rows], so the list ref is present. *)
    let rows = IntTbl.find st.entity_rows entity in
    let vpos = st.pos.val_pos.(c) in
    let clear_pair rid =
      let rid = set_primary st rows rid st.pos.pred_pos.(c) Relsql.Value.Null in
      ignore (set_primary st rows rid vpos Relsql.Value.Null)
    in
    (match Relsql.Table.cell st.primary rid vpos with
     | Relsql.Value.Lid lid ->
       (* Remove one matching element from the secondary relation; when
          the list empties, clear the primary cell pair. *)
       let rids = Relsql.Table.lookup st.secondary 0 (Relsql.Value.Lid lid) in
       (match
          Array.find_opt
            (fun r -> Relsql.Table.cell st.secondary r 1 = value)
            rids
        with
        | Some r -> Relsql.Table.delete_row st.secondary r
        | None -> ());
       if Relsql.Table.lookup st.secondary 0 (Relsql.Value.Lid lid) = [||] then
         clear_pair rid
     | v when v = value -> clear_pair rid
     | _ -> () (* value mismatch: the triple is not in the store *))

(** Delete one triple (no-op when absent). Spill rows and registry
    entries are left in place — they only make the translator more
    conservative. *)
let delete t (tr : Rdf.Triple.t) =
  match
    ( Rdf.Dictionary.find t.dict tr.s,
      Rdf.Dictionary.find t.dict tr.p,
      Rdf.Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o when Hashtbl.mem t.seen (s, p, o) ->
    Hashtbl.remove t.seen (s, p, o);
    delete_side t.direct ~entity:s ~pred_id:p ~value:(Relsql.Value.Int o);
    delete_side t.reverse ~entity:o ~pred_id:p ~value:(Relsql.Value.Int s);
    Dataset_stats.unrecord t.stats ~s ~p ~o;
    t.triples_loaded <- t.triples_loaded - 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Query-support accessors                                             *)
(* ------------------------------------------------------------------ *)

(** Candidate columns for predicate [p] (by id) on a side. *)
let candidate_columns t which ~pred_term =
  let st = side t which in
  let cands = Pred_map.candidates st.pred_map (pred_uri pred_term) in
  if cands = [] then [ 0 ] else cands

(** Columns that actually hold data for predicate [pred_id] on a side:
    unlike {!candidate_columns} (every column the mapping {e could} use,
    including hash fallbacks the data never reached) this is the set of
    columns a value was really written into. Conservative after deletes
    — a column stays listed once used — which only ever widens the set. *)
let storage_columns t which ~pred_id =
  match IntTbl.find_opt (side t which).placed pred_id with
  | None -> []
  | Some cols -> List.sort Int.compare (IntTbl.fold (fun c () acc -> c :: acc) cols [])

let is_multivalued t which ~pred_id =
  IntTbl.mem (side t which).multivalued pred_id

let is_spill_involved t which ~pred_id =
  IntTbl.mem (side t which).spill_preds pred_id

let column_count t which = (side t which).k

(* ------------------------------------------------------------------ *)
(* Canonical store dump (equality-test support)                        *)
(* ------------------------------------------------------------------ *)

let sorted_keys tbl =
  List.sort Int.compare (IntTbl.fold (fun k () acc -> k :: acc) tbl [])

(** Predicate ids with any lid value on a side, sorted. *)
let multivalued_predicates t which = sorted_keys (side t which).multivalued

(** Predicate ids stored on spill rows on a side, sorted. *)
let spill_predicates t which = sorted_keys (side t which).spill_preds

(** Canonical textual rendering of everything the store owns: the
    dictionary in id order, every relation's live rows in insertion
    order (row ids included), both sides' registries and bookkeeping,
    and the lid counter. Two loads that produce equal dumps built
    bit-identical stores — row ids, index posting order, lids, spill
    flags, coloring-dependent column placement, all of it. The seq≡par
    equality tests and [rdfstore load --verify] compare these. *)
let dump_store t =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "== dictionary ==\n";
  Rdf.Dictionary.iter
    (fun id term ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%s\n" id (Rdf.Term.to_string term)))
    t.dict;
  let dump_table name =
    match Relsql.Database.find t.db name with
    | None -> ()
    | Some tbl ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" name);
      Relsql.Table.iter
        (fun rid row ->
          Buffer.add_string buf (string_of_int rid);
          Array.iter
            (fun v ->
              Buffer.add_char buf '\t';
              Buffer.add_string buf (Relsql.Value.to_string v))
            row;
          Buffer.add_char buf '\n')
        tbl
  in
  List.iter dump_table [ "DPH"; "DS"; "RPH"; "RS"; Dict_table.table_name ];
  let dump_side label st =
    let ints l = String.concat "," (List.map string_of_int l) in
    Buffer.add_string buf
      (Printf.sprintf
         "== %s ==\nmultivalued:%s\nspill_preds:%s\nspill_rows:%d\nentities:%d\n"
         label
         (ints (sorted_keys st.multivalued))
         (ints (sorted_keys st.spill_preds))
         st.spill_rows st.entities);
    IntTbl.fold (fun e rows acc -> (e, !rows) :: acc) st.entity_rows []
    |> List.sort compare
    |> List.iter (fun (e, rows) ->
           Buffer.add_string buf (Printf.sprintf "entity %d:%s\n" e (ints rows)))
  in
  dump_side "direct" t.direct;
  dump_side "reverse" t.reverse;
  Buffer.add_string buf
    (Printf.sprintf "next_lid:%d\ntriples:%d\n" t.next_lid t.triples_loaded);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reporting (Section 2.3 numbers)                                     *)
(* ------------------------------------------------------------------ *)

type side_report = {
  rows : int;
  spills : int;
  distinct_entities : int;
  null_fraction : float;
  storage_bytes : int;
}

let report t which : side_report =
  let st = side t which in
  let val_positions = Array.to_list st.pos.val_pos
  and pred_positions = Array.to_list st.pos.pred_pos in
  {
    rows = Relsql.Table.row_count st.primary;
    spills = st.spill_rows;
    distinct_entities = st.entities;
    null_fraction =
      Relsql.Table.null_fraction st.primary (val_positions @ pred_positions);
    storage_bytes =
      Relsql.Table.storage_size st.primary
      + Relsql.Table.storage_size st.secondary;
  }
