lib/core/merge.ml: Cost Exec_tree List Option Printf Rdf Sparql String
