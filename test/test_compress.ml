(** Compressed columnar storage: Packed encode/decode round-trips, SWAR
    equality scans, zone-map soundness, RLE postings, freeze/thaw
    invariants — and the load-bearing property: bit-identical results
    between the compressed and uncompressed executors across the full
    (domains × join-partitions) matrix on three table layouts. *)

let value_eq a b = Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Packed: encode/decode                                               *)
(* ------------------------------------------------------------------ *)

(** A mixed-type matrix spanning several zone blocks: NULLs, bools,
    small and negative ints, floats (including NaN and int-twins),
    strings and lids. *)
let mixed_cell rid pos =
  let open Relsql.Value in
  match pos with
  | 0 -> if rid mod 11 = 0 then Null else Int (rid mod 7)
  | 1 -> (
    match rid mod 5 with
    | 0 -> Real (float_of_int (rid mod 13))
    | 1 -> Real Float.nan
    | 2 -> Real (-2.5)
    | 3 -> Int (rid mod 13)
    | _ -> Null)
  | 2 -> Str (Printf.sprintf "s%d" (rid mod 17))
  | 3 -> if rid mod 3 = 0 then Bool (rid mod 2 = 0) else Lid (rid mod 9)
  | _ -> Int (-rid)

let mixed_pack ?(nrows = 2500) () =
  Relsql.Packed.pack ~ncols:5 ~nrows mixed_cell ~live:(fun _ -> true)

let test_pack_roundtrip () =
  let nrows = 2500 in
  let pk = mixed_pack ~nrows () in
  Alcotest.(check int) "nrows" nrows (Relsql.Packed.nrows pk);
  Alcotest.(check int) "ncols" 5 (Relsql.Packed.ncols pk);
  for rid = 0 to nrows - 1 do
    for pos = 0 to 4 do
      let want = mixed_cell rid pos in
      let got = Relsql.Packed.cell pk rid pos in
      if not (value_eq want got) then
        Alcotest.failf "cell (%d,%d): want %s got %s" rid pos
          (Relsql.Value.to_string want)
          (Relsql.Value.to_string got)
    done
  done;
  (* row and read_cols agree with cell *)
  let dst = Array.make 5 Relsql.Value.Null in
  for rid = 0 to nrows - 1 do
    let row = Relsql.Packed.row pk rid in
    Relsql.Packed.read_cols pk rid [| 0; 2; 4 |] dst;
    List.iter
      (fun pos ->
        if not (value_eq row.(pos) (Relsql.Packed.cell pk rid pos)) then
          Alcotest.failf "row (%d,%d) disagrees with cell" rid pos;
        if not (value_eq dst.(pos) row.(pos)) then
          Alcotest.failf "read_cols (%d,%d) disagrees with row" rid pos)
      [ 0; 2; 4 ]
  done

let test_pack_width_and_size () =
  (* A constant column needs exactly one bit per row (code 1, no NULL). *)
  let pk1 =
    Relsql.Packed.pack ~ncols:1 ~nrows:4096
      (fun _ _ -> Relsql.Value.Str "only")
      ~live:(fun _ -> true)
  in
  Alcotest.(check int) "constant column packs to 1 bit" 1
    (Relsql.Packed.col_bits pk1 0);
  (* A repetitive table is much smaller packed than boxed. *)
  let pk = mixed_pack () in
  Alcotest.(check bool) "packed_words < boxed_words" true
    (Relsql.Packed.packed_words pk < Relsql.Packed.boxed_words pk)

(* ------------------------------------------------------------------ *)
(* Packed: SWAR equality scan                                          *)
(* ------------------------------------------------------------------ *)

(** [iter_eq] over every probe constant and several [lo,hi) windows must
    select exactly the rows a compiled [col = const] predicate keeps. *)
let check_iter_eq_vs_pred pk layout pos const =
  let open Relsql.Sql_ast in
  let e = Binop (Eq, Col (None, snd layout.(pos)), Const const) in
  let keep = Relsql.Expr_eval.compile_pred layout e in
  let nrows = Relsql.Packed.nrows pk in
  let scratch = Array.make (Relsql.Packed.ncols pk) Relsql.Value.Null in
  let naive lo hi =
    let acc = ref [] in
    for rid = hi - 1 downto lo do
      Relsql.Packed.read_cols pk rid
        (Array.init (Relsql.Packed.ncols pk) Fun.id)
        scratch;
      if keep scratch then acc := rid :: !acc
    done;
    !acc
  in
  match Relsql.Packed.eq_codes pk pos const with
  | None -> () (* no exact code set; the executor falls back to [keep] *)
  | Some codes ->
    let codes = Array.of_list codes in
    List.iter
      (fun (lo, hi) ->
        let got = ref [] in
        Relsql.Packed.iter_eq pk pos codes lo hi (fun rid ->
            (* iter_eq over-approximates per word; confirm like the
               executor does, through the compiled predicate. *)
            Relsql.Packed.read_cols pk rid
              (Array.init (Relsql.Packed.ncols pk) Fun.id)
              scratch;
            if keep scratch then got := rid :: !got);
        Alcotest.(check (list int))
          (Printf.sprintf "iter_eq %s [%d,%d)"
             (Relsql.Value.to_string const) lo hi)
          (naive lo hi) (List.rev !got))
      [ (0, nrows); (0, min 100 nrows); (nrows / 3, (2 * nrows) / 3); (7, 8) ]

let test_iter_eq_matches_naive () =
  let pk = mixed_pack () in
  let layout : Relsql.Expr_eval.layout =
    [| (None, "a"); (None, "b"); (None, "c"); (None, "d"); (None, "e") |]
  in
  let open Relsql.Value in
  List.iter
    (fun (pos, const) -> check_iter_eq_vs_pred pk layout pos const)
    [ (0, Int 3);
      (0, Int 99) (* absent *);
      (1, Real 4.0) (* matches both Real 4.0 and Int 4 cells *);
      (1, Int 4);
      (1, Real (-2.5));
      (1, Real Float.nan);
      (1, Real 1e300) (* beyond exact-int range *);
      (2, Str "s3");
      (2, Str "nope");
      (3, Bool true);
      (3, Lid 5) ]

let test_iter_eq_one_bit_column () =
  (* Width-1 columns take the [y <> ones] SWAR special case. *)
  let pk =
    Relsql.Packed.pack ~ncols:1 ~nrows:200
      (fun rid _ ->
        if rid mod 3 = 0 then Relsql.Value.Null else Relsql.Value.Int 42)
      ~live:(fun _ -> true)
  in
  Alcotest.(check int) "one bit" 1 (Relsql.Packed.col_bits pk 0);
  match Relsql.Packed.eq_codes pk 0 (Relsql.Value.Int 42) with
  | None -> Alcotest.fail "eq_codes on 1-bit column"
  | Some codes ->
    let codes = Array.of_list codes in
    let n = ref 0 in
    Relsql.Packed.iter_eq pk 0 codes 0 200 (fun rid ->
        Alcotest.(check bool) "only non-null rids" true (rid mod 3 <> 0);
        incr n);
    Alcotest.(check int) "all 42-rows visited" (200 - 67) !n

(* ------------------------------------------------------------------ *)
(* Packed: zone maps                                                   *)
(* ------------------------------------------------------------------ *)

(** Soundness: a block the compiled zone filter rejects must contain no
    row satisfying the predicate — checked over comparison, NULL and
    IN-list shapes, against a column that hides NaN in one block. *)
let test_zone_filter_sound () =
  let nrows = 4 * Relsql.Packed.block_rows in
  let cell rid _ =
    let block = rid / Relsql.Packed.block_rows in
    match block with
    | 0 -> Relsql.Value.Real (float_of_int (rid mod 50))
    | 1 -> Relsql.Value.Int (1000 + (rid mod 50))
    | 2 ->
      if rid mod 97 = 0 then Relsql.Value.Real Float.nan
      else Relsql.Value.Real (float_of_int (2000 + (rid mod 50)))
    | _ -> if rid mod 2 = 0 then Relsql.Value.Null else Relsql.Value.Str "zzz"
  in
  let pk = Relsql.Packed.pack ~ncols:1 ~nrows cell ~live:(fun _ -> true) in
  let layout : Relsql.Expr_eval.layout = [| (None, "x") |] in
  let open Relsql.Sql_ast in
  let x = Col (None, "x") in
  let exprs =
    [ Binop (Lt, x, Const (Relsql.Value.Real 0.));
      Binop (Gt, x, Const (Relsql.Value.Int 1999));
      Binop (Leq, Const (Relsql.Value.Int 1000), x);
      Binop (Eq, x, Const (Relsql.Value.Real 25.));
      Is_null x;
      Is_not_null x;
      In_list (x, [ Relsql.Value.Int 1010; Relsql.Value.Str "zzz" ]);
      Binop
        ( And,
          Binop (Geq, x, Const (Relsql.Value.Int 0)),
          Binop (Lt, x, Const (Relsql.Value.Int 100)) ) ]
  in
  let scratch = Array.make 1 Relsql.Value.Null in
  List.iter
    (fun e ->
      let zone_ok = Relsql.Packed.compile_zone_filter pk layout e in
      let keep = Relsql.Expr_eval.compile_pred layout e in
      let pruned = ref 0 in
      for bi = 0 to Relsql.Packed.block_count pk - 1 do
        if not (zone_ok bi) then begin
          incr pruned;
          let lo = bi * Relsql.Packed.block_rows in
          let hi = min nrows (lo + Relsql.Packed.block_rows) in
          for rid = lo to hi - 1 do
            scratch.(0) <- Relsql.Packed.cell pk rid 0;
            if keep scratch then
              Alcotest.failf "zone filter pruned a matching row %d" rid
          done
        end
      done;
      ignore !pruned)
    exprs;
  (* and at least one of those predicates actually prunes something *)
  let zone_ok =
    Relsql.Packed.compile_zone_filter pk layout
      (Binop (Gt, x, Const (Relsql.Value.Int 5000)))
  in
  Alcotest.(check bool) "x > 5000 prunes the first block" false (zone_ok 0)

let test_eq_prefilter () =
  let pk = mixed_pack () in
  let layout : Relsql.Expr_eval.layout =
    [| (None, "a"); (None, "b"); (None, "c"); (None, "d"); (None, "e") |]
  in
  let open Relsql.Sql_ast in
  (* top-level conjunct with an equality over a dictionary column *)
  let e =
    Binop
      ( And,
        Binop (Eq, Col (None, "c"), Const (Relsql.Value.Str "s3")),
        Is_not_null (Col (None, "a")) )
  in
  (match Relsql.Packed.eq_prefilter pk layout e with
   | None -> Alcotest.fail "prefilter should fire on c = 's3'"
   | Some (pos, codes) ->
     Alcotest.(check int) "prefilter picks column c" 2 pos;
     Alcotest.(check bool) "non-empty code set" true (Array.length codes > 0));
  (* an equality that can never match proves the scan empty *)
  match
    Relsql.Packed.eq_prefilter pk layout
      (Binop (Eq, Col (None, "c"), Const (Relsql.Value.Str "missing")))
  with
  | Some (_, [||]) -> ()
  | Some _ -> Alcotest.fail "absent constant should yield empty codes"
  | None -> Alcotest.fail "prefilter should resolve absent constants"

(* ------------------------------------------------------------------ *)
(* Table: freeze / thaw / postings                                     *)
(* ------------------------------------------------------------------ *)

let make_keyed_table () =
  let db = Relsql.Database.create "t" in
  let t = Relsql.Database.create_table db "T" (Relsql.Schema.make [ "k"; "v" ]) in
  Relsql.Table.create_index_on t "k";
  (* keys in sorted runs so the postings are RLE-compressible *)
  for k = 0 to 2 do
    for i = 0 to 999 do
      ignore
        (Relsql.Table.insert t
           [| Relsql.Value.Int k; Relsql.Value.Int (i mod 10) |])
    done
  done;
  t

let test_freeze_postings_roundtrip () =
  let t = make_keyed_table () in
  let want =
    List.map (fun k -> Relsql.Table.lookup t 0 (Relsql.Value.Int k)) [ 0; 1; 2 ]
  in
  Relsql.Table.freeze t;
  Alcotest.(check bool) "frozen" true (Relsql.Table.frozen t);
  List.iteri
    (fun k w ->
      Alcotest.(check (array int))
        (Printf.sprintf "lookup k=%d survives freeze" k)
        w
        (Relsql.Table.lookup t 0 (Relsql.Value.Int k));
      let via_iter = ref [] in
      Relsql.Table.lookup_iter t 0 (Relsql.Value.Int k) (fun rid ->
          via_iter := rid :: !via_iter);
      Alcotest.(check (list int)) "lookup_iter agrees" (Array.to_list w)
        (List.rev !via_iter))
    want;
  (* the report shows run-compressed postings and a real size win *)
  let r = Relsql.Table.compression_report t in
  Alcotest.(check bool) "report frozen" true r.Relsql.Table.r_frozen;
  Alcotest.(check bool) "posting words < entries" true
    (r.Relsql.Table.r_posting_words < r.Relsql.Table.r_posting_entries);
  Alcotest.(check bool) "packed bytes < boxed bytes" true
    (r.Relsql.Table.r_packed_bytes < r.Relsql.Table.r_boxed_bytes)

let test_freeze_thaw_invariants () =
  let t = make_keyed_table () in
  let v0 = Relsql.Table.version t and e0 = Relsql.Table.enc_epoch t in
  let row_before = Array.copy (Relsql.Table.get t 1234) in
  Relsql.Table.freeze t;
  Alcotest.(check int) "freeze keeps version" v0 (Relsql.Table.version t);
  Alcotest.(check bool) "freeze bumps enc_epoch" true
    (Relsql.Table.enc_epoch t > e0);
  Alcotest.(check bool) "packed_view present" true
    (Relsql.Table.packed_view t <> None);
  Alcotest.(check bool) "frozen reads match"
    true
    (value_eq (Array.to_list row_before)
       (Array.to_list (Relsql.Table.get t 1234)));
  (* delete while frozen: the packed main stays resident — the delete
     punches a tombstone into the alive bitmap instead of thawing and
     re-encoding (delta-main storage), and the write is visible in the
     delta accounting for [rdfstore stats] reporting *)
  let live0 = Relsql.Table.row_count t in
  let e_frozen = Relsql.Table.enc_epoch t in
  let d_frozen = Relsql.Table.delta_epoch t in
  Alcotest.(check int) "no thaws yet" 0 (Relsql.Table.thaw_count t);
  Relsql.Table.delete_row t 42;
  Alcotest.(check bool) "delete keeps the table frozen" true
    (Relsql.Table.frozen t);
  Alcotest.(check int) "delete does not thaw" 0 (Relsql.Table.thaw_count t);
  Alcotest.(check int) "delete keeps enc_epoch" e_frozen
    (Relsql.Table.enc_epoch t);
  Alcotest.(check bool) "delete bumps delta_epoch" true
    (Relsql.Table.delta_epoch t > d_frozen);
  Alcotest.(check int) "tombstone counted" 1
    (Relsql.Table.main_tombstones t);
  Alcotest.(check int) "row_count drops" (live0 - 1)
    (Relsql.Table.row_count t);
  Alcotest.(check bool) "deleted rid filtered from lookup" false
    (Array.exists (( = ) 42) (Relsql.Table.lookup t 0 (Relsql.Value.Int 0)));
  Alcotest.(check bool) "frozen reads match after delete" true
    (value_eq (Array.to_list row_before)
       (Array.to_list (Relsql.Table.get t 1234)));
  (* insert on a frozen table appends to the boxed delta side *)
  let e1 = Relsql.Table.enc_epoch t in
  let rid = Relsql.Table.insert t [| Relsql.Value.Int 7; Relsql.Value.Null |] in
  Alcotest.(check bool) "insert keeps the table frozen" true
    (Relsql.Table.frozen t);
  Alcotest.(check int) "insert does not thaw" 0 (Relsql.Table.thaw_count t);
  Alcotest.(check int) "insert keeps enc_epoch" e1
    (Relsql.Table.enc_epoch t);
  Alcotest.(check int) "insert lands delta-side" 1
    (Relsql.Table.delta_rows t);
  Alcotest.(check bool) "delta rid beyond the packed main" true
    (rid >= Relsql.Table.main_slots t);
  Alcotest.(check bool) "frozen reads match" true
    (value_eq (Array.to_list row_before)
       (Array.to_list (Relsql.Table.get t 1234)));
  Alcotest.(check (array int)) "new key indexed" [| rid |]
    (Relsql.Table.lookup t 0 (Relsql.Value.Int 7));
  (* merge folds the delta back into a fresh packed main *)
  let live1 = Relsql.Table.row_count t in
  Relsql.Table.merge t;
  Alcotest.(check bool) "still frozen after merge" true
    (Relsql.Table.frozen t);
  Alcotest.(check int) "merge empties the delta" 0
    (Relsql.Table.delta_rows t + Relsql.Table.main_tombstones t);
  Alcotest.(check int) "merge counted" 1 (Relsql.Table.merge_count t);
  Alcotest.(check int) "merge does not count as a thaw" 0
    (Relsql.Table.thaw_count t);
  Alcotest.(check int) "merge preserves row_count" live1
    (Relsql.Table.row_count t);
  Alcotest.(check bool) "reads match after merge" true
    (value_eq (Array.to_list row_before)
       (Array.to_list (Relsql.Table.get t 1234)));
  Alcotest.(check bool) "new key still indexed post-merge" true
    (Array.length (Relsql.Table.lookup t 0 (Relsql.Value.Int 7)) = 1);
  (* explicit thaw still works, and double freeze is a no-op *)
  Relsql.Table.thaw t;
  Alcotest.(check bool) "explicit thaw works" false (Relsql.Table.frozen t);
  Alcotest.(check int) "explicit thaw counted" 1 (Relsql.Table.thaw_count t);
  Relsql.Table.freeze t;
  Relsql.Table.freeze t;
  Alcotest.(check bool) "re-frozen" true (Relsql.Table.frozen t)

(* ------------------------------------------------------------------ *)
(* Executor: compressed ≡ uncompressed matrix                          *)
(* ------------------------------------------------------------------ *)

let with_tiny_morsels f =
  let saved = !Relsql.Executor.par_min_rows in
  Relsql.Executor.par_min_rows := 2;
  Fun.protect
    ~finally:(fun () -> Relsql.Executor.par_min_rows := saved)
    f

let batch_strings b =
  List.map
    (fun row ->
      String.concat "\t"
        (List.map Relsql.Value.to_string (Array.to_list row)))
    (Relsql.Batch.to_rows b)

(** Run every query uncompressed (sequential) for a baseline, freeze the
    whole database, and demand row-for-row, order-included equality at
    every (domains, join-partitions) combination. *)
let check_matrix name ~layout triples queries =
  with_tiny_morsels (fun () ->
      let e, _, _ = Db2rdf.Engine.create_colored ~layout triples in
      let db = Db2rdf.Loader.database (Db2rdf.Engine.loader e) in
      let stmts =
        List.map
          (fun (n, src) ->
            (n, Db2rdf.Engine.translate e (Sparql.Parser.parse src)))
          queries
      in
      let baseline =
        List.map
          (fun (n, stmt) ->
            (n, batch_strings (Relsql.Executor.run ~domains:1 db stmt)))
          stmts
      in
      Relsql.Database.freeze_all db;
      List.iter
        (fun domains ->
          List.iter
            (fun parts ->
              List.iter2
                (fun (n, stmt) (_, expect) ->
                  let got =
                    batch_strings
                      (Relsql.Executor.run ~domains ~join_partitions:parts db
                         stmt)
                  in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s/%s: compressed d=%d p=%d ≡ boxed" name
                       n domains parts)
                    expect got)
                stmts baseline)
            [ 1; 4; 16 ])
        [ 1; 2; 4 ])

let par_queries =
  [ ("scan", "SELECT ?s ?o WHERE { ?s ?p ?o }");
    ("sort", "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s");
    ("sort-window",
     "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY DESC(?o) LIMIT 37 OFFSET 11");
    ("distinct", "SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
    ("join",
     "SELECT ?a ?b ?v WHERE { ?a <http://microbench.org/SV1> ?b . \
      ?a <http://microbench.org/SV2> ?v }");
    ("group-count",
     "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p");
    ("group-distinct",
     "SELECT ?p (COUNT(DISTINCT ?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p");
    ("global-count", "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }") ]

let test_matrix_fig1 () =
  check_matrix "fig1"
    ~layout:(Db2rdf.Layout.make ~dph_cols:4 ~rph_cols:4)
    (Helpers.fig1_triples ())
    [ ("scan", "SELECT ?s ?o WHERE { ?s ?p ?o }");
      ("founder", "SELECT ?x ?y WHERE { ?x <founder> ?y }");
      ("fig6", Helpers.fig6_query_src);
      ( "star",
        "SELECT ?x ?i WHERE { ?x <industry> ?i . ?x <employees> ?e }" ) ]

let test_matrix_micro () =
  let triples = Workloads.Micro.generate ~scale:2_000 in
  check_matrix "micro"
    ~layout:(Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8)
    triples
    (par_queries @ Workloads.Micro.queries)

let test_matrix_spill () =
  (* 3-column hash relations force heavy spill chains (Section 2.1's
     worst case) — the packed path must reproduce them exactly. *)
  let triples = Workloads.Micro.generate ~scale:1_500 in
  check_matrix "spill"
    ~layout:(Db2rdf.Layout.make ~dph_cols:3 ~rph_cols:3)
    triples par_queries

(* ------------------------------------------------------------------ *)
(* Fuzz: compressed backends vs the reference evaluator                *)
(* ------------------------------------------------------------------ *)

(** Fixed-seed differential sweep with compressed storage on every
    backend (the oracle never compresses, so agreement is exactly the
    boxed ≡ packed property over random graphs and queries). *)
let test_fuzz_sweep_compressed () =
  let config =
    { Fuzz.Runner.default_config with
      seed = 4242;
      cases = 60;
      domains = 2;
      compressed = true
    }
  in
  let s = Fuzz.Runner.fuzz config in
  Alcotest.(check int) "no divergences with compression" 0
    s.Fuzz.Runner.divergent;
  Alcotest.(check int) "all cases ran" 60 s.Fuzz.Runner.cases_run

(** Replay the committed reproducer corpus against compressed stores. *)
let test_corpus_replay_compressed () =
  let files =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Fuzz.Repro.read (Filename.concat "corpus" f) in
      match Fuzz.Runner.check_repro ~compressed:true r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s (compressed): %s" f msg)
    files

let suite =
  [ Alcotest.test_case "packed: round-trip all types" `Quick
      test_pack_roundtrip;
    Alcotest.test_case "packed: widths and size win" `Quick
      test_pack_width_and_size;
    Alcotest.test_case "packed: iter_eq ≡ naive predicate" `Quick
      test_iter_eq_matches_naive;
    Alcotest.test_case "packed: iter_eq one-bit column" `Quick
      test_iter_eq_one_bit_column;
    Alcotest.test_case "packed: zone filter soundness (incl. NaN)" `Quick
      test_zone_filter_sound;
    Alcotest.test_case "packed: equality prefilter" `Quick test_eq_prefilter;
    Alcotest.test_case "table: RLE postings survive freeze" `Quick
      test_freeze_postings_roundtrip;
    Alcotest.test_case "table: freeze/thaw invariants" `Quick
      test_freeze_thaw_invariants;
    Alcotest.test_case "matrix: fig1 compressed ≡ boxed" `Quick
      test_matrix_fig1;
    Alcotest.test_case "matrix: micro compressed ≡ boxed" `Slow
      test_matrix_micro;
    Alcotest.test_case "matrix: spill-heavy compressed ≡ boxed" `Slow
      test_matrix_spill;
    Alcotest.test_case "fuzz sweep with compressed storage" `Slow
      test_fuzz_sweep_compressed;
    Alcotest.test_case "corpus replay with compressed storage" `Quick
      test_corpus_replay_compressed ]
