(** The DB2RDF engine facade: create a store (optionally bulk-loading
    with graph coloring), load triples, and evaluate SPARQL through the
    full pipeline of the paper — parse tree → data flow → optimal flow
    tree → execution tree (late fusing) → merged query plan → SQL →
    relational execution. *)

(** Optimizer knobs (all on by default); each is an ablation axis in
    the benchmarks. *)
type options = {
  optimize : bool;  (** hybrid optimizer on (best flow) vs naive (worst) *)
  merge : bool;  (** star merging in the translator *)
  late_fuse : bool;  (** late fusing in the query plan builder *)
  parallelism : int;
      (** domains the executor may spread hot operators over
          (1 = sequential) *)
  load_domains : int;
      (** domains for the bulk loader's morsel pipeline (1 = the
          untouched sequential path; the result is bit-identical) *)
  join_partitions : int;
      (** radix partitions for parallel hash-join builds (rounded up
          to a power of two by the executor; 0 = auto, sized from the
          domain count at execution time; results are bit-identical
          for every setting) *)
  compress : bool;
      (** freeze tables into bit-packed columnar storage after bulk
          load (zone maps + word-at-a-time scans); purely physical,
          results are bit-identical *)
  merge_threshold : float;
      (** under [compress], re-pack a frozen table after a write
          statement only once its boxed delta side (rows + main
          tombstones) exceeds this fraction of the packed main (with a
          small absolute floor; default 0.25); writes between merges
          stay delta-resident, see {!merge}. 0.0 merges after every
          write statement; results are bit-identical at any setting *)
  wcoj : bool;
      (** allow the worst-case-optimal (leapfrog) multiway join:
          eligible conjunctive queries translate to the flat join form
          and the planner picks between the binary join tree and the
          leapfrog operator from characteristic-set statistics; purely
          a plan-shape knob, results are bit-identical *)
  extvp : bool;
      (** allow ExtVP-style semi-join reductions ({!Relsql.Extvp}): the
          SQL generator may substitute a lazily materialized DPH
          row-subset for a star's base scan when a join edge matches a
          (predicate pair, correlation) signature with low estimated
          selectivity; purely a plan-shape knob, results are
          bit-identical *)
  extvp_build : bool;
      (** eagerly materialize every advisable reduction at bulk-load
          time instead of on first planner request *)
  extvp_threshold : float;
      (** keep a reduction only when its measured selectivity (kept
          rows / source rows) is below this (S2RDF's ScaleUB; default
          0.25) *)
  extvp_budget_mb : int;
      (** global byte budget for cached reductions (LRU eviction
          beyond it; default 64) *)
}

val default_options : options

(** Plan-shape fingerprint of an options record — part of the statement
    cache key, so two option sets sharing a cache never serve each
    other's plans. *)
val options_fingerprint : options -> string

type t

(** Create an empty engine with hash-composition predicate mappings. *)
val create :
  ?layout:Layout.t ->
  ?options:options ->
  ?direct_map:Pred_map.t ->
  ?reverse_map:Pred_map.t ->
  unit ->
  t

(** Create an engine whose predicate mappings come from graph-coloring
    (a sample of) the triples, then bulk-load them (Sections 2.2/2.3).
    [sample < 1.0] colors only that fraction of the data first. Returns
    the engine plus the direct and reverse coloring results. *)
val create_colored :
  ?layout:Layout.t ->
  ?options:options ->
  ?sample:float ->
  Rdf.Triple.t list ->
  t * Coloring.result * Coloring.result

(** A view of the same store under different options: shares the loader
    (data, statistics, dictionary) and the statement cache. *)
val with_options : t -> options -> t

val loader : t -> Loader.t
val dictionary : t -> Rdf.Dictionary.t

(** The store's semi-join reduction registry — always installed by
    {!create}; whether the planner uses it is the [extvp] option.
    Exposed for the bench harness (counters), the fuzzer's forced mode
    and stats reporting. *)
val extvp_registry : t -> Relsql.Extvp.t option

(** Eagerly materialize every advisable semi-join reduction over the
    current predicates — the [extvp_build] batch mode, also run
    automatically at bulk load when that option is set. *)
val build_reductions : t -> unit

(** Bulk load through the engine's [load_domains] option; [parse_s]
    folds the caller's input-parsing time into {!load_stats}. *)
val load : ?parse_s:float -> t -> Rdf.Triple.t list -> unit

(** Phase timings of the most recent bulk load (None before any). *)
val load_stats : t -> Loader.load_stats option

val insert : t -> Rdf.Triple.t -> unit

(** Delete a triple (no-op when absent). *)
val delete : t -> Rdf.Triple.t -> unit

(** Apply a SPARQL UPDATE through the DB2RDF layout: the DATA forms
    drive the incremental insert/delete paths (dictionary growth, DPH /
    RPH slot placement with spill and multi-value maintenance,
    tombstoned rows with index and statistics upkeep; under [compress]
    the writes land in each frozen table's boxed delta side — no thaw,
    no re-encode — and fold back into the packed main per
    [merge_threshold]); [DELETE WHERE] evaluates its pattern through
    the engine's own query pipeline against the pre-update state and
    deletes the instantiated template triples. Serialized by the
    engine's writer lock: a concurrent {!snapshot} observes none or
    all of the statement. *)
val update : t -> Sparql.Ast.update -> unit

(** Eagerly fold every frozen table's delta back into its packed main
    ({!Relsql.Database.merge_all} under the writer lock — the
    [rdfstore merge] subcommand); returns how many tables actually
    merged. Purely physical: results are bit-identical before and
    after. *)
val merge : t -> int

(** Parse and apply a SPARQL UPDATE string. *)
val update_string : t -> string -> unit

(** A consistent read view of the store at a point in time:
    copy-on-write table snapshots ({!Relsql.Database.snapshot}) plus
    the capture-time catalog stamp. *)
type snapshot

(** Capture a snapshot (taken under the writer lock, so never between
    the triples of one update statement). Readers keep answering from
    it, bit-stably, while {!update} commits. *)
val snapshot : t -> snapshot

(** The [(data_version, enc_version, delta_version)] catalog stamp the
    snapshot was captured at. *)
val snapshot_stamp : snapshot -> int * int * int

(** Evaluate a SPARQL string against the snapshot. Translation and
    decoding synchronize with the writer; execution runs unlocked on
    the snapshot's private tables and scan cache. Statement-cache
    entries are per-snapshot-valid: an entry stamped at the snapshot's
    capture stamp is served even after later commits retired it for
    live queries. *)
val snapshot_query_string :
  ?timeout:float -> snapshot -> string -> Sparql.Ref_eval.results

(** Hit/miss/occupancy counters of the statement cache ({!query_string}
    reuses parsed+translated statements keyed by source text; entries
    are stamped with the {!Relsql.Database.data_version} /
    [enc_version] / [delta_version] triple and a stamp from before any
    data change counts as a miss, because translation depends on
    dataset statistics). *)
val plan_cache_stats : t -> Relsql.Plan_cache.stats

(** Hit/miss/occupancy counters of the shared scan cache (see
    {!Relsql.Scan_cache}). *)
val scan_cache_stats : t -> Relsql.Plan_cache.stats

(** The {!Merge.ctx} the engine hands to the star merger — exposed for
    the optimizer test-bench and external plan tooling. *)
val merge_ctx : t -> Sparql.Pattern_tree.t -> Sparql.Ast.query -> Merge.ctx

(** Full translation of a parsed query to SQL; [options] overrides the
    engine's defaults for this call. *)
val translate : ?options:options -> t -> Sparql.Ast.query -> Relsql.Sql_ast.stmt

(** Evaluate a parsed query end to end. May raise
    {!Relsql.Executor.Timeout} or {!Filter_sql.Unsupported}. *)
val query :
  ?timeout:float -> ?options:options -> t -> Sparql.Ast.query ->
  Sparql.Ref_eval.results

(** Like {!query}, but also returns the executor's per-operator metrics
    tree (rows in/out, index probes, hash-build sizes, wall time) — the
    engine's EXPLAIN ANALYZE. *)
val query_analyzed :
  ?timeout:float -> ?options:options -> t -> Sparql.Ast.query ->
  Sparql.Ref_eval.results * Relsql.Opstats.t

(** Parse and evaluate a SPARQL string. *)
val query_string :
  ?timeout:float -> ?options:options -> t -> string -> Sparql.Ref_eval.results

(** Human-readable translation trace: flow, execution tree, merged plan,
    SQL text and physical plan. [~analyze:true] also executes the
    statement and appends the per-operator metrics tree. *)
val explain : ?analyze:bool -> t -> Sparql.Ast.query -> string

val to_store : ?name:string -> t -> Store.t
