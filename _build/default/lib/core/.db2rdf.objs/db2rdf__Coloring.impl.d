lib/core/coloring.ml: Array Hashtbl Int List Pred_map Rdf Set
