lib/relsql/value.mli: Format
