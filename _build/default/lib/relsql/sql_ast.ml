(** Abstract syntax of the SQL dialect the engine evaluates.

    This is the target language of the DB2RDF SPARQL-to-SQL translator
    (Section 3.2 of the paper) and of the baseline translators. It covers
    exactly the constructs those translators emit: SELECT with WHERE,
    INNER and LEFT OUTER joins, UNION [ALL], WITH (common table
    expressions), CASE / COALESCE / IN, lateral VALUES unnest (the
    [TABLE(T.valm, T.val0)] "flip" of Figure 13), DISTINCT, ORDER BY and
    LIMIT/OFFSET. *)

type binop =
  | Eq | Neq | Lt | Leq | Gt | Geq
  | And | Or
  | Add | Sub | Mul | Div
  | Concat

type agg_fun = A_count | A_sum | A_avg | A_min | A_max

type expr =
  | Const of Value.t
  | Col of string option * string
      (** [Col (Some "T", "entry")] is [T.entry]; [Col (None, "x")] is an
          unqualified reference resolved against the visible columns. *)
  | Binop of binop * expr * expr
  | Not of expr
  | Is_null of expr
  | Is_not_null of expr
  | Case of (expr * expr) list * expr option
      (** [CASE WHEN c1 THEN e1 ... ELSE e END]; [None] means no ELSE
          (yields NULL). *)
  | Coalesce of expr list
  | In_list of expr * Value.t list
  | Like of expr * string  (** SQL LIKE with [%] and [_] wildcards. *)
  | Agg of agg_fun * expr option * bool
      (** Aggregate call: [Agg (A_count, None, _)] is count-star;
          [Agg (f, Some e, distinct)] is [f(DISTINCT? e)]. Only valid in
          the select list of a query with (possibly empty) GROUP BY. *)

type select_item = { expr : expr; alias : string option }

type order_item = { sort_expr : expr; asc : bool }

type from_item =
  | From_table of { table : string; alias : string }
  | From_subquery of { query : query; alias : string }
  | From_values of { rows : expr list list; alias : string; cols : string list }
      (** Lateral VALUES: row expressions may reference columns of
          from-items to the left (this is how the translator unpivots the
          pred/val column pairs of an OR-merged star). *)

and join = { kind : join_kind; item : from_item; on : expr option }

and join_kind = Inner | Left_outer

and select = {
  distinct : bool;
  items : select_item list;
  from : from_item option;
  joins : join list;
  where : expr option;
  group_by : expr list;
      (** non-empty, or any {!Agg} item, makes this an aggregate query *)
  order_by : order_item list;
  limit : int option;
  offset : int option;
}

and query =
  | Select of select
  | Union of { all : bool; parts : query list }

(** A full statement: WITH bindings (evaluated in order, each visible to
    the next) and a body. *)
type stmt = { ctes : (string * query) list; body : query }

let empty_select =
  { distinct = false; items = []; from = None; joins = []; where = None;
    group_by = []; order_by = []; limit = None; offset = None }

let col ?table name = Col (table, name)
let str s = Const (Value.Str s)
let int i = Const (Value.Int i)
let eq a b = Binop (Eq, a, b)

(** Conjunction that collapses absent operands. *)
let conj_opt a b =
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Binop (And, a, b))

let conj_list = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> Binop (And, acc, x)) e rest)

let disj_list = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> Binop (Or, acc, x)) e rest)

let stmt ?(ctes = []) body = { ctes; body }

(** Column qualifiers and names referenced by an expression (used by the
    planner for pushdown decisions). *)
let rec expr_columns = function
  | Const _ -> []
  | Col (q, n) -> [ (q, n) ]
  | Binop (_, a, b) -> expr_columns a @ expr_columns b
  | Not e | Is_null e | Is_not_null e | Like (e, _) -> expr_columns e
  | Case (whens, els) ->
    List.concat_map (fun (c, e) -> expr_columns c @ expr_columns e) whens
    @ (match els with Some e -> expr_columns e | None -> [])
  | Coalesce es -> List.concat_map expr_columns es
  | In_list (e, _) -> expr_columns e
  | Agg (_, e, _) -> (match e with Some e -> expr_columns e | None -> [])

(** Split a WHERE expression into its top-level AND conjuncts. *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]
