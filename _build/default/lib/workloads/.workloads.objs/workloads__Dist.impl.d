lib/workloads/dist.ml: Array Float Hashtbl Int64 List
