lib/relsql/sql_ast.ml: List Value
