(** Shared test fixtures and assertions. *)

(** The Figure 1(a) running-example dataset. *)
let fig1_triples () =
  let t s p o = Rdf.Triple.spo s p o in
  let i = Rdf.Term.iri and l = Rdf.Term.lit in
  [ t "CharlesFlint" "born" (l "1850");
    t "CharlesFlint" "died" (l "1934");
    t "CharlesFlint" "founder" (i "IBM");
    t "LarryPage" "born" (l "1973");
    t "LarryPage" "founder" (i "Google");
    t "LarryPage" "board" (i "Google");
    t "LarryPage" "home" (l "Palo Alto");
    t "Android" "developer" (i "Google");
    t "Android" "version" (l "4.1");
    t "Android" "kernel" (i "Linux");
    t "Android" "preceded" (l "4.0");
    t "Android" "graphics" (i "OpenGL");
    t "Google" "industry" (l "Software");
    t "Google" "industry" (l "Internet");
    t "Google" "employees" (l "54,604");
    t "Google" "HQ" (l "Mountain View");
    t "IBM" "industry" (l "Software");
    t "IBM" "industry" (l "Hardware");
    t "IBM" "industry" (l "Services");
    t "IBM" "employees" (l "433,362");
    t "IBM" "HQ" (l "Armonk") ]

(** The Figure 6 query over the Figure 1 vocabulary. *)
let fig6_query_src =
  {|SELECT ?x ?y ?z ?n ?m WHERE {
      ?x <home> "Palo Alto" .
      { ?x <founder> ?y } UNION { ?x <member> ?y }
      { ?y <industry> "Software" .
        ?z <developer> ?y .
        ?y <revenue> ?n }
      OPTIONAL { ?y <employees> ?m }
    }|}

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1))
  in
  nn = 0 || at 0

let oracle_of triples =
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) triples;
  g

(** Result equivalence: multiset equality, or count equality when the
    query carries a LIMIT (any subset of the full answer is then
    legal). *)
let results_equivalent (q : Sparql.Ast.query) a b =
  match q.Sparql.Ast.limit with
  | Some _ ->
    List.length a.Sparql.Ref_eval.rows = List.length b.Sparql.Ref_eval.rows
  | None -> Sparql.Ref_eval.equal_results a b

(** Assert a store answers [q_src] like the reference evaluator. *)
let check_store_vs_oracle ?(msg = "") g (store : Db2rdf.Store.t) q_src =
  let q = Sparql.Parser.parse q_src in
  let oracle = Sparql.Ref_eval.eval g q in
  let got = store.Db2rdf.Store.query q in
  Alcotest.(check bool)
    (Printf.sprintf "%s%s: %s answers match oracle" msg
       (if msg = "" then "" else " ")
       store.Db2rdf.Store.name)
    true
    (results_equivalent q oracle got)

let all_stores triples : Db2rdf.Store.t list =
  let e = Db2rdf.Engine.create ~layout:(Db2rdf.Layout.make ~dph_cols:6 ~rph_cols:6) () in
  Db2rdf.Engine.load e triples;
  let ec, _, _ =
    Db2rdf.Engine.create_colored
      ~layout:(Db2rdf.Layout.make ~dph_cols:8 ~rph_cols:8) triples
  in
  let ts = Db2rdf.Triple_store.create () in
  Db2rdf.Triple_store.load ts triples;
  let vs = Db2rdf.Vertical_store.create () in
  Db2rdf.Vertical_store.load vs triples;
  let ns = Db2rdf.Native_store.create () in
  Db2rdf.Native_store.load ns triples;
  [ Db2rdf.Engine.to_store ~name:"DB2RDF-hash" e;
    Db2rdf.Engine.to_store ~name:"DB2RDF-colored" ec;
    Db2rdf.Triple_store.to_store ts;
    Db2rdf.Vertical_store.to_store vs;
    Db2rdf.Native_store.to_store ns ]
