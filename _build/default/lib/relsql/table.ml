(** Mutable row-store tables with hash indexes.

    Rows are value arrays of the schema's arity, held in a growable array.
    Hash indexes map a column value to the list of row ids holding it and
    are maintained incrementally through {!insert} and {!set_cell} — the
    DB2RDF loader updates cells in place when it assigns a predicate to a
    column of an existing entity row. *)

type index = (Value.t, int list ref) Hashtbl.t

type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Value.t array array;
  mutable nrows : int;
  mutable alive : Bytes.t;  (* tombstone bitmap: one byte per row slot *)
  mutable live_count : int;
  indexes : (int, index) Hashtbl.t; (* column position -> index *)
}

let dummy_row : Value.t array = [||]

let create name schema =
  { name; schema; rows = Array.make 64 dummy_row; nrows = 0;
    alive = Bytes.make 64 '\001'; live_count = 0;
    indexes = Hashtbl.create 4 }

let name t = t.name
let schema t = t.schema

(** Number of live (non-deleted) rows. *)
let row_count t = t.live_count

let is_live t rid = Bytes.get t.alive rid = '\001'

let ensure_capacity t =
  if t.nrows = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) dummy_row in
    Array.blit t.rows 0 bigger 0 t.nrows;
    t.rows <- bigger;
    let bigger_alive = Bytes.make (2 * Bytes.length t.alive) '\001' in
    Bytes.blit t.alive 0 bigger_alive 0 t.nrows;
    t.alive <- bigger_alive
  end

let index_add idx v rid =
  match Hashtbl.find_opt idx v with
  | Some l -> l := rid :: !l
  | None -> Hashtbl.add idx v (ref [ rid ])

let index_remove idx v rid =
  match Hashtbl.find_opt idx v with
  | Some l ->
    l := List.filter (fun r -> r <> rid) !l;
    if !l = [] then Hashtbl.remove idx v
  | None -> ()

(** [insert t row] appends [row] and returns its row id. The row array is
    owned by the table afterwards; callers must not mutate it directly
    (use {!set_cell}). *)
let insert t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): arity %d, expected %d" t.name
         (Array.length row) (Schema.arity t.schema));
  ensure_capacity t;
  let rid = t.nrows in
  t.rows.(rid) <- row;
  Bytes.set t.alive rid '\001';
  t.nrows <- t.nrows + 1;
  t.live_count <- t.live_count + 1;
  Hashtbl.iter (fun pos idx -> index_add idx row.(pos) rid) t.indexes;
  rid

let get t rid =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.get: bad row id";
  t.rows.(rid)

let cell t rid pos = (get t rid).(pos)

(** Update one cell, keeping any index on that column consistent. *)
let set_cell t rid pos v =
  let row = get t rid in
  (match Hashtbl.find_opt t.indexes pos with
   | Some idx ->
     index_remove idx row.(pos) rid;
     index_add idx v rid
   | None -> ());
  row.(pos) <- v

(** Delete a row: it disappears from scans, lookups and {!row_count}.
    The slot is tombstoned (ids of other rows are stable). Idempotent. *)
let delete_row t rid =
  if rid < 0 || rid >= t.nrows then invalid_arg "Table.delete_row: bad row id";
  if is_live t rid then begin
    Bytes.set t.alive rid '\000';
    t.live_count <- t.live_count - 1;
    let row = t.rows.(rid) in
    Hashtbl.iter (fun pos idx -> index_remove idx row.(pos) rid) t.indexes
  end

(** Build (or rebuild) a hash index on the column at position [pos]. *)
let create_index t pos =
  if pos < 0 || pos >= Schema.arity t.schema then
    invalid_arg "Table.create_index: bad column";
  let idx : index = Hashtbl.create (max 16 t.nrows) in
  for rid = 0 to t.nrows - 1 do
    if is_live t rid then index_add idx t.rows.(rid).(pos) rid
  done;
  Hashtbl.replace t.indexes pos idx

let create_index_on t col_name =
  create_index t (Schema.position_exn t.schema col_name)

let has_index t pos = Hashtbl.mem t.indexes pos

let indexed_columns t =
  Hashtbl.fold (fun pos _ acc -> pos :: acc) t.indexes []

(** [lookup t pos v] is the ids of rows whose column [pos] equals [v].
    Requires an index on [pos]. Most recent insertions first. *)
let lookup t pos v =
  match Hashtbl.find_opt t.indexes pos with
  | None -> invalid_arg ("Table.lookup: no index on column of " ^ t.name)
  | Some idx -> (match Hashtbl.find_opt idx v with Some l -> !l | None -> [])

let iter f t =
  for rid = 0 to t.nrows - 1 do
    if is_live t rid then f rid t.rows.(rid)
  done

let fold f init t =
  let acc = ref init in
  for rid = 0 to t.nrows - 1 do
    if is_live t rid then acc := f !acc rid t.rows.(rid)
  done;
  !acc

(** Simulated on-disk footprint in bytes under the value-compressed
    storage model: per-row header, a null bitmap of one bit per column,
    and per-value sizes (see {!Value.storage_size}, where NULLs are
    free — the bitmap carries them). Used by the Section 2.3 NULL
    experiment: widening a relation with NULL columns costs bitmap bits,
    not value bytes. *)
let storage_size t =
  let row_header = 8 + ((Schema.arity t.schema + 7) / 8) in
  fold
    (fun acc _ row ->
      Array.fold_left (fun a v -> a + Value.storage_size v) (acc + row_header) row)
    0 t

(** Fraction of cells that are NULL across the given column positions
    (live rows only). *)
let null_fraction t positions =
  if t.live_count = 0 || positions = [] then 0.0
  else begin
    let nulls = ref 0 in
    iter
      (fun _ row ->
        List.iter (fun p -> if Value.is_null row.(p) then incr nulls) positions)
      t;
    float_of_int !nulls /. float_of_int (t.live_count * List.length positions)
  end
