examples/dbpedia_figure1.mli:
