(** A bounded LRU cache from statement text to a prepared value, with
    hit/miss counters.

    The engine keys it by query text and stores the translated/planned
    statement, so re-running the same text skips parse + plan entirely.
    Capacity is small and evictions scan for the least-recently-used
    entry — O(capacity), which is noise next to a parse. The cache is
    not domain-safe; it belongs to the (single) domain that submits
    queries, like the rest of the session state. *)

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable clock : int;  (** bumped on every find/add for recency *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 64) () =
  { capacity = max 1 capacity; tbl = Hashtbl.create 16; clock = 0;
    hits = 0; misses = 0 }

let length t = Hashtbl.length t.tbl

(** Lookup, counting a hit or miss and refreshing recency. *)
let find t key =
  t.clock <- t.clock + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    t.hits <- t.hits + 1;
    e.last_used <- t.clock;
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    None

(** Insert (or refresh) a binding, evicting the least-recently-used
    entry when the cache is full. *)
let add t key value =
  t.clock <- t.clock + 1;
  (match Hashtbl.find_opt t.tbl key with
   | Some _ -> Hashtbl.remove t.tbl key
   | None ->
     if Hashtbl.length t.tbl >= t.capacity then begin
       let victim = ref None in
       Hashtbl.iter
         (fun k e ->
           match !victim with
           | Some (_, lu) when lu <= e.last_used -> ()
           | _ -> victim := Some (k, e.last_used))
         t.tbl;
       match !victim with
       | Some (k, _) -> Hashtbl.remove t.tbl k
       | None -> ()
     end);
  Hashtbl.replace t.tbl key { value; last_used = t.clock }

(** Drop every entry (schema or statistics changed under the plans);
    counters survive so hit rates remain observable across loads. *)
let clear t = Hashtbl.reset t.tbl

(** Reclassify the most recent {!find} hit as a miss — for callers that
    layer their own validity check (a version stamp) on top of the LRU
    and found the resident entry stale. Keeps the counters meaning
    "usable results served" rather than "entries touched". *)
let note_stale t =
  if t.hits > 0 then begin
    t.hits <- t.hits - 1;
    t.misses <- t.misses + 1
  end

type stats = { hits : int; misses : int; entries : int }

let stats (t : 'a t) = { hits = t.hits; misses = t.misses; entries = length t }

let stats_to_string (s : stats) =
  Printf.sprintf "plan cache: %d hits, %d misses, %d entries" s.hits s.misses
    s.entries
