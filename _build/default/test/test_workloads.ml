(** Tests for the workload generators and their query sets: determinism,
    scale control, parseability, and cross-store agreement on small
    instances of every workload. *)

let workloads =
  [ ("micro", (fun ~scale -> Workloads.Micro.generate ~scale), Workloads.Micro.queries);
    ("lubm", (fun ~scale -> Workloads.Lubm.generate ~scale), Workloads.Lubm.queries);
    ("sp2b", (fun ~scale -> Workloads.Sp2b.generate ~scale), Workloads.Sp2b.queries);
    ("dbpedia", (fun ~scale -> Workloads.Dbpedia.generate ~scale), Workloads.Dbpedia.queries);
    ("prbench", (fun ~scale -> Workloads.Prbench.generate ~scale), Workloads.Prbench.queries) ]

let test_deterministic () =
  List.iter
    (fun (name, gen, _) ->
      let a = gen ~scale:1500 and b = gen ~scale:1500 in
      Alcotest.(check bool) (name ^ " deterministic") true (a = b))
    workloads

let test_scale () =
  List.iter
    (fun (name, gen, _) ->
      let n = List.length (gen ~scale:3000) in
      Alcotest.(check bool)
        (Printf.sprintf "%s scale ~3000 (got %d)" name n)
        true
        (n >= 2000 && n <= 5000))
    workloads

let test_queries_parse () =
  List.iter
    (fun (name, _, queries) ->
      List.iter
        (fun (qname, src) ->
          match Sparql.Parser.parse src with
          | _ -> ()
          | exception e ->
            Alcotest.fail
              (Printf.sprintf "%s %s does not parse: %s" name qname
                 (Printexc.to_string e)))
        queries)
    workloads

let test_query_counts () =
  let expect = [ ("micro", 10); ("lubm", 12); ("sp2b", 17); ("dbpedia", 20); ("prbench", 29) ] in
  List.iter
    (fun (name, _, queries) ->
      Alcotest.(check int) (name ^ " query count") (List.assoc name expect)
        (List.length queries))
    workloads

(** Cross-store agreement on small instances — the integration test that
    exercises the complete pipeline of every store on every workload.
    SQ4 (the intentional cross product) is skipped for speed. *)
let test_cross_store_agreement () =
  List.iter
    (fun (name, gen, queries) ->
      let triples = gen ~scale:1200 in
      let g = Helpers.oracle_of triples in
      let stores = Helpers.all_stores triples in
      List.iter
        (fun (qname, src) ->
          if qname <> "SQ4" then begin
            let q = Sparql.Parser.parse src in
            let oracle = Sparql.Ref_eval.eval g q in
            List.iter
              (fun (store : Db2rdf.Store.t) ->
                match store.Db2rdf.Store.query q with
                | got ->
                  Alcotest.(check bool)
                    (Printf.sprintf "%s %s: %s matches oracle" name qname
                       store.Db2rdf.Store.name)
                    true
                    (Helpers.results_equivalent q oracle got)
                | exception Db2rdf.Filter_sql.Unsupported _ -> ())
              stores
          end)
        queries)
    workloads

let test_micro_group_structure () =
  (* Q1's star (SV1-4) must be far more selective than any single
     predicate — the Table 1 design. *)
  let triples = Workloads.Micro.generate ~scale:20000 in
  let g = Helpers.oracle_of triples in
  let count src =
    List.length (Sparql.Ref_eval.eval g (Sparql.Parser.parse src)).Sparql.Ref_eval.rows
  in
  let q1 = count (List.assoc "Q1" Workloads.Micro.queries) in
  let single =
    count "SELECT ?s WHERE { ?s <http://microbench.org/SV1> ?o }"
  in
  Alcotest.(check bool)
    (Printf.sprintf "SV1-4 star (%d) much smaller than SV1 alone (%d)" q1 single)
    true
    (q1 * 10 < single);
  (* Q7-Q10 all return the same subjects (the SV5-8 group). *)
  let q7 = count (List.assoc "Q7" Workloads.Micro.queries) in
  let q10 = count (List.assoc "Q10" Workloads.Micro.queries) in
  Alcotest.(check int) "Q7 = Q10" q7 q10

let test_lubm_inference_unions () =
  (* LQ6 (all students) must equal the sum of its two type branches. *)
  let triples = Workloads.Lubm.generate ~scale:4000 in
  let g = Helpers.oracle_of triples in
  let count src =
    List.length (Sparql.Ref_eval.eval g (Sparql.Parser.parse src)).Sparql.Ref_eval.rows
  in
  let all = count (List.assoc "LQ6" Workloads.Lubm.queries) in
  let grads =
    count
      "SELECT ?x WHERE { ?x <http://lubm.org/univ#type> <http://lubm.org/univ#GraduateStudent> }"
  in
  let unders =
    count
      "SELECT ?x WHERE { ?x <http://lubm.org/univ#type> <http://lubm.org/univ#UndergraduateStudent> }"
  in
  Alcotest.(check int) "union splits by type" all (grads + unders);
  Alcotest.(check bool) "non-empty" true (all > 0)

let test_sp2b_multivalued_references () =
  let triples = Workloads.Sp2b.generate ~scale:3000 in
  let e = Db2rdf.Engine.create () in
  Db2rdf.Engine.load e triples;
  let dict = Db2rdf.Engine.dictionary e in
  let refs =
    Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri "http://sp2b.org/dblp#references"))
  in
  Alcotest.(check bool) "references is multi-valued" true
    (Db2rdf.Loader.is_multivalued (Db2rdf.Engine.loader e) Db2rdf.Loader.Direct
       ~pred_id:refs)

let test_dbpedia_vocabulary_size () =
  let triples = Workloads.Dbpedia.generate ~scale:20000 in
  let preds = Hashtbl.create 64 in
  List.iter (fun (t : Rdf.Triple.t) -> Hashtbl.replace preds t.p ()) triples;
  Alcotest.(check bool)
    (Printf.sprintf "large vocabulary (%d preds)" (Hashtbl.length preds))
    true
    (Hashtbl.length preds > 60)

let test_prbench_big_union () =
  let _, src = List.find (fun (n, _) -> n = "PQ28") Workloads.Prbench.queries in
  let q = Sparql.Parser.parse src in
  Alcotest.(check bool)
    (Printf.sprintf "PQ28 is a big union (%d triples)" (Sparql.Ast.pattern_size q.Sparql.Ast.where))
    true
    (Sparql.Ast.pattern_size q.Sparql.Ast.where >= 100)

let suite =
  [ Alcotest.test_case "generators deterministic" `Quick test_deterministic;
    Alcotest.test_case "generators respect scale" `Quick test_scale;
    Alcotest.test_case "all queries parse" `Quick test_queries_parse;
    Alcotest.test_case "query set sizes" `Quick test_query_counts;
    Alcotest.test_case "cross-store agreement (all workloads)" `Slow test_cross_store_agreement;
    Alcotest.test_case "micro-bench selectivity design" `Quick test_micro_group_structure;
    Alcotest.test_case "lubm inference unions" `Quick test_lubm_inference_unions;
    Alcotest.test_case "sp2b multi-valued references" `Quick test_sp2b_multivalued_references;
    Alcotest.test_case "dbpedia vocabulary size" `Quick test_dbpedia_vocabulary_size;
    Alcotest.test_case "prbench 40-way union" `Quick test_prbench_big_union ]
