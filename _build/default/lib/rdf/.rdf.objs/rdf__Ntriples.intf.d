lib/rdf/ntriples.mli: Buffer Triple
