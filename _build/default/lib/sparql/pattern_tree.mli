(** The query parse tree of the paper (Figure 7) and its ancestor
    machinery (Definitions 3.4–3.7, 3.9–3.11).

    The tree has AND, OR and OPTIONAL interior nodes and triple-pattern
    leaves; FILTER expressions attach to their enclosing AND node.
    Nodes and triples are addressed by dense integer ids. *)

type tp = { id : int; pat : Ast.triple_pat }

type kind =
  | K_and
  | K_or
  | K_opt
  | K_leaf of tp

type t = {
  kinds : kind array;  (** node id -> kind *)
  parents : int array;  (** node id -> parent node id; root's is -1 *)
  children : int list array;
  root : int;
  triples : tp array;  (** triple id -> leaf tp *)
  leaf_node : int array;  (** triple id -> node id of its leaf *)
  filters : (int * Ast.expr) list;  (** (enclosing AND node, expression) *)
}

val n_triples : t -> int
val triple : t -> int -> tp
val kind : t -> int -> kind
val parent : t -> int -> int

val of_pattern : Ast.pattern -> t
val of_query : Ast.query -> t

(** [↑*]: ancestors of a node, nearest first, excluding the node. *)
val ancestors : t -> int -> int list

val depth : t -> int -> int

(** Least common ancestor (Definition 3.4). *)
val lca : t -> int -> int -> int

(** [↑↑ (p, p')]: ancestors of [p] strictly below [LCA (p, p')]
    (Definition 3.5). *)
val up_to_lca : t -> int -> int -> int list

(** [∪ (t, t')] (Definition 3.6): the triples' LCA is an OR. *)
val or_connected : t -> int -> int -> bool

(** [∩ (t, t')] (Definition 3.7): [t'] is OPTIONAL-guarded w.r.t. [t]. *)
val opt_connected : t -> int -> int -> bool

(** Definition 3.9. *)
val and_mergeable : t -> int -> int -> bool

(** Definition 3.10. *)
val or_mergeable : t -> int -> int -> bool

(** Definition 3.11 ([tb] is the optional member). *)
val opt_mergeable : t -> int -> int -> bool

(** Triple ids inside the subtree rooted at a node. *)
val triples_under : t -> int -> int list

(** Is the triple inside (the scope of) any OPTIONAL node? *)
val in_optional : t -> int -> bool

val to_string : t -> string
