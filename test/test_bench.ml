(** Benchmark-harness comparison logic: shared-key ratios, geometric
    means, and robustness to mismatched experiment sets — keys present
    on only one side are reported as added/removed and excluded from
    every mean. *)

let cmp = Harness.compare_timings

let test_identical () =
  let xs = [ ("micro/Q1", 10.0); ("micro/Q2", 20.0) ] in
  let c = cmp xs xs in
  Alcotest.(check int) "all keys shared" 2 (List.length c.Harness.c_shared);
  Alcotest.(check (list string)) "nothing added" [] c.Harness.c_added;
  Alcotest.(check (list string)) "nothing removed" [] c.Harness.c_removed;
  match c.Harness.c_overall with
  | None -> Alcotest.fail "expected an overall geomean"
  | Some g -> Alcotest.(check (float 1e-9)) "geomean of equals is 1" 1.0 g

let test_mismatched_sets () =
  let old_run =
    [ ("micro/Q1", 10.0); ("micro/Q2", 20.0); ("join/Q1", 5.0) ]
  in
  let new_run =
    [ ("micro/Q1", 20.0); ("micro/Q2", 40.0); ("wcoj/Q1", 7.0) ]
  in
  let c = cmp old_run new_run in
  Alcotest.(check (list string)) "dropped experiment reported" [ "join/Q1" ]
    c.Harness.c_removed;
  Alcotest.(check (list string)) "new experiment reported" [ "wcoj/Q1" ]
    c.Harness.c_added;
  Alcotest.(check int) "only shared keys compared" 2
    (List.length c.Harness.c_shared);
  (* The unmatched keys must not skew the mean: both shared keys
     doubled, so the geomean is exactly 2 regardless of join/wcoj. *)
  match c.Harness.c_overall with
  | None -> Alcotest.fail "expected an overall geomean"
  | Some g -> Alcotest.(check (float 1e-9)) "geomean over shared only" 2.0 g

let test_disjoint_sets () =
  let c = cmp [ ("a/Q1", 1.0) ] [ ("b/Q1", 1.0) ] in
  Alcotest.(check (list string)) "removed" [ "a/Q1" ] c.Harness.c_removed;
  Alcotest.(check (list string)) "added" [ "b/Q1" ] c.Harness.c_added;
  Alcotest.(check bool) "no overall mean without shared keys" true
    (c.Harness.c_overall = None)

let test_zero_timings_excluded () =
  (* A 0 ms timing cannot form a ratio; it must not reach the mean. *)
  let c = cmp [ ("a/Q1", 0.0); ("a/Q2", 10.0) ]
      [ ("a/Q1", 5.0); ("a/Q2", 10.0) ] in
  Alcotest.(check int) "zero-timing key excluded from shared" 1
    (List.length c.Harness.c_shared)

let test_geomean () =
  Alcotest.(check bool) "empty geomean" true (Harness.geomean [] = None);
  match Harness.geomean [ 2.0; 8.0 ] with
  | None -> Alcotest.fail "expected a geomean"
  | Some g -> Alcotest.(check (float 1e-9)) "geomean 2,8" 4.0 g

let suite =
  [ Alcotest.test_case "identical runs" `Quick test_identical;
    Alcotest.test_case "mismatched experiment sets" `Quick
      test_mismatched_sets;
    Alcotest.test_case "disjoint experiment sets" `Quick test_disjoint_sets;
    Alcotest.test_case "zero timings excluded" `Quick
      test_zero_timings_excluded;
    Alcotest.test_case "geomean" `Quick test_geomean ]
