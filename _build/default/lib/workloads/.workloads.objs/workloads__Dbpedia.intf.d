lib/workloads/dbpedia.mli: Rdf
