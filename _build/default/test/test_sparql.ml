(** Tests for the SPARQL front-end: parser, printer, pattern tree
    (Figure 7 machinery), and the reference evaluator's semantics. *)

open Sparql

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse = Parser.parse

let test_parse_basic () =
  let q = parse "SELECT ?x WHERE { ?x <p> ?y . ?y <q> \"lit\" }" in
  Alcotest.(check int) "two triples" 2 (Ast.pattern_size q.Ast.where);
  Alcotest.(check bool) "projection" true (q.Ast.projection = Ast.Select_vars [ "x" ])

let test_parse_prefixes () =
  let q =
    parse
      "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?x WHERE { ?x foaf:name ?n . ?x a foaf:Person }"
  in
  match q.Ast.where with
  | Ast.Bgp [ t1; t2 ] ->
    Alcotest.(check bool) "prefix expansion" true
      (t1.Ast.tp_p = Ast.Term (Rdf.Term.iri "http://xmlns.com/foaf/0.1/name"));
    Alcotest.(check bool) "a is rdf:type" true (t2.Ast.tp_p = Ast.Term Rdf.Term.rdf_type)
  | _ -> Alcotest.fail "expected a 2-triple BGP"

let test_parse_predicate_object_lists () =
  let q = parse "SELECT * WHERE { ?x <p> ?a , ?b ; <q> ?c . }" in
  Alcotest.(check int) "3 triples from ;/, lists" 3 (Ast.pattern_size q.Ast.where)

let test_parse_union_optional_filter () =
  let q =
    parse
      "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } OPTIONAL { ?x <r> ?z } FILTER (?y > 3 && BOUND(?z)) }"
  in
  match q.Ast.where with
  | Ast.Group [ Ast.Union [ _; _ ]; Ast.Optional _; Ast.Filter _ ] -> ()
  | _ -> Alcotest.fail ("unexpected shape: " ^ Pp.to_string q)

let test_parse_modifiers () =
  let q =
    parse
      "SELECT DISTINCT ?x WHERE { ?x <p> ?y } ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5"
  in
  Alcotest.(check bool) "distinct" true q.Ast.distinct;
  Alcotest.(check (option int)) "limit" (Some 10) q.Ast.limit;
  Alcotest.(check (option int)) "offset" (Some 5) q.Ast.offset;
  Alcotest.(check int) "2 order conds" 2 (List.length q.Ast.order_by);
  Alcotest.(check bool) "desc first" false (List.hd q.Ast.order_by).Ast.ord_asc

let test_parse_literals () =
  let q =
    parse
      "SELECT * WHERE { ?x <p> 42 . ?x <q> 3.5 . ?x <r> \"s\"@en . ?x <s> \"t\"^^<http://dt> }"
  in
  Alcotest.(check int) "4 triples" 4 (Ast.pattern_size q.Ast.where)

let test_parse_errors () =
  let bad = [ "SELECT"; "SELECT ?x WHERE { ?x <p> }"; "SELECT ?x WHERE { ?x foo:b ?y }" ] in
  List.iter
    (fun src ->
      match parse src with
      | exception Parser.Parse_error _ -> ()
      | exception Lexer.Lex_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ src))
    bad

(* ------------------------------------------------------------------ *)
(* Printer round trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_pp_roundtrip_cases () =
  let cases =
    [ "SELECT ?x WHERE { ?x <p> ?y }";
      "SELECT DISTINCT ?x ?y WHERE { { ?x <p> ?y } UNION { ?x <q> ?y } } LIMIT 3";
      "SELECT ?x WHERE { ?x <p> ?y OPTIONAL { ?y <q> ?z } FILTER (!BOUND(?z)) }";
      "SELECT ?x WHERE { ?x <p> \"v\"@en . ?x <q> 7 } ORDER BY ?x OFFSET 2";
      Helpers.fig6_query_src ]
  in
  List.iter
    (fun src ->
      let q = parse src in
      let q2 = parse (Pp.to_string q) in
      (* Compare via a second print: group flattening is idempotent. *)
      Alcotest.(check string) ("pp roundtrip: " ^ src) (Pp.to_string q) (Pp.to_string q2))
    cases

(* ------------------------------------------------------------------ *)
(* Pattern tree: the Figure 7 example                                  *)
(* ------------------------------------------------------------------ *)

(* Triple ids in parse order: t0 = home, t1 = founder, t2 = member,
   t3 = industry, t4 = developer, t5 = revenue, t6 = employees. *)
let fig6_tree () = Pattern_tree.of_query (parse Helpers.fig6_query_src)

let test_tree_shape () =
  let pt = fig6_tree () in
  Alcotest.(check int) "7 triples" 7 (Pattern_tree.n_triples pt);
  Alcotest.(check bool) "root is AND" true
    (Pattern_tree.kind pt pt.Pattern_tree.root = Pattern_tree.K_and)

let test_or_connected () =
  let pt = fig6_tree () in
  Alcotest.(check bool) "founder/member are OR-connected" true
    (Pattern_tree.or_connected pt 1 2);
  Alcotest.(check bool) "founder/industry are not" false
    (Pattern_tree.or_connected pt 1 3)

let test_opt_connected () =
  let pt = fig6_tree () in
  (* employees (t6) is optional w.r.t. revenue (t5): ∩(t5, t6). *)
  Alcotest.(check bool) "employees optional wrt revenue" true
    (Pattern_tree.opt_connected pt 5 6);
  Alcotest.(check bool) "revenue not optional wrt employees" false
    (Pattern_tree.opt_connected pt 6 5)

let test_mergeable () =
  let pt = fig6_tree () in
  Alcotest.(check bool) "ORMergeable(founder, member)" true
    (Pattern_tree.or_mergeable pt 1 2);
  Alcotest.(check bool) "not ORMergeable(founder, developer)" false
    (Pattern_tree.or_mergeable pt 1 4);
  Alcotest.(check bool) "ANDMergeable(industry, revenue)" true
    (Pattern_tree.and_mergeable pt 3 5);
  Alcotest.(check bool) "not ANDMergeable(founder, member)" false
    (Pattern_tree.and_mergeable pt 1 2);
  (* OPTMergeable(revenue, employees) — t6 guarded by OPTIONAL. *)
  Alcotest.(check bool) "OPTMergeable(revenue, employees)" true
    (Pattern_tree.opt_mergeable pt 5 6);
  Alcotest.(check bool) "not OPTMergeable(employees, revenue)" false
    (Pattern_tree.opt_mergeable pt 6 5)

let test_triples_under_and_filters () =
  let pt =
    Pattern_tree.of_query
      (parse "SELECT * WHERE { ?x <p> ?y FILTER (?y > 1) { ?y <q> ?z . ?z <r> ?w } }")
  in
  Alcotest.(check int) "one filter" 1 (List.length pt.Pattern_tree.filters);
  let node, _ = List.hd pt.Pattern_tree.filters in
  Alcotest.(check int) "filter scopes over all 3 triples" 3
    (List.length (Pattern_tree.triples_under pt node))

let test_in_optional () =
  let pt = fig6_tree () in
  Alcotest.(check bool) "t6 in optional" true (Pattern_tree.in_optional pt 6);
  Alcotest.(check bool) "t5 not in optional" false (Pattern_tree.in_optional pt 5)

(* ------------------------------------------------------------------ *)
(* Reference evaluator semantics                                       *)
(* ------------------------------------------------------------------ *)

let mini_graph () =
  let g = Rdf.Graph.create () in
  let add s p o = Rdf.Graph.add g (Rdf.Triple.spo s p o) in
  add "a" "p" (Rdf.Term.iri "b");
  add "a" "p" (Rdf.Term.iri "c");
  add "b" "q" (Rdf.Term.int_lit 1);
  add "c" "q" (Rdf.Term.int_lit 2);
  add "c" "r" (Rdf.Term.lit "only-c");
  g

let count g src = List.length (Ref_eval.eval g (parse src)).Ref_eval.rows

let test_eval_join () =
  let g = mini_graph () in
  Alcotest.(check int) "join" 2 (count g "SELECT ?x ?v WHERE { <a> <p> ?x . ?x <q> ?v }")

let test_eval_optional () =
  let g = mini_graph () in
  (* left join keeps both, binds r only for c *)
  let r = Ref_eval.eval g (parse "SELECT ?x ?r WHERE { <a> <p> ?x OPTIONAL { ?x <r> ?r } }") in
  Alcotest.(check int) "2 solutions" 2 (List.length r.Ref_eval.rows);
  let bound_r = List.filter (fun row -> List.nth row 1 <> None) r.Ref_eval.rows in
  Alcotest.(check int) "one bound" 1 (List.length bound_r)

let test_eval_union () =
  let g = mini_graph () in
  Alcotest.(check int) "union multiset" 3
    (count g "SELECT ?x WHERE { { <a> <p> ?x } UNION { ?x <q> 2 } }")

let test_eval_filter_semantics () =
  let g = mini_graph () in
  Alcotest.(check int) "numeric filter" 1
    (count g "SELECT ?x WHERE { ?x <q> ?v FILTER (?v > 1) }");
  (* error-as-false: comparing an unbound var filters the row out *)
  Alcotest.(check int) "unbound comparison is false" 0
    (count g "SELECT ?x WHERE { <a> <p> ?x FILTER (?nope > 1) }");
  (* but !BOUND on it is true *)
  Alcotest.(check int) "not bound" 2
    (count g "SELECT ?x WHERE { <a> <p> ?x FILTER (!BOUND(?nope)) }");
  Alcotest.(check int) "regex" 1
    (count g "SELECT ?x WHERE { ?x <r> ?v FILTER REGEX(?v, \"only\") }")

let test_eval_filter_scopes_group () =
  let g = mini_graph () in
  (* Filter inside a union branch must not leak to the other branch. *)
  Alcotest.(check int) "filter scoped to branch" 3
    (count g "SELECT ?x WHERE { { ?x <q> ?v FILTER (?v > 1) } UNION { <a> <p> ?x } }")

let test_eval_distinct_order_limit () =
  let g = mini_graph () in
  Alcotest.(check int) "distinct collapses duplicates" 1
    (count g "SELECT DISTINCT ?a WHERE { ?a <p> ?x }");
  let r =
    Ref_eval.eval g (parse "SELECT ?x ?v WHERE { ?x <q> ?v } ORDER BY DESC(?v) LIMIT 1")
  in
  match r.Ref_eval.rows with
  | [ [ Some x; _ ] ] ->
    Alcotest.(check string) "max v is c" "<c>" (Rdf.Term.to_string x)
  | _ -> Alcotest.fail "expected one row"

let test_eval_timeout () =
  let g = Rdf.Graph.create () in
  for i = 0 to 200 do
    Rdf.Graph.add g (Rdf.Triple.spo "s" ("p" ^ string_of_int i) (Rdf.Term.int_lit i));
    Rdf.Graph.add g (Rdf.Triple.spo ("x" ^ string_of_int i) "q" (Rdf.Term.int_lit i))
  done;
  match
    Ref_eval.eval ~timeout:0.0 g
      (parse "SELECT * WHERE { ?a ?b ?c . ?d <q> ?e . ?f <q> ?g . ?h <q> ?i }")
  with
  | exception Ref_eval.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

(* ------------------------------------------------------------------ *)
(* Random query ASTs: printing then parsing preserves semantics.       *)
(* ------------------------------------------------------------------ *)

let gen_query : Ast.query QCheck.Gen.t =
  let open QCheck.Gen in
  let vars = [ "a"; "b"; "c" ] in
  let gen_pos =
    oneof
      [ map (fun v -> Ast.Var v) (oneofl vars);
        map (fun i -> Ast.Term (Rdf.Term.iri (Printf.sprintf "n%d" i))) (int_range 0 6);
        map (fun i -> Ast.Term (Rdf.Term.int_lit i)) (int_range 0 9) ]
  in
  let gen_pred =
    oneof
      [ map (fun v -> Ast.Var v) (oneofl vars);
        map (fun i -> Ast.Term (Rdf.Term.iri (Printf.sprintf "p%d" i))) (int_range 0 3) ]
  in
  let gen_tp =
    map3 (fun s p o -> { Ast.tp_s = s; tp_p = p; tp_o = o }) gen_pos gen_pred gen_pos
  in
  let gen_bgp = map (fun tps -> Ast.Bgp tps) (list_size (int_range 1 3) gen_tp) in
  let gen_filter =
    map2
      (fun v i -> Ast.Filter (Ast.E_cmp (Ast.Cgt, Ast.E_var v, Ast.E_const (Rdf.Term.int_lit i))))
      (oneofl vars) (int_range 0 9)
  in
  let gen_pattern =
    fix
      (fun self depth ->
        if depth = 0 then gen_bgp
        else
          frequency
            [ (3, gen_bgp);
              (1, map (fun ps -> Ast.Group ps) (list_size (int_range 1 3) (self (depth - 1))));
              (1, map (fun ps -> Ast.Union ps) (list_size (int_range 2 3) (self (depth - 1))));
              (1, map (fun p -> Ast.Optional p) (self (depth - 1)));
              (1, map2 (fun a f -> Ast.Group [ a; f ]) (self (depth - 1)) gen_filter) ])
      2
  in
  let* where = gen_pattern in
  let* distinct = bool in
  let* limit = opt (int_range 0 20) in
  return
    { Ast.projection = Ast.Select_star; distinct; reduced = false; where;
      group_by = []; aggregates = []; order_by = []; limit; offset = None }

let pp_parse_semantics =
  QCheck.Test.make ~name:"pp/parse preserves query semantics" ~count:300
    (QCheck.make gen_query ~print:Pp.to_string)
    (fun q ->
      (* A fixed pseudo-random graph over the generator's vocabulary. *)
      let g = Rdf.Graph.create () in
      for i = 0 to 80 do
        Rdf.Graph.add g
          (Rdf.Triple.make
             (Rdf.Term.iri (Printf.sprintf "n%d" (i * 7 mod 7)))
             (Rdf.Term.iri (Printf.sprintf "p%d" (i * 3 mod 4)))
             (if i mod 3 = 0 then Rdf.Term.int_lit (i mod 10)
              else Rdf.Term.iri (Printf.sprintf "n%d" (i * 5 mod 7))))
      done;
      let q' = Parser.parse (Pp.to_string q) in
      let r = Ref_eval.eval g q and r' = Ref_eval.eval g q' in
      if q.Ast.limit <> None then
        List.length r.Ref_eval.rows = List.length r'.Ref_eval.rows
      else Ref_eval.equal_results r r')

(* Property: UNION of a pattern with itself doubles the multiset. *)
let union_doubles =
  QCheck.Test.make ~name:"ref_eval: A UNION A has twice the rows of A" ~count:30
    QCheck.(make Gen.(int_range 1 40))
    (fun n ->
      let g = Rdf.Graph.create () in
      for i = 0 to n - 1 do
        Rdf.Graph.add g (Rdf.Triple.spo ("s" ^ string_of_int i) "p" (Rdf.Term.int_lit i))
      done;
      let single = count g "SELECT ?x WHERE { ?x <p> ?y }" in
      let doubled = count g "SELECT ?x WHERE { { ?x <p> ?y } UNION { ?x <p> ?y } }" in
      doubled = 2 * single)

let suite =
  [ Alcotest.test_case "parse basic" `Quick test_parse_basic;
    Alcotest.test_case "parse prefixes and a" `Quick test_parse_prefixes;
    Alcotest.test_case "parse ;/, lists" `Quick test_parse_predicate_object_lists;
    Alcotest.test_case "parse union/optional/filter" `Quick test_parse_union_optional_filter;
    Alcotest.test_case "parse modifiers" `Quick test_parse_modifiers;
    Alcotest.test_case "parse literals" `Quick test_parse_literals;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip_cases;
    Alcotest.test_case "fig7: tree shape" `Quick test_tree_shape;
    Alcotest.test_case "fig7: or-connected" `Quick test_or_connected;
    Alcotest.test_case "fig7: opt-connected" `Quick test_opt_connected;
    Alcotest.test_case "fig7: mergeability defs" `Quick test_mergeable;
    Alcotest.test_case "filter scopes" `Quick test_triples_under_and_filters;
    Alcotest.test_case "in_optional" `Quick test_in_optional;
    Alcotest.test_case "eval: join" `Quick test_eval_join;
    Alcotest.test_case "eval: optional" `Quick test_eval_optional;
    Alcotest.test_case "eval: union" `Quick test_eval_union;
    Alcotest.test_case "eval: filter semantics" `Quick test_eval_filter_semantics;
    Alcotest.test_case "eval: filter group scope" `Quick test_eval_filter_scopes_group;
    Alcotest.test_case "eval: distinct/order/limit" `Quick test_eval_distinct_order_limit;
    Alcotest.test_case "eval: timeout" `Quick test_eval_timeout;
    QCheck_alcotest.to_alcotest union_doubles;
    QCheck_alcotest.to_alcotest pp_parse_semantics ]
