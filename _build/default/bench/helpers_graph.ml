(** Small shared helper: build an indexed graph for oracle counting. *)

let of_triples triples =
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) triples;
  g
