(** LUBM-like university workload (Guo, Pan & Heflin): the 18-predicate
    schema whose interference graph is fully colorable (Table 4 row 3),
    plus the 12 benchmark queries the paper runs (LQ1–LQ10, LQ13, LQ14),
    with OWL inference pre-expanded into UNIONs exactly as Section 4.1
    describes (e.g. [?x rdf:type Student] becomes a UNION over
    GraduateStudent and UndergraduateStudent). *)

let ns = "http://lubm.org/univ#"
let u name = ns ^ name
let iri name = Rdf.Term.iri (u name)

let rdf_type = Rdf.Term.rdf_type

(* Entity URI helpers (the query constants below depend on these). *)
let university i = Rdf.Term.iri (Printf.sprintf "%sUniversity%d" ns i)
let department i j = Rdf.Term.iri (Printf.sprintf "%sUniversity%d/Department%d" ns i j)
let person i j k = Rdf.Term.iri (Printf.sprintf "%sUniversity%d/Department%d/Person%d" ns i j k)
let course i j k = Rdf.Term.iri (Printf.sprintf "%sUniversity%d/Department%d/Course%d" ns i j k)
let grad_course i j k =
  Rdf.Term.iri (Printf.sprintf "%sUniversity%d/Department%d/GraduateCourse%d" ns i j k)
let publication i j k p =
  Rdf.Term.iri (Printf.sprintf "%sUniversity%d/Department%d/Person%d/Publication%d" ns i j k p)

type counters = { mutable triples : int; mutable acc : Rdf.Triple.t list }

let add c s p o =
  c.acc <- Rdf.Triple.make s (Rdf.Term.iri (u p)) o :: c.acc;
  c.triples <- c.triples + 1

let addt c s ty = add c s "type" (iri ty)

(* "type" is modeled with a plain predicate so pre-expanded inference
   UNIONs look exactly like the paper's rewriting. *)
let _ = rdf_type

(** Generate roughly [scale] triples. Structure per department: 1 head
    full professor, faculty of the three professor ranks and lecturers,
    graduate and undergraduate students, courses, publications,
    advisors, TAs — mirroring LUBM's generator shape (average
    out-degree ≈ 6). *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 7 in
  let c = { triples = 0; acc = [] } in
  let ui = ref 0 in
  while c.triples < scale do
    let i = !ui in
    incr ui;
    addt c (university i) "University";
    add c (university i) "name" (Rdf.Term.lit (Printf.sprintf "University%d" i));
    let n_depts = 3 + Dist.int rng 3 in
    for j = 0 to n_depts - 1 do
      let dept = department i j in
      addt c dept "Department";
      add c dept "subOrganizationOf" (university i);
      add c dept "name" (Rdf.Term.lit (Printf.sprintf "Department%d" j));
      let n_faculty = 6 + Dist.int rng 5 in
      let n_courses = 8 + Dist.int rng 6 in
      let n_grad_courses = 4 + Dist.int rng 4 in
      let n_grad = 6 + Dist.int rng 5 in
      let n_undergrad = 14 + Dist.int rng 10 in
      for k = 0 to n_courses - 1 do
        addt c (course i j k) "Course";
        add c (course i j k) "name" (Rdf.Term.lit (Printf.sprintf "Course%d" k))
      done;
      for k = 0 to n_grad_courses - 1 do
        addt c (grad_course i j k) "GraduateCourse";
        add c (grad_course i j k) "name"
          (Rdf.Term.lit (Printf.sprintf "GraduateCourse%d" k))
      done;
      (* Faculty: person ids [0, n_faculty). Person 0 is the head. *)
      for k = 0 to n_faculty - 1 do
        let p = person i j k in
        let rank =
          if k = 0 then "FullProfessor"
          else
            Dist.choose rng
              [ "FullProfessor"; "AssociateProfessor"; "AssistantProfessor";
                "Lecturer" ]
        in
        addt c p rank;
        add c p "worksFor" dept;
        add c p "name" (Rdf.Term.lit (Printf.sprintf "Person%d_%d_%d" i j k));
        add c p "emailAddress"
          (Rdf.Term.lit (Printf.sprintf "person%d@dept%d.univ%d.edu" k j i));
        add c p "telephone" (Rdf.Term.lit (Printf.sprintf "555-%04d" (Dist.int rng 10000)));
        add c p "undergraduateDegreeFrom" (university (Dist.int rng (max 1 !ui)));
        add c p "doctoralDegreeFrom" (university (Dist.int rng (max 1 !ui)));
        if k = 0 then add c p "headOf" dept;
        (* Teaching: 1-2 courses, professors also a graduate course. *)
        add c p "teacherOf" (course i j (Dist.int rng n_courses));
        if rank <> "Lecturer" then
          add c p "teacherOf" (grad_course i j (Dist.int rng n_grad_courses));
        (* Publications. *)
        let n_pubs = 1 + Dist.int rng 4 in
        for pu = 0 to n_pubs - 1 do
          let pub = publication i j k pu in
          addt c pub "Publication";
          add c pub "publicationAuthor" p;
          add c pub "name" (Rdf.Term.lit (Printf.sprintf "Pub%d_%d_%d_%d" i j k pu))
        done
      done;
      (* Graduate students: person ids [n_faculty, n_faculty+n_grad). *)
      for k = n_faculty to n_faculty + n_grad - 1 do
        let p = person i j k in
        addt c p "GraduateStudent";
        add c p "memberOf" dept;
        add c p "name" (Rdf.Term.lit (Printf.sprintf "Person%d_%d_%d" i j k));
        add c p "emailAddress"
          (Rdf.Term.lit (Printf.sprintf "person%d@dept%d.univ%d.edu" k j i));
        add c p "undergraduateDegreeFrom" (university (Dist.int rng (max 1 !ui)));
        add c p "advisor" (person i j (Dist.int rng n_faculty));
        for _ = 0 to 1 + Dist.int rng 2 do
          add c p "takesCourse" (grad_course i j (Dist.int rng n_grad_courses))
        done;
        if Dist.bool rng 0.3 then
          add c p "teachingAssistantOf" (course i j (Dist.int rng n_courses))
      done;
      (* Undergraduates. *)
      for k = n_faculty + n_grad to n_faculty + n_grad + n_undergrad - 1 do
        let p = person i j k in
        addt c p "UndergraduateStudent";
        add c p "memberOf" dept;
        add c p "name" (Rdf.Term.lit (Printf.sprintf "Person%d_%d_%d" i j k));
        if Dist.bool rng 0.5 then
          add c p "advisor" (person i j (Dist.int rng n_faculty));
        for _ = 0 to 1 + Dist.int rng 3 do
          add c p "takesCourse" (course i j (Dist.int rng n_courses))
        done
      done
    done
  done;
  List.rev c.acc

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Ontology                                                            *)
(* ------------------------------------------------------------------ *)

(** The class hierarchy of the LUBM ontology (the fragment the queries
    need). *)
let class_hierarchy =
  [ ("GraduateStudent", "Student"); ("UndergraduateStudent", "Student");
    ("Student", "Person"); ("FullProfessor", "Professor");
    ("AssociateProfessor", "Professor"); ("AssistantProfessor", "Professor");
    ("Professor", "Faculty"); ("Lecturer", "Faculty"); ("Faculty", "Person");
    ("GraduateCourse", "Course"); ("University", "Organization");
    ("Department", "Organization") ]

(** Property hierarchy: heads work for their department; working for an
    organization entails membership; the three degree properties
    specialize [degreeFrom]. *)
let property_hierarchy =
  [ ("headOf", "worksFor"); ("worksFor", "memberOf");
    ("undergraduateDegreeFrom", "degreeFrom");
    ("mastersDegreeFrom", "degreeFrom"); ("doctoralDegreeFrom", "degreeFrom") ]

(** The ontology as an {!Sparql.Inference.ontology}, for automatic query
    expansion (the paper expanded its LUBM queries by hand; see
    Section 4.1). *)
let ontology () =
  let o = Sparql.Inference.create () in
  Sparql.Inference.add_type_predicate o (u "type");
  List.iter
    (fun (sub, super) -> Sparql.Inference.add_subclass o ~sub:(u sub) ~super:(u super))
    class_hierarchy;
  List.iter
    (fun (sub, super) ->
      Sparql.Inference.add_subproperty o ~sub:(u sub) ~super:(u super))
    property_hierarchy;
  o

(** The same axioms as RDFS triples, for stores/graphs that carry their
    ontology in-band. *)
let ontology_triples () =
  List.map
    (fun (sub, super) ->
      Rdf.Triple.make (Rdf.Term.iri (u sub))
        (Rdf.Term.iri Sparql.Inference.rdfs_subclass)
        (Rdf.Term.iri (u super)))
    class_hierarchy
  @ List.map
      (fun (sub, super) ->
        Rdf.Triple.make (Rdf.Term.iri (u sub))
          (Rdf.Term.iri Sparql.Inference.rdfs_subproperty)
          (Rdf.Term.iri (u super)))
      property_hierarchy

let type_union var types body =
  (* { body ?var type T1 } UNION { body ?var type T2 } ... *)
  String.concat " UNION "
    (List.map
       (fun ty -> Printf.sprintf "{ ?%s <%s> <%s> . %s }" var (u "type") (u ty) body)
       types)

let professor_types = [ "FullProfessor"; "AssociateProfessor"; "AssistantProfessor" ]
let student_types = [ "GraduateStudent"; "UndergraduateStudent" ]

let queries : (string * string) list =
  let t = u "type" in
  [ (* LQ1: graduate students taking a known graduate course. *)
    ( "LQ1",
      Printf.sprintf
        "SELECT ?x WHERE { ?x <%s> <%s> . ?x <%s> <%sUniversity0/Department0/GraduateCourse0> }"
        t (u "GraduateStudent") (u "takesCourse") ns );
    (* LQ2: the university/department/student triangle. *)
    ( "LQ2",
      Printf.sprintf
        "SELECT ?x ?y ?z WHERE { ?x <%s> <%s> . ?y <%s> <%s> . ?z <%s> <%s> . ?x <%s> ?z . ?z <%s> ?y . ?x <%s> ?y }"
        t (u "GraduateStudent") t (u "University") t (u "Department")
        (u "memberOf") (u "subOrganizationOf") (u "undergraduateDegreeFrom") );
    (* LQ3: publications of a known professor. *)
    ( "LQ3",
      Printf.sprintf
        "SELECT ?x WHERE { ?x <%s> <%s> . ?x <%s> <%sUniversity0/Department0/Person0> }"
        t (u "Publication") (u "publicationAuthor") ns );
    (* LQ4: professors of a known department, with contact star
       (inference expanded over the three professor ranks). *)
    ( "LQ4",
      Printf.sprintf "SELECT ?x ?n ?e ?p WHERE { %s }"
        (type_union "x" professor_types
           (Printf.sprintf
              "?x <%s> <%sUniversity0/Department0> . ?x <%s> ?n . ?x <%s> ?e . ?x <%s> ?p"
              (u "worksFor") ns (u "name") (u "emailAddress") (u "telephone"))) );
    (* LQ5: members of a known department (member = memberOf|worksFor,
       person = student|professor expanded). *)
    ( "LQ5",
      Printf.sprintf
        "SELECT ?x WHERE { { ?x <%s> <%sUniversity0/Department0> } UNION { ?x <%s> <%sUniversity0/Department0> } }"
        (u "memberOf") ns (u "worksFor") ns );
    (* LQ6: all students. *)
    ("LQ6", Printf.sprintf "SELECT ?x WHERE { %s }" (type_union "x" student_types ""));
    (* LQ7: students taking a course taught by a known professor. *)
    ( "LQ7",
      Printf.sprintf "SELECT ?x ?y WHERE { %s }"
        (type_union "x" student_types
           (Printf.sprintf
              "<%sUniversity0/Department0/Person0> <%s> ?y . ?x <%s> ?y" ns
              (u "teacherOf") (u "takesCourse"))) );
    (* LQ8: students in departments of a known university, with email. *)
    ( "LQ8",
      Printf.sprintf "SELECT ?x ?y ?z WHERE { %s }"
        (type_union "x" student_types
           (Printf.sprintf
              "?y <%s> <%s> . ?x <%s> ?y . ?y <%s> <%sUniversity0> . ?x <%s> ?z"
              t (u "Department") (u "memberOf") (u "subOrganizationOf") ns
              (u "emailAddress"))) );
    (* LQ9: student/faculty/course triangle (advisor teaches a course
       the student takes). *)
    ( "LQ9",
      Printf.sprintf "SELECT ?x ?y ?z WHERE { %s }"
        (type_union "x" student_types
           (Printf.sprintf "?x <%s> ?y . ?y <%s> ?z . ?x <%s> ?z" (u "advisor")
              (u "teacherOf") (u "takesCourse"))) );
    (* LQ10: students taking a known graduate course. *)
    ( "LQ10",
      Printf.sprintf "SELECT ?x WHERE { %s }"
        (type_union "x" student_types
           (Printf.sprintf "?x <%s> <%sUniversity0/Department0/GraduateCourse0>"
              (u "takesCourse") ns)) );
    (* LQ13: people with a degree from a known university. *)
    ( "LQ13",
      Printf.sprintf
        "SELECT ?x WHERE { { ?x <%s> <%sUniversity0> } UNION { ?x <%s> <%sUniversity0> } UNION { ?x <%s> <%sUniversity0> } }"
        (u "undergraduateDegreeFrom") ns (u "mastersDegreeFrom") ns
        (u "doctoralDegreeFrom") ns );
    (* LQ14: all undergraduate students (the big scan). *)
    ( "LQ14",
      Printf.sprintf "SELECT ?x WHERE { ?x <%s> <%s> }" t (u "UndergraduateStudent") ) ]
