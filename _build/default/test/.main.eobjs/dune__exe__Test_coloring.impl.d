test/test_coloring.ml: Alcotest Coloring Db2rdf Engine Gen Hashtbl Helpers Layout List Loader Option Pred_map Printf QCheck QCheck_alcotest Rdf Workloads
