bench/exp_load.ml: Db2rdf Harness List Printf Workloads
