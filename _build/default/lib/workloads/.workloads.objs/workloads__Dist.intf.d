lib/workloads/dist.mli:
