(** Physical planning: turns a {!Sql_ast.query} into an executable plan.

    This is the "35 years of relational optimization" stand-in: it picks
    access paths (hash-index lookup vs sequential scan), join strategies
    (index nested-loop when the inner side is an indexed base table,
    hash join on equality keys, nested loop otherwise), and pushes WHERE
    conjuncts to the earliest join input where they can be evaluated
    without changing LEFT OUTER JOIN semantics. The DB2RDF translator
    relies on this layer behaving like a production optimizer: a star
    query against DPH must become one index probe, not a scan. *)

type plan =
  | Scan of {
      table : string;
      alias : string;
      filter : Sql_ast.expr option;
      cols : string list option;
          (** columns that survive into the output row ([None] = all);
              the filter still sees the full row — fused
              selection/projection *)
    }
  | Index_lookup of {
      table : string;
      alias : string;
      col : string;
      keys : Value.t list;
      filter : Sql_ast.expr option;
      cols : string list option;
    }
  | Values_rows of {
      rows : Sql_ast.expr list list;
      alias : string;
      cols : string list;
    }
  | Subplan of { plan : plan; alias : string }
      (** Re-qualify a subquery's output columns under [alias]. *)
  | Inl_join of {
      outer : plan;
      table : string;
      alias : string;
      col : string;
      key : Sql_ast.expr;  (** evaluated against each outer row *)
      kind : Sql_ast.join_kind;
      residual : Sql_ast.expr option;
      cols : string list option;
          (** inner-table columns kept in the output row ([None] = all);
              an inner-only residual still sees the full table row *)
    }
  | Hash_join of {
      left : plan;
      right : plan;
      left_keys : Sql_ast.expr list;
      right_keys : Sql_ast.expr list;
      kind : Sql_ast.join_kind;
      residual : Sql_ast.expr option;
    }
  | Nl_join of {
      left : plan;
      right : plan;
      kind : Sql_ast.join_kind;
      cond : Sql_ast.expr option;
    }
  | Values_join of {
      outer : plan;
      rows : Sql_ast.expr list list;
      alias : string;
      cols : string list;
    }
  | Wcoj of {
      atoms : Wcoj.atom list;  (** one per table alias, in FROM order *)
      var_order : int array;
          (** global intersection order over join-variable classes —
              a pure function of the statement, so the same SQL always
              yields the same emission order *)
      n_vars : int;
      outputs : (string * string * int) list;
          (** (alias, column, variable) — every class member column, so
              any downstream qualified reference resolves *)
      est_rows : int;  (** selector's output-cardinality estimate *)
    }
      (** Leapfrog multiway join: intersects all atoms sharing each
          join variable at once instead of chaining binary joins —
          worst-case-optimal on cyclic regions. Planned only when the
          database's WCOJ knob is set and its installed selector opts
          in (see {!Database.set_wcoj_selector}). *)
  | Extvp_scan of { input : plan; name : string }
      (** Marker around an access path reading a semi-join reduction
          ({!Extvp}) instead of the base relation: execution is the
          wrapped plan's, but the substitution — and its est-vs-actual
          q-error — stays visible in EXPLAIN. *)
  | Filter of plan * Sql_ast.expr
  | Project of {
      input : plan;
      items : (Sql_ast.expr * string) list;
      distinct : bool;
      order_by : Sql_ast.order_item list;
      limit : int option;
      offset : int option;
    }
  | Aggregate of {
      input : plan;
      keys : Sql_ast.expr list;  (** GROUP BY ([] = one global group) *)
      items : agg_item list;
      distinct : bool;
      order_by : Sql_ast.order_item list;
      limit : int option;
      offset : int option;
    }
  | Union_plan of { all : bool; parts : plan list }
  | Empty_row  (** SELECT without FROM: one row, no columns *)

and agg_item =
  | Ai_plain of Sql_ast.expr * string
      (** a grouped column (evaluated on each group's first row) *)
  | Ai_agg of Sql_ast.agg_fun * Sql_ast.expr option * bool * string
      (** aggregate, argument ([None] = star), DISTINCT flag, name *)

(** Plan a query against the catalog (index decisions consult the
    database's tables; CTE names must already be registered). *)
val plan_query : Database.t -> Sql_ast.query -> plan

val plan_select : Database.t -> Sql_ast.select -> plan

(** Crude output-cardinality estimate of a plan (rows). Exact for base
    tables, textbook fudge factors above; the executor records it per
    operator so EXPLAIN ANALYZE can report estimated-vs-actual
    (q-error). *)
val estimate : Database.t -> plan -> int

(** One-line operator description (no children) — shared by the plan
    printer and the {!Opstats} labels of EXPLAIN ANALYZE. *)
val node_label : plan -> string

(** Immediate inputs of a plan node, in plan order. *)
val children : plan -> plan list

(** Indented plan rendering for explain output. *)
val plan_to_string : plan -> string
