(** PRBench-like workload: the paper's private tool-integration
    benchmark — software artifacts (bug reports, requirements, test
    cases, commits, builds) produced by different tools and cross-linked
    through an integration vocabulary. The signature features the paper
    calls out: many distinct small "graphs" (we model the provenance
    with a [fromTool] predicate), fairly complex queries, including one
    that is a UNION of a large number of conjunctive patterns (PQ28),
    and a cluster of long-running joins (PQ10, PQ26, PQ27). *)

let ns = "http://prbench.org/ti#"
let u name = ns ^ name
let iri name = Rdf.Term.iri (u name)

let bug i = Rdf.Term.iri (Printf.sprintf "%sBug%d" ns i)
let req i = Rdf.Term.iri (Printf.sprintf "%sReq%d" ns i)
let test i = Rdf.Term.iri (Printf.sprintf "%sTest%d" ns i)
let commit i = Rdf.Term.iri (Printf.sprintf "%sCommit%d" ns i)
let build i = Rdf.Term.iri (Printf.sprintf "%sBuild%d" ns i)
let dev i = Rdf.Term.iri (Printf.sprintf "%sDev%d" ns i)
let tool i = Rdf.Term.iri (Printf.sprintf "%sTool%d" ns i)

type counters = { mutable triples : int; mutable acc : Rdf.Triple.t list }

let add c s p o =
  c.acc <- Rdf.Triple.make s (Rdf.Term.iri (u p)) o :: c.acc;
  c.triples <- c.triples + 1

let statuses = [ "open"; "closed"; "inprogress"; "verified"; "rejected" ]
let priorities = [ "P1"; "P2"; "P3"; "P4" ]

(** Generate roughly [scale] triples. *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 31 in
  let c = { triples = 0; acc = [] } in
  let n_devs = max 5 (scale / 500) in
  let n_tools = 8 in
  for d = 0 to n_devs - 1 do
    add c (dev d) "type" (iri "Developer");
    add c (dev d) "name" (Rdf.Term.lit (Printf.sprintf "Developer %d" d))
  done;
  for t = 0 to n_tools - 1 do
    add c (tool t) "type" (iri "Tool");
    add c (tool t) "name" (Rdf.Term.lit (Printf.sprintf "Tool %d" t))
  done;
  let bi = ref 0 and ri = ref 0 and ti = ref 0 and ci = ref 0 and bl = ref 0 in
  while c.triples < scale do
    (* A requirement with implementing commits, verifying tests and
       possibly blocking bugs — one "integration cluster". *)
    let r = !ri in
    incr ri;
    add c (req r) "type" (iri "Requirement");
    add c (req r) "title" (Rdf.Term.lit (Printf.sprintf "Requirement %d" r));
    add c (req r) "status" (Rdf.Term.lit (Dist.choose rng statuses));
    add c (req r) "priority" (Rdf.Term.lit (Dist.choose rng priorities));
    add c (req r) "fromTool" (tool (Dist.int rng n_tools));
    add c (req r) "owner" (dev (Dist.int rng n_devs));
    (* Bugs against the requirement. *)
    let n_bugs = Dist.int rng 4 in
    for _ = 1 to n_bugs do
      let b = !bi in
      incr bi;
      add c (bug b) "type" (iri "BugReport");
      add c (bug b) "title" (Rdf.Term.lit (Printf.sprintf "Bug %d" b));
      add c (bug b) "affects" (req r);
      add c (bug b) "status" (Rdf.Term.lit (Dist.choose rng statuses));
      add c (bug b) "priority" (Rdf.Term.lit (Dist.choose rng priorities));
      add c (bug b) "reportedBy" (dev (Dist.int rng n_devs));
      add c (bug b) "fromTool" (tool (Dist.int rng n_tools));
      if b > 0 && Dist.bool rng 0.15 then
        add c (bug b) "duplicates" (bug (Dist.int rng b));
      (* Fixing commit. *)
      if Dist.bool rng 0.7 then begin
        let cm = !ci in
        incr ci;
        add c (commit cm) "type" (iri "Commit");
        add c (commit cm) "fixes" (bug b);
        add c (commit cm) "author" (dev (Dist.int rng n_devs));
        add c (commit cm) "fromTool" (tool (Dist.int rng n_tools));
        add c (commit cm) "message" (Rdf.Term.lit (Printf.sprintf "Fix bug %d" b))
      end
    done;
    (* Implementing commits. *)
    let n_commits = 1 + Dist.int rng 3 in
    for _ = 1 to n_commits do
      let cm = !ci in
      incr ci;
      add c (commit cm) "type" (iri "Commit");
      add c (commit cm) "implements" (req r);
      add c (commit cm) "author" (dev (Dist.int rng n_devs));
      add c (commit cm) "fromTool" (tool (Dist.int rng n_tools));
      add c (commit cm) "message" (Rdf.Term.lit (Printf.sprintf "Implement req %d" r))
    done;
    (* Verifying tests. *)
    let n_tests = 1 + Dist.int rng 2 in
    for _ = 1 to n_tests do
      let te = !ti in
      incr ti;
      add c (test te) "type" (iri "TestCase");
      add c (test te) "verifies" (req r);
      add c (test te) "status" (Rdf.Term.lit (Dist.choose rng [ "pass"; "fail"; "skip" ]));
      add c (test te) "fromTool" (tool (Dist.int rng n_tools));
      add c (test te) "title" (Rdf.Term.lit (Printf.sprintf "Test %d" te))
    done;
    (* Builds referencing commits (multi-valued). *)
    if Dist.bool rng 0.4 && !ci > 3 then begin
      let b = !bl in
      incr bl;
      add c (build b) "type" (iri "Build");
      add c (build b) "status" (Rdf.Term.lit (Dist.choose rng [ "green"; "red" ]));
      for _ = 1 to 2 + Dist.int rng 4 do
        add c (build b) "includes" (commit (Dist.int rng !ci))
      done
    end
  done;
  List.rev c.acc

(* ------------------------------------------------------------------ *)
(* Queries PQ1–PQ29                                                    *)
(* ------------------------------------------------------------------ *)

let queries : (string * string) list =
  let t = u "type" in
  let pq n q = (Printf.sprintf "PQ%d" n, q) in
  (* PQ28: a union of many conjunctive patterns — the paper mentions a
     100-branch union; we build a 40-branch one over status/priority/
     tool combinations. *)
  let big_union =
    let branches = ref [] in
    List.iter
      (fun st ->
        List.iter
          (fun pr ->
            List.iter
              (fun tl ->
                branches :=
                  Printf.sprintf
                    "{ ?x <%s> <%s> . ?x <%s> \"%s\" . ?x <%s> \"%s\" . ?x <%s> <%sTool%d> }"
                    t (u "BugReport") (u "status") st (u "priority") pr
                    (u "fromTool") ns tl
                  :: !branches)
              [ 0; 1 ])
          priorities)
      statuses;
    Printf.sprintf "SELECT ?x WHERE { %s }" (String.concat " UNION " !branches)
  in
  [ pq 1
      (Printf.sprintf
         "SELECT ?b ?title WHERE { ?b <%s> <%s> . ?b <%s> \"open\" . ?b <%s> \"P1\" . ?b <%s> ?title }"
         t (u "BugReport") (u "status") (u "priority") (u "title"));
    pq 2
      (Printf.sprintf "SELECT ?r WHERE { ?r <%s> <%s> . ?r <%s> \"closed\" }" t
         (u "Requirement") (u "status"));
    pq 3
      (Printf.sprintf
         "SELECT ?b ?r WHERE { ?b <%s> ?r . ?r <%s> \"open\" }" (u "affects")
         (u "status"));
    pq 4
      (Printf.sprintf
         "SELECT ?c ?r WHERE { ?c <%s> ?r . ?c <%s> <%sDev0> }" (u "implements")
         (u "author") ns);
    pq 5
      (Printf.sprintf
         "SELECT ?t ?r WHERE { ?t <%s> ?r . ?t <%s> \"fail\" }" (u "verifies")
         (u "status"));
    pq 6
      (Printf.sprintf
         "SELECT ?b WHERE { ?b <%s> <%s> . ?b <%s> <%sTool0> }" t (u "BugReport")
         (u "fromTool") ns);
    pq 7
      (Printf.sprintf
         "SELECT ?b ?d WHERE { ?b <%s> <%s> . ?b <%s> ?d OPTIONAL { ?b <%s> ?dup } }"
         t (u "BugReport") (u "reportedBy") (u "duplicates"));
    pq 8
      (Printf.sprintf
         "SELECT ?r ?c ?te WHERE { ?c <%s> ?r . ?te <%s> ?r . ?r <%s> \"open\" }"
         (u "implements") (u "verifies") (u "status"));
    pq 9
      (Printf.sprintf
         "SELECT ?x ?y WHERE { ?x <%s> ?y . ?y <%s> ?z . ?z <%s> \"P1\" }"
         (u "duplicates") (u "affects") (u "priority"));
    (* PQ10: long-running — cross-tool join through developers. *)
    pq 10
      (Printf.sprintf
         "SELECT ?b ?c WHERE { ?b <%s> ?d . ?c <%s> ?d . ?b <%s> <%sTool0> . ?c <%s> <%sTool1> }"
         (u "reportedBy") (u "author") (u "fromTool") ns (u "fromTool") ns);
    pq 11
      (Printf.sprintf "SELECT ?p ?o WHERE { <%sBug0> ?p ?o }" ns);
    pq 12
      (Printf.sprintf "SELECT ?s ?p WHERE { ?s ?p <%sDev1> }" ns);
    pq 13
      (Printf.sprintf
         "SELECT ?r WHERE { { ?r <%s> \"P1\" } UNION { ?r <%s> \"P2\" } . ?r <%s> <%s> }"
         (u "priority") (u "priority") t (u "Requirement"));
    (* PQ14–PQ17, PQ24, PQ29: medium-running. *)
    pq 14
      (Printf.sprintf
         "SELECT ?r ?b ?c WHERE { ?b <%s> ?r . ?c <%s> ?b . ?r <%s> \"open\" }"
         (u "affects") (u "fixes") (u "status"));
    pq 15
      (Printf.sprintf
         "SELECT ?d ?b ?r WHERE { ?b <%s> ?d . ?b <%s> ?r . ?r <%s> \"inprogress\" }"
         (u "reportedBy") (u "affects") (u "status"));
    pq 16
      (Printf.sprintf
         "SELECT ?bl ?c WHERE { ?bl <%s> ?c . ?bl <%s> \"red\" . ?c <%s> ?r }"
         (u "includes") (u "status") (u "implements"));
    pq 17
      (Printf.sprintf
         "SELECT ?r ?own ?st WHERE { ?r <%s> <%s> . ?r <%s> ?own . ?r <%s> ?st OPTIONAL { ?b <%s> ?r } }"
         t (u "Requirement") (u "owner") (u "status") (u "affects"));
    pq 18
      (Printf.sprintf
         "SELECT ?te WHERE { ?te <%s> <%s> . ?te <%s> \"pass\" }" t (u "TestCase")
         (u "status"));
    pq 19
      (Printf.sprintf
         "SELECT ?c ?m WHERE { ?c <%s> <%s> . ?c <%s> ?m FILTER REGEX(?m, \"Fix\") }"
         t (u "Commit") (u "message"));
    pq 20
      (Printf.sprintf
         "SELECT ?d ?n WHERE { ?d <%s> <%s> . ?d <%s> ?n }" t (u "Developer")
         (u "name"));
    pq 21
      (Printf.sprintf
         "SELECT ?b ?t WHERE { ?b <%s> ?t . ?b <%s> \"rejected\" }" (u "fromTool")
         (u "status"));
    pq 22
      (Printf.sprintf
         "SELECT ?r ?te ?st WHERE { ?te <%s> ?r OPTIONAL { ?te <%s> ?st } }"
         (u "verifies") (u "status"));
    pq 23
      (Printf.sprintf
         "SELECT ?x WHERE { ?x <%s> <%s> . ?x <%s> \"verified\" . ?x <%s> \"P3\" }"
         t (u "Requirement") (u "status") (u "priority"));
    pq 24
      (Printf.sprintf
         "SELECT ?d ?r ?b WHERE { ?r <%s> ?d . ?b <%s> ?r . ?b <%s> ?d }" (u "owner")
         (u "affects") (u "reportedBy"));
    pq 25
      (Printf.sprintf
         "SELECT ?bl WHERE { ?bl <%s> <%s> . ?bl <%s> \"green\" }" t (u "Build")
         (u "status"));
    (* PQ26/PQ27: long-running 4-hop chains. *)
    pq 26
      (Printf.sprintf
         "SELECT ?bl ?r WHERE { ?bl <%s> ?c . ?c <%s> ?b . ?b <%s> ?r . ?r <%s> \"open\" }"
         (u "includes") (u "fixes") (u "affects") (u "status"));
    pq 27
      (Printf.sprintf
         "SELECT ?d1 ?d2 WHERE { ?b <%s> ?d1 . ?c <%s> ?b . ?c <%s> ?d2 . ?b <%s> \"closed\" }"
         (u "reportedBy") (u "fixes") (u "author") (u "status"));
    pq 28 big_union;
    pq 29
      (Printf.sprintf
         "SELECT ?r ?c ?d WHERE { ?c <%s> ?r . ?c <%s> ?d OPTIONAL { ?te <%s> ?r . ?te <%s> \"fail\" } }"
         (u "implements") (u "author") (u "verifies") (u "status")) ]
