(** The predicate-oriented (vertically partitioned) baseline (Section 2,
    third alternative; Abadi et al.): one binary [entry, val] relation
    per predicate, both columns indexed, and the Figure 2(d) translation.
    New predicates require new relations — the schema-dynamicity problem
    the paper calls out — reproduced here by creating tables on first
    sight of a predicate. *)

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  tables : (int, string) Hashtbl.t;  (** predicate id -> table name *)
  stats : Dataset_stats.t;
  dict_state : Dict_table.state;
  seen : (int * int * int, unit) Hashtbl.t;
  mutable table_count : int;
}

val create : ?dict:Rdf.Dictionary.t -> unit -> t
val insert : t -> Rdf.Triple.t -> unit
val load : t -> Rdf.Triple.t list -> unit

(** Delete one triple (no-op when absent). *)
val delete : t -> Rdf.Triple.t -> unit

(** Number of predicate relations — the schema-explosion metric. *)
val relation_count : t -> int

val translate : t -> Sparql.Ast.query -> Relsql.Sql_ast.stmt
val query : ?timeout:float -> t -> Sparql.Ast.query -> Sparql.Ref_eval.results

(** Like {!query}, plus the executor's per-operator metrics tree. *)
val query_analyzed :
  ?timeout:float -> t -> Sparql.Ast.query ->
  Sparql.Ref_eval.results * Relsql.Opstats.t

val explain : t -> Sparql.Ast.query -> string
val to_store : ?name:string -> t -> Store.t
