examples/lubm_university.mli:
