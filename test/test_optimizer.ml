(** Tests for the hybrid optimizer: cost model (Def 3.1), data flow
    graph (Defs 3.2–3.8, Figure 8), greedy optimal flow tree (Figure 9),
    execution tree with late fusing (Figure 10) and star merging
    (Figure 11). *)

open Db2rdf

let fig6_setup () =
  let triples = Helpers.fig1_triples () in
  let store = Loader.create ~layout:(Layout.make ~dph_cols:6 ~rph_cols:6) () in
  Loader.load store triples;
  let q = Sparql.Parser.parse Helpers.fig6_query_src in
  let pt = Sparql.Pattern_tree.of_query q in
  (store, q, pt)

(* Triple ids in parse order for the Figure 6 query:
   t0 = (?x home "Palo Alto")     [paper's t1]
   t1 = (?x founder ?y)           [t2]
   t2 = (?x member ?y)            [t3]
   t3 = (?y industry "Software")  [t4]
   t4 = (?z developer ?y)         [t5]
   t5 = (?y revenue ?n)           [t6]
   t6 = (?y employees ?m)         [t7] *)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

let test_tmc () =
  let store, _, pt = fig6_setup () in
  let stats = Loader.stats store and dict = Loader.dictionary store in
  let pat i = (Sparql.Pattern_tree.triple pt i).Sparql.Pattern_tree.pat in
  (* Scan costs the whole dataset. *)
  Alcotest.(check (float 0.001)) "sc = total" 21.0 (Cost.tmc stats dict (pat 3) Cost.Sc);
  (* aco on the "Software" constant is its exact frequency (2). *)
  Alcotest.(check (float 0.001)) "aco exact" 2.0 (Cost.tmc stats dict (pat 3) Cost.Aco);
  (* acs with variable subject costs the predicate's subject fan-out
     ("home" is single-valued: 1 triple per subject). *)
  let acs = Cost.tmc stats dict (pat 0) Cost.Acs in
  Alcotest.(check (float 0.001)) "acs per-predicate fan-out" 1.0 acs;
  (* per-predicate averages: "industry" has 5 triples over 2 subjects
     and 4 distinct objects. *)
  let industry = Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri "industry")) in
  Alcotest.(check (float 0.001)) "industry per-subject" 2.5
    (Dataset_stats.avg_per_subject_of_pred stats industry);
  Alcotest.(check (float 0.001)) "industry per-object" 1.25
    (Dataset_stats.avg_per_object_of_pred stats industry);
  (* aco on an unknown constant is cheap (empty). *)
  let q2 = Sparql.Parser.parse "SELECT ?x WHERE { ?x <founder> <Nowhere> }" in
  let pt2 = Sparql.Pattern_tree.of_query q2 in
  let p2 = (Sparql.Pattern_tree.triple pt2 0).Sparql.Pattern_tree.pat in
  Alcotest.(check (float 0.001)) "unknown const" 1.0 (Cost.tmc stats dict p2 Cost.Aco)

let test_produced_required () =
  let _, _, pt = fig6_setup () in
  let pat i = (Sparql.Pattern_tree.triple pt i).Sparql.Pattern_tree.pat in
  let vs set = Sparql.Ast.VarSet.elements set in
  (* t3 = (?y industry "Software"): aco requires nothing, produces y. *)
  Alcotest.(check (list string)) "P(t4,aco)" [ "y" ] (vs (Dataflow.produced (pat 3) Cost.Aco));
  Alcotest.(check (list string)) "R(t4,aco)" [] (vs (Dataflow.required (pat 3) Cost.Aco));
  (* t4 = (?z developer ?y): aco requires y, produces z. *)
  Alcotest.(check (list string)) "R(t5,aco)" [ "y" ] (vs (Dataflow.required (pat 4) Cost.Aco));
  Alcotest.(check (list string)) "P(t5,aco)" [ "z" ] (vs (Dataflow.produced (pat 4) Cost.Aco));
  (* scans require nothing and produce everything. *)
  Alcotest.(check (list string)) "R(t5,sc)" [] (vs (Dataflow.required (pat 4) Cost.Sc));
  Alcotest.(check (list string)) "P(t5,sc)" [ "y"; "z" ] (vs (Dataflow.produced (pat 4) Cost.Sc))

(* ------------------------------------------------------------------ *)
(* Data flow graph (Figure 8)                                          *)
(* ------------------------------------------------------------------ *)

let edge_exists g ~src ~dst =
  List.exists
    (fun (e : Dataflow.edge) ->
      e.Dataflow.dst.Dataflow.triple = snd dst
      && e.Dataflow.dst.Dataflow.meth = fst dst
      &&
      match e.Dataflow.src, fst src with
      | None, None -> snd src = -1
      | Some s, _ ->
        Some s.Dataflow.meth = fst src && s.Dataflow.triple = snd src
      | None, _ -> false)
    g.Dataflow.edges

let test_dataflow_graph () =
  let store, _, pt = fig6_setup () in
  let g = Dataflow.build pt (Loader.stats store) (Loader.dictionary store) in
  (* root -> (t4, aco): constant object, no requirements. *)
  Alcotest.(check bool) "root->(t3,aco)" true
    (edge_exists g ~src:(None, -1) ~dst:(Cost.Aco, 3));
  (* (t4, aco) -> (t2, aco): t4 produces y, t2 requires y via aco. *)
  Alcotest.(check bool) "(t3,aco)->(t1,aco)" true
    (edge_exists g ~src:(Some Cost.Aco, 3) ~dst:(Cost.Aco, 1));
  (* (t2, aco) -> (t1, acs): t2 produces x, t1 requires x. *)
  Alcotest.(check bool) "(t1,aco)->(t0,acs)" true
    (edge_exists g ~src:(Some Cost.Aco, 1) ~dst:(Cost.Acs, 0));
  (* OR-connected triples have no edges between them. *)
  Alcotest.(check bool) "no edge founder->member" false
    (edge_exists g ~src:(Some Cost.Aco, 1) ~dst:(Cost.Acs, 2));
  (* No flow out of the OPTIONAL triple into its mandatory context. *)
  Alcotest.(check bool) "no edge employees->revenue" false
    (edge_exists g ~src:(Some Cost.Acs, 6) ~dst:(Cost.Acs, 5));
  (* ...but flow into the OPTIONAL is allowed. *)
  Alcotest.(check bool) "edge industry->employees" true
    (edge_exists g ~src:(Some Cost.Aco, 3) ~dst:(Cost.Acs, 6))

let test_optimal_flow () =
  let store, _, pt = fig6_setup () in
  let g, flow =
    Dataflow.compute pt (Loader.stats store) (Loader.dictionary store)
  in
  ignore g;
  (* Covers each triple exactly once. *)
  Alcotest.(check int) "7 nodes" 7 (List.length flow.Dataflow.order);
  let triples = List.map (fun n -> n.Dataflow.triple) flow.Dataflow.order in
  Alcotest.(check (list int)) "each triple once" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.sort compare triples);
  (* The flow root is a constant-object access — either "Palo Alto"
     (t0, frequency 1) or "Software" (t3, frequency 2); the paper's
     bounded top-k statistics pick t3, exact counts pick t0. *)
  let root = (List.hd flow.Dataflow.order).Dataflow.triple in
  Alcotest.(check bool) "root is a constant aco access" true
    (List.mem root [ 0; 3 ] && flow.Dataflow.method_of.(root) = Cost.Aco);
  (* Every non-root node's flow parent precedes it. *)
  Array.iteri
    (fun tid parent ->
      match parent with
      | None -> ()
      | Some (p : Dataflow.node) ->
        Alcotest.(check bool) "parent precedes child" true
          (flow.Dataflow.pos_of.(p.Dataflow.triple) < flow.Dataflow.pos_of.(tid)))
    flow.Dataflow.parent_of;
  (* Positions are consistent with order. *)
  List.iteri
    (fun i n -> Alcotest.(check int) "pos" i flow.Dataflow.pos_of.(n.Dataflow.triple))
    flow.Dataflow.order

let test_worst_flow_differs () =
  let store, _, pt = fig6_setup () in
  let _, best = Dataflow.compute ~objective:Dataflow.Best pt (Loader.stats store) (Loader.dictionary store) in
  let _, worst = Dataflow.compute ~objective:Dataflow.Worst pt (Loader.stats store) (Loader.dictionary store) in
  Alcotest.(check bool) "different starting point" true
    ((List.hd best.Dataflow.order) <> (List.hd worst.Dataflow.order))

(* ------------------------------------------------------------------ *)
(* Execution tree (Figure 10)                                          *)
(* ------------------------------------------------------------------ *)

let test_exec_tree_fig10 () =
  let store, _, pt = fig6_setup () in
  let _, flow = Dataflow.compute pt (Loader.stats store) (Loader.dictionary store) in
  let t = Exec_tree.build pt flow in
  (* Every triple exactly once. *)
  Alcotest.(check (list int)) "coverage" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.sort compare (Exec_tree.triples_of t));
  (* Shape: OPT at the root (employees last), t3 evaluated first, the
     OR of founder/member next, then the home filter triple — the
     Figure 10 weave. *)
  (match t with
   | Exec_tree.Opt (main, Exec_tree.Leaf (6, _)) ->
     let rec leftmost = function
       | Exec_tree.Leaf (tid, _) -> tid
       | Exec_tree.And (a, _) | Exec_tree.Opt (a, _) -> leftmost a
       | Exec_tree.Or (p :: _) -> leftmost p
       | Exec_tree.Or [] | Exec_tree.Unit -> -1
     in
     Alcotest.(check bool) "a selective constant access first" true
       (List.mem (leftmost main) [ 0; 3 ])
   | _ -> Alcotest.fail ("unexpected shape: " ^ Exec_tree.to_string pt t));
  (* Late fusing: the pure-filter triple t0 (home) fuses before the
     fresh-variable producers t4 (developer) and t5 (revenue). *)
  let order = ref [] in
  let rec collect = function
    | Exec_tree.Leaf (tid, _) -> order := tid :: !order
    | Exec_tree.And (a, b) | Exec_tree.Opt (a, b) ->
      collect a;
      collect b
    | Exec_tree.Or parts -> List.iter collect parts
    | Exec_tree.Unit -> ()
  in
  collect t;
  let order = List.rev !order in
  let pos tid = Option.get (List.find_index (Int.equal tid) order) in
  Alcotest.(check bool) "home before developer" true (pos 0 < pos 4);
  Alcotest.(check bool) "home before revenue" true (pos 0 < pos 5)

let test_exec_tree_syntactic () =
  let store, _, pt = fig6_setup () in
  let _, flow = Dataflow.compute pt (Loader.stats store) (Loader.dictionary store) in
  let t = Exec_tree.build_syntactic pt flow in
  Alcotest.(check (list int)) "coverage" [ 0; 1; 2; 3; 4; 5; 6 ]
    (List.sort compare (Exec_tree.triples_of t));
  (* Syntactic order starts at t0. *)
  let rec leftmost = function
    | Exec_tree.Leaf (tid, _) -> tid
    | Exec_tree.And (a, _) | Exec_tree.Opt (a, _) -> leftmost a
    | Exec_tree.Or (p :: _) -> leftmost p
    | Exec_tree.Or [] | Exec_tree.Unit -> -1
  in
  Alcotest.(check int) "t0 first" 0 (leftmost t)

(* ------------------------------------------------------------------ *)
(* Merging (Figure 11)                                                 *)
(* ------------------------------------------------------------------ *)

let merge_plan ?(merge = true) () =
  let store, q, pt = fig6_setup () in
  let e = Db2rdf.Engine.create ~layout:(Layout.make ~dph_cols:6 ~rph_cols:6) () in
  Db2rdf.Engine.load e (Helpers.fig1_triples ());
  ignore store;
  let options = { Engine.default_options with merge } in
  ignore options;
  let _, flow =
    Dataflow.compute pt (Loader.stats (Engine.loader e)) (Loader.dictionary (Engine.loader e))
  in
  let etree = Exec_tree.build pt flow in
  let ctx = Engine.merge_ctx e pt q in
  let ctx = { ctx with Merge.merging_enabled = merge } in
  (pt, Merge.of_exec ctx etree)

let rec stars = function
  | Merge.Node s -> [ s ]
  | Merge.P_and (a, b) | Merge.P_opt (a, b) -> stars a @ stars b
  | Merge.P_or parts -> List.concat_map stars parts
  | Merge.P_unit -> []

let test_merge_fig11 () =
  let _, plan = merge_plan () in
  let ss = stars plan in
  (* The OR of founder/member merges into one disjunctive star... *)
  Alcotest.(check bool) "or-star exists" true
    (List.exists
       (fun s ->
         s.Merge.sem = Merge.Any
         && List.sort compare s.Merge.star_triples = [ 1; 2 ])
       ss);
  (* ...and employees (t6) OPT-merges into the star of revenue (t5). *)
  Alcotest.(check bool) "opt-merge onto revenue star" true
    (List.exists
       (fun s ->
         List.mem 5 s.Merge.star_triples && s.Merge.opt_triples = [ 6 ])
       ss)

let test_merge_disabled () =
  let _, plan = merge_plan ~merge:false () in
  List.iter
    (fun s ->
      Alcotest.(check int) "singleton star"
        1
        (List.length s.Merge.star_triples + List.length s.Merge.opt_triples))
    (stars plan)

let test_merge_spill_veto () =
  (* A 1-column layout forces spills; star merging must be vetoed and
     answers must still be correct. *)
  let layout = Layout.make ~dph_cols:1 ~rph_cols:1 in
  let e =
    Engine.create ~layout
      ~direct_map:(Pred_map.hashed ~m:1 ~seed:1)
      ~reverse_map:(Pred_map.hashed ~m:1 ~seed:2) ()
  in
  let triples = Helpers.fig1_triples () in
  Engine.load e triples;
  let g = Helpers.oracle_of triples in
  let src = "SELECT ?s WHERE { ?s <industry> \"Software\" . ?s <employees> ?e . ?s <HQ> ?h }" in
  let q = Sparql.Parser.parse src in
  (* All three predicates spill somewhere; the plan must not merge. *)
  let pt = Sparql.Pattern_tree.of_query q in
  let _, flow = Dataflow.compute pt (Loader.stats (Engine.loader e)) (Loader.dictionary (Engine.loader e)) in
  let plan = Merge.of_exec (Engine.merge_ctx e pt q) (Exec_tree.build pt flow) in
  List.iter
    (fun s -> Alcotest.(check int) "no merged star under spills" 1
        (List.length s.Merge.star_triples + List.length s.Merge.opt_triples))
    (stars plan);
  Helpers.check_store_vs_oracle g (Engine.to_store e) src

let suite =
  [ Alcotest.test_case "TMC (Def 3.1)" `Quick test_tmc;
    Alcotest.test_case "produced/required (Defs 3.2/3.3)" `Quick test_produced_required;
    Alcotest.test_case "data flow graph (Fig 8)" `Quick test_dataflow_graph;
    Alcotest.test_case "optimal flow tree (Fig 9)" `Quick test_optimal_flow;
    Alcotest.test_case "worst flow differs" `Quick test_worst_flow_differs;
    Alcotest.test_case "exec tree (Fig 10)" `Quick test_exec_tree_fig10;
    Alcotest.test_case "syntactic exec tree" `Quick test_exec_tree_syntactic;
    Alcotest.test_case "merging (Fig 11)" `Quick test_merge_fig11;
    Alcotest.test_case "merging disabled" `Quick test_merge_disabled;
    Alcotest.test_case "spill veto" `Quick test_merge_spill_veto ]
