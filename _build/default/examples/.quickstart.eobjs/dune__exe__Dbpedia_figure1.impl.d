examples/dbpedia_figure1.ml: Array Db2rdf List Printf Rdf Relsql Sparql String
