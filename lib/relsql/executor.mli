(** Physical plan interpreter over row batches.

    Each plan node materializes into a {!Batch.t}: an ordered column
    layout plus one flat growable row vector. Execution is bottom-up and
    fully materializing, but batch-at-a-time: rows move between
    operators by blitting through reused scratch arrays rather than
    per-row list allocation. A soft per-query timeout is enforced by a
    row-operation counter, which is how the benchmark harness reproduces
    the paper's timeout classification (Figure 15). *)

exception Timeout

type result = Batch.t

(** Inputs smaller than this stay on the sequential code paths even
    when worker domains are available (forking a morsel job costs more
    than scanning a few hundred rows). Tests lower it to exercise the
    parallel operators on tiny inputs. *)
val par_min_rows : int ref

val column_names : result -> string list

(** Materialize a result as a named table (used for CTEs; the result's
    column names become the schema and must be unique). *)
val materialize : string -> result -> Table.t

(** Run a full statement: materialize each CTE in order into an overlay
    database, then evaluate the body. [timeout] is wall-clock seconds
    for the whole statement; raises {!Timeout} on expiry. [domains] is
    the total parallelism (including the calling domain) hot operators
    may fan out over; it defaults to the database's
    {!Database.parallelism} and 1 keeps every operator on its
    sequential code path. [join_partitions] requests a radix partition
    count for parallel hash-join builds (rounded up to a power of two,
    capped at 256; it defaults to the database's
    {!Database.join_partitions} and 0 means auto — twice the pool
    size, or 1 on a sequential pool). Neither knob changes results:
    parallel and partitioned execution produce exactly the sequential
    output — same rows, same order. *)
val run :
  ?timeout:float -> ?domains:int -> ?join_partitions:int -> Database.t ->
  Sql_ast.stmt -> result

(** Like {!run}, but also returns the per-operator metrics tree (rows
    in/out, index probes, hash-build sizes and partition counts, scan
    cache hits, wall time, worker counts) — the engine's EXPLAIN
    ANALYZE. The root node is the whole statement; each CTE and the
    body appear as labelled children wrapping their plan trees. *)
val run_analyzed :
  ?timeout:float -> ?domains:int -> ?join_partitions:int -> Database.t ->
  Sql_ast.stmt -> result * Opstats.t

(** The physical plans of each CTE and the body, as text. With
    [~analyze:true] the statement is also executed and the per-operator
    metrics tree appended. *)
val explain :
  ?analyze:bool -> ?timeout:float -> ?domains:int -> ?join_partitions:int ->
  Database.t -> Sql_ast.stmt -> string
