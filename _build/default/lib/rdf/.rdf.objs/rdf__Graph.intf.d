lib/rdf/graph.mli: Dictionary Term Triple
