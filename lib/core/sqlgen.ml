(** SQL generation over the DB2RDF schema (Section 3.2.2, Figures 12/13).

    The merged query plan is traversed in execution order; every plan
    node becomes a common table expression instantiating the paper's SQL
    template: the CTE accesses DPH (access-by-subject / scan) or RPH
    (access-by-object), restricts the [entry] column by a constant or by
    a join with the previous CTE, checks the predicate's candidate
    column(s), LEFT-OUTER-joins the secondary relation for multi-valued
    predicates, and projects every bound variable forward. OR-merged
    stars project one CASE column per disjunct and "flip" them through a
    lateral VALUES (Figure 13's [TABLE(T.valm, T.val0)]); OPT-merged
    stars project optional predicates as unconstrained CASE columns.
    Unmerged UNIONs become UNION ALL of branch pipelines; unmerged
    OPTIONALs become a LEFT OUTER JOIN between the main pipeline and an
    independently generated sub-pipeline. FILTERs become filter CTEs
    (see {!Filter_sql}) at the earliest point where their variables are
    bound with certainty, within their scoping region. *)

open Sparql.Ast
module Sql = Relsql.Sql_ast

exception Unsupported = Filter_sql.Unsupported

(* ------------------------------------------------------------------ *)
(* Generation state                                                    *)
(* ------------------------------------------------------------------ *)

type varinfo = {
  v_col : string;  (** column name in the current CTE *)
  v_certain : bool;  (** bound in every row (no OPTIONAL/UNION nulls) *)
}

type ctx = {
  cte : string;
  vars : (string * varinfo) list;  (** in binding order *)
}

type pending_filter = {
  f_expr : expr;
  f_vars : string list;
  f_scope : int list;  (** triple ids under the filter's AND node *)
  mutable f_barriers : int;
      (** enclosing OPTIONAL/UNION regions not yet entered by the plan
          traversal; the filter may only run once this reaches zero, else
          it would constrain a pipeline outside its scoping group *)
  mutable f_done : bool;
}

(** Storage backend the generated SQL targets. DB2RDF is the paper's
    schema; the other two are the comparison layouts of Section 2 and
    Figure 2, each with its own access template. *)
type backend =
  | B_db2rdf of Loader.t
  | B_triple of { table : string }
      (** 3-column triple table, [Figure 2(c)] style *)
  | B_vertical of { tables : (int, string) Hashtbl.t }
      (** one [entry, val] table per predicate id, [Figure 2(d)] style *)

type gen = {
  backend : backend;
  dict : Rdf.Dictionary.t;
  pt : Sparql.Pattern_tree.t;
  extvp : Relsql.Extvp.t option;
      (** semi-join reduction registry; [Some] permits substituting a
          reduction for a star's base relation (DB2RDF backend only) *)
  mutable ctes : (string * Sql.query) list;  (** reversed *)
  mutable counter : int;
  mutable renames : int;
      (** statement-wide counter for re-bound variable columns: a CTE
          forwards upstream rename columns verbatim, so their names must
          be unique across the whole statement, not just one CTE *)
}

let db2rdf_store g =
  match g.backend with
  | B_db2rdf s -> s
  | B_triple _ | B_vertical _ ->
    invalid_arg "Sqlgen: DB2RDF template against a non-DB2RDF backend"

let col_of_var v = "v_" ^ v

let fresh_cte g prefix =
  let name = Printf.sprintf "%s%d" prefix g.counter in
  g.counter <- g.counter + 1;
  name

let emit g name query = g.ctes <- (name, query) :: g.ctes

let ctx_var ctx v = List.assoc_opt v ctx.vars

(** Dictionary id of a constant term; [-1] when the term is absent from
    the data (matches nothing — no id is negative). *)
let term_id g (t : Rdf.Term.t) =
  match Rdf.Dictionary.find g.dict t with
  | Some id -> id
  | None -> -1

let pat_of g tid = (Sparql.Pattern_tree.triple g.pt tid).Sparql.Pattern_tree.pat

(* ------------------------------------------------------------------ *)
(* Star CTE generation                                                 *)
(* ------------------------------------------------------------------ *)

type star_build = {
  mutable conds : Sql.expr list;
  mutable joins : Sql.join list;
  mutable items : Sql.select_item list;
  mutable out_vars : (string * varinfo) list;  (** vars of the new ctx *)
  mutable sec_count : int;
}

let add_item b expr name = b.items <- { Sql.expr; alias = Some name } :: b.items

(* A column name for a re-bound variable, unique across the statement:
   CTEs forward upstream rename columns by name, so a per-CTE counter
   would collide when the same variable is re-bound twice. *)
let fresh_rename g v =
  let name = Printf.sprintf "%s_r%d" (col_of_var v) g.renames in
  g.renames <- g.renames + 1;
  name

let side_of = function Cost.Aco -> Loader.Reverse | Cost.Acs | Cost.Sc -> Loader.Direct

let primary_table = function Loader.Direct -> "DPH" | Loader.Reverse -> "RPH"
let secondary_table = function Loader.Direct -> "DS" | Loader.Reverse -> "RS"

(** Predicate presence condition and value expression for triple [tid]
    accessed on [side], against primary alias [t_alias]. Returns
    [(pred_cond, value_expr)]; [value_expr] already routes through the
    secondary relation when the predicate is multi-valued (adding the
    outer join to [b]). *)
let predicate_access g b ~side ~t_alias tid =
  let pat = pat_of g tid in
  let pred_term =
    match pat.tp_p with
    | Term t -> t
    | Var _ -> raise (Unsupported "variable predicate in merged star")
  in
  let pid = term_id g pred_term in
  let cands = Loader.candidate_columns (db2rdf_store g) side ~pred_term in
  let pred_eq c =
    Sql.eq (Sql.col ~table:t_alias (Layout.pred_col c)) (Sql.int pid)
  in
  let pred_cond =
    match Sql.disj_list (List.map pred_eq cands) with
    | Some e -> e
    | None -> Sql.Const (Relsql.Value.Bool false)
  in
  let raw_val =
    match cands with
    | [ c ] -> Sql.col ~table:t_alias (Layout.val_col c)
    | cs ->
      Sql.Case
        ( List.map (fun c -> (pred_eq c, Sql.col ~table:t_alias (Layout.val_col c))) cs,
          None )
  in
  let value_expr =
    if pid >= 0 && Loader.is_multivalued (db2rdf_store g) side ~pred_id:pid then begin
      let s_alias = Printf.sprintf "S%d" b.sec_count in
      b.sec_count <- b.sec_count + 1;
      b.joins <-
        b.joins
        @ [ {
              Sql.kind = Sql.Left_outer;
              item =
                Sql.From_table { table = secondary_table side; alias = s_alias };
              on = Some (Sql.eq (Sql.col ~table:s_alias "l_id") raw_val);
            } ];
      Sql.Coalesce [ Sql.col ~table:s_alias "elm"; raw_val ]
    end
    else raw_val
  in
  (pred_cond, value_expr)

(** Bind [term_pat] (a value position) to [value_expr]: constants and
    already-bound variables become conditions; fresh variables become
    projections. [local] maps vars already bound within this CTE. *)
let bind_value g b ~prev_alias ~(local : (string, Sql.expr) Hashtbl.t) ctx_opt
    term_pat value_expr =
  match term_pat with
  | Term t -> b.conds <- Sql.eq value_expr (Sql.int (term_id g t)) :: b.conds
  | Var v ->
    (match Hashtbl.find_opt local v with
     | Some e -> b.conds <- Sql.eq value_expr e :: b.conds
     | None ->
       let from_ctx =
         match ctx_opt with Some ctx -> ctx_var ctx v | None -> None
       in
       (match from_ctx with
        | Some { v_col; v_certain = true } ->
          b.conds <-
            Sql.eq value_expr (Sql.col ~table:prev_alias v_col) :: b.conds;
          Hashtbl.add local v (Sql.col ~table:prev_alias v_col)
        | Some { v_col; v_certain = false } ->
          (* SPARQL compatibility with a possibly-unbound variable:
             unbound is compatible with anything. *)
          let p = Sql.col ~table:prev_alias v_col in
          b.conds <-
            Sql.Binop (Sql.Or, Sql.Is_null p, Sql.eq value_expr p) :: b.conds;
          (* Rebind: the coalesced value is now certain for these rows. *)
          let coalesced = Sql.Coalesce [ p; value_expr ] in
          let name = fresh_rename g v in
          Hashtbl.replace local v coalesced;
          add_item b coalesced name;
          b.out_vars <-
            (v, { v_col = name; v_certain = true })
            :: List.remove_assoc v b.out_vars
        | None ->
          Hashtbl.add local v value_expr;
          add_item b value_expr (col_of_var v);
          b.out_vars <- (v, { v_col = col_of_var v; v_certain = true }) :: b.out_vars))

(* ------------------------------------------------------------------ *)
(* Semi-join reduction substitution (ExtVP)                            *)
(* ------------------------------------------------------------------ *)

(* Mandatory triple ids of a purely conjunctive sub-plan — the join
   partners a star may be semi-join-reduced against. OPT-merged members,
   OPTIONAL right sides and UNION branches are excluded: their conjuncts
   are not guaranteed to hold on every result row. *)
let rec spine_triples = function
  | Merge.P_unit -> []
  | Merge.Node { Merge.sem = Merge.All; star_triples; _ } -> star_triples
  | Merge.Node _ -> []
  | Merge.P_and (a, b) -> spine_triples a @ spine_triples b
  | Merge.P_opt (a, _) -> spine_triples a
  | Merge.P_or _ -> []

let const_pred g tid =
  match (pat_of g tid).tp_p with
  | Term t ->
    let id = term_id g t in
    if id >= 0 then Some id else None
  | Var _ -> None

(* Reduction keys matching an edge between this star and a mandatory
   partner triple: the star's subject equal to the partner's subject
   (SS) or object (SO), or a star member's object equal to the partner's
   subject (OS). Intra-star pairs qualify too — an SS reduction over two
   of the star's own predicates prunes the scan to entities carrying
   both, a characteristic-set prefilter. *)
let extvp_candidates g (star : Merge.star) (spine : int list) =
  let subj_var =
    match star.Merge.entity with
    | Merge.E_var v -> Some v
    | Merge.E_const _ -> None
  in
  List.concat_map
    (fun tid ->
      match const_pred g tid with
      | None -> []
      | Some p1 ->
        let obj_var =
          match (pat_of g tid).tp_o with Var v -> Some v | Term _ -> None
        in
        List.concat_map
          (fun tid2 ->
            if tid2 = tid then []
            else
              match const_pred g tid2 with
              | None -> []
              | Some p2 ->
                let pat2 = pat_of g tid2 in
                let consider corr cond =
                  if cond then [ { Relsql.Extvp.p1; p2; corr } ] else []
                in
                let same vo term =
                  match vo, term with Some v, Var v2 -> v = v2 | _ -> false
                in
                consider Relsql.Extvp.SS (same subj_var pat2.tp_s)
                @ consider Relsql.Extvp.SO (same subj_var pat2.tp_o)
                @ consider Relsql.Extvp.OS (same obj_var pat2.tp_s))
          spine)
    star.Merge.star_triples

(* The base relation for a conjunctive star: a semi-join reduction when
   the registry advises one for a matching edge signature, DPH
   otherwise. Candidates are tried cheapest-estimate first; [resolve]
   materializes lazily, and a build whose measured selectivity fails the
   threshold flips [advisable] off, falling through to the next
   candidate. Reductions hold row subsets under DPH's own schema, so
   the entire star template — predicate conditions, secondary joins,
   entity access — runs unchanged; only the FROM table differs. *)
let extvp_table g (star : Merge.star) (spine : int list) ~side =
  let base = primary_table side in
  match g.extvp with
  | Some reg when side = Loader.Direct && star.Merge.sem = Merge.All ->
    let cands =
      extvp_candidates g star spine
      |> List.sort_uniq compare
      |> List.map (fun k -> (Relsql.Extvp.estimate reg k, k))
      |> List.sort compare
    in
    let rec pick = function
      | [] -> base
      | (_, key) :: rest ->
        if Relsql.Extvp.advisable reg key then begin
          let name = Relsql.Extvp.name_of_key key in
          match Relsql.Extvp.resolve reg name with
          | Some _ when Relsql.Extvp.advisable reg key -> name
          | _ -> pick rest
        end
        else pick rest
    in
    pick cands
  | _ -> base

(* Scale the binary-pipeline estimate the WCOJ chooser compares against
   by the best advisable reduction selectivity: with ExtVP on, the star
   pipeline scans reductions, not full DPH, and the leapfrog form
   (which always reads the base relation) must beat that. *)
let extvp_flat_scale g (tids : int list) =
  match g.extvp with
  | None -> 1.0
  | Some reg ->
    List.fold_left
      (fun acc tid ->
        match const_pred g tid with
        | None -> acc
        | Some p1 ->
          let pat = pat_of g tid in
          List.fold_left
            (fun acc tid2 ->
              if tid2 = tid then acc
              else
                match const_pred g tid2 with
                | None -> acc
                | Some p2 ->
                  let pat2 = pat_of g tid2 in
                  let consider acc corr cond =
                    if cond then begin
                      let key = { Relsql.Extvp.p1; p2; corr } in
                      if Relsql.Extvp.advisable reg key then
                        Float.min acc (Relsql.Extvp.estimate reg key)
                      else acc
                    end
                    else acc
                  in
                  let same a b =
                    match a, b with Var x, Var y -> x = y | _ -> false
                  in
                  let acc = consider acc Relsql.Extvp.SS (same pat.tp_s pat2.tp_s) in
                  let acc = consider acc Relsql.Extvp.SO (same pat.tp_s pat2.tp_o) in
                  consider acc Relsql.Extvp.OS (same pat.tp_o pat2.tp_s))
            acc tids)
      1.0 tids

(** Generate the CTE for one merged star node; returns the new ctx. *)
let gen_star g (spine : int list) (ctx_opt : ctx option) (star : Merge.star) :
  ctx =
  let side = side_of star.Merge.meth in
  let t_alias = "T" and prev_alias = "P" in
  let b = { conds = []; joins = []; items = []; out_vars = []; sec_count = 0 } in
  let local : (string, Sql.expr) Hashtbl.t = Hashtbl.create 8 in
  (* Project all previous variables forward. *)
  (match ctx_opt with
   | Some ctx ->
     List.iter
       (fun (v, info) ->
         add_item b (Sql.col ~table:prev_alias info.v_col) info.v_col;
         b.out_vars <- (v, { info with v_col = info.v_col }) :: b.out_vars)
       ctx.vars
   | None -> ());
  (* Entity access. *)
  let entity_cond =
    match star.Merge.entity, star.Merge.meth with
    | Merge.E_const t, _ ->
      Some (Sql.eq (Sql.col ~table:t_alias "entry") (Sql.int (term_id g t)))
    | Merge.E_var v, _ ->
      (match ctx_opt with
       | Some ctx ->
         (match ctx_var ctx v with
          | Some { v_col; v_certain = true } ->
            Hashtbl.add local v (Sql.col ~table:prev_alias v_col);
            Some (Sql.eq (Sql.col ~table:t_alias "entry") (Sql.col ~table:prev_alias v_col))
          | Some { v_col; v_certain = false } ->
            let p = Sql.col ~table:prev_alias v_col in
            let e = Sql.col ~table:t_alias "entry" in
            let name = fresh_rename g v in
            Hashtbl.add local v (Sql.Coalesce [ p; e ]);
            add_item b (Sql.Coalesce [ p; e ]) name;
            b.out_vars <-
              (v, { v_col = name; v_certain = true })
              :: List.remove_assoc v b.out_vars;
            Some (Sql.Binop (Sql.Or, Sql.Is_null p, Sql.eq e p))
          | None ->
            Hashtbl.add local v (Sql.col ~table:t_alias "entry");
            add_item b (Sql.col ~table:t_alias "entry") (col_of_var v);
            b.out_vars <- (v, { v_col = col_of_var v; v_certain = true }) :: b.out_vars;
            None)
       | None ->
         Hashtbl.add local v (Sql.col ~table:t_alias "entry");
         add_item b (Sql.col ~table:t_alias "entry") (col_of_var v);
         b.out_vars <- (v, { v_col = col_of_var v; v_certain = true }) :: b.out_vars;
         None)
  in
  (match entity_cond with Some c -> b.conds <- c :: b.conds | None -> ());
  (* Entity variable for var-predicate scans (entity handled above only
     when E_var; Sc single triples with variable predicates go through
     gen_scan_triple instead — assert here). *)
  (* Triple handling per semantics. *)
  let value_pat tid =
    let pat = pat_of g tid in
    match star.Merge.meth with
    | Cost.Aco -> pat.tp_s
    | Cost.Acs | Cost.Sc -> pat.tp_o
  in
  (match star.Merge.sem with
   | Merge.All ->
     List.iter
       (fun tid ->
         let pred_cond, value_expr = predicate_access g b ~side ~t_alias tid in
         b.conds <- pred_cond :: b.conds;
         bind_value g b ~prev_alias ~local ctx_opt (value_pat tid) value_expr)
       star.Merge.star_triples;
     (* OPT-merged members: CASE projection, no constraint. *)
     List.iter
       (fun tid ->
         let pred_cond, value_expr = predicate_access g b ~side ~t_alias tid in
         match value_pat tid with
         | Var v ->
           let e = Sql.Case ([ (pred_cond, value_expr) ], None) in
           add_item b e (col_of_var v);
           b.out_vars <- (v, { v_col = col_of_var v; v_certain = false }) :: b.out_vars
         | Term _ -> raise (Unsupported "constant value in OPT-merged star"))
       star.Merge.opt_triples;
     let table = extvp_table g star spine ~side in
     let from, joins0 =
       match ctx_opt with
       | Some ctx ->
         ( Sql.From_table { table = ctx.cte; alias = prev_alias },
           [ {
               Sql.kind = Sql.Inner;
               item = Sql.From_table { table; alias = t_alias };
               on = None;
             } ] )
       | None -> (Sql.From_table { table; alias = t_alias }, [])
     in
     let name = fresh_cte g "Q" in
     emit g name
       (Sql.Select
          {
            Sql.empty_select with
            items = List.rev b.items;
            from = Some from;
            joins = joins0 @ b.joins;
            where = Sql.conj_list (List.rev b.conds);
          });
     { cte = name; vars = List.rev b.out_vars }
   | Merge.Any ->
     (* Disjunctive star: CASE column per disjunct, then flip. *)
     let tmp_cols =
       List.mapi
         (fun i tid ->
           let pred_cond, value_expr = predicate_access g b ~side ~t_alias tid in
           let tmp = Printf.sprintf "d%d" i in
           add_item b (Sql.Case ([ (pred_cond, value_expr) ], None)) tmp;
           (tid, tmp, pred_cond))
         star.Merge.star_triples
     in
     b.conds <-
       (match Sql.disj_list (List.map (fun (_, _, pc) -> pc) tmp_cols) with
        | Some c -> [ c ] @ b.conds
        | None -> b.conds);
     let from, joins0 =
       match ctx_opt with
       | Some ctx ->
         ( Sql.From_table { table = ctx.cte; alias = prev_alias },
           [ {
               Sql.kind = Sql.Inner;
               item = Sql.From_table { table = primary_table side; alias = t_alias };
               on = None;
             } ] )
       | None -> (Sql.From_table { table = primary_table side; alias = t_alias }, [])
     in
     let stage1 = fresh_cte g "Q" in
     emit g stage1
       (Sql.Select
          {
            Sql.empty_select with
            items = List.rev b.items;
            from = Some from;
            joins = joins0 @ b.joins;
            where = Sql.conj_list (List.rev b.conds);
          });
     (* Flip stage: one output row per present disjunct. *)
     let c_alias = "C" and l_alias = "L" in
     let stage1_vars = List.rev b.out_vars in
     let rows =
       List.map
         (fun (_, tmp, _) ->
           [ Sql.col ~table:c_alias tmp ])
         tmp_cols
     in
     let fb =
       { conds = [ Sql.Is_not_null (Sql.col ~table:l_alias "fv") ];
         joins = []; items = []; out_vars = []; sec_count = 0 }
     in
     (* Carry stage-1 variables through. *)
     List.iter
       (fun (v, info) ->
         add_item fb (Sql.col ~table:c_alias info.v_col) info.v_col;
         fb.out_vars <- (v, info) :: fb.out_vars)
       stage1_vars;
     (* Bind each disjunct's value variable. All disjuncts sharing one
        variable make it certain; otherwise the row's branch determines
        which variable binds. Branch identity is recovered from which
        [dX] column is non-null — we emit one VALUES row per branch with
        its branch index. *)
     let rows =
       List.mapi
         (fun i row -> Sql.Const (Relsql.Value.Int i) :: row)
         rows
     in
     let var_of tid =
       match value_pat tid with
       | Var v -> v
       | Term _ -> raise (Unsupported "constant value in OR-merged star")
     in
     let branch_vars = List.map (fun (tid, _, _) -> var_of tid) tmp_cols in
     let distinct_vars = List.sort_uniq String.compare branch_vars in
     List.iter
       (fun v ->
         let idxs =
           List.concat
             (List.mapi (fun i bv -> if bv = v then [ i ] else []) branch_vars)
         in
         let value =
           if List.length idxs = List.length branch_vars then
             Sql.col ~table:l_alias "fv"
           else
             Sql.Case
               ( [ ( Sql.In_list
                       ( Sql.col ~table:l_alias "which",
                         List.map (fun i -> Relsql.Value.Int i) idxs ),
                     Sql.col ~table:l_alias "fv" ) ],
                 None )
         in
         let everywhere = List.length idxs = List.length branch_vars in
         match List.assoc_opt v stage1_vars with
         | Some prev_info ->
           (* Variable already bound upstream: compatibility semantics. *)
           let p = Sql.col ~table:c_alias prev_info.v_col in
           fb.conds <-
             Sql.Binop
               ( Sql.Or,
                 Sql.Is_null value,
                 Sql.Binop (Sql.Or, Sql.Is_null p, Sql.eq value p) )
             :: fb.conds;
           let coalesced = Sql.Coalesce [ p; value ] in
           let name = fresh_rename g v in
           add_item fb coalesced name;
           fb.out_vars <-
             (v, { v_col = name; v_certain = prev_info.v_certain })
             :: List.remove_assoc v fb.out_vars
         | None ->
           add_item fb value (col_of_var v);
           fb.out_vars <-
             (v, { v_col = col_of_var v; v_certain = everywhere }) :: fb.out_vars)
       distinct_vars;
     let stage2 = fresh_cte g "Q" in
     emit g stage2
       (Sql.Select
          {
            Sql.empty_select with
            items = List.rev fb.items;
            from = Some (Sql.From_table { table = stage1; alias = c_alias });
            joins =
              [ {
                  Sql.kind = Sql.Inner;
                  item =
                    Sql.From_values
                      { rows; alias = l_alias; cols = [ "which"; "fv" ] };
                  on = None;
                } ];
            where = Sql.conj_list (List.rev fb.conds);
          });
     { cte = stage2; vars = List.rev fb.out_vars })

(* ------------------------------------------------------------------ *)
(* Scan / variable-predicate access                                    *)
(* ------------------------------------------------------------------ *)

(** Access for a triple that cannot use a star template: variable
    predicate, or a scan access. Unpivots the pred/val pairs of the
    primary relation through a lateral VALUES, joins the secondary
    relation for possibly-multi-valued cells, and binds all three
    positions. *)
let gen_scan_triple g (ctx_opt : ctx option) tid (meth : Cost.access) : ctx =
  let side = side_of meth in
  let pat = pat_of g tid in
  let t_alias = "T" and prev_alias = "P" and l_alias = "L" and s_alias = "S" in
  let k = Loader.column_count (db2rdf_store g) side in
  let b = { conds = []; joins = []; items = []; out_vars = []; sec_count = 0 } in
  let local : (string, Sql.expr) Hashtbl.t = Hashtbl.create 8 in
  (match ctx_opt with
   | Some ctx ->
     List.iter
       (fun (v, info) ->
         add_item b (Sql.col ~table:prev_alias info.v_col) info.v_col;
         b.out_vars <- (v, info) :: b.out_vars)
       ctx.vars
   | None -> ());
  let entity_pat, value_pat =
    match meth with
    | Cost.Aco -> (pat.tp_o, pat.tp_s)
    | Cost.Acs | Cost.Sc -> (pat.tp_s, pat.tp_o)
  in
  (* Entity position. *)
  (match entity_pat with
   | Term t ->
     b.conds <- Sql.eq (Sql.col ~table:t_alias "entry") (Sql.int (term_id g t)) :: b.conds
   | Var v ->
     let e = Sql.col ~table:t_alias "entry" in
     (match ctx_opt with
      | Some ctx when ctx_var ctx v <> None ->
        let info = Option.get (ctx_var ctx v) in
        let p = Sql.col ~table:prev_alias info.v_col in
        if info.v_certain then begin
          Hashtbl.add local v p;
          b.conds <- Sql.eq e p :: b.conds
        end
        else begin
          let name = fresh_rename g v in
          Hashtbl.add local v (Sql.Coalesce [ p; e ]);
          add_item b (Sql.Coalesce [ p; e ]) name;
          b.out_vars <-
            (v, { v_col = name; v_certain = true })
            :: List.remove_assoc v b.out_vars;
          b.conds <- Sql.Binop (Sql.Or, Sql.Is_null p, Sql.eq e p) :: b.conds
        end
      | _ ->
        Hashtbl.add local v e;
        add_item b e (col_of_var v);
        b.out_vars <- (v, { v_col = col_of_var v; v_certain = true }) :: b.out_vars));
  (* Unpivot the k pred/val pairs. *)
  let rows =
    List.init k (fun c ->
        [ Sql.col ~table:t_alias (Layout.pred_col c);
          Sql.col ~table:t_alias (Layout.val_col c) ])
  in
  b.joins <-
    [ {
        Sql.kind = Sql.Inner;
        item = Sql.From_values { rows; alias = l_alias; cols = [ "fp"; "fv" ] };
        on = None;
      };
      (* Secondary join: resolves multi-valued cells. *)
      {
        Sql.kind = Sql.Left_outer;
        item = Sql.From_table { table = secondary_table side; alias = s_alias };
        on = Some (Sql.eq (Sql.col ~table:s_alias "l_id") (Sql.col ~table:l_alias "fv"));
      } ];
  b.conds <- Sql.Is_not_null (Sql.col ~table:l_alias "fp") :: b.conds;
  (* Predicate position. *)
  (match pat.tp_p with
   | Term t ->
     b.conds <- Sql.eq (Sql.col ~table:l_alias "fp") (Sql.int (term_id g t)) :: b.conds
   | Var v ->
     bind_value g b ~prev_alias ~local ctx_opt (Var v) (Sql.col ~table:l_alias "fp"));
  (* Value position: through the secondary when present. *)
  let value_expr =
    Sql.Coalesce [ Sql.col ~table:s_alias "elm"; Sql.col ~table:l_alias "fv" ]
  in
  bind_value g b ~prev_alias ~local ctx_opt value_pat value_expr;
  let from, joins0 =
    match ctx_opt with
    | Some ctx ->
      ( Sql.From_table { table = ctx.cte; alias = prev_alias },
        [ {
            Sql.kind = Sql.Inner;
            item = Sql.From_table { table = primary_table side; alias = t_alias };
            on = None;
          } ] )
    | None -> (Sql.From_table { table = primary_table side; alias = t_alias }, [])
  in
  let name = fresh_cte g "Q" in
  emit g name
    (Sql.Select
       {
         Sql.empty_select with
         items = List.rev b.items;
         from = Some from;
         joins = joins0 @ b.joins;
         where = Sql.conj_list (List.rev b.conds);
       });
  { cte = name; vars = List.rev b.out_vars }

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

let apply_filter g ctx (f : pending_filter) : ctx =
  let var_cols = List.map (fun (v, i) -> (v, i.v_col)) ctx.vars in
  let select = Filter_sql.filter_select ~prev:ctx.cte ~var_cols f.f_expr in
  let name = fresh_cte g "Q" in
  emit g name (Sql.Select select);
  f.f_done <- true;
  { ctx with cte = name }

(** Apply every pending filter whose variables are all bound and certain
    in [ctx]. *)
let maybe_apply_filters g (filters : pending_filter list) ctx : ctx =
  List.fold_left
    (fun ctx f ->
      if f.f_done || f.f_barriers > 0 then ctx
      else if
        List.for_all
          (fun v ->
            match ctx_var ctx v with
            | Some { v_certain; _ } -> v_certain
            | None -> false)
          f.f_vars
      then apply_filter g ctx f
      else ctx)
    ctx filters

(** Force remaining filters at region end (missing variables evaluate
    as unbound — error-as-false, like the reference semantics). *)
let force_filters g (filters : pending_filter list) ctx : ctx =
  List.fold_left
    (fun ctx f -> if f.f_done then ctx else apply_filter g ctx f)
    ctx filters

(* ------------------------------------------------------------------ *)
(* Baseline backends: triple table and vertical partitioning           *)
(* ------------------------------------------------------------------ *)

(** Per-triple access against a 3-column triple table (Figure 2(c)):
    each triple pattern is one self-join. *)
let gen_triple_row g ~table (ctx_opt : ctx option) tid : ctx =
  let pat = pat_of g tid in
  let t_alias = "T" and prev_alias = "P" in
  let b = { conds = []; joins = []; items = []; out_vars = []; sec_count = 0 } in
  let local : (string, Sql.expr) Hashtbl.t = Hashtbl.create 8 in
  (match ctx_opt with
   | Some ctx ->
     List.iter
       (fun (v, info) ->
         add_item b (Sql.col ~table:prev_alias info.v_col) info.v_col;
         b.out_vars <- (v, info) :: b.out_vars)
       ctx.vars
   | None -> ());
  bind_value g b ~prev_alias ~local ctx_opt pat.tp_s (Sql.col ~table:t_alias "subj");
  bind_value g b ~prev_alias ~local ctx_opt pat.tp_p (Sql.col ~table:t_alias "pred");
  bind_value g b ~prev_alias ~local ctx_opt pat.tp_o (Sql.col ~table:t_alias "obj");
  let from, joins0 =
    match ctx_opt with
    | Some ctx ->
      ( Sql.From_table { table = ctx.cte; alias = prev_alias },
        [ { Sql.kind = Sql.Inner;
            item = Sql.From_table { table; alias = t_alias };
            on = None } ] )
    | None -> (Sql.From_table { table; alias = t_alias }, [])
  in
  let name = fresh_cte g "Q" in
  emit g name
    (Sql.Select
       {
         Sql.empty_select with
         items = List.rev b.items;
         from = Some from;
         joins = joins0 @ b.joins;
         where = Sql.conj_list (List.rev b.conds);
       });
  { cte = name; vars = List.rev b.out_vars }

(** Per-triple access against the vertically partitioned layout
    (Figure 2(d)): a constant predicate addresses its own [entry, val]
    table; a variable predicate must union all predicate tables. *)
let gen_vertical_triple g ~(tables : (int, string) Hashtbl.t)
    (ctx_opt : ctx option) tid : ctx =
  let pat = pat_of g tid in
  let t_alias = "T" and prev_alias = "P" in
  let b = { conds = []; joins = []; items = []; out_vars = []; sec_count = 0 } in
  let local : (string, Sql.expr) Hashtbl.t = Hashtbl.create 8 in
  (match ctx_opt with
   | Some ctx ->
     List.iter
       (fun (v, info) ->
         add_item b (Sql.col ~table:prev_alias info.v_col) info.v_col;
         b.out_vars <- (v, info) :: b.out_vars)
       ctx.vars
   | None -> ());
  let source_table =
    match pat.tp_p with
    | Term t ->
      let pid = term_id g t in
      (match Hashtbl.find_opt tables pid with
       | Some name -> Some name
       | None -> None (* unknown predicate: empty result *))
    | Var _ ->
      (* Union every predicate table, tagging rows with the predicate
         id, and query the union. *)
      let parts =
        Hashtbl.fold
          (fun pid tname acc ->
            Sql.Select
              {
                Sql.empty_select with
                items =
                  [ { Sql.expr = Sql.col ~table:"V" "entry"; alias = Some "entry" };
                    { Sql.expr = Sql.col ~table:"V" "val"; alias = Some "val" };
                    { Sql.expr = Sql.int pid; alias = Some "p" } ];
                from = Some (Sql.From_table { table = tname; alias = "V" });
              }
            :: acc)
          tables []
      in
      if parts = [] then None
      else begin
        let uname = fresh_cte g "UP" in
        emit g uname (Sql.Union { all = true; parts });
        Some uname
      end
  in
  match source_table with
  | None ->
    (* No matching predicate table: an empty CTE with the right shape —
       fresh variables are projected as NULL so downstream references
       resolve. *)
    let existing = List.rev b.out_vars in
    let new_vars =
      List.filter
        (fun v -> not (List.mem_assoc v existing))
        (List.sort_uniq String.compare (Sparql.Ast.triple_pat_vars pat))
    in
    List.iter
      (fun v ->
        add_item b (Sql.Const Relsql.Value.Null) (col_of_var v);
        b.out_vars <- (v, { v_col = col_of_var v; v_certain = false }) :: b.out_vars)
      new_vars;
    let name = fresh_cte g "Q" in
    emit g name
      (Sql.Select
         {
           Sql.empty_select with
           items = List.rev b.items;
           from =
             (match ctx_opt with
              | Some ctx -> Some (Sql.From_table { table = ctx.cte; alias = prev_alias })
              | None ->
                Some
                  (Sql.From_values
                     { rows = [ [ Sql.int 0 ] ]; alias = prev_alias; cols = [ "dummy" ] }));
           where = Some (Sql.Const (Relsql.Value.Bool false));
         });
    { cte = name; vars = List.rev b.out_vars }
  | Some tname ->
    (match pat.tp_p with
     | Term _ ->
       bind_value g b ~prev_alias ~local ctx_opt pat.tp_s (Sql.col ~table:t_alias "entry");
       bind_value g b ~prev_alias ~local ctx_opt pat.tp_o (Sql.col ~table:t_alias "val")
     | Var _ ->
       bind_value g b ~prev_alias ~local ctx_opt pat.tp_s (Sql.col ~table:t_alias "entry");
       bind_value g b ~prev_alias ~local ctx_opt pat.tp_p (Sql.col ~table:t_alias "p");
       bind_value g b ~prev_alias ~local ctx_opt pat.tp_o (Sql.col ~table:t_alias "val"));
    let from, joins0 =
      match ctx_opt with
      | Some ctx ->
        ( Sql.From_table { table = ctx.cte; alias = prev_alias },
          [ { Sql.kind = Sql.Inner;
              item = Sql.From_table { table = tname; alias = t_alias };
              on = None } ] )
      | None -> (Sql.From_table { table = tname; alias = t_alias }, [])
    in
    let name = fresh_cte g "Q" in
    emit g name
      (Sql.Select
         {
           Sql.empty_select with
           items = List.rev b.items;
           from = Some from;
           joins = joins0 @ b.joins;
           where = Sql.conj_list (List.rev b.conds);
         });
    { cte = name; vars = List.rev b.out_vars }

(* ------------------------------------------------------------------ *)
(* Plan traversal                                                      *)
(* ------------------------------------------------------------------ *)

let plan_triples plan =
  let rec go acc = function
    | Merge.Node s -> s.Merge.star_triples @ s.Merge.opt_triples @ acc
    | Merge.P_and (a, b) | Merge.P_opt (a, b) -> go (go acc b) a
    | Merge.P_or parts -> List.fold_left go acc parts
    | Merge.P_unit -> acc
  in
  go [] plan

let subset scope triples =
  scope <> [] && List.for_all (fun t -> List.mem t triples) scope

let rec gen_plan g (filters : pending_filter list) (spine : int list)
    (ctx_opt : ctx option) (plan : Merge.t) : ctx =
  match plan with
  | Merge.Node star ->
    let ctx =
      match g.backend with
      | B_triple { table } ->
        (match star.Merge.star_triples with
         | [ tid ] -> gen_triple_row g ~table ctx_opt tid
         | _ -> raise (Unsupported "merged star against the triple table"))
      | B_vertical { tables } ->
        (match star.Merge.star_triples with
         | [ tid ] -> gen_vertical_triple g ~tables ctx_opt tid
         | _ -> raise (Unsupported "merged star against vertical tables"))
      | B_db2rdf _ ->
        let is_scan_single =
          match star.Merge.star_triples with
          | [ tid ] ->
            (match (pat_of g tid).tp_p with Var _ -> true | Term _ -> false)
          | _ -> false
        in
        if is_scan_single then
          match star.Merge.star_triples with
          | [ tid ] -> gen_scan_triple g ctx_opt tid star.Merge.meth
          | _ -> raise (Unsupported "multi-triple scan star")
        else gen_star g spine ctx_opt star
    in
    maybe_apply_filters g filters ctx
  | Merge.P_unit ->
    (* The unit solution: join identity. With an incoming context it is
       a no-op; standalone it is a FROM-less one-row select, giving the
       left side for a pattern made only of OPTIONALs. *)
    (match ctx_opt with
     | Some ctx -> ctx
     | None ->
       let name = fresh_cte g "Q" in
       emit g name
         (Sql.Select
            {
              Sql.empty_select with
              items =
                [ { Sql.expr = Sql.Const (Relsql.Value.Int 1);
                    alias = Some "unit_one" } ];
            });
       { cte = name; vars = [] })
  | Merge.P_and (a, b) ->
    let ctx = gen_plan g filters spine ctx_opt a in
    gen_plan g filters spine (Some ctx) b
  | Merge.P_or parts ->
    (* Each branch runs from the incoming context; results are aligned
       and unioned. Branch-scoped filters descend with their branch. *)
    let branch_results =
      List.map
        (fun part ->
          let part_triples = plan_triples part in
          let branch_filters, _ =
            List.partition
              (fun f -> f.f_barriers > 0 && subset f.f_scope part_triples)
              filters
          in
          List.iter (fun f -> f.f_barriers <- f.f_barriers - 1) branch_filters;
          (* The branch joins the surrounding conjunctive region, so its
             stars may be reduced against both the outer spine and the
             branch's own mandatory triples. *)
          let ctx =
            gen_plan g branch_filters (spine @ spine_triples part) ctx_opt part
          in
          let ctx = force_filters g branch_filters ctx in
          ctx)
        parts
    in
    (* Aligned variable list: union over branches, in first-seen order. *)
    let all_vars =
      List.fold_left
        (fun acc ctx ->
          List.fold_left
            (fun acc (v, _) -> if List.mem_assoc v acc then acc else acc @ [ (v, ()) ])
            acc ctx.vars)
        [] branch_results
    in
    let all_vars = List.map fst all_vars in
    let selects =
      List.map
        (fun ctx ->
          Sql.Select
            {
              Sql.empty_select with
              items =
                List.map
                  (fun v ->
                    match ctx_var ctx v with
                    | Some info ->
                      { Sql.expr = Sql.col ~table:"B" info.v_col;
                        alias = Some (col_of_var v) }
                    | None ->
                      { Sql.expr = Sql.Const Relsql.Value.Null;
                        alias = Some (col_of_var v) })
                  all_vars;
              from = Some (Sql.From_table { table = ctx.cte; alias = "B" });
            })
        branch_results
    in
    let name = fresh_cte g "Q" in
    emit g name (Sql.Union { all = true; parts = selects });
    let vars =
      List.map
        (fun v ->
          let everywhere_certain =
            List.for_all
              (fun ctx ->
                match ctx_var ctx v with
                | Some { v_certain; _ } -> v_certain
                | None -> false)
              branch_results
          in
          (v, { v_col = col_of_var v; v_certain = everywhere_certain }))
        all_vars
    in
    maybe_apply_filters g filters { cte = name; vars }
  | Merge.P_opt (a, b) ->
    let ctx_a = gen_plan g filters spine ctx_opt a in
    (* The optional side is generated as an independent pipeline and
       LEFT-OUTER-joined on the shared variables (the paper's unmerged
       OPTIONAL template). *)
    let b_triples = plan_triples b in
    let b_filters, _ =
      List.partition
        (fun f -> f.f_barriers > 0 && subset f.f_scope b_triples)
        filters
    in
    List.iter (fun f -> f.f_barriers <- f.f_barriers - 1) b_filters;
    (* The optional side only reduces against its own conjuncts: an
       uncertain shared variable joins by "null or equal", so outer
       conjuncts do not necessarily hold on its matched rows. *)
    let ctx_b = gen_plan g b_filters (spine_triples b) None b in
    let ctx_b = force_filters g b_filters ctx_b in
    let shared =
      List.filter (fun (v, _) -> List.mem_assoc v ctx_b.vars) ctx_a.vars
    in
    let on =
      Sql.conj_list
        (List.map
           (fun (v, info_a) ->
             let info_b = List.assoc v ctx_b.vars in
             let a_col = Sql.col ~table:"A" info_a.v_col in
             let b_col = Sql.col ~table:"B" info_b.v_col in
             let equal = Sql.eq a_col b_col in
             if info_a.v_certain && info_b.v_certain then equal
             else
               Sql.Binop
                 ( Sql.Or,
                   Sql.Is_null a_col,
                   Sql.Binop (Sql.Or, Sql.Is_null b_col, equal) ))
           shared)
    in
    let items =
      List.map
        (fun (v, info) ->
          match List.assoc_opt v ctx_b.vars with
          | Some info_b when not info.v_certain ->
            { Sql.expr =
                Sql.Coalesce
                  [ Sql.col ~table:"A" info.v_col; Sql.col ~table:"B" info_b.v_col ];
              alias = Some info.v_col }
          | _ ->
            { Sql.expr = Sql.col ~table:"A" info.v_col; alias = Some info.v_col })
        ctx_a.vars
      @ List.filter_map
          (fun (v, info_b) ->
            if List.mem_assoc v ctx_a.vars then None
            else
              Some
                { Sql.expr = Sql.col ~table:"B" info_b.v_col;
                  alias = Some info_b.v_col })
          ctx_b.vars
    in
    let name = fresh_cte g "Q" in
    emit g name
      (Sql.Select
         {
           Sql.empty_select with
           items;
           from = Some (Sql.From_table { table = ctx_a.cte; alias = "A" });
           joins =
             [ {
                 Sql.kind = Sql.Left_outer;
                 item = Sql.From_table { table = ctx_b.cte; alias = "B" };
                 on;
               } ];
         })
    ;
    let vars =
      List.map (fun (v, info) -> (v, info)) ctx_a.vars
      @ List.filter_map
          (fun (v, info_b) ->
            if List.mem_assoc v ctx_a.vars then None
            else Some (v, { info_b with v_certain = false }))
          ctx_b.vars
    in
    maybe_apply_filters g filters { cte = name; vars }

(* ------------------------------------------------------------------ *)
(* Final select                                                        *)
(* ------------------------------------------------------------------ *)

(** Final select for an aggregate query: GROUP BY the grouped variables'
    id columns; COUNT aggregates over id columns, numeric aggregates
    over a DICT-decoded [num] column. *)
let final_aggregate_select (q : query) (ctx : ctx) : Sql.query =
  let p_alias = "R" in
  let plain =
    match q.projection with
    | Select_vars vs -> vs
    | Select_star -> q.group_by
  in
  let var_col_expr v =
    match ctx_var ctx v with
    | Some info -> Sql.col ~table:p_alias info.v_col
    | None -> Sql.Const Relsql.Value.Null
  in
  let joins = ref [] in
  let plain_items =
    List.map (fun v -> { Sql.expr = var_col_expr v; alias = Some v }) plain
  in
  let agg_items =
    List.mapi
      (fun i (a : Sparql.Ast.aggregate) ->
        let fn =
          match a.agg_fn with
          | Ag_count -> Relsql.Sql_ast.A_count
          | Ag_sum -> Relsql.Sql_ast.A_sum
          | Ag_avg -> Relsql.Sql_ast.A_avg
          | Ag_min -> Relsql.Sql_ast.A_min
          | Ag_max -> Relsql.Sql_ast.A_max
        in
        let arg =
          match a.agg_fn, a.agg_arg with
          | _, None -> None
          | Ag_count, Some v -> Some (var_col_expr v)
          | (Ag_sum | Ag_avg | Ag_min | Ag_max), Some v ->
            (* Numeric aggregates read the term's numeric value from the
               dictionary relation. *)
            (match ctx_var ctx v with
             | None -> Some (Sql.Const Relsql.Value.Null)
             | Some info ->
               let d = Printf.sprintf "AD%d" i in
               joins :=
                 !joins
                 @ [ {
                       Sql.kind = Sql.Left_outer;
                       item =
                         Sql.From_table
                           { table = Dict_table.table_name; alias = d };
                       on =
                         Some
                           (Sql.eq (Sql.col ~table:d "id")
                              (Sql.col ~table:p_alias info.v_col));
                     } ];
               Some (Sql.col ~table:d "num"))
        in
        { Sql.expr = Sql.Agg (fn, arg, a.agg_distinct); alias = Some a.agg_alias })
      q.aggregates
  in
  Sql.Select
    {
      Sql.empty_select with
      distinct = q.distinct;
      items = plain_items @ agg_items;
      from = Some (Sql.From_table { table = ctx.cte; alias = p_alias });
      joins = !joins;
      group_by = List.map var_col_expr q.group_by;
      limit = q.limit;
      offset = q.offset;
    }

let final_select g (q : query) (ctx : ctx) : Sql.query =
  ignore g;
  if Sparql.Ast.is_aggregate q then final_aggregate_select q ctx
  else
  let p_alias = "R" in
  let proj_vars = projected_vars q in
  let items =
    List.map
      (fun v ->
        match ctx_var ctx v with
        | Some info ->
          { Sql.expr = Sql.col ~table:p_alias info.v_col; alias = Some v }
        | None -> { Sql.expr = Sql.Const Relsql.Value.Null; alias = Some v })
      proj_vars
  in
  let joins = ref [] in
  let order_by =
    List.concat
      (List.mapi
         (fun i { ord_expr; ord_asc } ->
           match ord_expr with
           | E_var v ->
             (match ctx_var ctx v with
              | None -> []
              | Some info ->
                let d = Printf.sprintf "OD%d" i in
                joins :=
                  !joins
                  @ [ {
                        Sql.kind = Sql.Left_outer;
                        item =
                          Sql.From_table { table = Dict_table.table_name; alias = d };
                        on =
                          Some
                            (Sql.eq (Sql.col ~table:d "id")
                               (Sql.col ~table:p_alias info.v_col));
                      } ];
                let rank =
                  Sql.Case
                    ( [ ( Sql.Is_null (Sql.col ~table:p_alias info.v_col),
                          Sql.int (-1) );
                        (Sql.Is_not_null (Sql.col ~table:d "num"), Sql.int 0) ],
                      Some (Sql.int 1) )
                in
                let str_key =
                  Sql.Case
                    ( [ (Sql.Is_not_null (Sql.col ~table:d "num"), Sql.str "") ],
                      Some (Sql.col ~table:d "term") )
                in
                [ { Sql.sort_expr = rank; asc = ord_asc };
                  { Sql.sort_expr = Sql.col ~table:d "num"; asc = ord_asc };
                  { Sql.sort_expr = str_key; asc = ord_asc } ])
           | _ -> raise (Unsupported "ORDER BY on non-variable expression"))
         q.order_by)
  in
  Sql.Select
    {
      Sql.distinct = q.distinct;
      items;
      from = Some (Sql.From_table { table = ctx.cte; alias = p_alias });
      joins = !joins;
      where = None;
      group_by = [];
      order_by;
      limit = q.limit;
      offset = q.offset;
    }

(* ------------------------------------------------------------------ *)
(* Flat form for the worst-case-optimal join                           *)
(* ------------------------------------------------------------------ *)

(* Mandatory triple ids of a purely conjunctive plan (no OPTIONAL, no
   UNION, no OR/OPT-merged stars), in plan order; [None] if the plan has
   any other shape. *)
let rec flat_triples = function
  | Merge.P_unit -> Some []
  | Merge.Node { sem = Merge.All; opt_triples = []; star_triples; _ } ->
    Some star_triples
  | Merge.Node _ -> None
  | Merge.P_and (a, b) ->
    (match flat_triples a, flat_triples b with
     | Some x, Some y -> Some (x @ y)
     | _ -> None)
  | Merge.P_or _ | Merge.P_opt _ -> None

(** The flat statement form the relational WCOJ planner recognizes
    (see {!Relsql.Planner}): instead of a chain of star CTEs, ONE CTE
    joining a DPH alias per triple, with every conjunct [col = const]
    (predicate pins, constant entries/values) or [col = col] (shared
    variables). Only emitted for purely conjunctive plans whose every
    predicate is a known constant with exactly one candidate column and
    no multi-valued storage — under those constraints each (subject,
    predicate) pair matches at most one DPH row even across spills, so
    the flat join's multiset equals the star-merged pipeline's.
    Returns [None] (caller falls back to the standard template) for
    anything else. *)
let try_flat_wcoj g (q : query) (plan : Merge.t) : Sql.stmt option =
  match g.backend with
  | B_triple _ | B_vertical _ -> None
  | B_db2rdf store ->
    if g.pt.Sparql.Pattern_tree.filters <> [] then None
    else
      (match flat_triples plan with
       | None -> None
       | Some tids when List.length tids < 3 -> None
       | Some tids ->
         (try
            let bound : (string, Sql.expr) Hashtbl.t = Hashtbl.create 8 in
            let classes : (string, int) Hashtbl.t = Hashtbl.create 8 in
            let class_of v =
              match Hashtbl.find_opt classes v with
              | Some c -> c
              | None ->
                let c = Hashtbl.length classes in
                Hashtbl.add classes v c;
                c
            in
            let conds = ref [] and items = ref [] and vars = ref [] in
            let watoms = ref [] in
            let aliases =
              List.mapi (fun i tid -> (Printf.sprintf "W%d" i, tid)) tids
            in
            List.iter
              (fun (alias, tid) ->
                let pat = pat_of g tid in
                let pred_term =
                  match pat.tp_p with Term t -> t | Var _ -> raise Exit
                in
                let pid = term_id g pred_term in
                if pid < 0 then raise Exit;
                (* The mapping's candidate set includes hash-fallback
                   columns the data may never have reached; eligibility
                   asks where rows of this predicate actually live. *)
                (match
                   Loader.storage_columns store Loader.Direct ~pred_id:pid
                 with
                 | [ c ] ->
                   if Loader.is_multivalued store Loader.Direct ~pred_id:pid
                   then raise Exit;
                   conds :=
                     Sql.eq
                       (Sql.col ~table:alias (Layout.pred_col c))
                       (Sql.int pid)
                     :: !conds;
                   let wcols =
                     ref
                       [ ( Layout.pred_col c,
                           Relsql.Wcoj.W_const (Relsql.Value.Int pid) ) ]
                   in
                   let bind term col =
                     match term with
                     | Term t ->
                       wcols :=
                         ( col,
                           Relsql.Wcoj.W_const
                             (Relsql.Value.Int (term_id g t)) )
                         :: !wcols;
                       conds :=
                         Sql.eq (Sql.col ~table:alias col)
                           (Sql.int (term_id g t))
                         :: !conds
                     | Var v ->
                       wcols :=
                         (col, Relsql.Wcoj.W_var (class_of v)) :: !wcols;
                       let e = Sql.col ~table:alias col in
                       (match Hashtbl.find_opt bound v with
                        | Some e0 -> conds := Sql.eq e e0 :: !conds
                        | None ->
                          Hashtbl.add bound v e;
                          items :=
                            { Sql.expr = e; alias = Some (col_of_var v) }
                            :: !items;
                          vars :=
                            (v, { v_col = col_of_var v; v_certain = true })
                            :: !vars)
                   in
                   bind pat.tp_s "entry";
                   bind pat.tp_o (Layout.val_col c);
                   watoms :=
                     { Relsql.Wcoj.w_table = primary_table Loader.Direct;
                       w_alias = alias;
                       w_cols = List.rev !wcols }
                     :: !watoms
                 | _ -> raise Exit))
              aliases;
            if !items = [] then raise Exit;
            (* Translation-time gate: show the installed selector the
               same atom description the relational planner would
               rebuild, so a region it would decline (e.g. a lone star,
               which the star-merged pipeline already evaluates in one
               scan) never gets flattened in the first place — the flat
               binary fallback is strictly worse than the merged scan.
               The table's total row count stands in for the binary
               estimate the planner computes later: it is the scan cost
               the default pipeline pays per star region. *)
            let binary_est =
              let total = Dataset_stats.total (Loader.stats store) in
              (* With ExtVP on, the star pipeline this competes against
                 scans reductions, not full DPH. *)
              match extvp_flat_scale g tids with
              | s when s < 1.0 ->
                max 1 (int_of_float (float_of_int total *. s))
              | _ -> total
            in
            let request =
              { Relsql.Wcoj.atoms = List.rev !watoms;
                n_vars = Hashtbl.length classes;
                binary_est }
            in
            (match Relsql.Database.wcoj_selector (Loader.database store) with
             | None -> raise Exit
             | Some sel ->
               if not (sel request).Relsql.Wcoj.use_wcoj then raise Exit);
            let a0 = fst (List.hd aliases) in
            let joins =
              List.map
                (fun (a, _) ->
                  {
                    Sql.kind = Sql.Inner;
                    item = Sql.From_table { table = primary_table Loader.Direct; alias = a };
                    on = None;
                  })
                (List.tl aliases)
            in
            let name = fresh_cte g "WCOJ" in
            emit g name
              (Sql.Select
                 {
                   Sql.empty_select with
                   items = List.rev !items;
                   from =
                     Some
                       (Sql.From_table
                          { table = primary_table Loader.Direct; alias = a0 });
                   joins;
                   where = Sql.conj_list (List.rev !conds);
                 });
            let ctx = { cte = name; vars = List.rev !vars } in
            let body = final_select g q ctx in
            Some { Sql.ctes = List.rev g.ctes; body }
          with Exit -> None))

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Generate the full SQL statement for a merged plan against any
    backend. [wcoj] requests the flat multiway-join form when the plan
    qualifies (see {!try_flat_wcoj}); the planner then decides per
    statement whether it actually runs as a leapfrog join. *)
let generate_with ?(wcoj = false) ?extvp (backend : backend)
    (dict : Rdf.Dictionary.t) (pt : Sparql.Pattern_tree.t) (plan : Merge.t)
    (q : query) : Sql.stmt =
  let g = { backend; dict; pt; extvp; ctes = []; counter = 0; renames = 0 } in
  match if wcoj then try_flat_wcoj g q plan else None with
  | Some stmt -> stmt
  | None ->
  let filters =
    List.map
      (fun (node, e) ->
        let scope = Sparql.Pattern_tree.triples_under pt node in
        (* A FILTER inside a triple-less OPTIONAL is a no-op on the
           result multiset: the LeftJoin right side is the singleton
           unit solution, so each left row survives unchanged whether
           the condition holds or not. Mark it done so it cannot float
           out and filter the outer pipeline. *)
        let regions =
          List.filter
            (fun n ->
              match Sparql.Pattern_tree.kind pt n with
              | Sparql.Pattern_tree.K_opt | Sparql.Pattern_tree.K_or -> true
              | Sparql.Pattern_tree.K_and | Sparql.Pattern_tree.K_leaf _ ->
                false)
            (node :: Sparql.Pattern_tree.ancestors pt node)
        in
        let in_opt =
          List.exists
            (fun n -> Sparql.Pattern_tree.kind pt n = Sparql.Pattern_tree.K_opt)
            regions
        in
        {
          f_expr = e;
          f_vars = List.sort_uniq String.compare (expr_vars e);
          f_scope = scope;
          f_barriers = List.length regions;
          f_done = (scope = [] && in_opt);
        })
      pt.Sparql.Pattern_tree.filters
  in
  let ctx = gen_plan g filters (spine_triples plan) None plan in
  let ctx = force_filters g filters ctx in
  let body = final_select g q ctx in
  { Sql.ctes = List.rev g.ctes; body }

(** Generate against the DB2RDF schema. *)
let generate ?wcoj ?extvp (store : Loader.t) (pt : Sparql.Pattern_tree.t)
    (plan : Merge.t) (q : query) : Sql.stmt =
  generate_with ?wcoj ?extvp (B_db2rdf store) (Loader.dictionary store) pt
    plan q
