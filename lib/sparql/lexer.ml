(** Lexer for the SPARQL subset. *)

type token =
  | IRIREF of string  (** [<...>], raw IRI *)
  | PNAME of string * string  (** [prefix:local] (prefix may be empty) *)
  | VAR of string  (** [?x] or [$x], name without sigil *)
  | STRINGLIT of string
  | LANGTAG of string  (** [@en] *)
  | DTMARK  (** [^^] *)
  | INTLIT of int
  | DECLIT of float
  | BNODE of string  (** [_:b0] *)
  | KW of string  (** uppercased keyword, incl. [A] for rdf:type *)
  | LBRACE | RBRACE | LPAREN | RPAREN
  | DOT | SEMI | COMMA
  | EQ | NEQ | LT | LEQ | GT | GEQ
  | ANDAND | OROR | PIPE | BANG
  | PLUS | MINUS | STAR | SLASH
  | CARET  (** single [^], the inverse-path operator *)
  | EOF

exception Lex_error of string * int

let keywords =
  [ "SELECT"; "DISTINCT"; "REDUCED"; "WHERE"; "PREFIX"; "BASE"; "UNION";
    "OPTIONAL"; "FILTER"; "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "OFFSET";
    "BOUND"; "REGEX"; "TRUE"; "FALSE"; "ASK"; "A"; "GROUP"; "AS"; "COUNT";
    "SUM"; "AVG"; "MIN"; "MAX"; "HAVING"; "INSERT"; "DELETE"; "DATA" ]

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-'

let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '?' || c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && is_name_char src.[!i] do incr i done;
      if !i = start then raise (Lex_error ("empty variable name", pos));
      emit (VAR (String.sub src start (!i - start))) pos
    end
    else if c = '<' then begin
      (* '<' starts an IRI if it closes with '>' before whitespace;
         otherwise it is the less-than operator. *)
      let rec scan j =
        if j >= n then None
        else
          match src.[j] with
          | '>' -> Some j
          | ' ' | '\t' | '\n' | '\r' -> None
          | _ -> scan (j + 1)
      in
      match scan (!i + 1) with
      | Some close ->
        emit (IRIREF (String.sub src (!i + 1) (close - !i - 1))) pos;
        i := close + 1
      | None ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          emit LEQ pos;
          i := !i + 2
        end
        else begin
          emit LT pos;
          incr i
        end
    end
    else if c = '_' && !i + 1 < n && src.[!i + 1] = ':' then begin
      i := !i + 2;
      let start = !i in
      while !i < n && is_name_char src.[!i] do incr i done;
      emit (BNODE (String.sub src start (!i - start))) pos
    end
    else if is_name_start c then begin
      let start = !i in
      while !i < n && is_name_char src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if !i < n && src.[!i] = ':' then begin
        (* prefixed name *)
        incr i;
        let lstart = !i in
        while
          !i < n
          && (is_name_char src.[!i] || src.[!i] = '.')
          && not (src.[!i] = '.' && (!i + 1 >= n || not (is_name_char src.[!i + 1])))
        do
          incr i
        done;
        emit (PNAME (word, String.sub src lstart (!i - lstart))) pos
      end
      else begin
        let up = String.uppercase_ascii word in
        if word = "a" then emit (KW "A") pos
        else if List.mem up keywords then emit (KW up) pos
        else raise (Lex_error ("unexpected word " ^ word, pos))
      end
    end
    else if c = ':' then begin
      (* default-prefix name, e.g. :alice *)
      incr i;
      let lstart = !i in
      while !i < n && is_name_char src.[!i] do incr i done;
      emit (PNAME ("", String.sub src lstart (!i - lstart))) pos
    end
    else if (c >= '0' && c <= '9')
            || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let start = !i in
      if c = '-' then incr i;
      let is_dec = ref false in
      while
        !i < n
        && ((src.[!i] >= '0' && src.[!i] <= '9')
            || (src.[!i] = '.' && !i + 1 < n && src.[!i + 1] >= '0'
                && src.[!i + 1] <= '9'))
      do
        if src.[!i] = '.' then is_dec := true;
        incr i
      done;
      let text = String.sub src start (!i - start) in
      if !is_dec then emit (DECLIT (float_of_string text)) pos
      else emit (INTLIT (int_of_string text)) pos
    end
    else begin
      match c with
      | '"' ->
        let buf = Buffer.create 16 in
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then raise (Lex_error ("unterminated string", pos));
          (match src.[!i] with
           | '"' ->
             closed := true;
             incr i
           | '\\' ->
             if !i + 1 >= n then raise (Lex_error ("bad escape", pos));
             (match src.[!i + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | e -> raise (Lex_error (Printf.sprintf "bad escape \\%c" e, pos)));
             i := !i + 2
           | ch ->
             Buffer.add_char buf ch;
             incr i)
        done;
        emit (STRINGLIT (Buffer.contents buf)) pos
      | '@' ->
        incr i;
        let start = !i in
        while
          !i < n
          && ((src.[!i] >= 'a' && src.[!i] <= 'z')
              || (src.[!i] >= 'A' && src.[!i] <= 'Z')
              || (src.[!i] >= '0' && src.[!i] <= '9')
              || src.[!i] = '-')
        do
          incr i
        done;
        emit (LANGTAG (String.sub src start (!i - start))) pos
      | '^' ->
        if !i + 1 < n && src.[!i + 1] = '^' then begin
          emit DTMARK pos;
          i := !i + 2
        end
        else begin
          emit CARET pos;
          incr i
        end
      | '{' -> emit LBRACE pos; incr i
      | '}' -> emit RBRACE pos; incr i
      | '(' -> emit LPAREN pos; incr i
      | ')' -> emit RPAREN pos; incr i
      | '.' -> emit DOT pos; incr i
      | ';' -> emit SEMI pos; incr i
      | ',' -> emit COMMA pos; incr i
      | '=' -> emit EQ pos; incr i
      | '!' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          emit NEQ pos;
          i := !i + 2
        end
        else begin
          emit BANG pos;
          incr i
        end
      | '>' ->
        if !i + 1 < n && src.[!i + 1] = '=' then begin
          emit GEQ pos;
          i := !i + 2
        end
        else begin
          emit GT pos;
          incr i
        end
      | '&' ->
        if !i + 1 < n && src.[!i + 1] = '&' then begin
          emit ANDAND pos;
          i := !i + 2
        end
        else raise (Lex_error ("unexpected '&'", pos))
      | '|' ->
        if !i + 1 < n && src.[!i + 1] = '|' then begin
          emit OROR pos;
          i := !i + 2
        end
        else begin
          emit PIPE pos;
          incr i
        end
      | '+' -> emit PLUS pos; incr i
      | '-' -> emit MINUS pos; incr i
      | '*' -> emit STAR pos; incr i
      | '/' -> emit SLASH pos; incr i
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos))
    end
  done;
  List.rev ((EOF, n) :: !toks)

let token_to_string = function
  | IRIREF s -> "<" ^ s ^ ">"
  | PNAME (p, l) -> p ^ ":" ^ l
  | VAR v -> "?" ^ v
  | STRINGLIT s -> "\"" ^ s ^ "\""
  | LANGTAG l -> "@" ^ l
  | DTMARK -> "^^"
  | INTLIT i -> string_of_int i
  | DECLIT f -> string_of_float f
  | BNODE b -> "_:" ^ b
  | KW k -> k
  | LBRACE -> "{" | RBRACE -> "}" | LPAREN -> "(" | RPAREN -> ")"
  | DOT -> "." | SEMI -> ";" | COMMA -> ","
  | EQ -> "=" | NEQ -> "!=" | LT -> "<" | LEQ -> "<=" | GT -> ">" | GEQ -> ">="
  | ANDAND -> "&&" | OROR -> "||" | PIPE -> "|" | BANG -> "!"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | CARET -> "^"
  | EOF -> "<eof>"
