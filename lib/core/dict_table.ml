(** The relational face of the term dictionary.

    Joins between triple patterns happen on dictionary ids, but FILTER
    comparisons, regex tests and ORDER BY need term *values*. Every
    relational store therefore materializes the dictionary as a [DICT]
    relation — the standard move in dictionary-encoded RDF systems —
    with columns:

    - [id]: the dictionary id (indexed);
    - [term]: the full N-Triples rendering (total order consistent with
      the reference evaluator's term comparison);
    - [txt]: the text REGEX matches against (lexical form for literals,
      the IRI string for IRIs);
    - [num]: the numeric value for numeric literals, NULL otherwise. *)

let table_name = "DICT"

type state = { table : Relsql.Table.t; mutable synced : int }

let create db =
  let table =
    Relsql.Database.create_table db table_name
      (Relsql.Schema.make [ "id"; "term"; "txt"; "num" ])
  in
  Relsql.Table.create_index_on table "id";
  { table; synced = 0 }

let row_of_term id (t : Rdf.Term.t) =
  let txt =
    match t with
    | Rdf.Term.Lit { lex; _ } -> lex
    | Rdf.Term.Iri s -> s
    | Rdf.Term.Bnode b -> b
  in
  let num =
    match Rdf.Term.as_number t with
    | Some n -> Relsql.Value.Real n
    | None -> Relsql.Value.Null
  in
  [| Relsql.Value.Int id; Relsql.Value.Str (Rdf.Term.to_string t);
     Relsql.Value.Str txt; num |]

(** Append rows for dictionary ids interned since the last sync. Call
    after loading and before translating queries that need term values.
    [domains > 1] renders the (pure) term→row conversion on the shared
    pool; insertion stays sequential in id order, so the DICT relation
    is identical either way. *)
let sync ?(domains = 1) state (dict : Rdf.Dictionary.t) =
  let n = Rdf.Dictionary.size dict in
  let lo = state.synced in
  if domains > 1 && n - lo > 1 then begin
    let rows = Array.make (n - lo) [||] in
    let pool = Relsql.Dpool.get domains in
    ignore
      (Relsql.Dpool.run_ranges pool ~n:(n - lo) (fun ~worker:_ ~lo:a ~hi:b ->
           for i = a to b - 1 do
             rows.(i) <- row_of_term (lo + i) (Rdf.Dictionary.term_of dict (lo + i))
           done));
    Array.iter (fun row -> ignore (Relsql.Table.insert state.table row)) rows
  end
  else
    for id = lo to n - 1 do
      ignore
        (Relsql.Table.insert state.table
           (row_of_term id (Rdf.Dictionary.term_of dict id)))
    done;
  state.synced <- n
