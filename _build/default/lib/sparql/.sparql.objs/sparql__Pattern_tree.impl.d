lib/sparql/pattern_tree.ml: Array Ast Buffer List Pp Printf String
