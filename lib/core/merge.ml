(** Query plan construction with star merging (Section 3.2.1,
    Figure 11).

    The execution tree treats each triple independently; the entity-
    oriented layout makes it profitable to evaluate several triples that
    share an entity (and access method) with a *single* row access.
    Merging must respect structural constraints (same entity variable or
    constant, same access method, no spills) and the semantic
    constraints of Definitions 3.9–3.11 (ANDMergeable / ORMergeable /
    OPTMergeable). Spill-involved predicates veto merging — their star
    must cascade over multiple rows, so each triple keeps its own access
    (the paper's in-memory spill registry check). *)

type entity =
  | E_var of string
  | E_const of Rdf.Term.t

type semantics = All | Any
(** [All]: conjunctive star (plus optional extensions); [Any]:
    disjunctive star from an OR merge. *)

type star = {
  meth : Cost.access;  (** [Acs] or [Aco] ([Sc] stars never merge) *)
  entity : entity;
  sem : semantics;
  star_triples : int list;  (** mandatory members, in fuse order *)
  opt_triples : int list;  (** OPTIONAL members (OPTMergeable merges) *)
}

type t =
  | Node of star
  | P_and of t * t
  | P_or of t list
  | P_opt of t * t
  | P_unit  (** the unit (single empty) solution *)

(** Store facts the merger needs, provided by the engine. *)
type ctx = {
  pt : Sparql.Pattern_tree.t;
  pred_spills : Cost.access -> Sparql.Ast.triple_pat -> bool;
      (** is the triple's predicate involved in spills on the relevant
          side? (variable predicates count as unsafe) *)
  pred_multivalued : Cost.access -> Sparql.Ast.triple_pat -> bool;
  var_count : string -> int;
      (** occurrences of a variable across the query's triples; used to
          veto OPT merges whose value variable participates in joins *)
  merging_enabled : bool;
}

let pat_of ctx tid =
  (Sparql.Pattern_tree.triple ctx.pt tid).Sparql.Pattern_tree.pat

(** The entity a triple is accessed by under a method: its subject for
    [Acs], its object for [Aco]; [None] for scans and variable
    predicates with no usable entity. *)
let entity_of ctx tid (m : Cost.access) : entity option =
  let pat = pat_of ctx tid in
  match m with
  | Cost.Acs | Cost.Sc ->
    (* A scan reads the DPH side, so its entity is the subject — a scan
       star is exactly the Figure 2(b) template (one pass, many
       predicate conditions). *)
    (match pat.Sparql.Ast.tp_s with
     | Sparql.Ast.Var v -> Some (E_var v)
     | Sparql.Ast.Term t -> Some (E_const t))
  | Cost.Aco ->
    (match pat.Sparql.Ast.tp_o with
     | Sparql.Ast.Var v -> Some (E_var v)
     | Sparql.Ast.Term t -> Some (E_const t))

let has_const_predicate ctx tid =
  match (pat_of ctx tid).Sparql.Ast.tp_p with
  | Sparql.Ast.Term _ -> true
  | Sparql.Ast.Var _ -> false

(* Acs and Sc both access the direct (subject-keyed) side, so they are
   merge-compatible; the star keeps its original method. *)
let methods_compatible a b =
  match (a : Cost.access), (b : Cost.access) with
  | Cost.Aco, Cost.Aco -> true
  | (Cost.Acs | Cost.Sc), (Cost.Acs | Cost.Sc) -> true
  | _ -> false

(** Structural merge test: compatible method, same entity, constant
    predicates, and no spill-involved predicate on either side. *)
let structurally_compatible ctx (s : star) tid (m : Cost.access) =
  methods_compatible s.meth m
  && has_const_predicate ctx tid
  && (not (ctx.pred_spills m (pat_of ctx tid)))
  && (match entity_of ctx tid m with
      | Some e -> e = s.entity
      | None -> false)
  && List.for_all
       (fun t -> not (ctx.pred_spills m (pat_of ctx t)))
       (s.star_triples @ s.opt_triples)

let single_star ctx tid m : t =
  match entity_of ctx tid m with
  | Some entity ->
    Node { meth = m; entity; sem = All; star_triples = [ tid ]; opt_triples = [] }
  | None -> assert false (* entity_of is total over the three methods *)

(** A triple guarded by a FILTER living inside an OPTIONAL/UNION region
    cannot be star-absorbed: the filter must run within its region, and
    that requires the region to survive as a plan node (OPT or OR)
    rather than collapsing into a CASE column of an outer star. *)
let region_filtered ctx tid =
  List.exists
    (fun (node, _) ->
      List.mem tid (Sparql.Pattern_tree.triples_under ctx.pt node)
      && List.exists
           (fun n ->
             match Sparql.Pattern_tree.kind ctx.pt n with
             | Sparql.Pattern_tree.K_opt | Sparql.Pattern_tree.K_or -> true
             | Sparql.Pattern_tree.K_and | Sparql.Pattern_tree.K_leaf _ ->
               false)
           (node :: Sparql.Pattern_tree.ancestors ctx.pt node))
    ctx.pt.Sparql.Pattern_tree.filters

(* ------------------------------------------------------------------ *)
(* Absorption into the rightmost star of a plan                        *)
(* ------------------------------------------------------------------ *)

(** Try to AND-merge triple [tid] (method [m]) into the rightmost
    eligible star of [plan]. *)
let rec try_and_absorb ctx plan tid m : t option =
  match plan with
  | Node s
    when s.sem = All
         && structurally_compatible ctx s tid m
         && List.for_all
              (fun t -> Sparql.Pattern_tree.and_mergeable ctx.pt t tid)
              (s.star_triples @ s.opt_triples) ->
    Some (Node { s with star_triples = s.star_triples @ [ tid ] })
  | P_and (a, b) ->
    (match try_and_absorb ctx b tid m with
     | Some b' -> Some (P_and (a, b'))
     | None -> None)
  | Node _ | P_or _ | P_opt _ | P_unit -> None

(** Try to OPT-merge triple [tid] into the rightmost eligible star —
    the OPTMergeable case, where the optional predicate becomes a
    CASE-projected column with no WHERE constraint. The optional triple
    must bind its value to a fresh variable (no constant object) and be
    single-valued, so absence maps to NULL. *)
let rec try_opt_absorb ctx plan tid m : t option =
  let pat = pat_of ctx tid in
  (* The optional value must be a fresh variable: a CASE projection
     cannot express join compatibility with other occurrences. *)
  let value_is_var =
    match m, pat.Sparql.Ast.tp_o, pat.Sparql.Ast.tp_s with
    | (Cost.Acs | Cost.Sc), Sparql.Ast.Var v, _ -> ctx.var_count v <= 1
    | Cost.Aco, _, Sparql.Ast.Var v -> ctx.var_count v <= 1
    | Cost.Aco, _, Sparql.Ast.Term _ | (Cost.Acs | Cost.Sc), Sparql.Ast.Term _, _ ->
      false
  in
  match plan with
  | Node s
    when s.sem = All
         && value_is_var
         && (not (region_filtered ctx tid))
         && structurally_compatible ctx s tid m
         && (not (ctx.pred_multivalued m pat))
         && List.for_all
              (fun t -> Sparql.Pattern_tree.opt_mergeable ctx.pt t tid)
              s.star_triples ->
    Some (Node { s with opt_triples = s.opt_triples @ [ tid ] })
  | P_and (a, b) ->
    (match try_opt_absorb ctx b tid m with
     | Some b' -> Some (P_and (a, b'))
     | None -> None)
  | Node _ | P_or _ | P_opt _ | P_unit -> None

(** OR-merge a list of single triples into one disjunctive star, if all
    pairs are ORMergeable, share entity and method, have constant
    single-valued spill-free predicates and variable value positions. *)
let try_or_merge ctx (leaves : (int * Cost.access) list) : t option =
  match leaves with
  | [] | [ _ ] -> None
  | (t0, m0) :: rest ->
    let value_is_var (tid, m) =
      let pat = pat_of ctx tid in
      match (m : Cost.access), pat.Sparql.Ast.tp_o, pat.Sparql.Ast.tp_s with
      | (Cost.Acs | Cost.Sc), Sparql.Ast.Var _, _ -> true
      | Cost.Aco, _, Sparql.Ast.Var _ -> true
      | _ -> false
    in
    (match entity_of ctx t0 m0 with
     | None -> None
     | Some entity ->
       let star0 =
         { meth = m0; entity; sem = Any; star_triples = [ t0 ]; opt_triples = [] }
       in
       let ok =
         List.for_all (fun (_, m) -> m = m0) rest
         && List.for_all value_is_var leaves
         && List.for_all (fun (t, _) -> not (region_filtered ctx t)) leaves
         && List.for_all
              (fun (t, m) ->
                structurally_compatible ctx star0 t m
                && not (ctx.pred_multivalued m (pat_of ctx t)))
              leaves
         && List.for_all
              (fun (t, _) ->
                List.for_all
                  (fun (t', _) ->
                    t = t' || Sparql.Pattern_tree.or_mergeable ctx.pt t t')
                  leaves)
              leaves
       in
       if ok then
         Some (Node { star0 with star_triples = List.map fst leaves })
       else None)

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)
(* ------------------------------------------------------------------ *)

let rec of_exec ctx (tree : Exec_tree.t) : t =
  match tree with
  | Exec_tree.Unit -> P_unit
  | Exec_tree.Leaf (tid, m) -> single_star ctx tid m
  | Exec_tree.And (a, b) ->
    let pa = of_exec ctx a in
    (match b with
     | Exec_tree.Leaf (tid, m) when ctx.merging_enabled ->
       (match try_and_absorb ctx pa tid m with
        | Some merged -> merged
        | None -> P_and (pa, single_star ctx tid m))
     | _ -> P_and (pa, of_exec ctx b))
  | Exec_tree.Or parts ->
    let as_leaves =
      List.map
        (function Exec_tree.Leaf (t, m) -> Some (t, m) | _ -> None)
        parts
    in
    if ctx.merging_enabled && List.for_all Option.is_some as_leaves then
      match try_or_merge ctx (List.map Option.get as_leaves) with
      | Some star -> star
      | None -> P_or (List.map (of_exec ctx) parts)
    else P_or (List.map (of_exec ctx) parts)
  | Exec_tree.Opt (a, b) ->
    let pa = of_exec ctx a in
    (match b with
     | Exec_tree.Leaf (tid, m) when ctx.merging_enabled ->
       (match try_opt_absorb ctx pa tid m with
        | Some merged -> merged
        | None -> P_opt (pa, single_star ctx tid m))
     | _ -> P_opt (pa, of_exec ctx b))

let rec to_string = function
  | P_unit -> "UNIT"
  | Node s ->
    let sem = match s.sem with All -> "AND" | Any -> "OR" in
    let ts = String.concat "," (List.map (Printf.sprintf "t%d") s.star_triples) in
    let os =
      match s.opt_triples with
      | [] -> ""
      | l -> "+opt[" ^ String.concat "," (List.map (Printf.sprintf "t%d") l) ^ "]"
    in
    Printf.sprintf "({%s}%s, %s, %s)" ts os (Cost.access_to_string s.meth) sem
  | P_and (a, b) -> Printf.sprintf "AND(%s, %s)" (to_string a) (to_string b)
  | P_or parts ->
    Printf.sprintf "OR(%s)" (String.concat ", " (List.map to_string parts))
  | P_opt (a, b) -> Printf.sprintf "OPT(%s, %s)" (to_string a) (to_string b)
