(** Recursive-descent parser for the SQL dialect printed by {!Sql_pp}.
    [parse (Sql_pp.to_string stmt)] round-trips for every statement the
    translators emit (property-tested). *)

open Sql_ast
open Sql_lexer

exception Parse_error of string

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF

let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> EOF

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail st msg =
  let tok = peek st in
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg (token_to_string tok)))

let expect st t =
  if peek st = t then advance st
  else fail st (Printf.sprintf "expected %s" (token_to_string t))

let expect_kw st kw =
  match peek st with
  | KW k when k = kw -> advance st
  | _ -> fail st ("expected " ^ kw)

let accept_kw st kw =
  match peek st with
  | KW k when k = kw ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let value_literal st =
  match peek st with
  | INT i -> advance st; Some (Value.Int i)
  | REALLIT r -> advance st; Some (Value.Real r)
  | STRING s -> advance st; Some (Value.Str s)
  | LIDLIT i -> advance st; Some (Value.Lid i)
  | KW "NULL" -> advance st; Some Value.Null
  | KW "TRUE" -> advance st; Some (Value.Bool true)
  | KW "FALSE" -> advance st; Some (Value.Bool false)
  | MINUS ->
    (match peek2 st with
     | INT i -> advance st; advance st; Some (Value.Int (-i))
     | REALLIT r -> advance st; advance st; Some (Value.Real (-.r))
     | _ -> None)
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while accept_kw st "OR" do
    let rhs = parse_and st in
    lhs := Binop (Or, !lhs, rhs)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while accept_kw st "AND" do
    let rhs = parse_not st in
    lhs := Binop (And, !lhs, rhs)
  done;
  !lhs

and parse_not st =
  if accept_kw st "NOT" then Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let lhs = parse_additive st in
  match peek st with
  | EQ -> advance st; Binop (Eq, lhs, parse_additive st)
  | NEQ -> advance st; Binop (Neq, lhs, parse_additive st)
  | LT -> advance st; Binop (Lt, lhs, parse_additive st)
  | LEQ -> advance st; Binop (Leq, lhs, parse_additive st)
  | GT -> advance st; Binop (Gt, lhs, parse_additive st)
  | GEQ -> advance st; Binop (Geq, lhs, parse_additive st)
  | KW "IS" ->
    advance st;
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      Is_not_null lhs
    end
    else begin
      expect_kw st "NULL";
      Is_null lhs
    end
  | KW "IN" ->
    advance st;
    expect st LPAREN;
    let vs = ref [] in
    let rec loop () =
      (match value_literal st with
       | Some v -> vs := v :: !vs
       | None -> fail st "expected literal in IN list");
      if peek st = COMMA then begin
        advance st;
        loop ()
      end
    in
    loop ();
    expect st RPAREN;
    In_list (lhs, List.rev !vs)
  | KW "LIKE" ->
    advance st;
    (match peek st with
     | STRING s ->
       advance st;
       Like (lhs, s)
     | _ -> fail st "expected pattern string after LIKE")
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec loop () =
    match peek st with
    | PLUS ->
      advance st;
      lhs := Binop (Add, !lhs, parse_multiplicative st);
      loop ()
    | MINUS ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_multiplicative st);
      loop ()
    | CONCAT ->
      advance st;
      lhs := Binop (Concat, !lhs, parse_multiplicative st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_primary st) in
  let rec loop () =
    match peek st with
    | STAR ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_primary st);
      loop ()
    | SLASH ->
      advance st;
      lhs := Binop (Div, !lhs, parse_primary st);
      loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_primary st =
  match value_literal st with
  | Some v -> Const v
  | None ->
    (match peek st with
     | LPAREN ->
       advance st;
       let e = parse_expr st in
       expect st RPAREN;
       e
     | KW "CASE" ->
       advance st;
       let whens = ref [] in
       while accept_kw st "WHEN" do
         let c = parse_expr st in
         expect_kw st "THEN";
         let v = parse_expr st in
         whens := (c, v) :: !whens
       done;
       let els = if accept_kw st "ELSE" then Some (parse_expr st) else None in
       expect_kw st "END";
       Case (List.rev !whens, els)
     | KW (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX") as fn) ->
       advance st;
       expect st LPAREN;
       let distinct = accept_kw st "DISTINCT" in
       let arg =
         if peek st = STAR then begin
           advance st;
           None
         end
         else Some (parse_expr st)
       in
       expect st RPAREN;
       let fn =
         match fn with
         | "COUNT" -> A_count
         | "SUM" -> A_sum
         | "AVG" -> A_avg
         | "MIN" -> A_min
         | _ -> A_max
       in
       Agg (fn, arg, distinct)
     | KW "COALESCE" ->
       advance st;
       expect st LPAREN;
       let args = ref [ parse_expr st ] in
       while peek st = COMMA do
         advance st;
         args := parse_expr st :: !args
       done;
       expect st RPAREN;
       Coalesce (List.rev !args)
     | IDENT q when peek2 st = DOT ->
       advance st;
       advance st;
       let n = ident st in
       Col (Some q, n)
     | IDENT n ->
       advance st;
       Col (None, n)
     | _ -> fail st "expected expression")

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let rec parse_query st : query =
  let first = parse_query_atom st in
  let parts = ref [ first ] in
  let all = ref true in
  let saw_union = ref false in
  let rec loop () =
    if accept_kw st "UNION" then begin
      let this_all = accept_kw st "ALL" in
      if !saw_union && this_all <> !all then
        raise (Parse_error "mixed UNION and UNION ALL not supported");
      all := this_all;
      saw_union := true;
      parts := parse_query_atom st :: !parts;
      loop ()
    end
  in
  loop ();
  match List.rev !parts with
  | [ single ] -> single
  | many -> Union { all = !all; parts = many }

and parse_query_atom st : query =
  match peek st with
  | LPAREN ->
    advance st;
    let q = parse_query st in
    expect st RPAREN;
    q
  | KW "SELECT" -> Select (parse_select st)
  | _ -> fail st "expected SELECT or ("

and parse_select st : select =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items =
    if peek st = STAR then begin
      advance st;
      []
    end
    else begin
      let parse_item () =
        let expr = parse_expr st in
        let alias = if accept_kw st "AS" then Some (ident st) else None in
        { expr; alias }
      in
      let items = ref [ parse_item () ] in
      while peek st = COMMA do
        advance st;
        items := parse_item () :: !items
      done;
      List.rev !items
    end
  in
  let from = if accept_kw st "FROM" then Some (parse_from_item st) else None in
  let joins = ref [] in
  let rec join_loop () =
    match peek st with
    | KW "JOIN" ->
      advance st;
      joins := parse_join_tail st Inner :: !joins;
      join_loop ()
    | KW "INNER" ->
      advance st;
      expect_kw st "JOIN";
      joins := parse_join_tail st Inner :: !joins;
      join_loop ()
    | KW "LEFT" ->
      advance st;
      ignore (accept_kw st "OUTER");
      expect_kw st "JOIN";
      joins := parse_join_tail st Left_outer :: !joins;
      join_loop ()
    | _ -> ()
  in
  join_loop ();
  let where = if accept_kw st "WHERE" then Some (parse_expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let keys = ref [ parse_expr st ] in
      while peek st = COMMA do
        advance st;
        keys := parse_expr st :: !keys
      done;
      List.rev !keys
    end
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let parse_ob () =
        let sort_expr = parse_expr st in
        let asc =
          if accept_kw st "DESC" then false
          else begin
            ignore (accept_kw st "ASC");
            true
          end
        in
        { sort_expr; asc }
      in
      let obs = ref [ parse_ob () ] in
      while peek st = COMMA do
        advance st;
        obs := parse_ob () :: !obs
      done;
      List.rev !obs
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match peek st with
      | INT n ->
        advance st;
        Some n
      | _ -> fail st "expected integer after LIMIT"
    else None
  in
  let offset =
    if accept_kw st "OFFSET" then
      match peek st with
      | INT n ->
        advance st;
        Some n
      | _ -> fail st "expected integer after OFFSET"
    else None
  in
  { distinct; items; from; joins = List.rev !joins; where; group_by; order_by;
    limit; offset }

and parse_join_tail st kind : join =
  let item = parse_from_item st in
  expect_kw st "ON";
  let on =
    if accept_kw st "TRUE" then None
    else Some (parse_expr st)
  in
  { kind; item; on }

and parse_from_item st : from_item =
  match peek st with
  | KW "LATERAL" ->
    advance st;
    expect st LPAREN;
    expect_kw st "VALUES";
    let parse_row () =
      expect st LPAREN;
      let es = ref [ parse_expr st ] in
      while peek st = COMMA do
        advance st;
        es := parse_expr st :: !es
      done;
      expect st RPAREN;
      List.rev !es
    in
    let rows = ref [ parse_row () ] in
    while peek st = COMMA do
      advance st;
      rows := parse_row () :: !rows
    done;
    expect st RPAREN;
    expect_kw st "AS";
    let alias = ident st in
    expect st LPAREN;
    let cols = ref [ ident st ] in
    while peek st = COMMA do
      advance st;
      cols := ident st :: !cols
    done;
    expect st RPAREN;
    From_values { rows = List.rev !rows; alias; cols = List.rev !cols }
  | LPAREN ->
    advance st;
    let q = parse_query st in
    expect st RPAREN;
    expect_kw st "AS";
    let alias = ident st in
    From_subquery { query = q; alias }
  | IDENT table ->
    advance st;
    let alias =
      if accept_kw st "AS" then ident st
      else
        match peek st with
        | IDENT a when peek2 st <> DOT -> advance st; a
        | _ -> table
    in
    From_table { table; alias }
  | _ -> fail st "expected FROM item"

(** Parse a full statement (with optional WITH clause). *)
let parse (src : string) : stmt =
  let st = { toks = tokenize src } in
  let ctes =
    if accept_kw st "WITH" then begin
      let parse_cte () =
        let name = ident st in
        expect_kw st "AS";
        expect st LPAREN;
        let q = parse_query st in
        expect st RPAREN;
        (name, q)
      in
      let ctes = ref [ parse_cte () ] in
      while peek st = COMMA do
        advance st;
        ctes := parse_cte () :: !ctes
      done;
      List.rev !ctes
    end
    else []
  in
  let body = parse_query st in
  if peek st <> EOF then fail st "trailing input";
  { ctes; body }
