(** Access methods and the triple-method cost function TMC
    (Definition 3.1, Section 3.1.1).

    DB2RDF has subject and object indexes only (the [entry] columns), so
    the methods are access-by-subject [Acs], access-by-object [Aco] and
    full scan [Sc] — the method set M of the paper's example. *)

type access = Sc | Acs | Aco

val access_to_string : access -> string

(** [tmc stats dict tp m] estimates the rows touched when evaluating
    triple pattern [tp] with method [m]: a constant-entry lookup costs
    the constant's known frequency; a variable-entry lookup costs the
    predicate's fan-out on that side (average triples per subject or
    object); a scan costs the total triple count. *)
val tmc :
  Dataset_stats.t -> Rdf.Dictionary.t -> Sparql.Ast.triple_pat -> access -> float

(** Estimated matches of a triple pattern regardless of access path —
    the selectivity estimate the bottom-up baseline translators order
    BGPs by. *)
val triple_selectivity :
  Dataset_stats.t -> Rdf.Dictionary.t -> Sparql.Ast.triple_pat -> float

(** Estimated fraction of DPH rows surviving the semi-join reduction
    for a (predicate pair, correlation) key — the {!Relsql.Extvp}
    registry's estimator, consulted before building a reduction to
    decide whether it is worth materializing (S2RDF's ScaleUB gate).
    SS uses the characteristic-set covering count of the pair;
    SO and OS combine per-predicate membership fractions under
    independence. *)
val extvp_selectivity : Dataset_stats.t -> Relsql.Extvp.key -> float

(** Minimum store size (triples) for the acyclic chooser in
    {!wcoj_decision} to pick the multiway join — below it trie-build
    constant factors never amortize. Mutable so tests and experiments
    can exercise the chooser on small fixtures. *)
val wcoj_scan_floor : int ref

(** Statistics-informed choice between a binary join tree and the
    leapfrog (worst-case-optimal) operator, installed by {!Engine} as
    the planner's {!Relsql.Wcoj.selector}. Cyclic join graphs always
    pick WCOJ. An acyclic region picks it when it couples two or more
    star regions (a lone star is already one merged scan) on a hub of
    three or more atoms, the characteristic-set cardinality estimate
    ({!Dataset_stats.cs_subject_count}, with referenced stars entering
    as selectivities) undercuts the binary plan's estimate with margin,
    no selective constant object hands the binary tree an object-index
    entry point, and the store is at least {!wcoj_scan_floor} triples. *)
val wcoj_decision : Dataset_stats.t -> Relsql.Wcoj.request -> Relsql.Wcoj.decision
