bench/exp_summary.ml: Harness Helpers_graph List Printf Sparql Workloads
