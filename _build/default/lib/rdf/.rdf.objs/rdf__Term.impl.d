lib/rdf/term.ml: Buffer Float Format Hashtbl Printf Stdlib String
