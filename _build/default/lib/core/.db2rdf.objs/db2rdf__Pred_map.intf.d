lib/core/pred_map.mli: Hashtbl
