test/test_paths.ml: Alcotest Ast Helpers List Parser Rdf Ref_eval Sparql
