(** The relational face of the term dictionary: the [DICT] relation
    ([id] indexed, [term] = N-Triples rendering, [txt] = regex text,
    [num] = numeric value or NULL), which FILTER comparisons, ORDER BY
    and numeric aggregates join against — the standard move in
    dictionary-encoded RDF systems. *)

val table_name : string

type state

(** Create the (empty, indexed) DICT relation in a database. *)
val create : Relsql.Database.t -> state

(** Append rows for dictionary ids interned since the last sync. Call
    after loading and before translating queries that need term values.
    [domains > 1] renders rows on the shared pool; the resulting
    relation is identical to a sequential sync. *)
val sync : ?domains:int -> state -> Rdf.Dictionary.t -> unit
