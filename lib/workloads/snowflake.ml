(** Entity-chain ("snowflake") workload for the multiway-join
    experiment: orders reference customers, customers reference regions,
    and most of the store is unrelated noise entities. Every predicate
    is single-valued, so each star region of a query is one merged DPH
    scan under the default pipeline — a query coupling two or three
    star regions pays two or three full scans plus joins, while the
    flat leapfrog form shares a single scan across all of its atoms.
    This is exactly the regime the characteristic-set chooser selects
    the WCOJ for (see {!Db2rdf.Cost.wcoj_decision}). *)

let pred tier i = Printf.sprintf "http://snowflake.org/%s%d" tier i
let a i = pred "A" i (* order attributes *)
let b i = pred "B" i (* customer attributes *)
let c i = pred "C" i (* region attributes *)
let ref1 = "http://snowflake.org/ref" (* order -> customer *)
let ref2 = "http://snowflake.org/ref2" (* customer -> region *)
let noise i = pred "N" i

let order_subj i = Rdf.Term.iri (Printf.sprintf "http://snowflake.org/o/%d" i)
let cust_subj i = Rdf.Term.iri (Printf.sprintf "http://snowflake.org/c/%d" i)
let region_subj i = Rdf.Term.iri (Printf.sprintf "http://snowflake.org/r/%d" i)
let noise_subj i = Rdf.Term.iri (Printf.sprintf "http://snowflake.org/n/%d" i)

(** Shared low-cardinality literal domain: no single attribute is
    selective on its own. *)
let obj rng = Rdf.Term.lit (Printf.sprintf "o%d" (Dist.int rng 50))

(** Generate roughly [scale] triples: ~15% order triples, ~10%
    customer, ~2% region, the rest noise. Deterministic. *)
let generate ~scale : Rdf.Triple.t list =
  let rng = Dist.create 47 in
  let triples = ref [] in
  let emit s p o = triples := Rdf.Triple.make s (Rdf.Term.iri p) o :: !triples in
  let n_orders = max 1 (scale * 15 / 100 / 4) in
  let n_cust = max 1 (scale * 10 / 100 / 4) in
  let n_regions = max 1 (scale * 2 / 100 / 2) in
  let used = (n_orders * 4) + (n_cust * 4) + (n_regions * 2) in
  let n_noise = max 1 ((scale - used) / 6) in
  for i = 0 to n_regions - 1 do
    let s = region_subj i in
    emit s (c 1) (obj rng);
    emit s (c 2) (obj rng)
  done;
  for i = 0 to n_cust - 1 do
    let s = cust_subj i in
    emit s (b 1) (obj rng);
    emit s (b 2) (obj rng);
    emit s (b 3) (obj rng);
    emit s ref2 (region_subj (Dist.int rng n_regions))
  done;
  for i = 0 to n_orders - 1 do
    let s = order_subj i in
    emit s (a 1) (obj rng);
    emit s (a 2) (obj rng);
    emit s (a 3) (obj rng);
    emit s ref1 (cust_subj (Dist.int rng n_cust))
  done;
  for i = 0 to n_noise - 1 do
    let s = noise_subj i in
    for p = 1 to 6 do
      emit s (noise p) (obj rng)
    done
  done;
  List.rev !triples

(** SF1: two coupled stars (order × customer). SF2: three-hop chain
    down to the region tier. SF3: SF1 with a constant customer
    attribute. SF4: a lone order star — the control the chooser leaves
    on the merged-scan pipeline. *)
let queries : (string * string) list =
  [ ( "SF1",
      Printf.sprintf
        "SELECT ?o ?x ?y ?c ?u ?v WHERE { ?o <%s> ?x . ?o <%s> ?y . ?o <%s> \
         ?c . ?c <%s> ?u . ?c <%s> ?v . }"
        (a 1) (a 2) ref1 (b 1) (b 2) );
    ( "SF2",
      Printf.sprintf
        "SELECT ?o ?x ?y ?c ?u ?r ?w WHERE { ?o <%s> ?x . ?o <%s> ?y . ?o \
         <%s> ?c . ?c <%s> ?u . ?c <%s> ?r . ?r <%s> ?w . }"
        (a 1) (a 2) ref1 (b 1) ref2 (c 1) );
    ( "SF3",
      Printf.sprintf
        "SELECT ?o ?x ?y ?c ?v WHERE { ?o <%s> ?x . ?o <%s> ?y . ?o <%s> ?c \
         . ?c <%s> \"o7\" . ?c <%s> ?v . }"
        (a 1) (a 2) ref1 (b 1) (b 2) );
    ( "SF4",
      Printf.sprintf
        "SELECT ?o ?x ?y ?z WHERE { ?o <%s> ?x . ?o <%s> ?y . ?o <%s> ?z . }"
        (a 1) (a 2) (a 3) ) ]
