(** E6 — the Section 3.3 / Figure 14 flow experiment: a two-triple query
    whose constants have very different frequencies (~0.75 vs ~0.01).
    Starting the flow at the selective constant (the hybrid optimizer's
    choice) versus the unselective one (the alternative flow a naive
    translator produces) changes evaluation time several-fold; the paper
    reports 13ms vs 65ms on this micro query and 4ms vs 22.66s on
    PRBench's PQ1. *)

let run (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E6. Optimized vs alternative data flow (Figure 14) — %d triples"
       cfg.Harness.scale);
  let triples = Workloads.Micro.flow_experiment_data ~scale:cfg.Harness.scale in
  let q = Sparql.Parser.parse Workloads.Micro.flow_query in
  let optimized = Harness.build_db2rdf ~name:"optimized-flow" triples in
  let naive = Harness.build_db2rdf_naive triples in
  let naive = { naive with Harness.sys_name = "alternative-flow" } in
  Harness.subsection "generated SQL (optimized flow)";
  (match optimized.Harness.store.Db2rdf.Store.explain q with
   | s ->
     (* print only the SQL section of the explain output *)
     let lines = String.split_on_char '\n' s in
     let rec from_sql = function
       | [] -> []
       | "== SQL ==" :: rest -> rest
       | _ :: rest -> from_sql rest
     in
     let rec until_plan = function
       | [] -> []
       | "== physical plan ==" :: _ -> []
       | l :: rest -> l :: until_plan rest
     in
     List.iter print_endline (until_plan (from_sql lines)));
  let rows =
    List.map
      (fun (sys : Harness.system) ->
        let m = Harness.measure cfg sys "flow" q in
        [ sys.Harness.sys_name; Harness.outcome_cell m;
          (match m.Harness.m_outcome with
           | `Complete n -> string_of_int n
           | _ -> "-") ])
      [ optimized; naive ]
  in
  Harness.subsection "evaluation";
  Harness.print_table [ "flow"; "time (ms)"; "results" ] rows;
  (* The PQ1 counterpart on PRBench data. *)
  Harness.subsection "PRBench PQ1 under both flows";
  let pr = Workloads.Prbench.generate ~scale:cfg.Harness.scale in
  let q1 = Sparql.Parser.parse (List.assoc "PQ1" Workloads.Prbench.queries) in
  let opt = Harness.build_db2rdf ~name:"optimized-flow" pr in
  let nai = Harness.build_db2rdf_naive pr in
  let nai = { nai with Harness.sys_name = "alternative-flow" } in
  let rows =
    List.map
      (fun (sys : Harness.system) ->
        let m = Harness.measure cfg sys "PQ1" q1 in
        [ sys.Harness.sys_name; Harness.outcome_cell m ])
      [ opt; nai ]
  in
  Harness.print_table [ "flow"; "PQ1 (ms)" ] rows
