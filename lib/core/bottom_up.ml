(** The "typical bottom-up" execution-order builder used by the baseline
    stores (Section 1's description of prior optimizers, in the style of
    Stocker et al.): within each group, triple patterns are greedily
    ordered by estimated selectivity, preferring patterns that join a
    variable already bound; UNION and OPTIONAL sub-patterns are treated
    as opaque units in syntactic order. No cross-group weaving, no
    data-flow analysis — this is exactly the optimizer class the hybrid
    DFB/QPB pipeline is compared against. *)

module VarSet = Sparql.Ast.VarSet

let tp_vars tp = VarSet.of_list (Sparql.Ast.triple_pat_vars tp)

(** Order the triples of one group greedily. *)
let order_triples stats dict pt (tids : int list) : int list =
  let pat tid = (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat in
  let sel tid = Cost.triple_selectivity stats dict (pat tid) in
  let rec go bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let scored =
        List.map
          (fun tid ->
            let joins_bound =
              not (VarSet.is_empty (VarSet.inter bound (tp_vars (pat tid))))
            in
            (tid, joins_bound, sel tid))
          remaining
      in
      let better (_, j1, s1) (_, j2, s2) =
        if j1 <> j2 then j1 (* joining a bound variable wins *)
        else s1 < s2
      in
      let best =
        List.fold_left
          (fun acc c -> if better c acc then c else acc)
          (List.hd scored) (List.tl scored)
      in
      let tid, _, _ = best in
      go
        (VarSet.union bound (tp_vars (pat tid)))
        (List.filter (fun t -> t <> tid) remaining)
        (tid :: acc)
  in
  go VarSet.empty tids []

(** Build the baseline execution tree: selectivity-ordered leaves inside
    groups, opaque UNION/OPTIONAL units in syntactic position. Methods
    are irrelevant for the baseline backends (every position is bound in
    one table access), so leaves carry [Sc]. *)
let exec_tree (pt : Sparql.Pattern_tree.t) (stats : Dataset_stats.t)
    (dict : Rdf.Dictionary.t) : Exec_tree.t =
  let rec go n : [ `Plain of Exec_tree.t | `Optional of Exec_tree.t ] option =
    match Sparql.Pattern_tree.kind pt n with
    | Sparql.Pattern_tree.K_leaf tp ->
      Some (`Plain (Exec_tree.Leaf (tp.Sparql.Pattern_tree.id, Cost.Sc)))
    | Sparql.Pattern_tree.K_and ->
      (* Moving the selectivity-ordered BGP ahead of an OPTIONAL child is
         sound only for well-designed patterns: every optional variable
         shared with a syntactically later sibling must already be bound
         by a required sibling before the OPTIONAL. Otherwise keep the
         group's syntactic order (matching the W3C translation). *)
      let children = pt.Sparql.Pattern_tree.children.(n) in
      let vars_under c =
        List.fold_left
          (fun acc tid ->
            VarSet.union acc
              (tp_vars
                 (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat))
          VarSet.empty
          (Sparql.Pattern_tree.triples_under pt c)
      in
      (* Vars bound with certainty under [c] (outside any OPTIONAL
         region) and vars bound inside some OPTIONAL region under [c]. *)
      let rec req_vars_under c =
        match Sparql.Pattern_tree.kind pt c with
        | Sparql.Pattern_tree.K_leaf tp ->
          tp_vars tp.Sparql.Pattern_tree.pat
        | Sparql.Pattern_tree.K_opt -> VarSet.empty
        | Sparql.Pattern_tree.K_and | Sparql.Pattern_tree.K_or ->
          List.fold_left
            (fun acc c' -> VarSet.union acc (req_vars_under c'))
            VarSet.empty
            pt.Sparql.Pattern_tree.children.(c)
      in
      let rec opt_vars_under c =
        match Sparql.Pattern_tree.kind pt c with
        | Sparql.Pattern_tree.K_leaf _ -> VarSet.empty
        | Sparql.Pattern_tree.K_opt -> vars_under c
        | Sparql.Pattern_tree.K_and | Sparql.Pattern_tree.K_or ->
          List.fold_left
            (fun acc c' -> VarSet.union acc (opt_vars_under c'))
            VarSet.empty
            pt.Sparql.Pattern_tree.children.(c)
      in
      let indexed = List.mapi (fun j c' -> (j, c')) children in
      let unsafe i c =
        let ov = opt_vars_under c in
        (not (VarSet.is_empty ov))
        &&
        let before =
          List.fold_left
            (fun acc (j, c') ->
              if j < i then VarSet.union acc (req_vars_under c') else acc)
            VarSet.empty indexed
        in
        let after =
          List.fold_left
            (fun acc (j, c') ->
              if j > i then VarSet.union acc (vars_under c') else acc)
            VarSet.empty indexed
        in
        not (VarSet.subset (VarSet.inter ov after) before)
      in
      let any_unsafe = List.exists (fun (i, c) -> unsafe i c) indexed in
      if any_unsafe then
        let acc =
          List.fold_left
            (fun acc c ->
              match go c with
              | None -> acc
              | Some (`Plain t) ->
                (match acc with
                 | None -> Some t
                 | Some a -> Some (Exec_tree.And (a, t)))
              | Some (`Optional t) ->
                (match acc with
                 | None -> Some (Exec_tree.Opt (Exec_tree.Unit, t))
                 | Some a -> Some (Exec_tree.Opt (a, t))))
            None children
        in
        Option.map (fun t -> `Plain t) acc
      else
      (* Direct leaf children are selectivity-ordered as one BGP;
         composite children keep their syntactic position after it. *)
      let leaves, others =
        List.partition
          (fun c ->
            match Sparql.Pattern_tree.kind pt c with
            | Sparql.Pattern_tree.K_leaf _ -> true
            | _ -> false)
          pt.Sparql.Pattern_tree.children.(n)
      in
      let leaf_tids =
        List.map
          (fun c ->
            match Sparql.Pattern_tree.kind pt c with
            | Sparql.Pattern_tree.K_leaf tp -> tp.Sparql.Pattern_tree.id
            | _ -> assert false)
          leaves
      in
      let ordered = order_triples stats dict pt leaf_tids in
      let base =
        List.fold_left
          (fun acc tid ->
            let leaf = Exec_tree.Leaf (tid, Cost.Sc) in
            match acc with
            | None -> Some leaf
            | Some a -> Some (Exec_tree.And (a, leaf)))
          None ordered
      in
      let result =
        List.fold_left
          (fun acc c ->
            match go c with
            | None -> acc
            | Some (`Plain t) ->
              (match acc with
               | None -> Some t
               | Some a -> Some (Exec_tree.And (a, t)))
            | Some (`Optional t) ->
              (match acc with
               | None -> Some (Exec_tree.Opt (Exec_tree.Unit, t))
               | Some a -> Some (Exec_tree.Opt (a, t))))
          base others
      in
      Option.map (fun t -> `Plain t) result
    | Sparql.Pattern_tree.K_or ->
      let parts =
        List.filter_map
          (fun c ->
            match go c with
            | Some (`Plain t) | Some (`Optional t) -> Some t
            | None -> None)
          pt.Sparql.Pattern_tree.children.(n)
      in
      if parts = [] then None else Some (`Plain (Exec_tree.Or parts))
    | Sparql.Pattern_tree.K_opt ->
      let inner =
        List.fold_left
          (fun acc c ->
            match go c with
            | None -> acc
            | Some (`Plain t) ->
              (match acc with
               | None -> Some t
               | Some a -> Some (Exec_tree.And (a, t)))
            | Some (`Optional t) ->
              (match acc with
               | None -> Some (Exec_tree.Opt (Exec_tree.Unit, t))
               | Some a -> Some (Exec_tree.Opt (a, t))))
          None
          pt.Sparql.Pattern_tree.children.(n)
      in
      Option.map (fun t -> `Optional t) inner
  in
  match go pt.Sparql.Pattern_tree.root with
  | Some (`Plain t) -> t
  | Some (`Optional t) -> Exec_tree.Opt (Exec_tree.Unit, t)
  | None -> Exec_tree.Unit

(** A merge context that never merges — baseline layouts have no star
    templates. *)
let no_merge_ctx (pt : Sparql.Pattern_tree.t) : Merge.ctx =
  {
    Merge.pt;
    pred_spills = (fun _ _ -> true);
    pred_multivalued = (fun _ _ -> false);
    var_count = (fun _ -> 0);
    merging_enabled = false;
  }
