lib/core/cost.mli: Dataset_stats Rdf Sparql
