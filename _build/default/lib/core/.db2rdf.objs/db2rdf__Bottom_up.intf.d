lib/core/bottom_up.mli: Dataset_stats Exec_tree Merge Rdf Sparql
