(** Decoding relational query output back to RDF terms, shared by every
    relational store. Ordinary projected columns hold dictionary ids;
    aggregate columns hold computed values that decode through
    {!Rdf.Term.of_number}, so aggregate answers compare equal to the
    reference evaluator's. *)

val decode :
  Rdf.Dictionary.t ->
  Sparql.Ast.query ->
  Relsql.Executor.result ->
  Sparql.Ref_eval.results
