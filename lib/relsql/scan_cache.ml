(** A bounded LRU cache of materialized base-table scan results.

    Star-join SQL re-reads the same tables with the same fused
    filter/projection across queries (and across repeated runs of one
    query); when nothing changed, re-scanning is pure waste. An entry is
    keyed by the table's {e name and version} plus the physical encoding
    epoch plus a fingerprint of the (filter, columns) pair, so the key
    itself encodes validity: any insert/update/delete bumps
    {!Table.version}, a freeze/thaw bumps {!Table.enc_epoch}, future
    scans compute a different key, and the stale entry simply ages out
    of the LRU — no clear-on-write hook to forget.

    Batches have linear ownership (the consumer mutates them in place),
    so the cache stores a frozen private copy on miss and hands out a
    fresh copy on hit. Results that fit {!max_cells} as boxed cells are
    stored as plain batches (a hit is a row blit). Larger results get a
    second chance: they are bit-packed ({!Packed.pack}, no zone maps)
    and kept when the packed image itself fits the budget — a hit then
    decompresses into a fresh batch, still far cheaper than re-running
    the scan's predicate over the base table.

    Reuses {!Plan_cache} for the LRU/counter machinery; like it, the
    cache is not domain-safe and belongs to the query-submitting
    domain (the executor consults it outside parallel sections only). *)

type entry =
  | Boxed of Batch.t
  | Compressed of Packed.t * Expr_eval.layout

type t = { cache : entry Plan_cache.t }

(** Entries costlier than this are not cached: boxed entries are charged
    their cell count, compressed entries the words of their packed image
    — so the cache trades a bounded amount of memory for scan time
    under either representation. *)
let max_cells = 1 lsl 20

let create ?(capacity = 32) () = { cache = Plan_cache.create ~capacity () }

(** Cache key for a scan of [table] at [version] (encoding epoch [enc],
    delta epoch [delta]) with the given fused filter and column
    pruning. The (filter, cols) pair is fingerprinted by marshalling —
    {!Sql_ast.expr} is pure variant data, so equal predicates digest
    equally — keeping keys short and hashable. The scan's alias is
    deliberately excluded: self-joins scan the same table under
    different aliases, and the executor re-qualifies the cached layout
    on every hit. *)
let key ~table ~version ~enc ~delta ~(filter : Sql_ast.expr option)
    ~(cols : string list option) =
  Printf.sprintf "%s@%d~%d+%d#%s" table version enc delta
    (Digest.to_hex (Digest.string (Marshal.to_string (filter, cols) [])))

let unpack pk layout =
  let nrows = Packed.nrows pk in
  let b = Batch.create ~capacity:(max 1 nrows) layout in
  let arity = Packed.ncols pk in
  let scratch = Array.make arity Value.Null in
  for rid = 0 to nrows - 1 do
    for pos = 0 to arity - 1 do
      scratch.(pos) <- Packed.cell pk rid pos
    done;
    Batch.push_row b scratch
  done;
  b

(** A fresh, privately-owned copy of the cached result, or [None]. *)
let find t k =
  match Plan_cache.find t.cache k with
  | None -> None
  | Some (Boxed b) -> Some (Batch.copy b)
  | Some (Compressed (pk, layout)) -> Some (unpack pk layout)

(** Freeze a private copy of [b] under [k] — boxed when the cell count
    fits {!max_cells}, bit-packed when the packed image does, dropped
    otherwise. The caller keeps ownership of [b]. *)
let add t k (b : Batch.t) =
  let rows = Batch.length b and cols = max 1 (Batch.width b) in
  if rows * cols <= max_cells then Plan_cache.add t.cache k (Boxed (Batch.copy b))
  else
    let pk =
      Packed.pack ~zones:false ~ncols:(Batch.width b) ~nrows:rows
        (fun rid pos -> Batch.get b rid pos)
        ~live:(fun _ -> true)
    in
    if Packed.packed_words pk <= max_cells then
      Plan_cache.add t.cache k (Compressed (pk, Batch.layout b))

let clear t = Plan_cache.clear t.cache
let stats t = Plan_cache.stats t.cache

let stats_to_string t =
  let s = stats t in
  Printf.sprintf "scan cache: %d hits, %d misses, %d entries"
    s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.entries
