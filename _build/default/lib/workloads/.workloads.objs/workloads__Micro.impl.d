lib/workloads/micro.ml: Buffer Dist List Printf Rdf
