(** Differential-fuzzer regression tests: replay the committed corpus of
    shrunk reproducers, run a fixed-seed smoke sweep, and lock in the
    ORDER BY and timeout behaviors the fuzzer compares. *)

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.sort String.compare

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun f ->
      let r = Fuzz.Repro.read (Filename.concat corpus_dir f) in
      match Fuzz.Runner.check_repro r with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" f msg)
    files

let test_smoke () =
  let config =
    { Fuzz.Runner.default_config with seed = 42; cases = 200 }
  in
  let s = Fuzz.Runner.fuzz config in
  Alcotest.(check int) "no divergences" 0 s.Fuzz.Runner.divergent;
  Alcotest.(check int) "all cases ran" 200 s.Fuzz.Runner.cases_run

(* ------------------------------------------------------------------ *)
(* Ordered results                                                     *)
(* ------------------------------------------------------------------ *)

let case ~query ~data =
  Fuzz.Repro.of_string ("-- query\n" ^ query ^ "\n-- data\n" ^ data)

let row_to_string row =
  String.concat " | "
    (List.map
       (function None -> "UNBOUND" | Some t -> Rdf.Term.to_string t)
       row)

(** Run [query] over [data] on every backend and check the rows come
    back in exactly the oracle's order (the data gives every row a
    distinct sort key, so the order is fully determined). *)
let check_ordered ~query ~data =
  let r = case ~query ~data in
  let q = Sparql.Parser.parse r.Fuzz.Repro.query_src in
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) r.Fuzz.Repro.triples;
  let oracle = Sparql.Ref_eval.eval g q in
  let expect = List.map row_to_string oracle.Sparql.Ref_eval.rows in
  List.iter
    (fun (store : Db2rdf.Store.t) ->
      match fst (Db2rdf.Store.run store q) with
      | Db2rdf.Store.Complete res ->
        Alcotest.(check (list string))
          (store.Db2rdf.Store.name ^ " row order")
          expect
          (List.map row_to_string res.Sparql.Ref_eval.rows)
      | _ -> Alcotest.failf "%s did not complete" store.Db2rdf.Store.name)
    (Fuzz.Runner.make_backends r.Fuzz.Repro.triples);
  oracle

let test_order_by_mixed () =
  (* Numeric literals sort before other terms; each key is distinct. *)
  let oracle =
    check_ordered
      ~query:"SELECT ?s ?o WHERE { ?s <p> ?o . } ORDER BY ?o"
      ~data:
        "<a> <p> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
         <b> <p> \"2.5\"^^<http://www.w3.org/2001/XMLSchema#decimal> .\n\
         <c> <p> \"zz\" .\n\
         <d> <p> \"aa\"@en .\n\
         <e> <p> <iri> .\n"
  in
  Alcotest.(check int) "row count" 5 (List.length oracle.Sparql.Ref_eval.rows)

let test_order_by_unbound_first () =
  (* Rows where the sort variable is unbound (OPTIONAL miss) sort before
     every bound value in ascending order. *)
  let oracle =
    check_ordered
      ~query:
        "SELECT ?s ?v WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?v . } } ORDER BY ?v"
      ~data:
        "<a> <p> <x> .\n\
         <b> <p> <y> .\n\
         <b> <q> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
  in
  match oracle.Sparql.Ref_eval.rows with
  | [ first; _ ] ->
    Alcotest.(check bool) "unbound sorts first" true (List.mem None first)
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_order_by_desc_limit () =
  ignore
    (check_ordered
       ~query:"SELECT ?s ?o WHERE { ?s <p> ?o . } ORDER BY DESC(?o) LIMIT 2"
       ~data:
         "<a> <p> \"1\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
          <b> <p> \"2\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n\
          <c> <p> \"3\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n")

(* ------------------------------------------------------------------ *)
(* Uniform timeout outcomes                                            *)
(* ------------------------------------------------------------------ *)

let test_timeout_outcome () =
  (* A deadline in the past must surface as the Timed_out outcome on
     every backend — never as an uncaught exception. *)
  (* Dense enough that the oracle's deadline check (every 8192 ops)
     fires before the join completes. *)
  let buf = Buffer.create (1 lsl 16) in
  for i = 0 to 39 do
    for j = 0 to 39 do
      Buffer.add_string buf (Printf.sprintf "<s%d> <p> <s%d> .\n" i j)
    done
  done;
  let r =
    case
      ~query:"SELECT ?a ?b ?c WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?a . }"
      ~data:(Buffer.contents buf)
  in
  let q = Sparql.Parser.parse r.Fuzz.Repro.query_src in
  List.iter
    (fun (store : Db2rdf.Store.t) ->
      match fst (Db2rdf.Store.run ~timeout:1e-9 store q) with
      | Db2rdf.Store.Timed_out -> ()
      | Db2rdf.Store.Complete _ ->
        Alcotest.failf "%s completed despite expired deadline"
          store.Db2rdf.Store.name
      | Db2rdf.Store.Unsupported msg | Db2rdf.Store.Failed msg ->
        Alcotest.failf "%s: %s" store.Db2rdf.Store.name msg)
    (Fuzz.Runner.make_backends r.Fuzz.Repro.triples);
  (* The oracle raises its own Timeout, which the runner maps to a
     skipped case rather than a divergence. *)
  let g = Rdf.Graph.create () in
  List.iter (Rdf.Graph.add g) r.Fuzz.Repro.triples;
  let oracle_times_out =
    match Sparql.Ref_eval.eval ~timeout:1e-9 g q with
    | _ -> false
    | exception Sparql.Ref_eval.Timeout -> true
  in
  Alcotest.(check bool) "oracle raises Timeout" true oracle_times_out;
  match Fuzz.Runner.run_case ~timeout:1e-9 r.Fuzz.Repro.triples q with
  | Fuzz.Runner.Skipped _ -> ()
  | Fuzz.Runner.Agree | Fuzz.Runner.Diverged _ ->
    Alcotest.fail "expired-deadline case should be skipped, not compared"

let suite =
  [ Alcotest.test_case "corpus replay" `Quick test_corpus_replay;
    Alcotest.test_case "fixed-seed smoke (200 cases)" `Slow test_smoke;
    Alcotest.test_case "order by mixed keys" `Quick test_order_by_mixed;
    Alcotest.test_case "order by: unbound first" `Quick test_order_by_unbound_first;
    Alcotest.test_case "order by desc + limit" `Quick test_order_by_desc_limit;
    Alcotest.test_case "timeout is an outcome" `Quick test_timeout_outcome ]
