(** Enterprise product-catalog scenario — the schema-variability
    motivation from the paper's introduction (Best Buy publishing
    product data as RDF): products from different categories carry
    wildly different attribute sets, and new attributes appear at any
    time. A relational design would need schema changes; the DB2RDF
    layout absorbs new predicates into its fixed columns dynamically.

    Run with: [dune exec examples/enterprise_catalog.exe] *)

let ns = "http://catalog.example.com/"
let p name = Rdf.Term.iri (ns ^ name)
let product sku = Rdf.Term.iri (Printf.sprintf "%ssku/%s" ns sku)

let triple sku prop o = Rdf.Triple.make (product sku) (p prop) o

let initial_catalog =
  let l = Rdf.Term.lit and n = Rdf.Term.int_lit in
  [ (* a laptop: electronics attributes *)
    triple "L100" "category" (l "laptop");
    triple "L100" "brand" (l "Acme");
    triple "L100" "priceUSD" (n 999);
    triple "L100" "screenInches" (n 14);
    triple "L100" "ramGB" (n 16);
    (* a blender: appliance attributes *)
    triple "B200" "category" (l "blender");
    triple "B200" "brand" (l "Blendco");
    triple "B200" "priceUSD" (n 89);
    triple "B200" "wattage" (n 1200);
    (* a t-shirt: apparel attributes — multi-valued sizes *)
    triple "T300" "category" (l "tshirt");
    triple "T300" "brand" (l "Threadly");
    triple "T300" "priceUSD" (n 19);
    triple "T300" "size" (l "S");
    triple "T300" "size" (l "M");
    triple "T300" "size" (l "L");
    triple "T300" "color" (l "navy") ]

let () =
  let engine =
    Db2rdf.Engine.create ~layout:(Db2rdf.Layout.make ~dph_cols:6 ~rph_cols:6) ()
  in
  Db2rdf.Engine.load engine initial_catalog;
  Printf.printf "catalog loaded: %d facts, no fixed schema\n"
    (Db2rdf.Loader.triples_loaded (Db2rdf.Engine.loader engine));

  let show title src =
    Printf.printf "\n== %s ==\n" title;
    let r = Db2rdf.Engine.query_string engine src in
    List.iter
      (fun row ->
        print_endline
          ("  "
          ^ String.concat " | "
              (List.map
                 (function Some t -> Rdf.Term.to_string t | None -> "-")
                 row)))
      r.Sparql.Ref_eval.rows
  in

  show "products under $100, with brand"
    (Printf.sprintf
       "SELECT ?sku ?brand ?price WHERE { ?sku <%sbrand> ?brand . ?sku <%spriceUSD> ?price FILTER (?price < 100) }"
       ns ns);

  show "every attribute of the t-shirt (multi-valued sizes expand)"
    (Printf.sprintf "SELECT ?attr ?v WHERE { <%ssku/T300> ?attr ?v }" ns);

  (* New product category arrives with never-seen predicates: no schema
     change needed — the hash composition assigns columns on the fly. *)
  let n = Rdf.Term.int_lit and l = Rdf.Term.lit in
  Db2rdf.Engine.load engine
    [ triple "G400" "category" (l "gpu");
      triple "G400" "brand" (l "Acme");
      triple "G400" "priceUSD" (n 1599);
      triple "G400" "cudaCores" (n 16384);
      triple "G400" "vramGB" (n 24);
      triple "G400" "pciSlots" (n 3) ];
  Printf.printf
    "\nadded a GPU with 3 brand-new attributes (cudaCores, vramGB, pciSlots)\n";

  show "cross-category query spanning old and new attributes"
    (Printf.sprintf
       "SELECT ?sku ?price ?extra WHERE { ?sku <%sbrand> \"Acme\" . ?sku <%spriceUSD> ?price OPTIONAL { ?sku <%svramGB> ?extra } }"
       ns ns ns);

  show "analytics: product count and average price per category"
    (Printf.sprintf
       "SELECT ?cat (COUNT(?sku) AS ?n) (AVG(?price) AS ?avg) WHERE { ?sku <%scategory> ?cat . ?sku <%spriceUSD> ?price } GROUP BY ?cat"
       ns ns);

  (* A product is discontinued: deletion clears its cells (and its
     multi-valued size list) in place. *)
  Db2rdf.Engine.delete engine (triple "T300" "size" (Rdf.Term.lit "M"));
  show "after discontinuing size M"
    (Printf.sprintf "SELECT ?v WHERE { <%ssku/T300> <%ssize> ?v }" ns ns);

  (* Show how the store physically holds this: one DPH row per product,
     attributes spread across the shared columns. *)
  let loader = Db2rdf.Engine.loader engine in
  let report = Db2rdf.Loader.report loader Db2rdf.Loader.Direct in
  Printf.printf
    "\nphysical layout: %d products in %d DPH rows (%d spills), %d distinct predicates\n"
    report.Db2rdf.Loader.distinct_entities report.Db2rdf.Loader.rows
    report.Db2rdf.Loader.spills
    (Db2rdf.Dataset_stats.distinct_predicates (Db2rdf.Loader.stats loader))
