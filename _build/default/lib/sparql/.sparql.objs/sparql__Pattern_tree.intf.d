lib/sparql/pattern_tree.mli: Ast
