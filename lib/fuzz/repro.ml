(** Self-contained reproducer files for fuzzer-found divergences.

    A [.repro] file carries everything needed to replay one case
    forever: free-form [#] header lines describing the finding, the
    SPARQL query text, and the dataset as N-Triples. The test suite
    replays every file in [test/corpus/] against all backends on each
    run.

    Format (line-oriented):
    {v
    # any number of comment lines (finding description, seed, backend)
    -- query
    SELECT ... (verbatim SPARQL, may span lines)
    -- data
    <s> <p> "o" .          (N-Triples, one per line)
    v}

    Update-script reproducers (the fuzzer's [--updates] mode) carry a
    [-- script] section instead of [-- query]: a whole [;]-separated
    SPARQL script ({!Sparql.Parser.parse_script}) replayed statement by
    statement against the [-- data] initial graph. *)

type t = {
  description : string list;  (** header comment lines, without [# ] *)
  query_src : string;  (** SPARQL text ([""] for script reproducers) *)
  script_src : string option;  (** SPARQL update script, when present *)
  triples : Rdf.Triple.t list;
}

let query_marker = "-- query"
let script_marker = "-- script"
let data_marker = "-- data"

let to_string (r : t) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun line ->
      Buffer.add_string buf (if line = "" then "#" else "# " ^ line);
      Buffer.add_char buf '\n')
    r.description;
  (match r.script_src with
   | Some script ->
     Buffer.add_string buf script_marker;
     Buffer.add_char buf '\n';
     Buffer.add_string buf (String.trim script);
     Buffer.add_char buf '\n'
   | None ->
     Buffer.add_string buf query_marker;
     Buffer.add_char buf '\n';
     Buffer.add_string buf (String.trim r.query_src);
     Buffer.add_char buf '\n');
  Buffer.add_string buf data_marker;
  Buffer.add_char buf '\n';
  Rdf.Ntriples.to_buffer buf r.triples;
  Buffer.contents buf

exception Bad_repro of string

let of_string (src : string) : t =
  let lines = String.split_on_char '\n' src in
  let description = ref []
  and query = ref []
  and script = ref []
  and in_script = ref false
  and data = ref []
  and section = ref `Header in
  List.iter
    (fun line ->
      if String.trim line = query_marker then section := `Query
      else if String.trim line = script_marker then begin
        section := `Script;
        in_script := true
      end
      else if String.trim line = data_marker then section := `Data
      else
        match !section with
        | `Header ->
          let line = String.trim line in
          if line = "" then ()
          else if String.length line >= 1 && line.[0] = '#' then begin
            let body = String.sub line 1 (String.length line - 1) in
            description := String.trim body :: !description
          end
          else
            raise
              (Bad_repro ("unexpected line before -- query/-- script: " ^ line))
        | `Query -> query := line :: !query
        | `Script -> script := line :: !script
        | `Data -> data := line :: !data)
    lines;
  if !query = [] && not !in_script then
    raise (Bad_repro "missing -- query or -- script section");
  let query_src = String.trim (String.concat "\n" (List.rev !query)) in
  let script_src =
    if !in_script then Some (String.trim (String.concat "\n" (List.rev !script)))
    else None
  in
  let triples = ref [] in
  List.iteri
    (fun i line ->
      match Rdf.Ntriples.parse_line ~line:(i + 1) line with
      | Some t -> triples := t :: !triples
      | None -> ())
    (List.rev !data);
  {
    description = List.rev !description;
    query_src;
    script_src;
    triples = List.rev !triples;
  }

let write ~path (r : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r))

let read (path : string) : t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
