(** E2/E3/E4 — predicate-to-column assignment experiments:
    - E2 (Table 3): the composed-hash insertion walkthrough on the
      Android triples.
    - E3 (Table 4): graph-coloring results per dataset — predicates,
      DPH/RPH columns used, fraction of triple occurrences covered.
    - E4 (Section 2.3): spills under full-data coloring vs coloring a
      10% sample, and the DPH/RPH tuple counts and NULL fractions. *)

let datasets cfg =
  [ ("LUBM", Workloads.Lubm.generate ~scale:cfg.Harness.scale);
    ("SP2Bench", Workloads.Sp2b.generate ~scale:cfg.Harness.scale);
    ("PRBench", Workloads.Prbench.generate ~scale:cfg.Harness.scale);
    ("DBpedia", Workloads.Dbpedia.generate ~scale:cfg.Harness.scale) ]

let run_hashing (_cfg : Harness.config) =
  Harness.section "E2. Composed hashing walkthrough (Table 3, Figure 1(b))";
  let k = 5 in
  let store =
    Db2rdf.Loader.create
      ~layout:(Db2rdf.Layout.make ~dph_cols:k ~rph_cols:k)
      ~direct_map:(Db2rdf.Pred_map.paper_table3 ~k)
      ~reverse_map:(Db2rdf.Pred_map.hashed_family ~m:k ~n:2) ()
  in
  let android = Rdf.Term.iri "Android" in
  List.iter
    (fun (p, o) ->
      Db2rdf.Loader.insert store (Rdf.Triple.make android (Rdf.Term.iri p) o))
    [ ("developer", Rdf.Term.iri "Google"); ("version", Rdf.Term.lit "4.1");
      ("kernel", Rdf.Term.iri "Linux"); ("preceded", Rdf.Term.lit "4.0");
      ("graphics", Rdf.Term.iri "OpenGL") ];
  let dict = Db2rdf.Loader.dictionary store in
  let dph = Relsql.Database.find_exn (Db2rdf.Loader.database store) "DPH" in
  let decode pos v =
    match v with
    | Relsql.Value.Int id when pos <> 1 (* the spill flag stays numeric *) ->
      Rdf.Term.to_string (Rdf.Dictionary.term_of dict id)
    | v -> Relsql.Value.to_string v
  in
  let rows = ref [] in
  Relsql.Table.iter
    (fun _ row -> rows := Array.to_list (Array.mapi decode row) :: !rows)
    dph;
  let header =
    "entry" :: "spill"
    :: List.concat (List.init k (fun i -> [ Printf.sprintf "pred%d" i; Printf.sprintf "val%d" i ]))
  in
  Harness.print_table header (List.rev !rows);
  let r = Db2rdf.Loader.report store Db2rdf.Loader.Direct in
  Printf.printf "\nrows=%d spills=%d (graphics conflicts on both hash candidates)\n"
    r.Db2rdf.Loader.rows r.Db2rdf.Loader.spills

let color_stats triples max_colors =
  let dgraph = Db2rdf.Coloring.direct_graph triples in
  let rgraph = Db2rdf.Coloring.reverse_graph triples in
  let d = Db2rdf.Coloring.color ~max_colors dgraph in
  let r = Db2rdf.Coloring.color ~max_colors rgraph in
  (d, r)

let run_coloring (cfg : Harness.config) =
  Harness.section
    (Printf.sprintf "E3. Graph coloring results (Table 4) — ~%d triples each"
       cfg.Harness.scale);
  let max_colors = 24 in
  let rows =
    List.map
      (fun (name, triples) ->
        let d, r = color_stats triples max_colors in
        [ name;
          string_of_int (List.length triples);
          string_of_int d.Db2rdf.Coloring.total_predicates;
          string_of_int d.Db2rdf.Coloring.colors_used;
          Printf.sprintf "%.1f%%" (100.0 *. Db2rdf.Coloring.coverage d);
          string_of_int r.Db2rdf.Coloring.colors_used;
          Printf.sprintf "%.1f%%" (100.0 *. Db2rdf.Coloring.coverage r) ])
      (datasets cfg)
  in
  Harness.print_table
    [ "Dataset"; "Triples"; "Predicates"; "DPH cols"; "DPH cover"; "RPH cols";
      "RPH cover" ]
    rows;
  Printf.printf
    "\n(column budget %d per relation; uncovered predicates fall back to 2-hash composition)\n"
    max_colors

let load_report ?(sample = 1.0) triples =
  let layout = Db2rdf.Layout.make ~dph_cols:24 ~rph_cols:24 in
  let e, _, _ = Db2rdf.Engine.create_colored ~layout ~sample triples in
  let d = Db2rdf.Loader.report (Db2rdf.Engine.loader e) Db2rdf.Loader.Direct in
  let r = Db2rdf.Loader.report (Db2rdf.Engine.loader e) Db2rdf.Loader.Reverse in
  (d, r)

let run_spills (cfg : Harness.config) =
  Harness.section
    "E4. Spills: coloring the full data vs a 10% sample (Section 2.3)";
  let rows =
    List.concat_map
      (fun (name, triples) ->
        let dfull, rfull = load_report triples in
        let dsamp, rsamp = load_report ~sample:0.1 triples in
        [ [ name ^ " (full)";
            string_of_int dfull.Db2rdf.Loader.rows;
            string_of_int dfull.Db2rdf.Loader.spills;
            Printf.sprintf "%.1f%%" (100.0 *. dfull.Db2rdf.Loader.null_fraction);
            string_of_int rfull.Db2rdf.Loader.rows;
            string_of_int rfull.Db2rdf.Loader.spills;
            Printf.sprintf "%.1f%%" (100.0 *. rfull.Db2rdf.Loader.null_fraction) ];
          [ name ^ " (10% sample)";
            string_of_int dsamp.Db2rdf.Loader.rows;
            string_of_int dsamp.Db2rdf.Loader.spills;
            Printf.sprintf "%.1f%%" (100.0 *. dsamp.Db2rdf.Loader.null_fraction);
            string_of_int rsamp.Db2rdf.Loader.rows;
            string_of_int rsamp.Db2rdf.Loader.spills;
            Printf.sprintf "%.1f%%" (100.0 *. rsamp.Db2rdf.Loader.null_fraction) ] ])
      (datasets cfg)
  in
  Harness.print_table
    [ "Coloring input"; "DPH rows"; "DPH spills"; "DPH nulls"; "RPH rows";
      "RPH spills"; "RPH nulls" ]
    rows
