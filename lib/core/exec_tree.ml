(** The Query Plan Builder's ExecTree algorithm (Section 3.1.2,
    Figure 10): weave the triple patterns into a storage-independent
    execution tree, guided by the optimal flow tree, with *late fusing*.

    Late fusing defers sub-trees whose variables nothing else consumes
    to the latest possible point (minimizing intermediate result width
    and size), while pulling forward (a) producers whose bindings later
    accesses require and (b) pure filters — triples that bind no new
    variable and can only shrink the intermediate result (the [t1] case
    in the paper's running example). OPTIONAL sub-trees attach last;
    UNION and OPTIONAL sub-patterns are fused recursively as units,
    which preserves the associativity of the query's operators. *)

module VarSet = Sparql.Ast.VarSet

type t =
  | Leaf of int * Cost.access  (** triple id, access method *)
  | And of t * t
  | Or of t list
  | Opt of t * t  (** main, optional *)
  | Unit
      (** the empty group's single empty solution — the required side of
          a pattern that consists only of OPTIONALs *)

let rec triples_of = function
  | Leaf (t, _) -> [ t ]
  | And (a, b) | Opt (a, b) -> triples_of a @ triples_of b
  | Or parts -> List.concat_map triples_of parts
  | Unit -> []

let rec to_string pt = function
  | Unit -> "UNIT"
  | Leaf (t, m) ->
    ignore pt;
    Printf.sprintf "(t%d, %s)" t (Cost.access_to_string m)
  | And (a, b) -> Printf.sprintf "AND(%s, %s)" (to_string pt a) (to_string pt b)
  | Or parts ->
    Printf.sprintf "OR(%s)" (String.concat ", " (List.map (to_string pt) parts))
  | Opt (a, b) -> Printf.sprintf "OPT(%s, %s)" (to_string pt a) (to_string pt b)

(* ------------------------------------------------------------------ *)
(* Items: candidate sub-trees during fusing                            *)
(* ------------------------------------------------------------------ *)

type item = {
  tree : t;
  item_triples : int list;
  min_pos : int;  (** earliest flow position among the item's triples *)
  vars : VarSet.t;  (** all variables the item can bind *)
  req : VarSet.t;  (** variables required from outside the item *)
  is_opt : bool;
}

let item_of_tree pt (flow : Dataflow.flow) ~is_opt tree =
  let triples = triples_of tree in
  let vars =
    List.fold_left
      (fun acc tid ->
        VarSet.union acc
          (VarSet.of_list
             (Sparql.Ast.triple_pat_vars
                (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat)))
      VarSet.empty triples
  in
  (* External requirements: variables some triple's chosen method needs
     that no triple inside the item produces. *)
  let internal_prod =
    List.fold_left
      (fun acc tid ->
        let pat = (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat in
        VarSet.union acc (Dataflow.produced pat flow.Dataflow.method_of.(tid)))
      VarSet.empty triples
  in
  let req =
    List.fold_left
      (fun acc tid ->
        let pat = (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat in
        VarSet.union acc (Dataflow.required pat flow.Dataflow.method_of.(tid)))
      VarSet.empty triples
  in
  {
    tree;
    item_triples = triples;
    min_pos =
      List.fold_left (fun acc tid -> min acc flow.Dataflow.pos_of.(tid)) max_int
        triples;
    vars;
    req = VarSet.diff req internal_prod;
    is_opt;
  }

(* ------------------------------------------------------------------ *)
(* Fusing                                                              *)
(* ------------------------------------------------------------------ *)

(** Fuse a pool of items into a single execution tree, implementing the
    late-fusing policy described in the module comment. *)
let fuse_all pt (flow : Dataflow.flow) (items : item list) : t =
  ignore flow;
  match items with
  | [] -> Unit (* no triples at all (e.g. a bare FILTER): unit solution *)
  | _ ->
    let items = List.sort (fun a b -> compare a.min_pos b.min_pos) items in
    let opts, non_opts = List.partition (fun i -> i.is_opt) items in
    (* Attaching OPTIONALs last reorders the W3C translation
       Join(LeftJoin(before, P), after) into LeftJoin(Join(before,
       after), P). That is sound only for well-designed patterns: every
       variable of P shared with a syntactically later element must
       already be bound before the OPTIONAL. Otherwise fall back to
       syntactic interleaving (triple ids are assigned in parse order,
       so the minimum id locates each item syntactically). *)
    let tid_min i = List.fold_left min max_int i.item_triples in
    let tvars_of tid =
      VarSet.of_list
        (Sparql.Ast.triple_pat_vars
           (Sparql.Pattern_tree.triple pt tid).Sparql.Pattern_tree.pat)
    in
    (* Triples inside some OPTIONAL region bind their variables only
       possibly; they cannot certify a variable as bound "before". *)
    let opt_tids =
      let acc = ref [] in
      Array.iteri
        (fun n _ ->
          match Sparql.Pattern_tree.kind pt n with
          | Sparql.Pattern_tree.K_opt ->
            acc := Sparql.Pattern_tree.triples_under pt n @ !acc
          | _ -> ())
        pt.Sparql.Pattern_tree.children;
      !acc
    in
    let item_vars pred =
      List.fold_left
        (fun acc i ->
          List.fold_left
            (fun acc t -> if pred t then VarSet.union acc (tvars_of t) else acc)
            acc i.item_triples)
        VarSet.empty non_opts
    in
    let unsafe o =
      let pos = tid_min o in
      let before =
        item_vars (fun t -> t < pos && not (List.mem t opt_tids))
      in
      let after =
        VarSet.union
          (item_vars (fun t -> t > pos))
          (List.fold_left
             (fun acc o' ->
               if o' != o && tid_min o' > pos then VarSet.union acc o'.vars
               else acc)
             VarSet.empty opts)
      in
      not (VarSet.subset (VarSet.inter o.vars after) before)
    in
    if List.exists unsafe opts then
      let sorted = List.sort (fun a b -> compare (tid_min a) (tid_min b)) items in
      Option.get
        (List.fold_left
           (fun acc i ->
             match acc, i.is_opt with
             | None, false -> Some i.tree
             | None, true -> Some (Opt (Unit, i.tree))
             | Some t, false -> Some (And (t, i.tree))
             | Some t, true -> Some (Opt (t, i.tree)))
           None sorted)
    else begin
    (* needed i: some other item requires a variable i produces. *)
    let needed i others =
      List.exists
        (fun j -> not (VarSet.is_empty (VarSet.inter j.req i.vars)))
        others
    in
    let tree = ref None in
    let tvars = ref VarSet.empty in
    let remaining = ref non_opts in
    let attach i =
      (match !tree with
       | None -> tree := Some i.tree
       | Some t -> tree := Some (And (t, i.tree)));
      tvars := VarSet.union !tvars i.vars;
      remaining := List.filter (fun j -> j != i) !remaining
    in
    while !remaining <> [] do
      let eligible i =
        VarSet.subset i.req !tvars
        &&
        (* first item, a needed producer, or a pure filter *)
        (!tree = None
        || needed i (List.filter (fun j -> j != i) !remaining)
        || VarSet.subset i.vars !tvars)
      in
      match List.find_opt eligible !remaining with
      | Some i -> attach i
      | None ->
        (* Remaining items all carry fresh, unconsumed variables: late
           fusing ends and they attach in flow order. Prefer one whose
           requirements are already met to keep the pipeline feeding
           forward. *)
        (match List.find_opt (fun i -> VarSet.subset i.req !tvars) !remaining with
         | Some i -> attach i
         | None -> attach (List.hd !remaining))
    done;
    (* A pattern of only OPTIONALs left-joins against the unit (single
       empty) solution, per the W3C Join identity. *)
    let base = match !tree with Some t -> t | None -> Unit in
    (* OPTIONAL sub-trees attach last, in flow order. *)
    List.fold_left (fun acc o -> Opt (acc, o.tree)) base
      (List.sort (fun a b -> compare a.min_pos b.min_pos) opts)
    end

(* ------------------------------------------------------------------ *)
(* Tree construction (the ExecTree recursion of Figure 10)             *)
(* ------------------------------------------------------------------ *)

let rec items_of_node pt flow (n : int) : item list =
  match Sparql.Pattern_tree.kind pt n with
  | Sparql.Pattern_tree.K_leaf tp ->
    let tid = tp.Sparql.Pattern_tree.id in
    [ item_of_tree pt flow ~is_opt:false
        (Leaf (tid, flow.Dataflow.method_of.(tid))) ]
  | Sparql.Pattern_tree.K_and ->
    (* Children contribute their items to the shared pool; fusing is
       deferred to the nearest structural boundary (OR/OPTIONAL/root),
       which is what lets the plan weave across group boundaries. *)
    List.concat_map (items_of_node pt flow) pt.Sparql.Pattern_tree.children.(n)
  | Sparql.Pattern_tree.K_or ->
    let branches =
      List.map
        (fun c -> fuse_all pt flow (items_of_node pt flow c))
        pt.Sparql.Pattern_tree.children.(n)
    in
    [ item_of_tree pt flow ~is_opt:false (Or branches) ]
  | Sparql.Pattern_tree.K_opt ->
    let inner_tree =
      fuse_all pt flow
        (List.concat_map (items_of_node pt flow)
           pt.Sparql.Pattern_tree.children.(n))
    in
    [ item_of_tree pt flow ~is_opt:true inner_tree ]

(** Build the execution tree for a whole query. *)
let build (pt : Sparql.Pattern_tree.t) (flow : Dataflow.flow) : t =
  fuse_all pt flow (items_of_node pt flow pt.Sparql.Pattern_tree.root)

(** The no-late-fusing ablation: attach triples in syntactic (parse)
    order, keeping the flow's access methods but none of its ordering.
    This is what a translator without the QPB stage would emit. *)
let build_syntactic (pt : Sparql.Pattern_tree.t) (flow : Dataflow.flow) : t =
  let rec go n : [ `Plain of t | `Optional of t ] option =
    match Sparql.Pattern_tree.kind pt n with
    | Sparql.Pattern_tree.K_leaf tp ->
      let tid = tp.Sparql.Pattern_tree.id in
      Some (`Plain (Leaf (tid, flow.Dataflow.method_of.(tid))))
    | Sparql.Pattern_tree.K_and ->
      let acc =
        List.fold_left
          (fun acc child ->
            match go child with
            | None -> acc
            | Some (`Plain c) ->
              (match acc with None -> Some c | Some a -> Some (And (a, c)))
            | Some (`Optional c) ->
              (match acc with
               | None -> Some (Opt (Unit, c)) (* OPTIONAL against the unit solution *)
               | Some a -> Some (Opt (a, c))))
          None
          pt.Sparql.Pattern_tree.children.(n)
      in
      Option.map (fun t -> `Plain t) acc
    | Sparql.Pattern_tree.K_or ->
      let parts =
        List.filter_map
          (fun c ->
            match go c with
            | Some (`Plain t) | Some (`Optional t) -> Some t
            | None -> None)
          pt.Sparql.Pattern_tree.children.(n)
      in
      if parts = [] then None else Some (`Plain (Or parts))
    | Sparql.Pattern_tree.K_opt ->
      let inner =
        List.fold_left
          (fun acc child ->
            match go child with
            | None -> acc
            | Some (`Plain c) ->
              (match acc with None -> Some c | Some a -> Some (And (a, c)))
            | Some (`Optional c) ->
              (match acc with
               | None -> Some (Opt (Unit, c))
               | Some a -> Some (Opt (a, c))))
          None
          pt.Sparql.Pattern_tree.children.(n)
      in
      Option.map (fun t -> `Optional t) inner
  in
  match go pt.Sparql.Pattern_tree.root with
  | Some (`Plain t) -> t
  | Some (`Optional t) -> Opt (Unit, t)
  | None -> Unit
