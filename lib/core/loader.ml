(** Insertion into the DB2RDF schema: predicate-to-column placement,
    spill rows, and multi-value (lid) indirection (Sections 2.1–2.2).

    A {!store} owns the four relations, the direct and reverse predicate
    mappings, the dictionary, the statistics, and the bookkeeping the
    query translator needs: which predicates are multi-valued (need a
    DS/RS join) and which are involved in spills (veto star merging —
    Section 3.2.1). *)

module IntTbl = Dataset_stats.IntTbl

type side = Direct | Reverse

(** Per-side state: the primary and secondary tables plus registries. *)
type side_state = {
  primary : Relsql.Table.t;
  secondary : Relsql.Table.t;
  pos : Layout.positions;
  k : int;
  pred_map : Pred_map.t;
  entity_rows : int list ref IntTbl.t;  (** entity id -> primary row ids, oldest first *)
  multivalued : unit IntTbl.t;  (** predicate ids with any lid value *)
  spill_preds : unit IntTbl.t;  (** predicate ids stored on spill rows *)
  mutable spill_rows : int;  (** rows beyond the first of some entity *)
  mutable entities : int;
}

type t = {
  db : Relsql.Database.t;
  dict : Rdf.Dictionary.t;
  layout : Layout.t;
  direct : side_state;
  reverse : side_state;
  stats : Dataset_stats.t;
  seen : (int * int * int, unit) Hashtbl.t;
      (* RDF graphs are sets: duplicate triples are ignored *)
  mutable next_lid : int;
  mutable triples_loaded : int;
}

let database t = t.db
let dictionary t = t.dict
let stats t = t.stats
let triples_loaded t = t.triples_loaded

let side t = function Direct -> t.direct | Reverse -> t.reverse

(** Predicate URI string used by the mapping functions (hashing operates
    on the string value of the URI, Definition 2.1). *)
let pred_uri = function
  | Rdf.Term.Iri s -> s
  | other -> Rdf.Term.to_string other

let make_side primary secondary k pred_map =
  if Pred_map.arity pred_map <> k then
    invalid_arg "Loader: predicate map arity does not match layout";
  {
    primary;
    secondary;
    pos = Layout.positions (Relsql.Table.schema primary) k;
    k;
    pred_map;
    entity_rows = IntTbl.create 4096;
    multivalued = IntTbl.create 64;
    spill_preds = IntTbl.create 64;
    spill_rows = 0;
    entities = 0;
  }

(** Create an empty store. [direct_map]/[reverse_map] default to the
    2-hash composition over the layout's widths. *)
let create ?(layout = Layout.default) ?direct_map ?reverse_map ?dict () =
  let db = Relsql.Database.create "db2rdf" in
  let dph, ds, rph, rs = Layout.create_tables db layout in
  let dict = match dict with Some d -> d | None -> Rdf.Dictionary.create () in
  let dmap =
    match direct_map with
    | Some m -> m
    | None -> Pred_map.hashed_family ~m:layout.Layout.dph_cols ~n:2
  in
  let rmap =
    match reverse_map with
    | Some m -> m
    | None -> Pred_map.hashed_family ~m:layout.Layout.rph_cols ~n:2
  in
  {
    db;
    dict;
    layout;
    direct = make_side dph ds layout.Layout.dph_cols dmap;
    reverse = make_side rph rs layout.Layout.rph_cols rmap;
    stats = Dataset_stats.create ();
    seen = Hashtbl.create 4096;
    next_lid = 0;
    triples_loaded = 0;
  }

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_row st entity_id =
  let arity = Relsql.Schema.arity (Relsql.Table.schema st.primary) in
  let row = Array.make arity Relsql.Value.Null in
  row.(st.pos.entry_pos) <- Relsql.Value.Int entity_id;
  row.(st.pos.spill_pos) <- Relsql.Value.Int 0;
  Relsql.Table.insert st.primary row

(** Insert (entity, predicate, value) into one side. Implements the
    insertion procedure of Section 2.2: probe the candidate columns of
    every existing row of the entity; extend multi-values through the
    secondary table; spill into a fresh row when all candidates
    conflict. Returns the lid allocator state through [store]. *)
let insert_side store st ~entity ~pred_id ~pred_str ~value =
  let rows =
    match IntTbl.find_opt st.entity_rows entity with
    | Some r -> r
    | None ->
      st.entities <- st.entities + 1;
      let r = ref [ fresh_row st entity ] in
      IntTbl.add st.entity_rows entity r;
      r
  in
  let cands = Pred_map.candidates st.pred_map pred_str in
  let cands = if cands = [] then [ 0 ] else cands in
  let pred_val = Relsql.Value.Int pred_id in
  (* Pass 1: is the predicate already placed somewhere for this entity? *)
  let existing =
    List.find_map
      (fun rid ->
        List.find_map
          (fun c ->
            if Relsql.Table.cell st.primary rid st.pos.pred_pos.(c) = pred_val
            then Some (rid, c)
            else None)
          cands)
      !rows
  in
  match existing with
  | Some (rid, c) ->
    (* Multi-valued: push the value into the secondary table. *)
    IntTbl.replace st.multivalued pred_id ();
    let vpos = st.pos.val_pos.(c) in
    (match Relsql.Table.cell st.primary rid vpos with
     | Relsql.Value.Lid lid ->
       ignore
         (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; value |])
     | old ->
       let lid = store.next_lid in
       store.next_lid <- lid + 1;
       Relsql.Table.set_cell st.primary rid vpos (Relsql.Value.Lid lid);
       ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; old |]);
       ignore (Relsql.Table.insert st.secondary [| Relsql.Value.Lid lid; value |]))
  | None ->
    (* Pass 2: first free candidate column on any existing row. *)
    let free =
      List.find_map
        (fun rid ->
          List.find_map
            (fun c ->
              if
                Relsql.Value.is_null
                  (Relsql.Table.cell st.primary rid st.pos.pred_pos.(c))
              then Some (rid, c)
              else None)
            cands)
        !rows
    in
    (match free with
     | Some (rid, c) ->
       Relsql.Table.set_cell st.primary rid st.pos.pred_pos.(c) pred_val;
       Relsql.Table.set_cell st.primary rid st.pos.val_pos.(c) value;
       (* If this cell lives on a spill row, the predicate is spill-
          involved for merging purposes. *)
       if rid <> List.hd !rows then IntTbl.replace st.spill_preds pred_id ()
     | None ->
       (* Spill: new row for the entity; mark every row of the entity. *)
       let rid = fresh_row st entity in
       st.spill_rows <- st.spill_rows + 1;
       List.iter
         (fun r ->
           Relsql.Table.set_cell st.primary r st.pos.spill_pos
             (Relsql.Value.Int 1))
         (rid :: !rows);
       rows := !rows @ [ rid ];
       let c = List.hd cands in
       Relsql.Table.set_cell st.primary rid st.pos.pred_pos.(c) pred_val;
       Relsql.Table.set_cell st.primary rid st.pos.val_pos.(c) value;
       IntTbl.replace st.spill_preds pred_id ())

(** Insert one triple into both sides of the store. Duplicate triples
    are ignored (RDF graphs are sets). *)
let insert t (tr : Rdf.Triple.t) =
  let s = Rdf.Dictionary.id_of t.dict tr.s in
  let p = Rdf.Dictionary.id_of t.dict tr.p in
  let o = Rdf.Dictionary.id_of t.dict tr.o in
  if Hashtbl.mem t.seen (s, p, o) then ()
  else begin
  Hashtbl.add t.seen (s, p, o) ();
  let pred_str = pred_uri tr.p in
  insert_side t t.direct ~entity:s ~pred_id:p ~pred_str ~value:(Relsql.Value.Int o);
  insert_side t t.reverse ~entity:o ~pred_id:p ~pred_str ~value:(Relsql.Value.Int s);
  Dataset_stats.record t.stats ~s ~p ~o;
  t.triples_loaded <- t.triples_loaded + 1
  end

let load t triples = List.iter (insert t) triples

(* Locate the (row, candidate column) currently holding [pred_id] for an
   entity; the insertion procedure guarantees at most one. *)
let find_placement st ~entity ~pred_id =
  match IntTbl.find_opt st.entity_rows entity with
  | None -> None
  | Some rows ->
    let cands =
      (* Any candidate list the mapping may have used; we must check all
         columns because the predicate string is not available here —
         scanning the (few) pairs of the entity's rows is exact. *)
      List.init st.k (fun c -> c)
    in
    List.find_map
      (fun rid ->
        List.find_map
          (fun c ->
            if
              Relsql.Table.cell st.primary rid st.pos.pred_pos.(c)
              = Relsql.Value.Int pred_id
            then Some (rid, c)
            else None)
          cands)
      !rows

let delete_side st ~entity ~pred_id ~value =
  match find_placement st ~entity ~pred_id with
  | None -> ()
  | Some (rid, c) ->
    let vpos = st.pos.val_pos.(c) in
    (match Relsql.Table.cell st.primary rid vpos with
     | Relsql.Value.Lid lid ->
       (* Remove one matching element from the secondary relation; when
          the list empties, clear the primary cell pair. *)
       let rids = Relsql.Table.lookup st.secondary 0 (Relsql.Value.Lid lid) in
       (match
          Array.find_opt
            (fun r -> Relsql.Table.cell st.secondary r 1 = value)
            rids
        with
        | Some r -> Relsql.Table.delete_row st.secondary r
        | None -> ());
       if Relsql.Table.lookup st.secondary 0 (Relsql.Value.Lid lid) = [||] then begin
         Relsql.Table.set_cell st.primary rid st.pos.pred_pos.(c) Relsql.Value.Null;
         Relsql.Table.set_cell st.primary rid vpos Relsql.Value.Null
       end
     | v when v = value ->
       Relsql.Table.set_cell st.primary rid st.pos.pred_pos.(c) Relsql.Value.Null;
       Relsql.Table.set_cell st.primary rid vpos Relsql.Value.Null
     | _ -> () (* value mismatch: the triple is not in the store *))

(** Delete one triple (no-op when absent). Spill rows and registry
    entries are left in place — they only make the translator more
    conservative. *)
let delete t (tr : Rdf.Triple.t) =
  match
    ( Rdf.Dictionary.find t.dict tr.s,
      Rdf.Dictionary.find t.dict tr.p,
      Rdf.Dictionary.find t.dict tr.o )
  with
  | Some s, Some p, Some o when Hashtbl.mem t.seen (s, p, o) ->
    Hashtbl.remove t.seen (s, p, o);
    delete_side t.direct ~entity:s ~pred_id:p ~value:(Relsql.Value.Int o);
    delete_side t.reverse ~entity:o ~pred_id:p ~value:(Relsql.Value.Int s);
    Dataset_stats.unrecord t.stats ~s ~p ~o;
    t.triples_loaded <- t.triples_loaded - 1
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Query-support accessors                                             *)
(* ------------------------------------------------------------------ *)

(** Candidate columns for predicate [p] (by id) on a side. *)
let candidate_columns t which ~pred_term =
  let st = side t which in
  let cands = Pred_map.candidates st.pred_map (pred_uri pred_term) in
  if cands = [] then [ 0 ] else cands

let is_multivalued t which ~pred_id =
  IntTbl.mem (side t which).multivalued pred_id

let is_spill_involved t which ~pred_id =
  IntTbl.mem (side t which).spill_preds pred_id

let column_count t which = (side t which).k

(* ------------------------------------------------------------------ *)
(* Reporting (Section 2.3 numbers)                                     *)
(* ------------------------------------------------------------------ *)

type side_report = {
  rows : int;
  spills : int;
  distinct_entities : int;
  null_fraction : float;
  storage_bytes : int;
}

let report t which : side_report =
  let st = side t which in
  let val_positions = Array.to_list st.pos.val_pos
  and pred_positions = Array.to_list st.pos.pred_pos in
  {
    rows = Relsql.Table.row_count st.primary;
    spills = st.spill_rows;
    distinct_entities = st.entities;
    null_fraction =
      Relsql.Table.null_fraction st.primary (val_positions @ pred_positions);
    storage_bytes =
      Relsql.Table.storage_size st.primary
      + Relsql.Table.storage_size st.secondary;
  }
