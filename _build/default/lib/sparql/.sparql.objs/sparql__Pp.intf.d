lib/sparql/pp.mli: Ast
